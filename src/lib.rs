//! # GNNOne — unified system optimizations for GNN sparse kernels
//!
//! Facade crate re-exporting the whole workspace. See the crate-level
//! documentation of each member:
//!
//! * [`sim`] — SIMT GPU execution-model simulator (the hardware substrate);
//! * [`sparse`] — sparse formats, graph generators, dataset registry,
//!   CPU reference kernels;
//! * [`kernels`] — GNNOne SDDMM/SpMM/SpMV and every baseline from the
//!   paper's evaluation;
//! * [`tensor`] — dense tensors with reverse-mode autograd;
//! * [`gnn`] — GCN/GIN/GAT models, training, and system configurations.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use gnnone_gnn as gnn;
pub use gnnone_kernels as kernels;
pub use gnnone_sim as sim;
pub use gnnone_sparse as sparse;
pub use gnnone_tensor as tensor;
