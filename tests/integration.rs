//! Cross-crate integration tests: the full pipeline from dataset
//! generation through simulated kernels to GNN training, exercised through
//! the public facade crate.

use std::rc::Rc;
use std::sync::Arc;

use gnnone::gnn::models::{Gat, Gcn};
use gnnone::gnn::{train_model, GnnContext, SystemKind, TrainConfig};
use gnnone::kernels::gnnone::{GnnOneConfig, GnnOneSddmm, GnnOneSpmm};
use gnnone::kernels::graph::GraphData;
use gnnone::kernels::registry;
use gnnone::kernels::traits::{SddmmKernel, SpmmKernel};
use gnnone::sim::{DeviceBuffer, Gpu, GpuSpec};
use gnnone::sparse::datasets::{table1, Dataset, Scale};
use gnnone::sparse::reference;
use gnnone::tensor::Tensor;

#[test]
fn every_table1_dataset_generates_and_runs_gnnone_kernels() {
    let gpu = Gpu::new(GpuSpec::a100_scaled(4));
    let f = 16;
    for spec in table1() {
        let d = Dataset::generate(&spec, Scale::Tiny);
        let g = Arc::new(GraphData::new(d.coo.clone()));
        let n = g.num_vertices();
        let x_host: Vec<f32> = (0..n * f).map(|i| (i % 11) as f32 * 0.1).collect();
        let x = DeviceBuffer::from_slice(&x_host);

        let w_out = DeviceBuffer::<f32>::zeros(g.nnz());
        GnnOneSddmm::new(Arc::clone(&g), GnnOneConfig::default())
            .run(&gpu, &x, &x, f, &w_out)
            .unwrap_or_else(|e| panic!("{}: SDDMM failed: {e}", spec.id));
        let expected = reference::sddmm_coo(&g.coo, &x_host, &x_host, f);
        reference::assert_close(&w_out.to_vec(), &expected, 1e-3);

        let w_host = vec![1.0f32; g.nnz()];
        let w_in = DeviceBuffer::from_slice(&w_host);
        let y_out = DeviceBuffer::<f32>::zeros(n * f);
        GnnOneSpmm::new(Arc::clone(&g), GnnOneConfig::default())
            .run(&gpu, &w_in, &x, f, &y_out)
            .unwrap_or_else(|e| panic!("{}: SpMM failed: {e}", spec.id));
        let expected = reference::spmm_csr(&d.csr, &w_host, &x_host, f);
        reference::assert_close(&y_out.to_vec(), &expected, 1e-3);
    }
}

#[test]
fn gnnone_wins_both_kernels_on_a_skewed_medium_graph() {
    // The paper's headline claim, end to end through the public API: on a
    // saturated device and a power-law graph, GNNOne beats every baseline
    // on both kernels.
    let d = Dataset::by_id("G11", Scale::Small).expect("hollywood analogue");
    let g = Arc::new(GraphData::new(d.coo.clone()));
    let gpu = Gpu::new(GpuSpec::a100_scaled(4));
    let f = 32;
    let n = g.num_vertices();
    let x = DeviceBuffer::from_slice(&vec![0.5f32; n * f]);
    let y = DeviceBuffer::from_slice(&vec![0.25f32; n * f]);

    let w_out = DeviceBuffer::<f32>::zeros(g.nnz());
    let mut sddmm_ms = Vec::new();
    for k in registry::sddmm_kernels(&g) {
        let r = k.run(&gpu, &x, &y, f, &w_out).expect("sddmm");
        sddmm_ms.push((k.name(), r.time_ms));
    }
    let (base_name, base_ms) = sddmm_ms[0];
    assert_eq!(base_name, "GnnOne");
    for &(name, ms) in &sddmm_ms[1..] {
        assert!(
            ms >= base_ms,
            "SDDMM: {name} ({ms:.4}) beat GnnOne ({base_ms:.4})"
        );
    }

    let ev = DeviceBuffer::from_slice(&vec![1.0f32; g.nnz()]);
    let y_out = DeviceBuffer::<f32>::zeros(n * f);
    let mut spmm_ms = Vec::new();
    for k in registry::spmm_kernels(&g) {
        let r = k.run(&gpu, &ev, &x, f, &y_out).expect("spmm");
        spmm_ms.push((k.name(), r.time_ms));
    }
    let (base_name, base_ms) = spmm_ms[0];
    assert_eq!(base_name, "GnnOne");
    for &(name, ms) in &spmm_ms[1..] {
        assert!(
            ms >= base_ms,
            "SpMM: {name} ({ms:.4}) beat GnnOne ({base_ms:.4})"
        );
    }
}

#[test]
fn gcn_trains_on_cora_analogue_with_accuracy_parity() {
    let d = Dataset::by_id("G0", Scale::Tiny).expect("Cora");
    let labels = d.labels.clone().expect("labelled");
    let features = Tensor::from_vec(
        d.coo.num_rows(),
        d.feature_dim,
        d.features.clone().expect("features"),
    );
    let cfg = TrainConfig {
        epochs: 40,
        ..Default::default()
    };
    let mut accs = Vec::new();
    for system in [SystemKind::GnnOne, SystemKind::Dgl] {
        let ctx = Rc::new(GnnContext::new(
            system,
            d.coo.clone(),
            GpuSpec::a100_scaled(4),
        ));
        let mut model = Gcn::new(d.feature_dim, 16, d.spec.classes, 9);
        let r = train_model(&mut model, &ctx, &features, &labels, &cfg);
        assert!(
            r.test_accuracy > 0.55,
            "{}: accuracy {}",
            system.name(),
            r.test_accuracy
        );
        accs.push(r.test_accuracy);
    }
    assert!(
        (accs[0] - accs[1]).abs() < 0.08,
        "systems diverged: {accs:?}"
    );
}

#[test]
fn gat_backward_exercises_both_sparse_kernels() {
    // GAT training must launch SpMM forward, SpMM(Aᵀ) and SDDMM backward —
    // the paper's basic-building-block claim.
    let d = Dataset::by_id("G1", Scale::Tiny).expect("Citeseer");
    let labels = d.labels.clone().expect("labelled");
    let features = Tensor::from_vec(
        d.coo.num_rows(),
        d.feature_dim,
        d.features.clone().expect("features"),
    );
    let ctx = Rc::new(GnnContext::new(
        SystemKind::GnnOne,
        d.coo.clone(),
        GpuSpec::a100_scaled(4),
    ));
    let mut model = Gat::new(d.feature_dim, 8, d.spec.classes, 2, 3);
    let cfg = TrainConfig {
        epochs: 2,
        ..Default::default()
    };
    let r = train_model(&mut model, &ctx, &features, &labels, &cfg);
    // 2 layers × (1 fwd SpMM + 1 bwd SpMMᵀ + 1 bwd SDDMM) × 2 epochs plus
    // the eval pass: comfortably more than 12 sparse launches.
    assert!(r.launches > 12, "only {} launches recorded", r.launches);
    assert!(r.kernel_ms > 0.0);
}

#[test]
fn training_time_shape_gnnone_faster_than_dgl_on_large_graph() {
    // Fig. 6/7 shape at integration-test scale: on a big enough graph the
    // GNNOne-configured system spends fewer simulated milliseconds per
    // epoch than the DGL-configured one.
    let d = Dataset::by_id("G11", Scale::Small).expect("hollywood");
    let n = d.coo.num_rows();
    let f_in = 32;
    let features = Tensor::from_vec(
        n,
        f_in,
        (0..n * f_in)
            .map(|i| ((i % 13) as f32 - 6.0) * 0.05)
            .collect(),
    );
    let labels: Vec<u32> = (0..n as u32).map(|v| v % 6).collect();
    let cfg = TrainConfig {
        epochs: 1,
        ..Default::default()
    };
    let mut times = Vec::new();
    for system in [SystemKind::GnnOne, SystemKind::Dgl] {
        let ctx = Rc::new(GnnContext::new(
            system,
            d.coo.clone(),
            GpuSpec::a100_scaled(4),
        ));
        let mut model = Gcn::new(f_in, 16, 6, 5);
        let r = train_model(&mut model, &ctx, &features, &labels, &cfg);
        times.push((system.name(), r.kernel_ms));
    }
    assert!(
        times[0].1 < times[1].1,
        "GnnOne kernels {} !< DGL kernels {}",
        times[0].1,
        times[1].1
    );
}
