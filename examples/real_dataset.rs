//! Substitute a *real* dataset for the synthetic analogues: write a graph
//! to Matrix Market, read it back (as you would a SNAP/UFL download), and
//! run the full kernel comparison on it — the drop-in path for anyone with
//! the paper's actual datasets on disk.
//!
//! ```sh
//! cargo run --release --example real_dataset [path/to/graph.mtx]
//! ```

use std::sync::Arc;

use gnnone::kernels::graph::GraphData;
use gnnone::kernels::registry;
use gnnone::sim::{DeviceBuffer, Gpu, GpuSpec};
use gnnone::sparse::formats::Coo;
use gnnone::sparse::stats::DegreeStats;
use gnnone::sparse::{gen, io};

fn main() {
    // 1. Obtain an .mtx file: either the user's, or a generated stand-in.
    let path = std::env::args().nth(1).unwrap_or_else(|| {
        let tmp = std::env::temp_dir().join("gnnone_demo.mtx");
        let el = gen::rmat(11, 20_000, gen::GRAPH500_PROBS, 3).symmetrize();
        let coo = Coo::from_edge_list(&el);
        let file = std::fs::File::create(&tmp).expect("create demo mtx");
        io::write_mtx(&coo, std::io::BufWriter::new(file)).expect("write demo mtx");
        println!("(no path given — wrote a demo graph to {})", tmp.display());
        tmp.to_string_lossy().into_owned()
    });

    // 2. Read it as any SNAP/UFL Matrix Market download.
    let file = std::fs::File::open(&path).expect("open mtx");
    let el = io::read_mtx(std::io::BufReader::new(file)).expect("parse mtx");
    let coo = Coo::from_edge_list(&el.symmetrize());
    let graph = Arc::new(GraphData::new(coo));

    // 3. Characterize it: degree skew predicts which kernels will suffer.
    let stats = DegreeStats::compute(&graph.csr);
    println!(
        "{path}: {} vertices, {} NZEs | mean degree {:.1}, max {}, p99 {}, \
         Gini {:.2}, skew {:.0}x",
        stats.num_rows,
        stats.nnz,
        stats.mean,
        stats.max,
        stats.p99,
        stats.gini,
        stats.skew()
    );

    // 4. Run the Fig. 4 comparison on it.
    let gpu = Gpu::new(GpuSpec::a100_scaled(4));
    let f = 32;
    let n = graph.num_vertices();
    let x = DeviceBuffer::from_slice(&vec![0.5f32; n * f]);
    let w = DeviceBuffer::from_slice(&vec![1.0f32; graph.nnz()]);
    let y = DeviceBuffer::<f32>::zeros(n * f);
    println!("\nSpMM, dim {f}:");
    let mut base = None;
    for kernel in registry::spmm_kernels(&graph) {
        match kernel.run(&gpu, &w, &x, f, &y) {
            Ok(r) => {
                let b = *base.get_or_insert(r.time_ms);
                println!(
                    "  {:<12} {:>9.3} ms  ({:>5.2}x vs GnnOne)",
                    kernel.name(),
                    r.time_ms,
                    r.time_ms / b
                );
            }
            Err(e) => println!("  {:<12} failed: {e}", kernel.name()),
        }
    }
}
