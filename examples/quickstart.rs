//! Quickstart: run GNNOne's unified SDDMM and SpMM on a small graph and
//! check both against the CPU reference.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use gnnone::kernels::gnnone::{GnnOneConfig, GnnOneSddmm, GnnOneSpmm};
use gnnone::kernels::graph::GraphData;
use gnnone::kernels::traits::{SddmmKernel, SpmmKernel};
use gnnone::sim::{DeviceBuffer, Gpu, GpuSpec};
use gnnone::sparse::formats::Coo;
use gnnone::sparse::{gen, reference};

fn main() {
    // 1. A graph: RMAT with Graph500 parameters, treated as undirected.
    let edges = gen::rmat(10, 8_000, gen::GRAPH500_PROBS, 42).symmetrize();
    let coo = Coo::from_edge_list(&edges);
    println!(
        "graph: {} vertices, {} NZEs (COO, CSR-ordered)",
        coo.num_rows(),
        coo.nnz()
    );

    // 2. Upload to the simulated device — one standard format for both
    //    kernels, the paper's headline productivity win.
    let graph = Arc::new(GraphData::new(coo));
    let gpu = Gpu::new(GpuSpec::a100_40gb());

    // 3. Dense vertex features.
    let f = 32;
    let n = graph.num_vertices();
    let x_host: Vec<f32> = (0..n * f).map(|i| ((i % 13) as f32 - 6.0) * 0.1).collect();
    let y_host: Vec<f32> = (0..n * f).map(|i| ((i % 7) as f32 - 3.0) * 0.2).collect();
    let x = DeviceBuffer::from_slice(&x_host);
    let y = DeviceBuffer::from_slice(&y_host);

    // 4. SDDMM: w[e] = x[row(e)] · y[col(e)].
    let w_out = DeviceBuffer::<f32>::zeros(graph.nnz());
    let sddmm = GnnOneSddmm::new(Arc::clone(&graph), GnnOneConfig::default());
    let report = sddmm.run(&gpu, &x, &y, f, &w_out).expect("SDDMM launch");
    println!(
        "SDDMM: {:.3} simulated ms | occupancy {:.0}% | bound {:?} | coalescing {:.0}%",
        report.time_ms,
        100.0 * report.occupancy,
        report.bound,
        100.0 * report.stats.coalescing_efficiency()
    );
    let expected = reference::sddmm_coo(&graph.coo, &x_host, &y_host, f);
    reference::assert_close(&w_out.to_vec(), &expected, 1e-3);
    println!("SDDMM matches the CPU reference ✓");

    // 5. SpMM: y[r] = Σ w[(r,c)] · x[c] — same format, same Stage-1 design.
    let edge_vals: Vec<f32> = (0..graph.nnz()).map(|e| ((e % 5) as f32) * 0.25).collect();
    let w_in = DeviceBuffer::from_slice(&edge_vals);
    let y_out = DeviceBuffer::<f32>::zeros(n * f);
    let spmm = GnnOneSpmm::new(Arc::clone(&graph), GnnOneConfig::default());
    let report = spmm.run(&gpu, &w_in, &x, f, &y_out).expect("SpMM launch");
    println!(
        "SpMM:  {:.3} simulated ms | {} atomics | {:.1} MB read",
        report.time_ms,
        report.stats.atomics,
        report.stats.read_bytes as f64 / 1e6
    );
    let expected = reference::spmm_csr(&graph.csr, &edge_vals, &x_host, f);
    reference::assert_close(&y_out.to_vec(), &expected, 1e-3);
    println!("SpMM matches the CPU reference ✓");
}
