//! Write your own kernel against the SIMT simulator — the extension path a
//! downstream user takes to prototype a new sparse-kernel design and see
//! how coalescing, barriers, occupancy and workload balance respond.
//!
//! The kernel below is a histogram of column IDs (in-degree count), written
//! twice: once with uncoalesced per-lane atomics, once warp-aggregated.
//!
//! ```sh
//! cargo run --release --example custom_kernel
//! ```

use gnnone::sim::{DeviceBuffer, Gpu, GpuSpec, KernelResources, WarpCtx, WarpKernel, WARP_SIZE};
use gnnone::sparse::formats::Coo;
use gnnone::sparse::gen;

/// Naive in-degree histogram: every lane atomically increments its column's
/// counter — heavy atomic conflicts on hub vertices.
struct NaiveDegree<'a> {
    cols: &'a DeviceBuffer<u32>,
    out: &'a DeviceBuffer<f32>,
    nnz: usize,
}

impl WarpKernel for NaiveDegree<'_> {
    fn resources(&self) -> KernelResources {
        KernelResources {
            threads_per_cta: 256,
            regs_per_thread: 16,
            shared_bytes_per_cta: 0,
        }
    }
    fn grid_warps(&self) -> usize {
        self.nnz.div_ceil(WARP_SIZE)
    }
    fn run_warp(&self, warp_id: usize, ctx: &mut WarpCtx) {
        let base = warp_id * WARP_SIZE;
        let cols = ctx.load_u32(self.cols, |l| (base + l < self.nnz).then(|| base + l));
        ctx.use_loads();
        ctx.atomic_add_f32(self.out, |l| {
            (base + l < self.nnz).then(|| (cols.get(l) as usize, 1.0))
        });
    }
    fn name(&self) -> &str {
        "naive-degree"
    }
}

/// Warp-aggregated version: lanes holding the same column combine first
/// (leader election), so each distinct column issues one atomic.
struct AggregatedDegree<'a> {
    cols: &'a DeviceBuffer<u32>,
    out: &'a DeviceBuffer<f32>,
    nnz: usize,
}

impl WarpKernel for AggregatedDegree<'_> {
    fn resources(&self) -> KernelResources {
        KernelResources {
            threads_per_cta: 256,
            regs_per_thread: 20,
            shared_bytes_per_cta: 0,
        }
    }
    fn grid_warps(&self) -> usize {
        self.nnz.div_ceil(WARP_SIZE)
    }
    fn run_warp(&self, warp_id: usize, ctx: &mut WarpCtx) {
        let base = warp_id * WARP_SIZE;
        let active = |l: usize| base + l < self.nnz;
        let cols = ctx.load_u32(self.cols, |l| active(l).then(|| base + l));
        ctx.use_loads();
        // Leader election + count: ~2 ballot/match rounds on hardware.
        ctx.compute(2);
        let mut counts = [0f32; WARP_SIZE];
        let mut leader = [false; WARP_SIZE];
        for l in 0..WARP_SIZE {
            if !active(l) {
                continue;
            }
            let c = cols.get(l);
            let first = (0..l).all(|p| !active(p) || cols.get(p) != c);
            if first {
                leader[l] = true;
                counts[l] = (l..WARP_SIZE)
                    .filter(|&p| active(p) && cols.get(p) == c)
                    .count() as f32;
            }
        }
        ctx.atomic_add_f32(self.out, |l| {
            (active(l) && leader[l]).then(|| (cols.get(l) as usize, counts[l]))
        });
    }
    fn name(&self) -> &str {
        "aggregated-degree"
    }
}

fn main() {
    // Power-law graph: hub columns create atomic contention.
    let el = gen::rmat(12, 40_000, gen::GRAPH500_PROBS, 7).symmetrize();
    let coo = Coo::from_edge_list(&el);
    let cols = DeviceBuffer::from_slice(coo.cols());
    let gpu = Gpu::new(GpuSpec::a100_40gb());
    println!("graph: {} vertices, {} NZEs", coo.num_rows(), coo.nnz());

    let out_a = DeviceBuffer::<f32>::zeros(coo.num_rows());
    let naive = gpu.launch(&NaiveDegree {
        cols: &cols,
        out: &out_a,
        nnz: coo.nnz(),
    });
    let out_b = DeviceBuffer::<f32>::zeros(coo.num_rows());
    let agg = gpu.launch(&AggregatedDegree {
        cols: &cols,
        out: &out_b,
        nnz: coo.nnz(),
    });

    // Same functional result...
    assert_eq!(out_a.to_vec(), out_b.to_vec());
    let expected: f32 = coo.nnz() as f32;
    assert_eq!(out_a.to_vec().iter().sum::<f32>(), expected);

    // ...different cost profile.
    println!(
        "naive:      {:.3} ms | {:>8} atomic conflicts",
        naive.time_ms, naive.stats.atomic_conflicts
    );
    println!(
        "aggregated: {:.3} ms | {:>8} atomic conflicts",
        agg.time_ms, agg.stats.atomic_conflicts
    );
    assert!(agg.stats.atomic_conflicts < naive.stats.atomic_conflicts);
    println!(
        "\nwarp aggregation cut atomic serialization {:.1}x — the same\n\
         simulator mechanics the GNNOne kernels are built on.",
        naive.stats.atomic_conflicts.max(1) as f64 / agg.stats.atomic_conflicts.max(1) as f64
    );
}
