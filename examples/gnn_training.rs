//! Train a 2-layer GCN end-to-end on a Cora-like labelled graph using the
//! GNNOne kernels, then repeat with the DGL-configured kernels and compare
//! accuracy (the Fig. 5 experiment in miniature) and simulated time.
//!
//! ```sh
//! cargo run --release --example gnn_training
//! ```

use std::rc::Rc;

use gnnone::gnn::models::Gcn;
use gnnone::gnn::{train_model, GnnContext, SystemKind, TrainConfig};
use gnnone::sim::GpuSpec;
use gnnone::sparse::datasets::{Dataset, Scale};
use gnnone::tensor::Tensor;

fn main() {
    // The Cora analogue (G0): a planted-partition graph with learnable,
    // class-informative features.
    let dataset = Dataset::by_id("G0", Scale::Tiny).expect("G0 exists");
    let labels = dataset.labels.clone().expect("G0 is labelled");
    let features = Tensor::from_vec(
        dataset.coo.num_rows(),
        dataset.feature_dim,
        dataset.features.clone().expect("G0 has features"),
    );
    println!(
        "dataset: {} ({} vertices, {} edges, {} classes)",
        dataset.spec.name,
        dataset.coo.num_rows(),
        dataset.coo.nnz(),
        dataset.spec.classes
    );

    let config = TrainConfig {
        epochs: 60,
        lr: 0.01,
        ..Default::default()
    };

    for system in [SystemKind::GnnOne, SystemKind::Dgl] {
        let ctx = Rc::new(GnnContext::new(
            system,
            dataset.coo.clone(),
            GpuSpec::a100_40gb(),
        ));
        let mut model = Gcn::new(dataset.feature_dim, 16, dataset.spec.classes, 42);
        let result = train_model(&mut model, &ctx, &features, &labels, &config);
        println!(
            "{:<7} test acc {:.3} | train acc {:.3} | {:.2} simulated ms \
             ({:.2} ms in sparse kernels, {} launches)",
            system.name(),
            result.test_accuracy,
            result.train_accuracy,
            result.simulated_ms,
            result.kernel_ms,
            result.launches,
        );
        assert!(
            result.test_accuracy > 0.6,
            "GCN should learn the planted partition"
        );
    }
    println!("\nBoth systems compute the same math — accuracy parity (Fig. 5).");
    println!("(At Cora's size kernel timing is launch-overhead-bound — the paper");
    println!("deliberately times only large datasets; see fig6/fig7 binaries.)");
}
