//! Walk GNNOne's design-choice ladder on one graph (Figs. 8–10 in
//! miniature): data reuse, `float4` thread groups, Stage-1 cache size, and
//! the Consecutive scheduling policy.
//!
//! ```sh
//! cargo run --release --example design_ablation
//! ```

use std::sync::Arc;

use gnnone::kernels::gnnone::{GnnOneConfig, GnnOneSddmm, GnnOneSpmm, Schedule};
use gnnone::kernels::graph::GraphData;
use gnnone::kernels::traits::{SddmmKernel, SpmmKernel};
use gnnone::sim::{DeviceBuffer, Gpu, GpuSpec};
use gnnone::sparse::datasets::{Dataset, Scale};

fn main() {
    let dataset = Dataset::by_id("G10", Scale::Small).expect("Kron analogue");
    let graph = Arc::new(GraphData::new(dataset.coo.clone()));
    let gpu = Gpu::new(GpuSpec::a100_scaled(4));
    let n = graph.num_vertices();
    println!(
        "graph: {} analogue — {} vertices, {} NZEs\n",
        dataset.spec.name,
        n,
        graph.nnz()
    );

    // --- Fig. 8: SDDMM optimization ladder (dim 32) ---
    let f = 32;
    let x = DeviceBuffer::from_slice(&vec![0.5f32; n * f]);
    let y = DeviceBuffer::from_slice(&vec![0.25f32; n * f]);
    let w = DeviceBuffer::<f32>::zeros(graph.nnz());
    let ladder = [
        ("Baseline (balanced COO)", GnnOneConfig::ablation_baseline()),
        ("+Data-reuse", GnnOneConfig::ablation_data_reuse()),
        ("+Float4 (full design)", GnnOneConfig::default()),
    ];
    println!("SDDMM ladder (Fig. 8):");
    let mut base_ms = None;
    for (label, cfg) in ladder {
        let kernel = GnnOneSddmm::new(Arc::clone(&graph), cfg);
        let r = kernel.run(&gpu, &x, &y, f, &w).expect("launch");
        let b = *base_ms.get_or_insert(r.time_ms);
        println!(
            "  {label:<26} {:>8.3} ms  ({:.2}x over baseline)",
            r.time_ms,
            b / r.time_ms
        );
    }

    // --- Fig. 9: Stage-1 cache size (SpMM, dim 16) ---
    let f = 16;
    let x16 = DeviceBuffer::from_slice(&vec![0.5f32; n * f]);
    let ev = DeviceBuffer::from_slice(&vec![1.0f32; graph.nnz()]);
    let y_out = DeviceBuffer::<f32>::zeros(n * f);
    println!("\nSpMM Stage-1 cache size (Fig. 9):");
    for cache in [32usize, 64, 128, 256] {
        let cfg = GnnOneConfig {
            cache_size: cache,
            ..Default::default()
        };
        let r = GnnOneSpmm::new(Arc::clone(&graph), cfg)
            .run(&gpu, &ev, &x16, f, &y_out)
            .expect("launch");
        println!("  cache {cache:>4} NZE/warp: {:>8.3} ms", r.time_ms);
    }

    // --- Fig. 10: scheduling policy (SpMM, dim 32) ---
    let f = 32;
    let y_out = DeviceBuffer::<f32>::zeros(n * f);
    println!("\nSpMM Stage-2 NZE scheduling (Fig. 10):");
    for (label, schedule) in [
        ("Consecutive", Schedule::Consecutive),
        ("Round-robin", Schedule::RoundRobin),
    ] {
        let cfg = GnnOneConfig {
            schedule,
            ..Default::default()
        };
        let r = GnnOneSpmm::new(Arc::clone(&graph), cfg)
            .run(&gpu, &ev, &x, f, &y_out)
            .expect("launch");
        println!(
            "  {label:<12} {:>8.3} ms | {:>7} atomics | {:>8} load instructions",
            r.time_ms, r.stats.atomics, r.stats.loads
        );
    }
}
