//! Compare every SDDMM and SpMM system on one graph across feature
//! lengths — a miniature of the paper's Figs. 3 and 4.
//!
//! ```sh
//! cargo run --release --example kernel_shootout
//! ```

use std::sync::Arc;

use gnnone::kernels::graph::GraphData;
use gnnone::kernels::registry;
use gnnone::sim::{DeviceBuffer, Gpu, GpuSpec};
use gnnone::sparse::datasets::{Dataset, Scale};

fn main() {
    // The hollywood09 analogue: dense and heavy-tailed — the kind of graph
    // where data-load balance decides everything.
    let dataset = Dataset::by_id("G11", Scale::Small).expect("G11 exists");
    let graph = Arc::new(GraphData::new(dataset.coo.clone()));
    let gpu = Gpu::new(GpuSpec::a100_scaled(4));
    let n = graph.num_vertices();
    println!(
        "graph: {} analogue — {} vertices, {} NZEs, max degree {}\n",
        dataset.spec.name,
        n,
        graph.nnz(),
        dataset.csr.max_degree()
    );

    for f in [6usize, 16, 32, 64] {
        println!("--- feature length {f} ---");
        let x = DeviceBuffer::from_slice(&vec![0.5f32; n * f]);
        let y = DeviceBuffer::from_slice(&vec![0.25f32; n * f]);
        let w_out = DeviceBuffer::<f32>::zeros(graph.nnz());
        let mut base = None;
        for kernel in registry::sddmm_kernels(&graph) {
            match kernel.run(&gpu, &x, &y, f, &w_out) {
                Ok(r) => {
                    let base_ms = *base.get_or_insert(r.time_ms);
                    println!(
                        "  SDDMM {:<12} {:>9.3} ms  ({:>5.2}x vs GnnOne)  [{}]",
                        kernel.name(),
                        r.time_ms,
                        r.time_ms / base_ms,
                        kernel.format()
                    );
                }
                Err(e) => println!("  SDDMM {:<12} failed: {e}", kernel.name()),
            }
        }
        let edge_vals = DeviceBuffer::from_slice(&vec![1.0f32; graph.nnz()]);
        let y_out = DeviceBuffer::<f32>::zeros(n * f);
        let mut base = None;
        for kernel in registry::spmm_kernels(&graph) {
            match kernel.run(&gpu, &edge_vals, &x, f, &y_out) {
                Ok(r) => {
                    let base_ms = *base.get_or_insert(r.time_ms);
                    println!(
                        "  SpMM  {:<12} {:>9.3} ms  ({:>5.2}x vs GnnOne)  [{}]",
                        kernel.name(),
                        r.time_ms,
                        r.time_ms / base_ms,
                        kernel.format()
                    );
                }
                Err(e) => println!("  SpMM  {:<12} failed: {e}", kernel.name()),
            }
        }
    }
}
