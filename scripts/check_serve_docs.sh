#!/usr/bin/env bash
# Drift check: docs/SERVING.md must match the serving stack the code
# actually ships — the outcome/breaker vocabulary must be the one the
# enums spell, the typed-error surface must exist, the CLI flags its
# code blocks mention must be parsed, the BENCH_SERVE.json fields it
# documents must be emitted, and the files it cross-references must
# exist. Pure grep — no build needed — mirroring check_fusion_docs.sh.
set -euo pipefail
cd "$(dirname "$0")/.."

DOC=docs/SERVING.md
SERVER=crates/serve/src/server.rs
BREAKER=crates/serve/src/breaker.rs
BENCH=crates/bench/src/serve_bench.rs
BIN=crates/serve/src/bin/gnnone_serve.rs
PROF=crates/bench/src/bin/gnnone_prof.rs
ERRORS=crates/sim/src/error.rs
fail=0

err() {
  echo "check_serve_docs: $*" >&2
  fail=1
}

[ -f "$DOC" ] || { err "$DOC is missing"; exit 1; }

# 1. The outcome vocabulary the doc promises must be the one
#    OutcomeKind::as_str spells, and likewise the breaker states.
for kind in success degraded rejected deadline-exceeded; do
  grep -qF -- "\`$kind\`" "$DOC" || err "$DOC never lists outcome kind $kind"
  grep -qF -- "\"$kind\"" "$SERVER" || err "$SERVER no longer spells outcome $kind"
done
for state in closed open half-open; do
  grep -qF -- "\`$state\`" "$DOC" || err "$DOC never lists breaker state $state"
  grep -qF -- "\"$state\"" "$BREAKER" || err "$BREAKER no longer spells state $state"
done

# 2. The typed-error surface the doc quotes must exist in the taxonomy.
for variant in Rejected DeadlineExceeded; do
  grep -qF -- "GnnOneError::$variant" "$DOC" \
    || err "$DOC never quotes GnnOneError::$variant"
  grep -qE -- "$variant \{" "$ERRORS" \
    || err "$ERRORS no longer defines $variant"
done
for field in queue_depth retry_after_ms deadline_ms now_ms needed_ms; do
  grep -qF -- "$field" "$DOC" || err "$DOC never mentions error field $field"
  grep -qF -- "$field" "$ERRORS" || err "$ERRORS no longer carries $field"
done

# 3. Every --flag named inside the doc's fenced code blocks must be
#    parsed by the serve binary or the gnnone-prof parser.
doc_flags=$(awk '/^```/{in_block=!in_block; next} in_block' "$DOC" \
  | grep -oE '\-\-[a-z][a-z-]*' | sort -u)
for flag in $doc_flags; do
  case "$flag" in
    --release|--bin|--example|--workspace) continue ;;
  esac
  if ! grep -qF -- "\"$flag\"" "$BIN" && ! grep -qF -- "\"$flag\"" "$PROF"; then
    err "$DOC references $flag but neither $BIN nor $PROF parses it"
  fi
done

# 4. Every BENCH_SERVE.json field the doc documents must be emitted by
#    the bench, and the committed artifact must carry the schema tag.
for field in schema requests_per_phase qps_target chaos_permille \
  submitted resolved succeeded degraded rejected deadline_exceeded \
  retries launches launch_failures watchdog_trips chaos_injected \
  breaker_trips breaker_open_seen p50_ms p99_ms qps_sustained \
  elapsed_ms totals zero_silent_drops tripped recovered; do
  grep -qF -- "$field" "$DOC" || err "$DOC never documents field $field"
  grep -qF -- "\"$field\"" "$BENCH" || err "$BENCH no longer emits $field"
done
grep -qF -- "gnnone-serve-bench/v1" "$DOC" || err "$DOC never names the schema"
[ -f BENCH_SERVE.json ] || err "committed BENCH_SERVE.json is missing"
grep -qF -- "gnnone-serve-bench/v1" BENCH_SERVE.json \
  || err "BENCH_SERVE.json lost its schema tag"

# 5. The surface the doc documents must still exist in the code.
for needed in "GnnOneRowSpmm" "IrFusedGat" "try_admit" "run_batch" \
  "watchdog_budget_ms" "RetryPolicy" "breaker_threshold" \
  "breaker_cooldown_ms" "degraded: true" "serve-bench" "batch_parity"; do
  grep -qF -- "$needed" "$DOC" || err "$DOC never mentions $needed"
done
grep -qrF -- "fn try_admit" crates/serve/src/batch.rs \
  || err "batcher admission surface renamed; update $DOC"
grep -qrF -- "fn run_batch" crates/serve/src/exec.rs \
  || err "dispatcher surface renamed; update $DOC"

# 6. Docs that cross-reference the serving stack must point at real
#    files.
for ref in docs/SERVING.md crates/serve/src/lib.rs \
  crates/serve/src/model.rs crates/serve/src/batch.rs \
  crates/serve/src/exec.rs crates/serve/src/breaker.rs \
  crates/serve/src/server.rs crates/serve/src/service.rs \
  crates/serve/src/bin/gnnone_serve.rs \
  crates/serve/tests/batch_parity.rs crates/bench/src/serve_bench.rs; do
  [ -e "$ref" ] || err "referenced artifact $ref does not exist"
done

if [ "$fail" -ne 0 ]; then
  exit 1
fi
echo "check_serve_docs: OK"
