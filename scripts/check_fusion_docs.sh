#!/usr/bin/env bash
# Drift check: docs/FUSION_IR.md must match the fusion IR the code
# actually ships — the op vocabulary must be the one OpKind spells, the
# lowering targets must be the pipelines Step::kernel names, the CLI
# flags its code blocks mention must be parsed, and the files it
# cross-references must exist. Pure grep — no build needed — mirroring
# check_analysis_docs.sh.
set -euo pipefail
cd "$(dirname "$0")/.."

DOC=docs/FUSION_IR.md
IR=crates/kernels/src/ir/mod.rs
LOWER=crates/kernels/src/ir/lower.rs
PROF=crates/bench/src/bin/gnnone_prof.rs
CLI=crates/bench/src/cli.rs
fail=0

err() {
  echo "check_fusion_docs: $*" >&2
  fail=1
}

[ -f "$DOC" ] || { err "$DOC is missing"; exit 1; }

# 1. Every op the doc's vocabulary table lists must be spelled the same
#    way by OpKind::as_str, and vice versa.
for op in copy_u copy_v u_add_v u_mul_e u_dot_v leaky_relu edge_softmax \
  aggregate_sum aggregate_max; do
  grep -qF -- "\`$op\`" "$DOC" || err "$DOC never lists op $op"
  grep -qF -- "\"$op\"" "$IR" || err "$IR no longer spells op $op"
done

# 2. The lowering targets the doc names must be the pipelines the Step
#    vocabulary launches.
for pipe in "CsrRows x RowSoftmaxGat" "CsrRows x RowAccum" \
  "CooNzes x EdgeDot" "CooNzes x ScalarGather"; do
  doc_pipe=${pipe/ x / × }
  grep -qF -- "$doc_pipe" "$DOC" || err "$DOC never names pipeline $doc_pipe"
  grep -qF -- "$pipe" "$LOWER" || err "$LOWER no longer launches $pipe"
done

# 3. Every --flag named inside the doc's fenced code blocks must be
#    parsed by the CLI or the gnnone-prof parser.
doc_flags=$(awk '/^```/{in_block=!in_block; next} in_block' "$DOC" \
  | grep -oE '\-\-[a-z][a-z-]*' | sort -u)
for flag in $doc_flags; do
  case "$flag" in
    --release|--bin|--example|--workspace) continue ;;
  esac
  if ! grep -qF -- "\"$flag\"" "$CLI" && ! grep -qF -- "\"$flag\"" "$PROF"; then
    err "$DOC references $flag but neither $CLI nor $PROF parses it"
  fi
done

# 4. The surface the doc documents must still exist in the code.
for needed in "gat_attention_inference_graph" "LowerOptions" "plan_ms" \
  "fused_by_name" "edge_apply_by_name" "plan_summaries" "run_plan" \
  "fusion-parity" "host_edge_softmax" "gat_fused_vs_unfused"; do
  grep -qF -- "$needed" "$DOC" || err "$DOC never mentions $needed"
done
grep -qrF -- "gat_attention_inference_graph" "$IR" \
  || err "$IR no longer defines gat_attention_inference_graph"
grep -qF -- "gat_fused_vs_unfused" crates/bench/src/fuse.rs \
  || err "fuse report section renamed; update $DOC"

# 5. Docs that cross-reference the IR must point at real files.
for ref in docs/FUSION_IR.md docs/UNIFIED.md docs/STATIC_ANALYSIS.md \
  crates/kernels/src/ir/mod.rs crates/kernels/src/ir/lower.rs \
  crates/kernels/src/ir/exec.rs crates/kernels/src/ir/kernels.rs \
  crates/kernels/src/ir/summary.rs crates/kernels/tests/fusion_ir.rs \
  crates/gnn/tests/fusion_parity.rs crates/gnn/src/graphops.rs \
  crates/bench/src/fuse.rs; do
  [ -e "$ref" ] || err "referenced artifact $ref does not exist"
done

if [ "$fail" -ne 0 ]; then
  exit 1
fi
echo "check_fusion_docs: OK"
