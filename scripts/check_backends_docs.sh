#!/usr/bin/env bash
# Drift check: every CLI flag and subcommand that docs/BACKENDS.md's code
# blocks mention must exist in the bench sources, and the flags the
# backend feature actually ships must be documented. Pure grep — no build
# needed — so the docs job stays fast.
set -euo pipefail
cd "$(dirname "$0")/.."

DOC=docs/BACKENDS.md
CLI=crates/bench/src/cli.rs
PROF=crates/bench/src/bin/gnnone_prof.rs
fail=0

err() {
  echo "check_backends_docs: $*" >&2
  fail=1
}

[ -f "$DOC" ] || { err "$DOC is missing"; exit 1; }

# 1. Every --flag named inside the doc's fenced code blocks must appear
#    in the CLI parser or the gnnone-prof bench parser. awk extracts the
#    code blocks; grep pulls the flags.
doc_flags=$(awk '/^```/{in_block=!in_block; next} in_block' "$DOC" \
  | grep -oE '\-\-[a-z][a-z-]*' | sort -u)
for flag in $doc_flags; do
  case "$flag" in
    # cargo's own flags, not ours
    --release|--bin|--example|--workspace) continue ;;
  esac
  if ! grep -qF -- "\"$flag\"" "$CLI" && ! grep -qF -- "\"$flag\"" "$PROF"; then
    err "$DOC references $flag but neither $CLI nor $PROF parses it"
  fi
done

# 2. The backend surface the code ships must be documented: flags,
#    accepted values, the bench subcommand, and the committed baseline.
for needed in "--backend" "--threads" "sim" "native" "gnnone-prof" \
  "bench" "BENCH_NATIVE.json" "ExecReport" "NativeEngine" "require_sim_backend"; do
  if ! grep -qF -- "$needed" "$DOC"; then
    err "$DOC never mentions $needed"
  fi
done

# 3. The error-message contracts quoted in the doc must match the code.
grep -qF 'unknown backend' crates/kernels/src/backend/mod.rs \
  || err "BackendKind parse error moved; update $DOC"
grep -qF 'attaches to the simulator and cannot be combined' "$CLI" \
  || err "sim-only flag rejection message moved; update $DOC"
grep -qF 'requires --backend native' "$CLI" \
  || err "--threads rejection message moved; update $DOC"

# 4. Docs that cross-reference the backend docs must still exist and
#    point at real files.
for ref in docs/BACKENDS.md EXPERIMENTS.md BENCH_NATIVE.json \
  crates/kernels/tests/backend_parity.rs; do
  [ -e "$ref" ] || err "referenced artifact $ref does not exist"
done

if [ "$fail" -ne 0 ]; then
  exit 1
fi
echo "check_backends_docs: OK"
