#!/usr/bin/env bash
# Reproduce every table/figure of the paper plus the extension experiments.
# Usage: scripts/repro_all.sh [tiny|small|medium]   (default: medium)
set -euo pipefail
cd "$(dirname "$0")/.."
SCALE="${1:-medium}"

cargo build --release --workspace

run() {
  local name="$1"; shift
  echo "=== $name $*"
  "./target/release/$name" "$@" | tee "results/$name.log"
}

run table1 --scale "$SCALE"
run fig3_sddmm --scale "$SCALE"
run fig4_spmm --scale "$SCALE"
run fig5_accuracy
run fig6_gat_training
run fig7_gcn_gin_training
run fig8_sddmm_ablation --scale "$SCALE"
run fig9_cache_size --scale "$SCALE"
run fig10_schedule --scale "$SCALE"
run fig11_breakdown --scale "$SCALE"
run fig12_spmv --scale "$SCALE"
run ext_spmv_classes --scale "$SCALE"
run ext_spmm_extras --scale "$SCALE" --datasets G3,G5,G10,G14,G16
run ext_fused_gat --scale "$SCALE" --datasets G3,G5,G10,G12,G14 --dims 16
run ext_format_tradeoff --scale "$SCALE"
run ext_sim_sensitivity --scale "$SCALE"

echo "All results in results/*.log and results/*.json"
