#!/usr/bin/env bash
# Drift check: docs/STATIC_ANALYSIS.md must match the verifier the code
# actually ships — every CLI flag its code blocks mention must be parsed,
# the verdict/witness vocabulary it documents must exist in the analysis
# sources, and the error-message contracts it quotes must match the code.
# Pure grep — no build needed — mirroring check_backends_docs.sh.
set -euo pipefail
cd "$(dirname "$0")/.."

DOC=docs/STATIC_ANALYSIS.md
CLI=crates/bench/src/cli.rs
PROF=crates/bench/src/bin/gnnone_prof.rs
CHECK=crates/kernels/src/analysis/check.rs
fail=0

err() {
  echo "check_analysis_docs: $*" >&2
  fail=1
}

[ -f "$DOC" ] || { err "$DOC is missing"; exit 1; }

# 1. Every --flag named inside the doc's fenced code blocks must appear
#    in the CLI parser or the gnnone-prof parser.
doc_flags=$(awk '/^```/{in_block=!in_block; next} in_block' "$DOC" \
  | grep -oE '\-\-[a-z][a-z-]*' | sort -u)
for flag in $doc_flags; do
  case "$flag" in
    # cargo's own flags, not ours
    --release|--bin|--example|--workspace) continue ;;
  esac
  if ! grep -qF -- "\"$flag\"" "$CLI" && ! grep -qF -- "\"$flag\"" "$PROF"; then
    err "$DOC references $flag but neither $CLI nor $PROF parses it"
  fi
done

# 2. The verifier surface the code ships must be documented: the
#    subcommand, the pre-launch flag, the verdict vocabulary, and the
#    entry points.
for needed in "gnnone-prof verify" "--verify" "--sanitize" \
  "AccessSummary" "access_summary" "check_summary" "Proved" "Refuted" \
  "Unknown" "ops_per_warp" "last_max_warp_ops" "static_verdicts" \
  "seeded" "24-point"; do
  if ! grep -qF -- "$needed" "$DOC"; then
    err "$DOC never mentions $needed"
  fi
done

# 3. The witness tags the doc lists must be the ones the checker emits.
for tag in "race" "bounds" "shared-epoch" "shared-uninit" "shared-oob" \
  "budget"; do
  grep -qF -- "\`$tag\`" "$DOC" || err "$DOC never lists witness tag $tag"
  grep -qF -- "\"$tag\"" "$CHECK" || err "$CHECK no longer emits witness tag $tag"
done

# 4. The error-message contracts quoted in the doc must match the code.
grep -qF 'the static alternative is' "$CLI" \
  || err "sim-only rejection no longer names the static alternative; update $DOC"
grep -qF 'static verification failed' crates/bench/src/verify.rs \
  || err "preflight refusal message moved; update $DOC"

# 5. Docs that cross-reference the verifier must point at real files.
for ref in docs/STATIC_ANALYSIS.md docs/BACKENDS.md \
  crates/kernels/src/analysis/mod.rs crates/kernels/src/analysis/check.rs \
  crates/kernels/src/analysis/seeded.rs \
  crates/kernels/src/analysis/summaries.rs \
  crates/kernels/tests/static_verdicts.rs crates/bench/src/verify.rs; do
  [ -e "$ref" ] || err "referenced artifact $ref does not exist"
done

if [ "$fail" -ne 0 ]; then
  exit 1
fi
echo "check_analysis_docs: OK"
