#!/usr/bin/env bash
# Drift check: the sharded-execution surface documented in
# docs/ROBUSTNESS.md §7 and docs/BACKENDS.md must match what the code
# ships — flags, subcommands, fault slugs, error-message contracts and
# cross-referenced artifacts. Pure grep — no build needed — so the docs
# job stays fast.
set -euo pipefail
cd "$(dirname "$0")/.."

DOC=docs/ROBUSTNESS.md
BDOC=docs/BACKENDS.md
CLI=crates/bench/src/cli.rs
PROF=crates/bench/src/bin/gnnone_prof.rs
RUNNER=crates/bench/src/runner.rs
fail=0

err() {
  echo "check_shard_docs: $*" >&2
  fail=1
}

[ -f "$DOC" ] || { err "$DOC is missing"; exit 1; }

# 1. The robustness doc must carry the §7 layer and its API surface.
for needed in "## 7." "partition_graph" "ShardedExecutor" "ShardTopology" \
  "RetryPolicy" "ShardAbort" "ShardFaultKind" "gnnone-prof shard" \
  "--shards" "checkpoint" "halo" "recovered-identical" \
  "degraded-declined" "silent-corruption"; do
  if ! grep -qF -- "$needed" "$DOC"; then
    err "$DOC never mentions $needed"
  fi
done

# 2. The backends doc must describe sharded dispatch on both backends.
for needed in "Sharded dispatch" "--shards" "ShardedExecutor" \
  "require_unsharded" "MultiGpu"; do
  if ! grep -qF -- "$needed" "$BDOC"; then
    err "$BDOC never mentions $needed"
  fi
done

# 3. The flags and subcommand the docs promise must exist in the code.
grep -qF -- '"--shards"' "$CLI" || err "$CLI no longer parses --shards"
grep -qF -- '"shard"' "$PROF" || err "$PROF no longer dispatches the shard subcommand"
grep -qF -- '"--seeds"' "$PROF" || err "$PROF no longer parses --seeds"

# 4. The fault slugs in the doc's table must match the chaos engine.
for slug in shard-kill shard-stall halo-drop transient-shard-launch; do
  grep -qF -- "$slug" "$DOC" || err "$DOC never names fault slug $slug"
  grep -qF -- "\"$slug\"" crates/sim/src/chaos.rs \
    || err "fault slug $slug moved out of crates/sim/src/chaos.rs; update $DOC"
done

# 5. The error-message contracts the docs rely on must match the code.
grep -qF 'has no sharded execution path' "$RUNNER" \
  || err "require_unsharded message moved; update $BDOC"
grep -qF -- '--shards multi-device topology' "$CLI" \
  || err "sim-only flag vs --shards rejection message moved; update $BDOC"

# 6. Artifacts the docs cross-reference must exist.
for ref in crates/sparse/src/partition.rs crates/kernels/src/shard/exec.rs \
  crates/bench/src/shard.rs crates/kernels/tests/shard_parity.rs \
  crates/gnn/tests/shard_aggregate.rs; do
  [ -e "$ref" ] || err "referenced artifact $ref does not exist"
done

if [ "$fail" -ne 0 ]; then
  exit 1
fi
echo "check_shard_docs: OK"
