//! Property-based gradient checking: every differentiable op's analytic
//! gradient matches central finite differences on random inputs.

use gnnone_tensor::{ops, Tape, Tensor, VarId};
use proptest::prelude::*;

fn arb_tensor(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    prop::collection::vec(-2.0f32..2.0, rows * cols)
        .prop_map(move |data| Tensor::from_vec(rows, cols, data))
}

/// Central finite-difference check of `build`'s scalar output w.r.t. `x0`.
fn gradcheck(build: impl Fn(&mut Tape, VarId) -> VarId, x0: &Tensor, tol: f32) {
    let eval = |x: &Tensor| {
        let mut tape = Tape::new();
        let xid = tape.leaf(x.clone(), false);
        let out = build(&mut tape, xid);
        tape.value(out).item() as f64
    };
    let mut tape = Tape::new();
    let xid = tape.leaf(x0.clone(), true);
    let out = build(&mut tape, xid);
    let grads = tape.backward(out);
    let ana = grads[xid].as_ref().expect("gradient exists");
    let eps = 1e-3f32;
    for i in 0..x0.len() {
        // Central differences are invalid where x straddles a ReLU-family
        // kink: the op is not differentiable there, so skip those points.
        if x0.data()[i].abs() < 4.0 * eps {
            continue;
        }
        let mut plus = x0.clone();
        plus.data_mut()[i] += eps;
        let mut minus = x0.clone();
        minus.data_mut()[i] -= eps;
        let num = ((eval(&plus) - eval(&minus)) / (2.0 * eps as f64)) as f32;
        let a = ana.data()[i];
        assert!(
            (num - a).abs() <= tol * (1.0 + num.abs().max(a.abs())),
            "grad[{i}]: numeric {num} vs analytic {a}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn relu_chain(x in arb_tensor(2, 5)) {
        gradcheck(|t, x| {
            let r = ops::relu(t, x);
            let d = ops::mul(t, r, r);
            ops::sum(t, d)
        }, &x, 5e-2);
    }

    #[test]
    fn leaky_relu_scaled(x in arb_tensor(3, 3), slope in 0.01f32..0.5) {
        gradcheck(|t, x| {
            let r = ops::leaky_relu(t, x, slope);
            let s = ops::scale(t, r, 1.7);
            ops::sum(t, s)
        }, &x, 5e-2);
    }

    #[test]
    fn log_softmax_loss(x in arb_tensor(3, 4)) {
        gradcheck(|t, x| {
            let ls = ops::log_softmax(t, x);
            ops::nll_loss(t, ls, &[1, 3, 0], None)
        }, &x, 5e-2);
    }

    #[test]
    fn matmul_with_constant(x in arb_tensor(3, 4), w in arb_tensor(4, 2)) {
        gradcheck(|t, x| {
            let wid = t.leaf(w.clone(), false);
            let y = ops::matmul(t, x, wid);
            let sq = ops::mul(t, y, y);
            ops::sum(t, sq)
        }, &x, 8e-2);
    }

    #[test]
    fn bias_broadcast(x in arb_tensor(4, 3), b in arb_tensor(1, 3)) {
        gradcheck(|t, x| {
            let bid = t.leaf(b.clone(), false);
            let y = ops::add_bias(t, x, bid);
            let r = ops::relu(t, y);
            ops::sum(t, r)
        }, &x, 5e-2);
    }

    /// Composite: a one-layer MLP end to end.
    #[test]
    fn mlp_end_to_end(x in arb_tensor(2, 3), w in arb_tensor(3, 3)) {
        gradcheck(|t, x| {
            let wid = t.leaf(w.clone(), false);
            let z = ops::matmul(t, x, wid);
            let h = ops::relu(t, z);
            let ls = ops::log_softmax(t, h);
            ops::nll_loss(t, ls, &[0, 2], None)
        }, &x, 8e-2);
    }

    /// Backward through shared subexpressions accumulates correctly.
    #[test]
    fn diamond_graph(x in arb_tensor(2, 2)) {
        gradcheck(|t, x| {
            let a = ops::scale(t, x, 2.0);
            let b = ops::relu(t, x);
            let c = ops::add(t, a, b);
            ops::sum(t, c)
        }, &x, 5e-2);
    }

    /// sum is linear: d(sum(αx))/dx = α everywhere.
    #[test]
    fn sum_gradient_is_constant(x in arb_tensor(3, 3), alpha in -3.0f32..3.0) {
        let mut tape = Tape::new();
        let xid = tape.leaf(x, true);
        let s = ops::scale(&mut tape, xid, alpha);
        let out = ops::sum(&mut tape, s);
        let grads = tape.backward(out);
        for &g in grads[xid].as_ref().unwrap().data() {
            prop_assert!((g - alpha).abs() < 1e-5);
        }
    }
}
