//! Row-major 2-D tensor with rayon-parallel dense math.

use rayon::prelude::*;

/// A dense row-major matrix of `f32`. Vectors are `n × 1` or `1 × n`.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// Zero-filled `rows × cols` tensor.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds from a row-major vector.
    ///
    /// # Panics
    /// If `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Self { rows, cols, data }
    }

    /// A `1 × 1` scalar tensor.
    pub fn scalar(v: f32) -> Self {
        Self::from_vec(1, 1, vec![v])
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Row-major data slice.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable row-major data slice.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// One row as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The single value of a `1 × 1` tensor.
    pub fn item(&self) -> f32 {
        assert_eq!(self.len(), 1, "item() on non-scalar tensor");
        self.data[0]
    }

    /// Matrix product `self · other` (rayon-parallel over output rows).
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let (n, k, m) = (self.rows, self.cols, other.cols);
        let mut out = vec![0.0f32; n * m];
        out.par_chunks_mut(m).enumerate().for_each(|(i, out_row)| {
            let a_row = &self.data[i * k..(i + 1) * k];
            for (kk, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[kk * m..(kk + 1) * m];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        });
        Tensor::from_vec(n, m, out)
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Tensor {
        let mut out = vec![0.0f32; self.len()];
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[c * self.rows + r] = self.get(r, c);
            }
        }
        Tensor::from_vec(self.cols, self.rows, out)
    }

    /// Lane-wise map.
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
        let data = self.data.par_iter().map(|&v| f(v)).collect();
        Tensor::from_vec(self.rows, self.cols, data)
    }

    /// Element-wise combination with a same-shape tensor.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32 + Sync) -> Tensor {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "zip shape mismatch"
        );
        let data = self
            .data
            .par_iter()
            .zip(&other.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Tensor::from_vec(self.rows, self.cols, data)
    }

    /// `self + other` element-wise.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a + b)
    }

    /// `self * s` element-wise.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|v| v * s)
    }

    /// Accumulate `other` into `self` (gradient accumulation).
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Memory footprint in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.len() as u64 * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_hand_checked() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let i = Tensor::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn matmul_matches_transpose_formula() {
        // (A·B)ᵀ = Bᵀ·Aᵀ
        let a = Tensor::from_vec(2, 3, (0..6).map(|i| i as f32).collect());
        let b = Tensor::from_vec(3, 4, (0..12).map(|i| (i as f32) * 0.5).collect());
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        assert_eq!(left, right);
    }

    #[test]
    fn map_zip_add_scale() {
        let a = Tensor::from_vec(1, 3, vec![1.0, -2.0, 3.0]);
        assert_eq!(a.map(f32::abs).data(), &[1.0, 2.0, 3.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, -4.0, 6.0]);
        let b = a.add(&a);
        assert_eq!(b.data(), &[2.0, -4.0, 6.0]);
        assert_eq!(a.zip(&b, |x, y| y - x).data(), &[1.0, -2.0, 3.0]);
    }

    #[test]
    fn item_and_sum() {
        assert_eq!(Tensor::scalar(5.0).item(), 5.0);
        assert_eq!(Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).sum(), 10.0);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn matmul_shape_checked() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = Tensor::zeros(1, 2);
        a.add_assign(&Tensor::from_vec(1, 2, vec![1.0, 2.0]));
        a.add_assign(&Tensor::from_vec(1, 2, vec![0.5, 0.5]));
        assert_eq!(a.data(), &[1.5, 2.5]);
    }
}
