//! Deterministic parameter initialization.

use crate::tensor::Tensor;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Glorot/Xavier uniform initialization for a `fan_in × fan_out` weight.
pub fn xavier_uniform(fan_in: usize, fan_out: usize, seed: u64) -> Tensor {
    let limit = (6.0 / (fan_in + fan_out) as f64).sqrt() as f32;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let data = (0..fan_in * fan_out)
        .map(|_| rng.gen_range(-limit..limit))
        .collect();
    Tensor::from_vec(fan_in, fan_out, data)
}

/// Uniform `[-limit, limit]` vector (attention parameters).
pub fn uniform_vec(len: usize, limit: f32, seed: u64) -> Tensor {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let data = (0..len).map(|_| rng.gen_range(-limit..limit)).collect();
    Tensor::from_vec(1, len, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_within_bounds_and_deterministic() {
        let w = xavier_uniform(16, 8, 3);
        let limit = (6.0f64 / 24.0).sqrt() as f32;
        assert!(w.data().iter().all(|&v| v.abs() <= limit));
        assert_eq!(w, xavier_uniform(16, 8, 3));
        assert_ne!(w, xavier_uniform(16, 8, 4));
    }

    #[test]
    fn xavier_is_not_degenerate() {
        let w = xavier_uniform(64, 64, 1);
        let mean: f32 = w.data().iter().sum::<f32>() / w.len() as f32;
        assert!(mean.abs() < 0.05);
        assert!(w.data().iter().any(|&v| v != 0.0));
    }

    #[test]
    fn uniform_vec_shape() {
        let v = uniform_vec(10, 0.5, 2);
        assert_eq!((v.rows(), v.cols()), (1, 10));
        assert!(v.data().iter().all(|&x| x.abs() <= 0.5));
    }
}
