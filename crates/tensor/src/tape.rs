//! Define-by-run reverse-mode autograd tape.
//!
//! Ops append nodes holding the forward value, parent IDs, and a
//! [`BackwardOp`] that maps the incoming gradient to parent gradients.
//! The trait is public so downstream crates can register custom nodes —
//! `gnnone-gnn` uses this to make SpMM's backward call SDDMM/SpMM(Aᵀ),
//! the kernel pairing at the heart of the paper's GNN workflow (§1, §2).

use std::rc::Rc;

use crate::tensor::Tensor;

/// Index of a tape node.
pub type VarId = usize;

/// Backward rule of one op: given the gradient flowing into the node's
/// output and the saved parent values, produce a gradient per parent
/// (`None` when a parent needs no gradient).
pub trait BackwardOp {
    /// Computes parent gradients.
    fn backward(&self, grad: &Tensor, inputs: &[Rc<Tensor>]) -> Vec<Option<Tensor>>;

    /// Op name for diagnostics.
    fn name(&self) -> &'static str {
        "op"
    }
}

struct Node {
    value: Rc<Tensor>,
    parents: Vec<VarId>,
    op: Option<Box<dyn BackwardOp>>,
    requires_grad: bool,
}

/// The autograd tape: rebuilt every training iteration.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

impl Tape {
    /// Empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes recorded.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Registers a leaf (input or parameter).
    pub fn leaf(&mut self, value: Tensor, requires_grad: bool) -> VarId {
        self.nodes.push(Node {
            value: Rc::new(value),
            parents: Vec::new(),
            op: None,
            requires_grad,
        });
        self.nodes.len() - 1
    }

    /// Registers an op node. `parents` are the inputs whose saved values
    /// the backward rule receives, in order.
    pub fn push_op(
        &mut self,
        value: Tensor,
        parents: Vec<VarId>,
        op: Box<dyn BackwardOp>,
    ) -> VarId {
        let requires_grad = parents.iter().any(|&p| self.nodes[p].requires_grad);
        self.nodes.push(Node {
            value: Rc::new(value),
            parents,
            op: Some(op),
            requires_grad,
        });
        self.nodes.len() - 1
    }

    /// Forward value of a node.
    pub fn value(&self, id: VarId) -> &Tensor {
        &self.nodes[id].value
    }

    /// Whether a node requires (or propagates) a gradient — `false` for
    /// no-grad leaves like constant edge weights.
    pub fn requires_grad(&self, id: VarId) -> bool {
        self.nodes[id].requires_grad
    }

    /// Shared handle to a node's value (for saving in ops).
    pub fn value_rc(&self, id: VarId) -> Rc<Tensor> {
        Rc::clone(&self.nodes[id].value)
    }

    /// Reverse pass from `root` (must be scalar-valued for a loss, though
    /// any shape works — the seed gradient is all-ones). Returns one
    /// optional gradient per node id.
    pub fn backward(&self, root: VarId) -> Vec<Option<Tensor>> {
        let mut grads: Vec<Option<Tensor>> = (0..self.nodes.len()).map(|_| None).collect();
        let seed = self.nodes[root].value.map(|_| 1.0);
        grads[root] = Some(seed);
        for id in (0..=root).rev() {
            let Some(grad) = grads[id].take() else {
                continue;
            };
            let node = &self.nodes[id];
            if let Some(op) = &node.op {
                let inputs: Vec<Rc<Tensor>> = node
                    .parents
                    .iter()
                    .map(|&p| Rc::clone(&self.nodes[p].value))
                    .collect();
                let parent_grads = op.backward(&grad, &inputs);
                assert_eq!(
                    parent_grads.len(),
                    node.parents.len(),
                    "{} returned wrong gradient count",
                    op.name()
                );
                for (&p, pg) in node.parents.iter().zip(parent_grads) {
                    let Some(pg) = pg else { continue };
                    if !self.nodes[p].requires_grad && self.nodes[p].op.is_none() {
                        continue;
                    }
                    match &mut grads[p] {
                        Some(acc) => acc.add_assign(&pg),
                        slot @ None => *slot = Some(pg),
                    }
                }
            }
            if node.requires_grad && node.op.is_none() {
                grads[id] = Some(grad); // keep leaf gradients
            }
        }
        grads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;

    #[test]
    fn leaf_value_roundtrip() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::scalar(3.0), true);
        assert_eq!(tape.value(x).item(), 3.0);
        assert_eq!(tape.len(), 1);
    }

    #[test]
    fn chain_rule_through_two_ops() {
        // f(x) = sum(relu(x)²-ish): use mul for square.
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(1, 2, vec![2.0, -3.0]), true);
        let y = ops::mul(&mut tape, x, x); // x²
        let s = ops::sum(&mut tape, y);
        let grads = tape.backward(s);
        // d(x²)/dx = 2x (zero where relu clipped nothing here).
        assert_eq!(grads[x].as_ref().unwrap().data(), &[4.0, -6.0]);
    }

    #[test]
    fn gradients_accumulate_across_paths() {
        // f = sum(x + x): grad = 2.
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(1, 2, vec![1.0, 1.0]), true);
        let y = ops::add(&mut tape, x, x);
        let s = ops::sum(&mut tape, y);
        let grads = tape.backward(s);
        assert_eq!(grads[x].as_ref().unwrap().data(), &[2.0, 2.0]);
    }

    #[test]
    fn no_grad_leaves_stay_none() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::scalar(1.0), true);
        let c = tape.leaf(Tensor::scalar(5.0), false);
        let y = ops::mul(&mut tape, x, c);
        let grads = tape.backward(y);
        assert!(grads[c].is_none());
        assert_eq!(grads[x].as_ref().unwrap().item(), 5.0);
    }

    #[test]
    fn matmul_gradients_match_finite_difference() {
        let a0 = Tensor::from_vec(2, 3, vec![0.5, -1.0, 2.0, 1.5, 0.3, -0.7]);
        let b0 = Tensor::from_vec(3, 2, vec![1.0, 0.2, -0.4, 0.9, 0.8, -1.1]);
        let f = |a: &Tensor, b: &Tensor| a.matmul(b).sum();

        let mut tape = Tape::new();
        let a = tape.leaf(a0.clone(), true);
        let b = tape.leaf(b0.clone(), true);
        let c = ops::matmul(&mut tape, a, b);
        let s = ops::sum(&mut tape, c);
        let grads = tape.backward(s);

        let eps = 1e-3;
        for i in 0..a0.len() {
            let mut ap = a0.clone();
            ap.data_mut()[i] += eps;
            let num = (f(&ap, &b0) - f(&a0, &b0)) / eps;
            let ana = grads[a].as_ref().unwrap().data()[i];
            assert!((num - ana).abs() < 1e-2, "dA[{i}]: num {num} vs ana {ana}");
        }
        for i in 0..b0.len() {
            let mut bp = b0.clone();
            bp.data_mut()[i] += eps;
            let num = (f(&a0, &bp) - f(&a0, &b0)) / eps;
            let ana = grads[b].as_ref().unwrap().data()[i];
            assert!((num - ana).abs() < 1e-2, "dB[{i}]: num {num} vs ana {ana}");
        }
    }
}
