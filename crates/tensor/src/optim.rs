//! Optimizers: Adam (used for all GNN training runs) and SGD.

use crate::tensor::Tensor;

/// A trainable parameter with its optimizer state.
#[derive(Debug, Clone)]
pub struct Param {
    /// Current value.
    pub value: Tensor,
    m: Tensor,
    v: Tensor,
}

impl Param {
    /// Wraps an initial value.
    pub fn new(value: Tensor) -> Self {
        let m = Tensor::zeros(value.rows(), value.cols());
        let v = Tensor::zeros(value.rows(), value.cols());
        Self { value, m, v }
    }
}

/// Adam optimizer (β₁ = 0.9, β₂ = 0.999, ε = 1e-8).
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: i32,
}

impl Adam {
    /// Adam with the standard hyper-parameters.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
        }
    }

    /// Applies one step to every (param, grad) pair; `None` grads skip.
    pub fn step(&mut self, params: &mut [&mut Param], grads: &[Option<&Tensor>]) {
        assert_eq!(params.len(), grads.len());
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t);
        let bc2 = 1.0 - self.beta2.powi(self.t);
        for (p, g) in params.iter_mut().zip(grads) {
            let Some(g) = g else { continue };
            assert_eq!(p.value.rows(), g.rows(), "grad shape mismatch");
            assert_eq!(p.value.cols(), g.cols(), "grad shape mismatch");
            for i in 0..p.value.len() {
                let gi = g.data()[i];
                let m = self.beta1 * p.m.data()[i] + (1.0 - self.beta1) * gi;
                let v = self.beta2 * p.v.data()[i] + (1.0 - self.beta2) * gi * gi;
                p.m.data_mut()[i] = m;
                p.v.data_mut()[i] = v;
                let mhat = m / bc1;
                let vhat = v / bc2;
                p.value.data_mut()[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

/// Plain SGD.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
}

impl Sgd {
    /// SGD with learning rate `lr`.
    pub fn new(lr: f32) -> Self {
        Self { lr }
    }

    /// Applies one step.
    pub fn step(&mut self, params: &mut [&mut Param], grads: &[Option<&Tensor>]) {
        for (p, g) in params.iter_mut().zip(grads) {
            let Some(g) = g else { continue };
            for i in 0..p.value.len() {
                p.value.data_mut()[i] -= self.lr * g.data()[i];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizes f(x) = (x - 3)² from x = 0.
    fn quadratic_grad(p: &Param) -> Tensor {
        p.value.map(|x| 2.0 * (x - 3.0))
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut p = Param::new(Tensor::scalar(0.0));
        let mut opt = Adam::new(0.1);
        for _ in 0..500 {
            let g = quadratic_grad(&p);
            opt.step(&mut [&mut p], &[Some(&g)]);
        }
        assert!(
            (p.value.item() - 3.0).abs() < 1e-2,
            "got {}",
            p.value.item()
        );
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut p = Param::new(Tensor::scalar(0.0));
        let mut opt = Sgd::new(0.1);
        for _ in 0..200 {
            let g = quadratic_grad(&p);
            opt.step(&mut [&mut p], &[Some(&g)]);
        }
        assert!((p.value.item() - 3.0).abs() < 1e-3);
    }

    #[test]
    fn none_grads_leave_params_untouched() {
        let mut p = Param::new(Tensor::scalar(1.5));
        let mut opt = Adam::new(0.1);
        opt.step(&mut [&mut p], &[None]);
        assert_eq!(p.value.item(), 1.5);
    }

    #[test]
    fn adam_first_step_is_lr_sized() {
        // With bias correction, the first Adam step has magnitude ≈ lr.
        let mut p = Param::new(Tensor::scalar(0.0));
        let g = Tensor::scalar(10.0);
        let mut opt = Adam::new(0.05);
        opt.step(&mut [&mut p], &[Some(&g)]);
        assert!(
            (p.value.item() + 0.05).abs() < 1e-3,
            "got {}",
            p.value.item()
        );
    }
}
