//! # gnnone-tensor — minimal dense tensors with reverse-mode autograd
//!
//! The GNN training substrate (paper §5.3): GNN models mix sparse kernels
//! with dense operations — linear layers, activations, softmax, dropout —
//! for which the paper's systems "rely on PyTorch". This crate is that
//! PyTorch stand-in: a row-major 2-D [`Tensor`], a define-by-run [`Tape`]
//! with pluggable backward ops (so `gnnone-gnn` can register sparse-kernel
//! ops whose backward calls the *dual* sparse kernel — the SpMM/SDDMM
//! interplay the paper describes in §1), standard NN ops, and Adam.
//!
//! ```
//! use gnnone_tensor::{ops, Tape, Tensor};
//!
//! let mut tape = Tape::new();
//! let x = tape.leaf(Tensor::from_vec(2, 2, vec![1.0, -2.0, 3.0, -4.0]), true);
//! let y = ops::relu(&mut tape, x);
//! let s = ops::sum(&mut tape, y);
//! let grads = tape.backward(s);
//! // d(sum ∘ relu)/dx = 1 where x > 0.
//! assert_eq!(grads[x].as_ref().unwrap().data(), &[1.0, 0.0, 1.0, 0.0]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod init;
pub mod ops;
pub mod optim;
pub mod tape;
pub mod tensor;

pub use tape::{BackwardOp, Tape, VarId};
pub use tensor::Tensor;
