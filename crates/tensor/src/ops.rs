//! Standard dense autograd ops (the "PyTorch part" of GNN training, §5.3).

use std::rc::Rc;

use crate::tape::{BackwardOp, Tape, VarId};
use crate::tensor::Tensor;

// ---------------------------------------------------------------- helpers

struct AddOp;
impl BackwardOp for AddOp {
    fn backward(&self, grad: &Tensor, _inputs: &[Rc<Tensor>]) -> Vec<Option<Tensor>> {
        vec![Some(grad.clone()), Some(grad.clone())]
    }
    fn name(&self) -> &'static str {
        "add"
    }
}

/// Element-wise `a + b`.
pub fn add(tape: &mut Tape, a: VarId, b: VarId) -> VarId {
    let value = tape.value(a).add(tape.value(b));
    tape.push_op(value, vec![a, b], Box::new(AddOp))
}

struct MulOp;
impl BackwardOp for MulOp {
    fn backward(&self, grad: &Tensor, inputs: &[Rc<Tensor>]) -> Vec<Option<Tensor>> {
        vec![
            Some(grad.zip(&inputs[1], |g, b| g * b)),
            Some(grad.zip(&inputs[0], |g, a| g * a)),
        ]
    }
    fn name(&self) -> &'static str {
        "mul"
    }
}

/// Element-wise `a ⊙ b`.
pub fn mul(tape: &mut Tape, a: VarId, b: VarId) -> VarId {
    let value = tape.value(a).zip(tape.value(b), |x, y| x * y);
    tape.push_op(value, vec![a, b], Box::new(MulOp))
}

struct ScaleOp(f32);
impl BackwardOp for ScaleOp {
    fn backward(&self, grad: &Tensor, _inputs: &[Rc<Tensor>]) -> Vec<Option<Tensor>> {
        vec![Some(grad.scale(self.0))]
    }
    fn name(&self) -> &'static str {
        "scale"
    }
}

/// `a * s` for a constant `s` (GIN's `(1 + ε)` term).
pub fn scale(tape: &mut Tape, a: VarId, s: f32) -> VarId {
    let value = tape.value(a).scale(s);
    tape.push_op(value, vec![a], Box::new(ScaleOp(s)))
}

struct MatmulOp;
impl BackwardOp for MatmulOp {
    fn backward(&self, grad: &Tensor, inputs: &[Rc<Tensor>]) -> Vec<Option<Tensor>> {
        let da = grad.matmul(&inputs[1].transpose());
        let db = inputs[0].transpose().matmul(grad);
        vec![Some(da), Some(db)]
    }
    fn name(&self) -> &'static str {
        "matmul"
    }
}

/// `a · b` (the GNN linear layers).
pub fn matmul(tape: &mut Tape, a: VarId, b: VarId) -> VarId {
    let value = tape.value(a).matmul(tape.value(b));
    tape.push_op(value, vec![a, b], Box::new(MatmulOp))
}

struct AddBiasOp;
impl BackwardOp for AddBiasOp {
    fn backward(&self, grad: &Tensor, inputs: &[Rc<Tensor>]) -> Vec<Option<Tensor>> {
        let cols = inputs[1].cols();
        let mut db = Tensor::zeros(1, cols);
        for r in 0..grad.rows() {
            for c in 0..cols {
                db.set(0, c, db.get(0, c) + grad.get(r, c));
            }
        }
        vec![Some(grad.clone()), Some(db)]
    }
    fn name(&self) -> &'static str {
        "add_bias"
    }
}

/// Broadcasts a `1 × F` bias over the rows of `x`.
pub fn add_bias(tape: &mut Tape, x: VarId, bias: VarId) -> VarId {
    let xv = tape.value(x);
    let bv = tape.value(bias);
    assert_eq!(bv.rows(), 1);
    assert_eq!(bv.cols(), xv.cols());
    let mut out = xv.clone();
    for r in 0..out.rows() {
        for c in 0..out.cols() {
            out.set(r, c, out.get(r, c) + bv.get(0, c));
        }
    }
    tape.push_op(out, vec![x, bias], Box::new(AddBiasOp))
}

struct ReluOp;
impl BackwardOp for ReluOp {
    fn backward(&self, grad: &Tensor, inputs: &[Rc<Tensor>]) -> Vec<Option<Tensor>> {
        vec![Some(
            grad.zip(&inputs[0], |g, x| if x > 0.0 { g } else { 0.0 }),
        )]
    }
    fn name(&self) -> &'static str {
        "relu"
    }
}

/// `max(x, 0)`.
pub fn relu(tape: &mut Tape, x: VarId) -> VarId {
    let value = tape.value(x).map(|v| v.max(0.0));
    tape.push_op(value, vec![x], Box::new(ReluOp))
}

struct LeakyReluOp(f32);
impl BackwardOp for LeakyReluOp {
    fn backward(&self, grad: &Tensor, inputs: &[Rc<Tensor>]) -> Vec<Option<Tensor>> {
        let s = self.0;
        vec![Some(grad.zip(
            &inputs[0],
            move |g, x| {
                if x > 0.0 {
                    g
                } else {
                    g * s
                }
            },
        ))]
    }
    fn name(&self) -> &'static str {
        "leaky_relu"
    }
}

/// Leaky ReLU with negative slope `slope` (GAT's attention nonlinearity).
pub fn leaky_relu(tape: &mut Tape, x: VarId, slope: f32) -> VarId {
    let value = tape.value(x).map(|v| if v > 0.0 { v } else { v * slope });
    tape.push_op(value, vec![x], Box::new(LeakyReluOp(slope)))
}

struct DropoutOp {
    mask: Tensor,
}
impl BackwardOp for DropoutOp {
    fn backward(&self, grad: &Tensor, _inputs: &[Rc<Tensor>]) -> Vec<Option<Tensor>> {
        vec![Some(grad.zip(&self.mask, |g, m| g * m))]
    }
    fn name(&self) -> &'static str {
        "dropout"
    }
}

/// Inverted dropout with keep-probability `1 - p`; `seed` makes runs
/// reproducible. Identity when `!training`.
pub fn dropout(tape: &mut Tape, x: VarId, p: f32, training: bool, seed: u64) -> VarId {
    if !training || p <= 0.0 {
        return x;
    }
    use rand::prelude::*;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let xv = tape.value(x);
    let keep = 1.0 - p;
    let mask_data: Vec<f32> = (0..xv.len())
        .map(|_| {
            if rng.gen::<f32>() < keep {
                1.0 / keep
            } else {
                0.0
            }
        })
        .collect();
    let mask = Tensor::from_vec(xv.rows(), xv.cols(), mask_data);
    let value = xv.zip(&mask, |v, m| v * m);
    tape.push_op(value, vec![x], Box::new(DropoutOp { mask }))
}

struct SumOp {
    rows: usize,
    cols: usize,
}
impl BackwardOp for SumOp {
    fn backward(&self, grad: &Tensor, _inputs: &[Rc<Tensor>]) -> Vec<Option<Tensor>> {
        let g = grad.item();
        vec![Some(Tensor::from_vec(
            self.rows,
            self.cols,
            vec![g; self.rows * self.cols],
        ))]
    }
    fn name(&self) -> &'static str {
        "sum"
    }
}

/// Scalar sum of all elements.
pub fn sum(tape: &mut Tape, x: VarId) -> VarId {
    let xv = tape.value(x);
    let (rows, cols) = (xv.rows(), xv.cols());
    let value = Tensor::scalar(xv.sum());
    tape.push_op(value, vec![x], Box::new(SumOp { rows, cols }))
}

struct LogSoftmaxOp {
    softmax: Tensor,
}
impl BackwardOp for LogSoftmaxOp {
    fn backward(&self, grad: &Tensor, _inputs: &[Rc<Tensor>]) -> Vec<Option<Tensor>> {
        // d log_softmax: g - softmax * rowsum(g)
        let mut out = grad.clone();
        for r in 0..grad.rows() {
            let gsum: f32 = grad.row(r).iter().sum();
            for c in 0..grad.cols() {
                out.set(r, c, grad.get(r, c) - self.softmax.get(r, c) * gsum);
            }
        }
        vec![Some(out)]
    }
    fn name(&self) -> &'static str {
        "log_softmax"
    }
}

/// Row-wise log-softmax (classification head).
pub fn log_softmax(tape: &mut Tape, x: VarId) -> VarId {
    let xv = tape.value(x);
    let mut out = Tensor::zeros(xv.rows(), xv.cols());
    let mut soft = Tensor::zeros(xv.rows(), xv.cols());
    for r in 0..xv.rows() {
        let row = xv.row(r);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let logsum = row.iter().map(|&v| (v - max).exp()).sum::<f32>().ln() + max;
        for c in 0..xv.cols() {
            let lv = xv.get(r, c) - logsum;
            out.set(r, c, lv);
            soft.set(r, c, lv.exp());
        }
    }
    tape.push_op(out, vec![x], Box::new(LogSoftmaxOp { softmax: soft }))
}

struct NllLossOp {
    targets: Vec<u32>,
    mask: Option<Vec<bool>>,
    count: f32,
    rows: usize,
    cols: usize,
}
impl BackwardOp for NllLossOp {
    fn backward(&self, grad: &Tensor, _inputs: &[Rc<Tensor>]) -> Vec<Option<Tensor>> {
        let g = grad.item();
        let mut out = Tensor::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            if self.mask.as_ref().is_some_and(|m| !m[r]) {
                continue;
            }
            out.set(r, self.targets[r] as usize, -g / self.count);
        }
        vec![Some(out)]
    }
    fn name(&self) -> &'static str {
        "nll_loss"
    }
}

/// Mean negative log-likelihood over (optionally masked) rows of
/// log-probabilities.
pub fn nll_loss(
    tape: &mut Tape,
    log_probs: VarId,
    targets: &[u32],
    mask: Option<&[bool]>,
) -> VarId {
    let lp = tape.value(log_probs);
    assert_eq!(lp.rows(), targets.len());
    let count = mask
        .map(|m| m.iter().filter(|&&b| b).count())
        .unwrap_or(lp.rows())
        .max(1) as f32;
    let mut total = 0.0;
    for r in 0..lp.rows() {
        if mask.is_some_and(|m| !m[r]) {
            continue;
        }
        total -= lp.get(r, targets[r] as usize);
    }
    let op = NllLossOp {
        targets: targets.to_vec(),
        mask: mask.map(|m| m.to_vec()),
        count,
        rows: lp.rows(),
        cols: lp.cols(),
    };
    tape.push_op(Tensor::scalar(total / count), vec![log_probs], Box::new(op))
}

/// Accuracy of argmax predictions against targets over (optionally masked)
/// rows — not an autograd op, a metric.
pub fn accuracy(log_probs: &Tensor, targets: &[u32], mask: Option<&[bool]>) -> f64 {
    let mut correct = 0usize;
    let mut total = 0usize;
    for r in 0..log_probs.rows() {
        if mask.is_some_and(|m| !m[r]) {
            continue;
        }
        let row = log_probs.row(r);
        let pred = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0);
        if pred == targets[r] as usize {
            correct += 1;
        }
        total += 1;
    }
    correct as f64 / total.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff_check(build: impl Fn(&mut Tape, VarId) -> VarId, x0: Tensor, tol: f32) {
        let f = |x: &Tensor| {
            let mut tape = Tape::new();
            let xid = tape.leaf(x.clone(), false);
            let out = build(&mut tape, xid);
            tape.value(out).item()
        };
        let mut tape = Tape::new();
        let xid = tape.leaf(x0.clone(), true);
        let out = build(&mut tape, xid);
        let grads = tape.backward(out);
        let ana = grads[xid].as_ref().expect("gradient exists");
        let eps = 1e-3;
        for i in 0..x0.len() {
            let mut xp = x0.clone();
            xp.data_mut()[i] += eps;
            let num = (f(&xp) - f(&x0)) / eps;
            assert!(
                (num - ana.data()[i]).abs() < tol,
                "grad[{i}]: numeric {num} vs analytic {}",
                ana.data()[i]
            );
        }
    }

    #[test]
    fn relu_grad() {
        finite_diff_check(
            |t, x| {
                let r = relu(t, x);
                sum(t, r)
            },
            Tensor::from_vec(1, 4, vec![1.0, -1.0, 0.5, -0.5]),
            1e-2,
        );
    }

    #[test]
    fn leaky_relu_grad() {
        finite_diff_check(
            |t, x| {
                let r = leaky_relu(t, x, 0.2);
                sum(t, r)
            },
            Tensor::from_vec(1, 4, vec![1.0, -1.0, 2.0, -2.0]),
            1e-2,
        );
    }

    #[test]
    fn log_softmax_grad() {
        finite_diff_check(
            |t, x| {
                let ls = log_softmax(t, x);
                let sq = mul(t, ls, ls);
                sum(t, sq)
            },
            Tensor::from_vec(2, 3, vec![0.1, 0.5, -0.2, 1.0, -1.0, 0.3]),
            2e-2,
        );
    }

    #[test]
    fn nll_loss_grad() {
        let targets = vec![2u32, 0];
        finite_diff_check(
            |t, x| {
                let ls = log_softmax(t, x);
                nll_loss(t, ls, &[2, 0], None)
            },
            Tensor::from_vec(2, 3, vec![0.1, 0.5, -0.2, 1.0, -1.0, 0.3]),
            2e-2,
        );
        let _ = targets;
    }

    #[test]
    fn log_softmax_rows_normalize() {
        let mut tape = Tape::new();
        let x = tape.leaf(
            Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]),
            false,
        );
        let ls = log_softmax(&mut tape, x);
        for r in 0..2 {
            let p: f32 = tape.value(ls).row(r).iter().map(|&v| v.exp()).sum();
            assert!((p - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn nll_loss_respects_mask() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(2, 2, vec![0.0, -10.0, -10.0, 0.0]), false);
        let ls = log_softmax(&mut tape, x);
        let mask = vec![true, false];
        let loss = nll_loss(&mut tape, ls, &[0, 0], Some(&mask));
        // Row 1 (which would have huge loss for target 0) is masked out.
        assert!(tape.value(loss).item() < 0.1);
    }

    #[test]
    fn accuracy_metric() {
        let lp = Tensor::from_vec(3, 2, vec![0.0, -5.0, -5.0, 0.0, 0.0, -5.0]);
        assert_eq!(accuracy(&lp, &[0, 1, 0], None), 1.0);
        assert_eq!(accuracy(&lp, &[1, 1, 0], None), 2.0 / 3.0);
        let mask = vec![false, true, true];
        assert_eq!(accuracy(&lp, &[1, 1, 0], Some(&mask)), 1.0);
    }

    #[test]
    fn dropout_scales_and_masks() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(1, 1000, vec![1.0; 1000]), true);
        let d = dropout(&mut tape, x, 0.5, true, 7);
        let v = tape.value(d);
        let kept = v.data().iter().filter(|&&x| x > 0.0).count();
        // Inverted dropout: kept values are scaled to 2.0.
        assert!(v.data().iter().all(|&x| x == 0.0 || (x - 2.0).abs() < 1e-6));
        assert!((300..700).contains(&kept), "kept {kept}");
        // Eval mode is identity.
        let e = dropout(&mut tape, x, 0.5, false, 7);
        assert_eq!(e, x);
    }

    #[test]
    fn add_bias_broadcast_and_grad() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::zeros(3, 2), true);
        let b = tape.leaf(Tensor::from_vec(1, 2, vec![1.0, -1.0]), true);
        let y = add_bias(&mut tape, x, b);
        assert_eq!(tape.value(y).row(2), &[1.0, -1.0]);
        let s = sum(&mut tape, y);
        let grads = tape.backward(s);
        // Bias gradient sums over rows.
        assert_eq!(grads[b].as_ref().unwrap().data(), &[3.0, 3.0]);
    }

    #[test]
    fn scale_grad() {
        finite_diff_check(
            |t, x| {
                let y = scale(t, x, 2.5);
                sum(t, y)
            },
            Tensor::from_vec(1, 3, vec![1.0, 2.0, 3.0]),
            1e-2,
        );
    }
}

struct ConcatColsOp {
    a_cols: usize,
    b_cols: usize,
}
impl BackwardOp for ConcatColsOp {
    fn backward(&self, grad: &Tensor, _inputs: &[Rc<Tensor>]) -> Vec<Option<Tensor>> {
        let rows = grad.rows();
        let mut da = Tensor::zeros(rows, self.a_cols);
        let mut db = Tensor::zeros(rows, self.b_cols);
        for r in 0..rows {
            for c in 0..self.a_cols {
                da.set(r, c, grad.get(r, c));
            }
            for c in 0..self.b_cols {
                db.set(r, c, grad.get(r, self.a_cols + c));
            }
        }
        vec![Some(da), Some(db)]
    }
    fn name(&self) -> &'static str {
        "concat_cols"
    }
}

/// Concatenates two tensors along the column axis (multi-head attention
/// outputs in GAT's hidden layers).
pub fn concat_cols(tape: &mut Tape, a: VarId, b: VarId) -> VarId {
    let (av, bv) = (tape.value(a), tape.value(b));
    assert_eq!(av.rows(), bv.rows(), "concat_cols rows mismatch");
    let (rows, a_cols, b_cols) = (av.rows(), av.cols(), bv.cols());
    let mut out = Tensor::zeros(rows, a_cols + b_cols);
    for r in 0..rows {
        for c in 0..a_cols {
            out.set(r, c, av.get(r, c));
        }
        for c in 0..b_cols {
            out.set(r, a_cols + c, bv.get(r, c));
        }
    }
    tape.push_op(out, vec![a, b], Box::new(ConcatColsOp { a_cols, b_cols }))
}

#[cfg(test)]
mod concat_tests {
    use super::*;

    #[test]
    fn concat_forward_layout() {
        let mut tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]), true);
        let b = tape.leaf(Tensor::from_vec(2, 1, vec![5.0, 6.0]), true);
        let c = concat_cols(&mut tape, a, b);
        assert_eq!(tape.value(c).data(), &[1.0, 2.0, 5.0, 3.0, 4.0, 6.0]);
    }

    #[test]
    fn concat_backward_splits() {
        let mut tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec(1, 2, vec![1.0, 2.0]), true);
        let b = tape.leaf(Tensor::from_vec(1, 2, vec![3.0, 4.0]), true);
        let c = concat_cols(&mut tape, a, b);
        // Weight the four outputs differently via a mul with a constant.
        let w = tape.leaf(Tensor::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]), false);
        let m = mul(&mut tape, c, w);
        let s = sum(&mut tape, m);
        let grads = tape.backward(s);
        assert_eq!(grads[a].as_ref().unwrap().data(), &[1.0, 2.0]);
        assert_eq!(grads[b].as_ref().unwrap().data(), &[3.0, 4.0]);
    }
}
