//! Bounded admission and the deadline-aware micro-batcher.
//!
//! Admission is the service's only unbounded-load defense that costs
//! nothing: a full queue rejects *at submit time* with a typed
//! [`GnnOneError::Rejected`] carrying the observed depth and a
//! `retry_after_ms` hint derived from the flush estimate — the client
//! learns immediately, instead of a request aging out silently inside
//! the server.
//!
//! The batcher then coalesces admitted requests into micro-batches. A
//! batch closes on whichever comes first:
//!
//! * **size** — `batch_max` requests are waiting (throughput bound), or
//! * **deadline margin** — the *oldest* queued request's slack has run
//!   down to `margin + est_launch_ms`: waiting any longer would turn a
//!   servable request into a deadline miss just to fill the batch.
//!
//! FIFO order is preserved end to end, so the oldest request is always
//! `front()` and the margin check is O(1).

use std::collections::VecDeque;

use gnnone_sim::GnnOneError;

/// One admitted inference request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Server-assigned id; the handle every typed outcome echoes back.
    pub id: u64,
    /// Vertex whose logits are requested.
    pub node: u32,
    /// Virtual submission timestamp (ms).
    pub submit_ms: f64,
    /// Absolute virtual deadline (ms).
    pub deadline_ms: f64,
}

/// Bounded FIFO admission queue + micro-batch cutter.
#[derive(Debug)]
pub struct Batcher {
    queue: VecDeque<Request>,
    capacity: usize,
    batch_max: usize,
    margin_ms: u64,
}

impl Batcher {
    /// A batcher holding at most `capacity` queued requests, cutting
    /// batches of up to `batch_max`, flushing early when the oldest
    /// request's slack reaches `margin_ms` past the launch estimate.
    pub fn new(capacity: usize, batch_max: usize, margin_ms: u64) -> Self {
        Self {
            queue: VecDeque::new(),
            capacity: capacity.max(1),
            batch_max: batch_max.max(1),
            margin_ms,
        }
    }

    /// Requests currently queued.
    pub fn depth(&self) -> usize {
        self.queue.len()
    }

    /// Queue capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Maximum batch size.
    pub fn batch_max(&self) -> usize {
        self.batch_max
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Admits `req` or rejects it with a typed backpressure error.
    /// `retry_after_ms` is the caller's estimate of when capacity frees
    /// up (depth ÷ batch size × launch estimate).
    pub fn try_admit(&mut self, req: Request, retry_after_ms: u64) -> Result<(), GnnOneError> {
        if self.queue.len() >= self.capacity {
            return Err(GnnOneError::Rejected {
                queue_depth: self.queue.len() as u64,
                retry_after_ms: retry_after_ms.max(1),
            });
        }
        self.queue.push_back(req);
        Ok(())
    }

    /// Whether a batch should flush now: full-size, or the oldest
    /// request's remaining slack is down to the flush margin plus the
    /// current launch-cost estimate.
    pub fn ready(&self, now_ms: f64, est_launch_ms: f64) -> bool {
        if self.queue.is_empty() {
            return false;
        }
        if self.queue.len() >= self.batch_max {
            return true;
        }
        let oldest = &self.queue[0];
        oldest.deadline_ms - now_ms <= self.margin_ms as f64 + est_launch_ms
    }

    /// Cuts the next batch (up to `batch_max`, FIFO order).
    pub fn take_batch(&mut self) -> Vec<Request> {
        let n = self.queue.len().min(self.batch_max);
        self.queue.drain(..n).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, deadline_ms: f64) -> Request {
        Request {
            id,
            node: id as u32,
            submit_ms: 0.0,
            deadline_ms,
        }
    }

    #[test]
    fn overflow_is_a_typed_rejection() {
        let mut b = Batcher::new(2, 8, 1);
        b.try_admit(req(0, 100.0), 5).unwrap();
        b.try_admit(req(1, 100.0), 5).unwrap();
        let err = b.try_admit(req(2, 100.0), 7).unwrap_err();
        assert_eq!(err.kind(), "rejected");
        match err {
            GnnOneError::Rejected {
                queue_depth,
                retry_after_ms,
            } => {
                assert_eq!(queue_depth, 2);
                assert_eq!(retry_after_ms, 7);
            }
            other => panic!("wrong variant: {other:?}"),
        }
        // The queue is untouched by the rejection.
        assert_eq!(b.depth(), 2);
    }

    #[test]
    fn batch_closes_on_size_or_deadline_margin() {
        let mut b = Batcher::new(16, 3, 2);
        b.try_admit(req(0, 100.0), 1).unwrap();
        // One young request, plenty of slack: keep coalescing.
        assert!(!b.ready(0.0, 5.0));
        // Oldest slack (100ms) down to margin(2) + est(5): flush.
        assert!(b.ready(93.5, 5.0));
        // Or the batch fills.
        b.try_admit(req(1, 100.0), 1).unwrap();
        b.try_admit(req(2, 100.0), 1).unwrap();
        assert!(b.ready(0.0, 5.0));
        let batch = b.take_batch();
        assert_eq!(
            batch.iter().map(|r| r.id).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert!(b.is_empty());
    }
}
