//! Frozen serving state: graph, exported weights, CPU-precomputed
//! final-layer inputs, and the rectangular batch-graph launch path.
//!
//! The split mirrors production feature-store serving: everything that
//! does *not* depend on which nodes a batch requests — feature
//! projection, hidden layers, normalization weights, attention terms —
//! is computed once on the CPU at build time and cached. A request batch
//! then costs exactly one kernel launch per aggregation (one SpMM for
//! GCN, one fused-attention launch per head for GAT) over a **batch
//! graph**: `B` rows (the requested nodes, in request order) by `|V|`
//! source columns, with each row's adjacency copied verbatim from the
//! full CSR. Because the serving kernels ([`GnnOneRowSpmm`],
//! [`IrFusedGat`]) accumulate each output row strictly from that row's
//! own edge list — no NZE-span splits, no atomics — the row extracted
//! from any batch is bitwise-identical to the same row served alone.
//!
//! The degraded-mode fallback is also built here: a small seeded
//! centroid index over the full-graph CPU reference logits, so the
//! breaker can answer from cache with a typed `degraded: true` flag
//! instead of dropping requests while the kernel path is unhealthy.

use std::sync::Arc;

use gnnone_gnn::models::{Gat, GatLayerWeights, Gcn};
use gnnone_kernels::backend::{Backend, BackendKind, ExecReport, NativeEngine};
use gnnone_kernels::gnnone::GnnOneRowSpmm;
use gnnone_kernels::graph::GraphData;
use gnnone_kernels::ir::IrFusedGat;
use gnnone_sim::engine::LaunchError;
use gnnone_sim::{DeviceBuffer, GnnOneError, Gpu, GpuSpec};
use gnnone_sparse::datasets::Dataset;
use gnnone_sparse::formats::{Coo, Csr};
use gnnone_sparse::reference;

use crate::ServeConfig;

/// Hidden width shared by both served model families (the paper's
/// training shape).
pub const HIDDEN: usize = 16;

/// Which model family a serving instance answers for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// 2-layer GCN; final layer is one normalized SpMM.
    Gcn,
    /// 2-layer single-head GAT; final layer is one fused attention
    /// launch per head.
    Gat,
}

impl ModelKind {
    /// Canonical lower-case flag value.
    pub fn as_str(&self) -> &'static str {
        match self {
            ModelKind::Gcn => "gcn",
            ModelKind::Gat => "gat",
        }
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for ModelKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "gcn" => Ok(ModelKind::Gcn),
            "gat" => Ok(ModelKind::Gat),
            other => Err(format!("unknown model `{other}` (gcn|gat)")),
        }
    }
}

/// Deterministic pseudo-random vertex features (`|V| × f`), xorshift64*.
pub fn vertex_features(num_vertices: usize, f: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    (0..num_vertices * f)
        .map(|_| {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let bits = state.wrapping_mul(0x2545_f491_4f6c_dd1d);
            ((bits >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        })
        .collect()
}

/// Cached GCN final-layer inputs: serving a batch is one SpMM of the
/// normalized batch adjacency against `z2`.
struct GcnPlan {
    /// Per-edge symmetric normalization `1/√(d_u·d_v)`, CSR order.
    norm: Vec<f32>,
    /// `|V| × classes` pre-aggregation logits `relu(Â(XW₁+b₁))W₂+b₂`.
    d_z2: DeviceBuffer<f32>,
}

/// One cached GAT output-layer head: serving a batch is one fused
/// attention launch with the destination term gathered batch-side.
struct GatHeadPlan {
    /// Per-vertex destination attention term `z·aₗ` (`|V|`).
    el: Vec<f32>,
    /// Per-vertex source attention term `z·aᵣ` (`|V|`), device-resident.
    d_er: DeviceBuffer<f32>,
    /// Projected features `|V| × classes`, device-resident.
    d_z: DeviceBuffer<f32>,
}

struct GatPlan {
    heads: Vec<GatHeadPlan>,
    slope: f32,
}

enum Plan {
    Gcn(GcnPlan),
    Gat(GatPlan),
}

/// Everything frozen at service start: topology, cached final-layer
/// inputs, the CPU reference logits, and the degraded-mode centroid
/// index.
pub struct ServingState {
    /// The realized Table 1 dataset being served.
    pub dataset: Dataset,
    /// Which model family the cached plan serves.
    pub kind: ModelKind,
    /// Output dimensionality (prediction classes).
    pub classes: usize,
    plan: Plan,
    /// Full-graph CPU reference logits (`|V| × classes`) — the oracle
    /// the kernel path is validated against and the source of the
    /// centroid index.
    pub reference_logits: Vec<f32>,
    /// Per-vertex centroid assignment for degraded answers.
    pub centroid_of: Vec<u32>,
    /// Centroid mean logits (`k × classes`).
    pub centroid_logits: Vec<f32>,
}

impl ServingState {
    /// Builds the frozen state for `config`: generates the graph,
    /// initializes seeded model weights, precomputes the final-layer
    /// inputs and reference logits on the CPU, and fits the centroid
    /// index.
    pub fn build(config: &ServeConfig) -> Result<ServingState, GnnOneError> {
        let dataset = Dataset::try_by_id(&config.dataset, config.scale)?;
        let n = dataset.coo.num_rows();
        let f = dataset.spec.feature_len.clamp(4, 64);
        let classes = dataset.spec.classes.max(2);
        let x = vertex_features(n, f, config.seed);
        let (plan, reference_logits) = match config.model {
            ModelKind::Gcn => {
                let (plan, logits) =
                    build_gcn(&dataset.csr, &dataset.coo, &x, n, f, classes, config.seed);
                (Plan::Gcn(plan), logits)
            }
            ModelKind::Gat => {
                let (plan, logits) = build_gat(&dataset.csr, &x, n, f, classes, config.seed);
                (Plan::Gat(plan), logits)
            }
        };
        let (centroid_of, centroid_logits) =
            fit_centroids(&reference_logits, n, classes, config.centroids, config.seed);
        Ok(ServingState {
            dataset,
            kind: config.model,
            classes,
            plan,
            reference_logits,
            centroid_of,
            centroid_logits,
        })
    }

    /// Number of servable vertices.
    pub fn num_vertices(&self) -> usize {
        self.dataset.coo.num_rows()
    }

    /// The cached degraded-mode answer for `node`: its centroid's mean
    /// logits.
    pub fn degraded_logits(&self, node: u32) -> Vec<f32> {
        let c = self.centroid_of[node as usize] as usize;
        self.centroid_logits[c * self.classes..(c + 1) * self.classes].to_vec()
    }

    /// Builds the rectangular batch graph for `nodes`: row `i` carries
    /// request `i`'s full adjacency (columns index the whole vertex
    /// set), so the batched launch computes exactly the requested output
    /// rows.
    pub fn batch_graph(&self, nodes: &[u32]) -> Arc<GraphData> {
        let csr = &self.dataset.csr;
        let n = csr.num_cols();
        let mut rows = Vec::new();
        let mut cols = Vec::new();
        for (i, &node) in nodes.iter().enumerate() {
            for &c in csr.row_cols(node as usize) {
                rows.push(i as u32);
                cols.push(c);
            }
        }
        let coo = Coo::try_from_sorted(nodes.len(), n, rows, cols)
            .expect("batch rows copied from a validated CSR must re-validate");
        Arc::new(GraphData::new(coo))
    }

    /// Serves one micro-batch on `backend`: builds the batch graph,
    /// runs the cached final-layer launch(es), and returns the logits
    /// (`nodes.len() × classes`, row `i` answering `nodes[i]`) plus an
    /// aggregate execution report.
    ///
    /// The contract the property tests pin: row `i` of the result is
    /// bitwise-identical to serving `nodes[i]` in a batch of one.
    pub fn launch(
        &self,
        backend: &Backend,
        nodes: &[u32],
    ) -> Result<(Vec<f32>, ExecReport), LaunchError> {
        let graph = self.batch_graph(nodes);
        let b = nodes.len();
        let cls = self.classes;
        match &self.plan {
            Plan::Gcn(plan) => {
                let csr = &self.dataset.csr;
                let mut vals = Vec::with_capacity(graph.nnz());
                for &node in nodes {
                    vals.extend_from_slice(&plan.norm[csr.row_range(node as usize)]);
                }
                let d_vals = DeviceBuffer::from_slice(&vals);
                let d_y = DeviceBuffer::<f32>::zeros(b * cls);
                let kernel = GnnOneRowSpmm::new(graph);
                let report = backend.run_spmm(&kernel, &d_vals, &plan.d_z2, cls, &d_y)?;
                Ok((d_y.to_vec(), report))
            }
            Plan::Gat(plan) => {
                let mut y = vec![0.0f32; b * cls];
                let mut total = None::<ExecReport>;
                for head in &plan.heads {
                    let el: Vec<f32> = nodes.iter().map(|&v| head.el[v as usize]).collect();
                    let d_el = DeviceBuffer::from_slice(&el);
                    let d_y = DeviceBuffer::<f32>::zeros(b * cls);
                    let kernel = IrFusedGat::new(Arc::clone(&graph), plan.slope);
                    let report = backend
                        .run_fused(&kernel, &head.d_z, &d_el, &head.d_er, cls, &d_y, None)?;
                    for (acc, v) in y.iter_mut().zip(d_y.to_vec()) {
                        *acc += v;
                    }
                    total = Some(match total {
                        None => report,
                        Some(mut t) => {
                            t.time_ms += report.time_ms;
                            t.cycles = match (t.cycles, report.cycles) {
                                (Some(a), Some(b)) => Some(a + b),
                                _ => None,
                            };
                            t
                        }
                    });
                }
                if plan.heads.len() > 1 {
                    let inv = 1.0 / plan.heads.len() as f32;
                    for v in &mut y {
                        *v *= inv;
                    }
                }
                Ok((y, total.expect("GAT plan always has at least one head")))
            }
        }
    }
}

/// Constructs a backend instance for `kind` (a fresh simulator or the
/// shared-pool native engine).
pub fn make_backend(kind: BackendKind) -> Backend {
    match kind {
        BackendKind::Sim => Backend::Sim(Gpu::new(GpuSpec::a100_40gb())),
        BackendKind::Native => Backend::Native(NativeEngine::new()),
    }
}

// ------------------------------------------------------- CPU precompute

/// `x (n × fin) · w (fin × fout) + b (1 × fout)`, plain f32.
fn affine(x: &[f32], n: usize, fin: usize, w: &[f32], b: &[f32], fout: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; n * fout];
    for r in 0..n {
        let xr = &x[r * fin..(r + 1) * fin];
        let or = &mut out[r * fout..(r + 1) * fout];
        or.copy_from_slice(b);
        for (k, &xv) in xr.iter().enumerate() {
            let wr = &w[k * fout..(k + 1) * fout];
            for c in 0..fout {
                or[c] += xv * wr[c];
            }
        }
    }
    out
}

/// GCN symmetric normalization `1/√(d_u·d_v)` per edge in CSR order,
/// degrees floored at 1 — mirrors `graphops::gcn_norm_weights`.
fn gcn_norm(coo: &Coo) -> Vec<f32> {
    let deg = coo.degrees();
    (0..coo.nnz())
        .map(|e| {
            let du = deg[coo.rows()[e] as usize].max(1) as f32;
            let dv = deg[coo.cols()[e] as usize].max(1) as f32;
            1.0 / (du * dv).sqrt()
        })
        .collect()
}

fn build_gcn(
    csr: &Csr,
    coo: &Coo,
    x: &[f32],
    n: usize,
    f: usize,
    classes: usize,
    seed: u64,
) -> (GcnPlan, Vec<f32>) {
    let gcn = Gcn::new(f, HIDDEN, classes, seed);
    let w = gcn.serving_weights();
    let norm = gcn_norm(coo);
    // Layer 1: relu(Â(XW₁+b₁)); layer 2 pre-aggregation: H₁W₂+b₂.
    let z1 = affine(x, n, f, w.w1.data(), w.b1.data(), HIDDEN);
    let mut h1 = reference::spmm_csr(csr, &norm, &z1, HIDDEN);
    for v in &mut h1 {
        *v = v.max(0.0);
    }
    let z2 = affine(&h1, n, HIDDEN, w.w2.data(), w.b2.data(), classes);
    let logits = reference::spmm_csr(csr, &norm, &z2, classes);
    (
        GcnPlan {
            norm,
            d_z2: DeviceBuffer::from_slice(&z2),
        },
        logits,
    )
}

/// CPU reference of one fused-GAT head over the full graph:
/// `y[r] = Σ_c softmax_r(leaky(el[r]+er[c])) · z[c]`.
fn gat_head_cpu(csr: &Csr, el: &[f32], er: &[f32], z: &[f32], f: usize, slope: f32) -> Vec<f32> {
    let n = csr.num_rows();
    let leaky = |v: f32| if v >= 0.0 { v } else { slope * v };
    let mut y = vec![0.0f32; n * f];
    for r in 0..n {
        let range = csr.row_range(r);
        if range.is_empty() {
            continue;
        }
        let cols = csr.row_cols(r);
        let mut max = f32::NEG_INFINITY;
        for &c in cols {
            max = max.max(leaky(el[r] + er[c as usize]));
        }
        let mut denom = 0.0f32;
        for &c in cols {
            denom += (leaky(el[r] + er[c as usize]) - max).exp();
        }
        let yr = &mut y[r * f..(r + 1) * f];
        for &c in cols {
            let alpha = (leaky(el[r] + er[c as usize]) - max).exp() / denom;
            let zc = &z[c as usize * f..(c as usize + 1) * f];
            for k in 0..f {
                yr[k] += alpha * zc[k];
            }
        }
    }
    y
}

/// Runs one full GAT layer on the CPU from exported weights, returning
/// the combined (concat or averaged) output and, for the final layer,
/// the per-head `(z, el, er)` triples to cache for serving.
#[allow(clippy::type_complexity)]
fn gat_layer_cpu(
    csr: &Csr,
    h: &[f32],
    n: usize,
    fin: usize,
    layer: &GatLayerWeights,
    slope: f32,
) -> (Vec<f32>, Vec<(Vec<f32>, Vec<f32>, Vec<f32>)>) {
    let mut combined: Option<Vec<f32>> = None;
    let mut triples = Vec::new();
    let fout = layer.heads[0].w.cols();
    for head in &layer.heads {
        let z = affine(h, n, fin, head.w.data(), head.b.data(), fout);
        let el: Vec<f32> = (0..n)
            .map(|r| {
                z[r * fout..(r + 1) * fout]
                    .iter()
                    .zip(head.attn_l.data())
                    .map(|(a, b)| a * b)
                    .sum()
            })
            .collect();
        let er: Vec<f32> = (0..n)
            .map(|r| {
                z[r * fout..(r + 1) * fout]
                    .iter()
                    .zip(head.attn_r.data())
                    .map(|(a, b)| a * b)
                    .sum()
            })
            .collect();
        let out = gat_head_cpu(csr, &el, &er, &z, fout, slope);
        combined = Some(match combined {
            None => out.clone(),
            Some(prev) => {
                if layer.concat {
                    // Concatenate columns: rebuild row-major.
                    let prev_f = prev.len() / n;
                    let mut cat = Vec::with_capacity(prev.len() + out.len());
                    for r in 0..n {
                        cat.extend_from_slice(&prev[r * prev_f..(r + 1) * prev_f]);
                        cat.extend_from_slice(&out[r * fout..(r + 1) * fout]);
                    }
                    cat
                } else {
                    prev.iter().zip(&out).map(|(a, b)| a + b).collect()
                }
            }
        });
        triples.push((z, el, er));
    }
    let mut combined = combined.expect("layer has at least one head");
    if !layer.concat && layer.heads.len() > 1 {
        let inv = 1.0 / layer.heads.len() as f32;
        for v in &mut combined {
            *v *= inv;
        }
    }
    (combined, triples)
}

fn build_gat(
    csr: &Csr,
    x: &[f32],
    n: usize,
    f: usize,
    classes: usize,
    seed: u64,
) -> (GatPlan, Vec<f32>) {
    let gat = Gat::new(f, HIDDEN, classes, 2, seed);
    let slope = gat.slope();
    let layers = gat.serving_weights();
    let mut h = x.to_vec();
    let mut fin = f;
    let mut final_triples = Vec::new();
    let mut logits = Vec::new();
    let last = layers.len() - 1;
    for (i, layer) in layers.iter().enumerate() {
        let (mut out, triples) = gat_layer_cpu(csr, &h, n, fin, layer, slope);
        if i == last {
            final_triples = triples;
            logits = out;
        } else {
            for v in &mut out {
                *v = v.max(0.0);
            }
            fin = out.len() / n;
            h = out;
        }
    }
    let heads = final_triples
        .into_iter()
        .map(|(z, el, er)| GatHeadPlan {
            el,
            d_er: DeviceBuffer::from_slice(&er),
            d_z: DeviceBuffer::from_slice(&z),
        })
        .collect();
    (GatPlan { heads, slope }, logits)
}

// ------------------------------------------------------- degraded index

/// Seeded one-pass centroid fit over the reference logits: `k` seed
/// vertices, nearest-centroid assignment, then per-cluster means.
/// Deterministic in (`logits`, `seed`).
fn fit_centroids(
    logits: &[f32],
    n: usize,
    classes: usize,
    k: usize,
    seed: u64,
) -> (Vec<u32>, Vec<f32>) {
    let k = k.clamp(1, n);
    // Distinct seed vertices by linear probing from seeded picks.
    let mut seeds: Vec<usize> = Vec::with_capacity(k);
    for i in 0..k {
        let mut v =
            (gnnone_sim::splitmix64(seed ^ (i as u64).wrapping_mul(0x9e37)) % n as u64) as usize;
        while seeds.contains(&v) {
            v = (v + 1) % n;
        }
        seeds.push(v);
    }
    let centers: Vec<f32> = seeds
        .iter()
        .flat_map(|&v| logits[v * classes..(v + 1) * classes].to_vec())
        .collect();
    let assign: Vec<u32> = (0..n)
        .map(|v| {
            let row = &logits[v * classes..(v + 1) * classes];
            let mut best = 0u32;
            let mut best_d = f32::INFINITY;
            for c in 0..k {
                let cr = &centers[c * classes..(c + 1) * classes];
                let d: f32 = row.iter().zip(cr).map(|(a, b)| (a - b) * (a - b)).sum();
                if d < best_d {
                    best_d = d;
                    best = c as u32;
                }
            }
            best
        })
        .collect();
    let mut means = vec![0.0f32; k * classes];
    let mut counts = vec![0u32; k];
    for v in 0..n {
        let c = assign[v] as usize;
        counts[c] += 1;
        for j in 0..classes {
            means[c * classes + j] += logits[v * classes + j];
        }
    }
    for c in 0..k {
        if counts[c] > 0 {
            let inv = 1.0 / counts[c] as f32;
            for j in 0..classes {
                means[c * classes + j] *= inv;
            }
        } else {
            means[c * classes..(c + 1) * classes]
                .copy_from_slice(&centers[c * classes..(c + 1) * classes]);
        }
    }
    (assign, means)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    fn tiny_config(model: ModelKind) -> ServeConfig {
        ServeConfig {
            dataset: "G2".into(),
            scale: Scale::Tiny,
            model,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn gcn_batch_launch_matches_cpu_reference() {
        let state = ServingState::build(&tiny_config(ModelKind::Gcn)).unwrap();
        let backend = make_backend(BackendKind::Sim);
        let nodes: Vec<u32> = vec![0, 5, 9, 17];
        let (y, report) = state.launch(&backend, &nodes).unwrap();
        assert_eq!(y.len(), nodes.len() * state.classes);
        assert!(report.time_ms > 0.0);
        for (i, &node) in nodes.iter().enumerate() {
            let got = &y[i * state.classes..(i + 1) * state.classes];
            let want = &state.reference_logits
                [node as usize * state.classes..(node as usize + 1) * state.classes];
            reference::assert_close(got, want, 1e-3);
        }
    }

    #[test]
    fn gat_batch_launch_matches_cpu_reference() {
        let state = ServingState::build(&tiny_config(ModelKind::Gat)).unwrap();
        let backend = make_backend(BackendKind::Sim);
        let nodes: Vec<u32> = vec![2, 3, 11];
        let (y, _) = state.launch(&backend, &nodes).unwrap();
        for (i, &node) in nodes.iter().enumerate() {
            let got = &y[i * state.classes..(i + 1) * state.classes];
            let want = &state.reference_logits
                [node as usize * state.classes..(node as usize + 1) * state.classes];
            reference::assert_close(got, want, 1e-3);
        }
    }

    #[test]
    fn degraded_answers_are_cached_and_shaped() {
        let state = ServingState::build(&tiny_config(ModelKind::Gcn)).unwrap();
        for node in [0u32, 7, 31] {
            let d = state.degraded_logits(node);
            assert_eq!(d.len(), state.classes);
            assert!(d.iter().all(|v| v.is_finite()));
        }
        // Cached: two reads agree bitwise.
        assert_eq!(state.degraded_logits(3), state.degraded_logits(3));
    }

    #[test]
    fn centroid_fit_is_seed_deterministic() {
        let a = ServingState::build(&tiny_config(ModelKind::Gcn)).unwrap();
        let b = ServingState::build(&tiny_config(ModelKind::Gcn)).unwrap();
        assert_eq!(a.centroid_of, b.centroid_of);
        assert_eq!(a.centroid_logits, b.centroid_logits);
    }
}
