#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! `gnnone-serve` — a fault-tolerant batched inference service over the
//! GNNOne kernel stack.
//!
//! Serving inverts the batch-training shape the rest of the repo
//! optimizes: requests arrive one node at a time, carry deadlines, and
//! the system must stay predictable when overloaded or when launches
//! fail. The service is built from five layers:
//!
//! * [`model`] — a frozen [`model::ServingState`]: a Table 1 graph plus
//!   exported GCN/GAT weights with everything up to the final graph
//!   aggregation precomputed on the CPU, so each micro-batch costs exactly
//!   one (GCN) or `heads` (GAT) kernel launches over a rectangular
//!   *batch graph* (`B` requested rows × `|V|` source columns).
//! * [`batch`] — bounded admission ([`GnnOneError::Rejected`] with a
//!   `retry_after_ms` hint, never an unbounded queue) and the
//!   deadline-aware micro-batcher (a batch closes on size *or* when the
//!   oldest request's slack runs down to the flush margin).
//! * [`exec`] — the dispatcher: per-launch serving watchdog, bounded
//!   retry with seeded-jitter backoff ([`RetryPolicy`]), and seeded
//!   chaos injection (simulator faults on `sim`, synthetic kernel aborts
//!   on `native`) so overload behavior is testable on demand.
//! * [`breaker`] — a circuit breaker that trips after consecutive batch
//!   failures and serves a degraded cached-centroid answer (flagged
//!   `degraded: true`) instead of queueing doomed launches.
//! * [`server`] / [`service`] — the deterministic virtual-clock core
//!   (every admitted request resolves to exactly one typed
//!   [`server::Outcome`]) and the threaded front that maps wall time
//!   onto it.
//!
//! The determinism contract — batched outputs bitwise-identical to
//! per-request execution — is why the GCN path launches
//! [`gnnone_kernels::gnnone::GnnOneRowSpmm`] (row-sequential, no
//! atomics) rather than the NZE-span-partitioned throughput kernels;
//! `docs/SERVING.md` covers the full design.

pub mod batch;
pub mod breaker;
pub mod exec;
pub mod model;
pub mod server;
pub mod service;

pub use batch::{Batcher, Request};
pub use breaker::{BreakerState, CircuitBreaker};
pub use exec::{DispatchOutcome, Dispatcher};
pub use model::{ModelKind, ServingState};
pub use server::{Health, Outcome, OutcomeKind, Server, ServerStats, Submit};
pub use service::Service;

pub use gnnone_kernels::backend::BackendKind;
pub use gnnone_kernels::shard::RetryPolicy;
pub use gnnone_sim::GnnOneError;
pub use gnnone_sparse::datasets::Scale;

/// Full configuration of one serving instance. Everything that affects
/// behavior — admission, batching, deadlines, retries, chaos — lives
/// here, so a `(ServeConfig, request schedule)` pair pins the virtual
/// core's outcomes exactly.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Table 1 dataset ID (`"G0"`…`"G18"`).
    pub dataset: String,
    /// Analogue scale for the graph generator.
    pub scale: Scale,
    /// Which model family serves (`gcn` or `gat`).
    pub model: ModelKind,
    /// Execution backend for the batch launches.
    pub backend: BackendKind,
    /// Admission queue capacity; submissions beyond it are rejected with
    /// a typed [`GnnOneError::Rejected`].
    pub queue_capacity: usize,
    /// Maximum requests coalesced into one batch launch.
    pub batch_max: usize,
    /// Flush margin: a batch closes early once the oldest queued
    /// request's deadline slack falls to `margin + est_launch`.
    pub deadline_margin_ms: u64,
    /// Deadline assigned to requests that don't carry their own,
    /// relative to submission time.
    pub default_deadline_ms: u64,
    /// Serving watchdog: a launch whose virtual cost exceeds this is
    /// treated as an abort and retried.
    pub watchdog_budget_ms: f64,
    /// Bounded retry with seeded deterministic jitter.
    pub retry: RetryPolicy,
    /// Consecutive batch failures that trip the circuit breaker.
    pub breaker_threshold: u32,
    /// How long the breaker stays open before a half-open probe.
    pub breaker_cooldown_ms: u64,
    /// Centroid count for the degraded-mode fallback index.
    pub centroids: usize,
    /// Master seed: features, weights, chaos schedule, retry jitter.
    pub seed: u64,
    /// Chaos injection rate per launch attempt, in permille (0 = off,
    /// 1000 = every attempt).
    pub chaos_rate_permille: u64,
    /// Virtual cost model for native launches (base ms per launch);
    /// keeps deadline/shed decisions deterministic where wall clocks
    /// are not.
    pub native_cost_base_ms: f64,
    /// Virtual cost model for native launches (ms per batched row).
    pub native_cost_per_row_ms: f64,
    /// Virtual cost charged for a failed launch attempt.
    pub failed_attempt_ms: f64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            dataset: "G2".to_string(),
            scale: Scale::Tiny,
            model: ModelKind::Gcn,
            backend: BackendKind::Sim,
            queue_capacity: 64,
            batch_max: 8,
            deadline_margin_ms: 2,
            default_deadline_ms: 400,
            watchdog_budget_ms: 200.0,
            retry: RetryPolicy {
                max_attempts: 3,
                backoff_base_ms: 1,
                jitter_ms: 2,
                seed: 0xC0FF_EE00,
            },
            breaker_threshold: 3,
            breaker_cooldown_ms: 50,
            centroids: 4,
            seed: 0xC0FF_EE00,
            chaos_rate_permille: 0,
            native_cost_base_ms: 2.0,
            native_cost_per_row_ms: 0.25,
            failed_attempt_ms: 1.0,
        }
    }
}
