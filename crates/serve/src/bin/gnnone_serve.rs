//! `gnnone-serve` — run the batched inference service from the CLI.
//!
//! Two modes:
//!
//! * default — the deterministic virtual-clock core driven by a seeded
//!   open-loop arrival process (reproducible end to end);
//! * `--threaded` — the `std::thread` + channel front, with requests
//!   fired from this thread and wall time mapped onto the virtual
//!   clock.
//!
//! Either way a JSON summary (counters, health, p50/p99 latency) goes
//! to stdout.

use std::process::ExitCode;

use gnnone_serve::server::percentile;
use gnnone_serve::{BackendKind, ModelKind, Outcome, Scale, ServeConfig, Server, Service, Submit};
use gnnone_sim::jsonio::Json;
use gnnone_sim::splitmix64;

fn usage() -> ! {
    eprintln!(
        "usage: gnnone-serve [--dataset G2] [--scale tiny|small|medium] [--model gcn|gat]\n\
         \x20                   [--backend sim|native] [--requests N] [--qps N] [--seed N|0xHEX]\n\
         \x20                   [--queue N] [--batch N] [--deadline MS] [--chaos PERMILLE]\n\
         \x20                   [--threaded] [--pretty]"
    );
    std::process::exit(2);
}

fn parse_seed(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = ServeConfig::default();
    let mut requests: u64 = 64;
    let mut qps: f64 = 500.0;
    let mut threaded = false;
    let mut pretty = false;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match flag {
            "--dataset" => config.dataset = value(&mut i),
            "--scale" => {
                config.scale = match value(&mut i).to_ascii_lowercase().as_str() {
                    "tiny" => Scale::Tiny,
                    "small" => Scale::Small,
                    "medium" => Scale::Medium,
                    _ => usage(),
                }
            }
            "--model" => {
                config.model = value(&mut i).parse::<ModelKind>().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    usage()
                })
            }
            "--backend" => {
                config.backend = value(&mut i).parse::<BackendKind>().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    usage()
                })
            }
            "--requests" => requests = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--qps" => qps = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--seed" => config.seed = parse_seed(&value(&mut i)).unwrap_or_else(|| usage()),
            "--queue" => config.queue_capacity = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--batch" => config.batch_max = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--deadline" => {
                config.default_deadline_ms = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--chaos" => {
                config.chaos_rate_permille = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--threaded" => threaded = true,
            "--pretty" => pretty = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
        i += 1;
    }
    config.retry.seed = config.seed;
    let result = if threaded {
        run_threaded(config, requests, qps)
    } else {
        run_virtual(config, requests, qps)
    };
    match result {
        Ok(summary) => {
            if pretty {
                println!("{}", summary.to_string_pretty());
            } else {
                println!("{}", summary.to_string_compact());
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("gnnone-serve: {e}");
            ExitCode::FAILURE
        }
    }
}

fn summarize(outcomes: &[Outcome], stats: gnnone_serve::ServerStats, mode: &str) -> Json {
    let mut latencies: Vec<f64> = outcomes
        .iter()
        .filter(|o| o.logits.is_some())
        .map(|o| o.latency_ms)
        .collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    Json::obj(vec![
        ("mode", Json::Str(mode.to_string())),
        ("submitted", Json::U64(stats.submitted)),
        ("succeeded", Json::U64(stats.succeeded)),
        ("degraded", Json::U64(stats.degraded)),
        ("rejected", Json::U64(stats.rejected)),
        ("deadline_exceeded", Json::U64(stats.deadline_exceeded)),
        ("retries", Json::U64(stats.retries)),
        ("chaos_injected", Json::U64(stats.chaos_injected)),
        ("breaker_trips", Json::U64(stats.breaker_trips)),
        ("p50_ms", Json::F64(percentile(&latencies, 50.0))),
        ("p99_ms", Json::F64(percentile(&latencies, 99.0))),
    ])
}

fn run_virtual(config: ServeConfig, requests: u64, qps: f64) -> Result<Json, String> {
    let seed = config.seed;
    let mut server = Server::new(config).map_err(|e| e.to_string())?;
    let n = server.state().num_vertices() as u64;
    let mean_gap_ms = 1000.0 / qps.max(1e-3);
    let mut outcomes = Vec::new();
    for i in 0..requests {
        let h = splitmix64(seed ^ i.wrapping_mul(0x9e37_79b9));
        // Jittered open-loop arrivals in [0.5, 1.5) × mean gap.
        let gap = mean_gap_ms * (0.5 + (h >> 32) as f64 / u32::MAX as f64);
        server.advance(gap);
        match server.submit((h % n) as u32, None) {
            Submit::Queued(_) => {}
            Submit::Rejected(o) => outcomes.push(*o),
        }
        outcomes.extend(server.poll());
    }
    outcomes.extend(server.drain());
    Ok(summarize(&outcomes, server.stats(), "virtual"))
}

fn run_threaded(config: ServeConfig, requests: u64, qps: f64) -> Result<Json, String> {
    let seed = config.seed;
    let service = Service::start(config).map_err(|e| e.to_string())?;
    service.health().ok_or("service did not come up")?;
    let gap = std::time::Duration::from_secs_f64(1.0 / qps.max(1.0));
    let receivers: Vec<_> = (0..requests)
        .map(|i| {
            let h = splitmix64(seed ^ i);
            std::thread::sleep(gap);
            // Every Table 1 analogue has ≥ 64 vertices at any scale.
            service.submit((h % 64) as u32, None)
        })
        .collect();
    let stats = service.shutdown();
    let outcomes: Vec<Outcome> = receivers
        .into_iter()
        .filter_map(|rx| rx.recv().ok())
        .collect();
    if outcomes.len() as u64 != requests {
        return Err(format!(
            "silent drop: {} submitted, {} resolved",
            requests,
            outcomes.len()
        ));
    }
    Ok(summarize(&outcomes, stats, "threaded"))
}
