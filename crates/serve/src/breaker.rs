//! Circuit breaker over the kernel launch path.
//!
//! When launches fail repeatedly — injected chaos, watchdog trips, a
//! sick backend — retrying every batch just burns the deadline budget
//! of everything behind it in the queue. The breaker converts that
//! failure mode into an explicit degraded state:
//!
//! * **Closed** — healthy; every batch launches.
//! * **Open** — `threshold` consecutive batch failures observed; all
//!   traffic is answered from the cached centroid index (typed,
//!   `degraded: true`) for `cooldown_ms`.
//! * **Half-open** — cooldown elapsed; exactly one probe batch is
//!   allowed through. Success closes the breaker, failure re-opens it
//!   (and counts another trip).
//!
//! All transitions are driven by the server's virtual clock, so breaker
//! behavior is as deterministic as the rest of the core.

/// Breaker state, surfaced through health probes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: batches launch normally.
    Closed,
    /// Tripped: serving degraded answers until cooldown elapses.
    Open,
    /// Cooldown elapsed: next batch is a probe.
    HalfOpen,
}

impl BreakerState {
    /// Canonical lower-case name (health probes, JSON reports).
    pub fn as_str(&self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

impl std::fmt::Display for BreakerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Consecutive-failure circuit breaker on the virtual clock.
#[derive(Debug)]
pub struct CircuitBreaker {
    state: BreakerState,
    consecutive_failures: u32,
    threshold: u32,
    cooldown_ms: u64,
    opened_at_ms: f64,
    trips: u64,
}

impl CircuitBreaker {
    /// A breaker tripping after `threshold` consecutive failures and
    /// probing again after `cooldown_ms`.
    pub fn new(threshold: u32, cooldown_ms: u64) -> Self {
        Self {
            state: BreakerState::Closed,
            consecutive_failures: 0,
            threshold: threshold.max(1),
            cooldown_ms,
            opened_at_ms: 0.0,
            trips: 0,
        }
    }

    /// Current state, advancing Open → HalfOpen if the cooldown has
    /// elapsed at `now_ms`.
    pub fn state(&mut self, now_ms: f64) -> BreakerState {
        if self.state == BreakerState::Open && now_ms - self.opened_at_ms >= self.cooldown_ms as f64
        {
            self.state = BreakerState::HalfOpen;
        }
        self.state
    }

    /// Whether the next batch may launch at `now_ms`. `false` means the
    /// caller must serve degraded.
    pub fn allow(&mut self, now_ms: f64) -> bool {
        self.state(now_ms) != BreakerState::Open
    }

    /// Records a successful batch launch.
    pub fn record_success(&mut self) {
        self.consecutive_failures = 0;
        self.state = BreakerState::Closed;
    }

    /// Records a failed batch launch (retries exhausted) at `now_ms`.
    pub fn record_failure(&mut self, now_ms: f64) {
        self.consecutive_failures += 1;
        if self.state == BreakerState::HalfOpen || self.consecutive_failures >= self.threshold {
            self.state = BreakerState::Open;
            self.opened_at_ms = now_ms;
            self.consecutive_failures = 0;
            self.trips += 1;
        }
    }

    /// Total times the breaker has tripped open.
    pub fn trips(&self) -> u64 {
        self.trips
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_after_threshold_and_recovers_via_probe() {
        let mut b = CircuitBreaker::new(3, 100);
        assert!(b.allow(0.0));
        b.record_failure(1.0);
        b.record_failure(2.0);
        assert!(b.allow(3.0), "below threshold stays closed");
        b.record_failure(3.0);
        assert_eq!(b.state(4.0), BreakerState::Open);
        assert!(!b.allow(50.0), "open within cooldown serves degraded");
        assert_eq!(b.trips(), 1);
        // Cooldown elapses → half-open probe allowed.
        assert!(b.allow(103.5));
        assert_eq!(b.state(103.5), BreakerState::HalfOpen);
        b.record_success();
        assert_eq!(b.state(104.0), BreakerState::Closed);
    }

    #[test]
    fn half_open_failure_reopens_immediately() {
        let mut b = CircuitBreaker::new(2, 10);
        b.record_failure(0.0);
        b.record_failure(0.0);
        assert!(b.allow(11.0), "probe after cooldown");
        b.record_failure(11.0);
        assert_eq!(b.state(11.0), BreakerState::Open);
        assert_eq!(b.trips(), 2, "a failed probe counts a second trip");
        assert!(!b.allow(12.0));
    }
}
