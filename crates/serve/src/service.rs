//! The threaded service front: async submission over std channels.
//!
//! One worker thread owns the [`Server`] and maps wall time onto its
//! virtual clock (elapsed milliseconds between loop iterations become
//! [`Server::advance`] calls). Clients get a per-request reply channel;
//! the worker routes each typed [`Outcome`] to exactly one waiting
//! client — including at shutdown, where the queue is drained so every
//! in-flight request still receives its outcome before the thread
//! exits. No async runtime is involved: `std::thread` + `mpsc` is all
//! the repo's no-new-dependencies rule allows, and all the service
//! needs.

use std::collections::HashMap;
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use gnnone_sim::GnnOneError;

use crate::server::{Health, Outcome, Server, ServerStats, Submit};
use crate::ServeConfig;

enum Msg {
    Request {
        node: u32,
        deadline_rel_ms: Option<u64>,
        reply: Sender<Outcome>,
    },
    Health {
        reply: Sender<Health>,
    },
    Shutdown,
}

/// Handle to a running threaded serving instance.
pub struct Service {
    tx: Sender<Msg>,
    worker: Option<JoinHandle<ServerStats>>,
}

impl Service {
    /// Builds the serving stack (on the caller's thread, so build
    /// errors surface synchronously) and starts the worker.
    pub fn start(config: ServeConfig) -> Result<Service, GnnOneError> {
        let server = Server::new(config)?;
        let (tx, rx) = mpsc::channel::<Msg>();
        let worker = std::thread::spawn(move || run_worker(server, rx));
        Ok(Service {
            tx,
            worker: Some(worker),
        })
    }

    /// Submits a request; the returned channel yields the request's one
    /// typed [`Outcome`] (immediately on rejection, after its batch
    /// otherwise).
    pub fn submit(&self, node: u32, deadline_rel_ms: Option<u64>) -> Receiver<Outcome> {
        let (reply, rx) = mpsc::channel();
        // A send can only fail after shutdown; the receiver then yields
        // a disconnect, which callers already must handle.
        let _ = self.tx.send(Msg::Request {
            node,
            deadline_rel_ms,
            reply,
        });
        rx
    }

    /// Blocking health probe.
    pub fn health(&self) -> Option<Health> {
        let (reply, rx) = mpsc::channel();
        self.tx.send(Msg::Health { reply }).ok()?;
        rx.recv().ok()
    }

    /// Stops the worker: drains the queue (every in-flight request
    /// gets its outcome), then returns the final counters.
    pub fn shutdown(mut self) -> ServerStats {
        let _ = self.tx.send(Msg::Shutdown);
        self.worker
            .take()
            .expect("shutdown runs once")
            .join()
            .expect("serve worker must not panic")
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        if let Some(worker) = self.worker.take() {
            let _ = self.tx.send(Msg::Shutdown);
            let _ = worker.join();
        }
    }
}

fn run_worker(mut server: Server, rx: Receiver<Msg>) -> ServerStats {
    let mut pending: HashMap<u64, Sender<Outcome>> = HashMap::new();
    let mut last = Instant::now();
    let tick = Duration::from_millis(1);
    let advance = |server: &mut Server, last: &mut Instant| {
        let now = Instant::now();
        server.advance(now.duration_since(*last).as_secs_f64() * 1e3);
        *last = now;
    };
    loop {
        match rx.recv_timeout(tick) {
            Ok(Msg::Request {
                node,
                deadline_rel_ms,
                reply,
            }) => {
                advance(&mut server, &mut last);
                match server.submit(node, deadline_rel_ms) {
                    Submit::Queued(id) => {
                        pending.insert(id, reply);
                    }
                    Submit::Rejected(outcome) => {
                        let _ = reply.send(*outcome);
                    }
                }
                route(&mut pending, server.poll());
            }
            Ok(Msg::Health { reply }) => {
                let _ = reply.send(server.health());
            }
            Ok(Msg::Shutdown) | Err(RecvTimeoutError::Disconnected) => {
                advance(&mut server, &mut last);
                route(&mut pending, server.drain());
                debug_assert!(pending.is_empty(), "drain resolves every admitted request");
                return server.stats();
            }
            Err(RecvTimeoutError::Timeout) => {
                advance(&mut server, &mut last);
                route(&mut pending, server.poll());
            }
        }
    }
}

fn route(pending: &mut HashMap<u64, Sender<Outcome>>, outcomes: Vec<Outcome>) {
    for outcome in outcomes {
        if let Some(reply) = pending.remove(&outcome.id) {
            // The client may have hung up; the outcome was still typed
            // and accounted, so a dead receiver is not a silent drop.
            let _ = reply.send(outcome);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::OutcomeKind;
    use crate::{ModelKind, Scale};

    #[test]
    fn threaded_round_trip_resolves_every_request() {
        let config = ServeConfig {
            dataset: "G2".into(),
            scale: Scale::Tiny,
            model: ModelKind::Gcn,
            queue_capacity: 32,
            batch_max: 4,
            ..ServeConfig::default()
        };
        let service = Service::start(config).unwrap();
        let receivers: Vec<_> = (0..10u32).map(|i| service.submit(i, Some(5_000))).collect();
        let health = service.health().expect("probe answers while running");
        assert!(health.queue_capacity == 32);
        let stats = service.shutdown();
        let mut kinds = Vec::new();
        for rx in receivers {
            let outcome = rx
                .recv_timeout(Duration::from_secs(30))
                .expect("every request resolves by shutdown");
            assert!(
                outcome.kind != OutcomeKind::Success || outcome.logits.is_some(),
                "success carries logits"
            );
            kinds.push(outcome.kind);
        }
        assert_eq!(kinds.len(), 10);
        assert_eq!(stats.submitted, 10);
        assert_eq!(
            stats.succeeded + stats.degraded + stats.rejected + stats.deadline_exceeded,
            10
        );
    }
}
