//! The batch dispatcher: one micro-batch in, one typed result out,
//! after chaos injection, watchdog enforcement, and bounded retry.
//!
//! Every launch attempt rolls a seeded hash (`splitmix64` over
//! `seed ^ launch_id ^ attempt`) against the configured chaos rate, so
//! a given `(config, request schedule)` pair injects *exactly* the same
//! faults every run — overload behavior is replayable, not flaky:
//!
//! * on the **sim** backend an armed attempt runs on an ephemeral
//!   chaos-enabled simulator (fault engines attach set-once per GPU),
//!   cycling [`FaultKind::WarpKill`] (kernel abort),
//!   [`FaultKind::WarpStall`] (slowdown → serving watchdog), and
//!   [`FaultKind::LaunchTransient`] (declined launch);
//! * on **native**, where kernels cannot fail organically, an armed
//!   attempt is declined up front with a synthetic
//!   [`AbortReason::ChaosKill`] kernel abort.
//!
//! The serving watchdog bounds the *virtual* cost of an attempt: a
//! launch that completes but overruns `watchdog_budget_ms` is treated
//! as an abort and retried. Retries use [`RetryPolicy::backoff_ms`] —
//! exponential base plus seeded splitmix64 jitter — and every
//! millisecond (attempts, backoffs, failures) is accounted into
//! `advance_ms` so the server's virtual clock moves exactly as the
//! dispatch did.

use gnnone_kernels::backend::{Backend, BackendKind, ExecReport};
use gnnone_kernels::shard::RetryPolicy;
use gnnone_sim::engine::LaunchError;
use gnnone_sim::error::{AbortReason, KernelAbort};
use gnnone_sim::{splitmix64, ChaosConfig, FaultKind, GnnOneError, Gpu, GpuSpec};

use crate::model::ServingState;

/// Everything one dispatched batch produced: the terminal result plus
/// the accounting the server folds into its clock and stats.
#[derive(Debug)]
pub struct DispatchOutcome {
    /// Batch logits on success, the final typed error once retries are
    /// exhausted.
    pub result: Result<Vec<f32>, GnnOneError>,
    /// Re-attempts performed (0 = first attempt succeeded).
    pub retries: u32,
    /// Total virtual time consumed: launch costs + failed attempts +
    /// retry backoffs.
    pub advance_ms: f64,
    /// Virtual cost of the successful attempt (launch-estimate input);
    /// `None` if no attempt succeeded.
    pub success_cost_ms: Option<f64>,
    /// Attempts on which chaos was armed.
    pub chaos_injected: u32,
    /// Attempts the serving watchdog converted into aborts.
    pub watchdog_trips: u32,
}

/// Owns the backend and runs micro-batches under the failure policy.
pub struct Dispatcher {
    backend: Backend,
    /// Chaos injection rate per attempt, permille.
    pub chaos_rate_permille: u64,
    /// Seed for the chaos schedule (shared with the fault engines).
    pub chaos_seed: u64,
    /// Serving watchdog budget (virtual ms per attempt).
    pub watchdog_budget_ms: f64,
    /// Bounded retry policy with seeded jitter.
    pub retry: RetryPolicy,
    /// Virtual cost model for native launches: base.
    pub native_cost_base_ms: f64,
    /// Virtual cost model for native launches: per batched row.
    pub native_cost_per_row_ms: f64,
    /// Virtual cost charged to a failed attempt.
    pub failed_attempt_ms: f64,
    launch_counter: u64,
}

impl Dispatcher {
    /// A dispatcher executing on `backend` under the given policy
    /// knobs (see [`crate::ServeConfig`] for semantics).
    pub fn new(backend: Backend, config: &crate::ServeConfig) -> Self {
        Self {
            backend,
            chaos_rate_permille: config.chaos_rate_permille,
            chaos_seed: config.seed,
            watchdog_budget_ms: config.watchdog_budget_ms,
            retry: config.retry,
            native_cost_base_ms: config.native_cost_base_ms,
            native_cost_per_row_ms: config.native_cost_per_row_ms,
            failed_attempt_ms: config.failed_attempt_ms,
            launch_counter: 0,
        }
    }

    /// The backend kind this dispatcher executes on.
    pub fn backend_kind(&self) -> BackendKind {
        self.backend.kind()
    }

    /// Virtual cost of a completed launch: simulated milliseconds on
    /// sim; the deterministic cost model on native (wall clocks would
    /// make shed decisions unreplayable).
    fn cost_of(&self, report: &ExecReport, rows: usize) -> f64 {
        match report.backend {
            BackendKind::Sim => report.time_ms,
            BackendKind::Native => {
                self.native_cost_base_ms + self.native_cost_per_row_ms * rows as f64
            }
        }
    }

    /// Runs one micro-batch to a terminal result under chaos, watchdog,
    /// and bounded retry.
    pub fn run_batch(&mut self, state: &ServingState, nodes: &[u32]) -> DispatchOutcome {
        let launch_id = self.launch_counter;
        self.launch_counter += 1;
        let max_attempts = self.retry.max_attempts.max(1);
        let mut advance = 0.0f64;
        let mut chaos_injected = 0u32;
        let mut watchdog_trips = 0u32;
        let mut last_err: Option<GnnOneError> = None;
        for attempt in 1..=max_attempts {
            let roll = splitmix64(self.chaos_seed ^ (launch_id << 8) ^ u64::from(attempt));
            let armed = self.chaos_rate_permille > 0 && roll % 1000 < self.chaos_rate_permille;
            let outcome = if armed {
                chaos_injected += 1;
                self.chaos_attempt(state, nodes, roll)
            } else {
                state.launch(&self.backend, nodes)
            };
            match outcome {
                Ok((logits, report)) => {
                    let cost = self.cost_of(&report, nodes.len());
                    advance += cost;
                    if cost > self.watchdog_budget_ms {
                        watchdog_trips += 1;
                        last_err = Some(GnnOneError::Launch(LaunchError::Aborted(KernelAbort {
                            kernel: report.name.clone(),
                            warp_id: 0,
                            ops: 0,
                            budget: self.watchdog_budget_ms.ceil() as u64,
                            reason: AbortReason::Watchdog,
                        })));
                    } else {
                        return DispatchOutcome {
                            result: Ok(logits),
                            retries: attempt - 1,
                            advance_ms: advance,
                            success_cost_ms: Some(cost),
                            chaos_injected,
                            watchdog_trips,
                        };
                    }
                }
                Err(e) => {
                    advance += self.failed_attempt_ms;
                    last_err = Some(GnnOneError::Launch(e));
                }
            }
            if attempt < max_attempts {
                advance += self.retry.backoff_ms(attempt) as f64;
            }
        }
        DispatchOutcome {
            result: Err(last_err.expect("at least one attempt ran")),
            retries: max_attempts - 1,
            advance_ms: advance,
            success_cost_ms: None,
            chaos_injected,
            watchdog_trips,
        }
    }

    /// One chaos-armed attempt. Sim: ephemeral fault-engined GPU running
    /// the real launch. Native: synthetic decline (native kernels have
    /// no failure path to corrupt).
    fn chaos_attempt(
        &self,
        state: &ServingState,
        nodes: &[u32],
        roll: u64,
    ) -> Result<(Vec<f32>, ExecReport), LaunchError> {
        match self.backend.kind() {
            BackendKind::Sim => {
                const KINDS: [FaultKind; 3] = [
                    FaultKind::WarpKill,
                    FaultKind::WarpStall,
                    FaultKind::LaunchTransient,
                ];
                let kind = KINDS[((roll >> 32) % 3) as usize];
                let gpu = Gpu::new(GpuSpec::a100_40gb());
                gpu.enable_chaos(ChaosConfig::fault(kind, roll));
                let chaotic = Backend::Sim(gpu);
                state.launch(&chaotic, nodes)
            }
            BackendKind::Native => Err(LaunchError::Aborted(KernelAbort {
                kernel: "serve-batch".to_string(),
                warp_id: roll % 32,
                ops: 0,
                budget: 0,
                reason: AbortReason::ChaosKill,
            })),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::make_backend;
    use crate::{ModelKind, Scale, ServeConfig};

    fn state_and_config() -> (ServingState, ServeConfig) {
        let config = ServeConfig {
            dataset: "G2".into(),
            scale: Scale::Tiny,
            model: ModelKind::Gcn,
            ..ServeConfig::default()
        };
        (ServingState::build(&config).unwrap(), config)
    }

    #[test]
    fn clean_dispatch_succeeds_without_retries() {
        let (state, config) = state_and_config();
        let mut d = Dispatcher::new(make_backend(BackendKind::Sim), &config);
        let out = d.run_batch(&state, &[0, 1, 2]);
        assert!(out.result.is_ok());
        assert_eq!(out.retries, 0);
        assert_eq!(out.chaos_injected, 0);
        assert!(out.advance_ms > 0.0);
        assert_eq!(out.success_cost_ms, Some(out.advance_ms));
    }

    #[test]
    fn full_chaos_exhausts_retries_with_a_typed_launch_error() {
        let (state, mut config) = state_and_config();
        config.chaos_rate_permille = 1000;
        // WarpStall attempts can still complete under budget, so force
        // the always-failing synthetic arm via native.
        config.backend = BackendKind::Native;
        let mut d = Dispatcher::new(make_backend(BackendKind::Native), &config);
        let out = d.run_batch(&state, &[3, 4]);
        let err = out.result.unwrap_err();
        assert_eq!(err.kind(), "launch");
        assert_eq!(out.retries, config.retry.max_attempts - 1);
        assert_eq!(out.chaos_injected, config.retry.max_attempts);
        // Advance accounts failures + the two backoffs.
        let backoffs: f64 = (1..config.retry.max_attempts)
            .map(|a| config.retry.backoff_ms(a) as f64)
            .sum();
        let expected = config.failed_attempt_ms * config.retry.max_attempts as f64 + backoffs;
        assert!((out.advance_ms - expected).abs() < 1e-9);
    }

    #[test]
    fn chaos_schedule_is_seed_deterministic() {
        let (state, mut config) = state_and_config();
        config.chaos_rate_permille = 500;
        let run = |cfg: &ServeConfig| {
            let mut d = Dispatcher::new(make_backend(BackendKind::Sim), cfg);
            (0..6)
                .map(|i| {
                    let out = d.run_batch(&state, &[i, i + 1]);
                    (out.result.is_ok(), out.retries, out.chaos_injected)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(&config), run(&config), "same seed, same fault schedule");
        let mut other = config.clone();
        other.seed ^= 0xDEAD_BEEF;
        // Different seeds produce a different schedule (with 6 batches ×
        // 50% rate this is overwhelmingly likely; equality would signal
        // the seed is ignored).
        let a = run(&config);
        let b = run(&other);
        let a_injected: u32 = a.iter().map(|t| t.2).sum();
        let b_injected: u32 = b.iter().map(|t| t.2).sum();
        assert!(a != b || a_injected != b_injected || a_injected > 0);
    }
}
