//! The deterministic serving core on a virtual clock.
//!
//! [`Server`] composes the admission queue, micro-batcher, dispatcher,
//! and circuit breaker into one state machine with a single invariant:
//! **every submitted request resolves to exactly one typed
//! [`Outcome`]** — success, degraded, rejected, or deadline-exceeded —
//! and nothing is ever dropped silently. Rejections happen at
//! [`Server::submit`]; everything admitted surfaces from
//! [`Server::poll`] or [`Server::drain`].
//!
//! Time is virtual: the driver advances the clock explicitly
//! ([`Server::advance`]) and launches advance it by their deterministic
//! cost (simulated milliseconds on sim, the configured cost model on
//! native, plus retry backoffs). Given the same [`crate::ServeConfig`]
//! and the same submit/advance schedule, every decision — batch cuts,
//! deadline sheds, chaos faults, breaker trips — replays identically.
//! The threaded front in [`crate::service`] maps wall time onto this
//! core; the core itself never reads a wall clock.

use gnnone_kernels::backend::BackendKind;
use gnnone_sim::GnnOneError;

use crate::batch::{Batcher, Request};
use crate::breaker::{BreakerState, CircuitBreaker};
use crate::exec::Dispatcher;
use crate::model::{make_backend, ServingState};
use crate::ServeConfig;

/// How a request resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutcomeKind {
    /// Served by a kernel launch.
    Success,
    /// Served from the cached centroid index (breaker open or retries
    /// exhausted); `degraded` is set.
    Degraded,
    /// Refused at admission (queue full); carries
    /// [`GnnOneError::Rejected`].
    Rejected,
    /// Shed before launch because the deadline could not be met;
    /// carries [`GnnOneError::DeadlineExceeded`].
    DeadlineExceeded,
}

impl OutcomeKind {
    /// Canonical kebab-case name (reports, JSON).
    pub fn as_str(&self) -> &'static str {
        match self {
            OutcomeKind::Success => "success",
            OutcomeKind::Degraded => "degraded",
            OutcomeKind::Rejected => "rejected",
            OutcomeKind::DeadlineExceeded => "deadline-exceeded",
        }
    }
}

/// The single typed resolution of one request.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// The id [`Server::submit`] assigned.
    pub id: u64,
    /// The requested vertex.
    pub node: u32,
    /// How the request resolved.
    pub kind: OutcomeKind,
    /// Class logits — exact on success, centroid cache when degraded,
    /// absent on rejection/shed.
    pub logits: Option<Vec<f32>>,
    /// True iff `logits` came from the degraded cache.
    pub degraded: bool,
    /// The typed error for rejected / deadline-exceeded outcomes.
    pub error: Option<GnnOneError>,
    /// Virtual submit-to-resolution latency.
    pub latency_ms: f64,
    /// Launch re-attempts spent on this request's batch.
    pub retries: u32,
}

/// What [`Server::submit`] returns: queued, or immediately rejected
/// with the typed outcome.
#[derive(Debug)]
pub enum Submit {
    /// Admitted; the id's outcome will surface from `poll`/`drain`.
    Queued(u64),
    /// Refused at admission — this *is* the request's one outcome.
    Rejected(Box<Outcome>),
}

/// Monotonic counters over everything the server resolved.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests submitted (admitted or not).
    pub submitted: u64,
    /// Resolved by a kernel launch.
    pub succeeded: u64,
    /// Resolved from the degraded cache.
    pub degraded: u64,
    /// Refused at admission.
    pub rejected: u64,
    /// Shed on deadline before launch.
    pub deadline_exceeded: u64,
    /// Launch re-attempts across all batches.
    pub retries: u64,
    /// Micro-batch launches attempted (clean or chaos-armed).
    pub launches: u64,
    /// Batches whose retries were exhausted.
    pub launch_failures: u64,
    /// Attempts converted to aborts by the serving watchdog.
    pub watchdog_trips: u64,
    /// Attempts on which chaos was armed.
    pub chaos_injected: u64,
    /// Times the circuit breaker tripped open.
    pub breaker_trips: u64,
}

/// Liveness/readiness snapshot for probes.
#[derive(Debug, Clone)]
pub struct Health {
    /// Whether new submissions can currently be admitted.
    pub ready: bool,
    /// True while answers come from the degraded cache (breaker not
    /// closed).
    pub degraded: bool,
    /// Breaker state at the current clock.
    pub breaker: BreakerState,
    /// Requests queued.
    pub queue_depth: usize,
    /// Admission capacity.
    pub queue_capacity: usize,
    /// Current virtual time.
    pub clock_ms: f64,
    /// Current launch-cost estimate (drives batch cuts and sheds).
    pub est_launch_ms: f64,
}

/// The deterministic virtual-clock serving core.
pub struct Server {
    state: ServingState,
    dispatcher: Dispatcher,
    batcher: Batcher,
    breaker: CircuitBreaker,
    clock_ms: f64,
    est_launch_ms: f64,
    next_id: u64,
    default_deadline_ms: u64,
    stats: ServerStats,
}

impl Server {
    /// Builds the full serving stack for `config` (graph generation,
    /// weight export, CPU precompute, centroid fit, backend).
    pub fn new(config: ServeConfig) -> Result<Server, GnnOneError> {
        let state = ServingState::build(&config)?;
        let backend = make_backend(config.backend);
        let est0 = match config.backend {
            BackendKind::Sim => 1.0,
            BackendKind::Native => {
                config.native_cost_base_ms + config.native_cost_per_row_ms * config.batch_max as f64
            }
        };
        Ok(Server {
            dispatcher: Dispatcher::new(backend, &config),
            batcher: Batcher::new(
                config.queue_capacity,
                config.batch_max,
                config.deadline_margin_ms,
            ),
            breaker: CircuitBreaker::new(config.breaker_threshold, config.breaker_cooldown_ms),
            clock_ms: 0.0,
            est_launch_ms: est0,
            next_id: 0,
            default_deadline_ms: config.default_deadline_ms,
            stats: ServerStats::default(),
            state,
        })
    }

    /// The frozen serving state (topology, caches, reference logits).
    pub fn state(&self) -> &ServingState {
        &self.state
    }

    /// Current virtual time.
    pub fn now_ms(&self) -> f64 {
        self.clock_ms
    }

    /// Advances the virtual clock (the arrival process between
    /// submissions; wall-time mapping in threaded mode).
    pub fn advance(&mut self, ms: f64) {
        if ms > 0.0 {
            self.clock_ms += ms;
        }
    }

    /// Submits one request. `deadline_rel_ms` is relative to now
    /// (`None` = the configured default). Either admits (outcome later,
    /// via `poll`/`drain`) or rejects right here — never both, never
    /// neither.
    pub fn submit(&mut self, node: u32, deadline_rel_ms: Option<u64>) -> Submit {
        self.stats.submitted += 1;
        let id = self.next_id;
        self.next_id += 1;
        let rel = deadline_rel_ms.unwrap_or(self.default_deadline_ms);
        let req = Request {
            id,
            node,
            submit_ms: self.clock_ms,
            deadline_ms: self.clock_ms + rel as f64,
        };
        let flushes = self
            .batcher
            .depth()
            .div_ceil(self.batcher.batch_max())
            .max(1);
        let retry_after = (flushes as f64 * self.est_launch_ms).ceil().max(1.0) as u64;
        match self.batcher.try_admit(req, retry_after) {
            Ok(()) => Submit::Queued(id),
            Err(error) => {
                self.stats.rejected += 1;
                Submit::Rejected(Box::new(Outcome {
                    id,
                    node,
                    kind: OutcomeKind::Rejected,
                    logits: None,
                    degraded: false,
                    error: Some(error),
                    latency_ms: 0.0,
                    retries: 0,
                }))
            }
        }
    }

    /// Flushes every batch that is ready at the current clock and
    /// returns the resolved outcomes.
    pub fn poll(&mut self) -> Vec<Outcome> {
        let mut out = Vec::new();
        while self.batcher.ready(self.clock_ms, self.est_launch_ms) {
            self.flush_one(&mut out);
        }
        out
    }

    /// Flushes until the queue is empty (shutdown path): every admitted
    /// request resolves, ready or not.
    pub fn drain(&mut self) -> Vec<Outcome> {
        let mut out = Vec::new();
        while !self.batcher.is_empty() {
            self.flush_one(&mut out);
        }
        out
    }

    /// Readiness/liveness snapshot at the current clock.
    pub fn health(&mut self) -> Health {
        let breaker = self.breaker.state(self.clock_ms);
        Health {
            ready: self.batcher.depth() < self.batcher.capacity(),
            degraded: breaker != BreakerState::Closed,
            breaker,
            queue_depth: self.batcher.depth(),
            queue_capacity: self.batcher.capacity(),
            clock_ms: self.clock_ms,
            est_launch_ms: self.est_launch_ms,
        }
    }

    /// Re-arms the chaos injection rate (permille per attempt) — how
    /// the load generator switches between ramp/overload/chaos/recovery
    /// phases without rebuilding the stack.
    pub fn set_chaos_rate(&mut self, permille: u64) {
        self.dispatcher.chaos_rate_permille = permille;
    }

    /// Counters so far (breaker trips included).
    pub fn stats(&self) -> ServerStats {
        let mut s = self.stats.clone();
        s.breaker_trips = self.breaker.trips();
        s
    }

    fn flush_one(&mut self, out: &mut Vec<Outcome>) {
        let batch = self.batcher.take_batch();
        if batch.is_empty() {
            return;
        }
        // Pre-launch shed: a request whose deadline cannot survive the
        // estimated launch resolves *now* with a typed margin, instead
        // of wasting a launch slot to miss anyway.
        let needed = self.est_launch_ms;
        let mut live = Vec::with_capacity(batch.len());
        for req in batch {
            if self.clock_ms + needed > req.deadline_ms {
                self.stats.deadline_exceeded += 1;
                out.push(Outcome {
                    id: req.id,
                    node: req.node,
                    kind: OutcomeKind::DeadlineExceeded,
                    logits: None,
                    degraded: false,
                    error: Some(GnnOneError::DeadlineExceeded {
                        deadline_ms: req.deadline_ms.round() as u64,
                        now_ms: self.clock_ms.round() as u64,
                        needed_ms: needed.ceil().max(1.0) as u64,
                    }),
                    latency_ms: self.clock_ms - req.submit_ms,
                    retries: 0,
                });
            } else {
                live.push(req);
            }
        }
        if live.is_empty() {
            return;
        }
        if !self.breaker.allow(self.clock_ms) {
            for req in live {
                out.push(self.degraded_outcome(req, 0));
            }
            return;
        }
        let nodes: Vec<u32> = live.iter().map(|r| r.node).collect();
        let d = self.dispatcher.run_batch(&self.state, &nodes);
        self.clock_ms += d.advance_ms;
        self.stats.launches += 1;
        self.stats.retries += u64::from(d.retries);
        self.stats.chaos_injected += u64::from(d.chaos_injected);
        self.stats.watchdog_trips += u64::from(d.watchdog_trips);
        if let Some(cost) = d.success_cost_ms {
            // EWMA keeps the estimate smooth but responsive to chaos
            // slowdowns; floor avoids a zero estimate disabling sheds.
            self.est_launch_ms = (0.7 * self.est_launch_ms + 0.3 * cost).max(0.01);
        }
        match d.result {
            Ok(logits) => {
                self.breaker.record_success();
                let cls = self.state.classes;
                for (i, req) in live.into_iter().enumerate() {
                    self.stats.succeeded += 1;
                    out.push(Outcome {
                        id: req.id,
                        node: req.node,
                        kind: OutcomeKind::Success,
                        logits: Some(logits[i * cls..(i + 1) * cls].to_vec()),
                        degraded: false,
                        error: None,
                        latency_ms: self.clock_ms - req.submit_ms,
                        retries: d.retries,
                    });
                }
            }
            Err(_exhausted) => {
                self.breaker.record_failure(self.clock_ms);
                self.stats.launch_failures += 1;
                for req in live {
                    out.push(self.degraded_outcome(req, d.retries));
                }
            }
        }
    }

    fn degraded_outcome(&mut self, req: Request, retries: u32) -> Outcome {
        self.stats.degraded += 1;
        Outcome {
            id: req.id,
            node: req.node,
            kind: OutcomeKind::Degraded,
            logits: Some(self.state.degraded_logits(req.node)),
            degraded: true,
            error: None,
            latency_ms: self.clock_ms - req.submit_ms,
            retries,
        }
    }
}

/// Percentile over an **ascending-sorted** latency slice
/// (nearest-rank); 0.0 for an empty slice.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ModelKind, Scale};

    fn config() -> ServeConfig {
        ServeConfig {
            dataset: "G2".into(),
            scale: Scale::Tiny,
            model: ModelKind::Gcn,
            queue_capacity: 8,
            batch_max: 4,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn every_submission_resolves_exactly_once() {
        let mut server = Server::new(config()).unwrap();
        let n = server.state().num_vertices() as u32;
        let mut expected = Vec::new();
        let mut outcomes = Vec::new();
        for i in 0..20u32 {
            match server.submit(i % n, Some(100)) {
                Submit::Queued(id) => expected.push(id),
                Submit::Rejected(o) => {
                    expected.push(o.id);
                    outcomes.push(*o);
                }
            }
            server.advance(0.5);
            outcomes.extend(server.poll());
        }
        outcomes.extend(server.drain());
        let mut got: Vec<u64> = outcomes.iter().map(|o| o.id).collect();
        got.sort_unstable();
        expected.sort_unstable();
        assert_eq!(got, expected, "exactly one typed outcome per submission");
        let s = server.stats();
        assert_eq!(
            s.submitted,
            s.succeeded + s.degraded + s.rejected + s.deadline_exceeded
        );
    }

    #[test]
    fn overflow_rejects_with_typed_backpressure() {
        let mut server = Server::new(config()).unwrap();
        let mut rejected = 0;
        for i in 0..12u32 {
            if let Submit::Rejected(o) = server.submit(i, Some(1_000)) {
                rejected += 1;
                assert_eq!(o.kind, OutcomeKind::Rejected);
                let err = o.error.expect("rejection carries the typed error");
                assert_eq!(err.kind(), "rejected");
            }
        }
        // capacity 8: submissions 9..12 bounce (poll never ran).
        assert_eq!(rejected, 4);
        assert!(!server.health().ready);
    }

    #[test]
    fn hopeless_deadlines_shed_with_typed_margin() {
        let mut server = Server::new(config()).unwrap();
        // Deadline of 0ms relative: cannot survive any launch estimate.
        let Submit::Queued(id) = server.submit(1, Some(0)) else {
            panic!("first submission must be admitted");
        };
        let out = server.drain();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].id, id);
        assert_eq!(out[0].kind, OutcomeKind::DeadlineExceeded);
        assert_eq!(out[0].error.as_ref().unwrap().kind(), "deadline-exceeded");
        assert!(out[0].logits.is_none());
    }

    #[test]
    fn chaos_storm_trips_breaker_then_recovery_closes_it() {
        let mut cfg = config();
        cfg.backend = crate::BackendKind::Native; // synthetic chaos always fails
        cfg.chaos_rate_permille = 1000;
        cfg.breaker_threshold = 2;
        cfg.breaker_cooldown_ms = 10;
        let mut server = Server::new(cfg).unwrap();
        let mut outcomes = Vec::new();
        for i in 0..16u32 {
            if let Submit::Rejected(o) = server.submit(i % 4, Some(10_000)) {
                outcomes.push(*o);
            }
            outcomes.extend(server.drain());
        }
        assert!(server.stats().breaker_trips >= 1, "storm must trip breaker");
        assert!(
            outcomes.iter().any(|o| o.degraded && o.logits.is_some()),
            "open breaker serves cached degraded answers"
        );
        // Recovery: chaos off, wait out the cooldown, probe succeeds.
        server.set_chaos_rate(0);
        server.advance(50.0);
        if let Submit::Queued(_) = server.submit(1, Some(10_000)) {
            let out = server.drain();
            assert_eq!(out.len(), 1);
            assert_eq!(out[0].kind, OutcomeKind::Success, "probe closes breaker");
        }
        assert_eq!(server.health().breaker, BreakerState::Closed);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 50.0), 2.0);
        assert_eq!(percentile(&v, 99.0), 4.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }
}
