//! Property tests of the serving core's three load-bearing contracts:
//!
//! 1. **No silent drops** — every submitted request, under any
//!    admission/arrival/chaos schedule, resolves to exactly one typed
//!    outcome.
//! 2. **Batch transparency** — a micro-batched launch returns, for
//!    every row, the bitwise-identical logits the same node gets in a
//!    batch of one, on both backends and both model families. This is
//!    the property that justifies coalescing at all: batching is an
//!    efficiency decision, never an accuracy decision.
//! 3. **Replayable sheds** — deadline-shed decisions are a pure
//!    function of the seed and the schedule: two runs of the same
//!    overloaded scenario shed the same requests with the same typed
//!    margins.

use std::sync::OnceLock;

use gnnone_serve::model::make_backend;
use gnnone_serve::{
    BackendKind, ModelKind, Outcome, Scale, ServeConfig, Server, ServingState, Submit,
};
use proptest::prelude::*;

fn tiny_config(model: ModelKind) -> ServeConfig {
    ServeConfig {
        dataset: "G2".into(),
        scale: Scale::Tiny,
        model,
        ..ServeConfig::default()
    }
}

fn gcn_state() -> &'static ServingState {
    static STATE: OnceLock<ServingState> = OnceLock::new();
    STATE.get_or_init(|| ServingState::build(&tiny_config(ModelKind::Gcn)).unwrap())
}

fn gat_state() -> &'static ServingState {
    static STATE: OnceLock<ServingState> = OnceLock::new();
    STATE.get_or_init(|| ServingState::build(&tiny_config(ModelKind::Gat)).unwrap())
}

/// Drives a server through a schedule of (node, deadline, advance)
/// steps and returns (submitted ids, outcomes).
fn drive(server: &mut Server, steps: &[(u32, u64, u32)]) -> (Vec<u64>, Vec<Outcome>) {
    let n = server.state().num_vertices() as u32;
    let mut ids = Vec::new();
    let mut outcomes = Vec::new();
    for &(node, deadline, gap_tenths) in steps {
        server.advance(gap_tenths as f64 / 10.0);
        match server.submit(node % n, Some(deadline)) {
            Submit::Queued(id) => ids.push(id),
            Submit::Rejected(o) => {
                ids.push(o.id);
                outcomes.push(*o);
            }
        }
        outcomes.extend(server.poll());
    }
    outcomes.extend(server.drain());
    (ids, outcomes)
}

/// Compressed fingerprint of an outcome, bit-exact on logits.
fn fingerprint(o: &Outcome) -> (u64, &'static str, Option<Vec<u32>>, u64, u32) {
    (
        o.id,
        o.kind.as_str(),
        o.logits
            .as_ref()
            .map(|l| l.iter().map(|v| v.to_bits()).collect()),
        o.latency_ms.to_bits(),
        o.retries,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Property 1: exactly one typed outcome per submission — small
    /// queue, tight deadlines, full chaos; nothing falls through.
    #[test]
    fn no_admitted_request_is_dropped(
        steps in prop::collection::vec((0u32..4096, 0u64..40, 0u32..30), 1..40),
        chaos in 0u64..=1000,
    ) {
        let mut config = tiny_config(ModelKind::Gcn);
        config.backend = BackendKind::Native;
        config.queue_capacity = 4;
        config.batch_max = 3;
        config.chaos_rate_permille = chaos;
        config.breaker_threshold = 2;
        config.breaker_cooldown_ms = 5;
        let mut server = Server::new(config).unwrap();
        let (mut ids, outcomes) = drive(&mut server, &steps);
        let mut got: Vec<u64> = outcomes.iter().map(|o| o.id).collect();
        got.sort_unstable();
        ids.sort_unstable();
        prop_assert_eq!(&got, &ids, "every id resolves exactly once");
        for o in &outcomes {
            // Typed: terminal outcomes carry logits XOR a typed error.
            prop_assert!(o.logits.is_some() ^ o.error.is_some());
        }
        let s = server.stats();
        prop_assert_eq!(
            s.submitted,
            s.succeeded + s.degraded + s.rejected + s.deadline_exceeded
        );
    }

    /// Property 2 (GCN): batched logits are bitwise-identical to
    /// batch-of-one execution on both backends.
    #[test]
    fn gcn_batched_equals_unbatched_bitwise(
        nodes in prop::collection::vec(0u32..4096, 1..10),
    ) {
        let state = gcn_state();
        let n = state.num_vertices() as u32;
        let nodes: Vec<u32> = nodes.into_iter().map(|v| v % n).collect();
        for kind in [BackendKind::Sim, BackendKind::Native] {
            let backend = make_backend(kind);
            let (batched, _) = state.launch(&backend, &nodes).unwrap();
            for (i, &node) in nodes.iter().enumerate() {
                let (single, _) = state.launch(&backend, &[node]).unwrap();
                prop_assert_eq!(
                    &batched[i * state.classes..(i + 1) * state.classes],
                    &single[..],
                    "gcn node {} differs on {} backend", node, kind.as_str()
                );
            }
        }
    }

    /// Property 2 (GAT): same bitwise batch-transparency through the
    /// fused IR-lowered attention launch.
    #[test]
    fn gat_batched_equals_unbatched_bitwise(
        nodes in prop::collection::vec(0u32..4096, 1..8),
    ) {
        let state = gat_state();
        let n = state.num_vertices() as u32;
        let nodes: Vec<u32> = nodes.into_iter().map(|v| v % n).collect();
        for kind in [BackendKind::Sim, BackendKind::Native] {
            let backend = make_backend(kind);
            let (batched, _) = state.launch(&backend, &nodes).unwrap();
            for (i, &node) in nodes.iter().enumerate() {
                let (single, _) = state.launch(&backend, &[node]).unwrap();
                prop_assert_eq!(
                    &batched[i * state.classes..(i + 1) * state.classes],
                    &single[..],
                    "gat node {} differs on {} backend", node, kind.as_str()
                );
            }
        }
    }

    /// Property 3: the full outcome stream — shed decisions, typed
    /// margins, latencies, logits — replays bit-exactly under a fixed
    /// seed and schedule.
    #[test]
    fn deadline_sheds_are_deterministic_under_fixed_seed(
        steps in prop::collection::vec((0u32..4096, 0u64..25, 0u32..20), 1..30),
        seed in 0u64..u64::MAX,
        chaos in 0u64..=1000,
    ) {
        let run = || {
            let mut config = tiny_config(ModelKind::Gcn);
            config.seed = seed;
            config.retry.seed = seed;
            config.chaos_rate_permille = chaos;
            config.queue_capacity = 6;
            config.batch_max = 3;
            config.deadline_margin_ms = 1;
            let mut server = Server::new(config).unwrap();
            let (_, outcomes) = drive(&mut server, &steps);
            (
                outcomes.iter().map(fingerprint).collect::<Vec<_>>(),
                server.stats(),
            )
        };
        let (a, stats_a) = run();
        let (b, stats_b) = run();
        prop_assert_eq!(a, b, "outcome stream must replay bit-exactly");
        prop_assert_eq!(stats_a, stats_b);
    }
}
