//! Fusion IR over the kernel registry: small edge/vertex dataflow graphs
//! lowered into [`TwoStagePipeline`](crate::gnnone::TwoStagePipeline)
//! launches.
//!
//! The paper's observation that every GNN sparse kernel is an instance of
//! one unified two-stage shape (PR 3's pipeline refactor) is taken one
//! step further here: GNN *dataflow* is expressed as a graph of scoped
//! edge/vertex ops, and a pattern-matching lowering pass maps op chains
//! onto single pipeline instantiations instead of per-op launches. New
//! GNN variants become IR graphs, not new hand-written kernels.
//!
//! ## Scoping model
//!
//! Every IR value lives in one of two spaces:
//!
//! * [`Space::Vertex`] — one row per vertex (`|V| × width`);
//! * [`Space::Edge`] — one row per NZE in the graph's CSR/COO order
//!   (`|E| × width`).
//!
//! Widths are symbolic ([`Dim::One`] scalar or [`Dim::F`] the launch's
//! feature length), so one graph serves every feature dimension.
//!
//! Edge direction follows the aggregation the kernels implement: an edge
//! stored at CSR `(row, col)` carries a message from its **source** `u =
//! col` to its **destination** `v = row`, and the `aggregate_*` ops reduce
//! incoming messages at `v`. Hence `copy_u → aggregate_sum` is exactly
//! the SpMM gather `y[r] = Σ_{e ∈ row r} x[col(e)]`.
//!
//! ## Ops
//!
//! | op | inputs | output | notes |
//! |----|--------|--------|-------|
//! | `copy_u` | vertex `k` | edge `k` | gather source features |
//! | `copy_v` | vertex `k` | edge `k` | gather destination features |
//! | `u_add_v` | vertex 1 × vertex 1 | edge 1 | attention logits |
//! | `u_mul_e` | vertex `k` × edge 1 | edge `k` | weight messages |
//! | `u_dot_v` | vertex `k` × vertex `k` | edge 1 | dot-product scores |
//! | `leaky_relu` | edge `k` | edge `k` | elementwise |
//! | `edge_softmax` | edge 1 | edge 1 | per destination row |
//! | `aggregate_sum` | edge `k` | vertex `k` | reduce at destination |
//! | `aggregate_max` | edge `k` | vertex `k` | reduce at destination |
//!
//! [`IrGraph::verify`] checks these scope/shape rules; [`lower()`] pattern
//! matches verified chains into [`Plan`] steps (single fused launches
//! where a pattern matches, per-op launches or host fallbacks otherwise);
//! [`exec::execute`] runs a plan on either backend; [`summary`] derives
//! the static verifier's access summaries from the lowered steps. See
//! `docs/FUSION_IR.md` for the full lowering table and a worked GAT
//! example.

pub mod exec;
pub mod kernels;
pub mod lower;
pub mod summary;

pub use exec::{execute, ExecResult};
pub use kernels::{IrFusedGat, IrUAddV};
pub use lower::{lower, LowerOptions, Plan, Step};

use std::fmt;

/// The space an IR value lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Space {
    /// One row per vertex (`|V| × width`).
    Vertex,
    /// One row per NZE, in the graph's CSR/COO edge order (`|E| × width`).
    Edge,
}

impl Space {
    /// Display name used in verifier messages and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            Space::Vertex => "vertex",
            Space::Edge => "edge",
        }
    }
}

/// Symbolic per-row width of an IR value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dim {
    /// Scalar (width 1): logits, attention coefficients, edge weights.
    One,
    /// The launch's feature length `f`: feature rows.
    F,
}

impl Dim {
    /// Concrete width at feature length `f`.
    pub fn len(self, f: usize) -> usize {
        match self {
            Dim::One => 1,
            Dim::F => f,
        }
    }
}

/// Identifies one IR value (the output of one node).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ValueId(pub usize);

/// One IR operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OpKind {
    /// Graph input (a leaf bound at execution time).
    Input,
    /// Gather source-vertex features onto edges: `out[e] = x[col(e)]`.
    CopyU,
    /// Gather destination-vertex features onto edges: `out[e] = x[row(e)]`.
    CopyV,
    /// Attention logits: `out[e] = a[col(e)] + b[row(e)]` (scalar terms).
    UAddV,
    /// Weight messages: `out[e] = x[col(e)] · w[e]` (per feature lane).
    UMulE,
    /// Dot-product scores: `out[e] = Σ_k x[col(e),k] · y[row(e),k]`.
    UDotV,
    /// Elementwise LeakyReLU over an edge tensor.
    LeakyRelu {
        /// Negative slope.
        slope: f32,
    },
    /// Softmax over each destination row's incident edges.
    EdgeSoftmax,
    /// Sum incoming edge messages at each destination vertex.
    AggregateSum,
    /// Max over incoming edge messages at each destination vertex.
    AggregateMax,
}

impl OpKind {
    /// The op's IR spelling (the `docs/FUSION_IR.md` vocabulary).
    pub fn as_str(self) -> &'static str {
        match self {
            OpKind::Input => "input",
            OpKind::CopyU => "copy_u",
            OpKind::CopyV => "copy_v",
            OpKind::UAddV => "u_add_v",
            OpKind::UMulE => "u_mul_e",
            OpKind::UDotV => "u_dot_v",
            OpKind::LeakyRelu { .. } => "leaky_relu",
            OpKind::EdgeSoftmax => "edge_softmax",
            OpKind::AggregateSum => "aggregate_sum",
            OpKind::AggregateMax => "aggregate_max",
        }
    }
}

/// One node of an [`IrGraph`]: an op, its operands, and the scope/width
/// of the value it defines.
#[derive(Debug, Clone)]
pub struct Node {
    /// The operation.
    pub op: OpKind,
    /// Operand value ids (always earlier nodes — the graph is a DAG by
    /// construction).
    pub inputs: Vec<ValueId>,
    /// Space of the defined value.
    pub space: Space,
    /// Width of the defined value.
    pub dim: Dim,
    /// Binding label (inputs) or op spelling (interior nodes).
    pub label: &'static str,
}

/// A scope/shape error found by [`IrGraph::verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IrError {
    /// Index of the offending node.
    pub node: usize,
    /// What rule it breaks.
    pub message: String,
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ir node {}: {}", self.node, self.message)
    }
}

impl std::error::Error for IrError {}

/// A small dataflow graph of edge/vertex ops.
///
/// Built with the op methods (`input`, `u_add_v`, `edge_softmax`, …),
/// checked with [`verify`](Self::verify), lowered with [`lower()`].
#[derive(Debug, Clone)]
pub struct IrGraph {
    name: &'static str,
    nodes: Vec<Node>,
    outputs: Vec<ValueId>,
}

impl IrGraph {
    /// Creates an empty graph named `name` (used in reports).
    pub fn new(name: &'static str) -> Self {
        Self {
            name,
            nodes: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// The graph's display name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// All nodes, in definition (= topological) order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The node defining `id`.
    pub fn node(&self, id: ValueId) -> &Node {
        &self.nodes[id.0]
    }

    /// Declared outputs.
    pub fn outputs(&self) -> &[ValueId] {
        &self.outputs
    }

    /// Whether `id` is a declared output.
    pub fn is_output(&self, id: ValueId) -> bool {
        self.outputs.contains(&id)
    }

    /// Finds an input node by its binding label.
    pub fn find_input(&self, label: &str) -> Option<ValueId> {
        self.nodes
            .iter()
            .position(|n| n.op == OpKind::Input && n.label == label)
            .map(ValueId)
    }

    fn push(&mut self, node: Node) -> ValueId {
        self.nodes.push(node);
        ValueId(self.nodes.len() - 1)
    }

    /// Declares a graph input bound at execution time.
    pub fn input(&mut self, label: &'static str, space: Space, dim: Dim) -> ValueId {
        self.push(Node {
            op: OpKind::Input,
            inputs: Vec::new(),
            space,
            dim,
            label,
        })
    }

    fn unary(&mut self, op: OpKind, x: ValueId, space: Space, dim: Dim) -> ValueId {
        let label = op.as_str();
        self.push(Node {
            op,
            inputs: vec![x],
            space,
            dim,
            label,
        })
    }

    /// `out[e] = x[col(e)]` — source-feature gather.
    pub fn copy_u(&mut self, x: ValueId) -> ValueId {
        let dim = self.nodes[x.0].dim;
        self.unary(OpKind::CopyU, x, Space::Edge, dim)
    }

    /// `out[e] = x[row(e)]` — destination-feature gather.
    pub fn copy_v(&mut self, x: ValueId) -> ValueId {
        let dim = self.nodes[x.0].dim;
        self.unary(OpKind::CopyV, x, Space::Edge, dim)
    }

    /// `out[e] = a[col(e)] + b[row(e)]` — `a` is the source-side term,
    /// `b` the destination-side term (both scalar vertex tensors).
    pub fn u_add_v(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.push(Node {
            op: OpKind::UAddV,
            inputs: vec![a, b],
            space: Space::Edge,
            dim: Dim::One,
            label: "u_add_v",
        })
    }

    /// `out[e] = x[col(e)] · w[e]` — per-lane message weighting.
    pub fn u_mul_e(&mut self, x: ValueId, w: ValueId) -> ValueId {
        let dim = self.nodes[x.0].dim;
        self.push(Node {
            op: OpKind::UMulE,
            inputs: vec![x, w],
            space: Space::Edge,
            dim,
            label: "u_mul_e",
        })
    }

    /// `out[e] = Σ_k x[col(e),k] · y[row(e),k]` — dot-product scores.
    pub fn u_dot_v(&mut self, x: ValueId, y: ValueId) -> ValueId {
        self.push(Node {
            op: OpKind::UDotV,
            inputs: vec![x, y],
            space: Space::Edge,
            dim: Dim::One,
            label: "u_dot_v",
        })
    }

    /// Elementwise LeakyReLU over an edge tensor.
    pub fn leaky_relu(&mut self, x: ValueId, slope: f32) -> ValueId {
        let dim = self.nodes[x.0].dim;
        self.unary(OpKind::LeakyRelu { slope }, x, Space::Edge, dim)
    }

    /// Softmax over each destination row's incident edges.
    pub fn edge_softmax(&mut self, x: ValueId) -> ValueId {
        self.unary(OpKind::EdgeSoftmax, x, Space::Edge, Dim::One)
    }

    /// Sum incoming edge messages at each destination vertex.
    pub fn aggregate_sum(&mut self, m: ValueId) -> ValueId {
        let dim = self.nodes[m.0].dim;
        self.unary(OpKind::AggregateSum, m, Space::Vertex, dim)
    }

    /// Max over incoming edge messages at each destination vertex.
    pub fn aggregate_max(&mut self, m: ValueId) -> ValueId {
        let dim = self.nodes[m.0].dim;
        self.unary(OpKind::AggregateMax, m, Space::Vertex, dim)
    }

    /// Declares `id` a graph output.
    pub fn mark_output(&mut self, id: ValueId) {
        self.outputs.push(id);
    }

    /// How many nodes (including `self.outputs`) read `id`.
    pub fn use_count(&self, id: ValueId) -> usize {
        let by_nodes: usize = self
            .nodes
            .iter()
            .map(|n| n.inputs.iter().filter(|&&i| i == id).count())
            .sum();
        by_nodes + self.outputs.iter().filter(|&&o| o == id).count()
    }

    /// Checks the scope/shape rules of every node (the table in the
    /// module docs): operand spaces, symbolic widths, operand ordering
    /// (DAG form) and output validity.
    pub fn verify(&self) -> Result<(), IrError> {
        let err = |node: usize, message: String| Err(IrError { node, message });
        for (i, n) in self.nodes.iter().enumerate() {
            for &inp in &n.inputs {
                if inp.0 >= i {
                    return err(i, format!("operand v{} is not an earlier node", inp.0));
                }
            }
            let arity = |want: usize| -> Result<(), IrError> {
                if n.inputs.len() != want {
                    return Err(IrError {
                        node: i,
                        message: format!(
                            "{} takes {want} operand(s), got {}",
                            n.op.as_str(),
                            n.inputs.len()
                        ),
                    });
                }
                Ok(())
            };
            let operand = |k: usize| &self.nodes[n.inputs[k].0];
            let want = |k: usize, space: Space, dim: Option<Dim>| -> Result<(), IrError> {
                let o = operand(k);
                if o.space != space {
                    return Err(IrError {
                        node: i,
                        message: format!(
                            "{} operand {k} must be {}-space, got {}-space",
                            n.op.as_str(),
                            space.as_str(),
                            o.space.as_str()
                        ),
                    });
                }
                if let Some(d) = dim {
                    if o.dim != d {
                        return Err(IrError {
                            node: i,
                            message: format!(
                                "{} operand {k} must have width {d:?}, got {:?}",
                                n.op.as_str(),
                                o.dim
                            ),
                        });
                    }
                }
                Ok(())
            };
            match n.op {
                OpKind::Input => arity(0)?,
                OpKind::CopyU | OpKind::CopyV => {
                    arity(1)?;
                    want(0, Space::Vertex, None)?;
                }
                OpKind::UAddV => {
                    arity(2)?;
                    want(0, Space::Vertex, Some(Dim::One))?;
                    want(1, Space::Vertex, Some(Dim::One))?;
                }
                OpKind::UMulE => {
                    arity(2)?;
                    want(0, Space::Vertex, None)?;
                    want(1, Space::Edge, Some(Dim::One))?;
                }
                OpKind::UDotV => {
                    arity(2)?;
                    want(0, Space::Vertex, None)?;
                    want(1, Space::Vertex, None)?;
                    if operand(0).dim != operand(1).dim {
                        return err(i, "u_dot_v operands must share a width".to_string());
                    }
                }
                OpKind::LeakyRelu { .. } => {
                    arity(1)?;
                    want(0, Space::Edge, None)?;
                }
                OpKind::EdgeSoftmax => {
                    arity(1)?;
                    want(0, Space::Edge, Some(Dim::One))?;
                }
                OpKind::AggregateSum | OpKind::AggregateMax => {
                    arity(1)?;
                    want(0, Space::Edge, None)?;
                }
            }
        }
        if self.outputs.is_empty() {
            return err(self.nodes.len(), "graph declares no outputs".to_string());
        }
        for &o in &self.outputs {
            if o.0 >= self.nodes.len() {
                return err(o.0, "output id is not a node".to_string());
            }
        }
        Ok(())
    }
}

// ------------------------------------------------------------ prebuilt

/// The GAT attention chain: `u_add_v → leaky_relu → edge_softmax →
/// u_mul_e → aggregate_sum`, outputs `y` and the coefficients `α`.
///
/// Inputs: `att_src` (per-source term, the fused kernel's `er`),
/// `att_dst` (per-destination term, its `el`) and `z` (projected
/// features). Lowers to the single `CsrRows × RowSoftmaxGat` launch.
pub fn gat_attention_graph(slope: f32) -> IrGraph {
    let mut g = IrGraph::new("gat_attention");
    let att_src = g.input("att_src", Space::Vertex, Dim::One);
    let att_dst = g.input("att_dst", Space::Vertex, Dim::One);
    let z = g.input("z", Space::Vertex, Dim::F);
    let raw = g.u_add_v(att_src, att_dst);
    let logits = g.leaky_relu(raw, slope);
    let alpha = g.edge_softmax(logits);
    let msg = g.u_mul_e(z, alpha);
    let y = g.aggregate_sum(msg);
    g.mark_output(y);
    g.mark_output(alpha);
    g
}

/// The GAT attention chain in inference shape: identical dataflow to
/// [`gat_attention_graph`] but only `y` is an output, so the lowered
/// fused launch never materializes `α` — the edge-tensor round trip the
/// paper's fusion conjecture (§5.3.2) eliminates. The unfused plan must
/// still compute `α` in full as the aggregation operand, which is why
/// this shape is where fusion's win shows up. Training uses the
/// two-output variant (the tape needs `α` for backward).
pub fn gat_attention_inference_graph(slope: f32) -> IrGraph {
    let mut g = IrGraph::new("gat_attention_inference");
    let att_src = g.input("att_src", Space::Vertex, Dim::One);
    let att_dst = g.input("att_dst", Space::Vertex, Dim::One);
    let z = g.input("z", Space::Vertex, Dim::F);
    let raw = g.u_add_v(att_src, att_dst);
    let logits = g.leaky_relu(raw, slope);
    let alpha = g.edge_softmax(logits);
    let msg = g.u_mul_e(z, alpha);
    let y = g.aggregate_sum(msg);
    g.mark_output(y);
    g
}

/// Weighted aggregation (GCN/GIN SpMM): `u_mul_e → aggregate_sum`.
/// Inputs: `w` (edge weights) and `x` (features). Lowers to one
/// `RowAccum` launch.
pub fn spmm_graph() -> IrGraph {
    let mut g = IrGraph::new("spmm");
    let w = g.input("w", Space::Edge, Dim::One);
    let x = g.input("x", Space::Vertex, Dim::F);
    let msg = g.u_mul_e(x, w);
    let y = g.aggregate_sum(msg);
    g.mark_output(y);
    g
}

/// Unweighted neighbour sum (GraphSAGE's aggregator before mean
/// normalization): `copy_u → aggregate_sum`. Input: `x`. Lowers to one
/// `RowAccum` launch with unit edge values.
pub fn copy_u_sum_graph() -> IrGraph {
    let mut g = IrGraph::new("copy_u_sum");
    let x = g.input("x", Space::Vertex, Dim::F);
    let msg = g.copy_u(x);
    let y = g.aggregate_sum(msg);
    g.mark_output(y);
    g
}

/// Dot-product scores (SDDMM): `u_dot_v`. Inputs: `x` (source side)
/// and `y` (destination side). Lowers to one `EdgeDot` launch.
pub fn sddmm_graph() -> IrGraph {
    let mut g = IrGraph::new("sddmm");
    let x = g.input("x", Space::Vertex, Dim::F);
    let y = g.input("y", Space::Vertex, Dim::F);
    let w = g.u_dot_v(x, y);
    g.mark_output(w);
    g
}

/// Bare attention logits: `u_add_v`. Inputs: `att_src`, `att_dst`.
/// Lowers to one `ScalarGather` launch.
pub fn u_add_v_graph() -> IrGraph {
    let mut g = IrGraph::new("u_add_v");
    let att_src = g.input("att_src", Space::Vertex, Dim::One);
    let att_dst = g.input("att_dst", Space::Vertex, Dim::One);
    let w = g.u_add_v(att_src, att_dst);
    g.mark_output(w);
    g
}

/// Transformer-style dot-product attention: `u_dot_v → edge_softmax →
/// u_mul_e → aggregate_sum`, outputs `y` and `α`.
///
/// Inputs: `k` (source-side keys), `q` (destination-side queries) and
/// `v` (values). No fused pipeline matches the dot-product logits, so
/// this chain exercises the unfused fallback: an `EdgeDot` launch, the
/// host softmax, and a `RowAccum` launch.
pub fn dot_attention_graph() -> IrGraph {
    let mut g = IrGraph::new("dot_attention");
    let k = g.input("k", Space::Vertex, Dim::F);
    let q = g.input("q", Space::Vertex, Dim::F);
    let v = g.input("v", Space::Vertex, Dim::F);
    let scores = g.u_dot_v(k, q);
    let alpha = g.edge_softmax(scores);
    let msg = g.u_mul_e(v, alpha);
    let y = g.aggregate_sum(msg);
    g.mark_output(y);
    g.mark_output(alpha);
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prebuilt_graphs_verify() {
        for g in [
            gat_attention_graph(0.2),
            gat_attention_inference_graph(0.2),
            spmm_graph(),
            copy_u_sum_graph(),
            sddmm_graph(),
            u_add_v_graph(),
            dot_attention_graph(),
        ] {
            g.verify().unwrap_or_else(|e| panic!("{}: {e}", g.name()));
        }
    }

    #[test]
    fn verifier_rejects_scope_violations() {
        // aggregate of a vertex tensor
        let mut g = IrGraph::new("bad");
        let x = g.input("x", Space::Vertex, Dim::F);
        let y = g.aggregate_sum(x);
        g.mark_output(y);
        let e = g.verify().unwrap_err();
        assert!(e.message.contains("edge-space"), "{e}");

        // u_add_v over edge tensors
        let mut g = IrGraph::new("bad2");
        let a = g.input("a", Space::Edge, Dim::One);
        let b = g.input("b", Space::Edge, Dim::One);
        let w = g.u_add_v(a, b);
        g.mark_output(w);
        assert!(g.verify().is_err());

        // edge_softmax over a feature-wide tensor
        let mut g = IrGraph::new("bad3");
        let x = g.input("x", Space::Vertex, Dim::F);
        let m = g.copy_u(x);
        let s = g.edge_softmax(m);
        g.mark_output(s);
        let e = g.verify().unwrap_err();
        assert!(e.message.contains("width"), "{e}");

        // u_dot_v with mismatched widths
        let mut g = IrGraph::new("bad4");
        let x = g.input("x", Space::Vertex, Dim::F);
        let y = g.input("y", Space::Vertex, Dim::One);
        let w = g.u_dot_v(x, y);
        g.mark_output(w);
        assert!(g.verify().is_err());

        // no outputs
        let mut g = IrGraph::new("bad5");
        let _ = g.input("x", Space::Vertex, Dim::F);
        assert!(g.verify().is_err());
    }

    #[test]
    fn input_lookup_and_use_counts() {
        let g = gat_attention_graph(0.2);
        let z = g.find_input("z").unwrap();
        assert_eq!(g.use_count(z), 1);
        assert!(g.find_input("nope").is_none());
        // α is read by u_mul_e and declared an output.
        let alpha = ValueId(5);
        assert_eq!(g.node(alpha).op, OpKind::EdgeSoftmax);
        assert_eq!(g.use_count(alpha), 2);
        assert!(g.is_output(alpha));
    }
}
