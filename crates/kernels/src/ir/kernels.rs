//! IR-derived registry kernels.
//!
//! [`IrFusedGat`] and [`IrUAddV`] are constructed *from* lowered IR plans:
//! `new` builds the prebuilt chain, runs [`lower`](super::lower()), and
//! asserts the pattern matcher produced exactly the expected single-launch
//! plan — the launch parameters (slope, operand roles) are read back out
//! of the lowered [`Step`], not hard-coded. The registry instantiates
//! these in place of the hand-built kernels, so every sanitizer, chaos,
//! verify and bench sweep exercises IR-lowered launches. Byte-for-byte
//! parity with the hand-built `FusedGatAttention`/`GnnOneUAddV` is pinned
//! by `tests/fusion_ir.rs` and the `fusion-parity` CI job.

use std::sync::Arc;

use gnnone_sim::{engine::LaunchError, DeviceBuffer, Gpu, KernelReport};

use super::lower::{lower, LowerOptions, Step};
use super::{gat_attention_graph, u_add_v_graph};
use crate::analysis::{summaries, AccessSummary, ExecModel};
use crate::geometry::GroupGeometry;
use crate::gnnone::config::{GnnOneConfig, Schedule};
use crate::gnnone::fused::{RowSoftmaxGat, LOGIT_CACHE};
use crate::gnnone::pipeline::{CooNzes, CsrRows, TwoStagePipeline};
use crate::gnnone::reduce::ScalarGather;
use crate::graph::GraphData;
use crate::traits::{EdgeApplyKernel, FusedAttentionKernel};

/// The GAT attention chain, lowered from IR into the single
/// `CsrRows × RowSoftmaxGat` launch.
pub struct IrFusedGat {
    graph: Arc<GraphData>,
    /// LeakyReLU negative slope, recovered from the lowered plan.
    pub slope: f32,
}

impl IrFusedGat {
    /// Builds `u_add_v → leaky_relu → edge_softmax → u_mul_e →
    /// aggregate_sum`, lowers it, and keeps the fused launch's
    /// parameters.
    ///
    /// Panics if the lowering pass fails to produce exactly one fused
    /// step — that would mean the pattern matcher regressed, which the
    /// registry must not survive silently.
    pub fn new(graph: Arc<GraphData>, slope: f32) -> Self {
        let ir = gat_attention_graph(slope);
        let plan = lower(&ir, LowerOptions::default())
            .unwrap_or_else(|e| panic!("gat_attention IR failed to verify: {e}"));
        assert_eq!(
            plan.steps.len(),
            1,
            "gat_attention chain must lower to a single step, got {:?}",
            plan.steps
        );
        let Step::FusedGat {
            slope: lowered_slope,
            alpha,
            ..
        } = plan.steps[0]
        else {
            panic!(
                "gat_attention chain must lower to FusedGat, got {:?}",
                plan.steps
            );
        };
        assert!(alpha.is_some(), "α output must survive lowering");
        Self {
            graph,
            slope: lowered_slope,
        }
    }

    /// Runs the lowered fused launch; same contract as
    /// [`FusedGatAttention::run`](crate::gnnone::FusedGatAttention::run).
    #[allow(clippy::too_many_arguments)]
    pub fn run(
        &self,
        gpu: &Gpu,
        z: &DeviceBuffer<f32>,
        el: &DeviceBuffer<f32>,
        er: &DeviceBuffer<f32>,
        f: usize,
        y: &DeviceBuffer<f32>,
        alpha_out: Option<&DeviceBuffer<f32>>,
    ) -> Result<KernelReport, LaunchError> {
        // The lowering target: identical pipeline instantiation to the
        // hand-built kernel (pinned byte-for-byte by tests/fusion_ir.rs).
        let pipeline = TwoStagePipeline::new(
            CsrRows::new(&self.graph.d_csr_offsets, self.graph.num_vertices()),
            RowSoftmaxGat {
                cols: &self.graph.d_csr_cols,
                z,
                el,
                er,
                y,
                alpha_out,
                slope: self.slope,
            },
            f,
            GroupGeometry::feature_parallel(f),
            GnnOneConfig::default(),
            "GnnOne-FusedGAT",
        );
        gpu.try_launch(&pipeline)
    }
}

impl FusedAttentionKernel for IrFusedGat {
    fn graph(&self) -> &GraphData {
        &self.graph
    }

    fn name(&self) -> &'static str {
        "FusedGAT"
    }

    fn format(&self) -> &'static str {
        "CSR"
    }

    fn run(
        &self,
        gpu: &Gpu,
        z: &DeviceBuffer<f32>,
        el: &DeviceBuffer<f32>,
        er: &DeviceBuffer<f32>,
        f: usize,
        y: &DeviceBuffer<f32>,
        alpha_out: Option<&DeviceBuffer<f32>>,
    ) -> Result<KernelReport, LaunchError> {
        IrFusedGat::run(self, gpu, z, el, er, f, y, alpha_out)
    }

    fn run_native(
        &self,
        eng: &crate::backend::NativeEngine,
        z: &DeviceBuffer<f32>,
        el: &DeviceBuffer<f32>,
        er: &DeviceBuffer<f32>,
        f: usize,
        y: &DeviceBuffer<f32>,
        alpha_out: Option<&DeviceBuffer<f32>>,
    ) -> Result<crate::backend::NativeReport, LaunchError> {
        Ok(crate::backend::native::fused_gat_rows(
            eng,
            &self.graph,
            self.slope,
            z,
            el,
            er,
            f,
            y,
            alpha_out,
            self.name(),
        ))
    }

    fn access_summary(&self, f: usize, model: ExecModel) -> Option<AccessSummary> {
        Some(match model {
            ExecModel::Sim => summaries::fused_gat(self.name(), &self.graph, f, LOGIT_CACHE as u64),
            ExecModel::Native => summaries::native_fused_gat(self.name(), &self.graph, f),
        })
    }
}

/// The bare `u_add_v` chain, lowered from IR into the single
/// `CooNzes × ScalarGather` launch.
pub struct IrUAddV {
    graph: Arc<GraphData>,
}

impl IrUAddV {
    /// Builds the `u_add_v` graph, lowers it, and asserts the plan is the
    /// expected single `ScalarGather` launch.
    pub fn new(graph: Arc<GraphData>) -> Self {
        let ir = u_add_v_graph();
        let plan = lower(&ir, LowerOptions::default())
            .unwrap_or_else(|e| panic!("u_add_v IR failed to verify: {e}"));
        assert!(
            matches!(plan.steps.as_slice(), [Step::UAddV { .. }]),
            "u_add_v chain must lower to a single ScalarGather launch, got {:?}",
            plan.steps
        );
        Self { graph }
    }

    /// Runs the lowered launch: `w[e] = el[row(e)] + er[col(e)]`.
    pub fn run(
        &self,
        gpu: &Gpu,
        el: &DeviceBuffer<f32>,
        er: &DeviceBuffer<f32>,
        w: &DeviceBuffer<f32>,
    ) -> Result<KernelReport, LaunchError> {
        // Identical instantiation to the hand-built GnnOneUAddV (pinned
        // by tests/fusion_ir.rs): round-robin over 32 single-lane groups.
        let cfg = GnnOneConfig {
            cache_size: 128,
            schedule: Schedule::RoundRobin,
            vectorize: false,
            data_reuse: true,
        };
        let pipeline = TwoStagePipeline::new(
            CooNzes::new(
                &self.graph.d_coo_rows,
                &self.graph.d_coo_cols,
                self.graph.nnz(),
            ),
            ScalarGather { el, er, w },
            1,
            GroupGeometry::scalar(),
            cfg,
            "GnnOne-u_add_v",
        );
        gpu.try_launch(&pipeline)
    }
}

impl EdgeApplyKernel for IrUAddV {
    fn graph(&self) -> &GraphData {
        &self.graph
    }

    fn name(&self) -> &'static str {
        "GnnOne-UAddV"
    }

    fn format(&self) -> &'static str {
        "COO"
    }

    fn run(
        &self,
        gpu: &Gpu,
        el: &DeviceBuffer<f32>,
        er: &DeviceBuffer<f32>,
        w: &DeviceBuffer<f32>,
    ) -> Result<KernelReport, LaunchError> {
        IrUAddV::run(self, gpu, el, er, w)
    }

    fn access_summary(&self, model: ExecModel) -> Option<AccessSummary> {
        let cfg = GnnOneConfig {
            cache_size: 128,
            schedule: Schedule::RoundRobin,
            vectorize: false,
            data_reuse: true,
        };
        Some(match model {
            ExecModel::Sim => summaries::gnnone_uaddv(self.name(), &self.graph, &cfg),
            ExecModel::Native => summaries::native_edge_out(
                self.name(),
                "u-add-v",
                &self.graph,
                &GnnOneConfig::default(),
                1,
                summaries::uaddv_reads(),
            ),
        })
    }
}
