//! Pattern-matching lowering: IR chains → pipeline launch plans.
//!
//! [`lower`] verifies a graph, then walks it in definition order and maps
//! op chains onto [`Step`]s. Three aggregate folds always fire (they cost
//! nothing relative to the baseline): `u_mul_e → aggregate_sum` becomes a
//! single `RowAccum` SpMM launch, `copy_u → aggregate_sum` the same
//! launch with unit edge values, and `u_dot_v` an `EdgeDot` SDDMM launch.
//! The GAT fusion (`u_add_v → leaky_relu → edge_softmax → u_mul_e →
//! aggregate_sum` → one `RowSoftmaxGat` launch) is gated by
//! [`LowerOptions::fuse`] so callers can time fused vs unfused plans of
//! the same graph. Ops no pipeline covers fall back to host steps.

use super::{Dim, IrError, IrGraph, OpKind, ValueId};

/// Options for [`lower`].
#[derive(Debug, Clone, Copy)]
pub struct LowerOptions {
    /// Match the fused GAT pattern (default `true`). The aggregate folds
    /// are unconditional — the unfused baseline already uses single
    /// SpMM/SDDMM launches for them.
    pub fuse: bool,
}

impl Default for LowerOptions {
    fn default() -> Self {
        Self { fuse: true }
    }
}

/// One lowered execution step. `Fused`/`Sddmm`/`Spmm`/`SpmmOnes`/`UAddV`
/// are single pipeline launches; `Host*` steps are the unfused fallback
/// for ops no pipeline covers.
#[derive(Debug, Clone, PartialEq)]
pub enum Step {
    /// The whole GAT chain as one `CsrRows × RowSoftmaxGat` launch.
    FusedGat {
        /// LeakyReLU negative slope baked into the chain.
        slope: f32,
        /// Projected features (vertex, `F`).
        z: ValueId,
        /// Destination-side logit term (the kernel's `el`).
        el: ValueId,
        /// Source-side logit term (the kernel's `er`).
        er: ValueId,
        /// Aggregated output (vertex, `F`).
        y: ValueId,
        /// The softmax value, when the graph also outputs `α`.
        alpha: Option<ValueId>,
    },
    /// `u_dot_v` as one `CooNzes × EdgeDot` launch.
    Sddmm {
        /// Destination-side operand (indexed by COO rows).
        x: ValueId,
        /// Source-side operand (indexed by COO cols).
        y: ValueId,
        /// Edge-scalar output.
        out: ValueId,
    },
    /// `u_mul_e → aggregate_sum` as one `CsrRows × RowAccum` launch.
    Spmm {
        /// Edge weights.
        w: ValueId,
        /// Vertex features.
        x: ValueId,
        /// Aggregated output.
        out: ValueId,
    },
    /// `copy_u → aggregate_sum` as one `RowAccum` launch with unit
    /// edge values.
    SpmmOnes {
        /// Vertex features.
        x: ValueId,
        /// Aggregated output.
        out: ValueId,
    },
    /// `u_add_v` as one `CooNzes × ScalarGather` launch.
    UAddV {
        /// Destination-side term (the kernel's `el`).
        el: ValueId,
        /// Source-side term (the kernel's `er`).
        er: ValueId,
        /// Edge-scalar output.
        out: ValueId,
    },
    /// Host fallback: elementwise LeakyReLU.
    HostLeakyRelu {
        /// Negative slope.
        slope: f32,
        /// Edge operand.
        x: ValueId,
        /// Edge output.
        out: ValueId,
    },
    /// Host fallback: per-destination-row softmax.
    HostEdgeSoftmax {
        /// Edge-scalar logits.
        x: ValueId,
        /// Edge-scalar coefficients.
        out: ValueId,
    },
    /// Host fallback: source gather.
    HostCopyU {
        /// Vertex operand.
        x: ValueId,
        /// Edge output.
        out: ValueId,
    },
    /// Host fallback: destination gather.
    HostCopyV {
        /// Vertex operand.
        x: ValueId,
        /// Edge output.
        out: ValueId,
    },
    /// Host fallback: per-lane message weighting.
    HostUMulE {
        /// Vertex features.
        x: ValueId,
        /// Edge-scalar weights.
        e: ValueId,
        /// Edge output.
        out: ValueId,
    },
    /// Host fallback: aggregate at destinations.
    HostAggregate {
        /// `true` for max, `false` for sum.
        max: bool,
        /// Edge messages.
        e: ValueId,
        /// Vertex output.
        out: ValueId,
    },
}

impl Step {
    /// The pipeline kernel the step launches, if it is a launch.
    pub fn kernel(&self) -> Option<&'static str> {
        match self {
            Step::FusedGat { .. } => Some("CsrRows x RowSoftmaxGat"),
            Step::Sddmm { .. } => Some("CooNzes x EdgeDot"),
            Step::Spmm { .. } | Step::SpmmOnes { .. } => Some("CsrRows x RowAccum"),
            Step::UAddV { .. } => Some("CooNzes x ScalarGather"),
            _ => None,
        }
    }

    /// One-line description for `gnnone-prof fuse` reports.
    pub fn describe(&self) -> String {
        match self {
            Step::FusedGat { slope, alpha, .. } => format!(
                "fused-gat(slope={slope}{}) -> {}",
                if alpha.is_some() { ", +alpha" } else { "" },
                self.kernel().unwrap()
            ),
            Step::Sddmm { .. } => format!("u_dot_v -> {}", self.kernel().unwrap()),
            Step::Spmm { .. } => {
                format!("u_mul_e+aggregate_sum -> {}", self.kernel().unwrap())
            }
            Step::SpmmOnes { .. } => {
                format!(
                    "copy_u+aggregate_sum -> {} (unit vals)",
                    self.kernel().unwrap()
                )
            }
            Step::UAddV { .. } => format!("u_add_v -> {}", self.kernel().unwrap()),
            Step::HostLeakyRelu { slope, .. } => format!("leaky_relu(slope={slope}) -> host"),
            Step::HostEdgeSoftmax { .. } => "edge_softmax -> host".to_string(),
            Step::HostCopyU { .. } => "copy_u -> host".to_string(),
            Step::HostCopyV { .. } => "copy_v -> host".to_string(),
            Step::HostUMulE { .. } => "u_mul_e -> host".to_string(),
            Step::HostAggregate { max, .. } => {
                format!("aggregate_{} -> host", if *max { "max" } else { "sum" })
            }
        }
    }
}

/// A lowered plan: the steps to run, in order.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Lowered steps in execution order.
    pub steps: Vec<Step>,
}

impl Plan {
    /// Whether the plan contains the fused GAT launch.
    pub fn fused(&self) -> bool {
        self.steps
            .iter()
            .any(|s| matches!(s, Step::FusedGat { .. }))
    }

    /// Number of pipeline launches (host steps excluded).
    pub fn launches(&self) -> usize {
        self.steps.iter().filter(|s| s.kernel().is_some()).count()
    }

    /// Multi-line match/lower report for `gnnone-prof fuse`.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        for (i, s) in self.steps.iter().enumerate() {
            out.push_str(&format!("  step {i}: {}\n", s.describe()));
        }
        out.push_str(&format!(
            "  {} step(s), {} launch(es){}\n",
            self.steps.len(),
            self.launches(),
            if self.fused() { ", fused" } else { "" }
        ));
        out
    }
}

/// Verifies `g` and lowers it into a [`Plan`].
pub fn lower(g: &IrGraph, opts: LowerOptions) -> Result<Plan, IrError> {
    g.verify()?;
    let n = g.nodes().len();
    // consumed[i]: node folded into a recorded pattern — emit nothing.
    let mut consumed = vec![false; n];
    // recorded[i]: the step to emit when reaching node i.
    let mut recorded: Vec<Option<Step>> = vec![None; n];

    // A node can be folded into a producer-consumer pattern only if the
    // pattern's consumer is its sole reader and it is not an output.
    let foldable = |id: ValueId| g.use_count(id) == 1 && !g.is_output(id);

    // Pass 1 (gated): the fused GAT pattern, rooted at aggregate_sum.
    if opts.fuse {
        for i in 0..n {
            let root = &g.nodes()[i];
            if root.op != OpKind::AggregateSum {
                continue;
            }
            let m_id = root.inputs[0];
            let m = g.node(m_id);
            if m.op != OpKind::UMulE || !foldable(m_id) {
                continue;
            }
            let (z_id, a_id) = (m.inputs[0], m.inputs[1]);
            let a = g.node(a_id);
            if a.op != OpKind::EdgeSoftmax {
                continue;
            }
            // α may feed other readers only by also being an output.
            let alpha_out = g.is_output(a_id);
            if g.use_count(a_id) != if alpha_out { 2 } else { 1 } {
                continue;
            }
            let lg_id = a.inputs[0];
            let lg = g.node(lg_id);
            let OpKind::LeakyRelu { slope } = lg.op else {
                continue;
            };
            if !foldable(lg_id) {
                continue;
            }
            let raw_id = lg.inputs[0];
            let raw = g.node(raw_id);
            if raw.op != OpKind::UAddV || !foldable(raw_id) {
                continue;
            }
            if g.node(z_id).dim != Dim::F {
                continue;
            }
            // u_add_v(a, b): a is the source-side term (the kernel's er),
            // b the destination-side term (el).
            let (er, el) = (raw.inputs[0], raw.inputs[1]);
            for &mid in &[m_id, a_id, lg_id, raw_id] {
                consumed[mid.0] = true;
            }
            recorded[i] = Some(Step::FusedGat {
                slope,
                z: z_id,
                el,
                er,
                y: ValueId(i),
                alpha: if alpha_out { Some(a_id) } else { None },
            });
        }
    }

    // Pass 2 (unconditional): aggregate folds.
    for i in 0..n {
        if recorded[i].is_some() || consumed[i] {
            continue;
        }
        let root = &g.nodes()[i];
        if root.op != OpKind::AggregateSum {
            continue;
        }
        let m_id = root.inputs[0];
        if consumed[m_id.0] || !foldable(m_id) {
            continue;
        }
        let m = g.node(m_id);
        match m.op {
            OpKind::UMulE => {
                consumed[m_id.0] = true;
                recorded[i] = Some(Step::Spmm {
                    w: m.inputs[1],
                    x: m.inputs[0],
                    out: ValueId(i),
                });
            }
            OpKind::CopyU => {
                consumed[m_id.0] = true;
                recorded[i] = Some(Step::SpmmOnes {
                    x: m.inputs[0],
                    out: ValueId(i),
                });
            }
            _ => {}
        }
    }

    // Pass 3: emit in definition order; unmatched ops get their default
    // single-launch or host-fallback step.
    let mut steps = Vec::new();
    for i in 0..n {
        if consumed[i] {
            continue;
        }
        if let Some(s) = recorded[i].take() {
            steps.push(s);
            continue;
        }
        let node = &g.nodes()[i];
        let out = ValueId(i);
        let step = match node.op {
            OpKind::Input => continue,
            // u_dot_v(x, y): x is the source side (COO cols), y the
            // destination side (COO rows) — the EdgeDot reduction dots
            // X[row] with Y[col], so the operands swap.
            OpKind::UDotV => Step::Sddmm {
                x: node.inputs[1],
                y: node.inputs[0],
                out,
            },
            OpKind::UAddV => Step::UAddV {
                el: node.inputs[1],
                er: node.inputs[0],
                out,
            },
            OpKind::LeakyRelu { slope } => Step::HostLeakyRelu {
                slope,
                x: node.inputs[0],
                out,
            },
            OpKind::EdgeSoftmax => Step::HostEdgeSoftmax {
                x: node.inputs[0],
                out,
            },
            OpKind::CopyU => Step::HostCopyU {
                x: node.inputs[0],
                out,
            },
            OpKind::CopyV => Step::HostCopyV {
                x: node.inputs[0],
                out,
            },
            OpKind::UMulE => Step::HostUMulE {
                x: node.inputs[0],
                e: node.inputs[1],
                out,
            },
            OpKind::AggregateSum => Step::HostAggregate {
                max: false,
                e: node.inputs[0],
                out,
            },
            OpKind::AggregateMax => Step::HostAggregate {
                max: true,
                e: node.inputs[0],
                out,
            },
        };
        steps.push(step);
    }
    Ok(Plan { steps })
}

#[cfg(test)]
mod tests {
    use super::super::*;
    use super::*;

    #[test]
    fn gat_chain_lowers_to_one_fused_launch() {
        let g = gat_attention_graph(0.2);
        let plan = lower(&g, LowerOptions::default()).unwrap();
        assert_eq!(plan.steps.len(), 1);
        assert!(plan.fused());
        assert_eq!(plan.launches(), 1);
        let Step::FusedGat {
            slope,
            alpha,
            el,
            er,
            ..
        } = &plan.steps[0]
        else {
            panic!("expected fused step, got {:?}", plan.steps);
        };
        assert_eq!(*slope, 0.2);
        assert!(alpha.is_some());
        // att_src is the source-side term (er), att_dst the
        // destination-side term (el).
        assert_eq!(*er, g.find_input("att_src").unwrap());
        assert_eq!(*el, g.find_input("att_dst").unwrap());
    }

    #[test]
    fn gat_chain_without_fusion_falls_back_to_four_steps() {
        let g = gat_attention_graph(0.2);
        let plan = lower(&g, LowerOptions { fuse: false }).unwrap();
        assert!(!plan.fused());
        assert_eq!(plan.steps.len(), 4);
        assert!(matches!(plan.steps[0], Step::UAddV { .. }));
        assert!(matches!(plan.steps[1], Step::HostLeakyRelu { .. }));
        assert!(matches!(plan.steps[2], Step::HostEdgeSoftmax { .. }));
        assert!(matches!(plan.steps[3], Step::Spmm { .. }));
        assert_eq!(plan.launches(), 2);
    }

    #[test]
    fn aggregate_folds_always_fire() {
        let plan = lower(&spmm_graph(), LowerOptions { fuse: false }).unwrap();
        assert_eq!(plan.steps.len(), 1);
        assert!(matches!(plan.steps[0], Step::Spmm { .. }));

        let plan = lower(&copy_u_sum_graph(), LowerOptions::default()).unwrap();
        assert_eq!(plan.steps.len(), 1);
        assert!(matches!(plan.steps[0], Step::SpmmOnes { .. }));

        let plan = lower(&sddmm_graph(), LowerOptions::default()).unwrap();
        assert_eq!(plan.steps.len(), 1);
        assert!(matches!(plan.steps[0], Step::Sddmm { .. }));
    }

    #[test]
    fn dot_attention_uses_the_unfused_fallback() {
        let plan = lower(&dot_attention_graph(), LowerOptions::default()).unwrap();
        assert!(!plan.fused());
        assert_eq!(plan.steps.len(), 3);
        assert!(matches!(plan.steps[0], Step::Sddmm { .. }));
        assert!(matches!(plan.steps[1], Step::HostEdgeSoftmax { .. }));
        assert!(matches!(plan.steps[2], Step::Spmm { .. }));
        assert_eq!(plan.launches(), 2);
    }

    #[test]
    fn alpha_escaping_to_a_non_output_reader_blocks_fusion() {
        // α feeding a second interior reader cannot be folded away.
        let mut g = IrGraph::new("gat_alpha_reader");
        let att_src = g.input("att_src", Space::Vertex, Dim::One);
        let att_dst = g.input("att_dst", Space::Vertex, Dim::One);
        let z = g.input("z", Space::Vertex, Dim::F);
        let raw = g.u_add_v(att_src, att_dst);
        let logits = g.leaky_relu(raw, 0.2);
        let alpha = g.edge_softmax(logits);
        let msg = g.u_mul_e(z, alpha);
        let y = g.aggregate_sum(msg);
        let alpha2 = g.leaky_relu(alpha, 0.5);
        g.mark_output(y);
        g.mark_output(alpha2);
        let plan = lower(&g, LowerOptions::default()).unwrap();
        assert!(!plan.fused());
    }

    #[test]
    fn plan_report_names_the_pipelines() {
        let plan = lower(&gat_attention_graph(0.2), LowerOptions::default()).unwrap();
        let report = plan.describe();
        assert!(report.contains("RowSoftmaxGat"), "{report}");
        assert!(report.contains("fused"), "{report}");
    }
}
