//! IR-derived access summaries for the static verifier.
//!
//! The static verifier (`analysis::verify_kernel`) consumes symbolic
//! [`AccessSummary`] descriptions of every launch. For IR-lowered plans
//! those summaries are *derived from the lowered steps* rather than
//! hand-written per model variant: each launch [`Step`] maps to the
//! summary of the pipeline it lowers to, under the same config the
//! executor launches with. Host fallback steps touch no device memory
//! and contribute no summary.

use std::sync::Arc;

use super::lower::{Plan, Step};
use crate::analysis::{summaries, AccessSummary, ExecModel};
use crate::gnnone::config::{GnnOneConfig, Schedule};
use crate::gnnone::fused::LOGIT_CACHE;
use crate::gnnone::{GnnOneSddmm, GnnOneSpmm};
use crate::graph::GraphData;
use crate::traits::{SddmmKernel, SpmmKernel};

/// The summary of one lowered step under `model` at feature length `f`,
/// or `None` for host fallback steps (no device launch to verify).
pub fn step_summary(
    step: &Step,
    graph: &Arc<GraphData>,
    f: usize,
    model: ExecModel,
) -> Option<AccessSummary> {
    match step {
        Step::FusedGat { .. } => Some(match model {
            ExecModel::Sim => summaries::fused_gat("FusedGAT", graph, f, LOGIT_CACHE as u64),
            ExecModel::Native => summaries::native_fused_gat("FusedGAT", graph, f),
        }),
        Step::UAddV { .. } => {
            let cfg = GnnOneConfig {
                cache_size: 128,
                schedule: Schedule::RoundRobin,
                vectorize: false,
                data_reuse: true,
            };
            Some(match model {
                ExecModel::Sim => summaries::gnnone_uaddv("GnnOne-UAddV", graph, &cfg),
                ExecModel::Native => summaries::native_edge_out(
                    "GnnOne-UAddV",
                    "u-add-v",
                    graph,
                    &GnnOneConfig::default(),
                    1,
                    summaries::uaddv_reads(),
                ),
            })
        }
        Step::Sddmm { .. } => {
            GnnOneSddmm::new(Arc::clone(graph), GnnOneConfig::default()).access_summary(f, model)
        }
        Step::Spmm { .. } | Step::SpmmOnes { .. } => {
            GnnOneSpmm::new(Arc::clone(graph), GnnOneConfig::default()).access_summary(f, model)
        }
        _ => None,
    }
}

/// Summaries for every launch step of `plan`, in step order.
pub fn plan_summaries(
    plan: &Plan,
    graph: &Arc<GraphData>,
    f: usize,
    model: ExecModel,
) -> Vec<AccessSummary> {
    plan.steps
        .iter()
        .filter_map(|s| step_summary(s, graph, f, model))
        .collect()
}
