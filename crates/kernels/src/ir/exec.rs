//! Plan executor: runs a lowered [`Plan`] on either backend.
//!
//! Launch steps dispatch through [`Backend`] onto the registry's pipeline
//! kernels (the IR-derived [`IrFusedGat`]/[`IrUAddV`] plus `GnnOneSddmm`
//! and `GnnOneSpmm` under default config); host fallback steps run on
//! the CPU. Values move between the two worlds as host vectors — the
//! executor is a correctness and timing harness for `gnnone-prof fuse`
//! and the fusion tests, not the training hot path (training tapes embed
//! plans directly, see `gnnone-gnn`).

use std::sync::Arc;

use gnnone_sim::{engine::LaunchError, DeviceBuffer};

use super::lower::{Plan, Step};
use super::{IrGraph, OpKind, Space, ValueId};
use crate::backend::{Backend, ExecReport};
use crate::gnnone::config::GnnOneConfig;
use crate::gnnone::{GnnOneSddmm, GnnOneSpmm};
use crate::graph::GraphData;
use crate::ir::kernels::{IrFusedGat, IrUAddV};

/// The values and launch reports produced by [`execute`].
pub struct ExecResult {
    /// Computed value per IR node (inputs echoed back; `None` only for
    /// values folded into a fused launch).
    pub values: Vec<Option<Vec<f32>>>,
    /// One report per pipeline launch, in step order.
    pub reports: Vec<ExecReport>,
    /// Total wall-clock milliseconds spent in host fallback steps.
    pub host_ms: f64,
}

impl ExecResult {
    /// Total plan cost: launch-timed kernel milliseconds plus host
    /// fallback milliseconds — the same accounting the native bench
    /// cells use (staging copies excluded).
    pub fn plan_ms(&self) -> f64 {
        self.reports.iter().map(|r| r.time_ms).sum::<f64>() + self.host_ms
    }
}

impl ExecResult {
    /// The computed value of `id`; panics if it was folded away.
    pub fn value(&self, id: ValueId) -> &[f32] {
        self.values[id.0]
            .as_deref()
            .unwrap_or_else(|| panic!("value v{} was folded into a fused launch", id.0))
    }
}

/// Host softmax over each CSR row's incident edges — shared by the
/// executor and the training tape (both must match the fused kernel's
/// reference semantics bit-for-bit given the same logits).
pub fn host_edge_softmax(graph: &GraphData, logits: &[f32], alpha: &mut [f32]) {
    let csr = &graph.csr;
    for r in 0..csr.num_rows() {
        let range = csr.row_range(r);
        if range.is_empty() {
            continue;
        }
        let max = range
            .clone()
            .map(|e| logits[e])
            .fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for e in range.clone() {
            let v = (logits[e] - max).exp();
            alpha[e] = v;
            sum += v;
        }
        for e in range {
            alpha[e] /= sum;
        }
    }
}

/// Executes `plan` (lowered from `ir`) over `graph` on `backend`.
///
/// `inputs` binds every IR input by id; widths follow the node's
/// [`Dim`](super::Dim) at feature length `f`. Binding errors (missing input, wrong
/// length) panic — the caller owns the graph and its operands. Launch
/// failures surface as [`LaunchError`].
pub fn execute(
    backend: &Backend,
    graph: &Arc<GraphData>,
    ir: &IrGraph,
    plan: &Plan,
    f: usize,
    inputs: &[(ValueId, &[f32])],
) -> Result<ExecResult, LaunchError> {
    let n = graph.num_vertices();
    let nnz = graph.nnz();
    let rows = |space: Space| match space {
        Space::Vertex => n,
        Space::Edge => nnz,
    };
    let len_of = |id: ValueId| {
        let node = ir.node(id);
        rows(node.space) * node.dim.len(f)
    };
    let width = |id: ValueId| ir.node(id).dim.len(f);

    let mut values: Vec<Option<Vec<f32>>> = vec![None; ir.nodes().len()];
    for &(id, data) in inputs {
        assert_eq!(
            ir.node(id).op,
            OpKind::Input,
            "v{} is not an input node",
            id.0
        );
        assert_eq!(
            data.len(),
            len_of(id),
            "input v{} must have {} elements, got {}",
            id.0,
            len_of(id),
            data.len()
        );
        values[id.0] = Some(data.to_vec());
    }
    for (i, node) in ir.nodes().iter().enumerate() {
        if node.op == OpKind::Input {
            assert!(
                values[i].is_some(),
                "input `{}` (v{i}) is unbound",
                node.label
            );
        }
    }

    let mut reports = Vec::new();
    let default_cfg = GnnOneConfig::default();
    // Bound host values → device operands for launch steps.
    let dev = |values: &[Option<Vec<f32>>], id: ValueId| {
        DeviceBuffer::from_slice(values[id.0].as_deref().unwrap())
    };

    let mut host_ms = 0.0f64;
    for step in &plan.steps {
        let host_t = step.kernel().is_none().then(std::time::Instant::now);
        match *step {
            Step::FusedGat {
                slope,
                z,
                el,
                er,
                y,
                alpha,
            } => {
                let kernel = IrFusedGat::new(Arc::clone(graph), slope);
                let dz = dev(&values, z);
                let del = dev(&values, el);
                let der = dev(&values, er);
                let dy = DeviceBuffer::<f32>::zeros(n * f);
                let dalpha = alpha.map(|_| DeviceBuffer::<f32>::zeros(nnz));
                reports.push(backend.run_fused(
                    &kernel,
                    &dz,
                    &del,
                    &der,
                    f,
                    &dy,
                    dalpha.as_ref(),
                )?);
                values[y.0] = Some(dy.to_vec());
                if let (Some(a), Some(da)) = (alpha, dalpha) {
                    values[a.0] = Some(da.to_vec());
                }
            }
            Step::Sddmm { x, y, out } => {
                let kernel = GnnOneSddmm::new(Arc::clone(graph), default_cfg);
                let k = width(x);
                let dx = dev(&values, x);
                let dy = dev(&values, y);
                let dw = DeviceBuffer::<f32>::zeros(nnz);
                reports.push(backend.run_sddmm(&kernel, &dx, &dy, k, &dw)?);
                values[out.0] = Some(dw.to_vec());
            }
            Step::Spmm { w, x, out } => {
                let kernel = GnnOneSpmm::new(Arc::clone(graph), default_cfg);
                let k = width(x);
                let dw = dev(&values, w);
                let dx = dev(&values, x);
                let dy = DeviceBuffer::<f32>::zeros(n * k);
                reports.push(backend.run_spmm(&kernel, &dw, &dx, k, &dy)?);
                values[out.0] = Some(dy.to_vec());
            }
            Step::SpmmOnes { x, out } => {
                let kernel = GnnOneSpmm::new(Arc::clone(graph), default_cfg);
                let k = width(x);
                let dw = DeviceBuffer::from_slice(&vec![1.0f32; nnz]);
                let dx = dev(&values, x);
                let dy = DeviceBuffer::<f32>::zeros(n * k);
                reports.push(backend.run_spmm(&kernel, &dw, &dx, k, &dy)?);
                values[out.0] = Some(dy.to_vec());
            }
            Step::UAddV { el, er, out } => {
                let kernel = IrUAddV::new(Arc::clone(graph));
                let del = dev(&values, el);
                let der = dev(&values, er);
                let dw = DeviceBuffer::<f32>::zeros(nnz);
                reports.push(backend.run_edge_apply(&kernel, &del, &der, &dw)?);
                values[out.0] = Some(dw.to_vec());
            }
            Step::HostLeakyRelu { slope, x, out } => {
                let xs = values[x.0].as_deref().unwrap();
                let v: Vec<f32> = xs
                    .iter()
                    .map(|&v| if v > 0.0 { v } else { v * slope })
                    .collect();
                values[out.0] = Some(v);
            }
            Step::HostEdgeSoftmax { x, out } => {
                let logits = values[x.0].clone().unwrap();
                let mut alpha = vec![0.0f32; nnz];
                host_edge_softmax(graph, &logits, &mut alpha);
                values[out.0] = Some(alpha);
            }
            Step::HostCopyU { x, out } | Step::HostCopyV { x, out } => {
                let dst_rows = matches!(step, Step::HostCopyV { .. });
                let k = width(x);
                let xs = values[x.0].as_deref().unwrap();
                let idx = if dst_rows {
                    graph.coo.rows()
                } else {
                    graph.coo.cols()
                };
                let mut v = vec![0.0f32; nnz * k];
                for e in 0..nnz {
                    let s = idx[e] as usize * k;
                    v[e * k..(e + 1) * k].copy_from_slice(&xs[s..s + k]);
                }
                values[out.0] = Some(v);
            }
            Step::HostUMulE { x, e, out } => {
                let k = width(x);
                let xs = values[x.0].as_deref().unwrap();
                let ws = values[e.0].as_deref().unwrap();
                let cols = graph.coo.cols();
                let mut v = vec![0.0f32; nnz * k];
                for ei in 0..nnz {
                    let s = cols[ei] as usize * k;
                    for l in 0..k {
                        v[ei * k + l] = xs[s + l] * ws[ei];
                    }
                }
                values[out.0] = Some(v);
            }
            Step::HostAggregate { max, e, out } => {
                let k = width(e);
                let ms = values[e.0].as_deref().unwrap();
                let rows_idx = graph.coo.rows();
                let init = if max { f32::NEG_INFINITY } else { 0.0 };
                let mut v = vec![init; n * k];
                for ei in 0..nnz {
                    let d = rows_idx[ei] as usize * k;
                    for l in 0..k {
                        let cell = &mut v[d + l];
                        if max {
                            *cell = cell.max(ms[ei * k + l]);
                        } else {
                            *cell += ms[ei * k + l];
                        }
                    }
                }
                if max {
                    // Vertices with no incident edges aggregate to zero.
                    for cell in v.iter_mut() {
                        if *cell == f32::NEG_INFINITY {
                            *cell = 0.0;
                        }
                    }
                }
                values[out.0] = Some(v);
            }
        }
        if let Some(t) = host_t {
            host_ms += t.elapsed().as_secs_f64() * 1e3;
        }
    }
    Ok(ExecResult {
        values,
        reports,
        host_ms,
    })
}
