//! # gnnone-kernels — GNNOne sparse kernels and every paper baseline
//!
//! The paper's primary contribution: SDDMM, SpMM and SpMV built on one
//! **unified two-stage data-load design** over the standard COO format
//! (§4), plus faithful re-implementations of every system it compares
//! against (§5), all running on the `gnnone-sim` SIMT execution model.
//!
//! * [`gnnone`] — the proposed kernels: Stage-1 balanced NZE caching,
//!   Stage-2 symbiotic thread scheduler (thread groups, `float4` loads,
//!   Consecutive/Round-robin policies), running reduction.
//! * [`backend`] — pluggable execution backends: the cycle-accurate
//!   simulator and the native multithreaded CPU engine (wall-clock
//!   timing, rayon CTAs, `f32x4`-chunked loops); see `docs/BACKENDS.md`.
//! * [`baselines`] — DGL, dgSparse, cuSPARSE, Sputnik, FeatGraph (SDDMM);
//!   GE-SpMM, cuSPARSE, GNNAdvisor, Huang et al., Yang et al., FeatGraph
//!   (SpMM); Merge-SpMV (SpMV) — each with its published storage format,
//!   parallelization strategy and known pathologies.
//! * [`traits`] — the `SpmmKernel` / `SddmmKernel` / `SpmvKernel` object
//!   interfaces the benchmark harness drives.
//! * [`geometry`] — thread-group geometry shared by all kernels.
//! * [`graph`] — device-resident graph tensors ([`GraphData`]).
//! * [`ir`] — the fusion IR: edge/vertex dataflow graphs verified for
//!   scope/shape and lowered into single `TwoStagePipeline` launches
//!   (the registry's fused and edge-apply entries are IR-lowered
//!   instances); see `docs/FUSION_IR.md`.
//! * [`registry`] — constructs every implementation by name.
//! * [`shard`] — fault-tolerant sharded execution: nnz-balanced
//!   row-aligned partitioning, the supervised [`shard::ShardedExecutor`]
//!   driving any registry kernel shard-by-shard over a multi-GPU or
//!   multi-pool topology with checksummed halo exchange, deterministic
//!   retry, checkpointed recovery, and a statically verified
//!   bitwise-exact merge; see `docs/ROBUSTNESS.md` §7.
//! * [`sanitize`] — registry-wide sanitizer sweep (the simulator's
//!   `compute-sanitizer` workflow over every shipped kernel).
//! * [`analysis`] — the static kernel verifier: symbolic access
//!   summaries per kernel plus the abstract-interpretation pass that
//!   proves race freedom, bounds safety, barrier consistency and
//!   watchdog feasibility across the whole config lattice; see
//!   `docs/STATIC_ANALYSIS.md`.
//!
//! ## Example: run GNNOne SpMM against the CPU oracle
//!
//! ```
//! use std::sync::Arc;
//! use gnnone_kernels::{graph::GraphData, gnnone::GnnOneSpmm, traits::SpmmKernel};
//! use gnnone_sim::{DeviceBuffer, Gpu, GpuSpec};
//! use gnnone_sparse::{formats::{Coo, EdgeList}, reference};
//!
//! let coo = Coo::from_edge_list(&EdgeList::new(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]));
//! let g = Arc::new(GraphData::new(coo));
//! let f = 8;
//! let x: Vec<f32> = (0..g.coo.num_cols() * f).map(|i| i as f32 * 0.1).collect();
//! let w = vec![1.0f32; g.coo.nnz()];
//!
//! let gpu = Gpu::new(GpuSpec::a100_40gb());
//! let dx = DeviceBuffer::from_slice(&x);
//! let dw = DeviceBuffer::from_slice(&w);
//! let dy = DeviceBuffer::<f32>::zeros(g.coo.num_rows() * f);
//! let kernel = GnnOneSpmm::new(Arc::clone(&g), Default::default());
//! let report = kernel.run(&gpu, &dw, &dx, f, &dy).unwrap();
//!
//! let expected = reference::spmm_csr(&g.csr, &w, &x, f);
//! reference::assert_close(&dy.to_vec(), &expected, 1e-4);
//! assert!(report.cycles > 0);
//! ```

#![allow(clippy::needless_range_loop)] // SIMT lane loops index parallel per-lane arrays
#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod backend;
pub mod baselines;
pub mod geometry;
pub mod gnnone;
pub mod graph;
pub mod ir;
pub mod registry;
pub mod sanitize;
pub mod shard;
pub mod traits;

pub use backend::{Backend, BackendKind, ExecReport, NativeEngine, NativeReport};
pub use graph::GraphData;
pub use traits::{SddmmKernel, SpmmKernel, SpmvKernel};
