//! GNNOne SDDMM (paper §4, Fig. 2): `w[e] = x[row(e)] · y[col(e)]`.
//!
//! Stage 1 caches `CACHE_SIZE` NZEs per warp in shared memory with fully
//! balanced, coalesced edge-parallel loads (Listing 1). Stage 2 assigns the
//! cached NZEs to thread groups (Listing 2); each lane loads `vec_width`
//! consecutive vertex features with one vector instruction, minimizing the
//! memory-barrier drains caused by the reduction's shuffle rounds. Under
//! the Consecutive policy, consecutive NZEs in a group usually share a row
//! (COO is CSR-ordered), so the row's features are **reused** from
//! registers until a row split — the data-reuse the paper credits with a
//! 2.78× ablation speedup (Fig. 8).
//!
//! The kernel is the [`CooNzes`] × [`EdgeDot`] instantiation of the shared
//! [`TwoStagePipeline`]; both stages live in
//! [`pipeline`](crate::gnnone::pipeline) /
//! [`reduce`](crate::gnnone::reduce), and this file only binds the
//! operands.

use std::sync::Arc;

use gnnone_sim::{engine::LaunchError, DeviceBuffer, Gpu, KernelReport};

use crate::analysis::{summaries, AccessSummary, ExecModel};
use crate::gnnone::config::GnnOneConfig;
use crate::gnnone::pipeline::{stage2_geometry, CooNzes, TwoStagePipeline};
use crate::gnnone::reduce::EdgeDot;
use crate::graph::GraphData;
use crate::traits::SddmmKernel;

/// The GNNOne SDDMM kernel over COO.
pub struct GnnOneSddmm {
    graph: Arc<GraphData>,
    config: GnnOneConfig,
    name: &'static str,
}

impl GnnOneSddmm {
    /// Creates the kernel for `graph` with `config`.
    pub fn new(graph: Arc<GraphData>, config: GnnOneConfig) -> Self {
        config.validate();
        Self {
            graph,
            config,
            name: "GnnOne",
        }
    }

    /// Same kernel published under a different figure label (ablations).
    pub fn named(graph: Arc<GraphData>, config: GnnOneConfig, name: &'static str) -> Self {
        config.validate();
        Self {
            graph,
            config,
            name,
        }
    }
}

impl SddmmKernel for GnnOneSddmm {
    fn graph(&self) -> &GraphData {
        &self.graph
    }

    fn name(&self) -> &'static str {
        self.name
    }

    fn format(&self) -> &'static str {
        "COO"
    }

    fn run(
        &self,
        gpu: &Gpu,
        x: &DeviceBuffer<f32>,
        y: &DeviceBuffer<f32>,
        f: usize,
        w: &DeviceBuffer<f32>,
    ) -> Result<KernelReport, LaunchError> {
        let pipeline = TwoStagePipeline::new(
            CooNzes::new(
                &self.graph.d_coo_rows,
                &self.graph.d_coo_cols,
                self.graph.nnz(),
            ),
            EdgeDot { x, y, w },
            f,
            stage2_geometry(&self.config, f),
            self.config,
            self.name,
        );
        gpu.try_launch(&pipeline)
    }

    /// Config-aware native path: the `cache_size`, `schedule`,
    /// `vectorize` and `data_reuse` knobs steer the CPU schedule exactly
    /// as they steer the simulated one.
    fn run_native(
        &self,
        eng: &crate::backend::NativeEngine,
        x: &DeviceBuffer<f32>,
        y: &DeviceBuffer<f32>,
        f: usize,
        w: &DeviceBuffer<f32>,
    ) -> Result<crate::backend::NativeReport, LaunchError> {
        Ok(crate::backend::native::sddmm_edges(
            eng,
            &self.graph,
            &self.config,
            x,
            y,
            f,
            w,
            self.name,
        ))
    }

    fn access_summary(&self, f: usize, model: ExecModel) -> Option<AccessSummary> {
        Some(match model {
            ExecModel::Sim => summaries::gnnone_coo_sddmm(self.name, &self.graph, &self.config, f),
            ExecModel::Native => summaries::native_edge_out(
                self.name,
                "sddmm",
                &self.graph,
                &self.config,
                f,
                summaries::sddmm_edge_reads(),
            ),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gnnone::config::Schedule;
    use gnnone_sim::GpuSpec;
    use gnnone_sparse::formats::{Coo, EdgeList};
    use gnnone_sparse::gen;
    use gnnone_sparse::reference;

    fn gpu() -> Gpu {
        Gpu::new(GpuSpec::a100_40gb())
    }

    fn random_graph(seed: u64) -> Arc<GraphData> {
        let el = gen::rmat(7, 600, gen::GRAPH500_PROBS, seed).symmetrize();
        Arc::new(GraphData::new(Coo::from_edge_list(&el)))
    }

    fn check_correct(cfg: GnnOneConfig, f: usize) {
        let g = random_graph(3);
        let x: Vec<f32> = (0..g.coo.num_rows() * f)
            .map(|i| ((i * 37 % 23) as f32 - 11.0) * 0.1)
            .collect();
        let yv: Vec<f32> = (0..g.coo.num_cols() * f)
            .map(|i| ((i * 53 % 19) as f32 - 9.0) * 0.2)
            .collect();
        let dx = DeviceBuffer::from_slice(&x);
        let dy = DeviceBuffer::from_slice(&yv);
        let dw = DeviceBuffer::<f32>::zeros(g.nnz());
        let kernel = GnnOneSddmm::new(Arc::clone(&g), cfg);
        kernel.run(&gpu(), &dx, &dy, f, &dw).unwrap();
        let expected = reference::sddmm_coo(&g.coo, &x, &yv, f);
        reference::assert_close(&dw.to_vec(), &expected, 1e-4);
    }

    #[test]
    fn correct_default_config_paper_dims() {
        for f in [6, 16, 32, 64] {
            check_correct(GnnOneConfig::default(), f);
        }
    }

    #[test]
    fn correct_without_vectorize() {
        for f in [6, 16, 32, 64] {
            check_correct(GnnOneConfig::ablation_data_reuse(), f);
        }
    }

    #[test]
    fn correct_ablation_baseline() {
        check_correct(GnnOneConfig::ablation_baseline(), 32);
    }

    #[test]
    fn correct_round_robin() {
        check_correct(
            GnnOneConfig {
                schedule: Schedule::RoundRobin,
                ..Default::default()
            },
            32,
        );
    }

    #[test]
    fn correct_cache_32() {
        check_correct(
            GnnOneConfig {
                cache_size: 32,
                ..Default::default()
            },
            16,
        );
    }

    #[test]
    fn correct_odd_dims() {
        for f in [1, 2, 3, 5, 7, 12, 48, 100] {
            check_correct(GnnOneConfig::default(), f);
        }
    }

    #[test]
    fn full_config_beats_ablation_baseline() {
        // Fig. 8's shape: +data-reuse and +float4 each add speedup.
        let g = random_graph(11);
        let f = 32;
        let x = DeviceBuffer::from_slice(&vec![1.0f32; g.coo.num_rows() * f]);
        let yv = DeviceBuffer::from_slice(&vec![1.0f32; g.coo.num_cols() * f]);
        let dw = DeviceBuffer::<f32>::zeros(g.nnz());
        let gp = gpu();
        let run = |cfg: GnnOneConfig| {
            GnnOneSddmm::new(Arc::clone(&g), cfg)
                .run(&gp, &x, &yv, f, &dw)
                .unwrap()
                .cycles
        };
        let base = run(GnnOneConfig::ablation_baseline());
        let reuse = run(GnnOneConfig::ablation_data_reuse());
        let full = run(GnnOneConfig::default());
        assert!(reuse < base, "+data-reuse {reuse} !< baseline {base}");
        assert!(full < reuse, "+float4 {full} !< +data-reuse {reuse}");
    }

    #[test]
    fn consecutive_reuses_row_features() {
        // Uniform degree-8 rows with f = 32 (4 thread groups): Consecutive
        // gives each group whole rows (reload every 8 NZEs), while
        // Round-robin hands each group a stride-4 sample whose row changes
        // every 2 NZEs — ~4× the x reloads (§4.2.2's data-reuse analysis).
        let n = 256u32;
        let el = EdgeList::new(
            n as usize,
            (0..n)
                .flat_map(|r| (0..8u32).map(move |k| (r, (r * 8 + k * 3) % n)))
                .collect(),
        );
        let g = Arc::new(GraphData::new(Coo::from_edge_list(&el)));
        let f = 32;
        let x = DeviceBuffer::from_slice(&vec![1.0f32; n as usize * f]);
        let yv = DeviceBuffer::from_slice(&vec![1.0f32; n as usize * f]);
        let dw = DeviceBuffer::<f32>::zeros(g.nnz());
        let gp = gpu();
        let cons = GnnOneSddmm::new(Arc::clone(&g), GnnOneConfig::default())
            .run(&gp, &x, &yv, f, &dw)
            .unwrap();
        let rr = GnnOneSddmm::new(
            Arc::clone(&g),
            GnnOneConfig {
                schedule: Schedule::RoundRobin,
                ..Default::default()
            },
        )
        .run(&gp, &x, &yv, f, &dw)
        .unwrap();
        // Round-robin's duplicate row loads coalesce into the same sectors
        // (simultaneous groups often share a row), so DRAM traffic stays
        // equal — the reuse shows up as fewer load *instructions* and fewer
        // exposed-latency chains.
        assert!(
            cons.stats.loads < rr.stats.loads,
            "consecutive {} !< round-robin {} load instructions",
            cons.stats.loads,
            rr.stats.loads
        );
        // (Cycle-level comparison at saturated scale is Fig. 10's job —
        // this unit test validates the reuse mechanism itself.)
    }

    #[test]
    fn empty_graph_is_ok() {
        let g = Arc::new(GraphData::new(Coo::from_edge_list(&EdgeList::new(
            4,
            vec![],
        ))));
        let x = DeviceBuffer::from_slice(&[0.0f32; 4 * 8]);
        let dw = DeviceBuffer::<f32>::zeros(1);
        let r = GnnOneSddmm::new(g, GnnOneConfig::default())
            .run(&gpu(), &x, &x, 8, &dw)
            .unwrap();
        assert_eq!(r.stats.loads, 0);
    }
}
