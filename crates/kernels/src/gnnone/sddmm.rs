//! GNNOne SDDMM (paper §4, Fig. 2): `w[e] = x[row(e)] · y[col(e)]`.
//!
//! Stage 1 caches `CACHE_SIZE` NZEs per warp in shared memory with fully
//! balanced, coalesced edge-parallel loads (Listing 1). Stage 2 assigns the
//! cached NZEs to thread groups (Listing 2); each lane loads `vec_width`
//! consecutive vertex features with one vector instruction, minimizing the
//! memory-barrier drains caused by the reduction's shuffle rounds. Under
//! the Consecutive policy, consecutive NZEs in a group usually share a row
//! (COO is CSR-ordered), so the row's features are **reused** from
//! registers until a row split — the data-reuse the paper credits with a
//! 2.78× ablation speedup (Fig. 8).

use std::sync::Arc;

use gnnone_sim::{
    engine::LaunchError, DeviceBuffer, Gpu, KernelReport, KernelResources, LaneArr, WarpCtx,
    WarpKernel, WARP_SIZE,
};

use crate::geometry::GroupGeometry;
use crate::gnnone::config::{GnnOneConfig, Schedule};
use crate::graph::GraphData;
use crate::traits::SddmmKernel;

/// The GNNOne SDDMM kernel over COO.
pub struct GnnOneSddmm {
    graph: Arc<GraphData>,
    config: GnnOneConfig,
    name: &'static str,
}

impl GnnOneSddmm {
    /// Creates the kernel for `graph` with `config`.
    pub fn new(graph: Arc<GraphData>, config: GnnOneConfig) -> Self {
        config.validate();
        Self {
            graph,
            config,
            name: "GnnOne",
        }
    }

    /// Same kernel published under a different figure label (ablations).
    pub fn named(graph: Arc<GraphData>, config: GnnOneConfig, name: &'static str) -> Self {
        config.validate();
        Self {
            graph,
            config,
            name,
        }
    }
}

impl SddmmKernel for GnnOneSddmm {
    fn name(&self) -> &'static str {
        self.name
    }

    fn format(&self) -> &'static str {
        "COO"
    }

    fn run(
        &self,
        gpu: &Gpu,
        x: &DeviceBuffer<f32>,
        y: &DeviceBuffer<f32>,
        f: usize,
        w: &DeviceBuffer<f32>,
    ) -> Result<KernelReport, LaunchError> {
        let geo = if self.config.vectorize {
            GroupGeometry::gnnone(f)
        } else {
            GroupGeometry::feature_parallel(f)
        };
        let launch = SddmmLaunch {
            rows: &self.graph.d_coo_rows,
            cols: &self.graph.d_coo_cols,
            x,
            y,
            w,
            nnz: self.graph.nnz(),
            f,
            geo,
            cfg: self.config,
            name: self.name,
        };
        gpu.try_launch(&launch)
    }
}

struct SddmmLaunch<'a> {
    rows: &'a DeviceBuffer<u32>,
    cols: &'a DeviceBuffer<u32>,
    x: &'a DeviceBuffer<f32>,
    y: &'a DeviceBuffer<f32>,
    w: &'a DeviceBuffer<f32>,
    nnz: usize,
    f: usize,
    geo: GroupGeometry,
    cfg: GnnOneConfig,
    name: &'static str,
}

impl WarpKernel for SddmmLaunch<'_> {
    fn resources(&self) -> KernelResources {
        let threads_per_cta = 256;
        let warps_per_cta = threads_per_cta / 32;
        KernelResources {
            threads_per_cta,
            // x/y vector registers + NZE ids + loop state.
            regs_per_thread: if self.cfg.vectorize { 40 } else { 34 },
            shared_bytes_per_cta: if self.cfg.data_reuse {
                warps_per_cta * self.cfg.cache_size * 8
            } else {
                0
            },
        }
    }

    fn grid_warps(&self) -> usize {
        self.nnz.div_ceil(self.cfg.cache_size)
    }

    fn name(&self) -> &str {
        self.name
    }

    fn run_warp(&self, warp_id: usize, ctx: &mut WarpCtx) {
        let cache = self.cfg.cache_size;
        let base = warp_id * cache;
        let count = cache.min(self.nnz - base);
        let geo = self.geo;
        let f = self.f;
        let ng = geo.groups_per_warp;
        let vw = geo.vec_width;

        // ---- Stage 1: balanced coalesced NZE load + shared caching ----
        if self.cfg.data_reuse {
            // All loads of the stage are independent: they overlap freely
            // before the single barrier (the CACHE_SIZE effect of Fig. 9).
            let chunks = count.div_ceil(WARP_SIZE);
            for ch in 0..chunks {
                let off = ch * WARP_SIZE;
                let r = ctx.load_u32(self.rows, |l| (off + l < count).then(|| base + off + l));
                let c = ctx.load_u32(self.cols, |l| (off + l < count).then(|| base + off + l));
                ctx.shared_store(|l| (off + l < count).then(|| (off + l, r.get(l))));
                ctx.shared_store(|l| (off + l < count).then(|| (cache + off + l, c.get(l))));
            }
            ctx.barrier();
        }

        // ---- Stage 2: symbiotic thread scheduler ----
        let per_group = cache / ng;
        let e_local = |g: usize, j: usize| match self.cfg.schedule {
            Schedule::Consecutive => g * per_group + j,
            Schedule::RoundRobin => j * ng + g,
        };

        // Per-group row-feature register cache (Consecutive reuse).
        let mut prev_row = [u32::MAX; WARP_SIZE];
        let mut have_x = [false; WARP_SIZE];
        let mut x_regs = [LaneArr::<f32>::default(); 4];
        let reuse_possible = self.cfg.data_reuse && geo.passes == 1;

        for j in 0..per_group {
            let group_active = |g: usize| e_local(g, j) < count;
            if (0..ng).all(|g| !group_active(g)) {
                break;
            }

            // Fetch the NZE ids for every group.
            let (rows_l, cols_l) = if self.cfg.data_reuse {
                let r: LaneArr<u32> = ctx.shared_load(|l| {
                    let (g, _) = geo.split_lane(l);
                    group_active(g).then(|| e_local(g, j))
                });
                let c: LaneArr<u32> = ctx.shared_load(|l| {
                    let (g, _) = geo.split_lane(l);
                    group_active(g).then(|| cache + e_local(g, j))
                });
                (r, c)
            } else {
                // No caching: broadcast global loads per group, and the
                // feature loads below *depend* on their result, so the
                // pipeline must drain (the hidden cost DGL pays).
                let r = ctx.load_u32(self.rows, |l| {
                    let (g, _) = geo.split_lane(l);
                    group_active(g).then(|| base + e_local(g, j))
                });
                let c = ctx.load_u32(self.cols, |l| {
                    let (g, _) = geo.split_lane(l);
                    group_active(g).then(|| base + e_local(g, j))
                });
                ctx.use_loads();
                (r, c)
            };

            let mut partial = LaneArr::<f32>::default();
            for pass in 0..geo.passes {
                let fbase = pass * geo.group_size * vw;
                // Which lanes must (re)load x-row features this iteration?
                let mut reload = [false; WARP_SIZE];
                for l in 0..WARP_SIZE {
                    let (g, t) = geo.split_lane(l);
                    let k = fbase + t * vw;
                    if !group_active(g) || k >= f {
                        continue;
                    }
                    reload[l] = !(reuse_possible && have_x[g] && prev_row[g] == rows_l.get(l));
                }
                if reload.iter().any(|&b| b) {
                    let loaded = ctx.load_f32xw(vw, self.x, |l| {
                        let (_, t) = geo.split_lane(l);
                        reload[l].then(|| rows_l.get(l) as usize * f + fbase + t * vw)
                    });
                    for l in 0..WARP_SIZE {
                        if reload[l] {
                            for k in 0..vw {
                                x_regs[k].set(l, loaded[k].get(l));
                            }
                        }
                    }
                }
                // Column features change every NZE: always loaded.
                let yv = ctx.load_f32xw(vw, self.y, |l| {
                    let (g, t) = geo.split_lane(l);
                    let k = fbase + t * vw;
                    (group_active(g) && k < f).then(|| cols_l.get(l) as usize * f + k)
                });
                ctx.compute(vw as u64);
                for l in 0..WARP_SIZE {
                    let (g, t) = geo.split_lane(l);
                    let k = fbase + t * vw;
                    if group_active(g) && k < f {
                        let mut acc = partial.get(l);
                        for kk in 0..vw {
                            acc += x_regs[kk].get(l) * yv[kk].get(l);
                        }
                        partial.set(l, acc);
                    }
                }
            }

            // Tree reduction within each thread group (log2(group) rounds —
            // 3 instead of 5 for f = 32, §4.2.1).
            let reduced = ctx.shfl_reduce_sum_f32(&partial, geo.group_size);
            ctx.store_f32(self.w, |l| {
                let (g, t) = geo.split_lane(l);
                (t == 0 && group_active(g)).then(|| (base + e_local(g, j), reduced.get(l)))
            });

            // Update the register cache bookkeeping.
            for g in 0..ng {
                if group_active(g) {
                    prev_row[g] = rows_l.get(g * geo.group_size);
                    have_x[g] = reuse_possible;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnone_sim::GpuSpec;
    use gnnone_sparse::formats::{Coo, EdgeList};
    use gnnone_sparse::gen;
    use gnnone_sparse::reference;

    fn gpu() -> Gpu {
        Gpu::new(GpuSpec::a100_40gb())
    }

    fn random_graph(seed: u64) -> Arc<GraphData> {
        let el = gen::rmat(7, 600, gen::GRAPH500_PROBS, seed).symmetrize();
        Arc::new(GraphData::new(Coo::from_edge_list(&el)))
    }

    fn check_correct(cfg: GnnOneConfig, f: usize) {
        let g = random_graph(3);
        let x: Vec<f32> = (0..g.coo.num_rows() * f)
            .map(|i| ((i * 37 % 23) as f32 - 11.0) * 0.1)
            .collect();
        let yv: Vec<f32> = (0..g.coo.num_cols() * f)
            .map(|i| ((i * 53 % 19) as f32 - 9.0) * 0.2)
            .collect();
        let dx = DeviceBuffer::from_slice(&x);
        let dy = DeviceBuffer::from_slice(&yv);
        let dw = DeviceBuffer::<f32>::zeros(g.nnz());
        let kernel = GnnOneSddmm::new(Arc::clone(&g), cfg);
        kernel.run(&gpu(), &dx, &dy, f, &dw).unwrap();
        let expected = reference::sddmm_coo(&g.coo, &x, &yv, f);
        reference::assert_close(&dw.to_vec(), &expected, 1e-4);
    }

    #[test]
    fn correct_default_config_paper_dims() {
        for f in [6, 16, 32, 64] {
            check_correct(GnnOneConfig::default(), f);
        }
    }

    #[test]
    fn correct_without_vectorize() {
        for f in [6, 16, 32, 64] {
            check_correct(GnnOneConfig::ablation_data_reuse(), f);
        }
    }

    #[test]
    fn correct_ablation_baseline() {
        check_correct(GnnOneConfig::ablation_baseline(), 32);
    }

    #[test]
    fn correct_round_robin() {
        check_correct(
            GnnOneConfig {
                schedule: Schedule::RoundRobin,
                ..Default::default()
            },
            32,
        );
    }

    #[test]
    fn correct_cache_32() {
        check_correct(
            GnnOneConfig {
                cache_size: 32,
                ..Default::default()
            },
            16,
        );
    }

    #[test]
    fn correct_odd_dims() {
        for f in [1, 2, 3, 5, 7, 12, 48, 100] {
            check_correct(GnnOneConfig::default(), f);
        }
    }

    #[test]
    fn full_config_beats_ablation_baseline() {
        // Fig. 8's shape: +data-reuse and +float4 each add speedup.
        let g = random_graph(11);
        let f = 32;
        let x = DeviceBuffer::from_slice(&vec![1.0f32; g.coo.num_rows() * f]);
        let yv = DeviceBuffer::from_slice(&vec![1.0f32; g.coo.num_cols() * f]);
        let dw = DeviceBuffer::<f32>::zeros(g.nnz());
        let gp = gpu();
        let run = |cfg: GnnOneConfig| {
            GnnOneSddmm::new(Arc::clone(&g), cfg)
                .run(&gp, &x, &yv, f, &dw)
                .unwrap()
                .cycles
        };
        let base = run(GnnOneConfig::ablation_baseline());
        let reuse = run(GnnOneConfig::ablation_data_reuse());
        let full = run(GnnOneConfig::default());
        assert!(reuse < base, "+data-reuse {reuse} !< baseline {base}");
        assert!(full < reuse, "+float4 {full} !< +data-reuse {reuse}");
    }

    #[test]
    fn consecutive_reuses_row_features() {
        // Uniform degree-8 rows with f = 32 (4 thread groups): Consecutive
        // gives each group whole rows (reload every 8 NZEs), while
        // Round-robin hands each group a stride-4 sample whose row changes
        // every 2 NZEs — ~4× the x reloads (§4.2.2's data-reuse analysis).
        let n = 256u32;
        let el = EdgeList::new(
            n as usize,
            (0..n)
                .flat_map(|r| (0..8u32).map(move |k| (r, (r * 8 + k * 3) % n)))
                .collect(),
        );
        let g = Arc::new(GraphData::new(Coo::from_edge_list(&el)));
        let f = 32;
        let x = DeviceBuffer::from_slice(&vec![1.0f32; n as usize * f]);
        let yv = DeviceBuffer::from_slice(&vec![1.0f32; n as usize * f]);
        let dw = DeviceBuffer::<f32>::zeros(g.nnz());
        let gp = gpu();
        let cons = GnnOneSddmm::new(Arc::clone(&g), GnnOneConfig::default())
            .run(&gp, &x, &yv, f, &dw)
            .unwrap();
        let rr = GnnOneSddmm::new(
            Arc::clone(&g),
            GnnOneConfig {
                schedule: Schedule::RoundRobin,
                ..Default::default()
            },
        )
        .run(&gp, &x, &yv, f, &dw)
        .unwrap();
        // Round-robin's duplicate row loads coalesce into the same sectors
        // (simultaneous groups often share a row), so DRAM traffic stays
        // equal — the reuse shows up as fewer load *instructions* and fewer
        // exposed-latency chains.
        assert!(
            cons.stats.loads < rr.stats.loads,
            "consecutive {} !< round-robin {} load instructions",
            cons.stats.loads,
            rr.stats.loads
        );
        // (Cycle-level comparison at saturated scale is Fig. 10's job —
        // this unit test validates the reuse mechanism itself.)
    }

    #[test]
    fn empty_graph_is_ok() {
        let g = Arc::new(GraphData::new(Coo::from_edge_list(&EdgeList::new(
            4,
            vec![],
        ))));
        let x = DeviceBuffer::from_slice(&[0.0f32; 4 * 8]);
        let dw = DeviceBuffer::<f32>::zeros(1);
        let r = GnnOneSddmm::new(g, GnnOneConfig::default())
            .run(&gpu(), &x, &x, 8, &dw)
            .unwrap();
        assert_eq!(r.stats.loads, 0);
    }
}
