//! The GNNOne kernels (paper §4): a unified two-stage data-load design on
//! the standard COO format.
//!
//! The design is one engine, not a family of lookalike kernels:
//! [`pipeline`] owns both stages —
//!
//! * Stage 1 — edge-parallel, fully balanced load of `CACHE_SIZE` NZEs
//!   (+ edge features for SpMM) per warp into shared memory (Listing 1);
//! * Stage 2 — the symbiotic thread scheduler: thread groups sized by the
//!   feature length, `float4`/`float3` vector loads, and the Consecutive
//!   NZE-assignment policy enabling row-feature reuse (SDDMM) and a running
//!   thread-local reduction (SpMM) (Listing 2);
//!
//! and [`reduce`] holds the per-kernel reductions. Each kernel module
//! ([`sddmm`], [`spmm`], [`csr_spmm`], [`variants`], [`fused`]) is a thin
//! source × reduction instantiation of
//! [`pipeline::TwoStagePipeline`]; `docs/UNIFIED.md` maps the pieces back
//! to the paper's listings and figures. [`spmv`] stays outside the
//! pipeline: SpMV is the paper's §5.4.4 *discussion* workload (f = 1
//! starves the thread groups), not a GNNOne kernel.

pub mod config;
pub mod csr_spmm;
pub mod fused;
pub mod pipeline;
pub mod reduce;
pub mod row_spmm;
pub mod sddmm;
pub mod spmm;
pub mod spmv;
pub mod variants;

pub use config::{GnnOneConfig, Schedule};
pub use csr_spmm::GnnOneCsrSpmm;
pub use fused::FusedGatAttention;
pub use pipeline::TwoStagePipeline;
pub use row_spmm::GnnOneRowSpmm;
pub use sddmm::GnnOneSddmm;
pub use spmm::GnnOneSpmm;
pub use spmv::GnnOneSpmv;
pub use variants::{GnnOneLoadOnly, GnnOneUAddV};
