//! The GNNOne kernels (paper §4): a unified two-stage data-load design on
//! the standard COO format.
//!
//! * Stage 1 — edge-parallel, fully balanced load of `CACHE_SIZE` NZEs
//!   (+ edge features for SpMM) per warp into shared memory ([`config`]).
//! * Stage 2 — the symbiotic thread scheduler: thread groups sized by the
//!   feature length, `float4`/`float3` vector loads, and the Consecutive
//!   NZE-assignment policy enabling row-feature reuse (SDDMM) and a running
//!   thread-local reduction (SpMM).

pub mod config;
pub mod csr_spmm;
pub mod fused;
pub mod sddmm;
pub mod spmm;
pub mod spmv;
pub mod variants;

pub use config::{GnnOneConfig, Schedule};
pub use csr_spmm::GnnOneCsrSpmm;
pub use fused::FusedGatAttention;
pub use sddmm::GnnOneSddmm;
pub use spmm::GnnOneSpmm;
pub use spmv::GnnOneSpmv;
pub use variants::GnnOneUAddV;
