//! GNNOne SpMM (paper §4): `y[r] += Σ_{(r,c)} w[(r,c)] · x[c]` on COO.
//!
//! Stage 1 additionally caches the edge feature of every NZE (needed for
//! the dot products). Stage 2 uses the same thread groups as SDDMM; under
//! the Consecutive policy each group walks a contiguous run of NZEs, so the
//! reduction along the neighborhood dimension is a **running, thread-local
//! accumulation** — registers hold one partial vector per lane, flushed
//! with `atomicAdd` only when a row split is observed (§4.3). This is what
//! frees GNNOne from the register materialization that sinks Yang et al.'s
//! nonzero-split SpMM.
//!
//! The kernel is the [`CooNzes`] × [`RowAccum`] instantiation of the
//! shared [`TwoStagePipeline`] — the *same* Stage 1 and scheduler as
//! SDDMM, differing only in the reduction, which is the paper's unifying
//! claim made structural.

use std::sync::Arc;

use gnnone_sim::{engine::LaunchError, DeviceBuffer, Gpu, KernelReport};

use crate::analysis::{summaries, AccessSummary, ExecModel};
use crate::gnnone::config::GnnOneConfig;
use crate::gnnone::pipeline::{stage2_geometry, CooNzes, TwoStagePipeline};
use crate::gnnone::reduce::RowAccum;
use crate::graph::GraphData;
use crate::traits::SpmmKernel;

/// The GNNOne SpMM kernel over COO.
pub struct GnnOneSpmm {
    graph: Arc<GraphData>,
    config: GnnOneConfig,
    name: &'static str,
}

impl GnnOneSpmm {
    /// Creates the kernel for `graph` with `config`.
    pub fn new(graph: Arc<GraphData>, config: GnnOneConfig) -> Self {
        config.validate();
        Self {
            graph,
            config,
            name: "GnnOne",
        }
    }

    /// Same kernel under an ablation label.
    pub fn named(graph: Arc<GraphData>, config: GnnOneConfig, name: &'static str) -> Self {
        config.validate();
        Self {
            graph,
            config,
            name,
        }
    }
}

impl SpmmKernel for GnnOneSpmm {
    fn graph(&self) -> &GraphData {
        &self.graph
    }

    fn name(&self) -> &'static str {
        self.name
    }

    fn format(&self) -> &'static str {
        "COO"
    }

    fn run(
        &self,
        gpu: &Gpu,
        edge_vals: &DeviceBuffer<f32>,
        x: &DeviceBuffer<f32>,
        f: usize,
        y: &DeviceBuffer<f32>,
    ) -> Result<KernelReport, LaunchError> {
        let pipeline = TwoStagePipeline::new(
            CooNzes::with_vals(
                &self.graph.d_coo_rows,
                &self.graph.d_coo_cols,
                edge_vals,
                self.graph.nnz(),
            ),
            RowAccum { x, y },
            f,
            stage2_geometry(&self.config, f),
            self.config,
            self.name,
        );
        gpu.try_launch(&pipeline)
    }

    /// Config-aware native path: `cache_size` sizes the nnz-balanced row
    /// blocks and `vectorize` selects chunked vs scalar accumulation.
    fn run_native(
        &self,
        eng: &crate::backend::NativeEngine,
        edge_vals: &DeviceBuffer<f32>,
        x: &DeviceBuffer<f32>,
        f: usize,
        y: &DeviceBuffer<f32>,
    ) -> Result<crate::backend::NativeReport, LaunchError> {
        Ok(crate::backend::native::spmm_rows(
            eng,
            &self.graph,
            &self.config,
            edge_vals,
            x,
            f,
            y,
            self.name,
        ))
    }

    fn access_summary(&self, f: usize, model: ExecModel) -> Option<AccessSummary> {
        Some(match model {
            ExecModel::Sim => summaries::gnnone_coo_spmm(self.name, &self.graph, &self.config, f),
            ExecModel::Native => summaries::native_row_out(
                self.name,
                "spmm",
                &self.graph,
                &self.config,
                f,
                summaries::spmm_reads(),
            ),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gnnone::config::Schedule;
    use gnnone_sim::GpuSpec;
    use gnnone_sparse::formats::{Coo, EdgeList};
    use gnnone_sparse::gen;
    use gnnone_sparse::reference;

    fn gpu() -> Gpu {
        Gpu::new(GpuSpec::a100_40gb())
    }

    fn random_graph(seed: u64) -> Arc<GraphData> {
        let el = gen::rmat(7, 700, gen::GRAPH500_PROBS, seed).symmetrize();
        Arc::new(GraphData::new(Coo::from_edge_list(&el)))
    }

    fn check_correct(cfg: GnnOneConfig, f: usize) {
        let g = random_graph(5);
        let x: Vec<f32> = (0..g.coo.num_cols() * f)
            .map(|i| ((i * 31 % 17) as f32 - 8.0) * 0.25)
            .collect();
        let w: Vec<f32> = (0..g.nnz())
            .map(|e| ((e * 13 % 7) as f32 - 3.0) * 0.5)
            .collect();
        let dx = DeviceBuffer::from_slice(&x);
        let dw = DeviceBuffer::from_slice(&w);
        let dy = DeviceBuffer::<f32>::zeros(g.coo.num_rows() * f);
        GnnOneSpmm::new(Arc::clone(&g), cfg)
            .run(&gpu(), &dw, &dx, f, &dy)
            .unwrap();
        let expected = reference::spmm_csr(&g.csr, &w, &x, f);
        reference::assert_close(&dy.to_vec(), &expected, 1e-4);
    }

    #[test]
    fn correct_default_config_paper_dims() {
        for f in [6, 16, 32, 64] {
            check_correct(GnnOneConfig::default(), f);
        }
    }

    #[test]
    fn correct_round_robin() {
        for f in [6, 32] {
            check_correct(
                GnnOneConfig {
                    schedule: Schedule::RoundRobin,
                    ..Default::default()
                },
                f,
            );
        }
    }

    #[test]
    fn correct_scalar_and_no_reuse() {
        check_correct(GnnOneConfig::ablation_baseline(), 32);
        check_correct(GnnOneConfig::ablation_data_reuse(), 16);
    }

    #[test]
    fn correct_cache_sizes() {
        for cache in [32, 64, 256] {
            check_correct(
                GnnOneConfig {
                    cache_size: cache,
                    ..Default::default()
                },
                16,
            );
        }
    }

    #[test]
    fn correct_odd_dims() {
        for f in [1, 3, 5, 12, 100] {
            check_correct(GnnOneConfig::default(), f);
        }
    }

    #[test]
    fn cache_128_beats_cache_32() {
        // Fig. 9's shape. Needs a *saturated* device, as in the paper's
        // setup — tiny GPU, medium graph.
        let el = gen::rmat(11, 16_000, gen::GRAPH500_PROBS, 23).symmetrize();
        let g = Arc::new(GraphData::new(Coo::from_edge_list(&el)));
        let f = 16;
        let x = DeviceBuffer::from_slice(&vec![1.0f32; g.coo.num_cols() * f]);
        let w = DeviceBuffer::from_slice(&vec![1.0f32; g.nnz()]);
        let dy = DeviceBuffer::<f32>::zeros(g.coo.num_rows() * f);
        let gp = Gpu::new(GpuSpec::tiny());
        let run = |cache: usize| {
            GnnOneSpmm::new(
                Arc::clone(&g),
                GnnOneConfig {
                    cache_size: cache,
                    ..Default::default()
                },
            )
            .run(&gp, &w, &x, f, &dy)
            .unwrap()
            .cycles
        };
        let c128 = run(128);
        let c32 = run(32);
        assert!(c128 < c32, "cache128 {c128} !< cache32 {c32}");
    }

    #[test]
    fn consecutive_needs_fewer_atomics_than_round_robin() {
        // Long rows: Consecutive accumulates locally, RoundRobin flushes on
        // interleaved rows far more often on short-row graphs.
        let el = EdgeList::new(
            128,
            (0..32u32)
                .flat_map(|r| (0..4u32).map(move |c| (r, 64 + (r * 4 + c) % 64)))
                .collect(),
        );
        let g = Arc::new(GraphData::new(Coo::from_edge_list(&el)));
        let f = 32;
        let x = DeviceBuffer::from_slice(&vec![1.0f32; 128 * f]);
        let w = DeviceBuffer::from_slice(&vec![1.0f32; g.nnz()]);
        let gp = gpu();
        let run = |s: Schedule| {
            let dy = DeviceBuffer::<f32>::zeros(128 * f);
            GnnOneSpmm::new(
                Arc::clone(&g),
                GnnOneConfig {
                    schedule: s,
                    ..Default::default()
                },
            )
            .run(&gp, &w, &x, f, &dy)
            .unwrap()
        };
        let cons = run(Schedule::Consecutive);
        let rr = run(Schedule::RoundRobin);
        assert!(
            cons.stats.atomics < rr.stats.atomics,
            "consecutive {} !< round-robin {}",
            cons.stats.atomics,
            rr.stats.atomics
        );
    }

    #[test]
    fn zero_edge_values_produce_zero_output() {
        let g = random_graph(9);
        let f = 8;
        let x = DeviceBuffer::from_slice(&vec![1.0f32; g.coo.num_cols() * f]);
        let w = DeviceBuffer::from_slice(&vec![0.0f32; g.nnz()]);
        let dy = DeviceBuffer::<f32>::zeros(g.coo.num_rows() * f);
        GnnOneSpmm::new(g, GnnOneConfig::default())
            .run(&gpu(), &w, &x, f, &dy)
            .unwrap();
        assert!(dy.to_vec().iter().all(|&v| v == 0.0));
    }
}
