//! GNNOne SpMM (paper §4): `y[r] += Σ_{(r,c)} w[(r,c)] · x[c]` on COO.
//!
//! Stage 1 additionally caches the edge feature of every NZE (needed for
//! the dot products). Stage 2 uses the same thread groups as SDDMM; under
//! the Consecutive policy each group walks a contiguous run of NZEs, so the
//! reduction along the neighborhood dimension is a **running, thread-local
//! accumulation** — registers hold one partial vector per lane, flushed
//! with `atomicAdd` only when a row split is observed (§4.3). This is what
//! frees GNNOne from the register materialization that sinks Yang et al.'s
//! nonzero-split SpMM.

use std::sync::Arc;

use gnnone_sim::{
    engine::LaunchError, DeviceBuffer, Gpu, KernelReport, KernelResources, LaneArr, WarpCtx,
    WarpKernel, WARP_SIZE,
};

use crate::geometry::GroupGeometry;
use crate::gnnone::config::{GnnOneConfig, Schedule};
use crate::graph::GraphData;
use crate::traits::SpmmKernel;

/// The GNNOne SpMM kernel over COO.
pub struct GnnOneSpmm {
    graph: Arc<GraphData>,
    config: GnnOneConfig,
    name: &'static str,
}

impl GnnOneSpmm {
    /// Creates the kernel for `graph` with `config`.
    pub fn new(graph: Arc<GraphData>, config: GnnOneConfig) -> Self {
        config.validate();
        Self {
            graph,
            config,
            name: "GnnOne",
        }
    }

    /// Same kernel under an ablation label.
    pub fn named(graph: Arc<GraphData>, config: GnnOneConfig, name: &'static str) -> Self {
        config.validate();
        Self {
            graph,
            config,
            name,
        }
    }
}

impl SpmmKernel for GnnOneSpmm {
    fn name(&self) -> &'static str {
        self.name
    }

    fn format(&self) -> &'static str {
        "COO"
    }

    fn run(
        &self,
        gpu: &Gpu,
        edge_vals: &DeviceBuffer<f32>,
        x: &DeviceBuffer<f32>,
        f: usize,
        y: &DeviceBuffer<f32>,
    ) -> Result<KernelReport, LaunchError> {
        let geo = if self.config.vectorize {
            GroupGeometry::gnnone(f)
        } else {
            GroupGeometry::feature_parallel(f)
        };
        let launch = SpmmLaunch {
            rows: &self.graph.d_coo_rows,
            cols: &self.graph.d_coo_cols,
            vals: edge_vals,
            x,
            y,
            nnz: self.graph.nnz(),
            f,
            geo,
            cfg: self.config,
            name: self.name,
        };
        gpu.try_launch(&launch)
    }
}

struct SpmmLaunch<'a> {
    rows: &'a DeviceBuffer<u32>,
    cols: &'a DeviceBuffer<u32>,
    vals: &'a DeviceBuffer<f32>,
    x: &'a DeviceBuffer<f32>,
    y: &'a DeviceBuffer<f32>,
    nnz: usize,
    f: usize,
    geo: GroupGeometry,
    cfg: GnnOneConfig,
    name: &'static str,
}

impl SpmmLaunch<'_> {
    /// Flush one group's running accumulator to `y[row]` via atomicAdd —
    /// `vec_width` atomic instructions, one per feature slot per lane.
    #[allow(clippy::too_many_arguments)]
    fn flush(
        &self,
        ctx: &mut WarpCtx,
        geo: &GroupGeometry,
        flush_row: &[Option<u32>; WARP_SIZE],
        acc: &mut [LaneArr<f32>; 4],
        pass: usize,
    ) {
        let f = self.f;
        let vw = geo.vec_width;
        let fbase = pass * geo.group_size * vw;
        // One vectored atomic per lane: `vw` consecutive element-atomics
        // whose sector traffic the L2 combines (§4.3's atomicAdd flush).
        ctx.atomic_add_f32_vec(vw, self.y, |l| {
            let (g, t) = geo.split_lane(l);
            let k0 = fbase + t * vw;
            match flush_row[g] {
                Some(row) if k0 < f => {
                    let vals = [acc[0].get(l), acc[1].get(l), acc[2].get(l), acc[3].get(l)];
                    Some((row as usize * f + k0, vals))
                }
                _ => None,
            }
        });
        for k in 0..vw {
            for l in 0..WARP_SIZE {
                let (g, _) = geo.split_lane(l);
                if flush_row[g].is_some() {
                    acc[k].set(l, 0.0);
                }
            }
        }
    }
}

impl WarpKernel for SpmmLaunch<'_> {
    fn resources(&self) -> KernelResources {
        let threads_per_cta = 256;
        let warps_per_cta = threads_per_cta / 32;
        KernelResources {
            threads_per_cta,
            // Running reduction keeps register pressure flat: accumulator +
            // loaded vector + ids (§4.3) — contrast Yang et al.
            regs_per_thread: if self.cfg.vectorize { 42 } else { 36 },
            shared_bytes_per_cta: if self.cfg.data_reuse {
                // rows + cols + edge features: 12 bytes per cached NZE.
                warps_per_cta * self.cfg.cache_size * 12
            } else {
                0
            },
        }
    }

    fn grid_warps(&self) -> usize {
        self.nnz.div_ceil(self.cfg.cache_size)
    }

    fn name(&self) -> &str {
        self.name
    }

    fn run_warp(&self, warp_id: usize, ctx: &mut WarpCtx) {
        let cache = self.cfg.cache_size;
        let base = warp_id * cache;
        let count = cache.min(self.nnz - base);
        let geo = self.geo;
        let f = self.f;
        let ng = geo.groups_per_warp;
        let vw = geo.vec_width;

        // ---- Stage 1: cache NZEs + edge features ----
        if self.cfg.data_reuse {
            let chunks = count.div_ceil(WARP_SIZE);
            for ch in 0..chunks {
                let off = ch * WARP_SIZE;
                let active = |l: usize| off + l < count;
                let r = ctx.load_u32(self.rows, |l| active(l).then(|| base + off + l));
                let c = ctx.load_u32(self.cols, |l| active(l).then(|| base + off + l));
                let v = ctx.load_f32(self.vals, |l| active(l).then(|| base + off + l));
                ctx.shared_store(|l| active(l).then(|| (off + l, r.get(l))));
                ctx.shared_store(|l| active(l).then(|| (cache + off + l, c.get(l))));
                ctx.shared_store(|l| active(l).then(|| (2 * cache + off + l, v.get(l))));
            }
            ctx.barrier();
        }

        // ---- Stage 2: running thread-local reduction ----
        let per_group = cache / ng;
        let e_local = |g: usize, j: usize| match self.cfg.schedule {
            Schedule::Consecutive => g * per_group + j,
            Schedule::RoundRobin => j * ng + g,
        };

        for pass in 0..geo.passes {
            let fbase = pass * geo.group_size * vw;
            let mut acc = [LaneArr::<f32>::default(); 4];
            let mut open_row: [Option<u32>; WARP_SIZE] = [None; WARP_SIZE];

            for j in 0..per_group {
                let group_active = |g: usize| e_local(g, j) < count;
                if (0..ng).all(|g| !group_active(g)) {
                    break;
                }

                let (rows_l, cols_l, vals_l) = if self.cfg.data_reuse {
                    let r: LaneArr<u32> = ctx.shared_load(|l| {
                        let (g, _) = geo.split_lane(l);
                        group_active(g).then(|| e_local(g, j))
                    });
                    let c: LaneArr<u32> = ctx.shared_load(|l| {
                        let (g, _) = geo.split_lane(l);
                        group_active(g).then(|| cache + e_local(g, j))
                    });
                    let v: LaneArr<f32> = ctx.shared_load(|l| {
                        let (g, _) = geo.split_lane(l);
                        group_active(g).then(|| 2 * cache + e_local(g, j))
                    });
                    (r, c, v)
                } else {
                    let r = ctx.load_u32(self.rows, |l| {
                        let (g, _) = geo.split_lane(l);
                        group_active(g).then(|| base + e_local(g, j))
                    });
                    let c = ctx.load_u32(self.cols, |l| {
                        let (g, _) = geo.split_lane(l);
                        group_active(g).then(|| base + e_local(g, j))
                    });
                    let v = ctx.load_f32(self.vals, |l| {
                        let (g, _) = geo.split_lane(l);
                        group_active(g).then(|| base + e_local(g, j))
                    });
                    ctx.use_loads();
                    (r, c, v)
                };

                // Row split detection: flush groups whose open row differs
                // from the incoming NZE's row (§4.3, "discovering a
                // row-split is easy because every NZE carries its row ID").
                let mut flush_row: [Option<u32>; WARP_SIZE] = [None; WARP_SIZE];
                let mut any_flush = false;
                for g in 0..ng {
                    if !group_active(g) {
                        continue;
                    }
                    let row = rows_l.get(g * geo.group_size);
                    if let Some(open) = open_row[g] {
                        if open != row {
                            flush_row[g] = Some(open);
                            any_flush = true;
                        }
                    }
                    open_row[g] = Some(row);
                }
                if any_flush {
                    self.flush(ctx, &geo, &flush_row, &mut acc, pass);
                }

                // Load the column's vertex features and accumulate.
                let xv = ctx.load_f32xw(vw, self.x, |l| {
                    let (g, t) = geo.split_lane(l);
                    let k = fbase + t * vw;
                    (group_active(g) && k < f).then(|| cols_l.get(l) as usize * f + k)
                });
                ctx.compute(vw as u64);
                for l in 0..WARP_SIZE {
                    let (g, t) = geo.split_lane(l);
                    let k = fbase + t * vw;
                    if group_active(g) && k < f {
                        for kk in 0..vw {
                            acc[kk].set(l, acc[kk].get(l) + vals_l.get(l) * xv[kk].get(l));
                        }
                    }
                }
            }

            // Final flush of every open accumulator.
            let mut flush_row: [Option<u32>; WARP_SIZE] = [None; WARP_SIZE];
            for (g, item) in flush_row.iter_mut().enumerate().take(ng) {
                *item = open_row[g];
            }
            if flush_row.iter().any(|r| r.is_some()) {
                self.flush(ctx, &geo, &flush_row, &mut acc, pass);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnone_sim::GpuSpec;
    use gnnone_sparse::formats::{Coo, EdgeList};
    use gnnone_sparse::gen;
    use gnnone_sparse::reference;

    fn gpu() -> Gpu {
        Gpu::new(GpuSpec::a100_40gb())
    }

    fn random_graph(seed: u64) -> Arc<GraphData> {
        let el = gen::rmat(7, 700, gen::GRAPH500_PROBS, seed).symmetrize();
        Arc::new(GraphData::new(Coo::from_edge_list(&el)))
    }

    fn check_correct(cfg: GnnOneConfig, f: usize) {
        let g = random_graph(5);
        let x: Vec<f32> = (0..g.coo.num_cols() * f)
            .map(|i| ((i * 31 % 17) as f32 - 8.0) * 0.25)
            .collect();
        let w: Vec<f32> = (0..g.nnz())
            .map(|e| ((e * 13 % 7) as f32 - 3.0) * 0.5)
            .collect();
        let dx = DeviceBuffer::from_slice(&x);
        let dw = DeviceBuffer::from_slice(&w);
        let dy = DeviceBuffer::<f32>::zeros(g.coo.num_rows() * f);
        GnnOneSpmm::new(Arc::clone(&g), cfg)
            .run(&gpu(), &dw, &dx, f, &dy)
            .unwrap();
        let expected = reference::spmm_csr(&g.csr, &w, &x, f);
        reference::assert_close(&dy.to_vec(), &expected, 1e-4);
    }

    #[test]
    fn correct_default_config_paper_dims() {
        for f in [6, 16, 32, 64] {
            check_correct(GnnOneConfig::default(), f);
        }
    }

    #[test]
    fn correct_round_robin() {
        for f in [6, 32] {
            check_correct(
                GnnOneConfig {
                    schedule: Schedule::RoundRobin,
                    ..Default::default()
                },
                f,
            );
        }
    }

    #[test]
    fn correct_scalar_and_no_reuse() {
        check_correct(GnnOneConfig::ablation_baseline(), 32);
        check_correct(GnnOneConfig::ablation_data_reuse(), 16);
    }

    #[test]
    fn correct_cache_sizes() {
        for cache in [32, 64, 256] {
            check_correct(
                GnnOneConfig {
                    cache_size: cache,
                    ..Default::default()
                },
                16,
            );
        }
    }

    #[test]
    fn correct_odd_dims() {
        for f in [1, 3, 5, 12, 100] {
            check_correct(GnnOneConfig::default(), f);
        }
    }

    #[test]
    fn cache_128_beats_cache_32() {
        // Fig. 9's shape. Needs a *saturated* device, as in the paper's
        // setup — tiny GPU, medium graph.
        let el = gen::rmat(11, 16_000, gen::GRAPH500_PROBS, 23).symmetrize();
        let g = Arc::new(GraphData::new(Coo::from_edge_list(&el)));
        let f = 16;
        let x = DeviceBuffer::from_slice(&vec![1.0f32; g.coo.num_cols() * f]);
        let w = DeviceBuffer::from_slice(&vec![1.0f32; g.nnz()]);
        let dy = DeviceBuffer::<f32>::zeros(g.coo.num_rows() * f);
        let gp = Gpu::new(GpuSpec::tiny());
        let run = |cache: usize| {
            GnnOneSpmm::new(
                Arc::clone(&g),
                GnnOneConfig {
                    cache_size: cache,
                    ..Default::default()
                },
            )
            .run(&gp, &w, &x, f, &dy)
            .unwrap()
            .cycles
        };
        let c128 = run(128);
        let c32 = run(32);
        assert!(c128 < c32, "cache128 {c128} !< cache32 {c32}");
    }

    #[test]
    fn consecutive_needs_fewer_atomics_than_round_robin() {
        // Long rows: Consecutive accumulates locally, RoundRobin flushes on
        // interleaved rows far more often on short-row graphs.
        let el = EdgeList::new(
            128,
            (0..32u32)
                .flat_map(|r| (0..4u32).map(move |c| (r, 64 + (r * 4 + c) % 64)))
                .collect(),
        );
        let g = Arc::new(GraphData::new(Coo::from_edge_list(&el)));
        let f = 32;
        let x = DeviceBuffer::from_slice(&vec![1.0f32; 128 * f]);
        let w = DeviceBuffer::from_slice(&vec![1.0f32; g.nnz()]);
        let gp = gpu();
        let run = |s: Schedule| {
            let dy = DeviceBuffer::<f32>::zeros(128 * f);
            GnnOneSpmm::new(
                Arc::clone(&g),
                GnnOneConfig {
                    schedule: s,
                    ..Default::default()
                },
            )
            .run(&gp, &w, &x, f, &dy)
            .unwrap()
        };
        let cons = run(Schedule::Consecutive);
        let rr = run(Schedule::RoundRobin);
        assert!(
            cons.stats.atomics < rr.stats.atomics,
            "consecutive {} !< round-robin {}",
            cons.stats.atomics,
            rr.stats.atomics
        );
    }

    #[test]
    fn zero_edge_values_produce_zero_output() {
        let g = random_graph(9);
        let f = 8;
        let x = DeviceBuffer::from_slice(&vec![1.0f32; g.coo.num_cols() * f]);
        let w = DeviceBuffer::from_slice(&vec![0.0f32; g.nnz()]);
        let dy = DeviceBuffer::<f32>::zeros(g.coo.num_rows() * f);
        GnnOneSpmm::new(g, GnnOneConfig::default())
            .run(&gpu(), &w, &x, f, &dy)
            .unwrap();
        assert!(dy.to_vec().iter().all(|&v| v == 0.0));
    }
}
