//! Reduction stages of the unified pipeline — the *only* part in which the
//! GNNOne kernels differ (paper §4.3: SDDMM and SpMM "differ fundamentally
//! only in their reduction stage").
//!
//! Each [`Reduction`] consumes the NZE batches a
//! [`pipeline`](crate::gnnone::pipeline) source fetches and owns whatever
//! the operator does with them:
//!
//! * [`EdgeDot`] — per-edge dot product with group-tree shuffles and a
//!   register row-feature cache (SDDMM);
//! * [`RowAccum`] — running thread-local accumulation flushed by
//!   `atomicAdd` only at row splits (SpMM, both COO and derived-row CSR);
//! * [`ScalarGather`] — scalar `el[row] + er[col]` gathers, no reduction
//!   at all (the `u_add_v` SDDMM variant GAT logits need);
//! * [`NoReduce`] — fetch + feature loads with the compute and output
//!   dropped (the load-only prototype behind Fig. 11's data-load
//!   fraction).
//!
//! The fused GAT kernel's row-softmax reduction lives with its kernel in
//! [`fused`](crate::gnnone::fused) — it is the one reduction that forces a
//! row-per-warp source instead of an edge-split one.

use gnnone_sim::{DeviceBuffer, LaneArr, WarpCtx, WARP_SIZE};

use crate::geometry::GroupGeometry;
use crate::gnnone::config::GnnOneConfig;
use crate::gnnone::pipeline::{FetchNzes, NzeSource, Stage2Ctx};

/// A Stage-2 reduction: what a kernel does with each fetched NZE.
pub trait Reduction<S: NzeSource> {
    /// Whether Stage 1 must additionally stage each NZE's edge value.
    const NEEDS_EDGE_VALUES: bool;

    /// Register footprint of one thread running this reduction.
    fn regs_per_thread(&self, cfg: &GnnOneConfig) -> usize;

    /// Shared-memory words per warp the reduction itself needs (beyond the
    /// source's staging) — e.g. the fused kernel's logit cache.
    fn shared_words_per_warp(&self, _cfg: &GnnOneConfig) -> usize {
        0
    }

    /// Runs Stage 2 for one warp.
    fn stage2(&self, pipe: &Stage2Ctx<'_, S>, ctx: &mut WarpCtx);
}

// ---------------------------------------------------------------------------
// EdgeDot (SDDMM)
// ---------------------------------------------------------------------------

/// Per-edge dot product: `w[e] = x[row(e)] · y[col(e)]`.
///
/// Each lane loads `vec_width` consecutive features of both operands with
/// one vector instruction and the group tree-reduces via shuffles
/// (`log2(group)` rounds — 3 instead of 5 for `f = 32`, §4.2.1). Under the
/// Consecutive policy consecutive NZEs in a group usually share a row (COO
/// is CSR-ordered), so the row's features are **reused** from registers
/// until a row split — the data-reuse the paper credits with a 2.78×
/// ablation speedup (Fig. 8).
pub struct EdgeDot<'a> {
    /// Row-operand features (`|V| × f`).
    pub x: &'a DeviceBuffer<f32>,
    /// Column-operand features (`|V| × f`).
    pub y: &'a DeviceBuffer<f32>,
    /// Per-edge output (`|E|`).
    pub w: &'a DeviceBuffer<f32>,
}

impl<S: FetchNzes> Reduction<S> for EdgeDot<'_> {
    const NEEDS_EDGE_VALUES: bool = false;

    fn regs_per_thread(&self, cfg: &GnnOneConfig) -> usize {
        // x/y vector registers + NZE ids + loop state.
        if cfg.vectorize {
            40
        } else {
            34
        }
    }

    fn stage2(&self, pipe: &Stage2Ctx<'_, S>, ctx: &mut WarpCtx) {
        let geo = pipe.geo;
        let f = pipe.f;
        let ng = geo.groups_per_warp;
        let vw = geo.vec_width;

        // Per-group row-feature register cache (Consecutive reuse).
        let mut prev_row = [u32::MAX; WARP_SIZE];
        let mut have_x = [false; WARP_SIZE];
        let mut x_regs = [LaneArr::<f32>::default(); 4];
        let reuse_possible = pipe.cfg.data_reuse && geo.passes == 1;

        for j in 0..pipe.per_group() {
            if pipe.all_idle(j) {
                break;
            }

            // Fetch the NZE ids for every group.
            let nze = pipe.fetch(ctx, j, false);

            let mut partial = LaneArr::<f32>::default();
            for pass in 0..geo.passes {
                let fbase = pass * geo.group_size * vw;
                // Which lanes must (re)load x-row features this iteration?
                let mut reload = [false; WARP_SIZE];
                for (l, slot) in reload.iter_mut().enumerate() {
                    let (g, t) = geo.split_lane(l);
                    let k = fbase + t * vw;
                    if !pipe.group_active(g, j) || k >= f {
                        continue;
                    }
                    *slot = !(reuse_possible && have_x[g] && prev_row[g] == nze.rows.get(l));
                }
                if reload.iter().any(|&b| b) {
                    let loaded = ctx.load_f32xw(vw, self.x, |l| {
                        let (_, t) = geo.split_lane(l);
                        reload[l].then(|| nze.rows.get(l) as usize * f + fbase + t * vw)
                    });
                    for l in 0..WARP_SIZE {
                        if reload[l] {
                            for k in 0..vw {
                                x_regs[k].set(l, loaded[k].get(l));
                            }
                        }
                    }
                }
                // Column features change every NZE: always loaded.
                let yv = ctx.load_f32xw(vw, self.y, |l| {
                    let (g, t) = geo.split_lane(l);
                    let k = fbase + t * vw;
                    (pipe.group_active(g, j) && k < f).then(|| nze.cols.get(l) as usize * f + k)
                });
                ctx.compute(vw as u64);
                for l in 0..WARP_SIZE {
                    let (g, t) = geo.split_lane(l);
                    let k = fbase + t * vw;
                    if pipe.group_active(g, j) && k < f {
                        let mut acc = partial.get(l);
                        for kk in 0..vw {
                            acc += x_regs[kk].get(l) * yv[kk].get(l);
                        }
                        partial.set(l, acc);
                    }
                }
            }

            // Tree reduction within each thread group.
            let reduced = ctx.shfl_reduce_sum_f32(&partial, geo.group_size);
            ctx.store_f32(self.w, |l| {
                let (g, t) = geo.split_lane(l);
                (t == 0 && pipe.group_active(g, j))
                    .then(|| (pipe.span.base + pipe.e_local(g, j), reduced.get(l)))
            });

            // Update the register cache bookkeeping.
            for g in 0..ng {
                if pipe.group_active(g, j) {
                    prev_row[g] = nze.rows.get(g * geo.group_size);
                    have_x[g] = reuse_possible;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// RowAccum (SpMM)
// ---------------------------------------------------------------------------

/// Running row accumulation: `y[r] += Σ_{(r,c)} val · x[c]`.
///
/// Under the Consecutive policy each group walks a contiguous run of NZEs,
/// so the reduction along the neighborhood dimension is a **running,
/// thread-local accumulation** — registers hold one partial vector per
/// lane, flushed with `atomicAdd` only when a row split is observed
/// (§4.3). This is what frees GNNOne from the register materialization
/// that sinks Yang et al.'s nonzero-split SpMM. The same reduction serves
/// COO and derived-row CSR: the source is what differs.
pub struct RowAccum<'a> {
    /// Dense operand features (`|V| × f`).
    pub x: &'a DeviceBuffer<f32>,
    /// Output rows (`|V| × f`, zeroed by the caller).
    pub y: &'a DeviceBuffer<f32>,
}

impl RowAccum<'_> {
    /// Flush one group's running accumulator to `y[row]` via atomicAdd —
    /// `vec_width` atomic instructions, one per feature slot per lane.
    fn flush(
        &self,
        ctx: &mut WarpCtx,
        geo: &GroupGeometry,
        f: usize,
        fbase: usize,
        flush_row: &[Option<u32>; WARP_SIZE],
        acc: &mut [LaneArr<f32>; 4],
    ) {
        let vw = geo.vec_width;
        // One vectored atomic per lane: `vw` consecutive element-atomics
        // whose sector traffic the L2 combines (§4.3's atomicAdd flush).
        ctx.atomic_add_f32_vec(vw, self.y, |l| {
            let (g, t) = geo.split_lane(l);
            let k0 = fbase + t * vw;
            match flush_row[g] {
                Some(row) if k0 < f => {
                    let vals = [acc[0].get(l), acc[1].get(l), acc[2].get(l), acc[3].get(l)];
                    Some((row as usize * f + k0, vals))
                }
                _ => None,
            }
        });
        for a in acc.iter_mut() {
            for l in 0..WARP_SIZE {
                let (g, _) = geo.split_lane(l);
                if flush_row[g].is_some() {
                    a.set(l, 0.0);
                }
            }
        }
    }
}

impl<S: FetchNzes> Reduction<S> for RowAccum<'_> {
    const NEEDS_EDGE_VALUES: bool = true;

    fn regs_per_thread(&self, cfg: &GnnOneConfig) -> usize {
        // Running reduction keeps register pressure flat: accumulator +
        // loaded vector + ids (§4.3) — contrast Yang et al.
        if cfg.vectorize {
            42
        } else {
            36
        }
    }

    fn stage2(&self, pipe: &Stage2Ctx<'_, S>, ctx: &mut WarpCtx) {
        let geo = pipe.geo;
        let f = pipe.f;
        let ng = geo.groups_per_warp;
        let vw = geo.vec_width;

        for pass in 0..geo.passes {
            let fbase = pass * geo.group_size * vw;
            let mut acc = [LaneArr::<f32>::default(); 4];
            let mut open_row: [Option<u32>; WARP_SIZE] = [None; WARP_SIZE];

            for j in 0..pipe.per_group() {
                if pipe.all_idle(j) {
                    break;
                }

                let nze = pipe.fetch(ctx, j, true);

                // Row split detection: flush groups whose open row differs
                // from the incoming NZE's row (§4.3, "discovering a
                // row-split is easy because every NZE carries its row ID").
                let mut flush_row: [Option<u32>; WARP_SIZE] = [None; WARP_SIZE];
                let mut any_flush = false;
                for g in 0..ng {
                    if !pipe.group_active(g, j) {
                        continue;
                    }
                    let row = nze.rows.get(g * geo.group_size);
                    if let Some(open) = open_row[g] {
                        if open != row {
                            flush_row[g] = Some(open);
                            any_flush = true;
                        }
                    }
                    open_row[g] = Some(row);
                }
                if any_flush {
                    self.flush(ctx, &geo, f, fbase, &flush_row, &mut acc);
                }

                // Load the column's vertex features and accumulate.
                let xv = ctx.load_f32xw(vw, self.x, |l| {
                    let (g, t) = geo.split_lane(l);
                    let k = fbase + t * vw;
                    (pipe.group_active(g, j) && k < f).then(|| nze.cols.get(l) as usize * f + k)
                });
                ctx.compute(vw as u64);
                for l in 0..WARP_SIZE {
                    let (g, t) = geo.split_lane(l);
                    let k = fbase + t * vw;
                    if pipe.group_active(g, j) && k < f {
                        for kk in 0..vw {
                            acc[kk].set(l, acc[kk].get(l) + nze.vals.get(l) * xv[kk].get(l));
                        }
                    }
                }
            }

            // Final flush of every open accumulator.
            let mut flush_row: [Option<u32>; WARP_SIZE] = [None; WARP_SIZE];
            flush_row[..ng].copy_from_slice(&open_row[..ng]);
            if flush_row.iter().any(|r| r.is_some()) {
                self.flush(ctx, &geo, f, fbase, &flush_row, &mut acc);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// ScalarGather (u_add_v)
// ---------------------------------------------------------------------------

/// Scalar edge apply: `w[e] = el[row(e)] + er[col(e)]`.
///
/// One lane per NZE (scalar geometry: 32 single-lane groups), all 32 lanes
/// busy, loads pipeline freely — no reduction barrier at all: the
/// variant's output is already edge-level (§4.3's SDDMM-variant family).
pub struct ScalarGather<'a> {
    /// Per-vertex left term (`|V|`).
    pub el: &'a DeviceBuffer<f32>,
    /// Per-vertex right term (`|V|`).
    pub er: &'a DeviceBuffer<f32>,
    /// Per-edge output (`|E|`).
    pub w: &'a DeviceBuffer<f32>,
}

impl<S: FetchNzes> Reduction<S> for ScalarGather<'_> {
    const NEEDS_EDGE_VALUES: bool = false;

    fn regs_per_thread(&self, _cfg: &GnnOneConfig) -> usize {
        28
    }

    fn stage2(&self, pipe: &Stage2Ctx<'_, S>, ctx: &mut WarpCtx) {
        let geo = pipe.geo;
        for j in 0..pipe.per_group() {
            if pipe.all_idle(j) {
                break;
            }
            let nze = pipe.fetch(ctx, j, false);
            let elv = ctx.load_f32(self.el, |l| {
                pipe.lane_active(l, j).then(|| nze.rows.get(l) as usize)
            });
            let erv = ctx.load_f32(self.er, |l| {
                pipe.lane_active(l, j).then(|| nze.cols.get(l) as usize)
            });
            ctx.compute(1);
            let sum = elv.zip_with(&erv, |a, b| a + b);
            ctx.store_f32(self.w, |l| {
                let (g, _) = geo.split_lane(l);
                pipe.group_active(g, j)
                    .then(|| (pipe.span.base + pipe.e_local(g, j), sum.get(l)))
            });
        }
    }
}

// ---------------------------------------------------------------------------
// NoReduce (load-only ablation)
// ---------------------------------------------------------------------------

/// Load-only ablation: the full two-stage data load of an SDDMM-shaped
/// kernel with the compute and output stages removed.
///
/// §5.1's breakdown attributes most of kernel time to the data load; this
/// reduction makes that a *measured* quantity (fig11's "load-only" rows)
/// rather than one derived from stall counters. Loads stream with no
/// dependent consumers, exactly like a prototype kernel whose arithmetic
/// was commented out.
pub struct NoReduce<'a> {
    /// Row-operand features (`|V| × f`).
    pub x: &'a DeviceBuffer<f32>,
    /// Column-operand features (`|V| × f`).
    pub y: &'a DeviceBuffer<f32>,
}

impl<S: FetchNzes> Reduction<S> for NoReduce<'_> {
    const NEEDS_EDGE_VALUES: bool = false;

    fn regs_per_thread(&self, cfg: &GnnOneConfig) -> usize {
        // No accumulators, no reduction state — only the load pipeline.
        if cfg.vectorize {
            36
        } else {
            30
        }
    }

    fn stage2(&self, pipe: &Stage2Ctx<'_, S>, ctx: &mut WarpCtx) {
        let geo = pipe.geo;
        let f = pipe.f;
        let vw = geo.vec_width;
        for j in 0..pipe.per_group() {
            if pipe.all_idle(j) {
                break;
            }
            let nze = pipe.fetch(ctx, j, false);
            for pass in 0..geo.passes {
                let fbase = pass * geo.group_size * vw;
                let _xv = ctx.load_f32xw(vw, self.x, |l| {
                    let (g, t) = geo.split_lane(l);
                    let k = fbase + t * vw;
                    (pipe.group_active(g, j) && k < f).then(|| nze.rows.get(l) as usize * f + k)
                });
                let _yv = ctx.load_f32xw(vw, self.y, |l| {
                    let (g, t) = geo.split_lane(l);
                    let k = fbase + t * vw;
                    (pipe.group_active(g, j) && k < f).then(|| nze.cols.get(l) as usize * f + k)
                });
            }
        }
        // Drain the tail so every issued load is charged before exit.
        ctx.use_loads();
    }
}
