//! Configuration knobs of the GNNOne kernels — each knob corresponds to a
//! design-choice experiment in the paper's §5.4.

use serde::{Deserialize, Serialize};

/// Stage-2 NZE assignment policy (paper §4.2.2, Fig. 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Schedule {
    /// Each thread group takes a contiguous block of the cached NZEs —
    /// enables row-feature reuse in SDDMM and long thread-local reduction
    /// runs in SpMM. The paper's preferred policy.
    #[default]
    Consecutive,
    /// Cached NZEs dealt round-robin across groups — little reuse, a flush
    /// per NZE in SpMM on short rows.
    RoundRobin,
}

/// GNNOne kernel configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GnnOneConfig {
    /// NZEs cached per warp in Stage 1; multiple of 32 (Fig. 9 compares 32
    /// vs the default 128).
    pub cache_size: usize,
    /// Stage-2 NZE assignment policy.
    pub schedule: Schedule,
    /// Use vector loads (`float4`, `float3` for odd lengths) and thread
    /// groups in Stage 2 (the "+Float4" step of Fig. 8). When `false`, the
    /// vanilla feature-parallel layout (one feature per lane) is used.
    pub vectorize: bool,
    /// Stage-1 shared-memory NZE caching plus SDDMM row-feature reuse (the
    /// "+Data-reuse" step of Fig. 8). When `false`, NZE IDs are re-fetched
    /// from global memory per thread group, as DGL does.
    pub data_reuse: bool,
}

impl Default for GnnOneConfig {
    fn default() -> Self {
        Self {
            cache_size: 128,
            schedule: Schedule::Consecutive,
            vectorize: true,
            data_reuse: true,
        }
    }
}

impl GnnOneConfig {
    /// The Fig. 8 "Baseline": balanced COO data load, no reuse, no float4 —
    /// roughly the DGL SDDMM design idea.
    pub fn ablation_baseline() -> Self {
        Self {
            cache_size: 128,
            schedule: Schedule::Consecutive,
            vectorize: false,
            data_reuse: false,
        }
    }

    /// Fig. 8 "+Data-reuse".
    pub fn ablation_data_reuse() -> Self {
        Self {
            data_reuse: true,
            ..Self::ablation_baseline()
        }
    }

    /// Validates invariants (cache size a positive multiple of 32).
    pub fn validate(&self) {
        assert!(
            self.cache_size >= 32 && self.cache_size.is_multiple_of(32),
            "cache_size must be a positive multiple of 32, got {}",
            self.cache_size
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = GnnOneConfig::default();
        assert_eq!(c.cache_size, 128);
        assert_eq!(c.schedule, Schedule::Consecutive);
        assert!(c.vectorize && c.data_reuse);
        c.validate();
    }

    #[test]
    fn ablation_ladder() {
        let base = GnnOneConfig::ablation_baseline();
        assert!(!base.vectorize && !base.data_reuse);
        let reuse = GnnOneConfig::ablation_data_reuse();
        assert!(!reuse.vectorize && reuse.data_reuse);
    }

    #[test]
    #[should_panic(expected = "multiple of 32")]
    fn bad_cache_size_rejected() {
        GnnOneConfig {
            cache_size: 48,
            ..Default::default()
        }
        .validate();
    }
}
