//! Fused GAT attention kernel — the paper's future work (§5.3.2: "We
//! believe kernel fusion would provide even better performance to GNNOne,
//! which we left as future work").
//!
//! One launch computes, per destination row `r`:
//!
//! ```text
//! logit(r,c) = LeakyReLU(el[r] + er[c])          (u_add_v SDDMM variant)
//! α(r,·)     = softmax over r's incident edges    (edge softmax)
//! y[r]       = Σ_c α(r,c) · z[c]                  (SpMM)
//! ```
//!
//! without materializing `logit` or `α` in device memory and without two
//! extra kernel launches. The row-wise softmax forces a vertex-centric
//! shape (a warp owns a row and passes over its NZEs three times, caching
//! logits in shared memory when they fit); the unfused GNNOne pipeline
//! keeps its edge-parallel balance but pays global round trips for the
//! edge tensors. The `ext_fused_gat` bench binary quantifies the trade-off.
//!
//! In pipeline terms this is the [`CsrRows`] × [`RowSoftmaxGat`]
//! instantiation of the shared [`TwoStagePipeline`]: the row-per-warp
//! source resolves (and charges) the span load, and the reduction — the
//! one reduction that cannot ride the edge-split scheduler — owns all
//! three passes. [`RowSoftmaxGat`] lives here rather than in
//! [`reduce`](crate::gnnone::reduce) because it is inseparable from this
//! kernel's vertex-centric shape.

use std::sync::Arc;

use gnnone_sim::{
    engine::LaunchError, DeviceBuffer, Gpu, KernelReport, LaneArr, WarpCtx, WARP_SIZE,
};

use crate::analysis::{summaries, AccessSummary, ExecModel};
use crate::geometry::GroupGeometry;
use crate::gnnone::config::GnnOneConfig;
use crate::gnnone::pipeline::{CsrRows, Stage2Ctx, TwoStagePipeline};
use crate::gnnone::reduce::Reduction;
use crate::graph::GraphData;
use crate::traits::FusedAttentionKernel;

/// Maximum logits cached per row in shared memory; longer rows recompute
/// logits in the aggregation pass. Shared with the IR-lowered fused
/// kernel ([`crate::ir`]) so its derived summaries match this launch.
pub(crate) const LOGIT_CACHE: usize = 512;

/// The fused attention kernel.
pub struct FusedGatAttention {
    graph: Arc<GraphData>,
    /// LeakyReLU negative slope.
    pub slope: f32,
}

impl FusedGatAttention {
    /// Creates the kernel for `graph`.
    pub fn new(graph: Arc<GraphData>, slope: f32) -> Self {
        Self { graph, slope }
    }

    /// Runs the fused attention: `z` is `|V| × f` projected features,
    /// `el`/`er` are per-vertex attention terms (`|V|`), `y` receives the
    /// attended aggregation (`|V| × f`, zeroed by the caller). Optionally
    /// writes the attention coefficients to `alpha_out` (`|E|`) for
    /// backward use.
    #[allow(clippy::too_many_arguments)]
    pub fn run(
        &self,
        gpu: &Gpu,
        z: &DeviceBuffer<f32>,
        el: &DeviceBuffer<f32>,
        er: &DeviceBuffer<f32>,
        f: usize,
        y: &DeviceBuffer<f32>,
        alpha_out: Option<&DeviceBuffer<f32>>,
    ) -> Result<KernelReport, LaunchError> {
        let pipeline = TwoStagePipeline::new(
            CsrRows::new(&self.graph.d_csr_offsets, self.graph.num_vertices()),
            RowSoftmaxGat {
                cols: &self.graph.d_csr_cols,
                z,
                el,
                er,
                y,
                alpha_out,
                slope: self.slope,
            },
            f,
            GroupGeometry::feature_parallel(f),
            GnnOneConfig::default(),
            "GnnOne-FusedGAT",
        );
        gpu.try_launch(&pipeline)
    }
}

impl FusedAttentionKernel for FusedGatAttention {
    fn graph(&self) -> &GraphData {
        &self.graph
    }

    fn name(&self) -> &'static str {
        "FusedGAT"
    }

    fn format(&self) -> &'static str {
        "CSR"
    }

    fn run(
        &self,
        gpu: &Gpu,
        z: &DeviceBuffer<f32>,
        el: &DeviceBuffer<f32>,
        er: &DeviceBuffer<f32>,
        f: usize,
        y: &DeviceBuffer<f32>,
        alpha_out: Option<&DeviceBuffer<f32>>,
    ) -> Result<KernelReport, LaunchError> {
        FusedGatAttention::run(self, gpu, z, el, er, f, y, alpha_out)
    }

    fn run_native(
        &self,
        eng: &crate::backend::NativeEngine,
        z: &DeviceBuffer<f32>,
        el: &DeviceBuffer<f32>,
        er: &DeviceBuffer<f32>,
        f: usize,
        y: &DeviceBuffer<f32>,
        alpha_out: Option<&DeviceBuffer<f32>>,
    ) -> Result<crate::backend::NativeReport, LaunchError> {
        Ok(crate::backend::native::fused_gat_rows(
            eng,
            &self.graph,
            self.slope,
            z,
            el,
            er,
            f,
            y,
            alpha_out,
            self.name(),
        ))
    }

    fn access_summary(&self, f: usize, model: ExecModel) -> Option<AccessSummary> {
        Some(match model {
            ExecModel::Sim => summaries::fused_gat(self.name(), &self.graph, f, LOGIT_CACHE as u64),
            ExecModel::Native => summaries::native_fused_gat(self.name(), &self.graph, f),
        })
    }
}

/// Row-wise softmax-attention aggregation: the fused kernel's three passes
/// (logits + max, exp-sum, attended aggregation) over one warp's row span.
pub struct RowSoftmaxGat<'a> {
    /// CSR column ids (`|E|`).
    pub cols: &'a DeviceBuffer<u32>,
    /// Projected features (`|V| × f`).
    pub z: &'a DeviceBuffer<f32>,
    /// Per-vertex left attention term (`|V|`).
    pub el: &'a DeviceBuffer<f32>,
    /// Per-vertex right attention term (`|V|`).
    pub er: &'a DeviceBuffer<f32>,
    /// Output rows (`|V| × f`, zeroed by the caller).
    pub y: &'a DeviceBuffer<f32>,
    /// Optional attention-coefficient output (`|E|`).
    pub alpha_out: Option<&'a DeviceBuffer<f32>>,
    /// LeakyReLU negative slope.
    pub slope: f32,
}

impl RowSoftmaxGat<'_> {
    /// Logits of a chunk: from the shared cache or recomputed.
    fn logits_for_chunk(
        &self,
        ctx: &mut WarpCtx,
        chunk_start: usize,
        chunk: usize,
        row_start: usize,
        el_r: f32,
        cached: bool,
    ) -> LaneArr<f32> {
        if cached {
            let bits: LaneArr<u32> =
                ctx.shared_load(|l| (l < chunk).then(|| chunk_start - row_start + l));
            LaneArr::from_fn(|l| {
                if l < chunk {
                    f32::from_bits(bits.get(l))
                } else {
                    f32::NEG_INFINITY
                }
            })
        } else {
            let cols_c = ctx.load_u32(self.cols, |l| (l < chunk).then(|| chunk_start + l));
            ctx.use_loads();
            let er_c = ctx.load_f32(self.er, |l| (l < chunk).then(|| cols_c.get(l) as usize));
            ctx.compute(2);
            LaneArr::from_fn(|l| {
                if l < chunk {
                    let raw = el_r + er_c.get(l);
                    if raw > 0.0 {
                        raw
                    } else {
                        raw * self.slope
                    }
                } else {
                    f32::NEG_INFINITY
                }
            })
        }
    }
}

impl<'s> Reduction<CsrRows<'s>> for RowSoftmaxGat<'_> {
    const NEEDS_EDGE_VALUES: bool = false;

    fn regs_per_thread(&self, _cfg: &GnnOneConfig) -> usize {
        48
    }

    fn shared_words_per_warp(&self, _cfg: &GnnOneConfig) -> usize {
        // Per-warp logit cache.
        LOGIT_CACHE
    }

    fn stage2(&self, pipe: &Stage2Ctx<'_, CsrRows<'s>>, ctx: &mut WarpCtx) {
        let f = pipe.f;
        let row = pipe.warp_id;
        let (start, end) = (pipe.span.base, pipe.span.base + pipe.span.count);
        let deg = pipe.span.count;
        let el_v = ctx.load_f32(self.el, |l| (l == 0).then_some(row));
        ctx.use_loads();
        let el_r = el_v.get(0);

        // ---- Pass 1: logits, running max and exp-sum --------------------
        // Lanes stride the row's NZEs; logits cached in shared when small.
        let mut lane_max = LaneArr::<f32>::from_fn(|_| f32::NEG_INFINITY);
        let cache_logits = deg <= LOGIT_CACHE;
        for chunk_start in (start..end).step_by(WARP_SIZE) {
            let chunk = (end - chunk_start).min(WARP_SIZE);
            let cols_c = ctx.load_u32(self.cols, |l| (l < chunk).then(|| chunk_start + l));
            ctx.use_loads();
            let er_c = ctx.load_f32(self.er, |l| (l < chunk).then(|| cols_c.get(l) as usize));
            ctx.compute(2); // add + LeakyReLU
            let logit = LaneArr::from_fn(|l| {
                if l < chunk {
                    let raw = el_r + er_c.get(l);
                    if raw > 0.0 {
                        raw
                    } else {
                        raw * self.slope
                    }
                } else {
                    f32::NEG_INFINITY
                }
            });
            if cache_logits {
                ctx.shared_store(|l| {
                    (l < chunk).then(|| (chunk_start - start + l, logit.get(l).to_bits()))
                });
            }
            for l in 0..WARP_SIZE {
                lane_max.set(l, lane_max.get(l).max(logit.get(l)));
            }
        }
        // Warp max: tree reduction via shuffles.
        let mut m = lane_max;
        let mut delta = WARP_SIZE / 2;
        while delta >= 1 {
            let shifted = ctx.shfl_down_f32(&m, delta, WARP_SIZE);
            m = m.zip_with(&shifted, f32::max);
            delta /= 2;
        }
        let row_max = m.get(0);
        ctx.barrier();

        // ---- Pass 2: exp-sum over cached (or recomputed) logits ---------
        let mut lane_sum = LaneArr::<f32>::default();
        for chunk_start in (start..end).step_by(WARP_SIZE) {
            let chunk = (end - chunk_start).min(WARP_SIZE);
            let logit = self.logits_for_chunk(ctx, chunk_start, chunk, start, el_r, cache_logits);
            ctx.compute(2); // exp
            for l in 0..chunk {
                lane_sum.set(l, lane_sum.get(l) + (logit.get(l) - row_max).exp());
            }
        }
        let summed = ctx.shfl_reduce_sum_f32(&lane_sum, WARP_SIZE);
        let row_sum = summed.get(0).max(f32::MIN_POSITIVE);

        // ---- Pass 3: attended aggregation, feature-parallel -------------
        // Columns and attention weights are produced a 32-chunk at a time
        // (one coalesced col load, one drain per chunk), then the z gathers
        // pipeline freely — the same chunked structure the real fused
        // kernels compile to.
        for fbase in (0..f).step_by(WARP_SIZE) {
            let lanes = (f - fbase).min(WARP_SIZE);
            let mut acc = LaneArr::<f32>::default();
            for chunk_start in (start..end).step_by(WARP_SIZE) {
                let chunk = (end - chunk_start).min(WARP_SIZE);
                let cols_c = ctx.load_u32(self.cols, |l| (l < chunk).then(|| chunk_start + l));
                ctx.use_loads();
                let logit =
                    self.logits_for_chunk(ctx, chunk_start, chunk, start, el_r, cache_logits);
                ctx.compute(2); // exp + divide
                let alpha = LaneArr::from_fn(|l| (logit.get(l) - row_max).exp() / row_sum);
                if fbase == 0 {
                    if let Some(out) = self.alpha_out {
                        ctx.store_f32(out, |l| {
                            (l < chunk).then(|| (chunk_start + l, alpha.get(l)))
                        });
                    }
                }
                for i in 0..chunk {
                    let zc = ctx.load_f32(self.z, |l| {
                        (l < lanes).then(|| cols_c.get(i) as usize * f + fbase + l)
                    });
                    ctx.compute(1);
                    for l in 0..lanes {
                        acc.set(l, acc.get(l) + alpha.get(i) * zc.get(l));
                    }
                }
            }
            ctx.store_f32(self.y, |l| {
                (l < lanes).then(|| (row * f + fbase + l, acc.get(l)))
            });
        }
    }
}

/// CPU reference of the fused attention (for tests and the bench oracle).
pub fn fused_gat_reference(
    graph: &GraphData,
    z: &[f32],
    el: &[f32],
    er: &[f32],
    f: usize,
    slope: f32,
) -> (Vec<f32>, Vec<f32>) {
    let csr = &graph.csr;
    let n = csr.num_rows();
    let mut y = vec![0.0f32; n * f];
    let mut alpha = vec![0.0f32; csr.nnz()];
    for r in 0..n {
        let range = csr.row_range(r);
        if range.is_empty() {
            continue;
        }
        let logits: Vec<f32> = range
            .clone()
            .map(|e| {
                let raw = el[r] + er[csr.cols()[e] as usize];
                if raw > 0.0 {
                    raw
                } else {
                    raw * slope
                }
            })
            .collect();
        let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let sum: f32 = logits.iter().map(|&v| (v - max).exp()).sum();
        for (i, e) in range.clone().enumerate() {
            let a = (logits[i] - max).exp() / sum;
            alpha[e] = a;
            let c = csr.cols()[e] as usize;
            for k in 0..f {
                y[r * f + k] += a * z[c * f + k];
            }
        }
    }
    (y, alpha)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnone_sim::GpuSpec;
    use gnnone_sparse::formats::{Coo, EdgeList};
    use gnnone_sparse::gen;
    use gnnone_sparse::reference;

    fn setup(seed: u64) -> (Arc<GraphData>, Vec<f32>, Vec<f32>, Vec<f32>) {
        let elist = gen::rmat(7, 700, gen::GRAPH500_PROBS, seed).symmetrize();
        let g = Arc::new(GraphData::new(Coo::from_edge_list(&elist)));
        let n = g.num_vertices();
        let f = 16;
        let z: Vec<f32> = (0..n * f).map(|i| ((i % 13) as f32 - 6.0) * 0.1).collect();
        let el: Vec<f32> = (0..n).map(|i| ((i % 7) as f32 - 3.0) * 0.2).collect();
        let er: Vec<f32> = (0..n).map(|i| ((i % 5) as f32 - 2.0) * 0.3).collect();
        (g, z, el, er)
    }

    #[test]
    fn fused_matches_reference() {
        let (g, z, el, er) = setup(91);
        let f = 16;
        let gpu = Gpu::new(GpuSpec::a100_40gb());
        let dy = DeviceBuffer::<f32>::zeros(g.num_vertices() * f);
        let dalpha = DeviceBuffer::<f32>::zeros(g.nnz());
        FusedGatAttention::new(Arc::clone(&g), 0.2)
            .run(
                &gpu,
                &DeviceBuffer::from_slice(&z),
                &DeviceBuffer::from_slice(&el),
                &DeviceBuffer::from_slice(&er),
                f,
                &dy,
                Some(&dalpha),
            )
            .unwrap();
        let (y_ref, alpha_ref) = fused_gat_reference(&g, &z, &el, &er, f, 0.2);
        reference::assert_close(&dy.to_vec(), &y_ref, 1e-3);
        reference::assert_close(&dalpha.to_vec(), &alpha_ref, 1e-3);
    }

    #[test]
    fn attention_rows_sum_to_one() {
        let (g, z, el, er) = setup(92);
        let f = 16;
        let gpu = Gpu::new(GpuSpec::a100_40gb());
        let dy = DeviceBuffer::<f32>::zeros(g.num_vertices() * f);
        let dalpha = DeviceBuffer::<f32>::zeros(g.nnz());
        FusedGatAttention::new(Arc::clone(&g), 0.2)
            .run(
                &gpu,
                &DeviceBuffer::from_slice(&z),
                &DeviceBuffer::from_slice(&el),
                &DeviceBuffer::from_slice(&er),
                f,
                &dy,
                Some(&dalpha),
            )
            .unwrap();
        let alpha = dalpha.to_vec();
        for r in 0..g.csr.num_rows() {
            let range = g.csr.row_range(r);
            if range.is_empty() {
                continue;
            }
            let s: f32 = range.map(|e| alpha[e]).sum();
            assert!((s - 1.0).abs() < 1e-4, "row {r}: α sums to {s}");
        }
    }

    #[test]
    fn long_rows_recompute_without_cache() {
        // A hub row longer than the logit cache still computes correctly.
        let mut edges: Vec<(u32, u32)> = (1..700u32).map(|c| (0, c)).collect();
        edges.push((1, 2));
        let g = Arc::new(GraphData::new(Coo::from_edge_list(&EdgeList::new(
            700, edges,
        ))));
        let n = g.num_vertices();
        let f = 8;
        let z: Vec<f32> = (0..n * f).map(|i| (i % 9) as f32 * 0.1).collect();
        let el: Vec<f32> = (0..n).map(|i| (i % 3) as f32 * 0.1).collect();
        let er: Vec<f32> = (0..n).map(|i| (i % 4) as f32 * 0.1).collect();
        let gpu = Gpu::new(GpuSpec::a100_40gb());
        let dy = DeviceBuffer::<f32>::zeros(n * f);
        FusedGatAttention::new(Arc::clone(&g), 0.2)
            .run(
                &gpu,
                &DeviceBuffer::from_slice(&z),
                &DeviceBuffer::from_slice(&el),
                &DeviceBuffer::from_slice(&er),
                f,
                &dy,
                None,
            )
            .unwrap();
        let (y_ref, _) = fused_gat_reference(&g, &z, &el, &er, f, 0.2);
        reference::assert_close(&dy.to_vec(), &y_ref, 1e-3);
    }

    #[test]
    fn no_global_edge_tensor_traffic_without_alpha_out() {
        // The fusion payoff: skipping alpha_out removes |E| global stores.
        let (g, z, el, er) = setup(93);
        let f = 16;
        let gpu = Gpu::new(GpuSpec::a100_40gb());
        let run = |alpha: Option<&DeviceBuffer<f32>>| {
            let dy = DeviceBuffer::<f32>::zeros(g.num_vertices() * f);
            FusedGatAttention::new(Arc::clone(&g), 0.2)
                .run(
                    &gpu,
                    &DeviceBuffer::from_slice(&z),
                    &DeviceBuffer::from_slice(&el),
                    &DeviceBuffer::from_slice(&er),
                    f,
                    &dy,
                    alpha,
                )
                .unwrap()
        };
        let dalpha = DeviceBuffer::<f32>::zeros(g.nnz());
        let with = run(Some(&dalpha));
        let without = run(None);
        assert!(without.stats.write_bytes < with.stats.write_bytes);
    }
}
