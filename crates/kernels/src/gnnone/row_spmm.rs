//! Row-sequential CSR SpMM for the serving path.
//!
//! The throughput kernels ([`GnnOneSpmm`](crate::gnnone::GnnOneSpmm),
//! [`GnnOneCsrSpmm`](crate::gnnone::GnnOneCsrSpmm)) split work by NZE
//! span, so a row that straddles a span boundary is accumulated as
//! several partials combined with `atomicAdd` — fast, but the combine
//! order (and therefore the float rounding) depends on where the row
//! lands in the global NZE layout. Serving needs the opposite trade:
//! **`y[r]` must be a pure function of row `r`'s adjacency alone**, so a
//! micro-batched launch is bitwise-identical to per-request execution.
//!
//! This kernel is the [`CsrRows`] (one warp per row) instantiation of the
//! shared two-stage pipeline — the same vertex-centric shape the fused
//! GAT softmax forces — with a feature-parallel running accumulation
//! walked strictly in CSR order. No atomics, no cross-warp combines:
//! every output row is written exactly once by its owning warp. The
//! native arm inherits the provided row-split path, which already
//! guarantees the same property across thread counts.

use std::sync::Arc;

use gnnone_sim::{
    engine::LaunchError, DeviceBuffer, Gpu, KernelReport, LaneArr, WarpCtx, WARP_SIZE,
};

use crate::geometry::GroupGeometry;
use crate::gnnone::config::GnnOneConfig;
use crate::gnnone::pipeline::{CsrRows, Stage2Ctx, TwoStagePipeline};
use crate::gnnone::reduce::Reduction;
use crate::graph::GraphData;
use crate::traits::SpmmKernel;

/// Row-sequential SpMM over CSR: one warp per row, CSR-order accumulation.
pub struct GnnOneRowSpmm {
    graph: Arc<GraphData>,
}

impl GnnOneRowSpmm {
    /// Creates the kernel for `graph`.
    pub fn new(graph: Arc<GraphData>) -> Self {
        Self { graph }
    }
}

/// The Stage-2 reduction: `y[r] = Σ_{e ∈ row r} w[e] · x[col(e)]`,
/// accumulated edge-by-edge in CSR order per feature lane.
struct RowSeqAccum<'a> {
    cols: &'a DeviceBuffer<u32>,
    vals: &'a DeviceBuffer<f32>,
    x: &'a DeviceBuffer<f32>,
    y: &'a DeviceBuffer<f32>,
}

impl<'s> Reduction<CsrRows<'s>> for RowSeqAccum<'_> {
    // CsrRows does no Stage-1 staging; values are loaded directly below.
    const NEEDS_EDGE_VALUES: bool = false;

    fn regs_per_thread(&self, _cfg: &GnnOneConfig) -> usize {
        32
    }

    fn stage2(&self, pipe: &Stage2Ctx<'_, CsrRows<'s>>, ctx: &mut WarpCtx) {
        let f = pipe.f;
        let row = pipe.warp_id;
        let (start, end) = (pipe.span.base, pipe.span.base + pipe.span.count);
        // Feature lanes stride the row; columns and edge values arrive a
        // 32-chunk at a time (coalesced), then each NZE's gather feeds the
        // per-lane accumulator strictly in CSR order — the rounding of
        // y[row] depends only on the row's own edge list.
        for fbase in (0..f).step_by(WARP_SIZE) {
            let lanes = (f - fbase).min(WARP_SIZE);
            let mut acc = LaneArr::<f32>::default();
            for chunk_start in (start..end).step_by(WARP_SIZE) {
                let chunk = (end - chunk_start).min(WARP_SIZE);
                let cols_c = ctx.load_u32(self.cols, |l| (l < chunk).then(|| chunk_start + l));
                ctx.use_loads();
                let vals_c = ctx.load_f32(self.vals, |l| (l < chunk).then(|| chunk_start + l));
                ctx.use_loads();
                for i in 0..chunk {
                    let xc = ctx.load_f32(self.x, |l| {
                        (l < lanes).then(|| cols_c.get(i) as usize * f + fbase + l)
                    });
                    ctx.compute(1);
                    for l in 0..lanes {
                        acc.set(l, acc.get(l) + vals_c.get(i) * xc.get(l));
                    }
                }
            }
            ctx.store_f32(self.y, |l| {
                (l < lanes).then(|| (row * f + fbase + l, acc.get(l)))
            });
        }
    }
}

impl SpmmKernel for GnnOneRowSpmm {
    fn graph(&self) -> &GraphData {
        &self.graph
    }

    fn name(&self) -> &'static str {
        "GnnOne-RowSeq"
    }

    fn format(&self) -> &'static str {
        "CSR"
    }

    fn run(
        &self,
        gpu: &Gpu,
        edge_vals: &DeviceBuffer<f32>,
        x: &DeviceBuffer<f32>,
        f: usize,
        y: &DeviceBuffer<f32>,
    ) -> Result<KernelReport, LaunchError> {
        let pipeline = TwoStagePipeline::new(
            CsrRows::new(&self.graph.d_csr_offsets, self.graph.num_vertices()),
            RowSeqAccum {
                cols: &self.graph.d_csr_cols,
                vals: edge_vals,
                x,
                y,
            },
            f,
            GroupGeometry::feature_parallel(f),
            GnnOneConfig::default(),
            "GnnOne-RowSeq-SpMM",
        );
        gpu.try_launch(&pipeline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnone_sim::GpuSpec;
    use gnnone_sparse::formats::Coo;
    use gnnone_sparse::{gen, reference};

    fn features(n: usize, f: usize) -> Vec<f32> {
        (0..n * f)
            .map(|i| ((i * 31 % 17) as f32 - 8.0) * 0.3)
            .collect()
    }

    #[test]
    fn row_seq_spmm_matches_reference() {
        let el = gen::rmat(7, 600, gen::GRAPH500_PROBS, 5).symmetrize();
        let g = Arc::new(GraphData::new(Coo::from_edge_list(&el)));
        let f = 20;
        let x = features(g.coo.num_cols(), f);
        let w: Vec<f32> = (0..g.nnz())
            .map(|e| ((e % 7) as f32 - 3.0) * 0.25)
            .collect();
        let dy = DeviceBuffer::<f32>::zeros(g.num_vertices() * f);
        GnnOneRowSpmm::new(Arc::clone(&g))
            .run(
                &Gpu::new(GpuSpec::a100_40gb()),
                &DeviceBuffer::from_slice(&w),
                &DeviceBuffer::from_slice(&x),
                f,
                &dy,
            )
            .unwrap();
        let expected = reference::spmm_csr(&g.csr, &w, &x, f);
        reference::assert_close(&dy.to_vec(), &expected, 1e-4);
    }

    /// The serving contract: a row extracted into a rectangular 1-row
    /// graph produces the bitwise-identical output row.
    #[test]
    fn row_output_is_independent_of_batch_context() {
        let el = gen::rmat(6, 400, gen::GRAPH500_PROBS, 8).symmetrize();
        let g = Arc::new(GraphData::new(Coo::from_edge_list(&el)));
        let n = g.coo.num_cols();
        let f = 12;
        let x = features(n, f);
        let w: Vec<f32> = (0..g.nnz()).map(|e| (e as f32).sin()).collect();
        let gpu = Gpu::new(GpuSpec::a100_40gb());
        let dy = DeviceBuffer::<f32>::zeros(g.num_vertices() * f);
        GnnOneRowSpmm::new(Arc::clone(&g))
            .run(
                &gpu,
                &DeviceBuffer::from_slice(&w),
                &DeviceBuffer::from_slice(&x),
                f,
                &dy,
            )
            .unwrap();
        let full = dy.to_vec();
        for row in [0usize, 3, 17, n - 1] {
            let range = g.csr.row_range(row);
            let cols: Vec<u32> = g.csr.cols()[range.clone()].to_vec();
            let vals: Vec<f32> = w[range.clone()].to_vec();
            let single = Arc::new(GraphData::new(
                Coo::try_from_sorted(1, n, vec![0; cols.len()], cols).unwrap(),
            ));
            let dy1 = DeviceBuffer::<f32>::zeros(f);
            GnnOneRowSpmm::new(single)
                .run(
                    &gpu,
                    &DeviceBuffer::from_slice(&vals),
                    &DeviceBuffer::from_slice(&x),
                    f,
                    &dy1,
                )
                .unwrap();
            assert_eq!(
                dy1.to_vec(),
                full[row * f..(row + 1) * f].to_vec(),
                "row {row} not bitwise-stable across batch contexts"
            );
        }
    }
}
