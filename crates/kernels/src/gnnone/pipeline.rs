//! The unified two-stage data-load pipeline (paper §4, Listings 1–2) as a
//! shared engine.
//!
//! The paper's central claim is that SDDMM, SpMM, and their variants
//! "differ fundamentally only in their reduction stage". This module makes
//! that claim structural: [`TwoStagePipeline`] owns
//!
//! * **Stage 1** — the balanced, edge-parallel NZE load into shared memory
//!   (Listing 1), supplied by an [`NzeSource`]: COO ids ([`CooNzes`]),
//!   derived-row CSR ([`CsrNzes`]), or row-per-warp CSR spans
//!   ([`CsrRows`]);
//! * **Stage 2** — the symbiotic thread scheduler (Listing 2): thread
//!   groups sized by the feature length, `float4`/`float3` vector loads,
//!   and Consecutive/Round-robin NZE assignment,
//!
//! and is parameterized by a [`Reduction`] — the only part that differs
//! between kernels. Every GNNOne kernel and every Fig. 8–11 ablation
//! variant in this crate is a thin instantiation of this pipeline; each
//! ablation toggle ([`GnnOneConfig`]) lives in exactly one place.
//!
//! The simulated instruction streams are bit-for-bit those of the original
//! per-kernel implementations: sources and reductions replay the exact
//! [`WarpCtx`] call sequences, so cycle, sector, and atomic statistics are
//! unchanged (CI's golden-parity job enforces this on the Table 1 smoke
//! graphs).

use gnnone_sim::{DeviceBuffer, KernelResources, LaneArr, WarpCtx, WarpKernel, WARP_SIZE};

use crate::geometry::GroupGeometry;
use crate::gnnone::config::{GnnOneConfig, Schedule};
use crate::gnnone::reduce::Reduction;

/// Stage-2 geometry selection shared by every pipeline instantiation:
/// vector loads and feature-sized thread groups under `vectorize` (the
/// "+Float4" step of Fig. 8), the vanilla feature-parallel layout
/// otherwise.
pub fn stage2_geometry(cfg: &GnnOneConfig, f: usize) -> GroupGeometry {
    if cfg.vectorize {
        GroupGeometry::gnnone(f)
    } else {
        GroupGeometry::feature_parallel(f)
    }
}

/// The contiguous run of NZEs one warp owns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WarpSpan {
    /// Global index of the first NZE.
    pub base: usize,
    /// NZEs in the span (> 0 whenever the warp runs).
    pub count: usize,
}

/// One Stage-2 fetch: the NZE ids (and edge values, when the reduction
/// asked for them) assigned to every lane's thread group this iteration.
#[derive(Clone, Copy, Default)]
pub struct NzeBatch {
    /// Row id per lane (all lanes of a group see the group's NZE).
    pub rows: LaneArr<u32>,
    /// Column id per lane.
    pub cols: LaneArr<u32>,
    /// Edge value per lane; default-zero unless `needs_vals` was set.
    pub vals: LaneArr<f32>,
}

/// Where Stage 1 gets its NZEs from and how it stages them.
///
/// A source knows how to partition the matrix across warps (`grid_warps` /
/// `span`), how many shared-memory words its staging uses, and how to run
/// the Stage-1 staging loop itself. Sources that also resolve per-NZE ids
/// for Stage 2 implement [`FetchNzes`].
pub trait NzeSource {
    /// Per-warp bookkeeping produced by Stage 1 and consumed by fetches
    /// (e.g. the first row bracketing a CSR warp's span).
    type State: Copy;

    /// Warps needed to cover the source.
    fn grid_warps(&self, cfg: &GnnOneConfig) -> usize;

    /// Resolves the warp's NZE span. Edge-split sources compute it
    /// arithmetically; row-split sources load it (charged to `ctx`).
    /// `None` skips the warp (an empty row).
    fn span(&self, warp_id: usize, cfg: &GnnOneConfig, ctx: &mut WarpCtx) -> Option<WarpSpan>;

    /// Shared-memory words one warp's staging occupies.
    fn shared_words_per_warp(&self, cfg: &GnnOneConfig, needs_vals: bool) -> usize;

    /// Stage 1: the balanced, coalesced staging loop (Listing 1).
    fn stage1(
        &self,
        ctx: &mut WarpCtx,
        cfg: &GnnOneConfig,
        span: WarpSpan,
        needs_vals: bool,
    ) -> Self::State;
}

/// Sources whose Stage 2 walks individual NZEs through the symbiotic
/// scheduler (edge-split sources). Row-per-warp sources like [`CsrRows`]
/// skip this: their reduction iterates the span directly.
pub trait FetchNzes: NzeSource + Sized {
    /// Fetches the NZE ids (and values) for Stage-2 iteration `j` — from
    /// the shared-memory cache under `data_reuse`, or straight from global
    /// memory (the hidden re-fetch cost DGL pays) otherwise.
    fn fetch(
        &self,
        pipe: &Stage2Ctx<'_, Self>,
        ctx: &mut WarpCtx,
        j: usize,
        needs_vals: bool,
    ) -> NzeBatch;
}

/// Everything a [`Reduction`] needs to run Stage 2 for one warp.
pub struct Stage2Ctx<'a, S: NzeSource> {
    source: &'a S,
    /// Warp id of this launch slot (for row-split sources, the row).
    pub warp_id: usize,
    /// Warp bookkeeping produced by Stage 1.
    pub state: S::State,
    /// Thread-group geometry (from [`stage2_geometry`]).
    pub geo: GroupGeometry,
    /// The instantiation's configuration.
    pub cfg: GnnOneConfig,
    /// Feature length.
    pub f: usize,
    /// The warp's NZE span.
    pub span: WarpSpan,
}

impl<S: NzeSource> Stage2Ctx<'_, S> {
    /// NZEs each thread group iterates (`cache_size / groups`).
    #[inline]
    pub fn per_group(&self) -> usize {
        self.cfg.cache_size / self.geo.groups_per_warp
    }

    /// Local NZE index assigned to group `g` on iteration `j` under the
    /// configured schedule (Listing 2's assignment policy, Fig. 10).
    #[inline]
    pub fn e_local(&self, g: usize, j: usize) -> usize {
        match self.cfg.schedule {
            Schedule::Consecutive => g * self.per_group() + j,
            Schedule::RoundRobin => j * self.geo.groups_per_warp + g,
        }
    }

    /// Whether group `g` has an NZE on iteration `j`.
    #[inline]
    pub fn group_active(&self, g: usize, j: usize) -> bool {
        self.e_local(g, j) < self.span.count
    }

    /// Whether lane `l`'s group has an NZE on iteration `j`.
    #[inline]
    pub fn lane_active(&self, l: usize, j: usize) -> bool {
        self.group_active(self.geo.split_lane(l).0, j)
    }

    /// Whether every group ran out of NZEs (the Stage-2 loop's early exit).
    pub fn all_idle(&self, j: usize) -> bool {
        (0..self.geo.groups_per_warp).all(|g| !self.group_active(g, j))
    }
}

impl<S: FetchNzes> Stage2Ctx<'_, S> {
    /// Fetches iteration `j`'s NZE batch from the source.
    pub fn fetch(&self, ctx: &mut WarpCtx, j: usize, needs_vals: bool) -> NzeBatch {
        self.source.fetch(self, ctx, j, needs_vals)
    }
}

/// The unified two-stage kernel: Stage 1 from an [`NzeSource`], Stage 2
/// driven by a [`Reduction`]. Implements [`WarpKernel`], so a pipeline
/// value *is* the launchable kernel.
pub struct TwoStagePipeline<S, R> {
    source: S,
    reduction: R,
    f: usize,
    geo: GroupGeometry,
    cfg: GnnOneConfig,
    name: &'static str,
}

impl<S: NzeSource, R: Reduction<S>> TwoStagePipeline<S, R> {
    /// Assembles a pipeline. `name` is the simulator-visible kernel name
    /// (figure label); `geo` usually comes from [`stage2_geometry`].
    pub fn new(
        source: S,
        reduction: R,
        f: usize,
        geo: GroupGeometry,
        cfg: GnnOneConfig,
        name: &'static str,
    ) -> Self {
        cfg.validate();
        Self {
            source,
            reduction,
            f,
            geo,
            cfg,
            name,
        }
    }
}

impl<S: NzeSource + Sync, R: Reduction<S> + Sync> WarpKernel for TwoStagePipeline<S, R> {
    fn resources(&self) -> KernelResources {
        let threads_per_cta = 256;
        let warps_per_cta = threads_per_cta / 32;
        KernelResources {
            threads_per_cta,
            regs_per_thread: self.reduction.regs_per_thread(&self.cfg),
            shared_bytes_per_cta: warps_per_cta
                * 4
                * (self
                    .source
                    .shared_words_per_warp(&self.cfg, R::NEEDS_EDGE_VALUES)
                    + self.reduction.shared_words_per_warp(&self.cfg)),
        }
    }

    fn grid_warps(&self) -> usize {
        self.source.grid_warps(&self.cfg)
    }

    fn name(&self) -> &str {
        self.name
    }

    fn run_warp(&self, warp_id: usize, ctx: &mut WarpCtx) {
        let Some(span) = self.source.span(warp_id, &self.cfg, ctx) else {
            return;
        };
        let state = self
            .source
            .stage1(ctx, &self.cfg, span, R::NEEDS_EDGE_VALUES);
        let pipe = Stage2Ctx {
            source: &self.source,
            warp_id,
            state,
            geo: self.geo,
            cfg: self.cfg,
            f: self.f,
            span,
        };
        self.reduction.stage2(&pipe, ctx);
    }
}

// ---------------------------------------------------------------------------
// COO source
// ---------------------------------------------------------------------------

/// COO NZEs: row and column ids are direct 4-byte loads (the format the
/// paper standardizes on). Stage 1 caches ids (and edge values when the
/// reduction needs them) under `data_reuse`; without it Stage 2 re-fetches
/// from global memory per thread group.
///
/// Shared layout per warp: rows at `0`, cols at `cache_size`, values (if
/// staged) at `2 * cache_size`.
pub struct CooNzes<'a> {
    rows: &'a DeviceBuffer<u32>,
    cols: &'a DeviceBuffer<u32>,
    vals: Option<&'a DeviceBuffer<f32>>,
    nnz: usize,
}

impl<'a> CooNzes<'a> {
    /// Source over COO ids only (SDDMM-family reductions).
    pub fn new(rows: &'a DeviceBuffer<u32>, cols: &'a DeviceBuffer<u32>, nnz: usize) -> Self {
        Self {
            rows,
            cols,
            vals: None,
            nnz,
        }
    }

    /// Source over COO ids plus per-NZE edge values (SpMM-family
    /// reductions, which set [`Reduction::NEEDS_EDGE_VALUES`]).
    pub fn with_vals(
        rows: &'a DeviceBuffer<u32>,
        cols: &'a DeviceBuffer<u32>,
        vals: &'a DeviceBuffer<f32>,
        nnz: usize,
    ) -> Self {
        Self {
            rows,
            cols,
            vals: Some(vals),
            nnz,
        }
    }
}

impl NzeSource for CooNzes<'_> {
    type State = ();

    fn grid_warps(&self, cfg: &GnnOneConfig) -> usize {
        self.nnz.div_ceil(cfg.cache_size)
    }

    fn span(&self, warp_id: usize, cfg: &GnnOneConfig, _ctx: &mut WarpCtx) -> Option<WarpSpan> {
        let base = warp_id * cfg.cache_size;
        Some(WarpSpan {
            base,
            count: cfg.cache_size.min(self.nnz - base),
        })
    }

    fn shared_words_per_warp(&self, cfg: &GnnOneConfig, needs_vals: bool) -> usize {
        if cfg.data_reuse {
            cfg.cache_size * if needs_vals { 3 } else { 2 }
        } else {
            0
        }
    }

    fn stage1(&self, ctx: &mut WarpCtx, cfg: &GnnOneConfig, span: WarpSpan, needs_vals: bool) {
        if !cfg.data_reuse {
            return;
        }
        let cache = cfg.cache_size;
        let (base, count) = (span.base, span.count);
        // All loads of the stage are independent: they overlap freely
        // before the single barrier (the CACHE_SIZE effect of Fig. 9).
        let chunks = count.div_ceil(WARP_SIZE);
        for ch in 0..chunks {
            let off = ch * WARP_SIZE;
            let active = |l: usize| off + l < count;
            let r = ctx.load_u32(self.rows, |l| active(l).then(|| base + off + l));
            let c = ctx.load_u32(self.cols, |l| active(l).then(|| base + off + l));
            let v = self
                .vals
                .filter(|_| needs_vals)
                .map(|vals| ctx.load_f32(vals, |l| active(l).then(|| base + off + l)));
            ctx.shared_store(|l| active(l).then(|| (off + l, r.get(l))));
            ctx.shared_store(|l| active(l).then(|| (cache + off + l, c.get(l))));
            if let Some(v) = v {
                ctx.shared_store(|l| active(l).then(|| (2 * cache + off + l, v.get(l))));
            }
        }
        ctx.barrier();
    }
}

impl FetchNzes for CooNzes<'_> {
    fn fetch(
        &self,
        pipe: &Stage2Ctx<'_, Self>,
        ctx: &mut WarpCtx,
        j: usize,
        needs_vals: bool,
    ) -> NzeBatch {
        let cache = pipe.cfg.cache_size;
        let geo = pipe.geo;
        let stage_vals = needs_vals && self.vals.is_some();
        if pipe.cfg.data_reuse {
            let rows: LaneArr<u32> = ctx.shared_load(|l| {
                let (g, _) = geo.split_lane(l);
                pipe.group_active(g, j).then(|| pipe.e_local(g, j))
            });
            let cols: LaneArr<u32> = ctx.shared_load(|l| {
                let (g, _) = geo.split_lane(l);
                pipe.group_active(g, j).then(|| cache + pipe.e_local(g, j))
            });
            let vals: LaneArr<f32> = if stage_vals {
                ctx.shared_load(|l| {
                    let (g, _) = geo.split_lane(l);
                    pipe.group_active(g, j)
                        .then(|| 2 * cache + pipe.e_local(g, j))
                })
            } else {
                LaneArr::default()
            };
            NzeBatch { rows, cols, vals }
        } else {
            // No caching: broadcast global loads per group, and the
            // feature loads that follow *depend* on their result, so the
            // pipeline must drain (the hidden cost DGL pays).
            let base = pipe.span.base;
            let rows = ctx.load_u32(self.rows, |l| {
                let (g, _) = geo.split_lane(l);
                pipe.group_active(g, j).then(|| base + pipe.e_local(g, j))
            });
            let cols = ctx.load_u32(self.cols, |l| {
                let (g, _) = geo.split_lane(l);
                pipe.group_active(g, j).then(|| base + pipe.e_local(g, j))
            });
            let vals: LaneArr<f32> = match self.vals.filter(|_| needs_vals) {
                Some(vbuf) => ctx.load_f32(vbuf, |l| {
                    let (g, _) = geo.split_lane(l);
                    pipe.group_active(g, j).then(|| base + pipe.e_local(g, j))
                }),
                None => LaneArr::default(),
            };
            ctx.use_loads();
            NzeBatch { rows, cols, vals }
        }
    }
}

// ---------------------------------------------------------------------------
// Derived-row CSR source
// ---------------------------------------------------------------------------

/// Plain-CSR NZEs with *derived* row ids — the format-selection trade-off
/// of §4.3/§5.4.5 made executable. Each warp binary-searches the offsets
/// array for the rows its span touches (a serial chain of dependent
/// loads), stages that offsets slice in shared memory, and resolves every
/// NZE's row against it in Stage 2. Avoiding either this search or extra
/// metadata is exactly why the paper standardizes on COO.
///
/// Shared layout per warp: cols at `0`, values at `cache_size`, the staged
/// offsets slice (a `cache_size + 2`-word ring) at `2 * cache_size`.
/// Staging is unconditional — the derived rows only exist in shared
/// memory, so this source ignores `data_reuse`.
pub struct CsrNzes<'a> {
    offsets: &'a DeviceBuffer<u32>,
    cols: &'a DeviceBuffer<u32>,
    vals: &'a DeviceBuffer<f32>,
    num_rows: usize,
    nnz: usize,
}

/// Stage-1 bookkeeping of [`CsrNzes`]: the first row bracketing the span.
#[derive(Debug, Clone, Copy)]
pub struct CsrWarpState {
    /// First row whose NZEs intersect the warp's span.
    pub row_first: usize,
}

impl<'a> CsrNzes<'a> {
    /// Source over a CSR matrix with per-NZE edge values.
    pub fn new(
        offsets: &'a DeviceBuffer<u32>,
        cols: &'a DeviceBuffer<u32>,
        vals: &'a DeviceBuffer<f32>,
        num_rows: usize,
        nnz: usize,
    ) -> Self {
        Self {
            offsets,
            cols,
            vals,
            num_rows,
            nnz,
        }
    }

    /// Charges one binary search over the offsets array: a serial chain of
    /// `⌈log₂(rows)⌉` broadcast probes, each a dependent global load — the
    /// cost COO's 4-byte row IDs avoid. Returns the functional result.
    fn device_row_search(&self, ctx: &mut WarpCtx, nze: usize) -> usize {
        let mut lo = 0usize;
        let mut hi = self.num_rows;
        while lo + 1 < hi {
            let mid = (lo + hi) / 2;
            let probe = ctx.load_u32(self.offsets, |l| (l == 0).then_some(mid));
            ctx.use_loads(); // the next probe's address depends on this one
            ctx.compute(2);
            if probe.get(0) as usize <= nze {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }
}

impl NzeSource for CsrNzes<'_> {
    type State = CsrWarpState;

    fn grid_warps(&self, cfg: &GnnOneConfig) -> usize {
        self.nnz.div_ceil(cfg.cache_size)
    }

    fn span(&self, warp_id: usize, cfg: &GnnOneConfig, _ctx: &mut WarpCtx) -> Option<WarpSpan> {
        let base = warp_id * cfg.cache_size;
        Some(WarpSpan {
            base,
            count: cfg.cache_size.min(self.nnz - base),
        })
    }

    fn shared_words_per_warp(&self, cfg: &GnnOneConfig, _needs_vals: bool) -> usize {
        // Cols + vals (8 B/NZE) plus the staged offsets slice.
        cfg.cache_size * 2 + (cfg.cache_size + 2)
    }

    fn stage1(
        &self,
        ctx: &mut WarpCtx,
        cfg: &GnnOneConfig,
        span: WarpSpan,
        _needs_vals: bool,
    ) -> CsrWarpState {
        let cache = cfg.cache_size;
        let (base, count) = (span.base, span.count);

        // ---- Row-ID derivation: the CSR surcharge --------------------
        // Two dependent binary searches bracket the rows this warp's NZE
        // span touches...
        let row_first = self.device_row_search(ctx, base);
        let row_last = self.device_row_search(ctx, base + count - 1);
        let rspan = row_last - row_first + 1;
        // ...then the offsets slice is staged in shared for per-NZE
        // resolution (capped at the warp's NZE count by construction:
        // a span of rows over `count` NZEs has at most `count` non-empties,
        // but empty rows can inflate it — those chunks load extra).
        for off in (0..rspan + 1).step_by(WARP_SIZE) {
            let active = |l: usize| off + l < rspan + 1;
            let o = ctx.load_u32(self.offsets, |l| active(l).then(|| row_first + off + l));
            ctx.shared_store(|l| {
                active(l).then(|| (cache * 2 + ((off + l) % (cache + 2)), o.get(l)))
            });
        }

        // ---- Stage 1 proper: cache cols + vals (8 B/NZE vs COO's 12) -
        for off in (0..count).step_by(WARP_SIZE) {
            let active = |l: usize| off + l < count;
            let c = ctx.load_u32(self.cols, |l| active(l).then(|| base + off + l));
            let v = ctx.load_f32(self.vals, |l| active(l).then(|| base + off + l));
            ctx.shared_store(|l| active(l).then(|| (off + l, c.get(l))));
            ctx.shared_store(|l| active(l).then(|| (cache + off + l, v.get(l))));
        }
        ctx.barrier();
        CsrWarpState { row_first }
    }
}

impl FetchNzes for CsrNzes<'_> {
    fn fetch(
        &self,
        pipe: &Stage2Ctx<'_, Self>,
        ctx: &mut WarpCtx,
        j: usize,
        _needs_vals: bool,
    ) -> NzeBatch {
        let cache = pipe.cfg.cache_size;
        let geo = pipe.geo;
        let cols: LaneArr<u32> = ctx.shared_load(|l| {
            let (g, _) = geo.split_lane(l);
            pipe.group_active(g, j).then(|| pipe.e_local(g, j))
        });
        let vals: LaneArr<f32> = ctx.shared_load(|l| {
            let (g, _) = geo.split_lane(l);
            pipe.group_active(g, j).then(|| cache + pipe.e_local(g, j))
        });
        // Row resolution: one shared probe + search arithmetic per NZE
        // (the staged offsets slice), vs COO's direct read.
        let mut rows = [0u32; WARP_SIZE];
        for (l, slot) in rows.iter_mut().enumerate() {
            let (g, _) = geo.split_lane(l);
            if pipe.group_active(g, j) {
                *slot = host_row_of(self.offsets, pipe.span.base + pipe.e_local(g, j)) as u32;
            }
        }
        // Each lane probes its row's staged offset word. The row is inside
        // [row_first, row_last], so the word is one the staging loop wrote
        // (probing by raw NZE index could land past the staged span when
        // the warp covers few rows).
        let row_first = pipe.state.row_first;
        let _probe: LaneArr<u32> = ctx.shared_load(|l| {
            let (g, _) = geo.split_lane(l);
            pipe.group_active(g, j)
                .then(|| cache * 2 + ((rows[l] as usize - row_first) % (cache + 2)))
        });
        ctx.compute(4); // branchy search steps within the slice

        NzeBatch {
            rows: LaneArr::from_fn(|l| rows[l]),
            cols,
            vals,
        }
    }
}

/// Host-side functional row lookup (device cost charged through the
/// searches/probes above).
fn host_row_of(offsets: &DeviceBuffer<u32>, nze: usize) -> usize {
    let (mut lo, mut hi) = (0usize, offsets.len() - 1);
    while lo + 1 < hi {
        let mid = (lo + hi) / 2;
        if offsets.read(mid) as usize <= nze {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

// ---------------------------------------------------------------------------
// Row-per-warp CSR source
// ---------------------------------------------------------------------------

/// Row-split CSR spans: one warp owns one row's NZE run. This is the
/// vertex-centric shape row-wise reductions (the fused GAT softmax) force;
/// the span is *loaded* (two offset words, a dependent drain) rather than
/// computed, and empty rows skip the warp. No Stage-1 staging: the owning
/// reduction passes over the span itself.
pub struct CsrRows<'a> {
    offsets: &'a DeviceBuffer<u32>,
    num_rows: usize,
}

impl<'a> CsrRows<'a> {
    /// Source over a CSR offsets array.
    pub fn new(offsets: &'a DeviceBuffer<u32>, num_rows: usize) -> Self {
        Self { offsets, num_rows }
    }
}

impl NzeSource for CsrRows<'_> {
    type State = ();

    fn grid_warps(&self, _cfg: &GnnOneConfig) -> usize {
        self.num_rows
    }

    fn span(&self, warp_id: usize, _cfg: &GnnOneConfig, ctx: &mut WarpCtx) -> Option<WarpSpan> {
        let off = ctx.load_u32(self.offsets, |l| (l < 2).then_some(warp_id + l));
        ctx.use_loads();
        let (start, end) = (off.get(0) as usize, off.get(1) as usize);
        (start != end).then(|| WarpSpan {
            base: start,
            count: end - start,
        })
    }

    fn shared_words_per_warp(&self, _cfg: &GnnOneConfig, _needs_vals: bool) -> usize {
        0
    }

    fn stage1(&self, _ctx: &mut WarpCtx, _cfg: &GnnOneConfig, _span: WarpSpan, _needs_vals: bool) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coo_grid_covers_every_nze() {
        let rows = DeviceBuffer::from_slice(&vec![0u32; 300]);
        let cols = DeviceBuffer::from_slice(&vec![0u32; 300]);
        let src = CooNzes::new(&rows, &cols, 300);
        let cfg = GnnOneConfig::default();
        // 300 NZEs at 128 per warp → 3 warps; the tail warp is ragged.
        assert_eq!(src.grid_warps(&cfg), 3);
        let small = GnnOneConfig {
            cache_size: 32,
            ..Default::default()
        };
        assert_eq!(src.grid_warps(&small), 10);
    }

    #[test]
    fn shared_words_match_paper_layouts() {
        let rows = DeviceBuffer::from_slice(&[0u32; 32]);
        let cols = DeviceBuffer::from_slice(&[0u32; 32]);
        let vals = DeviceBuffer::from_slice(&[0.0f32; 32]);
        let cfg = GnnOneConfig::default();
        // SDDMM stages ids only (8 B/NZE), SpMM adds edge values (12 B/NZE).
        let coo = CooNzes::new(&rows, &cols, 32);
        assert_eq!(coo.shared_words_per_warp(&cfg, false), 256);
        let coo_v = CooNzes::with_vals(&rows, &cols, &vals, 32);
        assert_eq!(coo_v.shared_words_per_warp(&cfg, true), 384);
        // No caching at all without data-reuse.
        let no_reuse = GnnOneConfig::ablation_baseline();
        assert_eq!(coo.shared_words_per_warp(&no_reuse, false), 0);
        // CSR: cols + vals + the offsets ring, regardless of data_reuse.
        let offsets = DeviceBuffer::from_slice(&[0u32; 33]);
        let csr = CsrNzes::new(&offsets, &cols, &vals, 32, 32);
        assert_eq!(csr.shared_words_per_warp(&cfg, true), 128 * 3 + 2);
    }

    #[test]
    fn schedule_assignment_matches_listing2() {
        let rows = DeviceBuffer::from_slice(&vec![0u32; 128]);
        let cols = DeviceBuffer::from_slice(&vec![0u32; 128]);
        let src = CooNzes::new(&rows, &cols, 128);
        let mk = |schedule| Stage2Ctx {
            source: &src,
            warp_id: 0,
            state: (),
            geo: GroupGeometry::gnnone(32), // 4 groups
            cfg: GnnOneConfig {
                schedule,
                ..Default::default()
            },
            f: 32,
            span: WarpSpan {
                base: 0,
                count: 128,
            },
        };
        let cons = mk(Schedule::Consecutive);
        assert_eq!(cons.per_group(), 32);
        assert_eq!(cons.e_local(0, 0), 0);
        assert_eq!(cons.e_local(1, 0), 32); // contiguous block per group
        assert_eq!(cons.e_local(1, 1), 33);
        let rr = mk(Schedule::RoundRobin);
        assert_eq!(rr.e_local(0, 0), 0);
        assert_eq!(rr.e_local(1, 0), 1); // dealt round-robin
        assert_eq!(rr.e_local(0, 1), 4);
    }
}
