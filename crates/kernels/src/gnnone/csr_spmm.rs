//! GNNOne's SpMM ported to plain CSR — the format-selection trade-off of
//! §4.3/§5.4.5 made executable.
//!
//! The unified design "can fit in any format if we can quickly locate the
//! row and column ID from each non-zero element". On COO the row ID is one
//! coalesced 4-byte load; on plain CSR it must be *derived*: each warp
//! binary-searches the offsets array for the rows its NZE span touches
//! (a serial chain of dependent loads), stages that offsets slice in
//! shared memory, and resolves every NZE's row against it. Avoiding either
//! this search or extra metadata (which would make CSR a custom format) is
//! exactly why the paper standardizes on COO. The `ext_format_tradeoff`
//! bench quantifies the gap.
//!
//! The kernel is the [`CsrNzes`] × [`RowAccum`] instantiation of the
//! shared [`TwoStagePipeline`] — the reduction is *identical* to the COO
//! SpMM's; only the NZE source (and its row-derivation surcharge) differs,
//! which is the unified design's format claim in code.

use std::sync::Arc;

use gnnone_sim::{engine::LaunchError, DeviceBuffer, Gpu, KernelReport};

use crate::analysis::{summaries, AccessSummary, ExecModel};
use crate::gnnone::config::GnnOneConfig;
use crate::gnnone::pipeline::{CsrNzes, TwoStagePipeline};
use crate::gnnone::reduce::RowAccum;
use crate::graph::GraphData;
use crate::traits::SpmmKernel;

/// GNNOne-structured SpMM over plain CSR (feature-parallel Stage 2 with
/// register accumulation per resolved row — the same running-reduction
/// idea, driven by searched row IDs).
pub struct GnnOneCsrSpmm {
    graph: Arc<GraphData>,
}

impl GnnOneCsrSpmm {
    /// Creates the kernel for `graph`.
    pub fn new(graph: Arc<GraphData>) -> Self {
        Self { graph }
    }
}

impl SpmmKernel for GnnOneCsrSpmm {
    fn graph(&self) -> &GraphData {
        &self.graph
    }

    fn name(&self) -> &'static str {
        "GnnOne-CSR"
    }

    fn format(&self) -> &'static str {
        "CSR"
    }

    fn run(
        &self,
        gpu: &Gpu,
        edge_vals: &DeviceBuffer<f32>,
        x: &DeviceBuffer<f32>,
        f: usize,
        y: &DeviceBuffer<f32>,
    ) -> Result<KernelReport, LaunchError> {
        // The paper's default knobs: 128-NZE cache, Consecutive, float4.
        let cfg = GnnOneConfig::default();
        let pipeline = TwoStagePipeline::new(
            CsrNzes::new(
                &self.graph.d_csr_offsets,
                &self.graph.d_csr_cols,
                edge_vals,
                self.graph.num_vertices(),
                self.graph.nnz(),
            ),
            RowAccum { x, y },
            f,
            crate::geometry::GroupGeometry::gnnone(f),
            cfg,
            "GnnOne-CSR-SpMM",
        );
        gpu.try_launch(&pipeline)
    }

    fn access_summary(&self, f: usize, model: ExecModel) -> Option<AccessSummary> {
        let cfg = GnnOneConfig::default();
        Some(match model {
            ExecModel::Sim => summaries::gnnone_csr_spmm(self.name(), &self.graph, &cfg, f),
            ExecModel::Native => summaries::native_row_out(
                self.name(),
                "spmm",
                &self.graph,
                &cfg,
                f,
                summaries::spmm_reads(),
            ),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gnnone::{GnnOneConfig, GnnOneSpmm};
    use gnnone_sim::GpuSpec;
    use gnnone_sparse::formats::Coo;
    use gnnone_sparse::gen;
    use gnnone_sparse::reference;

    fn check(g: &Arc<GraphData>, f: usize) -> KernelReport {
        let x: Vec<f32> = (0..g.coo.num_cols() * f)
            .map(|i| ((i * 19 % 13) as f32 - 6.0) * 0.2)
            .collect();
        let w: Vec<f32> = (0..g.nnz()).map(|e| ((e % 5) as f32 - 2.0) * 0.4).collect();
        let dy = DeviceBuffer::<f32>::zeros(g.coo.num_rows() * f);
        let r = GnnOneCsrSpmm::new(Arc::clone(g))
            .run(
                &Gpu::new(GpuSpec::a100_40gb()),
                &DeviceBuffer::from_slice(&w),
                &DeviceBuffer::from_slice(&x),
                f,
                &dy,
            )
            .unwrap();
        let expected = reference::spmm_csr(&g.csr, &w, &x, f);
        reference::assert_close(&dy.to_vec(), &expected, 1e-3);
        r
    }

    #[test]
    fn correct_paper_dims() {
        let el = gen::rmat(7, 700, gen::GRAPH500_PROBS, 151).symmetrize();
        let g = Arc::new(GraphData::new(Coo::from_edge_list(&el)));
        for f in [6, 16, 32, 64] {
            check(&g, f);
        }
    }

    #[test]
    fn coo_beats_csr_variant_on_saturated_device() {
        // §5.4.5: the 4-byte COO row ID is cheaper than deriving rows.
        let el = gen::rmat(11, 16_000, gen::GRAPH500_PROBS, 152).symmetrize();
        let g = Arc::new(GraphData::new(Coo::from_edge_list(&el)));
        let f = 32;
        let x = DeviceBuffer::from_slice(&vec![1.0f32; g.coo.num_cols() * f]);
        let w = DeviceBuffer::from_slice(&vec![1.0f32; g.nnz()]);
        let dy = DeviceBuffer::<f32>::zeros(g.coo.num_rows() * f);
        let gpu = Gpu::new(GpuSpec::tiny());
        let coo = GnnOneSpmm::new(Arc::clone(&g), GnnOneConfig::default())
            .run(&gpu, &w, &x, f, &dy)
            .unwrap();
        let csr = GnnOneCsrSpmm::new(Arc::clone(&g))
            .run(&gpu, &w, &x, f, &dy)
            .unwrap();
        assert!(
            csr.cycles > coo.cycles,
            "CSR variant {} !> COO {}",
            csr.cycles,
            coo.cycles
        );
    }

    #[test]
    fn csr_variant_reads_fewer_topology_bytes_but_more_instructions() {
        let el = gen::rmat(9, 3000, gen::GRAPH500_PROBS, 153).symmetrize();
        let g = Arc::new(GraphData::new(Coo::from_edge_list(&el)));
        let f = 16;
        let x = DeviceBuffer::from_slice(&vec![1.0f32; g.coo.num_cols() * f]);
        let w = DeviceBuffer::from_slice(&vec![1.0f32; g.nnz()]);
        let dy = DeviceBuffer::<f32>::zeros(g.coo.num_rows() * f);
        let gpu = Gpu::new(GpuSpec::a100_40gb());
        let coo = GnnOneSpmm::new(Arc::clone(&g), GnnOneConfig::default())
            .run(&gpu, &w, &x, f, &dy)
            .unwrap();
        let csr = GnnOneCsrSpmm::new(Arc::clone(&g))
            .run(&gpu, &w, &x, f, &dy)
            .unwrap();
        // The trade-off, itemized: more exposed stall (serial searches)…
        assert!(csr.stats.total_mem_stall_cycles > coo.stats.total_mem_stall_cycles);
        // …in exchange for not requesting the 4-byte row ID per NZE.
        assert!(
            csr.stats.read_useful_bytes < coo.stats.read_useful_bytes,
            "CSR useful {} !< COO useful {}",
            csr.stats.read_useful_bytes,
            coo.stats.read_useful_bytes
        );
    }
}
