//! GNNOne's SpMM ported to plain CSR — the format-selection trade-off of
//! §4.3/§5.4.5 made executable.
//!
//! The unified design "can fit in any format if we can quickly locate the
//! row and column ID from each non-zero element". On COO the row ID is one
//! coalesced 4-byte load; on plain CSR it must be *derived*: each warp
//! binary-searches the offsets array for the rows its NZE span touches
//! (a serial chain of dependent loads), stages that offsets slice in
//! shared memory, and resolves every NZE's row against it. Avoiding either
//! this search or extra metadata (which would make CSR a custom format) is
//! exactly why the paper standardizes on COO. The `ext_format_tradeoff`
//! bench quantifies the gap.

use std::sync::Arc;

use gnnone_sim::{
    engine::LaunchError, DeviceBuffer, Gpu, KernelReport, KernelResources, LaneArr, WarpCtx,
    WarpKernel, WARP_SIZE,
};

use crate::graph::GraphData;
use crate::traits::SpmmKernel;

/// NZEs per warp, as in the COO kernel's default Stage 1.
const CACHE: usize = 128;

/// GNNOne-structured SpMM over plain CSR (feature-parallel Stage 2 with
/// register accumulation per resolved row — the same running-reduction
/// idea, driven by searched row IDs).
pub struct GnnOneCsrSpmm {
    graph: Arc<GraphData>,
}

impl GnnOneCsrSpmm {
    /// Creates the kernel for `graph`.
    pub fn new(graph: Arc<GraphData>) -> Self {
        Self { graph }
    }
}

impl SpmmKernel for GnnOneCsrSpmm {
    fn name(&self) -> &'static str {
        "GnnOne-CSR"
    }

    fn format(&self) -> &'static str {
        "CSR"
    }

    fn run(
        &self,
        gpu: &Gpu,
        edge_vals: &DeviceBuffer<f32>,
        x: &DeviceBuffer<f32>,
        f: usize,
        y: &DeviceBuffer<f32>,
    ) -> Result<KernelReport, LaunchError> {
        let launch = CsrLaunch {
            offsets: &self.graph.d_csr_offsets,
            cols: &self.graph.d_csr_cols,
            vals: edge_vals,
            x,
            y,
            num_rows: self.graph.num_vertices(),
            nnz: self.graph.nnz(),
            f,
        };
        gpu.try_launch(&launch)
    }
}

struct CsrLaunch<'a> {
    offsets: &'a DeviceBuffer<u32>,
    cols: &'a DeviceBuffer<u32>,
    vals: &'a DeviceBuffer<f32>,
    x: &'a DeviceBuffer<f32>,
    y: &'a DeviceBuffer<f32>,
    num_rows: usize,
    nnz: usize,
    f: usize,
}

impl CsrLaunch<'_> {
    /// Charges one binary search over the offsets array: a serial chain of
    /// `⌈log₂(rows)⌉` broadcast probes, each a dependent global load — the
    /// cost COO's 4-byte row IDs avoid. Returns the functional result.
    fn device_row_search(&self, ctx: &mut WarpCtx, nze: usize) -> usize {
        let mut lo = 0usize;
        let mut hi = self.num_rows;
        while lo + 1 < hi {
            let mid = (lo + hi) / 2;
            let probe = ctx.load_u32(self.offsets, |l| (l == 0).then_some(mid));
            ctx.use_loads(); // the next probe's address depends on this one
            ctx.compute(2);
            if probe.get(0) as usize <= nze {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }
}

impl WarpKernel for CsrLaunch<'_> {
    fn resources(&self) -> KernelResources {
        KernelResources {
            threads_per_cta: 256,
            regs_per_thread: 42,
            // Cols + vals (8 B/NZE) plus the staged offsets slice.
            shared_bytes_per_cta: (256 / 32) * (CACHE * 8 + (CACHE + 2) * 4),
        }
    }

    fn grid_warps(&self) -> usize {
        self.nnz.div_ceil(CACHE)
    }

    fn name(&self) -> &str {
        "GnnOne-CSR-SpMM"
    }

    fn run_warp(&self, warp_id: usize, ctx: &mut WarpCtx) {
        let f = self.f;
        let base = warp_id * CACHE;
        let count = CACHE.min(self.nnz - base);

        // ---- Row-ID derivation: the CSR surcharge --------------------
        // Two dependent binary searches bracket the rows this warp's NZE
        // span touches...
        let row_first = self.device_row_search(ctx, base);
        let row_last = self.device_row_search(ctx, base + count - 1);
        let span = row_last - row_first + 1;
        // ...then the offsets slice is staged in shared for per-NZE
        // resolution (capped at the warp's NZE count by construction:
        // a span of rows over `count` NZEs has at most `count` non-empties,
        // but empty rows can inflate it — those chunks load extra).
        for off in (0..span + 1).step_by(WARP_SIZE) {
            let active = |l: usize| off + l < span + 1;
            let o = ctx.load_u32(self.offsets, |l| active(l).then(|| row_first + off + l));
            ctx.shared_store(|l| {
                active(l).then(|| (CACHE * 2 + ((off + l) % (CACHE + 2)), o.get(l)))
            });
        }

        // ---- Stage 1: cache cols + vals (8 B/NZE — less than COO's 12)
        for off in (0..count).step_by(WARP_SIZE) {
            let active = |l: usize| off + l < count;
            let c = ctx.load_u32(self.cols, |l| active(l).then(|| base + off + l));
            let v = ctx.load_f32(self.vals, |l| active(l).then(|| base + off + l));
            ctx.shared_store(|l| active(l).then(|| (off + l, c.get(l))));
            ctx.shared_store(|l| active(l).then(|| (CACHE + off + l, v.get(l))));
        }
        ctx.barrier();

        // ---- Stage 2: thread groups with running reduction ----------
        let geo = crate::geometry::GroupGeometry::gnnone(f);
        let ng = geo.groups_per_warp;
        let vw = geo.vec_width;
        let per_group = CACHE / ng;

        for pass in 0..geo.passes {
            let fbase = pass * geo.group_size * vw;
            let mut acc = [LaneArr::<f32>::default(); 4];
            let mut open_row: [Option<u32>; WARP_SIZE] = [None; WARP_SIZE];
            for j in 0..per_group {
                let e_local = |g: usize| g * per_group + j;
                let group_active = |g: usize| e_local(g) < count;
                if (0..ng).all(|g| !group_active(g)) {
                    break;
                }
                let cols_l: LaneArr<u32> = ctx.shared_load(|l| {
                    let (g, _) = geo.split_lane(l);
                    group_active(g).then(|| e_local(g))
                });
                let vals_l: LaneArr<f32> = ctx.shared_load(|l| {
                    let (g, _) = geo.split_lane(l);
                    group_active(g).then(|| CACHE + e_local(g))
                });
                // Row resolution: one shared probe + search arithmetic per
                // NZE (the staged offsets slice), vs COO's direct read.
                let mut rows_l = [0u32; WARP_SIZE];
                for l in 0..WARP_SIZE {
                    let (g, _) = geo.split_lane(l);
                    if group_active(g) {
                        rows_l[l] = host_row_of(self.offsets, base + e_local(g)) as u32;
                    }
                }
                // Each lane probes its row's staged offset word. The row is
                // inside [row_first, row_last], so the word is one the
                // staging loop wrote (probing by raw NZE index could land
                // past the staged span when the warp covers few rows).
                let _probe: LaneArr<u32> = ctx.shared_load(|l| {
                    let (g, _) = geo.split_lane(l);
                    group_active(g)
                        .then(|| CACHE * 2 + ((rows_l[l] as usize - row_first) % (CACHE + 2)))
                });
                ctx.compute(4); // branchy search steps within the slice

                // Row-split flush, as in the COO kernel.
                let mut flush_row: [Option<u32>; WARP_SIZE] = [None; WARP_SIZE];
                let mut any = false;
                for g in 0..ng {
                    if !group_active(g) {
                        continue;
                    }
                    let row = rows_l[g * geo.group_size];
                    if let Some(open) = open_row[g] {
                        if open != row {
                            flush_row[g] = Some(open);
                            any = true;
                        }
                    }
                    open_row[g] = Some(row);
                }
                if any {
                    flush(ctx, &geo, f, fbase, self.y, &flush_row, &mut acc);
                }

                let xv = ctx.load_f32xw(vw, self.x, |l| {
                    let (g, t) = geo.split_lane(l);
                    let k = fbase + t * vw;
                    (group_active(g) && k < f).then(|| cols_l.get(l) as usize * f + k)
                });
                ctx.compute(vw as u64);
                for l in 0..WARP_SIZE {
                    let (g, t) = geo.split_lane(l);
                    let k = fbase + t * vw;
                    if group_active(g) && k < f {
                        for kk in 0..vw {
                            acc[kk].set(l, acc[kk].get(l) + vals_l.get(l) * xv[kk].get(l));
                        }
                    }
                }
            }
            let mut flush_row: [Option<u32>; WARP_SIZE] = [None; WARP_SIZE];
            flush_row[..ng].copy_from_slice(&open_row[..ng]);
            if flush_row.iter().any(|r| r.is_some()) {
                flush(ctx, &geo, f, fbase, self.y, &flush_row, &mut acc);
            }
        }
    }
}

fn flush(
    ctx: &mut WarpCtx,
    geo: &crate::geometry::GroupGeometry,
    f: usize,
    fbase: usize,
    y: &DeviceBuffer<f32>,
    flush_row: &[Option<u32>; WARP_SIZE],
    acc: &mut [LaneArr<f32>; 4],
) {
    let vw = geo.vec_width;
    ctx.atomic_add_f32_vec(vw, y, |l| {
        let (g, t) = geo.split_lane(l);
        let k0 = fbase + t * vw;
        match flush_row[g] {
            Some(row) if k0 < f => {
                let vals = [acc[0].get(l), acc[1].get(l), acc[2].get(l), acc[3].get(l)];
                Some((row as usize * f + k0, vals))
            }
            _ => None,
        }
    });
    for a in acc.iter_mut() {
        for l in 0..WARP_SIZE {
            let (g, _) = geo.split_lane(l);
            if flush_row[g].is_some() {
                a.set(l, 0.0);
            }
        }
    }
}

/// Host-side functional row lookup (device cost charged through the
/// searches/probes above).
fn host_row_of(offsets: &DeviceBuffer<u32>, nze: usize) -> usize {
    let (mut lo, mut hi) = (0usize, offsets.len() - 1);
    while lo + 1 < hi {
        let mid = (lo + hi) / 2;
        if offsets.read(mid) as usize <= nze {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gnnone::{GnnOneConfig, GnnOneSpmm};
    use gnnone_sim::GpuSpec;
    use gnnone_sparse::formats::Coo;
    use gnnone_sparse::gen;
    use gnnone_sparse::reference;

    fn check(g: &Arc<GraphData>, f: usize) -> KernelReport {
        let x: Vec<f32> = (0..g.coo.num_cols() * f)
            .map(|i| ((i * 19 % 13) as f32 - 6.0) * 0.2)
            .collect();
        let w: Vec<f32> = (0..g.nnz()).map(|e| ((e % 5) as f32 - 2.0) * 0.4).collect();
        let dy = DeviceBuffer::<f32>::zeros(g.coo.num_rows() * f);
        let r = GnnOneCsrSpmm::new(Arc::clone(g))
            .run(
                &Gpu::new(GpuSpec::a100_40gb()),
                &DeviceBuffer::from_slice(&w),
                &DeviceBuffer::from_slice(&x),
                f,
                &dy,
            )
            .unwrap();
        let expected = reference::spmm_csr(&g.csr, &w, &x, f);
        reference::assert_close(&dy.to_vec(), &expected, 1e-3);
        r
    }

    #[test]
    fn correct_paper_dims() {
        let el = gen::rmat(7, 700, gen::GRAPH500_PROBS, 151).symmetrize();
        let g = Arc::new(GraphData::new(Coo::from_edge_list(&el)));
        for f in [6, 16, 32, 64] {
            check(&g, f);
        }
    }

    #[test]
    fn coo_beats_csr_variant_on_saturated_device() {
        // §5.4.5: the 4-byte COO row ID is cheaper than deriving rows.
        let el = gen::rmat(11, 16_000, gen::GRAPH500_PROBS, 152).symmetrize();
        let g = Arc::new(GraphData::new(Coo::from_edge_list(&el)));
        let f = 32;
        let x = DeviceBuffer::from_slice(&vec![1.0f32; g.coo.num_cols() * f]);
        let w = DeviceBuffer::from_slice(&vec![1.0f32; g.nnz()]);
        let dy = DeviceBuffer::<f32>::zeros(g.coo.num_rows() * f);
        let gpu = Gpu::new(GpuSpec::tiny());
        let coo = GnnOneSpmm::new(Arc::clone(&g), GnnOneConfig::default())
            .run(&gpu, &w, &x, f, &dy)
            .unwrap();
        let csr = GnnOneCsrSpmm::new(Arc::clone(&g))
            .run(&gpu, &w, &x, f, &dy)
            .unwrap();
        assert!(
            csr.cycles > coo.cycles,
            "CSR variant {} !> COO {}",
            csr.cycles,
            coo.cycles
        );
    }

    #[test]
    fn csr_variant_reads_fewer_topology_bytes_but_more_instructions() {
        let el = gen::rmat(9, 3000, gen::GRAPH500_PROBS, 153).symmetrize();
        let g = Arc::new(GraphData::new(Coo::from_edge_list(&el)));
        let f = 16;
        let x = DeviceBuffer::from_slice(&vec![1.0f32; g.coo.num_cols() * f]);
        let w = DeviceBuffer::from_slice(&vec![1.0f32; g.nnz()]);
        let dy = DeviceBuffer::<f32>::zeros(g.coo.num_rows() * f);
        let gpu = Gpu::new(GpuSpec::a100_40gb());
        let coo = GnnOneSpmm::new(Arc::clone(&g), GnnOneConfig::default())
            .run(&gpu, &w, &x, f, &dy)
            .unwrap();
        let csr = GnnOneCsrSpmm::new(Arc::clone(&g))
            .run(&gpu, &w, &x, f, &dy)
            .unwrap();
        // The trade-off, itemized: more exposed stall (serial searches)…
        assert!(csr.stats.total_mem_stall_cycles > coo.stats.total_mem_stall_cycles);
        // …in exchange for not requesting the 4-byte row ID per NZE.
        assert!(
            csr.stats.read_useful_bytes < coo.stats.read_useful_bytes,
            "CSR useful {} !< COO useful {}",
            csr.stats.read_useful_bytes,
            coo.stats.read_useful_bytes
        );
    }
}
