//! GNNOne SpMV (paper §5.4.5, Fig. 12): nonzero-split SpMV over COO.
//!
//! Feature length is 1, so Stage-1 caching buys nothing (§4.4: "caching in
//! Stage 1 is dropped, making our SpMV implementation one of Dalton et al.
//! or Merrill et al."). Each warp takes an equal contiguous span of NZEs,
//! loads rows/cols/values fully coalesced — paying 4 extra bytes per NZE
//! for the COO row ID — then performs a warp-level segmented reduction and
//! a boundary `atomicAdd` per distinct row. The comparison against
//! Merge-SpMV isolates exactly the paper's COO-vs-custom-format trade-off.

use std::sync::Arc;

use gnnone_sim::{
    engine::LaunchError, DeviceBuffer, Gpu, KernelReport, KernelResources, LaneArr, WarpCtx,
    WarpKernel, WARP_SIZE,
};

use crate::analysis::{summaries, AccessSummary, ExecModel};
use crate::graph::GraphData;
use crate::traits::SpmvKernel;

/// NZEs processed per warp (spanning several 32-wide iterations).
const NZE_PER_WARP: usize = 256;

/// The GNNOne nonzero-split SpMV over COO.
pub struct GnnOneSpmv {
    graph: Arc<GraphData>,
}

impl GnnOneSpmv {
    /// Creates the kernel for `graph`.
    pub fn new(graph: Arc<GraphData>) -> Self {
        Self { graph }
    }
}

impl SpmvKernel for GnnOneSpmv {
    fn graph(&self) -> &GraphData {
        &self.graph
    }

    fn name(&self) -> &'static str {
        "GnnOne"
    }

    fn format(&self) -> &'static str {
        "COO"
    }

    fn run(
        &self,
        gpu: &Gpu,
        edge_vals: &DeviceBuffer<f32>,
        x: &DeviceBuffer<f32>,
        y: &DeviceBuffer<f32>,
    ) -> Result<KernelReport, LaunchError> {
        let launch = SpmvLaunch {
            rows: &self.graph.d_coo_rows,
            cols: &self.graph.d_coo_cols,
            vals: edge_vals,
            x,
            y,
            nnz: self.graph.nnz(),
        };
        gpu.try_launch(&launch)
    }

    fn access_summary(&self, model: ExecModel) -> Option<AccessSummary> {
        Some(match model {
            ExecModel::Sim => summaries::gnnone_spmv(self.name(), &self.graph, NZE_PER_WARP as u64),
            ExecModel::Native => summaries::native_row_out(
                self.name(),
                "spmv",
                &self.graph,
                &crate::gnnone::GnnOneConfig::default(),
                1,
                summaries::spmm_reads(),
            ),
        })
    }
}

struct SpmvLaunch<'a> {
    rows: &'a DeviceBuffer<u32>,
    cols: &'a DeviceBuffer<u32>,
    vals: &'a DeviceBuffer<f32>,
    x: &'a DeviceBuffer<f32>,
    y: &'a DeviceBuffer<f32>,
    nnz: usize,
}

impl WarpKernel for SpmvLaunch<'_> {
    fn resources(&self) -> KernelResources {
        KernelResources {
            threads_per_cta: 256,
            regs_per_thread: 32,
            shared_bytes_per_cta: 0,
        }
    }

    fn grid_warps(&self) -> usize {
        self.nnz.div_ceil(NZE_PER_WARP)
    }

    fn name(&self) -> &str {
        "GnnOne-SpMV"
    }

    fn run_warp(&self, warp_id: usize, ctx: &mut WarpCtx) {
        let base = warp_id * NZE_PER_WARP;
        let count = NZE_PER_WARP.min(self.nnz - base);
        for off in (0..count).step_by(WARP_SIZE) {
            let active = |l: usize| off + l < count;
            // Coalesced loads of rows, cols, values — the "4 extra bytes"
            // of COO are loaded by all lanes in parallel, no broadcast or
            // search as custom formats need.
            let rows = ctx.load_u32(self.rows, |l| active(l).then(|| base + off + l));
            let cols = ctx.load_u32(self.cols, |l| active(l).then(|| base + off + l));
            let vals = ctx.load_f32(self.vals, |l| active(l).then(|| base + off + l));
            // The gather of x depends on the loaded column IDs.
            ctx.use_loads();
            let xv = ctx.load_f32(self.x, |l| active(l).then(|| cols.get(l) as usize));
            ctx.compute(1);
            let prod = vals.zip_with(&xv, |v, x| v * x);

            // Warp-level segmented inclusive scan by row: after log2(32)
            // shuffle rounds, the *last* lane of each row segment holds the
            // segment sum.
            let mut scan = prod;
            let mut delta = 1;
            while delta < WARP_SIZE {
                let shifted = shfl_up(ctx, &scan, delta);
                scan = LaneArr::from_fn(|l| {
                    if l >= delta && rows.get(l - delta) == rows.get(l) && active(l) {
                        scan.get(l) + shifted.get(l)
                    } else {
                        scan.get(l)
                    }
                });
                delta *= 2;
            }

            // Boundary lanes (last of each row segment) flush atomically.
            ctx.atomic_add_f32(self.y, |l| {
                if !active(l) {
                    return None;
                }
                let is_boundary =
                    !active(l + 1) || l + 1 >= WARP_SIZE || rows.get(l + 1) != rows.get(l);
                is_boundary.then(|| (rows.get(l) as usize, scan.get(l)))
            });
        }
    }
}

/// `__shfl_up_sync` built from the ctx's shuffle-down primitive semantics:
/// lane `l` receives the value of lane `l - delta` (own value when the
/// source is out of range). Costed identically to a down-shuffle round.
fn shfl_up(ctx: &mut WarpCtx, vals: &LaneArr<f32>, delta: usize) -> LaneArr<f32> {
    // Reverse, shuffle down, reverse: same exchange pattern and cost.
    let rev = LaneArr::from_fn(|l| vals.get(WARP_SIZE - 1 - l));
    let down = ctx.shfl_down_f32(&rev, delta, WARP_SIZE);
    LaneArr::from_fn(|l| down.get(WARP_SIZE - 1 - l))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnone_sim::GpuSpec;
    use gnnone_sparse::formats::{Coo, EdgeList};
    use gnnone_sparse::gen;
    use gnnone_sparse::reference;

    fn gpu() -> Gpu {
        Gpu::new(GpuSpec::a100_40gb())
    }

    fn check(coo: Coo) {
        let g = Arc::new(GraphData::new(coo));
        let x: Vec<f32> = (0..g.coo.num_cols())
            .map(|i| ((i * 7 % 11) as f32 - 5.0) * 0.3)
            .collect();
        let w: Vec<f32> = (0..g.nnz()).map(|e| ((e % 5) as f32 - 2.0) * 0.7).collect();
        let dy = DeviceBuffer::<f32>::zeros(g.coo.num_rows());
        GnnOneSpmv::new(Arc::clone(&g))
            .run(
                &gpu(),
                &DeviceBuffer::from_slice(&w),
                &DeviceBuffer::from_slice(&x),
                &dy,
            )
            .unwrap();
        let expected = reference::spmv_csr(&g.csr, &w, &x);
        reference::assert_close(&dy.to_vec(), &expected, 1e-4);
    }

    #[test]
    fn correct_on_random_graph() {
        let el = gen::rmat(8, 1500, gen::GRAPH500_PROBS, 17).symmetrize();
        check(Coo::from_edge_list(&el));
    }

    #[test]
    fn correct_on_single_hub() {
        // One row owning a full warp span exercises the segmented scan.
        let el = EdgeList::new(70, (1..70u32).map(|c| (0, c)).collect());
        check(Coo::from_edge_list(&el));
    }

    #[test]
    fn correct_on_diagonalish() {
        let el = EdgeList::new(100, (0..99u32).map(|i| (i, i + 1)).collect());
        check(Coo::from_edge_list(&el));
    }

    #[test]
    fn shfl_up_shifts_values() {
        let mut ctx = WarpCtx::new(gnnone_sim::TimingParams::default(), 0);
        let vals = LaneArr::from_fn(|l| l as f32);
        let up = shfl_up(&mut ctx, &vals, 1);
        assert_eq!(up.get(0), 0.0); // out of range keeps own
        assert_eq!(up.get(1), 0.0);
        assert_eq!(up.get(31), 30.0);
    }
}
