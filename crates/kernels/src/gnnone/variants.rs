//! SDDMM *variants* (paper §4.3): "GAT, GaAN, and many other GNNs also
//! invoke SDDMM variants which are naturally suited for edge-parallel
//! computation as the output tensor is at edge-level."
//!
//! [`GnnOneUAddV`] is the variant GAT's attention logits need:
//! `w[e] = el[row(e)] + er[col(e)]` — the same unified two-stage shape as
//! the dot-product SDDMM (Stage-1 NZE caching, edge-parallel balance),
//! with scalar gathers instead of feature-vector loads. It is the
//! [`CooNzes`] × [`ScalarGather`] instantiation of the shared
//! [`TwoStagePipeline`] under the scalar geometry (32 single-lane groups)
//! and Round-robin assignment, which together make each Stage-2 step a
//! full 32-NZE stride.
//!
//! [`GnnOneLoadOnly`] is the Fig. 11 load-only prototype: the SDDMM data
//! load with the compute and output dropped ([`NoReduce`]), turning the
//! paper's "data load dominates" claim into a directly measured kernel.

use std::sync::Arc;

use gnnone_sim::{engine::LaunchError, DeviceBuffer, Gpu, KernelReport};

use crate::analysis::{summaries, AccessSummary, ExecModel};
use crate::geometry::GroupGeometry;
use crate::gnnone::config::{GnnOneConfig, Schedule};
use crate::gnnone::pipeline::{stage2_geometry, CooNzes, TwoStagePipeline};
use crate::gnnone::reduce::{NoReduce, ScalarGather};
use crate::graph::GraphData;
use crate::traits::EdgeApplyKernel;

/// The `u_add_v` SDDMM variant over COO.
pub struct GnnOneUAddV {
    graph: Arc<GraphData>,
}

impl GnnOneUAddV {
    /// Creates the kernel for `graph`.
    pub fn new(graph: Arc<GraphData>) -> Self {
        Self { graph }
    }

    /// Computes `w[e] = el[row(e)] + er[col(e)]` for every NZE.
    pub fn run(
        &self,
        gpu: &Gpu,
        el: &DeviceBuffer<f32>,
        er: &DeviceBuffer<f32>,
        w: &DeviceBuffer<f32>,
    ) -> Result<KernelReport, LaunchError> {
        // Round-robin over 32 single-lane groups walks the cache in
        // coalesced 32-NZE strides — the natural shape for a scalar op.
        let cfg = GnnOneConfig {
            cache_size: 128,
            schedule: Schedule::RoundRobin,
            vectorize: false,
            data_reuse: true,
        };
        let pipeline = TwoStagePipeline::new(
            CooNzes::new(
                &self.graph.d_coo_rows,
                &self.graph.d_coo_cols,
                self.graph.nnz(),
            ),
            ScalarGather { el, er, w },
            1,
            GroupGeometry::scalar(),
            cfg,
            "GnnOne-u_add_v",
        );
        gpu.try_launch(&pipeline)
    }
}

impl EdgeApplyKernel for GnnOneUAddV {
    fn graph(&self) -> &GraphData {
        &self.graph
    }

    fn name(&self) -> &'static str {
        "GnnOne-UAddV"
    }

    fn format(&self) -> &'static str {
        "COO"
    }

    fn run(
        &self,
        gpu: &Gpu,
        el: &DeviceBuffer<f32>,
        er: &DeviceBuffer<f32>,
        w: &DeviceBuffer<f32>,
    ) -> Result<KernelReport, LaunchError> {
        GnnOneUAddV::run(self, gpu, el, er, w)
    }

    fn access_summary(&self, model: ExecModel) -> Option<AccessSummary> {
        // The same fixed config `run` launches with.
        let cfg = GnnOneConfig {
            cache_size: 128,
            schedule: Schedule::RoundRobin,
            vectorize: false,
            data_reuse: true,
        };
        Some(match model {
            ExecModel::Sim => summaries::gnnone_uaddv(self.name(), &self.graph, &cfg),
            ExecModel::Native => summaries::native_edge_out(
                self.name(),
                "u-add-v",
                &self.graph,
                &GnnOneConfig::default(),
                1,
                summaries::uaddv_reads(),
            ),
        })
    }
}

/// Load-only SDDMM prototype over COO: Stage 1 + Stage 2 fetch + both
/// feature-vector gathers, no compute, no output — the measured
/// counterpart of Fig. 11's data-load fraction.
pub struct GnnOneLoadOnly {
    graph: Arc<GraphData>,
    config: GnnOneConfig,
}

impl GnnOneLoadOnly {
    /// Creates the kernel for `graph` with `config` (the same knobs as the
    /// full SDDMM, so load-only and full kernels stay comparable).
    pub fn new(graph: Arc<GraphData>, config: GnnOneConfig) -> Self {
        config.validate();
        Self { graph, config }
    }

    /// Streams the full SDDMM data load for feature length `f` without
    /// producing output.
    pub fn run(
        &self,
        gpu: &Gpu,
        x: &DeviceBuffer<f32>,
        y: &DeviceBuffer<f32>,
        f: usize,
    ) -> Result<KernelReport, LaunchError> {
        let pipeline = TwoStagePipeline::new(
            CooNzes::new(
                &self.graph.d_coo_rows,
                &self.graph.d_coo_cols,
                self.graph.nnz(),
            ),
            NoReduce { x, y },
            f,
            stage2_geometry(&self.config, f),
            self.config,
            "GnnOne-LoadOnly",
        );
        gpu.try_launch(&pipeline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnone_sim::GpuSpec;
    use gnnone_sparse::formats::{Coo, EdgeList};
    use gnnone_sparse::gen;

    fn check(coo: Coo) {
        let g = Arc::new(GraphData::new(coo));
        let n = g.num_vertices();
        let el: Vec<f32> = (0..n).map(|i| (i % 7) as f32 * 0.5).collect();
        let er: Vec<f32> = (0..n).map(|i| (i % 5) as f32 * 0.25).collect();
        let dw = DeviceBuffer::<f32>::zeros(g.nnz());
        let r = GnnOneUAddV::new(Arc::clone(&g))
            .run(
                &Gpu::new(GpuSpec::a100_40gb()),
                &DeviceBuffer::from_slice(&el),
                &DeviceBuffer::from_slice(&er),
                &dw,
            )
            .unwrap();
        let got = dw.to_vec();
        for e in 0..g.nnz() {
            let expect = el[g.coo.rows()[e] as usize] + er[g.coo.cols()[e] as usize];
            assert!((got[e] - expect).abs() < 1e-6, "edge {e}");
        }
        // No reduction → no shuffles, no barriers beyond Stage 1's.
        assert_eq!(r.stats.shfl_rounds, 0);
        assert_eq!(r.stats.atomics, 0);
    }

    #[test]
    fn correct_on_random_graph() {
        let el = gen::rmat(8, 1200, gen::GRAPH500_PROBS, 131).symmetrize();
        check(Coo::from_edge_list(&el));
    }

    #[test]
    fn correct_on_tiny_graph() {
        check(Coo::from_edge_list(&EdgeList::new(
            3,
            vec![(0, 1), (1, 2), (2, 0)],
        )));
    }

    #[test]
    fn balanced_across_warps() {
        let el = gen::rmat(9, 4000, gen::GRAPH500_PROBS, 132).symmetrize();
        let g = Arc::new(GraphData::new(Coo::from_edge_list(&el)));
        let n = g.num_vertices();
        let buf = DeviceBuffer::from_slice(&vec![1.0f32; n]);
        let dw = DeviceBuffer::<f32>::zeros(g.nnz());
        let r = GnnOneUAddV::new(Arc::clone(&g))
            .run(&Gpu::new(GpuSpec::a100_40gb()), &buf, &buf, &dw)
            .unwrap();
        let mean = r.stats.total_solo_cycles / r.stats.warps.max(1);
        assert!(
            r.stats.max_warp_cycles < 3 * mean.max(1),
            "edge-parallel variant must be balanced: max {} mean {mean}",
            r.stats.max_warp_cycles
        );
    }

    #[test]
    fn load_only_is_cheaper_than_full_sddmm_and_writes_nothing() {
        use crate::gnnone::GnnOneSddmm;
        use crate::traits::SddmmKernel;
        let el = gen::rmat(8, 1500, gen::GRAPH500_PROBS, 133).symmetrize();
        let g = Arc::new(GraphData::new(Coo::from_edge_list(&el)));
        let n = g.num_vertices();
        let f = 32;
        let x = DeviceBuffer::from_slice(&vec![1.0f32; n * f]);
        let y = DeviceBuffer::from_slice(&vec![1.0f32; n * f]);
        let dw = DeviceBuffer::<f32>::zeros(g.nnz());
        let gpu = Gpu::new(GpuSpec::tiny());
        let load_only = GnnOneLoadOnly::new(Arc::clone(&g), GnnOneConfig::default())
            .run(&gpu, &x, &y, f)
            .unwrap();
        let full = GnnOneSddmm::new(Arc::clone(&g), GnnOneConfig::default())
            .run(&gpu, &x, &y, f, &dw)
            .unwrap();
        // The load stream is the kernel: no shuffles, no stores at all.
        assert_eq!(load_only.stats.shfl_rounds, 0);
        assert_eq!(load_only.stats.write_bytes, 0);
        // Dropping compute + reduction can only shrink the kernel.
        assert!(
            load_only.cycles <= full.cycles,
            "load-only {} !<= full {}",
            load_only.cycles,
            full.cycles
        );
        // But it still performs the full data load.
        assert!(load_only.stats.loads > 0);
    }
}
