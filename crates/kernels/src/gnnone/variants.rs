//! SDDMM *variants* (paper §4.3): "GAT, GaAN, and many other GNNs also
//! invoke SDDMM variants which are naturally suited for edge-parallel
//! computation as the output tensor is at edge-level."
//!
//! [`GnnOneUAddV`] is the variant GAT's attention logits need:
//! `w[e] = el[row(e)] + er[col(e)]` — the same unified two-stage shape as
//! the dot-product SDDMM (Stage-1 NZE caching, edge-parallel balance),
//! with scalar gathers instead of feature-vector loads.

use std::sync::Arc;

use gnnone_sim::{
    engine::LaunchError, DeviceBuffer, Gpu, KernelReport, KernelResources, WarpCtx, WarpKernel,
    WARP_SIZE,
};

use crate::graph::GraphData;

/// NZEs cached per warp (Stage 1), as in the main kernels.
const CACHE: usize = 128;

/// The `u_add_v` SDDMM variant over COO.
pub struct GnnOneUAddV {
    graph: Arc<GraphData>,
}

impl GnnOneUAddV {
    /// Creates the kernel for `graph`.
    pub fn new(graph: Arc<GraphData>) -> Self {
        Self { graph }
    }

    /// Computes `w[e] = el[row(e)] + er[col(e)]` for every NZE.
    pub fn run(
        &self,
        gpu: &Gpu,
        el: &DeviceBuffer<f32>,
        er: &DeviceBuffer<f32>,
        w: &DeviceBuffer<f32>,
    ) -> Result<KernelReport, LaunchError> {
        let launch = UAddVLaunch {
            rows: &self.graph.d_coo_rows,
            cols: &self.graph.d_coo_cols,
            el,
            er,
            w,
            nnz: self.graph.nnz(),
        };
        gpu.try_launch(&launch)
    }
}

struct UAddVLaunch<'a> {
    rows: &'a DeviceBuffer<u32>,
    cols: &'a DeviceBuffer<u32>,
    el: &'a DeviceBuffer<f32>,
    er: &'a DeviceBuffer<f32>,
    w: &'a DeviceBuffer<f32>,
    nnz: usize,
}

impl WarpKernel for UAddVLaunch<'_> {
    fn resources(&self) -> KernelResources {
        KernelResources {
            threads_per_cta: 256,
            regs_per_thread: 28,
            // Row + col IDs cached per warp.
            shared_bytes_per_cta: (256 / 32) * CACHE * 8,
        }
    }

    fn grid_warps(&self) -> usize {
        self.nnz.div_ceil(CACHE)
    }

    fn name(&self) -> &str {
        "GnnOne-u_add_v"
    }

    fn run_warp(&self, warp_id: usize, ctx: &mut WarpCtx) {
        let base = warp_id * CACHE;
        let count = CACHE.min(self.nnz - base);

        // Stage 1: balanced, coalesced NZE load into shared memory.
        for off in (0..count).step_by(WARP_SIZE) {
            let active = |l: usize| off + l < count;
            let r = ctx.load_u32(self.rows, |l| active(l).then(|| base + off + l));
            let c = ctx.load_u32(self.cols, |l| active(l).then(|| base + off + l));
            ctx.shared_store(|l| active(l).then(|| (off + l, r.get(l))));
            ctx.shared_store(|l| active(l).then(|| (CACHE + off + l, c.get(l))));
        }
        ctx.barrier();

        // Stage 2: scalar gathers of el/er per NZE — one lane per NZE, all
        // 32 lanes busy, loads pipeline freely (no reduction barrier at
        // all: the variant's output is already edge-level).
        for off in (0..count).step_by(WARP_SIZE) {
            let active = |l: usize| off + l < count;
            let r: gnnone_sim::LaneArr<u32> = ctx.shared_load(|l| active(l).then(|| off + l));
            let c: gnnone_sim::LaneArr<u32> =
                ctx.shared_load(|l| active(l).then(|| CACHE + off + l));
            let elv = ctx.load_f32(self.el, |l| active(l).then(|| r.get(l) as usize));
            let erv = ctx.load_f32(self.er, |l| active(l).then(|| c.get(l) as usize));
            ctx.compute(1);
            let sum = elv.zip_with(&erv, |a, b| a + b);
            ctx.store_f32(self.w, |l| active(l).then(|| (base + off + l, sum.get(l))));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnone_sim::GpuSpec;
    use gnnone_sparse::formats::{Coo, EdgeList};
    use gnnone_sparse::gen;

    fn check(coo: Coo) {
        let g = Arc::new(GraphData::new(coo));
        let n = g.num_vertices();
        let el: Vec<f32> = (0..n).map(|i| (i % 7) as f32 * 0.5).collect();
        let er: Vec<f32> = (0..n).map(|i| (i % 5) as f32 * 0.25).collect();
        let dw = DeviceBuffer::<f32>::zeros(g.nnz());
        let r = GnnOneUAddV::new(Arc::clone(&g))
            .run(
                &Gpu::new(GpuSpec::a100_40gb()),
                &DeviceBuffer::from_slice(&el),
                &DeviceBuffer::from_slice(&er),
                &dw,
            )
            .unwrap();
        let got = dw.to_vec();
        for e in 0..g.nnz() {
            let expect = el[g.coo.rows()[e] as usize] + er[g.coo.cols()[e] as usize];
            assert!((got[e] - expect).abs() < 1e-6, "edge {e}");
        }
        // No reduction → no shuffles, no barriers beyond Stage 1's.
        assert_eq!(r.stats.shfl_rounds, 0);
        assert_eq!(r.stats.atomics, 0);
    }

    #[test]
    fn correct_on_random_graph() {
        let el = gen::rmat(8, 1200, gen::GRAPH500_PROBS, 131).symmetrize();
        check(Coo::from_edge_list(&el));
    }

    #[test]
    fn correct_on_tiny_graph() {
        check(Coo::from_edge_list(&EdgeList::new(
            3,
            vec![(0, 1), (1, 2), (2, 0)],
        )));
    }

    #[test]
    fn balanced_across_warps() {
        let el = gen::rmat(9, 4000, gen::GRAPH500_PROBS, 132).symmetrize();
        let g = Arc::new(GraphData::new(Coo::from_edge_list(&el)));
        let n = g.num_vertices();
        let buf = DeviceBuffer::from_slice(&vec![1.0f32; n]);
        let dw = DeviceBuffer::<f32>::zeros(g.nnz());
        let r = GnnOneUAddV::new(Arc::clone(&g))
            .run(&Gpu::new(GpuSpec::a100_40gb()), &buf, &buf, &dw)
            .unwrap();
        let mean = r.stats.total_solo_cycles / r.stats.warps.max(1);
        assert!(
            r.stats.max_warp_cycles < 3 * mean.max(1),
            "edge-parallel variant must be balanced: max {} mean {mean}",
            r.stats.max_warp_cycles
        );
    }
}
