//! Registry-wide sanitizer sweep: run every shipped kernel under the
//! `gnnone-sim` sanitizer on one graph and collect per-kernel verdicts.
//!
//! This is the simulator's `compute-sanitizer` workflow: the sweep attaches
//! a [`Sanitizer`] to the [`Gpu`], drives every kernel in
//! [`crate::registry`] — the figure registries plus the format-study,
//! edge-apply, and fused-attention registries, so every shipped kernel is
//! reachable by name — and attributes findings to kernels by the change in
//! [`Sanitizer::finding_count`] around each launch. Inputs are generated
//! deterministically from the graph shape so two sweeps over the same
//! graph audit identical executions.
//!
//! Kernels are allowed to decline a launch ([`LaunchError`], e.g. a CTA
//! shape the spec cannot host) — that is recorded as a skip, not a finding.

use std::sync::Arc;

use gnnone_sim::engine::LaunchError;
use gnnone_sim::{DeviceBuffer, Gpu, SanitizeConfig, Sanitizer};

use crate::graph::GraphData;
use crate::registry;

/// Outcome of sweeping one kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelSweep {
    /// Kernel name (figure label, or the standalone kernel's name).
    pub name: String,
    /// Operation family: "sddmm", "spmm", "spmv", "fused", "u-add-v".
    pub op: &'static str,
    /// Storage format the kernel consumes.
    pub format: &'static str,
    /// `None` when the kernel launched; `Some(reason)` when it declined.
    pub skipped: Option<String>,
    /// Sanitizer findings attributed to this kernel's launches.
    pub findings: u64,
}

impl KernelSweep {
    /// `true` when the kernel launched and produced no findings.
    pub fn clean(&self) -> bool {
        self.skipped.is_none() && self.findings == 0
    }
}

/// Total findings across a sweep.
pub fn total_findings(sweeps: &[KernelSweep]) -> u64 {
    sweeps.iter().map(|s| s.findings).sum()
}

/// Deterministic pseudo-feature vector: bounded, non-constant, seedless.
fn features(n: usize, salt: usize) -> Vec<f32> {
    (0..n)
        .map(|i| (((i * 37 + salt * 101) % 29) as f32 - 14.0) * 0.11)
        .collect()
}

/// Sweeps every registered kernel over `graph` at feature length `f`,
/// using the sanitizer already attached to `gpu` (attaching a fresh one
/// when absent). Returns one [`KernelSweep`] per kernel driven.
pub fn sweep_graph(gpu: &Gpu, graph: &Arc<GraphData>, f: usize) -> Vec<KernelSweep> {
    let san: Arc<Sanitizer> = match gpu.sanitizer() {
        Some(s) => Arc::clone(s),
        None => gpu.enable_sanitizer(SanitizeConfig::on()),
    };
    let nv = graph.num_vertices();
    let nnz = graph.nnz();
    let dx = DeviceBuffer::from_slice(&features(nv * f, 1));
    let dz = DeviceBuffer::from_slice(&features(nv * f, 2));
    let dw = DeviceBuffer::from_slice(&features(nnz, 3));
    let del = DeviceBuffer::from_slice(&features(nv, 4));
    let der = DeviceBuffer::from_slice(&features(nv, 5));
    let dy = DeviceBuffer::<f32>::zeros(nv * f);
    let dwe = DeviceBuffer::<f32>::zeros(nnz);
    let dyv = DeviceBuffer::<f32>::zeros(nv);
    let dalpha = DeviceBuffer::<f32>::zeros(nnz);

    let mut out = Vec::new();
    let mut record = |name: &str,
                      op: &'static str,
                      format: &'static str,
                      before: u64,
                      result: Result<(), LaunchError>| {
        out.push(KernelSweep {
            name: name.to_string(),
            op,
            format,
            skipped: result.err().map(|e| e.to_string()),
            findings: san.finding_count() - before,
        });
    };

    for k in registry::sddmm_kernels(graph) {
        let before = san.finding_count();
        let r = k.run(gpu, &dx, &dz, f, &dwe).map(drop);
        record(k.name(), "sddmm", k.format(), before, r);
    }

    for k in registry::spmm_kernels(graph)
        .into_iter()
        .chain(registry::spmm_discussion_kernels(graph))
        .chain(registry::spmm_format_kernels(graph))
    {
        dy.fill_default();
        let before = san.finding_count();
        let r = k.run(gpu, &dw, &dx, f, &dy).map(drop);
        record(k.name(), "spmm", k.format(), before, r);
    }

    for k in registry::spmv_class_kernels(graph) {
        dyv.fill_default();
        let before = san.finding_count();
        let r = k.run(gpu, &dw, &del, &dyv).map(drop);
        record(k.name(), "spmv", k.format(), before, r);
    }

    for k in registry::fused_kernels(graph) {
        dy.fill_default();
        let before = san.finding_count();
        let r = k.run(gpu, &dz, &del, &der, f, &dy, Some(&dalpha)).map(drop);
        record(k.name(), "fused", k.format(), before, r);
    }

    for k in registry::edge_apply_kernels(graph) {
        let before = san.finding_count();
        let r = k.run(gpu, &del, &der, &dwe).map(drop);
        record(k.name(), "u-add-v", k.format(), before, r);
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnone_sim::GpuSpec;
    use gnnone_sparse::formats::Coo;
    use gnnone_sparse::gen;

    #[test]
    fn sweep_covers_every_family_and_is_deterministic() {
        let el = gen::erdos_renyi(64, 256, 7).symmetrize();
        let g = Arc::new(GraphData::new(Coo::from_edge_list(&el)));
        let gpu = Gpu::new(GpuSpec::tiny());
        let a = sweep_graph(&gpu, &g, 8);
        for op in ["sddmm", "spmm", "spmv", "fused", "u-add-v"] {
            assert!(a.iter().any(|s| s.op == op), "missing family {op}");
        }
        assert!(a.len() >= 12, "only {} kernels swept", a.len());
        // A second sweep on a fresh GPU/sanitizer sees identical verdicts.
        let gpu2 = Gpu::new(GpuSpec::tiny());
        let b = sweep_graph(&gpu2, &g, 8);
        assert_eq!(a, b);
    }
}
