//! Dalton et al. (IPDPS'15) nonzero-split SpMV — the *other* class of
//! nonzero-split the paper dissects in §4.4:
//!
//! > "Dalton et al. fetches NZEs and edge-features in a coalesced manner
//! > that forbids any thread-local reduction. Hence, inter-thread reduction
//! > is performed by materializing the dot product to the shared memory."
//!
//! Together with [`crate::baselines::MergeSpmv`] (the Merrill class:
//! uncoalesced fetch, thread-local reduction) this completes the paper's
//! claim that *both* nonzero-split SpMV classes are special cases of
//! GNNOne's SpMM design once Stage-1 caching is dropped.

use std::sync::Arc;

use gnnone_sim::{
    engine::LaunchError, DeviceBuffer, Gpu, KernelReport, KernelResources, LaneArr, WarpCtx,
    WarpKernel, WARP_SIZE,
};

use crate::analysis::{summaries, AccessSummary};
use crate::graph::GraphData;
use crate::traits::SpmvKernel;

/// NZEs per warp.
const NZE_PER_WARP: usize = 256;

/// Dalton-class nonzero-split SpMV over COO.
pub struct DaltonSpmv {
    graph: Arc<GraphData>,
}

impl DaltonSpmv {
    /// Creates the kernel for `graph`.
    pub fn new(graph: Arc<GraphData>) -> Self {
        Self { graph }
    }
}

impl SpmvKernel for DaltonSpmv {
    fn graph(&self) -> &GraphData {
        &self.graph
    }

    fn name(&self) -> &'static str {
        "Dalton et al."
    }

    fn format(&self) -> &'static str {
        "COO"
    }

    fn run(
        &self,
        gpu: &Gpu,
        edge_vals: &DeviceBuffer<f32>,
        x: &DeviceBuffer<f32>,
        y: &DeviceBuffer<f32>,
    ) -> Result<KernelReport, LaunchError> {
        let launch = DaltonLaunch {
            rows: &self.graph.d_coo_rows,
            cols: &self.graph.d_coo_cols,
            vals: edge_vals,
            x,
            y,
            nnz: self.graph.nnz(),
        };
        gpu.try_launch(&launch)
    }

    fn sim_access_summary(&self) -> Option<AccessSummary> {
        // Inter-thread reduction materializes products + row IDs in shared
        // memory; row segments may straddle warp boundaries, so the output
        // envelope is atomic-only.
        Some(summaries::dalton_spmv(
            self.name(),
            &self.graph,
            NZE_PER_WARP as u64,
        ))
    }
}

struct DaltonLaunch<'a> {
    rows: &'a DeviceBuffer<u32>,
    cols: &'a DeviceBuffer<u32>,
    vals: &'a DeviceBuffer<f32>,
    x: &'a DeviceBuffer<f32>,
    y: &'a DeviceBuffer<f32>,
    nnz: usize,
}

impl WarpKernel for DaltonLaunch<'_> {
    fn resources(&self) -> KernelResources {
        KernelResources {
            threads_per_cta: 256,
            regs_per_thread: 30,
            // Products + row IDs materialized in shared for the reduction.
            shared_bytes_per_cta: (256 / 32) * WARP_SIZE * 8,
        }
    }

    fn grid_warps(&self) -> usize {
        self.nnz.div_ceil(NZE_PER_WARP)
    }

    fn name(&self) -> &str {
        "Dalton-SpMV"
    }

    fn run_warp(&self, warp_id: usize, ctx: &mut WarpCtx) {
        let base = warp_id * NZE_PER_WARP;
        let count = NZE_PER_WARP.min(self.nnz - base);
        for off in (0..count).step_by(WARP_SIZE) {
            let active = |l: usize| off + l < count;
            // Fully coalesced NZE + value fetch (the class's strength)...
            let rows = ctx.load_u32(self.rows, |l| active(l).then(|| base + off + l));
            let cols = ctx.load_u32(self.cols, |l| active(l).then(|| base + off + l));
            let vals = ctx.load_f32(self.vals, |l| active(l).then(|| base + off + l));
            ctx.use_loads();
            let xv = ctx.load_f32(self.x, |l| active(l).then(|| cols.get(l) as usize));
            ctx.compute(1);
            let prod = vals.zip_with(&xv, |v, x| v * x);

            // ...but no thread-local reduction: products and row IDs go to
            // shared memory, then a segmented tree reduction walks them —
            // materialization traffic, 5 rounds, a barrier each (the cost
            // structure the paper contrasts with Merrill's class).
            ctx.shared_store(|l| active(l).then(|| (l, prod.get(l).to_bits())));
            ctx.shared_store(|l| active(l).then(|| (WARP_SIZE + l, rows.get(l))));
            ctx.barrier();
            // Segmented inclusive scan in shared memory: after round k,
            // slot l holds the sum of its row-segment's slots (l-2^k, l].
            let mut scan = prod;
            for round in 0..5 {
                let stride = 1usize << round;
                // Each round: read neighbor slot + row id, combine, store.
                let _p: LaneArr<u32> =
                    ctx.shared_load(|l| (active(l) && l >= stride).then(|| l - stride));
                let _r: LaneArr<u32> =
                    ctx.shared_load(|l| (active(l) && l >= stride).then(|| WARP_SIZE + l - stride));
                ctx.compute(2);
                scan = LaneArr::from_fn(|l| {
                    if active(l) && l >= stride && rows.get(l - stride) == rows.get(l) {
                        scan.get(l) + scan.get(l - stride)
                    } else {
                        scan.get(l)
                    }
                });
                ctx.shared_store(|l| active(l).then(|| (l, scan.get(l).to_bits())));
                ctx.barrier();
            }
            // Segment tails (last lane of each row run) flush atomically.
            ctx.atomic_add_f32(self.y, |l| {
                if !active(l) {
                    return None;
                }
                let tail = l + 1 >= WARP_SIZE || !active(l + 1) || rows.get(l + 1) != rows.get(l);
                tail.then(|| (rows.get(l) as usize, scan.get(l)))
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnone_sim::GpuSpec;
    use gnnone_sparse::formats::Coo;
    use gnnone_sparse::gen;
    use gnnone_sparse::reference;

    #[test]
    fn correct_on_random_graph() {
        let el = gen::rmat(8, 1500, gen::GRAPH500_PROBS, 121).symmetrize();
        let g = Arc::new(GraphData::new(Coo::from_edge_list(&el)));
        let x: Vec<f32> = (0..g.coo.num_cols())
            .map(|i| ((i * 3 % 7) as f32 - 3.0) * 0.4)
            .collect();
        let w: Vec<f32> = (0..g.nnz()).map(|e| ((e % 5) as f32 - 2.0) * 0.3).collect();
        let dy = DeviceBuffer::<f32>::zeros(g.coo.num_rows());
        DaltonSpmv::new(Arc::clone(&g))
            .run(
                &Gpu::new(GpuSpec::a100_40gb()),
                &DeviceBuffer::from_slice(&w),
                &DeviceBuffer::from_slice(&x),
                &dy,
            )
            .unwrap();
        let expected = reference::spmv_csr(&g.csr, &w, &x);
        reference::assert_close(&dy.to_vec(), &expected, 1e-3);
    }
}
