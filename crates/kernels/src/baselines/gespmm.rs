//! GE-SpMM (Huang et al., SC'20): vertex-parallel CSR SpMM with
//! *Coalesced Row Caching* — each warp owns one row, stages 32 column IDs
//! (and edge values) of that row in shared memory, then streams the
//! features feature-parallel with a fully thread-local register reduction.
//!
//! Pathologies the paper leans on (§4.1.1, §5.2): the cache is pinned at 32
//! and bounded by the row length (short rows under-fill it), caching is
//! **dropped entirely when f < 32**, and warp-per-row parallelism inherits
//! the straggler imbalance of power-law rows.

use std::sync::Arc;

use gnnone_sim::{
    engine::LaunchError, DeviceBuffer, Gpu, KernelReport, KernelResources, LaneArr, WarpCtx,
    WarpKernel, WARP_SIZE,
};

use crate::analysis::{summaries, AccessSummary};
use crate::graph::GraphData;
use crate::traits::SpmmKernel;

/// GE-SpMM kernel.
pub struct GeSpmm {
    graph: Arc<GraphData>,
}

impl GeSpmm {
    /// Creates the kernel for `graph`.
    pub fn new(graph: Arc<GraphData>) -> Self {
        Self { graph }
    }
}

impl SpmmKernel for GeSpmm {
    fn graph(&self) -> &GraphData {
        &self.graph
    }

    fn name(&self) -> &'static str {
        "GE-SpMM"
    }

    fn format(&self) -> &'static str {
        "CSR"
    }

    fn run(
        &self,
        gpu: &Gpu,
        edge_vals: &DeviceBuffer<f32>,
        x: &DeviceBuffer<f32>,
        f: usize,
        y: &DeviceBuffer<f32>,
    ) -> Result<KernelReport, LaunchError> {
        let launch = GeSpmmLaunch {
            offsets: &self.graph.d_csr_offsets,
            cols: &self.graph.d_csr_cols,
            vals: edge_vals,
            x,
            y,
            num_rows: self.graph.num_vertices(),
            f,
            use_caching: f >= 32,
        };
        gpu.try_launch(&launch)
    }

    fn sim_access_summary(&self, f: usize) -> Option<AccessSummary> {
        // Caching (and its shared rounds) engages only at f ≥ 32 — the
        // same predicate `run` uses.
        Some(summaries::warp_per_row_spmm(
            self.name(),
            &self.graph,
            f,
            f >= 32,
        ))
    }
}

struct GeSpmmLaunch<'a> {
    offsets: &'a DeviceBuffer<u32>,
    cols: &'a DeviceBuffer<u32>,
    vals: &'a DeviceBuffer<f32>,
    x: &'a DeviceBuffer<f32>,
    y: &'a DeviceBuffer<f32>,
    num_rows: usize,
    f: usize,
    use_caching: bool,
}

impl WarpKernel for GeSpmmLaunch<'_> {
    fn resources(&self) -> KernelResources {
        let threads_per_cta = 256;
        KernelResources {
            threads_per_cta,
            regs_per_thread: 38,
            shared_bytes_per_cta: if self.use_caching {
                // 32 NZEs per warp: col id + edge value.
                (threads_per_cta / 32) * 32 * 8
            } else {
                0
            },
        }
    }

    fn grid_warps(&self) -> usize {
        self.num_rows
    }

    fn name(&self) -> &str {
        "GE-SpMM"
    }

    fn run_warp(&self, row: usize, ctx: &mut WarpCtx) {
        let f = self.f;
        let off = ctx.load_u32(self.offsets, |l| (l < 2).then_some(row + l));
        ctx.use_loads();
        let (start, end) = (off.get(0) as usize, off.get(1) as usize);
        if start == end {
            return;
        }
        // Feature tiles of 32 (one output register per lane per tile).
        for fbase in (0..f).step_by(WARP_SIZE) {
            let lanes = (f - fbase).min(WARP_SIZE);
            let mut acc = LaneArr::<f32>::default();
            for chunk_start in (start..end).step_by(WARP_SIZE) {
                let chunk = (end - chunk_start).min(WARP_SIZE);
                let (cols_c, vals_c) = if self.use_caching {
                    // Coalesced Row Caching: stage the chunk in shared.
                    let c = ctx.load_u32(self.cols, |l| (l < chunk).then(|| chunk_start + l));
                    let v = ctx.load_f32(self.vals, |l| (l < chunk).then(|| chunk_start + l));
                    ctx.shared_store(|l| (l < chunk).then(|| (l, c.get(l))));
                    ctx.shared_store(|l| (l < chunk).then(|| (32 + l, v.get(l))));
                    ctx.barrier();
                    (c, v)
                } else {
                    (LaneArr::default(), LaneArr::default())
                };
                for i in 0..chunk {
                    let (col, val) = if self.use_caching {
                        // Broadcast from shared — one access serves the warp.
                        let c: LaneArr<u32> = ctx.shared_load(|l| (l < lanes).then_some(i));
                        let v: LaneArr<f32> = ctx.shared_load(|l| (l < lanes).then_some(32 + i));
                        // Consume the staged registers so the borrow above
                        // matches the cached load (values identical).
                        let _ = (&cols_c, &vals_c);
                        (c.get(0) as usize, v.get(0))
                    } else {
                        // f < 32: caching dropped — every NZE pays a
                        // broadcast global load with idle lanes.
                        let c = ctx.load_u32(self.cols, |l| (l < lanes).then(|| chunk_start + i));
                        let v = ctx.load_f32(self.vals, |l| (l < lanes).then(|| chunk_start + i));
                        ctx.use_loads();
                        (c.get(0) as usize, v.get(0))
                    };
                    let xv = ctx.load_f32(self.x, |l| (l < lanes).then(|| col * f + fbase + l));
                    ctx.compute(1);
                    for l in 0..lanes {
                        acc.set(l, acc.get(l) + val * xv.get(l));
                    }
                }
            }
            // Thread-local reduction finished: one coalesced store per tile.
            ctx.store_f32(self.y, |l| {
                (l < lanes).then(|| (row * f + fbase + l, acc.get(l)))
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnone_sim::GpuSpec;
    use gnnone_sparse::formats::Coo;
    use gnnone_sparse::gen;
    use gnnone_sparse::reference;

    fn gpu() -> Gpu {
        Gpu::new(GpuSpec::a100_40gb())
    }

    fn check(g: &Arc<GraphData>, f: usize) -> KernelReport {
        let x: Vec<f32> = (0..g.coo.num_cols() * f)
            .map(|i| ((i * 19 % 7) as f32 - 3.0) * 0.4)
            .collect();
        let w: Vec<f32> = (0..g.nnz()).map(|e| ((e % 6) as f32 - 2.0) * 0.3).collect();
        let dy = DeviceBuffer::<f32>::zeros(g.coo.num_rows() * f);
        let r = GeSpmm::new(Arc::clone(g))
            .run(
                &gpu(),
                &DeviceBuffer::from_slice(&w),
                &DeviceBuffer::from_slice(&x),
                f,
                &dy,
            )
            .unwrap();
        let expected = reference::spmm_csr(&g.csr, &w, &x, f);
        reference::assert_close(&dy.to_vec(), &expected, 1e-4);
        r
    }

    fn random_graph(seed: u64) -> Arc<GraphData> {
        let el = gen::rmat(7, 700, gen::GRAPH500_PROBS, seed).symmetrize();
        Arc::new(GraphData::new(Coo::from_edge_list(&el)))
    }

    #[test]
    fn correct_all_paper_dims() {
        let g = random_graph(31);
        for f in [6, 16, 32, 64] {
            check(&g, f);
        }
    }

    #[test]
    fn no_atomics_thanks_to_feature_parallel_reduction() {
        let g = random_graph(32);
        let r = check(&g, 32);
        assert_eq!(r.stats.atomics, 0);
    }

    #[test]
    fn caching_dropped_below_f32() {
        let g = random_graph(33);
        let cached = check(&g, 32);
        let uncached = check(&g, 16);
        assert!(cached.stats.shared_accesses > 0);
        assert_eq!(uncached.stats.shared_accesses, 0);
        // Without caching, every NZE pays its own col/val global loads.
        assert!(uncached.stats.loads > cached.stats.loads / 2);
    }
}
