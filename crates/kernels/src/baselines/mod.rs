//! Baseline systems from the paper's evaluation (§5, §6), re-implemented
//! from their published algorithmic descriptions on the same simulator so
//! the comparison isolates *design*, not engineering:
//!
//! | System | Kernels | Format | Strategy | Known pathology modelled |
//! |---|---|---|---|---|
//! | DGL | SDDMM | COO | edge-parallel, no caching, no reuse | — |
//! | DGL | SpMM | CSR | delegates to cuSPARSE | second format alive |
//! | dgSparse / dgNN | SDDMM | CSR | vertex-parallel, warp per row | straggler imbalance |
//! | cuSPARSE | SDDMM | CSR | thread-per-row, scalar loads | uncoalesced, errors at large \|V\| |
//! | cuSPARSE | SpMM | CSR | row-split, row batching for small f | mild imbalance |
//! | Sputnik | SDDMM | CSR | vertex-parallel, no row reuse | \|V\|² grid overflow |
//! | FeatGraph | SDDMM | CSR | vertex-parallel + feature tiling | tiling bookkeeping |
//! | FeatGraph | SpMM | CSR | thread-per-row | tuning crashes, worst baseline |
//! | GE-SpMM | SpMM | CSR | warp-per-row + 32-NZE row caching | caching dropped for f<32 |
//! | GNNAdvisor | SpMM | custom | neighbor groups + metadata search | ragged groups, idle lanes |
//! | Huang et al. | SpMM | custom | neighbor groups, leaner metadata | ragged groups |
//! | Yang et al. | SpMM | CSR | nonzero-split, register materialization | occupancy collapse |
//! | Merge-SpMV | SpMV | custom | merge path, thread-local reduction | uncoalesced NZE loads |

pub mod dalton_spmv;
pub mod dgl;
pub mod featgraph_spmm;
pub mod gespmm;
pub mod merge_spmv;
pub mod neighbor_group;
pub mod row_binning;
pub mod spmm_cusparse;
pub mod sputnik_spmm;
pub mod vp_sddmm;
pub mod yang;

pub use dalton_spmv::DaltonSpmv;
pub use dgl::{DglSddmm, DglSpmm};
pub use featgraph_spmm::FeatGraphSpmm;
pub use gespmm::GeSpmm;
pub use merge_spmv::MergeSpmv;
pub use neighbor_group::{GnnAdvisorSpmm, HuangSpmm};
pub use row_binning::RowBinningSpmm;
pub use spmm_cusparse::CusparseSpmm;
pub use sputnik_spmm::SputnikSpmm;
pub use vp_sddmm::{CusparseSddmm, DgSparseSddmm, FeatGraphSddmm, SputnikSddmm};
pub use yang::YangSpmm;
