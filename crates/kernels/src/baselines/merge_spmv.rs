//! Merge-SpMV (Merrill & Garland, SC'16): merge-path SpMV over a custom
//! format — the Fig. 12 comparator.
//!
//! The trade-off the paper dissects (§4.4): Merge-SpMV divides the merge of
//! (row offsets × NZE indices) into perfectly equal spans, and each *thread*
//! consumes a consecutive run of NZEs, enabling thread-local reduction —
//! but the per-thread runs make the NZE loads **uncoalesced** (a warp's 32
//! lanes read 32 strided positions), and the span metadata needs a narrow
//! load plus a binary search before real work starts.

use std::sync::Arc;

use gnnone_sim::{
    engine::LaunchError, DeviceBuffer, Gpu, KernelReport, KernelResources, LaneArr, WarpCtx,
    WarpKernel, WARP_SIZE,
};

use crate::analysis::{summaries, AccessSummary};
use crate::graph::GraphData;
use crate::traits::SpmvKernel;
use gnnone_sparse::custom::MergePath;

/// Merge items (rows + NZEs) consumed per thread.
const ITEMS_PER_THREAD: usize = 8;

/// Merge-SpMV kernel.
pub struct MergeSpmv {
    graph: Arc<GraphData>,
    /// Pre-processed merge-path spans (the custom format's metadata).
    spans: MergePath,
    d_span_meta: DeviceBuffer<u32>,
}

impl MergeSpmv {
    /// Creates the kernel, running the merge-path pre-processing step.
    pub fn new(graph: Arc<GraphData>) -> Self {
        let total = graph.num_vertices() + graph.nnz();
        let num_spans = total.div_ceil(WARP_SIZE * ITEMS_PER_THREAD).max(1);
        let spans = MergePath::build(&graph.csr, num_spans);
        let meta: Vec<u32> = spans
            .spans
            .iter()
            .flat_map(|s| [s.row_start, s.row_end, s.nze_start, s.nze_end])
            .collect();
        let d_span_meta = DeviceBuffer::from_slice(&meta);
        Self {
            graph,
            spans,
            d_span_meta,
        }
    }

    /// Metadata bytes of the custom format.
    pub fn metadata_bytes(&self) -> u64 {
        self.spans.metadata_bytes()
    }
}

impl SpmvKernel for MergeSpmv {
    fn graph(&self) -> &GraphData {
        &self.graph
    }

    fn name(&self) -> &'static str {
        "Merge-SpMV"
    }

    fn format(&self) -> &'static str {
        "custom"
    }

    fn run(
        &self,
        gpu: &Gpu,
        edge_vals: &DeviceBuffer<f32>,
        x: &DeviceBuffer<f32>,
        y: &DeviceBuffer<f32>,
    ) -> Result<KernelReport, LaunchError> {
        let launch = MergeLaunch {
            offsets: &self.graph.d_csr_offsets,
            cols: &self.graph.d_csr_cols,
            vals: edge_vals,
            x,
            y,
            span_meta: &self.d_span_meta,
            num_spans: self.spans.spans.len(),
        };
        gpu.try_launch(&launch)
    }

    fn sim_access_summary(&self) -> Option<AccessSummary> {
        // Span boundaries cut rows anywhere, so every output write is an
        // atomic combine (bounds-only envelope); the carry-out exchange
        // performs no shared stores in the model, only a barrier.
        Some(summaries::merge_spmv(
            self.name(),
            &self.graph,
            self.spans.spans.len(),
        ))
    }
}

struct MergeLaunch<'a> {
    offsets: &'a DeviceBuffer<u32>,
    cols: &'a DeviceBuffer<u32>,
    vals: &'a DeviceBuffer<f32>,
    x: &'a DeviceBuffer<f32>,
    y: &'a DeviceBuffer<f32>,
    span_meta: &'a DeviceBuffer<u32>,
    num_spans: usize,
}

impl WarpKernel for MergeLaunch<'_> {
    fn resources(&self) -> KernelResources {
        KernelResources {
            threads_per_cta: 256,
            regs_per_thread: 40,
            // Carry-out exchange buffer.
            shared_bytes_per_cta: (256 / 32) * WARP_SIZE * 8,
        }
    }

    fn grid_warps(&self) -> usize {
        self.num_spans
    }

    fn name(&self) -> &str {
        "Merge-SpMV"
    }

    fn run_warp(&self, span_id: usize, ctx: &mut WarpCtx) {
        // Narrow metadata load + broadcast + per-thread diagonal binary
        // search — the custom-format overhead (§5.4.5).
        let meta = ctx.load_u32(self.span_meta, |l| (l < 4).then(|| span_id * 4 + l));
        ctx.use_loads();
        ctx.barrier();
        ctx.compute(10); // binary search on the merge grid
        let nze_start = meta.get(2) as usize;
        let nze_end = meta.get(3) as usize;
        let count = nze_end - nze_start;
        if count == 0 {
            return;
        }

        // Each lane consumes a consecutive run of NZEs.
        let per_lane = count.div_ceil(WARP_SIZE);
        let lane_start = |l: usize| (nze_start + l * per_lane).min(nze_end);
        let lane_end = |l: usize| (nze_start + (l + 1) * per_lane).min(nze_end);

        // Row IDs come from walking the offsets side of the merge; the
        // device cost of that walk is the per-step offsets load plus search
        // arithmetic below. (The functional row lookup uses a host-side
        // binary search over the same data.)
        ctx.compute(8);
        let mut acc = LaneArr::<f32>::default();
        let host_offsets = self.offsets;

        for step in 0..per_lane {
            let active = |l: usize| lane_start(l) + step < lane_end(l);
            // Uncoalesced: 32 lanes at stride `per_lane` — the Merrill
            // trade-off (coalescing sacrificed for thread-local reduction).
            let col = ctx.load_u32(self.cols, |l| active(l).then(|| lane_start(l) + step));
            let val = ctx.load_f32(self.vals, |l| active(l).then(|| lane_start(l) + step));
            ctx.use_loads();
            let xv = ctx.load_f32(self.x, |l| active(l).then(|| col.get(l) as usize));
            // Each lane checks the offsets list for a row boundary.
            let rows: [u32; WARP_SIZE] = std::array::from_fn(|l| {
                if active(l) {
                    row_of_nze(host_offsets, lane_start(l) + step)
                } else {
                    0
                }
            });
            let _boundary_probe =
                ctx.load_u32(self.offsets, |l| active(l).then(|| rows[l] as usize + 1));
            ctx.use_loads();
            ctx.compute(2);

            // Accumulate, then flush lanes whose row (or lane range) ends.
            let mut flush: [Option<(usize, f32)>; WARP_SIZE] = [None; WARP_SIZE];
            for l in 0..WARP_SIZE {
                if !active(l) {
                    continue;
                }
                let e = lane_start(l) + step;
                acc.set(l, acc.get(l) + val.get(l) * xv.get(l));
                let row_end = host_offsets.read(rows[l] as usize + 1) as usize;
                if e + 1 >= row_end || e + 1 >= lane_end(l) {
                    flush[l] = Some((rows[l] as usize, acc.get(l)));
                    acc.set(l, 0.0);
                }
            }
            ctx.atomic_add_f32(self.y, |l| flush[l]);
        }
    }
}

/// Host-side functional lookup of the row owning `nze` (the device cost is
/// charged through the offsets loads and search `compute` above).
fn row_of_nze(offsets: &DeviceBuffer<u32>, nze: usize) -> u32 {
    let (mut lo, mut hi) = (0usize, offsets.len() - 1);
    while lo + 1 < hi {
        let mid = (lo + hi) / 2;
        if offsets.read(mid) as usize <= nze {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnone_sim::GpuSpec;
    use gnnone_sparse::formats::{Coo, EdgeList};
    use gnnone_sparse::gen;
    use gnnone_sparse::reference;

    fn check(coo: Coo) {
        let g = Arc::new(GraphData::new(coo));
        let x: Vec<f32> = (0..g.coo.num_cols())
            .map(|i| ((i * 3 % 13) as f32 - 6.0) * 0.4)
            .collect();
        let w: Vec<f32> = (0..g.nnz()).map(|e| ((e % 4) as f32 - 1.0) * 0.9).collect();
        let dy = DeviceBuffer::<f32>::zeros(g.coo.num_rows());
        MergeSpmv::new(Arc::clone(&g))
            .run(
                &Gpu::new(GpuSpec::a100_40gb()),
                &DeviceBuffer::from_slice(&w),
                &DeviceBuffer::from_slice(&x),
                &dy,
            )
            .unwrap();
        let expected = reference::spmv_csr(&g.csr, &w, &x);
        reference::assert_close(&dy.to_vec(), &expected, 1e-4);
    }

    #[test]
    fn correct_on_random_graph() {
        let el = gen::rmat(8, 1500, gen::GRAPH500_PROBS, 81).symmetrize();
        check(Coo::from_edge_list(&el));
    }

    #[test]
    fn correct_on_hub_graph() {
        let el = EdgeList::new(80, (1..80u32).map(|c| (0, c)).collect()).symmetrize();
        check(Coo::from_edge_list(&el));
    }

    #[test]
    fn correct_on_chain() {
        let el = EdgeList::new(200, (0..199u32).map(|i| (i, i + 1)).collect());
        check(Coo::from_edge_list(&el));
    }

    #[test]
    fn metadata_reported() {
        let el = gen::erdos_renyi(64, 256, 82).symmetrize();
        let g = Arc::new(GraphData::new(Coo::from_edge_list(&el)));
        let k = MergeSpmv::new(g);
        assert!(k.metadata_bytes() > 0);
    }
}
