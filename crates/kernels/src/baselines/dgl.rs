//! DGL's kernel pair (paper §3.1, §6): COO edge-parallel SDDMM with *no*
//! data reuse, and cuSPARSE-backed CSR SpMM — two formats alive at once.
//!
//! DGL's SDDMM gets workload balance right but proves the paper's point
//! that "workload balancing alone is only an enabling condition": without
//! NZE caching, row-feature reuse or vector loads it is even slower than
//! the vertex-parallel dgSparse. The implementation delegates to the
//! GNNOne launch machinery with the ablation-baseline configuration, which
//! the paper itself describes as "roughly mimicking the DGL SDDMM design
//! ideas" (§5.4.1).

use std::sync::Arc;

use gnnone_sim::{engine::LaunchError, DeviceBuffer, Gpu, KernelReport};

use crate::analysis::{AccessSummary, ExecModel};
use crate::baselines::spmm_cusparse::CusparseSpmm;
use crate::gnnone::{GnnOneConfig, GnnOneSddmm};
use crate::graph::GraphData;
use crate::traits::{SddmmKernel, SpmmKernel};

/// DGL SDDMM: edge-parallel COO, no caching, no reuse, one feature per lane.
pub struct DglSddmm {
    inner: GnnOneSddmm,
}

impl DglSddmm {
    /// Creates the kernel for `graph`.
    pub fn new(graph: Arc<GraphData>) -> Self {
        // Fine-grained edge parallelism: DGL assigns ~one NZE per thread
        // group rather than batching long per-warp chains, so each warp
        // handles a 32-NZE slice (the smallest multiple of the warp size).
        let config = GnnOneConfig {
            cache_size: 32,
            ..GnnOneConfig::ablation_baseline()
        };
        Self {
            inner: GnnOneSddmm::named(graph, config, "DGL"),
        }
    }
}

impl SddmmKernel for DglSddmm {
    fn graph(&self) -> &GraphData {
        self.inner.graph()
    }

    fn name(&self) -> &'static str {
        "DGL"
    }

    fn format(&self) -> &'static str {
        "COO"
    }

    fn run(
        &self,
        gpu: &Gpu,
        x: &DeviceBuffer<f32>,
        y: &DeviceBuffer<f32>,
        f: usize,
        w: &DeviceBuffer<f32>,
    ) -> Result<KernelReport, LaunchError> {
        self.inner.run(gpu, x, y, f, w)
    }

    fn sim_access_summary(&self, f: usize) -> Option<AccessSummary> {
        // Delegate to the configured GNNOne launch the kernel wraps,
        // re-labelled under the DGL system name.
        let mut s = self.inner.access_summary(f, ExecModel::Sim)?;
        s.kernel = self.name().to_string();
        Some(s)
    }
}

/// DGL SpMM: DGL "uses CuSparse for its SpMM" (§5.3) — same kernel, second
/// storage format charged to the system's memory budget.
pub struct DglSpmm {
    inner: CusparseSpmm,
}

impl DglSpmm {
    /// Creates the kernel for `graph`.
    pub fn new(graph: Arc<GraphData>) -> Self {
        Self {
            inner: CusparseSpmm::new(graph),
        }
    }
}

impl SpmmKernel for DglSpmm {
    fn graph(&self) -> &GraphData {
        self.inner.graph()
    }

    fn name(&self) -> &'static str {
        "DGL"
    }

    fn format(&self) -> &'static str {
        "CSR"
    }

    fn run(
        &self,
        gpu: &Gpu,
        edge_vals: &DeviceBuffer<f32>,
        x: &DeviceBuffer<f32>,
        f: usize,
        y: &DeviceBuffer<f32>,
    ) -> Result<KernelReport, LaunchError> {
        self.inner.run(gpu, edge_vals, x, f, y)
    }

    fn sim_access_summary(&self, f: usize) -> Option<AccessSummary> {
        // Delegate to the wrapped cuSPARSE launch, re-labelled.
        let mut s = self.inner.access_summary(f, ExecModel::Sim)?;
        s.kernel = self.name().to_string();
        Some(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnone_sim::GpuSpec;
    use gnnone_sparse::formats::Coo;
    use gnnone_sparse::gen;
    use gnnone_sparse::reference;

    #[test]
    fn dgl_sddmm_correct() {
        let el = gen::rmat(7, 500, gen::GRAPH500_PROBS, 1).symmetrize();
        let g = Arc::new(GraphData::new(Coo::from_edge_list(&el)));
        let f = 16;
        let x: Vec<f32> = (0..g.coo.num_rows() * f)
            .map(|i| (i % 9) as f32 * 0.1)
            .collect();
        let dw = DeviceBuffer::<f32>::zeros(g.nnz());
        DglSddmm::new(Arc::clone(&g))
            .run(
                &Gpu::new(GpuSpec::a100_40gb()),
                &DeviceBuffer::from_slice(&x),
                &DeviceBuffer::from_slice(&x),
                f,
                &dw,
            )
            .unwrap();
        let expected = reference::sddmm_coo(&g.coo, &x, &x, f);
        reference::assert_close(&dw.to_vec(), &expected, 1e-4);
    }

    #[test]
    fn dgl_names() {
        let el = gen::erdos_renyi(32, 64, 2).symmetrize();
        let g = Arc::new(GraphData::new(Coo::from_edge_list(&el)));
        assert_eq!(DglSddmm::new(Arc::clone(&g)).name(), "DGL");
        assert_eq!(DglSpmm::new(g).format(), "CSR");
    }
}
