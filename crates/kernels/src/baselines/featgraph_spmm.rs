//! FeatGraph SpMM: TVM-templated vertex-parallel CSR kernel.
//!
//! The paper's worst SpMM baseline (11.30× average gap, §5.2): its
//! tuning script sweeps CTA shapes and "crashes after a few combinations",
//! so only part of the schedule space is reachable and the surviving
//! schedules are thread-per-row variants with poor coalescing. We model the
//! sweep faithfully: `run` tries every candidate schedule, deterministic
//! "crashes" eliminate a subset (unlaunchable register/CTA configurations),
//! and the best surviving time is reported — exactly how the paper
//! collected its FeatGraph numbers ("though we picked the best run-time").

use std::sync::Arc;

use gnnone_sim::{
    engine::LaunchError, DeviceBuffer, Gpu, KernelReport, KernelResources, LaneArr, WarpCtx,
    WarpKernel, WARP_SIZE,
};

use crate::analysis::{summaries, AccessSummary};
use crate::graph::GraphData;
use crate::traits::SpmmKernel;

/// Candidate CTA widths the tuning script sweeps.
const CANDIDATE_CTAS: [usize; 4] = [64, 128, 256, 512];

/// FeatGraph SpMM kernel (auto-tuned thread-per-row template).
pub struct FeatGraphSpmm {
    graph: Arc<GraphData>,
}

impl FeatGraphSpmm {
    /// Creates the kernel for `graph`.
    pub fn new(graph: Arc<GraphData>) -> Self {
        Self { graph }
    }
}

impl SpmmKernel for FeatGraphSpmm {
    fn graph(&self) -> &GraphData {
        &self.graph
    }

    fn name(&self) -> &'static str {
        "FeatGraph"
    }

    fn format(&self) -> &'static str {
        "CSR"
    }

    fn run(
        &self,
        gpu: &Gpu,
        edge_vals: &DeviceBuffer<f32>,
        x: &DeviceBuffer<f32>,
        f: usize,
        y: &DeviceBuffer<f32>,
    ) -> Result<KernelReport, LaunchError> {
        let mut best: Option<KernelReport> = None;
        let mut last_err = None;
        for threads in CANDIDATE_CTAS {
            // The template instantiates more registers for wider CTAs; past
            // 256 threads the generated schedule exceeds the register file —
            // the deterministic "crash" the paper works around.
            let regs = 40 + threads / 8;
            let launch = FgLaunch {
                offsets: &self.graph.d_csr_offsets,
                cols: &self.graph.d_csr_cols,
                vals: edge_vals,
                x,
                y,
                num_rows: self.graph.num_vertices(),
                f,
                threads_per_cta: threads,
                regs_per_thread: regs,
            };
            // Each candidate writes the same result; re-running is safe
            // because the kernel overwrites rather than accumulates.
            match gpu.try_launch(&launch) {
                Ok(report) => {
                    let better = best
                        .as_ref()
                        .map(|b: &KernelReport| report.cycles < b.cycles)
                        .unwrap_or(true);
                    if better {
                        best = Some(report);
                    }
                }
                Err(e) => last_err = Some(e),
            }
        }
        best.ok_or_else(|| {
            last_err.unwrap_or(LaunchError::Unlaunchable {
                reason: "all FeatGraph schedules crashed".into(),
            })
        })
    }

    fn sim_access_summary(&self, f: usize) -> Option<AccessSummary> {
        // Every CTA candidate in the tuning sweep shares the same
        // warp-per-row access shape (only resources differ), so a single
        // launch summary covers the whole sweep. No shared-memory caching.
        Some(summaries::warp_per_row_spmm(
            self.name(),
            &self.graph,
            f,
            false,
        ))
    }
}

struct FgLaunch<'a> {
    offsets: &'a DeviceBuffer<u32>,
    cols: &'a DeviceBuffer<u32>,
    vals: &'a DeviceBuffer<f32>,
    x: &'a DeviceBuffer<f32>,
    y: &'a DeviceBuffer<f32>,
    num_rows: usize,
    f: usize,
    threads_per_cta: usize,
    regs_per_thread: usize,
}

impl WarpKernel for FgLaunch<'_> {
    fn resources(&self) -> KernelResources {
        KernelResources {
            threads_per_cta: self.threads_per_cta,
            regs_per_thread: self.regs_per_thread,
            shared_bytes_per_cta: 0,
        }
    }

    fn grid_warps(&self) -> usize {
        self.num_rows
    }

    fn name(&self) -> &str {
        "FeatGraph-SpMM"
    }

    fn run_warp(&self, row: usize, ctx: &mut WarpCtx) {
        // Warp-per-row feature-parallel schedule without any NZE caching —
        // the surviving FeatGraph template: per NZE, a broadcast col/val
        // load, a dependent gather, plus the tiling index arithmetic the
        // TVM-generated code carries.
        let f = self.f;
        if row >= self.num_rows {
            return;
        }
        let off = ctx.load_u32(self.offsets, |l| (l < 2).then_some(row + l));
        ctx.use_loads();
        let (start, end) = (off.get(0) as usize, off.get(1) as usize);
        for fbase in (0..f).step_by(WARP_SIZE) {
            let lanes = (f - fbase).min(WARP_SIZE);
            let mut acc = LaneArr::<f32>::default();
            for e in start..end {
                let col = ctx.load_u32(self.cols, |l| (l < lanes).then_some(e));
                let val = ctx.load_f32(self.vals, |l| (l < lanes).then_some(e));
                ctx.use_loads();
                let c = col.get(0) as usize;
                let xv = ctx.load_f32(self.x, |l| (l < lanes).then(|| c * f + fbase + l));
                // Tiling bookkeeping generated by the schedule.
                ctx.compute(4);
                for l in 0..lanes {
                    acc.set(l, acc.get(l) + val.get(0) * xv.get(l));
                }
            }
            ctx.store_f32(self.y, |l| {
                (l < lanes).then(|| (row * f + fbase + l, acc.get(l)))
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gnnone::{GnnOneConfig, GnnOneSpmm};
    use gnnone_sim::GpuSpec;
    use gnnone_sparse::formats::Coo;
    use gnnone_sparse::gen;
    use gnnone_sparse::reference;

    fn random_graph(seed: u64) -> Arc<GraphData> {
        let el = gen::rmat(7, 600, gen::GRAPH500_PROBS, seed).symmetrize();
        Arc::new(GraphData::new(Coo::from_edge_list(&el)))
    }

    fn check(g: &Arc<GraphData>, f: usize) -> KernelReport {
        let x: Vec<f32> = (0..g.coo.num_cols() * f)
            .map(|i| ((i * 13 % 11) as f32 - 5.0) * 0.2)
            .collect();
        let w: Vec<f32> = (0..g.nnz()).map(|e| ((e % 7) as f32 - 3.0) * 0.2).collect();
        let dy = DeviceBuffer::<f32>::zeros(g.coo.num_rows() * f);
        let r = FeatGraphSpmm::new(Arc::clone(g))
            .run(
                &Gpu::new(GpuSpec::a100_40gb()),
                &DeviceBuffer::from_slice(&w),
                &DeviceBuffer::from_slice(&x),
                f,
                &dy,
            )
            .unwrap();
        let expected = reference::spmm_csr(&g.csr, &w, &x, f);
        reference::assert_close(&dy.to_vec(), &expected, 1e-4);
        r
    }

    #[test]
    fn correct_paper_dims() {
        let g = random_graph(71);
        for f in [6, 16, 32] {
            check(&g, f);
        }
    }

    #[test]
    fn worst_spmm_baseline() {
        let g = random_graph(72);
        let f = 32;
        let fg = check(&g, f);
        let x = DeviceBuffer::from_slice(&vec![1.0f32; g.coo.num_cols() * f]);
        let w = DeviceBuffer::from_slice(&vec![1.0f32; g.nnz()]);
        let dy = DeviceBuffer::<f32>::zeros(g.coo.num_rows() * f);
        let one = GnnOneSpmm::new(Arc::clone(&g), GnnOneConfig::default())
            .run(&Gpu::new(GpuSpec::a100_40gb()), &w, &x, f, &dy)
            .unwrap();
        assert!(
            fg.cycles > 2 * one.cycles,
            "featgraph {} !> 2 × gnnone {}",
            fg.cycles,
            one.cycles
        );
    }
}
