//! cuSPARSE-style CSR SpMM (`csrmm`): a solid vendor row-split kernel.
//!
//! Modelled after the modern CsrMM algorithm with the two refinements the
//! vendor library is known for and the academic baselines lack:
//!
//! * **row splitting** — rows longer than [`ROW_CHUNK`] NZEs are split
//!   across warps (with an atomic combine), bounding the straggler that
//!   sinks plain vertex-parallel kernels on power-law graphs;
//! * **software pipelining** — column/value loads for the next NZE are
//!   issued while the current one is processed, so the dependent gather
//!   does not drain the load pipeline each iteration.
//!
//! It still lacks shared-memory NZE caching and the row batching is only
//! engaged below warp-width feature lengths, which is where GNNOne's 2.65×
//! (f = 32) and 3.57× (f = 16) gaps in Fig. 4 come from.

use std::sync::Arc;

use gnnone_sim::{
    engine::LaunchError, DeviceBuffer, Gpu, KernelReport, KernelResources, LaneArr, WarpCtx,
    WarpKernel, WARP_SIZE,
};

use crate::analysis::{summaries, AccessSummary};
use crate::graph::GraphData;
use crate::traits::SpmmKernel;

/// Maximum NZEs per warp chunk (row-split granularity).
pub const ROW_CHUNK: usize = 256;

/// One unit of warp work: a contiguous chunk of one row.
#[derive(Debug, Clone, Copy)]
struct Chunk {
    row: u32,
    start: u32,
    end: u32,
    /// Whether this row was split (needs an atomic combine).
    split: bool,
}

/// cuSPARSE-style SpMM kernel.
pub struct CusparseSpmm {
    graph: Arc<GraphData>,
    chunks: Vec<Chunk>,
}

impl CusparseSpmm {
    /// Creates the kernel for `graph` (chunking is the vendor library's
    /// internal setup work, analogous to `cusparseSpMM_preprocess`).
    pub fn new(graph: Arc<GraphData>) -> Self {
        let mut chunks = Vec::new();
        let csr = &graph.csr;
        for row in 0..csr.num_rows() {
            let range = csr.row_range(row);
            if range.is_empty() {
                continue;
            }
            let split = range.len() > ROW_CHUNK;
            let mut s = range.start;
            while s < range.end {
                let e = (s + ROW_CHUNK).min(range.end);
                chunks.push(Chunk {
                    row: row as u32,
                    start: s as u32,
                    end: e as u32,
                    split,
                });
                s = e;
            }
        }
        Self { graph, chunks }
    }
}

impl SpmmKernel for CusparseSpmm {
    fn graph(&self) -> &GraphData {
        &self.graph
    }

    fn name(&self) -> &'static str {
        "CuSparse"
    }

    fn format(&self) -> &'static str {
        "CSR"
    }

    fn run(
        &self,
        gpu: &Gpu,
        edge_vals: &DeviceBuffer<f32>,
        x: &DeviceBuffer<f32>,
        f: usize,
        y: &DeviceBuffer<f32>,
    ) -> Result<KernelReport, LaunchError> {
        // Batch several chunks per warp when f < 32 to keep lanes busy.
        let chunks_per_warp = (WARP_SIZE / f.next_power_of_two().min(WARP_SIZE)).max(1);
        let launch = CusparseSpmmLaunch {
            cols: &self.graph.d_csr_cols,
            vals: edge_vals,
            x,
            y,
            chunks: &self.chunks,
            f,
            chunks_per_warp,
        };
        gpu.try_launch(&launch)
    }

    fn sim_access_summary(&self, f: usize) -> Option<AccessSummary> {
        // Non-split chunks plain-store their whole row slice; split chunks
        // combine atomically (bounds-only envelope). Chunk batching maps
        // chunk ci to warp ci / chunks_per_warp — entries sharing a warp
        // never race by construction.
        let cpw = (WARP_SIZE / f.next_power_of_two().min(WARP_SIZE)).max(1);
        let table = self
            .chunks
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.split)
            .map(|(ci, c)| {
                let base = c.row as usize * f;
                (ci / cpw, base as u64, (base + f) as u64)
            })
            .collect();
        Some(summaries::chunked_row_spmm(
            self.name(),
            &self.graph,
            f,
            table,
            self.chunks.len().div_ceil(cpw) as u64,
        ))
    }
}

struct CusparseSpmmLaunch<'a> {
    cols: &'a DeviceBuffer<u32>,
    vals: &'a DeviceBuffer<f32>,
    x: &'a DeviceBuffer<f32>,
    y: &'a DeviceBuffer<f32>,
    chunks: &'a [Chunk],
    f: usize,
    chunks_per_warp: usize,
}

impl WarpKernel for CusparseSpmmLaunch<'_> {
    fn resources(&self) -> KernelResources {
        KernelResources {
            threads_per_cta: 256,
            regs_per_thread: 40,
            shared_bytes_per_cta: 0,
        }
    }

    fn grid_warps(&self) -> usize {
        self.chunks.len().div_ceil(self.chunks_per_warp)
    }

    fn name(&self) -> &str {
        "CuSparse-SpMM"
    }

    fn run_warp(&self, warp_id: usize, ctx: &mut WarpCtx) {
        let f = self.f;
        let cpw = self.chunks_per_warp;
        let lanes_per_chunk = WARP_SIZE / cpw;
        let base = warp_id * cpw;
        let my_chunks: Vec<Option<Chunk>> = (0..cpw)
            .map(|i| self.chunks.get(base + i).copied())
            .collect();
        let max_len = my_chunks
            .iter()
            .flatten()
            .map(|c| (c.end - c.start) as usize)
            .max()
            .unwrap_or(0);

        for fbase in (0..f).step_by(lanes_per_chunk) {
            let tile = (f - fbase).min(lanes_per_chunk);
            let mut acc = LaneArr::<f32>::default();
            for step in 0..max_len {
                let active = |l: usize| {
                    let (ci, t) = (l / lanes_per_chunk, l % lanes_per_chunk);
                    t < tile
                        && my_chunks
                            .get(ci)
                            .and_then(|c| *c)
                            .is_some_and(|c| (c.start as usize) + step < c.end as usize)
                };
                // Software-pipelined col/value loads: issued a step ahead by
                // the real kernel, so no drain between them and the gather.
                let col = ctx.load_u32(self.cols, |l| {
                    active(l).then(|| {
                        my_chunks[l / lanes_per_chunk].expect("active").start as usize + step
                    })
                });
                let val = ctx.load_f32(self.vals, |l| {
                    active(l).then(|| {
                        my_chunks[l / lanes_per_chunk].expect("active").start as usize + step
                    })
                });
                let xv = ctx.load_f32(self.x, |l| {
                    active(l).then(|| col.get(l) as usize * f + fbase + l % lanes_per_chunk)
                });
                ctx.compute(1);
                for l in 0..WARP_SIZE {
                    if active(l) {
                        acc.set(l, acc.get(l) + val.get(l) * xv.get(l));
                    }
                }
            }
            // Split rows combine atomically; whole rows store directly.
            ctx.store_f32(self.y, |l| {
                let (ci, t) = (l / lanes_per_chunk, l % lanes_per_chunk);
                match my_chunks.get(ci).and_then(|c| *c) {
                    Some(c) if !c.split && t < tile => {
                        Some((c.row as usize * f + fbase + t, acc.get(l)))
                    }
                    _ => None,
                }
            });
            ctx.atomic_add_f32(self.y, |l| {
                let (ci, t) = (l / lanes_per_chunk, l % lanes_per_chunk);
                match my_chunks.get(ci).and_then(|c| *c) {
                    Some(c) if c.split && t < tile => {
                        Some((c.row as usize * f + fbase + t, acc.get(l)))
                    }
                    _ => None,
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnone_sim::GpuSpec;
    use gnnone_sparse::formats::{Coo, EdgeList};
    use gnnone_sparse::gen;
    use gnnone_sparse::reference;

    fn check_graph(coo: Coo, f: usize) -> KernelReport {
        let g = Arc::new(GraphData::new(coo));
        let x: Vec<f32> = (0..g.coo.num_cols() * f)
            .map(|i| ((i * 23 % 9) as f32 - 4.0) * 0.2)
            .collect();
        let w: Vec<f32> = (0..g.nnz()).map(|e| ((e % 4) as f32 - 1.0) * 0.6).collect();
        let dy = DeviceBuffer::<f32>::zeros(g.coo.num_rows() * f);
        let r = CusparseSpmm::new(Arc::clone(&g))
            .run(
                &Gpu::new(GpuSpec::a100_40gb()),
                &DeviceBuffer::from_slice(&w),
                &DeviceBuffer::from_slice(&x),
                f,
                &dy,
            )
            .unwrap();
        let expected = reference::spmm_csr(&g.csr, &w, &x, f);
        reference::assert_close(&dy.to_vec(), &expected, 1e-4);
        r
    }

    fn rmat(seed: u64) -> Coo {
        Coo::from_edge_list(&gen::rmat(7, 700, gen::GRAPH500_PROBS, seed).symmetrize())
    }

    #[test]
    fn correct_all_paper_dims() {
        for f in [6, 16, 32, 64] {
            check_graph(rmat(41), f);
        }
    }

    #[test]
    fn correct_odd_dims() {
        for f in [1, 3, 5, 48] {
            check_graph(rmat(42), f);
        }
    }

    #[test]
    fn long_rows_are_split() {
        // A 1000-degree hub must not become a straggler.
        let el = EdgeList::new(1100, (1..1001u32).map(|c| (0, c)).collect());
        let r = check_graph(Coo::from_edge_list(&el), 32);
        // 1000 NZEs in chunks of 256 → ≥ 4 warps, with atomics combining.
        assert!(r.stats.atomics > 0, "split rows must combine atomically");
        let mean = r.stats.total_solo_cycles / r.stats.warps.max(1);
        assert!(
            r.stats.max_warp_cycles < 64 * mean.max(1),
            "straggler bounded: max {} mean {mean}",
            r.stats.max_warp_cycles
        );
    }

    #[test]
    fn small_f_batches_rows() {
        let coo = rmat(43);
        let g = Arc::new(GraphData::new(coo));
        let run = |f: usize| {
            let x = DeviceBuffer::from_slice(&vec![0.0f32; g.coo.num_cols() * f]);
            let w = DeviceBuffer::from_slice(&vec![0.0f32; g.nnz()]);
            let y = DeviceBuffer::<f32>::zeros(g.coo.num_rows() * f);
            CusparseSpmm::new(Arc::clone(&g))
                .run(&Gpu::new(GpuSpec::a100_40gb()), &w, &x, f, &y)
                .unwrap()
        };
        assert!(run(6).stats.warps < run(32).stats.warps);
    }
}
