//! Vertex-parallel SDDMM baselines: dgSparse, FeatGraph, Sputnik, cuSPARSE.
//!
//! All four downgrade SDDMM to a vertex-centric computation over CSR so the
//! whole GNN can live on one format (paper §1, approach 2) — inheriting the
//! workload imbalance of vertex-parallelism and, except for dgSparse and
//! FeatGraph, discarding even the free row-feature reuse. A single
//! parameterized engine implements the family; each published system is a
//! parameter point plus its own pathology.

use std::sync::Arc;

use gnnone_sim::{
    engine::LaunchError, DeviceBuffer, Gpu, KernelReport, KernelResources, LaneArr, WarpCtx,
    WarpKernel, WARP_SIZE,
};

use crate::analysis::{summaries, AccessSummary};
use crate::geometry::GroupGeometry;
use crate::graph::GraphData;
use crate::traits::SddmmKernel;

/// Parameter point of the vertex-parallel SDDMM family.
#[derive(Debug, Clone, Copy)]
struct VpParams {
    name: &'static str,
    /// Warp-per-row (false) or thread-per-row (true, cuSPARSE's design —
    /// every lane walks a different row with scalar, uncoalesced loads).
    thread_per_row: bool,
    /// Keep the row's features in registers across its NZEs.
    reuse_row_features: bool,
    /// Extra bookkeeping instructions per NZE (FeatGraph's feature-tiling
    /// index arithmetic).
    overhead_instr: u64,
    /// Fails when |V|² exceeds the device grid limit (Sputnik allocates a
    /// |V|²-shaped grid — §5.1) or when workspace indices overflow 32 bits
    /// (cuSPARSE's observed errors past |V| ≈ 2M, scaled here with the
    /// device).
    quadratic_grid: bool,
}

/// Row-chunk granularity of the warp-per-row path: long rows are processed
/// by several warps (CTA-per-row in the real kernels), bounding the
/// straggler while keeping the computation vertex-centric. SDDMM output is
/// per-edge, so splitting needs no combine step.
const ROW_CHUNK: usize = 256;

/// Warp-wide feature passes the fixed `x_regs` register file can hold;
/// features wider than `MAX_PASSES * 32` make the kernel decline.
const MAX_PASSES: usize = 8;

/// One warp's work: a contiguous chunk of one row.
#[derive(Debug, Clone, Copy)]
struct RowChunk {
    row: u32,
    start: u32,
    end: u32,
}

/// Shared implementation.
struct VpSddmm {
    graph: Arc<GraphData>,
    params: VpParams,
    chunks: Vec<RowChunk>,
}

impl VpSddmm {
    fn build(graph: Arc<GraphData>, params: VpParams) -> Self {
        let mut chunks = Vec::new();
        for row in 0..graph.csr.num_rows() {
            let range = graph.csr.row_range(row);
            if range.is_empty() {
                continue;
            }
            let mut s = range.start;
            while s < range.end {
                let e = (s + ROW_CHUNK).min(range.end);
                chunks.push(RowChunk {
                    row: row as u32,
                    start: s as u32,
                    end: e as u32,
                });
                s = e;
            }
        }
        Self {
            graph,
            params,
            chunks,
        }
    }
    fn run(
        &self,
        gpu: &Gpu,
        x: &DeviceBuffer<f32>,
        y: &DeviceBuffer<f32>,
        f: usize,
        w: &DeviceBuffer<f32>,
    ) -> Result<KernelReport, LaunchError> {
        if self.params.quadratic_grid {
            let v = self.graph.num_vertices() as u64;
            let max = gpu.spec().max_grid_ctas;
            if v.saturating_mul(v) > max {
                return Err(LaunchError::GridTooLarge {
                    requested: v.saturating_mul(v),
                    max,
                });
            }
        }
        let geo = GroupGeometry::feature_parallel(f);
        if geo.passes > MAX_PASSES {
            // The row-feature register file is fixed at MAX_PASSES warp-wide
            // passes; wider features exceed this baseline's register budget,
            // so it declines the launch (matching the paper's observation
            // that vertex-parallel baselines error out at scale).
            return Err(LaunchError::Unlaunchable {
                reason: format!(
                    "feature length {f} needs {} register passes; this \
                     vertex-parallel baseline supports {MAX_PASSES}",
                    geo.passes
                ),
            });
        }
        let launch = VpLaunch {
            offsets: &self.graph.d_csr_offsets,
            cols: &self.graph.d_csr_cols,
            x,
            y,
            w,
            num_rows: self.graph.num_vertices(),
            chunks: &self.chunks,
            f,
            geo,
            params: self.params,
        };
        gpu.try_launch(&launch)
    }
}

struct VpLaunch<'a> {
    offsets: &'a DeviceBuffer<u32>,
    cols: &'a DeviceBuffer<u32>,
    x: &'a DeviceBuffer<f32>,
    y: &'a DeviceBuffer<f32>,
    w: &'a DeviceBuffer<f32>,
    num_rows: usize,
    chunks: &'a [RowChunk],
    f: usize,
    geo: GroupGeometry,
    params: VpParams,
}

impl VpLaunch<'_> {
    /// Warp-per-row-chunk path (dgSparse / FeatGraph / Sputnik).
    fn run_warp_per_row(&self, chunk_id: usize, ctx: &mut WarpCtx) {
        let f = self.f;
        let geo = self.geo;
        let Some(chunk) = self.chunks.get(chunk_id) else {
            return;
        };
        let row = chunk.row as usize;
        // Row bounds: two broadcast loads, then an address dependency.
        let off = ctx.load_u32(self.offsets, |l| (l < 2).then_some(row + l));
        ctx.use_loads();
        let (start, end) = (chunk.start as usize, chunk.end as usize);
        let _ = off;

        let mut x_regs = [LaneArr::<f32>::default(); 8];
        let mut have_x = false;
        for e in start..end {
            // Column ID: broadcast load by the active lanes.
            let col = ctx.load_u32(self.cols, |l| (l < geo.active_lanes(0)).then_some(e));
            ctx.use_loads();
            let c = col.get(0) as usize;

            let mut partial = LaneArr::<f32>::default();
            for pass in 0..geo.passes {
                let fbase = pass * WARP_SIZE;
                let lanes = geo.active_lanes(pass);
                if !have_x || !self.params.reuse_row_features {
                    let xv = ctx.load_f32(self.x, |l| (l < lanes).then(|| row * f + fbase + l));
                    x_regs[pass] = xv;
                }
                let yv = ctx.load_f32(self.y, |l| (l < lanes).then(|| c * f + fbase + l));
                ctx.compute(1 + self.params.overhead_instr);
                for l in 0..lanes {
                    partial.set(l, partial.get(l) + x_regs[pass].get(l) * yv.get(l));
                }
            }
            have_x = true;
            // Full-warp tree reduction: 5 shuffle rounds regardless of f —
            // the cost GNNOne's thread groups cut to log2(group).
            let reduced = ctx.shfl_reduce_sum_f32(&partial, WARP_SIZE);
            ctx.store_f32(self.w, |l| (l == 0).then(|| (e, reduced.get(0))));
        }
    }

    /// Thread-per-row path (cuSPARSE): every lane owns one row and walks it
    /// with scalar loads — no coalescing, no cooperation.
    fn run_thread_per_row(&self, warp_id: usize, ctx: &mut WarpCtx) {
        let f = self.f;
        let base_row = warp_id * WARP_SIZE;
        let rows = ctx.load_u32(self.offsets, |l| {
            (base_row + l < self.num_rows).then(|| base_row + l)
        });
        let rows_end = ctx.load_u32(self.offsets, |l| {
            (base_row + l < self.num_rows).then(|| base_row + l + 1)
        });
        ctx.use_loads();
        let deg = |l: usize| (rows_end.get(l) - rows.get(l)) as usize;
        let max_deg = (0..WARP_SIZE)
            .filter(|&l| base_row + l < self.num_rows)
            .map(deg)
            .max()
            .unwrap_or(0);

        for step in 0..max_deg {
            let active = |l: usize| base_row + l < self.num_rows && step < deg(l);
            let col = ctx.load_u32(self.cols, |l| {
                active(l).then(|| rows.get(l) as usize + step)
            });
            ctx.use_loads();
            let mut acc = LaneArr::<f32>::default();
            for k in 0..f {
                // Scalar, per-lane strided loads: each lane touches its own
                // row — fully uncoalesced, the design cuSPARSE's SDDMM pays
                // one to two orders of magnitude for (§5.1).
                let xv = ctx.load_f32(self.x, |l| active(l).then(|| (base_row + l) * f + k));
                let yv = ctx.load_f32(self.y, |l| active(l).then(|| col.get(l) as usize * f + k));
                ctx.compute(1);
                acc = LaneArr::from_fn(|l| acc.get(l) + xv.get(l) * yv.get(l));
            }
            ctx.store_f32(self.w, |l| {
                active(l).then(|| (rows.get(l) as usize + step, acc.get(l)))
            });
        }
    }
}

impl WarpKernel for VpLaunch<'_> {
    fn resources(&self) -> KernelResources {
        KernelResources {
            threads_per_cta: 256,
            regs_per_thread: 36,
            shared_bytes_per_cta: 0,
        }
    }

    fn grid_warps(&self) -> usize {
        if self.params.thread_per_row {
            self.num_rows.div_ceil(WARP_SIZE)
        } else {
            self.chunks.len()
        }
    }

    fn name(&self) -> &str {
        self.params.name
    }

    fn run_warp(&self, warp_id: usize, ctx: &mut WarpCtx) {
        if self.params.thread_per_row {
            self.run_thread_per_row(warp_id, ctx);
        } else {
            self.run_warp_per_row(warp_id, ctx);
        }
    }
}

macro_rules! vp_system {
    ($(#[$doc:meta])* $ty:ident, $params:expr) => {
        $(#[$doc])*
        pub struct $ty(VpSddmm);

        impl $ty {
            /// Creates the kernel for `graph`.
            pub fn new(graph: Arc<GraphData>) -> Self {
                Self(VpSddmm::build(graph, $params))
            }
        }

        impl SddmmKernel for $ty {
            fn graph(&self) -> &GraphData {
                &self.0.graph
            }

            fn name(&self) -> &'static str {
                self.0.params.name
            }
            fn format(&self) -> &'static str {
                "CSR"
            }
            fn run(
                &self,
                gpu: &Gpu,
                x: &DeviceBuffer<f32>,
                y: &DeviceBuffer<f32>,
                f: usize,
                w: &DeviceBuffer<f32>,
            ) -> Result<KernelReport, LaunchError> {
                self.0.run(gpu, x, y, f, w)
            }

            fn sim_access_summary(&self, f: usize) -> Option<AccessSummary> {
                Some(if self.0.params.thread_per_row {
                    summaries::vp_thread_row_sddmm(self.name(), &self.0.graph, f)
                } else {
                    let table = self
                        .0
                        .chunks
                        .iter()
                        .enumerate()
                        .map(|(t, c)| (t, c.start as u64, c.end as u64))
                        .collect();
                    summaries::vp_chunk_sddmm(self.name(), &self.0.graph, f, table)
                })
            }
        }
    };
}

vp_system!(
    /// dgSparse SDDMM (used by dgNN): vertex-parallel, warp per row, with
    /// the natural row-feature reuse of vertex-centric execution.
    DgSparseSddmm,
    VpParams {
        name: "dgSparse",
        thread_per_row: false,
        reuse_row_features: true,
        overhead_instr: 0,
        quadratic_grid: false,
    }
);

vp_system!(
    /// FeatGraph SDDMM: vertex-parallel with feature tiling — row reuse but
    /// extra tiling bookkeeping per NZE.
    FeatGraphSddmm,
    VpParams {
        name: "FeatGraph",
        thread_per_row: false,
        reuse_row_features: true,
        overhead_instr: 4,
        quadratic_grid: false,
    }
);

vp_system!(
    /// Sputnik SDDMM: vertex-parallel without row-feature reuse (§6), and a
    /// |V|²-shaped grid that exceeds CUDA limits on large vertex sets (§5.1).
    SputnikSddmm,
    VpParams {
        name: "Sputnik",
        thread_per_row: false,
        reuse_row_features: false,
        overhead_instr: 2,
        quadratic_grid: true,
    }
);

vp_system!(
    /// cuSPARSE SDDMM: thread-per-row with scalar uncoalesced feature loads
    /// — "extremely slow" per the paper's measurements (§1, §5.1) — and
    /// errors once |V| outgrows its workspace indexing.
    CusparseSddmm,
    VpParams {
        name: "CuSparse",
        thread_per_row: true,
        reuse_row_features: false,
        overhead_instr: 0,
        quadratic_grid: true,
    }
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gnnone::{GnnOneConfig, GnnOneSddmm};
    use gnnone_sim::GpuSpec;
    use gnnone_sparse::formats::Coo;
    use gnnone_sparse::gen;
    use gnnone_sparse::reference;

    fn gpu() -> Gpu {
        Gpu::new(GpuSpec::a100_40gb())
    }

    fn random_graph(seed: u64) -> Arc<GraphData> {
        let el = gen::rmat(7, 700, gen::GRAPH500_PROBS, seed).symmetrize();
        Arc::new(GraphData::new(Coo::from_edge_list(&el)))
    }

    fn check(kernel: &dyn SddmmKernel, g: &Arc<GraphData>, f: usize) -> KernelReport {
        let x: Vec<f32> = (0..g.coo.num_rows() * f)
            .map(|i| ((i * 29 % 13) as f32 - 6.0) * 0.2)
            .collect();
        let yv: Vec<f32> = (0..g.coo.num_cols() * f)
            .map(|i| ((i * 41 % 11) as f32 - 5.0) * 0.3)
            .collect();
        let dw = DeviceBuffer::<f32>::zeros(g.nnz());
        let r = kernel
            .run(
                &gpu(),
                &DeviceBuffer::from_slice(&x),
                &DeviceBuffer::from_slice(&yv),
                f,
                &dw,
            )
            .unwrap();
        let expected = reference::sddmm_coo(&g.coo, &x, &yv, f);
        reference::assert_close(&dw.to_vec(), &expected, 1e-4);
        r
    }

    #[test]
    fn dgsparse_correct() {
        let g = random_graph(2);
        for f in [6, 16, 32, 64] {
            check(&DgSparseSddmm::new(Arc::clone(&g)), &g, f);
        }
    }

    #[test]
    fn featgraph_correct() {
        let g = random_graph(3);
        for f in [6, 32] {
            check(&FeatGraphSddmm::new(Arc::clone(&g)), &g, f);
        }
    }

    #[test]
    fn sputnik_correct_when_small() {
        let g = random_graph(4);
        check(&SputnikSddmm::new(Arc::clone(&g)), &g, 32);
    }

    #[test]
    fn cusparse_correct() {
        let g = random_graph(5);
        for f in [6, 32] {
            check(&CusparseSddmm::new(Arc::clone(&g)), &g, f);
        }
    }

    #[test]
    fn sputnik_grid_overflows_on_large_vertex_sets() {
        let g = random_graph(6);
        let mut spec = GpuSpec::a100_40gb();
        // Vertex count squared must exceed the grid limit.
        spec.max_grid_ctas = (g.num_vertices() as u64).pow(2) - 1;
        let x = DeviceBuffer::from_slice(&vec![0.0f32; g.num_vertices() * 8]);
        let dw = DeviceBuffer::<f32>::zeros(g.nnz());
        let err = SputnikSddmm::new(Arc::clone(&g))
            .run(&Gpu::new(spec), &x, &x, 8, &dw)
            .unwrap_err();
        assert!(matches!(err, LaunchError::GridTooLarge { .. }));
    }

    #[test]
    fn cusparse_is_much_slower_than_gnnone() {
        // The paper's one-to-two-orders gap (§5.1).
        let g = random_graph(7);
        let f = 32;
        let cus = check(&CusparseSddmm::new(Arc::clone(&g)), &g, f);
        let one = check(
            &GnnOneSddmm::new(Arc::clone(&g), GnnOneConfig::default()),
            &g,
            f,
        );
        assert!(
            cus.cycles > 5 * one.cycles,
            "cusparse {} !> 5 × gnnone {}",
            cus.cycles,
            one.cycles
        );
    }

    #[test]
    fn vertex_parallel_is_imbalanced_on_skewed_graphs() {
        let g = random_graph(8);
        let r = check(&DgSparseSddmm::new(Arc::clone(&g)), &g, 32);
        // Max warp far exceeds the mean: straggler-prone.
        let mean = r.stats.total_solo_cycles / r.stats.warps.max(1);
        assert!(
            r.stats.max_warp_cycles > 4 * mean,
            "max {} !> 4 × mean {mean}",
            r.stats.max_warp_cycles
        );
    }

    #[test]
    fn dgsparse_reuses_rows_vs_sputnik() {
        // Same strategy modulo row-feature reuse → Sputnik issues more
        // feature loads.
        let g = random_graph(9);
        let f = 32;
        let dg = check(&DgSparseSddmm::new(Arc::clone(&g)), &g, f);
        let sp = check(&SputnikSddmm::new(Arc::clone(&g)), &g, f);
        assert!(dg.stats.loads < sp.stats.loads);
    }
}
