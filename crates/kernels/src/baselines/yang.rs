//! Yang et al. (Euro-Par'18) nonzero-split SpMM — the cautionary tale of
//! §3.2 and §4.4.
//!
//! The design extends nonzero-split SpMV to SpMM *as is*: each warp takes an
//! equal span of NZEs, loads features feature-parallel, and **materializes
//! every per-NZE dot-product vector in registers** until the final
//! inter-thread reduction. Register use therefore scales with the tile of
//! NZEs (32) — `32 extra registers per thread at f = 32` in the paper's
//! accounting — which collapses occupancy, destroys latency hiding, and
//! makes the balanced kernel *slower* than vanilla vertex-parallel SpMM.
//! That observation is what pushed the field back to vertex-parallel
//! designs until GNNOne's running reduction removed the need for
//! materialization.

use std::sync::Arc;

use gnnone_sim::{
    engine::LaunchError, DeviceBuffer, Gpu, KernelReport, KernelResources, LaneArr, WarpCtx,
    WarpKernel, WARP_SIZE,
};

use crate::analysis::{summaries, AccessSummary};
use crate::graph::GraphData;
use crate::traits::SpmmKernel;

/// NZEs per warp tile (the materialization window).
const TILE: usize = 32;

/// Yang et al. nonzero-split SpMM.
pub struct YangSpmm {
    graph: Arc<GraphData>,
}

impl YangSpmm {
    /// Creates the kernel for `graph`.
    pub fn new(graph: Arc<GraphData>) -> Self {
        Self { graph }
    }
}

impl SpmmKernel for YangSpmm {
    fn graph(&self) -> &GraphData {
        &self.graph
    }

    fn name(&self) -> &'static str {
        "Yang et al."
    }

    fn format(&self) -> &'static str {
        "CSR"
    }

    fn run(
        &self,
        gpu: &Gpu,
        edge_vals: &DeviceBuffer<f32>,
        x: &DeviceBuffer<f32>,
        f: usize,
        y: &DeviceBuffer<f32>,
    ) -> Result<KernelReport, LaunchError> {
        let launch = YangLaunch {
            rows: &self.graph.d_coo_rows,
            cols: &self.graph.d_coo_cols,
            vals: edge_vals,
            x,
            y,
            nnz: self.graph.nnz(),
            f,
        };
        gpu.try_launch(&launch)
    }

    fn sim_access_summary(&self, f: usize) -> Option<AccessSummary> {
        // All output traffic is atomic (segment boundaries land anywhere),
        // so the summary carries no exclusive write set at all.
        Some(summaries::nonzero_split_spmm(
            self.name(),
            &self.graph,
            f,
            TILE as u64,
        ))
    }
}

struct YangLaunch<'a> {
    rows: &'a DeviceBuffer<u32>,
    cols: &'a DeviceBuffer<u32>,
    vals: &'a DeviceBuffer<f32>,
    x: &'a DeviceBuffer<f32>,
    y: &'a DeviceBuffer<f32>,
    nnz: usize,
    f: usize,
}

impl WarpKernel for YangLaunch<'_> {
    fn resources(&self) -> KernelResources {
        KernelResources {
            threads_per_cta: 256,
            // The defining pathology: base registers plus one register per
            // materialized NZE partial per feature tile (paper: "32× than
            // SpMV if the feature-length is 32").
            regs_per_thread: 32 + TILE * self.f.div_ceil(WARP_SIZE),
            shared_bytes_per_cta: 0,
        }
    }

    fn grid_warps(&self) -> usize {
        self.nnz.div_ceil(TILE)
    }

    fn name(&self) -> &str {
        "Yang-SpMM"
    }

    fn run_warp(&self, warp_id: usize, ctx: &mut WarpCtx) {
        let f = self.f;
        let base = warp_id * TILE;
        let count = TILE.min(self.nnz - base);

        // Balanced, coalesced NZE loads (this part the design gets right).
        let rows = ctx.load_u32(self.rows, |l| (l < count).then(|| base + l));
        let cols = ctx.load_u32(self.cols, |l| (l < count).then(|| base + l));
        let vals = ctx.load_f32(self.vals, |l| (l < count).then(|| base + l));
        ctx.use_loads();

        for fbase in (0..f).step_by(WARP_SIZE) {
            let lanes = (f - fbase).min(WARP_SIZE);
            // Materialize all per-NZE products for this feature tile.
            let mut products: Vec<LaneArr<f32>> = Vec::with_capacity(count);
            for i in 0..count {
                let col = cols.get(i) as usize;
                let xv = ctx.load_f32(self.x, |l| (l < lanes).then(|| col * f + fbase + l));
                ctx.compute(1);
                products.push(LaneArr::from_fn(|l| {
                    if l < lanes {
                        vals.get(i) * xv.get(l)
                    } else {
                        0.0
                    }
                }));
            }
            // Reduction at the very end: sequential segmented sweep over the
            // materialized registers, atomics at row boundaries.
            let mut acc = LaneArr::<f32>::default();
            for i in 0..count {
                ctx.compute(1);
                acc = acc.zip_with(&products[i], |a, p| a + p);
                let boundary = i + 1 == count || rows.get(i + 1) != rows.get(i);
                if boundary {
                    let row = rows.get(i) as usize;
                    ctx.atomic_add_f32(self.y, |l| {
                        (l < lanes).then(|| (row * f + fbase + l, acc.get(l)))
                    });
                    acc = LaneArr::default();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gnnone::{GnnOneConfig, GnnOneSpmm};
    use gnnone_sim::{occupancy::Occupancy, GpuSpec};
    use gnnone_sparse::formats::Coo;
    use gnnone_sparse::gen;
    use gnnone_sparse::reference;

    fn random_graph(scale: u32, edges: usize, seed: u64) -> Arc<GraphData> {
        let el = gen::rmat(scale, edges, gen::GRAPH500_PROBS, seed).symmetrize();
        Arc::new(GraphData::new(Coo::from_edge_list(&el)))
    }

    fn check(g: &Arc<GraphData>, f: usize, gpu: &Gpu) -> KernelReport {
        let x: Vec<f32> = (0..g.coo.num_cols() * f)
            .map(|i| ((i * 17 % 13) as f32 - 6.0) * 0.2)
            .collect();
        let w: Vec<f32> = (0..g.nnz()).map(|e| ((e % 5) as f32 - 2.0) * 0.4).collect();
        let dy = DeviceBuffer::<f32>::zeros(g.coo.num_rows() * f);
        let r = YangSpmm::new(Arc::clone(g))
            .run(
                gpu,
                &DeviceBuffer::from_slice(&w),
                &DeviceBuffer::from_slice(&x),
                f,
                &dy,
            )
            .unwrap();
        let expected = reference::spmm_csr(&g.csr, &w, &x, f);
        // Slightly looser tolerance: the large-graph occupancy test below
        // accumulates long atomic chains in a different order.
        reference::assert_close(&dy.to_vec(), &expected, 1e-3);
        r
    }

    #[test]
    fn correct_all_paper_dims() {
        let g = random_graph(7, 700, 61);
        let gpu = Gpu::new(GpuSpec::a100_40gb());
        for f in [6, 16, 32, 64] {
            check(&g, f, &gpu);
        }
    }

    #[test]
    fn register_materialization_halves_occupancy() {
        let spec = GpuSpec::a100_40gb();
        let launch_regs = 32 + TILE; // f = 32
        let occ = Occupancy::compute(
            &spec,
            &gnnone_sim::KernelResources {
                threads_per_cta: 256,
                regs_per_thread: launch_regs,
                shared_bytes_per_cta: 0,
            },
        );
        assert!(
            occ.fraction(&spec) <= 0.5,
            "occupancy {}",
            occ.fraction(&spec)
        );
    }

    #[test]
    fn slower_than_gnnone_despite_balance() {
        // The §3.2 story on a saturated device.
        let g = random_graph(11, 16_000, 62);
        let gpu = Gpu::new(GpuSpec::tiny());
        let f = 32;
        let yang = check(&g, f, &gpu);
        let x = DeviceBuffer::from_slice(&vec![1.0f32; g.coo.num_cols() * f]);
        let w = DeviceBuffer::from_slice(&vec![1.0f32; g.nnz()]);
        let dy = DeviceBuffer::<f32>::zeros(g.coo.num_rows() * f);
        let one = GnnOneSpmm::new(Arc::clone(&g), GnnOneConfig::default())
            .run(&gpu, &w, &x, f, &dy)
            .unwrap();
        assert!(
            yang.cycles > one.cycles,
            "yang {} !> gnnone {}",
            yang.cycles,
            one.cycles
        );
        // On the tiny test GPU both round down to one CTA per SM; the strict
        // occupancy gap is asserted on the A100 spec in
        // `register_materialization_halves_occupancy`.
        assert!(yang.occupancy <= one.occupancy);
    }
}
