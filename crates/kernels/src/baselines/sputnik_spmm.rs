//! Sputnik SpMM (Gale et al., SC'20): vertex-parallel CSR with **row
//! swizzling** — a pre-processing step sorts row indices by decreasing
//! length so the hardware scheduler co-locates long rows early, improving
//! load balance "based on the internal knowledge of the warp scheduler"
//! (paper §6). The extra row-ID array is the custom metadata.
//!
//! Not part of Fig. 4 (the paper compares Sputnik only on SDDMM), provided
//! for completeness and the extension benches.

use std::sync::Arc;

use gnnone_sim::{
    engine::LaunchError, DeviceBuffer, Gpu, KernelReport, KernelResources, LaneArr, WarpCtx,
    WarpKernel, WARP_SIZE,
};

use crate::analysis::{summaries, AccessSummary};
use crate::graph::GraphData;
use crate::traits::SpmmKernel;
use gnnone_sparse::custom::RowSwizzle;

/// Sputnik-style SpMM.
pub struct SputnikSpmm {
    graph: Arc<GraphData>,
    d_order: DeviceBuffer<u32>,
}

impl SputnikSpmm {
    /// Creates the kernel, running the row-swizzle pre-processing step.
    pub fn new(graph: Arc<GraphData>) -> Self {
        let sw = RowSwizzle::build(&graph.csr);
        let d_order = DeviceBuffer::from_slice(&sw.order);
        Self { graph, d_order }
    }
}

impl SpmmKernel for SputnikSpmm {
    fn graph(&self) -> &GraphData {
        &self.graph
    }

    fn name(&self) -> &'static str {
        "Sputnik"
    }

    fn format(&self) -> &'static str {
        "custom"
    }

    fn run(
        &self,
        gpu: &Gpu,
        edge_vals: &DeviceBuffer<f32>,
        x: &DeviceBuffer<f32>,
        f: usize,
        y: &DeviceBuffer<f32>,
    ) -> Result<KernelReport, LaunchError> {
        let launch = SputnikLaunch {
            offsets: &self.graph.d_csr_offsets,
            cols: &self.graph.d_csr_cols,
            order: &self.d_order,
            vals: edge_vals,
            x,
            y,
            num_rows: self.graph.num_vertices(),
            f,
        };
        gpu.try_launch(&launch)
    }

    fn sim_access_summary(&self, f: usize) -> Option<AccessSummary> {
        // Warp w writes the swizzled row order[w] — the write table is the
        // permutation itself, so disjointness is proved from the concrete
        // pre-processing output.
        Some(summaries::swizzled_row_spmm(
            self.name(),
            &self.graph,
            f,
            &self.d_order.to_vec(),
        ))
    }
}

struct SputnikLaunch<'a> {
    offsets: &'a DeviceBuffer<u32>,
    cols: &'a DeviceBuffer<u32>,
    order: &'a DeviceBuffer<u32>,
    vals: &'a DeviceBuffer<f32>,
    x: &'a DeviceBuffer<f32>,
    y: &'a DeviceBuffer<f32>,
    num_rows: usize,
    f: usize,
}

impl WarpKernel for SputnikLaunch<'_> {
    fn resources(&self) -> KernelResources {
        KernelResources {
            threads_per_cta: 256,
            regs_per_thread: 40,
            shared_bytes_per_cta: 0,
        }
    }

    fn grid_warps(&self) -> usize {
        self.num_rows
    }

    fn name(&self) -> &str {
        "Sputnik-SpMM"
    }

    fn run_warp(&self, warp_id: usize, ctx: &mut WarpCtx) {
        let f = self.f;
        // Swizzle indirection: the metadata load custom formats pay.
        let row_l = ctx.load_u32(self.order, |l| (l == 0).then_some(warp_id));
        ctx.use_loads();
        let row = row_l.get(0) as usize;
        let off = ctx.load_u32(self.offsets, |l| (l < 2).then_some(row + l));
        ctx.use_loads();
        let (start, end) = (off.get(0) as usize, off.get(1) as usize);
        if start == end {
            return;
        }
        // Feature tiles; vector-friendly contiguous loads within a tile.
        for fbase in (0..f).step_by(WARP_SIZE) {
            let lanes = (f - fbase).min(WARP_SIZE);
            let mut acc = LaneArr::<f32>::default();
            for e in start..end {
                let col = ctx.load_u32(self.cols, |l| (l < lanes).then_some(e));
                let val = ctx.load_f32(self.vals, |l| (l < lanes).then_some(e));
                // Software-pipelined (Sputnik unrolls aggressively).
                let xv = ctx.load_f32(self.x, |l| {
                    (l < lanes).then(|| col.get(0) as usize * f + fbase + l)
                });
                ctx.compute(1);
                for l in 0..lanes {
                    acc.set(l, acc.get(l) + val.get(0) * xv.get(l));
                }
            }
            ctx.store_f32(self.y, |l| {
                (l < lanes).then(|| (row * f + fbase + l, acc.get(l)))
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnone_sim::GpuSpec;
    use gnnone_sparse::formats::Coo;
    use gnnone_sparse::gen;
    use gnnone_sparse::reference;

    #[test]
    fn correct_paper_dims() {
        let el = gen::rmat(7, 700, gen::GRAPH500_PROBS, 101).symmetrize();
        let g = Arc::new(GraphData::new(Coo::from_edge_list(&el)));
        for f in [6usize, 16, 32, 64] {
            let x: Vec<f32> = (0..g.coo.num_cols() * f)
                .map(|i| ((i * 7 % 11) as f32 - 5.0) * 0.2)
                .collect();
            let w: Vec<f32> = (0..g.nnz()).map(|e| ((e % 3) as f32 - 1.0) * 0.5).collect();
            let dy = DeviceBuffer::<f32>::zeros(g.coo.num_rows() * f);
            SputnikSpmm::new(Arc::clone(&g))
                .run(
                    &Gpu::new(GpuSpec::a100_40gb()),
                    &DeviceBuffer::from_slice(&w),
                    &DeviceBuffer::from_slice(&x),
                    f,
                    &dy,
                )
                .unwrap();
            let expected = reference::spmm_csr(&g.csr, &w, &x, f);
            reference::assert_close(&dy.to_vec(), &expected, 1e-3);
        }
    }

    #[test]
    fn swizzle_improves_balance_over_plain_order() {
        // Long rows scheduled first → greedy SM assignment packs better.
        // Compare against FeatGraph-like plain ordering on a skewed graph.
        let el = gen::rmat(10, 12_000, gen::GRAPH500_PROBS, 102).symmetrize();
        let g = Arc::new(GraphData::new(Coo::from_edge_list(&el)));
        let f = 32;
        let x = DeviceBuffer::from_slice(&vec![1.0f32; g.coo.num_cols() * f]);
        let w = DeviceBuffer::from_slice(&vec![1.0f32; g.nnz()]);
        let dy = DeviceBuffer::<f32>::zeros(g.coo.num_rows() * f);
        let r = SputnikSpmm::new(Arc::clone(&g))
            .run(&Gpu::new(GpuSpec::tiny()), &w, &x, f, &dy)
            .unwrap();
        // Sanity: the kernel completes and reports balanced-ish SMs (the
        // max warp is the hub row, unavoidable without splitting).
        assert!(r.cycles > 0);
        assert!(r.stats.max_warp_cycles > 0);
    }
}
