//! Row-binning SpMM — the SpMV/graph-processing lineage the paper's §6
//! discusses (Enterprise, Gunrock): a pre-processing step buckets rows by
//! length, and a separate launch per bin assigns a thread, a warp, or a
//! CTA-sized team to each row. Balances *across* bins but, as the paper
//! notes, "still suffers from workload imbalance within each bin".
//!
//! Provided as an additional baseline for the extension benches; the
//! reported [`KernelReport`] aggregates the per-bin launches.

use std::sync::Arc;

use gnnone_sim::{
    engine::LaunchError, DeviceBuffer, Gpu, KernelReport, KernelResources, LaneArr, WarpCtx,
    WarpKernel, WARP_SIZE,
};

use crate::analysis::{summaries, AccessSummary};
use crate::graph::GraphData;
use crate::traits::SpmmKernel;

/// Bin boundaries on row length: (0, 8] → thread-per-row pack,
/// (8, 256] → warp-per-row, (256, ∞) → multi-warp team.
const SMALL_MAX: usize = 8;
const MEDIUM_MAX: usize = 256;

/// Row-binning SpMM.
pub struct RowBinningSpmm {
    graph: Arc<GraphData>,
    small: Vec<u32>,
    medium: Vec<u32>,
    large: Vec<u32>,
    d_small: DeviceBuffer<u32>,
    d_medium: DeviceBuffer<u32>,
    d_large: DeviceBuffer<u32>,
}

impl RowBinningSpmm {
    /// Creates the kernel, running the binning pre-processing step.
    pub fn new(graph: Arc<GraphData>) -> Self {
        let mut small = Vec::new();
        let mut medium = Vec::new();
        let mut large = Vec::new();
        for row in 0..graph.csr.num_rows() {
            let d = graph.csr.degree(row);
            if d == 0 {
                continue;
            } else if d <= SMALL_MAX {
                small.push(row as u32);
            } else if d <= MEDIUM_MAX {
                medium.push(row as u32);
            } else {
                large.push(row as u32);
            }
        }
        let d_small = DeviceBuffer::from_slice(&small);
        let d_medium = DeviceBuffer::from_slice(&medium);
        let d_large = DeviceBuffer::from_slice(&large);
        Self {
            graph,
            small,
            medium,
            large,
            d_small,
            d_medium,
            d_large,
        }
    }

    /// Bin sizes `(small, medium, large)` — for diagnostics and tests.
    pub fn bin_sizes(&self) -> (usize, usize, usize) {
        (self.small.len(), self.medium.len(), self.large.len())
    }
}

impl SpmmKernel for RowBinningSpmm {
    fn graph(&self) -> &GraphData {
        &self.graph
    }

    fn name(&self) -> &'static str {
        "Row-binning"
    }

    fn format(&self) -> &'static str {
        "custom"
    }

    fn run(
        &self,
        gpu: &Gpu,
        edge_vals: &DeviceBuffer<f32>,
        x: &DeviceBuffer<f32>,
        f: usize,
        y: &DeviceBuffer<f32>,
    ) -> Result<KernelReport, LaunchError> {
        // One launch per non-empty bin; times add (sequential launches, as
        // the row-binning systems issue them).
        let mut total: Option<KernelReport> = None;
        for (bin, rows_host, rows_dev) in [
            (Bin::Small, &self.small, &self.d_small),
            (Bin::Medium, &self.medium, &self.d_medium),
            (Bin::Large, &self.large, &self.d_large),
        ] {
            if rows_host.is_empty() {
                continue;
            }
            let launch = BinLaunch {
                offsets: &self.graph.d_csr_offsets,
                cols: &self.graph.d_csr_cols,
                rows: rows_dev,
                vals: edge_vals,
                x,
                y,
                num_bin_rows: rows_host.len(),
                f,
                bin,
            };
            let r = gpu.try_launch(&launch)?;
            total = Some(match total {
                None => r,
                Some(mut acc) => {
                    acc.cycles += r.cycles;
                    acc.time_ms += r.time_ms;
                    acc.ctas += r.ctas;
                    acc.stats.merge(&r.stats);
                    acc
                }
            });
        }
        total.ok_or(LaunchError::Unlaunchable {
            reason: "empty matrix".into(),
        })
    }

    fn sim_access_summary(&self, f: usize) -> Option<AccessSummary> {
        // One launch summary per non-empty bin, each proved from the
        // concrete binning output: small packs 32 rows per warp, medium
        // is warp-per-row, large combines atomically (4 warps per row).
        Some(summaries::row_binning_spmm(
            self.name(),
            &self.graph,
            f,
            &self.small,
            &self.medium,
            &self.large,
        ))
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Bin {
    /// Thread-per-row: 32 short rows per warp.
    Small,
    /// Warp-per-row.
    Medium,
    /// Four cooperating warps per row (atomic combine).
    Large,
}

struct BinLaunch<'a> {
    offsets: &'a DeviceBuffer<u32>,
    cols: &'a DeviceBuffer<u32>,
    rows: &'a DeviceBuffer<u32>,
    vals: &'a DeviceBuffer<f32>,
    x: &'a DeviceBuffer<f32>,
    y: &'a DeviceBuffer<f32>,
    num_bin_rows: usize,
    f: usize,
    bin: Bin,
}

impl WarpKernel for BinLaunch<'_> {
    fn resources(&self) -> KernelResources {
        KernelResources {
            threads_per_cta: 256,
            regs_per_thread: 38,
            shared_bytes_per_cta: 0,
        }
    }

    fn grid_warps(&self) -> usize {
        match self.bin {
            Bin::Small => self.num_bin_rows.div_ceil(WARP_SIZE),
            Bin::Medium => self.num_bin_rows,
            Bin::Large => self.num_bin_rows * 4,
        }
    }

    fn name(&self) -> &str {
        "row-binning"
    }

    fn run_warp(&self, warp_id: usize, ctx: &mut WarpCtx) {
        match self.bin {
            Bin::Small => self.run_small(warp_id, ctx),
            Bin::Medium => self.run_row(warp_id, 0, 1, ctx),
            Bin::Large => self.run_row(warp_id / 4, warp_id % 4, 4, ctx),
        }
    }
}

impl BinLaunch<'_> {
    /// Thread-per-row over 32 short rows (features looped serially — the
    /// within-bin imbalance and uncoalesced feature access of §6).
    fn run_small(&self, warp_id: usize, ctx: &mut WarpCtx) {
        let f = self.f;
        let base = warp_id * WARP_SIZE;
        let active0 = |l: usize| base + l < self.num_bin_rows;
        let rows = ctx.load_u32(self.rows, |l| active0(l).then(|| base + l));
        ctx.use_loads();
        let start = ctx.load_u32(self.offsets, |l| active0(l).then(|| rows.get(l) as usize));
        let end = ctx.load_u32(self.offsets, |l| {
            active0(l).then(|| rows.get(l) as usize + 1)
        });
        ctx.use_loads();
        let deg = |l: usize| (end.get(l) - start.get(l)) as usize;
        let max_deg = (0..WARP_SIZE)
            .filter(|&l| active0(l))
            .map(deg)
            .max()
            .unwrap_or(0);

        for k in 0..f {
            let mut acc = LaneArr::<f32>::default();
            for step in 0..max_deg {
                let active = |l: usize| active0(l) && step < deg(l);
                let col = ctx.load_u32(self.cols, |l| {
                    active(l).then(|| start.get(l) as usize + step)
                });
                let val = ctx.load_f32(self.vals, |l| {
                    active(l).then(|| start.get(l) as usize + step)
                });
                ctx.use_loads();
                let xv = ctx.load_f32(self.x, |l| active(l).then(|| col.get(l) as usize * f + k));
                ctx.compute(1);
                for l in 0..WARP_SIZE {
                    if active(l) {
                        acc.set(l, acc.get(l) + val.get(l) * xv.get(l));
                    }
                }
            }
            ctx.store_f32(self.y, |l| {
                active0(l).then(|| (rows.get(l) as usize * f + k, acc.get(l)))
            });
        }
    }

    /// Warp (or one of `teams` warps) per row, feature-parallel.
    fn run_row(&self, bin_idx: usize, team: usize, teams: usize, ctx: &mut WarpCtx) {
        let f = self.f;
        if bin_idx >= self.num_bin_rows {
            return;
        }
        let row_l = ctx.load_u32(self.rows, |l| (l == 0).then_some(bin_idx));
        ctx.use_loads();
        let row = row_l.get(0) as usize;
        let off = ctx.load_u32(self.offsets, |l| (l < 2).then_some(row + l));
        ctx.use_loads();
        let (start, end) = (off.get(0) as usize, off.get(1) as usize);
        let span = (end - start).div_ceil(teams);
        let (s, e) = (
            (start + team * span).min(end),
            (start + (team + 1) * span).min(end),
        );
        for fbase in (0..f).step_by(WARP_SIZE) {
            let lanes = (f - fbase).min(WARP_SIZE);
            let mut acc = LaneArr::<f32>::default();
            for nze in s..e {
                let col = ctx.load_u32(self.cols, |l| (l < lanes).then_some(nze));
                let val = ctx.load_f32(self.vals, |l| (l < lanes).then_some(nze));
                let xv = ctx.load_f32(self.x, |l| {
                    (l < lanes).then(|| col.get(0) as usize * f + fbase + l)
                });
                ctx.compute(1);
                for l in 0..lanes {
                    acc.set(l, acc.get(l) + val.get(0) * xv.get(l));
                }
            }
            if teams == 1 {
                ctx.store_f32(self.y, |l| {
                    (l < lanes).then(|| (row * f + fbase + l, acc.get(l)))
                });
            } else {
                ctx.atomic_add_f32(self.y, |l| {
                    (l < lanes).then(|| (row * f + fbase + l, acc.get(l)))
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnone_sim::GpuSpec;
    use gnnone_sparse::formats::{Coo, EdgeList};
    use gnnone_sparse::gen;
    use gnnone_sparse::reference;

    fn check(coo: Coo, f: usize) {
        let g = Arc::new(GraphData::new(coo));
        let x: Vec<f32> = (0..g.coo.num_cols() * f)
            .map(|i| ((i * 5 % 9) as f32 - 4.0) * 0.3)
            .collect();
        let w: Vec<f32> = (0..g.nnz()).map(|e| ((e % 6) as f32 - 2.0) * 0.4).collect();
        let dy = DeviceBuffer::<f32>::zeros(g.coo.num_rows() * f);
        RowBinningSpmm::new(Arc::clone(&g))
            .run(
                &Gpu::new(GpuSpec::a100_40gb()),
                &DeviceBuffer::from_slice(&w),
                &DeviceBuffer::from_slice(&x),
                f,
                &dy,
            )
            .unwrap();
        let expected = reference::spmm_csr(&g.csr, &w, &x, f);
        reference::assert_close(&dy.to_vec(), &expected, 1e-3);
    }

    #[test]
    fn correct_on_mixed_degree_graph() {
        // Hub (large bin) + medium rows + many small rows.
        let mut edges: Vec<(u32, u32)> = (1..600u32).map(|c| (0, c % 700)).collect();
        for r in 1..40u32 {
            for k in 0..20u32 {
                edges.push((r, (r * 13 + k) % 700));
            }
        }
        for r in 40..700u32 {
            edges.push((r, (r * 7) % 700));
        }
        let coo = Coo::from_edge_list(&EdgeList::new(700, edges));
        check(coo, 16);
    }

    #[test]
    fn correct_paper_dims_random() {
        let el = gen::rmat(8, 1500, gen::GRAPH500_PROBS, 111).symmetrize();
        for f in [6usize, 32] {
            check(Coo::from_edge_list(&el), f);
        }
    }

    #[test]
    fn bins_partition_rows() {
        let el = gen::rmat(9, 4000, gen::GRAPH500_PROBS, 112).symmetrize();
        let g = Arc::new(GraphData::new(Coo::from_edge_list(&el)));
        let k = RowBinningSpmm::new(Arc::clone(&g));
        let (s, m, l) = k.bin_sizes();
        let nonzero_rows = (0..g.csr.num_rows())
            .filter(|&r| g.csr.degree(r) > 0)
            .count();
        assert_eq!(s + m + l, nonzero_rows);
        assert!(s > 0 && m > 0, "power-law graph fills small+medium bins");
    }
}
