//! Neighbor-group SpMM baselines: GNNAdvisor (OSDI'21) and Huang et al.
//! (PPoPP'21).
//!
//! Both pre-process CSR into a **custom format** of ≤32-NZE neighbor groups
//! with explicit (row, start, len) metadata, assigning one warp per group
//! for workload balance (paper §6). The cost structure the paper contrasts
//! with GNNOne (§4.1.1, §5.4.5):
//!
//! * groups are capped at 32 by the row length — the cache cannot grow to
//!   128 the way GNNOne's row-independent Stage 1 can;
//! * ragged final groups and sub-32 rows leave lanes idle;
//! * feature-parallel lanes idle when `f < 32`;
//! * metadata arrives via a narrow load + broadcast (+ an online search in
//!   GNNAdvisor), instead of COO's all-lanes coalesced row-ID load;
//! * every group ends in an `atomicAdd` per feature.
//!
//! Huang et al. is the leaner point (paper: only 1.34× behind GNNOne at
//! f = 32): no online search and slightly cheaper metadata.

use std::sync::Arc;

use gnnone_sim::{
    engine::LaunchError, DeviceBuffer, Gpu, KernelReport, KernelResources, LaneArr, WarpCtx,
    WarpKernel, WARP_SIZE,
};

use crate::analysis::{summaries, AccessSummary};
use crate::graph::GraphData;
use crate::traits::SpmmKernel;
use gnnone_sparse::custom::NeighborGroups;

/// Parameter point of the neighbor-group family.
#[derive(Debug, Clone, Copy)]
struct NgParams {
    name: &'static str,
    /// Instructions of online metadata search per group (GNNAdvisor).
    search_instr: u64,
    /// Stage the group's col IDs / edge values in shared memory before the
    /// feature loop (Huang et al.). GNNAdvisor's published kernel instead
    /// broadcast-loads them from global memory per NZE, paying a dependent
    /// load chain.
    stage_in_shared: bool,
}

struct NgSpmm {
    graph: Arc<GraphData>,
    params: NgParams,
    /// Device metadata of the custom format (row, start, len per group) —
    /// built by the pre-processing step at construction.
    d_group_row: DeviceBuffer<u32>,
    d_group_start: DeviceBuffer<u32>,
    d_group_len: DeviceBuffer<u32>,
    num_groups: usize,
}

impl NgSpmm {
    fn new(graph: Arc<GraphData>, params: NgParams) -> Self {
        let groups = NeighborGroups::build(&graph.csr, 32);
        let row: Vec<u32> = groups.groups.iter().map(|g| g.row).collect();
        let start: Vec<u32> = groups.groups.iter().map(|g| g.start).collect();
        let len: Vec<u32> = groups.groups.iter().map(|g| g.len).collect();
        let num_groups = groups.groups.len();
        Self {
            graph,
            params,
            d_group_row: DeviceBuffer::from_slice(&row),
            d_group_start: DeviceBuffer::from_slice(&start),
            d_group_len: DeviceBuffer::from_slice(&len),
            num_groups,
        }
    }

    fn run(
        &self,
        gpu: &Gpu,
        edge_vals: &DeviceBuffer<f32>,
        x: &DeviceBuffer<f32>,
        f: usize,
        y: &DeviceBuffer<f32>,
    ) -> Result<KernelReport, LaunchError> {
        let launch = NgLaunch {
            cols: &self.graph.d_csr_cols,
            vals: edge_vals,
            x,
            y,
            group_row: &self.d_group_row,
            group_start: &self.d_group_start,
            group_len: &self.d_group_len,
            num_groups: self.num_groups,
            f,
            params: self.params,
        };
        gpu.try_launch(&launch)
    }
}

struct NgLaunch<'a> {
    cols: &'a DeviceBuffer<u32>,
    vals: &'a DeviceBuffer<f32>,
    x: &'a DeviceBuffer<f32>,
    y: &'a DeviceBuffer<f32>,
    group_row: &'a DeviceBuffer<u32>,
    group_start: &'a DeviceBuffer<u32>,
    group_len: &'a DeviceBuffer<u32>,
    num_groups: usize,
    f: usize,
    params: NgParams,
}

impl WarpKernel for NgLaunch<'_> {
    fn resources(&self) -> KernelResources {
        KernelResources {
            threads_per_cta: 256,
            regs_per_thread: 38,
            // Column IDs + edge values of one 32-NZE group staged in shared
            // (Huang et al. only).
            shared_bytes_per_cta: if self.params.stage_in_shared {
                (256 / 32) * 32 * 8
            } else {
                0
            },
        }
    }

    fn grid_warps(&self) -> usize {
        self.num_groups
    }

    fn name(&self) -> &str {
        self.params.name
    }

    fn run_warp(&self, group_id: usize, ctx: &mut WarpCtx) {
        let f = self.f;
        // Metadata: a few lanes fetch, then broadcast to the warp (the
        // custom-format overhead of §5.4.5 — narrow load, sync, search).
        let row_l = ctx.load_u32(self.group_row, |l| (l == 0).then_some(group_id));
        let start_l = ctx.load_u32(self.group_start, |l| (l == 0).then_some(group_id));
        let len_l = ctx.load_u32(self.group_len, |l| (l == 0).then_some(group_id));
        ctx.use_loads();
        ctx.barrier(); // broadcast via shared / sync
        if self.params.search_instr > 0 {
            ctx.compute(self.params.search_instr);
        }
        let row = row_l.get(0) as usize;
        let start = start_l.get(0) as usize;
        let len = len_l.get(0) as usize;

        // Stage the group's NZEs (≤ 32; ragged groups leave lanes idle).
        if self.params.stage_in_shared {
            let c = ctx.load_u32(self.cols, |l| (l < len).then(|| start + l));
            let v = ctx.load_f32(self.vals, |l| (l < len).then(|| start + l));
            ctx.shared_store(|l| (l < len).then(|| (l, c.get(l))));
            ctx.shared_store(|l| (l < len).then(|| (32 + l, v.get(l))));
            ctx.barrier();
        }

        // Feature-parallel accumulation (lanes beyond f idle).
        for fbase in (0..f).step_by(WARP_SIZE) {
            let lanes = (f - fbase).min(WARP_SIZE);
            let mut acc = LaneArr::<f32>::default();
            for i in 0..len {
                let (col, val) = if self.params.stage_in_shared {
                    let col: LaneArr<u32> = ctx.shared_load(|l| (l < lanes).then_some(i));
                    let val: LaneArr<f32> = ctx.shared_load(|l| (l < lanes).then_some(32 + i));
                    (col.get(0) as usize, val.get(0))
                } else {
                    // GNNAdvisor: broadcast global loads per NZE; the x
                    // gather below depends on the column ID.
                    let col = ctx.load_u32(self.cols, |l| (l < lanes).then_some(start + i));
                    let val = ctx.load_f32(self.vals, |l| (l < lanes).then_some(start + i));
                    ctx.use_loads();
                    (col.get(0) as usize, val.get(0))
                };
                let xv = ctx.load_f32(self.x, |l| (l < lanes).then(|| col * f + fbase + l));
                ctx.compute(1);
                for l in 0..lanes {
                    acc.set(l, acc.get(l) + val * xv.get(l));
                }
            }
            // One atomic flush per group per feature tile — rows split
            // across groups make atomics unavoidable.
            ctx.atomic_add_f32(self.y, |l| {
                (l < lanes).then(|| (row * f + fbase + l, acc.get(l)))
            });
        }
    }
}

macro_rules! ng_system {
    ($(#[$doc:meta])* $ty:ident, $params:expr) => {
        $(#[$doc])*
        pub struct $ty(NgSpmm);

        impl $ty {
            /// Creates the kernel, running the format pre-processing step.
            pub fn new(graph: Arc<GraphData>) -> Self {
                Self(NgSpmm::new(graph, $params))
            }

            /// Metadata bytes the custom format adds over CSR.
            pub fn metadata_bytes(&self) -> u64 {
                self.0.num_groups as u64 * 12
            }
        }

        impl SpmmKernel for $ty {
            fn graph(&self) -> &GraphData {
                &self.0.graph
            }

            fn name(&self) -> &'static str {
                self.0.params.name
            }
            fn format(&self) -> &'static str {
                "custom"
            }
            fn run(
                &self,
                gpu: &Gpu,
                edge_vals: &DeviceBuffer<f32>,
                x: &DeviceBuffer<f32>,
                f: usize,
                y: &DeviceBuffer<f32>,
            ) -> Result<KernelReport, LaunchError> {
                self.0.run(gpu, edge_vals, x, f, y)
            }

            fn sim_access_summary(&self, f: usize) -> Option<AccessSummary> {
                // Every group ends in an atomicAdd per feature, so the
                // output envelope is atomic-only; Huang additionally stages
                // the group's NZEs in shared memory.
                Some(summaries::neighbor_group_spmm(
                    self.name(),
                    &self.0.graph,
                    f,
                    self.0.num_groups,
                    self.0.params.stage_in_shared,
                ))
            }
        }
    };
}

ng_system!(
    /// GNNAdvisor SpMM: neighbor groups + online metadata search.
    GnnAdvisorSpmm,
    NgParams {
        name: "GNNAdvisor",
        search_instr: 8,
        stage_in_shared: false,
    }
);

ng_system!(
    /// Huang et al. SpMM: neighbor groups with streamlined metadata — the
    /// strongest SpMM baseline in Fig. 4.
    HuangSpmm,
    NgParams {
        name: "Huang et al.",
        search_instr: 0,
        stage_in_shared: true,
    }
);

#[cfg(test)]
mod tests {
    use super::*;
    use gnnone_sim::GpuSpec;
    use gnnone_sparse::formats::Coo;
    use gnnone_sparse::gen;
    use gnnone_sparse::reference;

    fn random_graph(seed: u64) -> Arc<GraphData> {
        let el = gen::rmat(7, 700, gen::GRAPH500_PROBS, seed).symmetrize();
        Arc::new(GraphData::new(Coo::from_edge_list(&el)))
    }

    fn check(kernel: &dyn SpmmKernel, g: &Arc<GraphData>, f: usize) -> KernelReport {
        let x: Vec<f32> = (0..g.coo.num_cols() * f)
            .map(|i| ((i * 11 % 5) as f32 - 2.0) * 0.3)
            .collect();
        let w: Vec<f32> = (0..g.nnz()).map(|e| ((e % 3) as f32 - 1.0) * 0.8).collect();
        let dy = DeviceBuffer::<f32>::zeros(g.coo.num_rows() * f);
        let r = kernel
            .run(
                &Gpu::new(GpuSpec::a100_40gb()),
                &DeviceBuffer::from_slice(&w),
                &DeviceBuffer::from_slice(&x),
                f,
                &dy,
            )
            .unwrap();
        let expected = reference::spmm_csr(&g.csr, &w, &x, f);
        reference::assert_close(&dy.to_vec(), &expected, 1e-4);
        r
    }

    #[test]
    fn gnnadvisor_correct() {
        let g = random_graph(51);
        for f in [6, 16, 32, 64] {
            check(&GnnAdvisorSpmm::new(Arc::clone(&g)), &g, f);
        }
    }

    #[test]
    fn huang_correct() {
        let g = random_graph(52);
        for f in [6, 32] {
            check(&HuangSpmm::new(Arc::clone(&g)), &g, f);
        }
    }

    #[test]
    fn huang_is_leaner_than_gnnadvisor() {
        let g = random_graph(53);
        let adv = check(&GnnAdvisorSpmm::new(Arc::clone(&g)), &g, 32);
        let hua = check(&HuangSpmm::new(Arc::clone(&g)), &g, 32);
        assert!(hua.stats.compute_instr < adv.stats.compute_instr);
        assert!(hua.cycles <= adv.cycles);
    }

    #[test]
    fn groups_balance_across_warps() {
        // Neighbor grouping bounds the straggler at 32 NZEs per warp.
        let g = random_graph(54);
        let r = check(&GnnAdvisorSpmm::new(Arc::clone(&g)), &g, 32);
        let mean = r.stats.total_solo_cycles / r.stats.warps.max(1);
        assert!(
            r.stats.max_warp_cycles < 8 * mean,
            "max {} vs mean {mean}",
            r.stats.max_warp_cycles
        );
    }

    #[test]
    fn metadata_bytes_reported() {
        let g = random_graph(55);
        let adv = GnnAdvisorSpmm::new(Arc::clone(&g));
        assert!(adv.metadata_bytes() > 0);
    }
}
