//! Pluggable execution backends for the kernel layer.
//!
//! Every kernel object in this crate describes *what* to compute (a
//! two-stage pipeline instantiation over a captured graph); a [`Backend`]
//! decides *where* it executes:
//!
//! * [`Backend::Sim`] — the cycle-accurate SIMT simulator
//!   ([`gnnone_sim::Gpu`]). Reports simulated cycles and derived
//!   milliseconds; the tracer, metrics registry, sanitizer, and chaos
//!   layers attach here and only here.
//! * [`Backend::Native`] — the multithreaded CPU engine
//!   ([`NativeEngine`]): the same Stage-1/Stage-2 logic as real
//!   rayon-parallel work over CTA-sized blocks with `f32x4`-style chunked
//!   inner loops, timed by wall clock.
//!
//! The two backends share the kernel objects, the operand buffers, and
//! the CPU references as the correctness oracle; `docs/BACKENDS.md` spells
//! out the full contract, including the determinism guarantees and which
//! observability layers attach where.

pub mod native;

use std::str::FromStr;

use gnnone_sim::engine::LaunchError;
use gnnone_sim::{DeviceBuffer, Gpu, KernelReport};

pub use native::{NativeEngine, NativeReport};

use crate::traits::{EdgeApplyKernel, FusedAttentionKernel, SddmmKernel, SpmmKernel, SpmvKernel};

/// Which backend a run targets — the value behind the `--backend` flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// Cycle-accurate SIMT simulator (the default).
    #[default]
    Sim,
    /// Multithreaded CPU engine with wall-clock timing.
    Native,
}

impl BackendKind {
    /// Canonical lower-case flag value (`"sim"` / `"native"`).
    pub fn as_str(&self) -> &'static str {
        match self {
            BackendKind::Sim => "sim",
            BackendKind::Native => "native",
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for BackendKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "sim" => Ok(BackendKind::Sim),
            "native" => Ok(BackendKind::Native),
            other => Err(format!("unknown backend `{other}` (sim|native)")),
        }
    }
}

/// Backend-agnostic execution report: the fields every backend can
/// produce, plus the backend-specific ones as options.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecReport {
    /// Kernel name.
    pub name: String,
    /// Backend that produced the report.
    pub backend: BackendKind,
    /// Milliseconds — simulated on `sim`, wall-clock on `native`.
    pub time_ms: f64,
    /// Simulated cycle count (`sim` only).
    pub cycles: Option<u64>,
    /// Worker thread count (`native` only).
    pub threads: Option<usize>,
}

impl ExecReport {
    fn from_sim(r: KernelReport) -> Self {
        Self {
            name: r.name,
            backend: BackendKind::Sim,
            time_ms: r.time_ms,
            cycles: Some(r.cycles),
            threads: None,
        }
    }

    fn from_native(r: NativeReport) -> Self {
        Self {
            name: r.name,
            backend: BackendKind::Native,
            time_ms: r.time_ms,
            cycles: None,
            threads: Some(r.threads),
        }
    }
}

/// A concrete execution backend: the simulator or the native CPU engine.
///
/// Dispatch is by kernel *family* — one `run_*` method per kernel trait,
/// each taking the same operand buffers the trait's `run` takes. Both
/// arms return the unified [`ExecReport`]; sim-only launch failures
/// (grid/memory limits, watchdog aborts) surface unchanged, and native
/// launches never fail.
// One Backend exists per process (never stored in collections), so the
// Gpu/NativeEngine size gap costs nothing; boxing would only add a deref
// to every launch.
#[allow(clippy::large_enum_variant)]
pub enum Backend {
    /// Cycle-accurate simulator backend.
    Sim(Gpu),
    /// Native multithreaded CPU backend.
    Native(NativeEngine),
}

impl Backend {
    /// This backend's kind tag.
    pub fn kind(&self) -> BackendKind {
        match self {
            Backend::Sim(_) => BackendKind::Sim,
            Backend::Native(_) => BackendKind::Native,
        }
    }

    /// The simulator handle, when this is the sim backend — what the
    /// observability layers (tracer, metrics, sanitizer, chaos) attach to.
    pub fn as_gpu(&self) -> Option<&Gpu> {
        match self {
            Backend::Sim(gpu) => Some(gpu),
            Backend::Native(_) => None,
        }
    }

    /// Runs one SDDMM launch on this backend.
    pub fn run_sddmm(
        &self,
        kernel: &dyn SddmmKernel,
        x: &DeviceBuffer<f32>,
        y: &DeviceBuffer<f32>,
        f: usize,
        w: &DeviceBuffer<f32>,
    ) -> Result<ExecReport, LaunchError> {
        match self {
            Backend::Sim(gpu) => kernel.run(gpu, x, y, f, w).map(ExecReport::from_sim),
            Backend::Native(eng) => kernel
                .run_native(eng, x, y, f, w)
                .map(ExecReport::from_native),
        }
    }

    /// Runs one SpMM launch on this backend.
    pub fn run_spmm(
        &self,
        kernel: &dyn SpmmKernel,
        edge_vals: &DeviceBuffer<f32>,
        x: &DeviceBuffer<f32>,
        f: usize,
        y: &DeviceBuffer<f32>,
    ) -> Result<ExecReport, LaunchError> {
        match self {
            Backend::Sim(gpu) => kernel
                .run(gpu, edge_vals, x, f, y)
                .map(ExecReport::from_sim),
            Backend::Native(eng) => kernel
                .run_native(eng, edge_vals, x, f, y)
                .map(ExecReport::from_native),
        }
    }

    /// Runs one SpMV launch on this backend.
    pub fn run_spmv(
        &self,
        kernel: &dyn SpmvKernel,
        edge_vals: &DeviceBuffer<f32>,
        x: &DeviceBuffer<f32>,
        y: &DeviceBuffer<f32>,
    ) -> Result<ExecReport, LaunchError> {
        match self {
            Backend::Sim(gpu) => kernel.run(gpu, edge_vals, x, y).map(ExecReport::from_sim),
            Backend::Native(eng) => kernel
                .run_native(eng, edge_vals, x, y)
                .map(ExecReport::from_native),
        }
    }

    /// Runs one edge-apply (`u_add_v`) launch on this backend.
    pub fn run_edge_apply(
        &self,
        kernel: &dyn EdgeApplyKernel,
        el: &DeviceBuffer<f32>,
        er: &DeviceBuffer<f32>,
        w: &DeviceBuffer<f32>,
    ) -> Result<ExecReport, LaunchError> {
        match self {
            Backend::Sim(gpu) => kernel.run(gpu, el, er, w).map(ExecReport::from_sim),
            Backend::Native(eng) => kernel
                .run_native(eng, el, er, w)
                .map(ExecReport::from_native),
        }
    }

    /// Runs one fused-attention launch on this backend.
    #[allow(clippy::too_many_arguments)]
    pub fn run_fused(
        &self,
        kernel: &dyn FusedAttentionKernel,
        z: &DeviceBuffer<f32>,
        el: &DeviceBuffer<f32>,
        er: &DeviceBuffer<f32>,
        f: usize,
        y: &DeviceBuffer<f32>,
        alpha_out: Option<&DeviceBuffer<f32>>,
    ) -> Result<ExecReport, LaunchError> {
        match self {
            Backend::Sim(gpu) => kernel
                .run(gpu, z, el, er, f, y, alpha_out)
                .map(ExecReport::from_sim),
            Backend::Native(eng) => kernel
                .run_native(eng, z, el, er, f, y, alpha_out)
                .map(ExecReport::from_native),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_kind_round_trips() {
        for kind in [BackendKind::Sim, BackendKind::Native] {
            assert_eq!(kind.as_str().parse::<BackendKind>().unwrap(), kind);
        }
        assert!("cuda".parse::<BackendKind>().is_err());
        assert_eq!(BackendKind::default(), BackendKind::Sim);
        assert_eq!(
            "NATIVE".parse::<BackendKind>().unwrap(),
            BackendKind::Native
        );
    }
}
