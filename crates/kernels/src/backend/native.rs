//! Native multithreaded CPU executor — the `native` backend.
//!
//! Runs the same two-stage shape as the simulated kernels (Stage 1:
//! balanced NZE staging, Stage 2: symbiotic feature-chunk compute) as real
//! rayon-parallel work over CTA-sized task blocks with `f32x4`-style
//! chunked inner loops, measured with wall-clock timing. This is the
//! FusedMM observation applied to the repo: the paper's unified
//! SDDMM/SpMM formulation is backend-agnostic, so the schedule that feeds
//! a GPU warp maps directly onto a SIMD-capable CPU core.
//!
//! # Determinism contract
//!
//! Every routine here produces **bit-identical output regardless of the
//! rayon thread count**. The partitioning rules that guarantee it:
//!
//! * edge-output kernels (SDDMM, `u_add_v`) split the NZE range into
//!   disjoint contiguous blocks — each output element is written by
//!   exactly one task, and its value depends only on its own inputs;
//! * row-output kernels (SpMM, SpMV, fused attention) split the *row*
//!   range into nnz-balanced, row-aligned blocks — each output row is
//!   owned by exactly one task and accumulated sequentially in CSR edge
//!   order, so no atomics are needed and the float association order is
//!   fixed by the graph, not the schedule.
//!
//! Block boundaries depend only on the graph and the kernel config, never
//! on the thread count, so the work *assignment* (not just the result) is
//! reproducible too.
//!
//! Unlike the sim backend, launches here cannot fail: there is no grid
//! limit, no device memory budget, and no watchdog. The routines return
//! [`NativeReport`] directly; the trait layer wraps them in `Ok` so both
//! backends share one fallible signature.

use std::time::Instant;

use gnnone_sim::DeviceBuffer;
use rayon::prelude::*;

use crate::gnnone::config::{GnnOneConfig, Schedule};
use crate::graph::GraphData;

/// Lane width of the chunked inner loops — the CPU analogue of the
/// paper's `float4` vector loads. The loops below process features in
/// `[f32; 4]` chunks that LLVM auto-vectorizes to SIMD on every target
/// the repo builds for; no unstable `std::simd` is needed.
pub const VEC_WIDTH: usize = 4;

/// Warps hosted per CTA in the simulator's launch geometry; the native
/// backend sizes one rayon task as one CTA's worth of NZEs
/// (`WARPS_PER_CTA × cache_size`) so the two backends decompose work at
/// the same granularity.
pub const WARPS_PER_CTA: usize = 8;

/// Wall-clock execution report from one native launch — the `native`
/// counterpart of the simulator's `KernelReport`.
#[derive(Debug, Clone, PartialEq)]
pub struct NativeReport {
    /// Kernel name, as reported by the kernel object.
    pub name: String,
    /// Wall-clock time of the parallel compute section in milliseconds.
    /// Device-buffer staging copies are excluded: the sim backend does
    /// not charge host↔device copies to the kernel either.
    pub time_ms: f64,
    /// Rayon threads available to the launch.
    pub threads: usize,
}

/// A native CPU execution engine: a (possibly dedicated) rayon thread
/// pool plus the launch bookkeeping shared by all native kernel routines.
///
/// `NativeEngine::new()` borrows the global rayon pool;
/// [`NativeEngine::with_threads`] builds a dedicated pool with an exact
/// thread count — the knob the determinism tests and `--threads` expose.
pub struct NativeEngine {
    threads: usize,
    pool: Option<rayon::ThreadPool>,
}

impl Default for NativeEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl NativeEngine {
    /// An engine over the global rayon thread pool.
    pub fn new() -> Self {
        Self {
            threads: rayon::current_num_threads(),
            pool: None,
        }
    }

    /// An engine with a dedicated pool of exactly `threads` workers.
    /// Fails (with the builder's message) when the pool cannot be
    /// created; `threads == 0` is rejected up front.
    pub fn with_threads(threads: usize) -> Result<Self, String> {
        if threads == 0 {
            return Err("--threads must be >= 1".to_string());
        }
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .map_err(|e| format!("failed to build a {threads}-thread pool: {e}"))?;
        Ok(Self {
            threads,
            pool: Some(pool),
        })
    }

    /// Number of worker threads launches on this engine may use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `op` inside this engine's pool (or the global pool).
    fn run<R: Send>(&self, op: impl FnOnce() -> R + Send) -> R {
        match &self.pool {
            Some(pool) => pool.install(op),
            None => op(),
        }
    }

    /// Times `op` on this engine's pool and builds the report.
    fn timed(&self, name: &str, op: impl FnOnce() + Send) -> NativeReport {
        let start = Instant::now();
        self.run(op);
        NativeReport {
            name: name.to_string(),
            time_ms: start.elapsed().as_secs_f64() * 1e3,
            threads: self.threads,
        }
    }
}

/// Chunked dot product — `VEC_WIDTH` independent accumulator lanes
/// combined pairwise at the end, mirroring a `float4` FMA loop.
#[inline]
fn dot_chunked(a: &[f32], b: &[f32]) -> f32 {
    let mut lanes = [0.0f32; VEC_WIDTH];
    let chunks = a.len() / VEC_WIDTH * VEC_WIDTH;
    for (ca, cb) in a[..chunks]
        .chunks_exact(VEC_WIDTH)
        .zip(b[..chunks].chunks_exact(VEC_WIDTH))
    {
        for k in 0..VEC_WIDTH {
            lanes[k] += ca[k] * cb[k];
        }
    }
    let mut acc = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
    for k in chunks..a.len() {
        acc += a[k] * b[k];
    }
    acc
}

/// Scalar dot product — the `vectorize: false` ablation path; association
/// order matches the sequential CPU reference exactly.
#[inline]
fn dot_scalar(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for (x, y) in a.iter().zip(b) {
        acc += x * y;
    }
    acc
}

/// `out[k] += s * x[k]` as one zip loop the compiler vectorizes freely.
/// Unlike [`dot_chunked`], lane shape cannot change the result here —
/// every output element receives exactly one fused add per call, so the
/// per-element association order is fixed no matter how the loop is
/// carved up. The iterator form drops the chunk bookkeeping and bounds
/// checks that dominated the short `f` rows GAT heads use.
#[inline]
fn axpy(out: &mut [f32], s: f32, x: &[f32]) {
    for (o, xv) in out.iter_mut().zip(x) {
        *o += s * xv;
    }
}

/// NZEs one rayon task stages and processes — the CTA analogue. Public
/// so the static verifier (`crate::analysis`) can reproduce the exact
/// task partition a native launch will use.
pub fn cta_edges(cache_size: usize) -> usize {
    (WARPS_PER_CTA * cache_size.max(1)).max(1)
}

/// Splits `[0, num_rows)` into row-aligned blocks of roughly
/// `target_nnz` NZEs each (always ≥ 1 row per block). The boundaries
/// depend only on the CSR offsets and the target, never on the thread
/// count — the native Stage-1 balance rule for row-output kernels.
/// Public for the same reason as [`cta_edges`].
pub fn row_blocks(offsets: &[u32], num_rows: usize, target_nnz: usize) -> Vec<(usize, usize)> {
    let target = target_nnz.max(1) as u32;
    let mut blocks = Vec::new();
    let mut start = 0usize;
    while start < num_rows {
        let limit = offsets[start] + target;
        let mut end = start + 1;
        while end < num_rows && offsets[end + 1] <= limit {
            end += 1;
        }
        blocks.push((start, end));
        start = end;
    }
    blocks
}

/// Edge-parallel SDDMM over COO (`w[e] = x[row(e)] · y[col(e)]`),
/// honouring the GNNOne config: `cache_size` sizes the per-task NZE
/// window, `vectorize` selects the chunked vs scalar dot, and
/// Consecutive × `data_reuse` enables the row-feature reuse the sim's
/// Stage 2 models (consecutive NZEs sharing a row skip the re-gather).
#[allow(clippy::too_many_arguments)]
pub fn sddmm_edges(
    eng: &NativeEngine,
    graph: &GraphData,
    cfg: &GnnOneConfig,
    dx: &DeviceBuffer<f32>,
    dy: &DeviceBuffer<f32>,
    f: usize,
    dw: &DeviceBuffer<f32>,
    name: &str,
) -> NativeReport {
    let x = dx.to_vec();
    let y = dy.to_vec();
    let rows = graph.coo.rows();
    let cols = graph.coo.cols();
    let nnz = graph.nnz();
    let mut w = vec![0.0f32; nnz];
    let block = cta_edges(cfg.cache_size);
    let reuse = cfg.data_reuse && cfg.schedule == Schedule::Consecutive;
    let vectorize = cfg.vectorize;
    let report = eng.timed(name, || {
        w.par_chunks_mut(block).enumerate().for_each(|(b, out)| {
            let base = b * block;
            let mut prev_row = u32::MAX;
            let mut xr: &[f32] = &[];
            for (i, slot) in out.iter_mut().enumerate() {
                let r = rows[base + i];
                let c = cols[base + i] as usize;
                if !(reuse && r == prev_row) {
                    let r = r as usize;
                    xr = &x[r * f..(r + 1) * f];
                    prev_row = rows[base + i];
                }
                let yc = &y[c * f..(c + 1) * f];
                *slot = if vectorize {
                    dot_chunked(xr, yc)
                } else {
                    dot_scalar(xr, yc)
                };
            }
        });
    });
    dw.copy_from_slice(&w);
    report
}

/// Vertex-parallel SDDMM over CSR — the native path for the
/// thread-per-row / warp-per-row baseline family, whose launch geometry
/// is row-major rather than edge-major. Output spans per row block are
/// disjoint CSR ranges, so the same determinism contract holds.
pub fn sddmm_rows(
    eng: &NativeEngine,
    graph: &GraphData,
    dx: &DeviceBuffer<f32>,
    dy: &DeviceBuffer<f32>,
    f: usize,
    dw: &DeviceBuffer<f32>,
    name: &str,
) -> NativeReport {
    let x = dx.to_vec();
    let y = dy.to_vec();
    let offsets = graph.csr.offsets();
    let cols = graph.csr.cols();
    let n = graph.num_vertices();
    let nnz = graph.nnz();
    let mut w = vec![0.0f32; nnz];
    let blocks = row_blocks(offsets, n, cta_edges(GnnOneConfig::default().cache_size));
    let mut parts: Vec<(&mut [f32], usize, usize)> = Vec::with_capacity(blocks.len());
    let mut rest: &mut [f32] = &mut w;
    for &(r0, r1) in &blocks {
        let span = (offsets[r1] - offsets[r0]) as usize;
        let (head, tail) = rest.split_at_mut(span);
        parts.push((head, r0, r1));
        rest = tail;
    }
    let report = eng.timed(name, || {
        parts.into_par_iter().for_each(|(out, r0, r1)| {
            let base = offsets[r0] as usize;
            for r in r0..r1 {
                let xr = &x[r * f..(r + 1) * f];
                for e in offsets[r] as usize..offsets[r + 1] as usize {
                    let c = cols[e] as usize;
                    out[e - base] = dot_chunked(xr, &y[c * f..(c + 1) * f]);
                }
            }
        });
    });
    dw.copy_from_slice(&w);
    report
}

/// Row-split SpMM (`y[r] += Σ_e w[e] · x[col(e)]` over CSR rows) on
/// nnz-balanced row blocks. Accumulates into the caller's `y` (matching
/// the trait contract); each row is reduced sequentially in CSR order, so
/// the result is bit-identical to the sequential CPU reference.
#[allow(clippy::too_many_arguments)]
pub fn spmm_rows(
    eng: &NativeEngine,
    graph: &GraphData,
    cfg: &GnnOneConfig,
    dvals: &DeviceBuffer<f32>,
    dx: &DeviceBuffer<f32>,
    f: usize,
    dy: &DeviceBuffer<f32>,
    name: &str,
) -> NativeReport {
    let vals = dvals.to_vec();
    let x = dx.to_vec();
    let offsets = graph.csr.offsets();
    let cols = graph.csr.cols();
    let n = graph.num_vertices();
    let mut y = dy.to_vec();
    let blocks = row_blocks(offsets, n, cta_edges(cfg.cache_size));
    let vectorize = cfg.vectorize;
    let mut parts: Vec<(&mut [f32], usize, usize)> = Vec::with_capacity(blocks.len());
    let mut rest: &mut [f32] = &mut y;
    for &(r0, r1) in &blocks {
        let (head, tail) = rest.split_at_mut((r1 - r0) * f);
        parts.push((head, r0, r1));
        rest = tail;
    }
    let report = eng.timed(name, || {
        parts.into_par_iter().for_each(|(out, r0, r1)| {
            for r in r0..r1 {
                let row = &mut out[(r - r0) * f..(r - r0 + 1) * f];
                for e in offsets[r] as usize..offsets[r + 1] as usize {
                    let c = cols[e] as usize;
                    let xc = &x[c * f..(c + 1) * f];
                    if vectorize {
                        axpy(row, vals[e], xc);
                    } else {
                        for k in 0..f {
                            row[k] += vals[e] * xc[k];
                        }
                    }
                }
            }
        });
    });
    dy.copy_from_slice(&y);
    report
}

/// Row-split SpMV — [`spmm_rows`] specialized to scalar features.
pub fn spmv_rows(
    eng: &NativeEngine,
    graph: &GraphData,
    dvals: &DeviceBuffer<f32>,
    dx: &DeviceBuffer<f32>,
    dy: &DeviceBuffer<f32>,
    name: &str,
) -> NativeReport {
    spmm_rows(eng, graph, &GnnOneConfig::default(), dvals, dx, 1, dy, name)
}

/// Edge-parallel `u_add_v` (`w[e] = el[row(e)] + er[col(e)]`) on
/// contiguous NZE blocks.
pub fn u_add_v_edges(
    eng: &NativeEngine,
    graph: &GraphData,
    del: &DeviceBuffer<f32>,
    der: &DeviceBuffer<f32>,
    dw: &DeviceBuffer<f32>,
    name: &str,
) -> NativeReport {
    let el = del.to_vec();
    let er = der.to_vec();
    let rows = graph.coo.rows();
    let cols = graph.coo.cols();
    let mut w = vec![0.0f32; graph.nnz()];
    let block = cta_edges(GnnOneConfig::default().cache_size);
    let report = eng.timed(name, || {
        w.par_chunks_mut(block).enumerate().for_each(|(b, out)| {
            let base = b * block;
            for (i, slot) in out.iter_mut().enumerate() {
                *slot = el[rows[base + i] as usize] + er[cols[base + i] as usize];
            }
        });
    });
    dw.copy_from_slice(&w);
    report
}

/// Fused GAT attention on row blocks: per row, three sequential passes
/// (max logit, exp-sum, attended aggregation) exactly mirroring
/// `fused_gat_reference`, with the row's `y` span and CSR-aligned `alpha`
/// span owned by one task.
#[allow(clippy::too_many_arguments)]
pub fn fused_gat_rows(
    eng: &NativeEngine,
    graph: &GraphData,
    slope: f32,
    dz: &DeviceBuffer<f32>,
    del: &DeviceBuffer<f32>,
    der: &DeviceBuffer<f32>,
    f: usize,
    dy: &DeviceBuffer<f32>,
    dalpha: Option<&DeviceBuffer<f32>>,
    name: &str,
) -> NativeReport {
    let z = dz.to_vec();
    let el = del.to_vec();
    let er = der.to_vec();
    let offsets = graph.csr.offsets();
    let cols = graph.csr.cols();
    let n = graph.num_vertices();
    let mut y = dy.to_vec();
    // α is only materialized when the caller asked for it (training);
    // the inference shape keeps it in the per-row stage buffer.
    let mut alpha = dalpha.map(|_| vec![0.0f32; graph.nnz()]);
    let blocks = row_blocks(offsets, n, cta_edges(GnnOneConfig::default().cache_size));
    // One task's slice of the outputs: (y rows, α span, row range).
    type FusedPart<'a> = (&'a mut [f32], Option<&'a mut [f32]>, usize, usize);
    let mut parts: Vec<FusedPart> = Vec::with_capacity(blocks.len());
    let mut y_rest: &mut [f32] = &mut y;
    let mut a_rest: Option<&mut [f32]> = alpha.as_deref_mut();
    for &(r0, r1) in &blocks {
        let (y_head, y_tail) = y_rest.split_at_mut((r1 - r0) * f);
        let span = (offsets[r1] - offsets[r0]) as usize;
        let a_head = match a_rest.take() {
            Some(a) => {
                let (head, tail) = a.split_at_mut(span);
                a_rest = Some(tail);
                Some(head)
            }
            None => None,
        };
        parts.push((y_head, a_head, r0, r1));
        y_rest = y_tail;
    }
    let leaky = |raw: f32| if raw > 0.0 { raw } else { raw * slope };
    let report = eng.timed(name, || {
        parts
            .into_par_iter()
            .for_each(|(y_out, mut a_out, r0, r1)| {
                let base = offsets[r0] as usize;
                // Per-task logit stage: each edge's logit is gathered and its
                // exp taken exactly once instead of re-derived per pass. The
                // float ops and their order match `fused_gat_reference`, so
                // results stay bitwise identical.
                let max_span = (r0..r1)
                    .map(|r| (offsets[r + 1] - offsets[r]) as usize)
                    .max()
                    .unwrap_or(0);
                let mut stage = vec![0.0f32; max_span];
                for r in r0..r1 {
                    let range = offsets[r] as usize..offsets[r + 1] as usize;
                    if range.is_empty() {
                        continue;
                    }
                    let elr = el[r];
                    let rcols = &cols[range.clone()];
                    let buf = &mut stage[..rcols.len()];
                    let mut max = f32::NEG_INFINITY;
                    for (slot, &c) in buf.iter_mut().zip(rcols) {
                        let v = leaky(elr + er[c as usize]);
                        *slot = v;
                        max = max.max(v);
                    }
                    let mut denom = 0.0f32;
                    for v in buf.iter_mut() {
                        *v = (*v - max).exp();
                        denom += *v;
                    }
                    let row = &mut y_out[(r - r0) * f..(r - r0 + 1) * f];
                    match a_out {
                        Some(ref mut a_out) => {
                            let arow = &mut a_out[range.start - base..range.end - base];
                            for ((&v, &c), slot) in buf.iter().zip(rcols).zip(arow) {
                                let a = v / denom;
                                *slot = a;
                                let c = c as usize;
                                axpy(row, a, &z[c * f..(c + 1) * f]);
                            }
                        }
                        None => {
                            for (&v, &c) in buf.iter().zip(rcols) {
                                let c = c as usize;
                                axpy(row, v / denom, &z[c * f..(c + 1) * f]);
                            }
                        }
                    }
                }
            });
    });
    dy.copy_from_slice(&y);
    if let (Some(da), Some(a)) = (dalpha, &alpha) {
        da.copy_from_slice(a);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnone_sparse::formats::Coo;
    use gnnone_sparse::gen;
    use gnnone_sparse::reference;

    fn graph() -> GraphData {
        let el = gen::rmat(8, 1500, gen::GRAPH500_PROBS, 77).symmetrize();
        GraphData::new(Coo::from_edge_list(&el))
    }

    fn feats(n: usize, salt: usize) -> Vec<f32> {
        (0..n)
            .map(|i| (((i * 31 + salt * 97) % 23) as f32 - 11.0) * 0.13)
            .collect()
    }

    #[test]
    fn row_blocks_cover_and_balance() {
        let g = graph();
        let blocks = row_blocks(g.csr.offsets(), g.num_vertices(), 256);
        assert_eq!(blocks.first().unwrap().0, 0);
        assert_eq!(blocks.last().unwrap().1, g.num_vertices());
        for w in blocks.windows(2) {
            assert_eq!(w[0].1, w[1].0, "blocks must tile the row range");
        }
    }

    #[test]
    fn dot_variants_agree() {
        let a = feats(37, 1);
        let b = feats(37, 2);
        let (c, s) = (dot_chunked(&a, &b), dot_scalar(&a, &b));
        assert!((c - s).abs() <= 1e-4 * s.abs().max(1.0), "{c} vs {s}");
    }

    #[test]
    fn spmm_matches_reference_bitwise() {
        let g = graph();
        let f = 9;
        let n = g.num_vertices();
        let x = feats(n * f, 3);
        let vals = feats(g.nnz(), 4);
        let dy = DeviceBuffer::<f32>::zeros(n * f);
        let eng = NativeEngine::with_threads(3).unwrap();
        spmm_rows(
            &eng,
            &g,
            &GnnOneConfig::default(),
            &DeviceBuffer::from_slice(&vals),
            &DeviceBuffer::from_slice(&x),
            f,
            &dy,
            "t",
        );
        // Row-split accumulation preserves the reference association
        // order per element, so equality is exact, not just close.
        assert_eq!(dy.to_vec(), reference::spmm_csr(&g.csr, &vals, &x, f));
    }

    #[test]
    fn sddmm_close_to_reference_under_all_configs() {
        let g = graph();
        let f = 12;
        let n = g.num_vertices();
        let x = feats(n * f, 5);
        let y = feats(n * f, 6);
        let expect = reference::sddmm_coo(&g.coo, &x, &y, f);
        let eng = NativeEngine::new();
        for vectorize in [false, true] {
            for schedule in [Schedule::Consecutive, Schedule::RoundRobin] {
                let cfg = GnnOneConfig {
                    cache_size: 64,
                    schedule,
                    vectorize,
                    data_reuse: true,
                };
                let dw = DeviceBuffer::<f32>::zeros(g.nnz());
                sddmm_edges(
                    &eng,
                    &g,
                    &cfg,
                    &DeviceBuffer::from_slice(&x),
                    &DeviceBuffer::from_slice(&y),
                    f,
                    &dw,
                    "t",
                );
                reference::assert_close(&dw.to_vec(), &expect, 1e-5);
            }
        }
    }

    #[test]
    fn thread_count_does_not_change_bits() {
        let g = graph();
        let f = 8;
        let n = g.num_vertices();
        let x = feats(n * f, 7);
        let y = feats(n * f, 8);
        let run = |threads: usize| {
            let eng = NativeEngine::with_threads(threads).unwrap();
            let dw = DeviceBuffer::<f32>::zeros(g.nnz());
            sddmm_edges(
                &eng,
                &g,
                &GnnOneConfig::default(),
                &DeviceBuffer::from_slice(&x),
                &DeviceBuffer::from_slice(&y),
                f,
                &dw,
                "t",
            );
            dw.to_vec()
        };
        let one = run(1);
        assert_eq!(one, run(2));
        assert_eq!(one, run(5));
    }
}
