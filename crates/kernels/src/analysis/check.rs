//! The abstract-interpretation pass: instantiate a summary at one concrete
//! lattice point and prove (or refute, with a witness) the four safety
//! obligations.
//!
//! 1. **Race freedom** — all `Exclusive` write intervals are pairwise
//!    disjoint across warps.
//! 2. **Bounds safety** — every access interval lies inside its buffer's
//!    declared extent.
//! 3. **Barrier/epoch consistency** — the shared-memory phase script never
//!    reads a word that is pending (stored since the last barrier),
//!    uninitialized (never stored), or outside the declared window.
//! 4. **Budget feasibility** — the static per-warp instruction bound fits
//!    the default [`LaunchSpec`] watchdog budget, so a healthy kernel can
//!    never be aborted spuriously.
//!
//! Checks run in that order and the first failure wins, so verdicts are
//! deterministic.

use gnnone_sim::jsonio::Json;
use gnnone_sim::LaunchSpec;

use crate::analysis::summary::{
    AccessSummary, BufferAccess, ExecModel, LaunchSummary, Mode, Pattern, SharedStep,
};
use crate::analysis::sym::Env;

/// Grids larger than this are not enumerated warp-by-warp; affine
/// summaries over them come back [`Verdict::Unknown`]. Far above any
/// graph the repo instantiates (the largest scaled dataset is ~2M edges
/// → ~16K warps at cache 128).
const MAX_ENUMERATED_WARPS: u64 = 1 << 22;

/// Shared windows larger than this (words) are not simulated step by
/// step. Every shipped kernel declares ≤ `3·cache + 2 ≤ 386` words
/// (CSR staging) or 512 (fused GAT logit cache).
const MAX_SHARED_WORDS: u64 = 1 << 20;

/// A concrete counterexample: the exact index (and warps) a refuted
/// obligation fails at.
#[derive(Debug, Clone, PartialEq)]
pub struct Witness {
    /// Which obligation failed (`"race"`, `"bounds"`, `"shared-epoch"`,
    /// `"shared-uninit"`, `"shared-oob"`, `"budget"`).
    pub check: &'static str,
    /// Label of the failing launch.
    pub launch: String,
    /// Buffer name, or `"shared"` / `"watchdog"` for non-global checks.
    pub buffer: String,
    /// Failing element index (for `"budget"`: the ops bound itself).
    pub index: u64,
    /// First involved warp.
    pub warp_a: usize,
    /// Second involved warp (equals `warp_a` for single-warp checks).
    pub warp_b: usize,
    /// Human-readable explanation.
    pub detail: String,
}

impl Witness {
    /// JSON form (jsonio).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("check", Json::Str(self.check.to_string())),
            ("launch", Json::Str(self.launch.clone())),
            ("buffer", Json::Str(self.buffer.clone())),
            ("index", Json::U64(self.index)),
            ("warp_a", Json::U64(self.warp_a as u64)),
            ("warp_b", Json::U64(self.warp_b as u64)),
            ("detail", Json::Str(self.detail.clone())),
        ])
    }
}

/// Outcome of checking one kernel summary at one lattice point.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// All four obligations hold.
    Proved,
    /// An obligation fails, with a concrete witness index.
    Refuted(Witness),
    /// The summary is outside the checker's decidable fragment (e.g. an
    /// exclusive write set given only as a bounds envelope).
    Unknown {
        /// Why the checker could not decide.
        reason: String,
    },
}

impl Verdict {
    /// True for [`Verdict::Proved`].
    pub fn is_proved(&self) -> bool {
        matches!(self, Verdict::Proved)
    }

    /// True for [`Verdict::Refuted`].
    pub fn is_refuted(&self) -> bool {
        matches!(self, Verdict::Refuted(_))
    }

    /// Stable lowercase tag (`"proved"` / `"refuted"` / `"unknown"`).
    pub fn as_str(&self) -> &'static str {
        match self {
            Verdict::Proved => "proved",
            Verdict::Refuted(_) => "refuted",
            Verdict::Unknown { .. } => "unknown",
        }
    }

    /// JSON form (jsonio): `{"verdict": tag, ...payload}`.
    pub fn to_json(&self) -> Json {
        match self {
            Verdict::Proved => Json::obj(vec![("verdict", Json::Str("proved".into()))]),
            Verdict::Refuted(w) => Json::obj(vec![
                ("verdict", Json::Str("refuted".into())),
                ("witness", w.to_json()),
            ]),
            Verdict::Unknown { reason } => Json::obj(vec![
                ("verdict", Json::Str("unknown".into())),
                ("reason", Json::Str(reason.clone())),
            ]),
        }
    }
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Verdict::Proved => f.write_str("proved"),
            Verdict::Refuted(w) => write!(
                f,
                "refuted[{} {} @{} w{}/w{}]",
                w.check, w.buffer, w.index, w.warp_a, w.warp_b
            ),
            Verdict::Unknown { reason } => write!(f, "unknown[{reason}]"),
        }
    }
}

/// Checks every launch of `summary` against its base environment. The
/// first non-`Proved` launch verdict is the kernel verdict.
pub fn check_summary(summary: &AccessSummary) -> Verdict {
    for launch in &summary.launches {
        let mut env = summary.base_env;
        env.warp_id = 0;
        env.grid_warps = launch.grid_warps.eval(&env);
        let v = check_launch(launch, &env, summary.model);
        if !v.is_proved() {
            return v;
        }
    }
    Verdict::Proved
}

fn check_launch(launch: &LaunchSummary, env: &Env, model: ExecModel) -> Verdict {
    if let Some(v) = check_races(launch, env) {
        return v;
    }
    if let Some(v) = check_bounds(launch, env) {
        return v;
    }
    if let Some(v) = check_shared(launch, env) {
        return v;
    }
    if model == ExecModel::Sim {
        if let Some(v) = check_budget(launch, env) {
            return v;
        }
    }
    Verdict::Proved
}

/// Concrete per-warp access intervals: `(warp, lo, hi)`, `hi` exclusive.
type WarpIntervals = Vec<(usize, u64, u64)>;

/// Expands one access into concrete `(warp, lo, hi)` intervals (empty
/// intervals dropped). `None` when the pattern carries no per-warp
/// structure (`Bounded`).
fn expand(access: &BufferAccess, env: &Env) -> Option<Result<WarpIntervals, String>> {
    match &access.pattern {
        Pattern::Affine { start, len } => {
            if env.grid_warps > MAX_ENUMERATED_WARPS {
                return Some(Err(format!(
                    "grid of {} warps exceeds the {} enumeration cap",
                    env.grid_warps, MAX_ENUMERATED_WARPS
                )));
            }
            let mut out = Vec::new();
            let mut e = *env;
            for w in 0..env.grid_warps {
                e.warp_id = w;
                let lo = start.eval(&e);
                let n = len.eval(&e);
                if n > 0 {
                    out.push((w as usize, lo, lo.saturating_add(n)));
                }
            }
            Some(Ok(out))
        }
        Pattern::Table(rows) => Some(Ok(rows
            .iter()
            .filter(|(_, lo, hi)| hi > lo)
            .copied()
            .collect())),
        Pattern::Bounded { .. } => None,
    }
}

fn check_races(launch: &LaunchSummary, env: &Env) -> Option<Verdict> {
    // Collect all exclusive write intervals per buffer.
    let mut per_buffer: Vec<(&str, WarpIntervals)> = Vec::new();
    for access in &launch.accesses {
        if access.mode != Mode::Exclusive {
            continue;
        }
        let expanded = match expand(access, env) {
            Some(Ok(iv)) => iv,
            Some(Err(reason)) => return Some(Verdict::Unknown { reason }),
            None => {
                return Some(Verdict::Unknown {
                    reason: format!(
                        "exclusive writes to `{}` summarized as a bounds envelope only; \
                         disjointness is undecidable without per-warp structure",
                        access.buffer
                    ),
                })
            }
        };
        match per_buffer.iter_mut().find(|(b, _)| *b == access.buffer) {
            Some((_, iv)) => iv.extend(expanded),
            None => per_buffer.push((access.buffer, expanded)),
        }
    }
    for (buffer, mut intervals) in per_buffer {
        intervals.sort_by_key(|&(_, lo, hi)| (lo, hi));
        // Sweep with the two highest end-points seen so far, owned by
        // *different* warps. Any earlier interval overlapping the current
        // one ends past its start, so it is dominated by one of the two
        // maxima; tracking two (distinct-warp) maxima makes the sweep
        // complete even when same-warp intervals nest.
        let mut best: Option<(usize, u64, u64)> = None;
        let mut best_other: Option<(usize, u64, u64)> = None;
        for &(w, lo, hi) in &intervals {
            for prev in [best, best_other].into_iter().flatten() {
                let (pw, plo, phi) = prev;
                if pw != w && lo < phi {
                    return Some(Verdict::Refuted(Witness {
                        check: "race",
                        launch: launch.label.to_string(),
                        buffer: buffer.to_string(),
                        index: lo,
                        warp_a: pw,
                        warp_b: w,
                        detail: format!(
                            "warps {pw} and {w} both plain-store `{buffer}[{lo}]` \
                             (intervals [{plo},{phi}) and [{lo},{hi}) overlap)"
                        ),
                    }));
                }
            }
            match best {
                Some((bw, _, bhi)) => {
                    if bw == w {
                        if hi > bhi {
                            best = Some((w, lo, hi));
                        }
                    } else if hi > bhi {
                        // The dethroned max becomes the other-warp max
                        // (ties included: its warp is known to differ from
                        // the new best's, the incumbent's may not).
                        if best_other.is_none_or(|(_, _, ohi)| bhi >= ohi) {
                            best_other = best;
                        }
                        best = Some((w, lo, hi));
                    } else if best_other.is_none_or(|(_, _, ohi)| hi > ohi) {
                        best_other = Some((w, lo, hi));
                    }
                }
                None => best = Some((w, lo, hi)),
            }
        }
    }
    None
}

fn check_bounds(launch: &LaunchSummary, env: &Env) -> Option<Verdict> {
    for access in &launch.accesses {
        let extent = access.extent.eval(env);
        match &access.pattern {
            Pattern::Bounded { lo, hi } => {
                let (l, h) = (lo.eval(env), hi.eval(env));
                if h > extent {
                    return Some(Verdict::Refuted(Witness {
                        check: "bounds",
                        launch: launch.label.to_string(),
                        buffer: access.buffer.to_string(),
                        index: h - 1,
                        warp_a: 0,
                        warp_b: 0,
                        detail: format!(
                            "{} envelope [{l},{h}) of `{}` exceeds extent {extent}",
                            access.mode.as_str(),
                            access.buffer
                        ),
                    }));
                }
            }
            _ => match expand(access, env) {
                Some(Ok(intervals)) => {
                    for (w, _, hi) in intervals {
                        if hi > extent {
                            return Some(Verdict::Refuted(Witness {
                                check: "bounds",
                                launch: launch.label.to_string(),
                                buffer: access.buffer.to_string(),
                                index: hi - 1,
                                warp_a: w,
                                warp_b: w,
                                detail: format!(
                                    "warp {w} {}s `{}[{}]` past extent {extent}",
                                    access.mode.as_str(),
                                    access.buffer,
                                    hi - 1
                                ),
                            }));
                        }
                    }
                }
                Some(Err(reason)) => return Some(Verdict::Unknown { reason }),
                None => unreachable!("Bounded handled above"),
            },
        }
    }
    None
}

fn check_shared(launch: &LaunchSummary, env: &Env) -> Option<Verdict> {
    if launch.shared_steps.is_empty() {
        return None;
    }
    let words = launch.shared_words.eval(env);
    if words > MAX_SHARED_WORDS {
        return Some(Verdict::Unknown {
            reason: format!("shared window of {words} words exceeds the simulation cap"),
        });
    }
    let witness = |check, index: u64, detail: String| {
        Some(Verdict::Refuted(Witness {
            check,
            launch: launch.label.to_string(),
            buffer: "shared".to_string(),
            index,
            warp_a: 0,
            warp_b: 0,
            detail,
        }))
    };
    let mut committed = vec![false; words as usize];
    let mut pending = vec![false; words as usize];
    for step in &launch.shared_steps {
        match step {
            SharedStep::Store { lo, hi } => {
                let (l, h) = (lo.eval(env), hi.eval(env));
                if h > words {
                    return witness(
                        "shared-oob",
                        h.saturating_sub(1),
                        format!("store [{l},{h}) past the {words}-word shared window"),
                    );
                }
                for i in l..h {
                    pending[i as usize] = true;
                }
            }
            SharedStep::Barrier => {
                for (c, p) in committed.iter_mut().zip(pending.iter_mut()) {
                    *c |= std::mem::replace(p, false);
                }
            }
            SharedStep::Load { lo, hi } => {
                let (l, h) = (lo.eval(env), hi.eval(env));
                if h > words {
                    return witness(
                        "shared-oob",
                        h.saturating_sub(1),
                        format!("load [{l},{h}) past the {words}-word shared window"),
                    );
                }
                for i in l..h {
                    if pending[i as usize] {
                        return witness(
                            "shared-epoch",
                            i,
                            format!(
                                "shared word {i} is read in the same epoch it was \
                                 written (missing barrier between store and load)"
                            ),
                        );
                    }
                    if !committed[i as usize] {
                        return witness(
                            "shared-uninit",
                            i,
                            format!("shared word {i} is read but never stored"),
                        );
                    }
                }
            }
        }
    }
    None
}

fn check_budget(launch: &LaunchSummary, env: &Env) -> Option<Verdict> {
    let bound = launch.ops_per_warp.eval(env);
    let budget = LaunchSpec::default().budget(env.grid_warps as usize);
    if bound > budget {
        return Some(Verdict::Refuted(Witness {
            check: "budget",
            launch: launch.label.to_string(),
            buffer: "watchdog".to_string(),
            index: bound,
            warp_a: 0,
            warp_b: 0,
            detail: format!(
                "static per-warp instruction bound {bound} exceeds the \
                 watchdog budget {budget} for a {}-warp grid",
                env.grid_warps
            ),
        }));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::summary::base_env;
    use crate::analysis::sym::Sym;

    fn summary_with(launch: LaunchSummary) -> AccessSummary {
        AccessSummary::single(
            "toy",
            "spmm",
            ExecModel::Sim,
            base_env(128, 16, 8, 32, 9),
            launch,
        )
    }

    fn affine_launch(start: Sym, len: Sym, extent: Sym) -> LaunchSummary {
        LaunchSummary {
            grid_warps: Sym::nnz().ceil_div(Sym::cache()),
            accesses: vec![BufferAccess {
                buffer: "w",
                extent,
                pattern: Pattern::Affine { start, len },
                mode: Mode::Exclusive,
            }],
            ..LaunchSummary::new("main")
        }
    }

    #[test]
    fn disjoint_affine_proves() {
        let launch = affine_launch(
            Sym::warp_id().mul(Sym::cache()),
            Sym::cache().min(Sym::nnz().sub(Sym::warp_id().mul(Sym::cache()))),
            Sym::nnz(),
        );
        assert!(check_summary(&summary_with(launch)).is_proved());
    }

    #[test]
    fn overlapping_affine_refutes_with_witness() {
        // Off-by-one: every warp writes cache+1 elements.
        let launch = affine_launch(
            Sym::warp_id().mul(Sym::cache()),
            Sym::cache().add(Sym::lit(1)),
            Sym::nnz().add(Sym::lit(1)),
        );
        match check_summary(&summary_with(launch)) {
            Verdict::Refuted(w) => {
                assert_eq!(w.check, "race");
                assert_eq!(w.index, 32, "first overlap is warp 1's base");
                assert_eq!((w.warp_a, w.warp_b), (0, 1));
            }
            other => panic!("expected refuted, got {other}"),
        }
    }

    #[test]
    fn nested_same_warp_intervals_do_not_mask_races() {
        // Sorted order is (w0,[0,100)), (w0,[1,2)), (w1,[90,95)): the
        // cross-warp overlap pairs the *first* interval with the *third* —
        // an adjacent-pair scan misses it, the two-maxima sweep must not.
        let launch = LaunchSummary {
            grid_warps: Sym::lit(2),
            accesses: vec![BufferAccess {
                buffer: "w",
                extent: Sym::nnz(),
                pattern: Pattern::Table(vec![(0, 0, 100), (0, 1, 2), (1, 90, 95)]),
                mode: Mode::Exclusive,
            }],
            ..LaunchSummary::new("main")
        };
        match check_summary(&summary_with(launch)) {
            Verdict::Refuted(w) => {
                assert_eq!(w.check, "race");
                assert_eq!((w.warp_a, w.warp_b), (0, 1));
            }
            other => panic!("expected refuted, got {other}"),
        }
    }

    #[test]
    fn table_entries_of_the_same_warp_may_overlap() {
        let launch = LaunchSummary {
            grid_warps: Sym::lit(2),
            accesses: vec![BufferAccess {
                buffer: "w",
                extent: Sym::nnz(),
                pattern: Pattern::Table(vec![(0, 0, 50), (0, 10, 60), (1, 60, 90)]),
                mode: Mode::Exclusive,
            }],
            ..LaunchSummary::new("main")
        };
        assert!(check_summary(&summary_with(launch)).is_proved());
    }

    #[test]
    fn unclamped_tail_refutes_bounds() {
        // Missing `min(cache, nnz - base)`: the last warp runs past nnz
        // whenever cache does not divide nnz.
        let launch = affine_launch(Sym::warp_id().mul(Sym::cache()), Sym::cache(), Sym::nnz());
        let s = AccessSummary::single(
            "toy",
            "spmm",
            ExecModel::Sim,
            base_env(100, 16, 8, 32, 9),
            launch,
        );
        let v = check_summary(&s);
        assert!(matches!(&v, Verdict::Refuted(w) if w.check == "bounds"));
    }

    #[test]
    fn bounded_exclusive_is_unknown() {
        let launch = LaunchSummary {
            grid_warps: Sym::lit(4),
            accesses: vec![BufferAccess {
                buffer: "y",
                extent: Sym::rows(),
                pattern: Pattern::Bounded {
                    lo: Sym::lit(0),
                    hi: Sym::rows(),
                },
                mode: Mode::Exclusive,
            }],
            ..LaunchSummary::new("main")
        };
        assert!(matches!(
            check_summary(&summary_with(launch)),
            Verdict::Unknown { .. }
        ));
    }

    #[test]
    fn table_overlap_between_warps_refutes() {
        let launch = LaunchSummary {
            grid_warps: Sym::lit(2),
            accesses: vec![BufferAccess {
                buffer: "y",
                extent: Sym::lit(100),
                pattern: Pattern::Table(vec![(0, 0, 10), (1, 8, 20)]),
                mode: Mode::Exclusive,
            }],
            ..LaunchSummary::new("main")
        };
        let v = check_summary(&summary_with(launch));
        assert!(matches!(&v, Verdict::Refuted(w) if w.check == "race" && w.index == 8));
    }

    #[test]
    fn same_warp_overlap_is_not_a_race() {
        let launch = LaunchSummary {
            grid_warps: Sym::lit(1),
            accesses: vec![BufferAccess {
                buffer: "y",
                extent: Sym::lit(100),
                pattern: Pattern::Table(vec![(0, 0, 10), (0, 5, 15)]),
                mode: Mode::Exclusive,
            }],
            ..LaunchSummary::new("main")
        };
        assert!(check_summary(&summary_with(launch)).is_proved());
    }

    #[test]
    fn shared_epoch_checks() {
        let store = |lo, hi| SharedStep::Store {
            lo: Sym::lit(lo),
            hi: Sym::lit(hi),
        };
        let load = |lo, hi| SharedStep::Load {
            lo: Sym::lit(lo),
            hi: Sym::lit(hi),
        };
        let mk = |steps: Vec<SharedStep>| {
            summary_with(LaunchSummary {
                grid_warps: Sym::lit(1),
                shared_words: Sym::lit(64),
                shared_steps: steps,
                ..LaunchSummary::new("main")
            })
        };
        // Clean: store, barrier, load.
        assert!(
            check_summary(&mk(vec![store(0, 32), SharedStep::Barrier, load(0, 32)])).is_proved()
        );
        // Missing barrier.
        let v = check_summary(&mk(vec![store(0, 32), load(0, 32)]));
        assert!(matches!(&v, Verdict::Refuted(w) if w.check == "shared-epoch"));
        // Uninitialized read.
        let v = check_summary(&mk(vec![store(0, 16), SharedStep::Barrier, load(0, 32)]));
        assert!(matches!(&v, Verdict::Refuted(w) if w.check == "shared-uninit" && w.index == 16));
        // Out of window.
        let v = check_summary(&mk(vec![store(0, 65)]));
        assert!(matches!(&v, Verdict::Refuted(w) if w.check == "shared-oob"));
    }

    #[test]
    fn budget_overrun_refutes_on_sim_only() {
        let launch = LaunchSummary {
            grid_warps: Sym::lit(4),
            ops_per_warp: Sym::lit(u64::MAX / 2),
            ..LaunchSummary::new("main")
        };
        let mut s = summary_with(launch);
        let v = check_summary(&s);
        assert!(matches!(&v, Verdict::Refuted(w) if w.check == "budget"));
        s.model = ExecModel::Native;
        assert!(check_summary(&s).is_proved(), "native has no watchdog");
    }

    #[test]
    fn verdict_json_round_shape() {
        let v = Verdict::Refuted(Witness {
            check: "race",
            launch: "main".into(),
            buffer: "w".into(),
            index: 7,
            warp_a: 1,
            warp_b: 2,
            detail: "overlap".into(),
        });
        let s = v.to_json().to_string_compact();
        assert!(s.contains("\"verdict\":\"refuted\"") && s.contains("\"index\":7"));
    }
}
