//! The access-summary language: what a kernel promises about its memory
//! behaviour.
//!
//! A summary is a *superset* contract: every address the kernel actually
//! touches at a given lattice point must lie inside the summary's
//! intervals evaluated at that point. Over-approximation is always sound
//! (claimed-disjoint supersets imply disjoint actual writes; in-bounds
//! supersets imply in-bounds accesses); under-approximation is a summary
//! bug — the differential suite cross-checks summaries against the
//! dynamic sanitizer to catch exactly that.

use crate::analysis::sym::{Env, Sym};

/// Which execution model a summary describes.
///
/// The sim model is warp-granular (one [`gnnone_sim::WarpCtx`] per warp);
/// the native model is task-granular (one rayon task per CTA-sized NZE
/// block or row block — see `backend::native`). Both expose the same
/// summary shape: "warp" below means "task" under [`ExecModel::Native`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecModel {
    /// The cycle-accurate SIMT simulator.
    Sim,
    /// The multithreaded native CPU engine.
    Native,
}

impl ExecModel {
    /// Stable lowercase name (`"sim"` / `"native"`).
    pub fn as_str(self) -> &'static str {
        match self {
            ExecModel::Sim => "sim",
            ExecModel::Native => "native",
        }
    }
}

impl std::fmt::Display for ExecModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How a buffer is accessed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Read-only: participates in bounds checking only.
    Read,
    /// Plain (non-atomic) writes that must be cross-warp disjoint — the
    /// race-freedom obligation.
    Exclusive,
    /// Atomic read-modify-writes: overlap between warps is legal, bounds
    /// are still checked.
    Atomic,
}

impl Mode {
    /// Stable lowercase name.
    pub fn as_str(self) -> &'static str {
        match self {
            Mode::Read => "read",
            Mode::Exclusive => "exclusive",
            Mode::Atomic => "atomic",
        }
    }
}

/// The shape of one warp's index set into a buffer.
#[derive(Debug, Clone, PartialEq)]
pub enum Pattern {
    /// Warp `w` touches the contiguous interval
    /// `[start(w), start(w) + len(w))` — `start`/`len` may reference
    /// [`crate::analysis::sym::Param::WarpId`].
    Affine {
        /// Interval start for warp `w`.
        start: Sym,
        /// Interval length for warp `w` (zero = no access).
        len: Sym,
    },
    /// Explicit per-warp intervals `(warp, lo, hi)` computed from the same
    /// preprocessing metadata the kernel schedules with (row chunks, bins,
    /// merge-path spans, swizzle orders) — still static: derived without
    /// executing the kernel. Half-open `[lo, hi)`; a warp may own any
    /// number of intervals.
    Table(Vec<(usize, u64, u64)>),
    /// Bounds-only envelope: every access (any warp) lies in `[lo, hi)`.
    /// Carries no per-warp structure, so it cannot witness disjointness —
    /// use it for reads and atomics, never for exclusive writes.
    Bounded {
        /// Inclusive lower bound of all accessed indices.
        lo: Sym,
        /// Exclusive upper bound of all accessed indices.
        hi: Sym,
    },
}

/// One buffer's declared access set.
#[derive(Debug, Clone, PartialEq)]
pub struct BufferAccess {
    /// Operand name as the kernel traits spell it (`"w"`, `"y"`, `"x"`…).
    pub buffer: &'static str,
    /// Declared element extent of the buffer.
    pub extent: Sym,
    /// Per-warp index set.
    pub pattern: Pattern,
    /// Access mode.
    pub mode: Mode,
}

/// One step of a warp's shared-memory phase script, in program order.
///
/// Ranges are word indices into the warp's shared window and must be
/// warp-uniform (the shared window is private to each warp in both
/// models, so `WarpId` never appears here).
#[derive(Debug, Clone, PartialEq)]
pub enum SharedStep {
    /// Stores words `[lo, hi)` (they become *pending* until a barrier).
    Store {
        /// First stored word.
        lo: Sym,
        /// One past the last stored word.
        hi: Sym,
    },
    /// `__syncwarp` analogue: commits all pending words.
    Barrier,
    /// Loads words `[lo, hi)` — every loaded word must be committed
    /// (stored *and* barrier-flushed) and inside the declared window.
    Load {
        /// First loaded word.
        lo: Sym,
        /// One past the last loaded word.
        hi: Sym,
    },
}

/// The summary of one launch: grid geometry, global accesses, the
/// shared-memory phase script, and a static per-warp instruction bound.
#[derive(Debug, Clone, PartialEq)]
pub struct LaunchSummary {
    /// Distinguishes multi-launch kernels (e.g. row-binning's bins).
    pub label: &'static str,
    /// Number of warps (sim) / tasks (native) in the grid.
    pub grid_warps: Sym,
    /// Global-memory access sets.
    pub accesses: Vec<BufferAccess>,
    /// Declared shared-memory window, in 32-bit words per warp.
    pub shared_words: Sym,
    /// Shared-memory phase script (empty when the launch uses none).
    pub shared_steps: Vec<SharedStep>,
    /// Upper bound on any single warp's watchdog instruction count.
    /// Checked against the [`gnnone_sim::LaunchSpec`] budget on the sim
    /// model; the native engine has no watchdog, so native summaries may
    /// use zero.
    pub ops_per_warp: Sym,
}

impl LaunchSummary {
    /// A summary with no accesses — the starting point for builders.
    pub fn new(label: &'static str) -> Self {
        Self {
            label,
            grid_warps: Sym::lit(0),
            accesses: Vec::new(),
            shared_words: Sym::lit(0),
            shared_steps: Vec::new(),
            ops_per_warp: Sym::lit(0),
        }
    }
}

/// A kernel's full symbolic access summary for one execution model.
#[derive(Debug, Clone, PartialEq)]
pub struct AccessSummary {
    /// Kernel display name (matches the registry).
    pub kernel: String,
    /// Operation family (`"sddmm"`, `"spmm"`, `"spmv"`, `"u-add-v"`,
    /// `"fused"`).
    pub op: &'static str,
    /// Which execution model the summary describes.
    pub model: ExecModel,
    /// One entry per sequential launch the kernel issues (most kernels
    /// issue exactly one; launches are serialized, so cross-launch
    /// overlap is not a race).
    pub launches: Vec<LaunchSummary>,
    /// Base environment the summary was built against: graph shape,
    /// feature length, cache size, max degree. The checker fills
    /// `grid_warps`/`warp_id` per launch.
    pub base_env: Env,
}

impl AccessSummary {
    /// A single-launch summary.
    pub fn single(
        kernel: impl Into<String>,
        op: &'static str,
        model: ExecModel,
        base_env: Env,
        launch: LaunchSummary,
    ) -> Self {
        Self {
            kernel: kernel.into(),
            op,
            model,
            launches: vec![launch],
            base_env,
        }
    }
}

/// Builds the base [`Env`] for a graph × config × feature length.
pub fn base_env(nnz: usize, rows: usize, f: usize, cache: usize, max_degree: usize) -> Env {
    Env {
        nnz: nnz as u64,
        rows: rows as u64,
        f: f as u64,
        cache: cache as u64,
        grid_warps: 0,
        warp_id: 0,
        max_degree: max_degree as u64,
    }
}
