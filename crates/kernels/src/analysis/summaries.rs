//! Ready-made summary constructors for the unified-pipeline kernels and
//! the native backend's per-family partitions.
//!
//! The GNNOne pipeline instantiations share two Stage-1 shapes (COO NZE
//! windows, CSR NZE windows with an offsets ring) and a handful of
//! Stage-2 write disciplines, so their summaries are built here once and
//! reused by every kernel file. The native backend routes *all* kernels
//! of a family through one shared routine (`backend::native`), so its
//! summaries are per-family too, parameterized only by the config the
//! routine actually partitions with.
//!
//! Soundness conventions (see `docs/STATIC_ANALYSIS.md`):
//! * global access patterns are **supersets** of the addresses touched;
//! * shared-memory `Store` ranges match the staging the kernel performs,
//!   `Load` ranges are supersets of what Stage 2 reads;
//! * `ops_per_warp` is a generous upper bound, differentially validated
//!   against the simulator's watchdog counter by the test suite.

use crate::analysis::summary::{
    base_env, AccessSummary, BufferAccess, ExecModel, LaunchSummary, Mode, Pattern, SharedStep,
};
use crate::analysis::sym::Sym;
use crate::backend::native;
use crate::gnnone::GnnOneConfig;
use crate::graph::GraphData;

/// Maximum row degree of a graph — the `max_degree` summary parameter.
pub fn max_degree(graph: &GraphData) -> usize {
    (0..graph.csr.num_rows())
        .map(|r| graph.csr.degree(r))
        .max()
        .unwrap_or(0)
}

/// The per-warp NZE window of a COO/CSR pipeline launch:
/// `[w·cache, w·cache + min(cache, nnz − w·cache))`.
fn nze_window() -> (Sym, Sym) {
    let base = Sym::warp_id().mul(Sym::cache());
    let len = Sym::cache().min(Sym::nnz().sub(base.clone()));
    (base, len)
}

/// Read envelope helper.
fn read(buffer: &'static str, extent: Sym) -> BufferAccess {
    BufferAccess {
        buffer,
        extent: extent.clone(),
        pattern: Pattern::Bounded {
            lo: Sym::lit(0),
            hi: extent,
        },
        mode: Mode::Read,
    }
}

/// Atomic write envelope helper.
fn atomic(buffer: &'static str, extent: Sym) -> BufferAccess {
    BufferAccess {
        buffer,
        extent: extent.clone(),
        pattern: Pattern::Bounded {
            lo: Sym::lit(0),
            hi: extent,
        },
        mode: Mode::Atomic,
    }
}

/// Generous Stage-1 + Stage-2 instruction bound for an NZE-window
/// pipeline warp: a fixed setup allowance plus a per-cached-NZE term
/// linear in the feature length.
fn pipeline_ops(setup: u64, per_edge_base: u64) -> Sym {
    Sym::lit(setup).add(Sym::cache().mul(Sym::lit(per_edge_base).add(Sym::f().mul(Sym::lit(8)))))
}

/// Shared-memory phase script of the COO Stage 1 (Listing 1): row IDs at
/// `[0, c)`, column IDs at `[c, 2c)`, optionally edge values at
/// `[2c, 3c)`, one barrier, then Stage-2 reads across the staged window.
fn coo_shared(needs_vals: bool) -> (Sym, Vec<SharedStep>) {
    let c = Sym::cache();
    let regions: u64 = if needs_vals { 3 } else { 2 };
    let words = c.clone().mul(Sym::lit(regions));
    let mut steps = vec![
        SharedStep::Store {
            lo: Sym::lit(0),
            hi: c.clone(),
        },
        SharedStep::Store {
            lo: c.clone(),
            hi: c.clone().mul(Sym::lit(2)),
        },
    ];
    if needs_vals {
        steps.push(SharedStep::Store {
            lo: c.clone().mul(Sym::lit(2)),
            hi: c.clone().mul(Sym::lit(3)),
        });
    }
    steps.push(SharedStep::Barrier);
    steps.push(SharedStep::Load {
        lo: Sym::lit(0),
        hi: words.clone(),
    });
    (words, steps)
}

/// Shared script of the CSR Stage 1: columns at `[0, c)`, values at
/// `[c, 2c)`, the offsets ring at `[2c, 3c + 2)`, one barrier, Stage-2
/// reads across the whole window.
fn csr_shared() -> (Sym, Vec<SharedStep>) {
    let c = Sym::cache();
    let words = c.clone().mul(Sym::lit(3)).add(Sym::lit(2));
    let steps = vec![
        SharedStep::Store {
            lo: Sym::lit(0),
            hi: c.clone().mul(Sym::lit(2)),
        },
        SharedStep::Store {
            lo: c.clone().mul(Sym::lit(2)),
            hi: words.clone(),
        },
        SharedStep::Barrier,
        SharedStep::Load {
            lo: Sym::lit(0),
            hi: words.clone(),
        },
    ];
    (words, steps)
}

fn env_for(graph: &GraphData, f: usize, cache: usize) -> crate::analysis::sym::Env {
    base_env(
        graph.nnz(),
        graph.num_vertices(),
        f,
        cache,
        max_degree(graph),
    )
}

/// GNNOne COO SDDMM (`CooNzes × EdgeDot`): each warp exclusively owns one
/// NZE window of `w`; `x`/`y` are gather-reads.
pub fn gnnone_coo_sddmm(
    name: &str,
    graph: &GraphData,
    cfg: &GnnOneConfig,
    f: usize,
) -> AccessSummary {
    let (start, len) = nze_window();
    let (shared_words, shared_steps) = if cfg.data_reuse {
        coo_shared(false)
    } else {
        (Sym::lit(0), Vec::new())
    };
    let feat = Sym::rows().mul(Sym::f());
    let launch = LaunchSummary {
        grid_warps: Sym::nnz().ceil_div(Sym::cache()),
        accesses: vec![
            BufferAccess {
                buffer: "w",
                extent: Sym::nnz(),
                pattern: Pattern::Affine { start, len },
                mode: Mode::Exclusive,
            },
            read("coo_rows", Sym::nnz()),
            read("coo_cols", Sym::nnz()),
            read("x", feat.clone()),
            read("y", feat),
        ],
        shared_words,
        shared_steps,
        ops_per_warp: pipeline_ops(256, 32),
        ..LaunchSummary::new("coo-sddmm")
    };
    AccessSummary::single(
        name,
        "sddmm",
        ExecModel::Sim,
        env_for(graph, f, cfg.cache_size),
        launch,
    )
}

/// GNNOne COO SpMM (`CooNzes × RowAccum`): row accumulators flush with
/// atomics at row splits, so `y` is an atomic envelope.
pub fn gnnone_coo_spmm(
    name: &str,
    graph: &GraphData,
    cfg: &GnnOneConfig,
    f: usize,
) -> AccessSummary {
    let (shared_words, shared_steps) = if cfg.data_reuse {
        coo_shared(true)
    } else {
        (Sym::lit(0), Vec::new())
    };
    let feat = Sym::rows().mul(Sym::f());
    let launch = LaunchSummary {
        grid_warps: Sym::nnz().ceil_div(Sym::cache()),
        accesses: vec![
            atomic("y", feat.clone()),
            read("edge_vals", Sym::nnz()),
            read("coo_rows", Sym::nnz()),
            read("coo_cols", Sym::nnz()),
            read("x", feat),
        ],
        shared_words,
        shared_steps,
        ops_per_warp: pipeline_ops(256, 32),
        ..LaunchSummary::new("coo-spmm")
    };
    AccessSummary::single(
        name,
        "spmm",
        ExecModel::Sim,
        env_for(graph, f, cfg.cache_size),
        launch,
    )
}

/// GNNOne CSR SpMM (`CsrNzes × RowAccum`): the COO shape plus the binary
/// row search and the staged offsets ring.
pub fn gnnone_csr_spmm(
    name: &str,
    graph: &GraphData,
    cfg: &GnnOneConfig,
    f: usize,
) -> AccessSummary {
    let (shared_words, shared_steps) = csr_shared();
    let feat = Sym::rows().mul(Sym::f());
    let launch = LaunchSummary {
        grid_warps: Sym::nnz().ceil_div(Sym::cache()),
        accesses: vec![
            atomic("y", feat.clone()),
            read("edge_vals", Sym::nnz()),
            read("csr_offsets", Sym::rows().add(Sym::lit(1))),
            read("csr_cols", Sym::nnz()),
            read("x", feat),
        ],
        shared_words,
        shared_steps,
        // Extra allowance for the two binary row searches (≤ 2·⌈log₂
        // rows⌉ dependent probes ≤ 128 for any 2⁶⁴ graph) and the ring
        // staging.
        ops_per_warp: pipeline_ops(1024, 48),
        ..LaunchSummary::new("csr-spmm")
    };
    AccessSummary::single(
        name,
        "spmm",
        ExecModel::Sim,
        env_for(graph, f, cfg.cache_size),
        launch,
    )
}

/// GNNOne edge-apply (`CooNzes × ScalarGather`): `w[e] = el[u] + er[v]`
/// over exclusive NZE windows, scalar features.
pub fn gnnone_uaddv(name: &str, graph: &GraphData, cfg: &GnnOneConfig) -> AccessSummary {
    let (start, len) = nze_window();
    let (shared_words, shared_steps) = if cfg.data_reuse {
        coo_shared(false)
    } else {
        (Sym::lit(0), Vec::new())
    };
    let launch = LaunchSummary {
        grid_warps: Sym::nnz().ceil_div(Sym::cache()),
        accesses: vec![
            BufferAccess {
                buffer: "w",
                extent: Sym::nnz(),
                pattern: Pattern::Affine { start, len },
                mode: Mode::Exclusive,
            },
            read("coo_rows", Sym::nnz()),
            read("coo_cols", Sym::nnz()),
            read("el", Sym::rows()),
            read("er", Sym::rows()),
        ],
        shared_words,
        shared_steps,
        ops_per_warp: pipeline_ops(256, 32),
        ..LaunchSummary::new("u-add-v")
    };
    AccessSummary::single(
        name,
        "u-add-v",
        ExecModel::Sim,
        env_for(graph, 1, cfg.cache_size),
        launch,
    )
}

/// GNNOne SpMV: 256-NZE windows, segmented warp scan, atomic boundary
/// adds into `y`.
pub fn gnnone_spmv(name: &str, graph: &GraphData, nze_per_warp: u64) -> AccessSummary {
    let launch = LaunchSummary {
        grid_warps: Sym::nnz().ceil_div(Sym::lit(nze_per_warp)),
        accesses: vec![
            atomic("y", Sym::rows()),
            read("edge_vals", Sym::nnz()),
            read("coo_rows", Sym::nnz()),
            read("coo_cols", Sym::nnz()),
            read("x", Sym::rows()),
        ],
        ops_per_warp: Sym::lit(256).add(Sym::lit(nze_per_warp).mul(Sym::lit(24))),
        ..LaunchSummary::new("spmv")
    };
    // The window size is a kernel constant, not the config cache — carry
    // it in `cache` so the Affine windows (none here) and displays agree.
    AccessSummary::single(
        name,
        "spmv",
        ExecModel::Sim,
        env_for(graph, 1, nze_per_warp as usize),
        launch,
    )
}

/// Fused GAT attention (`CsrRows × RowSoftmaxGat`): one warp per row owns
/// the row's `y` slice and CSR-aligned `alpha` span; logits for rows up
/// to the cache length stage through shared memory in
/// store → barrier → read chunks.
pub fn fused_gat(name: &str, graph: &GraphData, f: usize, logit_cache_words: u64) -> AccessSummary {
    let alpha: Vec<(usize, u64, u64)> = (0..graph.csr.num_rows())
        .map(|r| {
            let range = graph.csr.row_range(r);
            (r, range.start as u64, range.end as u64)
        })
        .collect();
    let feat = Sym::rows().mul(Sym::f());
    let chunk = Sym::max_degree().min(Sym::lit(logit_cache_words));
    let launch = LaunchSummary {
        grid_warps: Sym::rows(),
        accesses: vec![
            BufferAccess {
                buffer: "y",
                extent: feat.clone(),
                pattern: Pattern::Affine {
                    start: Sym::warp_id().mul(Sym::f()),
                    len: Sym::f(),
                },
                mode: Mode::Exclusive,
            },
            BufferAccess {
                buffer: "alpha",
                extent: Sym::nnz(),
                pattern: Pattern::Table(alpha),
                mode: Mode::Exclusive,
            },
            read("z", feat),
            read("el", Sym::rows()),
            read("er", Sym::rows()),
            read("csr_offsets", Sym::rows().add(Sym::lit(1))),
            read("csr_cols", Sym::nnz()),
        ],
        shared_words: Sym::lit(logit_cache_words),
        shared_steps: vec![
            SharedStep::Store {
                lo: Sym::lit(0),
                hi: chunk.clone(),
            },
            SharedStep::Barrier,
            SharedStep::Load {
                lo: Sym::lit(0),
                hi: chunk,
            },
        ],
        // Three passes over the row's span, each ≤ a per-edge constant
        // plus the feature-length aggregation term.
        ops_per_warp: Sym::lit(512)
            .add(Sym::max_degree().mul(Sym::lit(48).add(Sym::f().mul(Sym::lit(12))))),
        ..LaunchSummary::new("fused-gat")
    };
    AccessSummary::single(
        name,
        "fused",
        ExecModel::Sim,
        env_for(graph, f, 128),
        launch,
    )
}

// ---------------------------------------------------------------------
// Native model: per-family summaries of the shared `backend::native`
// routines. One rayon task plays the role of one "warp"; there is no
// shared memory and no watchdog.
// ---------------------------------------------------------------------

/// Symbolic form of [`native::cta_edges`]: `max(8·cache, 1)`.
fn native_block() -> Sym {
    Sym::lit(native::WARPS_PER_CTA as u64)
        .mul(Sym::cache().max(Sym::lit(1)))
        .max(Sym::lit(1))
}

/// Native edge-output launch (`sddmm_edges` / `u_add_v_edges`): task `t`
/// exclusively owns the NZE block `[t·B, t·B + min(B, nnz − t·B))`.
pub fn native_edge_out(
    name: &str,
    op: &'static str,
    graph: &GraphData,
    cfg: &GnnOneConfig,
    f: usize,
    reads: Vec<BufferAccess>,
) -> AccessSummary {
    let block = native_block();
    let start = Sym::warp_id().mul(block.clone());
    let len = block.clone().min(Sym::nnz().sub(start.clone()));
    let mut accesses = vec![BufferAccess {
        buffer: "w",
        extent: Sym::nnz(),
        pattern: Pattern::Affine { start, len },
        mode: Mode::Exclusive,
    }];
    accesses.extend(reads);
    let launch = LaunchSummary {
        grid_warps: Sym::nnz().ceil_div(block),
        accesses,
        ..LaunchSummary::new("native-edge-blocks")
    };
    AccessSummary::single(
        name,
        op,
        ExecModel::Native,
        env_for(graph, f, cfg.cache_size),
        launch,
    )
}

/// The native row partition for a config: the exact blocks
/// [`native::row_blocks`] will hand to rayon.
pub fn native_row_partition(graph: &GraphData, cfg: &GnnOneConfig) -> Vec<(usize, usize)> {
    native::row_blocks(
        graph.csr.offsets(),
        graph.num_vertices(),
        native::cta_edges(cfg.cache_size),
    )
}

/// Native row-output launch (`spmm_rows` / `spmv_rows` family): task `t`
/// exclusively owns the feature rows of its row block.
pub fn native_row_out(
    name: &str,
    op: &'static str,
    graph: &GraphData,
    cfg: &GnnOneConfig,
    f: usize,
    reads: Vec<BufferAccess>,
) -> AccessSummary {
    let table: Vec<(usize, u64, u64)> = native_row_partition(graph, cfg)
        .iter()
        .enumerate()
        .map(|(t, &(r0, r1))| (t, (r0 * f) as u64, (r1 * f) as u64))
        .collect();
    let tasks = table.len() as u64;
    let mut accesses = vec![BufferAccess {
        buffer: "y",
        extent: Sym::rows().mul(Sym::f()),
        pattern: Pattern::Table(table),
        mode: Mode::Exclusive,
    }];
    accesses.extend(reads);
    let launch = LaunchSummary {
        grid_warps: Sym::lit(tasks),
        accesses,
        ..LaunchSummary::new("native-row-blocks")
    };
    AccessSummary::single(
        name,
        op,
        ExecModel::Native,
        env_for(graph, f, cfg.cache_size),
        launch,
    )
}

/// Native row-output SDDMM (`sddmm_rows`): task `t` owns the NZE span
/// `[offsets[r0], offsets[r1])` of its row block.
pub fn native_sddmm_rows(
    name: &str,
    graph: &GraphData,
    cfg: &GnnOneConfig,
    f: usize,
) -> AccessSummary {
    let offsets = graph.csr.offsets();
    let table: Vec<(usize, u64, u64)> = native_row_partition(graph, cfg)
        .iter()
        .enumerate()
        .map(|(t, &(r0, r1))| (t, offsets[r0] as u64, offsets[r1] as u64))
        .collect();
    let tasks = table.len() as u64;
    let feat = Sym::rows().mul(Sym::f());
    let launch = LaunchSummary {
        grid_warps: Sym::lit(tasks),
        accesses: vec![
            BufferAccess {
                buffer: "w",
                extent: Sym::nnz(),
                pattern: Pattern::Table(table),
                mode: Mode::Exclusive,
            },
            read("csr_offsets", Sym::rows().add(Sym::lit(1))),
            read("csr_cols", Sym::nnz()),
            read("x", feat.clone()),
            read("y", feat),
        ],
        ..LaunchSummary::new("native-sddmm-rows")
    };
    AccessSummary::single(
        name,
        "sddmm",
        ExecModel::Native,
        env_for(graph, f, cfg.cache_size),
        launch,
    )
}

/// Native fused GAT (`fused_gat_rows`): each task owns both its row
/// block's `y` slice and the matching CSR-aligned `alpha` span.
pub fn native_fused_gat(name: &str, graph: &GraphData, f: usize) -> AccessSummary {
    let cfg = GnnOneConfig::default();
    let offsets = graph.csr.offsets();
    let blocks = native_row_partition(graph, &cfg);
    let y_table: Vec<(usize, u64, u64)> = blocks
        .iter()
        .enumerate()
        .map(|(t, &(r0, r1))| (t, (r0 * f) as u64, (r1 * f) as u64))
        .collect();
    let a_table: Vec<(usize, u64, u64)> = blocks
        .iter()
        .enumerate()
        .map(|(t, &(r0, r1))| (t, offsets[r0] as u64, offsets[r1] as u64))
        .collect();
    let tasks = blocks.len() as u64;
    let feat = Sym::rows().mul(Sym::f());
    let launch = LaunchSummary {
        grid_warps: Sym::lit(tasks),
        accesses: vec![
            BufferAccess {
                buffer: "y",
                extent: feat.clone(),
                pattern: Pattern::Table(y_table),
                mode: Mode::Exclusive,
            },
            BufferAccess {
                buffer: "alpha",
                extent: Sym::nnz(),
                pattern: Pattern::Table(a_table),
                mode: Mode::Exclusive,
            },
            read("z", feat),
            read("el", Sym::rows()),
            read("er", Sym::rows()),
            read("csr_offsets", Sym::rows().add(Sym::lit(1))),
            read("csr_cols", Sym::nnz()),
        ],
        ..LaunchSummary::new("native-fused-rows")
    };
    AccessSummary::single(
        name,
        "fused",
        ExecModel::Native,
        env_for(graph, f, cfg.cache_size),
        launch,
    )
}

/// Standard read set of an SpMM-shaped native launch.
pub fn spmm_reads() -> Vec<BufferAccess> {
    vec![
        read("edge_vals", Sym::nnz()),
        read("csr_offsets", Sym::rows().add(Sym::lit(1))),
        read("csr_cols", Sym::nnz()),
        read("x", Sym::rows().mul(Sym::f())),
    ]
}

/// Standard read set of an SDDMM-shaped native edge launch.
pub fn sddmm_edge_reads() -> Vec<BufferAccess> {
    vec![
        read("coo_rows", Sym::nnz()),
        read("coo_cols", Sym::nnz()),
        read("x", Sym::rows().mul(Sym::f())),
        read("y", Sym::rows().mul(Sym::f())),
    ]
}

/// Standard read set of the native `u_add_v` edge launch.
pub fn uaddv_reads() -> Vec<BufferAccess> {
    vec![
        read("coo_rows", Sym::nnz()),
        read("coo_cols", Sym::nnz()),
        read("el", Sym::rows()),
        read("er", Sym::rows()),
    ]
}

// ---------------------------------------------------------------------
// Baseline simulator summaries. Each mirrors the launch geometry its
// kernel file actually constructs; per-chunk/per-bin partitions computed
// at kernel construction time arrive here as explicit interval tables.
// ---------------------------------------------------------------------

/// Generous per-warp instruction bound for a vertex-parallel warp that
/// walks at most `span` NZEs with feature-length-dependent work per NZE.
fn span_ops(span: Sym) -> Sym {
    Sym::lit(256).add(span.mul(Sym::lit(32).add(Sym::f().mul(Sym::lit(8)))))
}

/// The standard CSR + feature read set of the vertex-parallel baselines.
fn vp_reads(feat_y: bool) -> Vec<BufferAccess> {
    let feat = Sym::rows().mul(Sym::f());
    let mut reads = vec![
        read("csr_offsets", Sym::rows().add(Sym::lit(1))),
        read("csr_cols", Sym::nnz()),
        read("x", feat.clone()),
    ];
    if feat_y {
        reads.push(read("y", feat));
    } else {
        reads.insert(0, read("edge_vals", Sym::nnz()));
    }
    reads
}

/// Warp-per-row-chunk vertex-parallel SDDMM (dgSparse / FeatGraph /
/// Sputnik): chunk `t` exclusively owns its `[start, end)` NZE span of
/// `w`; chunks are capped at 256 NZEs by construction.
pub fn vp_chunk_sddmm(
    name: &str,
    graph: &GraphData,
    f: usize,
    table: Vec<(usize, u64, u64)>,
) -> AccessSummary {
    let tasks = table.len() as u64;
    let mut accesses = vec![BufferAccess {
        buffer: "w",
        extent: Sym::nnz(),
        pattern: Pattern::Table(table),
        mode: Mode::Exclusive,
    }];
    accesses.extend(vp_reads(true));
    let launch = LaunchSummary {
        grid_warps: Sym::lit(tasks),
        accesses,
        ops_per_warp: span_ops(Sym::lit(256)),
        ..LaunchSummary::new("vp-row-chunks")
    };
    AccessSummary::single(name, "sddmm", ExecModel::Sim, env_for(graph, f, 32), launch)
}

/// Thread-per-row vertex-parallel SDDMM (cuSPARSE): warp `w` owns rows
/// `[32w, 32w+32)`, hence the contiguous NZE span
/// `[offsets[32w], offsets[min(32w+32, rows)])` of `w`.
pub fn vp_thread_row_sddmm(name: &str, graph: &GraphData, f: usize) -> AccessSummary {
    let offsets = graph.csr.offsets();
    let rows = graph.csr.num_rows();
    let table: Vec<(usize, u64, u64)> = (0..rows.div_ceil(32))
        .map(|w| {
            (
                w,
                offsets[32 * w] as u64,
                offsets[(32 * w + 32).min(rows)] as u64,
            )
        })
        .collect();
    let mut accesses = vec![BufferAccess {
        buffer: "w",
        extent: Sym::nnz(),
        pattern: Pattern::Table(table),
        mode: Mode::Exclusive,
    }];
    accesses.extend(vp_reads(true));
    let launch = LaunchSummary {
        grid_warps: Sym::rows().ceil_div(Sym::lit(32)),
        accesses,
        ops_per_warp: span_ops(Sym::max_degree()),
        ..LaunchSummary::new("vp-thread-rows")
    };
    AccessSummary::single(name, "sddmm", ExecModel::Sim, env_for(graph, f, 32), launch)
}

/// One maximal shared-memory round of a 32-NZE staging loop: column IDs
/// at `[0, 32)`, edge values at `[32, 64)`, one barrier, broadcast reads
/// across the staged window. Shorter (ragged) rounds touch subsets of
/// these ranges, so the maximal round's proof covers every round.
fn staged_round() -> (Sym, Vec<SharedStep>) {
    (
        Sym::lit(64),
        vec![
            SharedStep::Store {
                lo: Sym::lit(0),
                hi: Sym::lit(32),
            },
            SharedStep::Store {
                lo: Sym::lit(32),
                hi: Sym::lit(64),
            },
            SharedStep::Barrier,
            SharedStep::Load {
                lo: Sym::lit(0),
                hi: Sym::lit(64),
            },
        ],
    )
}

/// Warp-per-row SpMM (GE-SpMM, FeatGraph): warp `w` exclusively owns the
/// feature row `[w·f, w·f + f)` of `y`. `staged` adds GE-SpMM's
/// Coalesced-Row-Caching shared rounds.
pub fn warp_per_row_spmm(name: &str, graph: &GraphData, f: usize, staged: bool) -> AccessSummary {
    let (shared_words, shared_steps) = if staged {
        staged_round()
    } else {
        (Sym::lit(0), Vec::new())
    };
    let mut accesses = vec![BufferAccess {
        buffer: "y",
        extent: Sym::rows().mul(Sym::f()),
        pattern: Pattern::Affine {
            start: Sym::warp_id().mul(Sym::f()),
            len: Sym::f(),
        },
        mode: Mode::Exclusive,
    }];
    accesses.extend(vp_reads(false));
    let launch = LaunchSummary {
        grid_warps: Sym::rows(),
        accesses,
        shared_words,
        shared_steps,
        ops_per_warp: span_ops(Sym::max_degree()),
        ..LaunchSummary::new("warp-per-row")
    };
    AccessSummary::single(name, "spmm", ExecModel::Sim, env_for(graph, f, 32), launch)
}

/// Row-swizzled SpMM (Sputnik): warp `w` owns row `order[w]`'s feature
/// slice — a permutation table, disjoint iff the swizzle is a bijection.
pub fn swizzled_row_spmm(name: &str, graph: &GraphData, f: usize, order: &[u32]) -> AccessSummary {
    let table: Vec<(usize, u64, u64)> = order
        .iter()
        .enumerate()
        .map(|(w, &row)| {
            let base = row as u64 * f as u64;
            (w, base, base + f as u64)
        })
        .collect();
    let mut accesses = vec![
        BufferAccess {
            buffer: "y",
            extent: Sym::rows().mul(Sym::f()),
            pattern: Pattern::Table(table),
            mode: Mode::Exclusive,
        },
        read("order", Sym::rows()),
    ];
    accesses.extend(vp_reads(false));
    let launch = LaunchSummary {
        grid_warps: Sym::lit(order.len() as u64),
        accesses,
        ops_per_warp: span_ops(Sym::max_degree()),
        ..LaunchSummary::new("swizzled-rows")
    };
    AccessSummary::single(name, "spmm", ExecModel::Sim, env_for(graph, f, 32), launch)
}

/// Row-split SpMM (cuSPARSE `csrmm`): unsplit chunks store their row's
/// feature slice exclusively (the `excl_table` the kernel derives from
/// its chunk partition and batching factor), split rows combine through
/// atomics.
pub fn chunked_row_spmm(
    name: &str,
    graph: &GraphData,
    f: usize,
    excl_table: Vec<(usize, u64, u64)>,
    grid_warps: u64,
) -> AccessSummary {
    let feat = Sym::rows().mul(Sym::f());
    let launch = LaunchSummary {
        grid_warps: Sym::lit(grid_warps),
        accesses: vec![
            BufferAccess {
                buffer: "y",
                extent: feat.clone(),
                pattern: Pattern::Table(excl_table),
                mode: Mode::Exclusive,
            },
            atomic("y", feat.clone()),
            read("edge_vals", Sym::nnz()),
            read("csr_cols", Sym::nnz()),
            read("x", feat),
        ],
        // ≤ 256 merge steps over up to 32 batched chunks, each step a
        // handful of warp-wide instructions per feature tile.
        ops_per_warp: Sym::lit(256)
            .add(Sym::lit(256).mul(Sym::lit(64).add(Sym::f().mul(Sym::lit(16))))),
        ..LaunchSummary::new("row-split-chunks")
    };
    AccessSummary::single(name, "spmm", ExecModel::Sim, env_for(graph, f, 32), launch)
}

/// Nonzero-split SpMM (Yang et al.): equal `tile`-NZE spans per warp,
/// all output flushed through atomics — no exclusive windows at all.
pub fn nonzero_split_spmm(name: &str, graph: &GraphData, f: usize, tile: u64) -> AccessSummary {
    let feat = Sym::rows().mul(Sym::f());
    let launch = LaunchSummary {
        grid_warps: Sym::nnz().ceil_div(Sym::lit(tile)),
        accesses: vec![
            atomic("y", feat.clone()),
            read("edge_vals", Sym::nnz()),
            read("coo_rows", Sym::nnz()),
            read("coo_cols", Sym::nnz()),
            read("x", feat),
        ],
        ops_per_warp: span_ops(Sym::lit(tile)),
        ..LaunchSummary::new("nonzero-split")
    };
    AccessSummary::single(
        name,
        "spmm",
        ExecModel::Sim,
        env_for(graph, f, tile as usize),
        launch,
    )
}

/// Row-binning SpMM: one launch per non-empty bin. Small-bin warps own 32
/// rows each, medium-bin warps one row, large-bin rows are shared by four
/// warps and combine atomically.
pub fn row_binning_spmm(
    name: &str,
    graph: &GraphData,
    f: usize,
    small: &[u32],
    medium: &[u32],
    large: &[u32],
) -> AccessSummary {
    let feat = || Sym::rows().mul(Sym::f());
    let row_slice = |w: usize, row: u32| {
        let base = row as u64 * f as u64;
        (w, base, base + f as u64)
    };
    let bin_reads = |bin: &'static str, len: usize| {
        let mut reads = vec![read(bin, Sym::lit(len as u64))];
        reads.extend(vp_reads(false));
        reads
    };
    let mut launches = Vec::new();
    if !small.is_empty() {
        let table: Vec<_> = small
            .iter()
            .enumerate()
            .map(|(i, &row)| row_slice(i / 32, row))
            .collect();
        let mut accesses = vec![BufferAccess {
            buffer: "y",
            extent: feat(),
            pattern: Pattern::Table(table),
            mode: Mode::Exclusive,
        }];
        accesses.extend(bin_reads("bin_small", small.len()));
        launches.push(LaunchSummary {
            grid_warps: Sym::lit(small.len().div_ceil(32) as u64),
            accesses,
            ops_per_warp: span_ops(Sym::max_degree()),
            ..LaunchSummary::new("bin-small")
        });
    }
    if !medium.is_empty() {
        let table: Vec<_> = medium
            .iter()
            .enumerate()
            .map(|(i, &row)| row_slice(i, row))
            .collect();
        let mut accesses = vec![BufferAccess {
            buffer: "y",
            extent: feat(),
            pattern: Pattern::Table(table),
            mode: Mode::Exclusive,
        }];
        accesses.extend(bin_reads("bin_medium", medium.len()));
        launches.push(LaunchSummary {
            grid_warps: Sym::lit(medium.len() as u64),
            accesses,
            ops_per_warp: span_ops(Sym::max_degree()),
            ..LaunchSummary::new("bin-medium")
        });
    }
    if !large.is_empty() {
        let mut accesses = vec![atomic("y", feat())];
        accesses.extend(bin_reads("bin_large", large.len()));
        launches.push(LaunchSummary {
            grid_warps: Sym::lit(large.len() as u64 * 4),
            accesses,
            ops_per_warp: span_ops(Sym::max_degree()),
            ..LaunchSummary::new("bin-large")
        });
    }
    AccessSummary {
        kernel: name.to_string(),
        op: "spmm",
        model: ExecModel::Sim,
        launches,
        base_env: env_for(graph, f, 32),
    }
}

/// Neighbor-group SpMM (GNNAdvisor, Huang et al.): one warp per ≤32-NZE
/// group, every group flushing atomically. The metadata broadcast costs
/// a leading barrier; Huang additionally stages the group in shared.
pub fn neighbor_group_spmm(
    name: &str,
    graph: &GraphData,
    f: usize,
    num_groups: usize,
    staged: bool,
) -> AccessSummary {
    let (shared_words, mut shared_steps) = if staged {
        staged_round()
    } else {
        (Sym::lit(0), Vec::new())
    };
    // The metadata-broadcast barrier precedes any staging.
    shared_steps.insert(0, SharedStep::Barrier);
    let feat = Sym::rows().mul(Sym::f());
    let groups = Sym::lit(num_groups as u64);
    let launch = LaunchSummary {
        grid_warps: groups.clone(),
        accesses: vec![
            atomic("y", feat.clone()),
            read("group_row", groups.clone()),
            read("group_start", groups.clone()),
            read("group_len", groups),
            read("edge_vals", Sym::nnz()),
            read("csr_cols", Sym::nnz()),
            read("x", feat),
        ],
        shared_words,
        shared_steps,
        ops_per_warp: span_ops(Sym::lit(32)),
        ..LaunchSummary::new("neighbor-groups")
    };
    AccessSummary::single(name, "spmm", ExecModel::Sim, env_for(graph, f, 32), launch)
}

/// Merge-path SpMV (Merrill & Garland): one warp per merge span, atomic
/// row flushes; spans are ≤ 256 merge items by construction.
pub fn merge_spmv(name: &str, graph: &GraphData, num_spans: usize) -> AccessSummary {
    let launch = LaunchSummary {
        grid_warps: Sym::lit(num_spans as u64),
        accesses: vec![
            atomic("y", Sym::rows()),
            read("span_meta", Sym::lit(num_spans as u64 * 4)),
            read("csr_offsets", Sym::rows().add(Sym::lit(1))),
            read("csr_cols", Sym::nnz()),
            read("edge_vals", Sym::nnz()),
            read("x", Sym::rows()),
        ],
        shared_steps: vec![SharedStep::Barrier],
        ops_per_warp: Sym::lit(1 << 16),
        ..LaunchSummary::new("merge-spans")
    };
    AccessSummary::single(name, "spmv", ExecModel::Sim, env_for(graph, 1, 32), launch)
}

/// Dalton-class nonzero-split SpMV: 256-NZE warp windows; every 32-NZE
/// iteration materializes products and row IDs in shared memory, then
/// runs a 5-round segmented tree scan (load → store → barrier each).
pub fn dalton_spmv(name: &str, graph: &GraphData, nze_per_warp: u64) -> AccessSummary {
    let mut shared_steps = vec![
        SharedStep::Store {
            lo: Sym::lit(0),
            hi: Sym::lit(32),
        },
        SharedStep::Store {
            lo: Sym::lit(32),
            hi: Sym::lit(64),
        },
        SharedStep::Barrier,
    ];
    for _ in 0..5 {
        shared_steps.push(SharedStep::Load {
            lo: Sym::lit(0),
            hi: Sym::lit(64),
        });
        shared_steps.push(SharedStep::Store {
            lo: Sym::lit(0),
            hi: Sym::lit(32),
        });
        shared_steps.push(SharedStep::Barrier);
    }
    let launch = LaunchSummary {
        grid_warps: Sym::nnz().ceil_div(Sym::lit(nze_per_warp)),
        accesses: vec![
            atomic("y", Sym::rows()),
            read("coo_rows", Sym::nnz()),
            read("coo_cols", Sym::nnz()),
            read("edge_vals", Sym::nnz()),
            read("x", Sym::rows()),
        ],
        shared_words: Sym::lit(64),
        shared_steps,
        ops_per_warp: Sym::lit(1 << 16),
        ..LaunchSummary::new("dalton-windows")
    };
    AccessSummary::single(
        name,
        "spmv",
        ExecModel::Sim,
        env_for(graph, 1, nze_per_warp as usize),
        launch,
    )
}

/// A read-envelope access, public for baseline summary impls.
pub fn read_access(buffer: &'static str, extent: Sym) -> BufferAccess {
    read(buffer, extent)
}

/// An atomic write-envelope access, public for baseline summary impls.
pub fn atomic_access(buffer: &'static str, extent: Sym) -> BufferAccess {
    atomic(buffer, extent)
}
