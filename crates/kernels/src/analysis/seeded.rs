//! Differential-validation corpus: deliberately broken kernels whose
//! honest summaries the static checker must *refute* — and whose dynamic
//! executions the sanitizer / watchdog must catch.
//!
//! Each [`SeededBug`] pairs (a) a faithful access summary of the broken
//! behaviour with (b) a runnable [`WarpKernel`] exhibiting it. The test
//! suite checks both directions agree: `check_summary` returns
//! [`Refuted`](crate::analysis::Verdict::Refuted) with the expected
//! obligation, and a sanitized launch produces the matching dynamic
//! diagnostic. A bug the static pass misses but the sanitizer catches
//! (or vice versa) is a soundness hole in one of the two layers.

use gnnone_sim::engine::LaunchError;
use gnnone_sim::sanitize::SanitizeConfig;
use gnnone_sim::{
    CheckKind, DeviceBuffer, Gpu, GpuSpec, KernelResources, LaunchSpec, WarpCtx, WarpKernel,
};

use crate::analysis::summary::{
    base_env, AccessSummary, BufferAccess, ExecModel, LaunchSummary, Mode, Pattern, SharedStep,
};
use crate::analysis::sym::Sym;

/// What the dynamic layer is expected to report for a seeded bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DynamicCatch {
    /// The sanitizer records a finding of this kind.
    Finding(CheckKind),
    /// The watchdog aborts the launch.
    Watchdog,
}

/// One seeded bug: name, expected static witness, expected dynamic catch,
/// and the two artifacts (summary + runnable kernel) that must disagree
/// with the safety obligations in the same way.
pub struct SeededBug {
    /// Stable corpus name.
    pub name: &'static str,
    /// The [`crate::analysis::Witness::check`] tag the static refutation
    /// must carry.
    pub expect_check: &'static str,
    /// What the dynamic layer must report.
    pub expect_dynamic: DynamicCatch,
    summary: fn() -> AccessSummary,
    run: fn(&Gpu) -> Result<(), LaunchError>,
}

impl SeededBug {
    /// The honest summary of the broken kernel.
    pub fn summary(&self) -> AccessSummary {
        (self.summary)()
    }

    /// Executes the bug on a sanitized tiny GPU and reports whether the
    /// dynamic layer caught it as expected.
    pub fn dynamically_caught(&self) -> bool {
        let gpu = Gpu::new(GpuSpec::tiny());
        let san = gpu.enable_sanitizer(SanitizeConfig::on());
        let result = (self.run)(&gpu);
        match self.expect_dynamic {
            DynamicCatch::Finding(kind) => san
                .launches()
                .iter()
                .any(|audit| audit.findings.iter().any(|f| f.kind == kind)),
            DynamicCatch::Watchdog => matches!(
                result,
                Err(LaunchError::Aborted(ref a))
                    if a.reason == gnnone_sim::AbortReason::Watchdog
            ),
        }
    }
}

fn res(shared_bytes_per_cta: usize) -> KernelResources {
    KernelResources {
        threads_per_cta: 32,
        regs_per_thread: 32,
        shared_bytes_per_cta,
    }
}

/// One-launch summary over a synthetic environment.
fn bug_summary(name: &str, launch: LaunchSummary) -> AccessSummary {
    AccessSummary::single(
        name,
        "seeded",
        ExecModel::Sim,
        base_env(100, 64, 16, 32, 8),
        launch,
    )
}

fn exclusive(buffer: &'static str, extent: Sym, pattern: Pattern) -> BufferAccess {
    BufferAccess {
        buffer,
        extent,
        pattern,
        mode: Mode::Exclusive,
    }
}

macro_rules! warp_kernel {
    ($ty:ident, $name:literal, $shared:expr, $grid:expr,
     |$this:ident, $warp:ident, $ctx:ident| $body:block) => {
        struct $ty {
            bufs: Vec<DeviceBuffer<f32>>,
        }
        impl WarpKernel for $ty {
            fn resources(&self) -> KernelResources {
                res($shared)
            }
            fn grid_warps(&self) -> usize {
                $grid
            }
            fn run_warp(&self, $warp: usize, $ctx: &mut WarpCtx) {
                let $this = self;
                let _ = &$this.bufs;
                $body
            }
            fn name(&self) -> &str {
                $name
            }
        }
    };
}

// --- race bugs --------------------------------------------------------

warp_kernel!(RacingStores, "racing-stores", 0, 2, |this, warp_id, ctx| {
    ctx.store_f32(&this.bufs[0], |lane| {
        (lane == 0).then_some((0, warp_id as f32))
    });
});

warp_kernel!(
    OverlappingTails,
    "overlapping-tails",
    0,
    2,
    |this, warp_id, ctx| {
        // Each warp writes 33 elements from base w*32: tails collide.
        ctx.store_f32(&this.bufs[0], |lane| Some((warp_id * 32 + lane, 1.0)));
        ctx.store_f32(&this.bufs[0], |lane| {
            (lane == 0).then_some((warp_id * 32 + 32, 2.0))
        });
    }
);

warp_kernel!(
    SwizzleCollision,
    "swizzle-collision",
    0,
    2,
    |this, warp_id, ctx| {
        // A broken row swizzle maps both warps to row 0.
        let order = [0usize, 0usize];
        let base = order[warp_id] * 16;
        ctx.store_f32(&this.bufs[0], |lane| {
            (lane < 16).then_some((base + lane, 1.0))
        });
    }
);

warp_kernel!(ChunkOverlap, "chunk-overlap", 0, 2, |this, warp_id, ctx| {
    // Mis-split row chunks: warp 0 owns [0,40), warp 1 owns [32,64).
    if warp_id == 0 {
        ctx.store_f32(&this.bufs[0], |lane| Some((lane, 1.0)));
        ctx.store_f32(&this.bufs[0], |lane| (lane < 8).then_some((32 + lane, 1.0)));
    } else {
        ctx.store_f32(&this.bufs[0], |lane| Some((32 + lane, 2.0)));
    }
});

// --- bounds bugs ------------------------------------------------------

warp_kernel!(OobStore, "oob-store", 0, 1, |this, _w, ctx| {
    // Lanes 4..32 run past the 64-element buffer.
    ctx.store_f32(&this.bufs[0], |lane| Some((60 + lane, 1.0)));
});

warp_kernel!(OobLoad, "oob-load", 0, 1, |this, _w, ctx| {
    ctx.load_f32(&this.bufs[0], |lane| Some(60 + lane));
    ctx.use_loads();
});

warp_kernel!(OobLastWarp, "oob-last-warp", 0, 4, |this, warp_id, ctx| {
    // Unclamped NZE window: warp 3 stores [96,128) into a 100-element
    // buffer.
    ctx.store_f32(&this.bufs[0], |lane| Some((warp_id * 32 + lane, 1.0)));
});

warp_kernel!(AtomicOob, "atomic-oob", 0, 1, |this, _w, ctx| {
    ctx.atomic_add_f32(&this.bufs[0], |lane| (lane == 0).then_some((10, 1.0)));
});

// --- shared-memory bugs ----------------------------------------------

warp_kernel!(
    MissingBarrier,
    "missing-barrier",
    32 * 4,
    1,
    |this, _w, ctx| {
        ctx.shared_store(|lane| Some((lane, lane as u32)));
        // BUG: no ctx.barrier() between the stages.
        let _: gnnone_sim::LaneArr<u32> = ctx.shared_load(|lane| Some(31 - lane));
    }
);

warp_kernel!(
    UninitSharedRead,
    "uninit-shared-read",
    32 * 4,
    1,
    |this, _w, ctx| {
        let _: gnnone_sim::LaneArr<u32> = ctx.shared_load(Some);
    }
);

warp_kernel!(SharedOob, "shared-oob", 32 * 4, 1, |this, _w, ctx| {
    // Stores words 32..64 of a 32-word window.
    ctx.shared_store(|lane| Some((32 + lane, lane as u32)));
});

warp_kernel!(
    PartialCommit,
    "partial-commit",
    32 * 4,
    1,
    |this, _w, ctx| {
        // Only half the window is staged; stage 2 reads all of it.
        ctx.shared_store(|lane| (lane < 16).then_some((lane, lane as u32)));
        ctx.barrier();
        let _: gnnone_sim::LaneArr<u32> = ctx.shared_load(Some);
    }
);

warp_kernel!(
    BarrierAfterRead,
    "barrier-after-read",
    32 * 4,
    1,
    |this, _w, ctx| {
        // The barrier is sequenced after the read it was meant to order.
        let _: gnnone_sim::LaneArr<u32> = ctx.shared_load(Some);
        ctx.barrier();
        ctx.shared_store(|lane| Some((lane, lane as u32)));
    }
);

// --- budget bugs ------------------------------------------------------

warp_kernel!(RunawayLoop, "runaway-loop", 0, 1, |this, _w, ctx| {
    loop {
        ctx.compute(1024);
    }
});

warp_kernel!(BudgetCliff, "budget-cliff", 0, 1, |this, _w, ctx| {
    // Work quadratic in the input: feasible on toy graphs, guaranteed to
    // trip the derived budget at scale. 20k ops against a 10k budget.
    for _ in 0..20 {
        ctx.compute(1024);
    }
});

fn zeros(n: usize) -> Vec<DeviceBuffer<f32>> {
    vec![DeviceBuffer::<f32>::zeros(n)]
}

/// The 15-bug corpus.
pub fn corpus() -> Vec<SeededBug> {
    vec![
        SeededBug {
            name: "racing-stores",
            expect_check: "race",
            expect_dynamic: DynamicCatch::Finding(CheckKind::GlobalRace),
            summary: || {
                bug_summary(
                    "racing-stores",
                    LaunchSummary {
                        grid_warps: Sym::lit(2),
                        accesses: vec![exclusive(
                            "out",
                            Sym::lit(8),
                            Pattern::Affine {
                                start: Sym::lit(0),
                                len: Sym::lit(1),
                            },
                        )],
                        ..LaunchSummary::new("main")
                    },
                )
            },
            run: |gpu| gpu.try_launch(&RacingStores { bufs: zeros(8) }).map(|_| ()),
        },
        SeededBug {
            name: "overlapping-tails",
            expect_check: "race",
            expect_dynamic: DynamicCatch::Finding(CheckKind::GlobalRace),
            summary: || {
                bug_summary(
                    "overlapping-tails",
                    LaunchSummary {
                        grid_warps: Sym::lit(2),
                        accesses: vec![exclusive(
                            "out",
                            Sym::lit(128),
                            Pattern::Affine {
                                start: Sym::warp_id().mul(Sym::lit(32)),
                                len: Sym::lit(33),
                            },
                        )],
                        ..LaunchSummary::new("main")
                    },
                )
            },
            run: |gpu| {
                gpu.try_launch(&OverlappingTails { bufs: zeros(128) })
                    .map(|_| ())
            },
        },
        SeededBug {
            name: "swizzle-collision",
            expect_check: "race",
            expect_dynamic: DynamicCatch::Finding(CheckKind::GlobalRace),
            summary: || {
                bug_summary(
                    "swizzle-collision",
                    LaunchSummary {
                        grid_warps: Sym::lit(2),
                        accesses: vec![exclusive(
                            "y",
                            Sym::lit(32),
                            // The same broken order table the kernel uses.
                            Pattern::Table(vec![(0, 0, 16), (1, 0, 16)]),
                        )],
                        ..LaunchSummary::new("main")
                    },
                )
            },
            run: |gpu| {
                gpu.try_launch(&SwizzleCollision { bufs: zeros(32) })
                    .map(|_| ())
            },
        },
        SeededBug {
            name: "chunk-overlap",
            expect_check: "race",
            expect_dynamic: DynamicCatch::Finding(CheckKind::GlobalRace),
            summary: || {
                bug_summary(
                    "chunk-overlap",
                    LaunchSummary {
                        grid_warps: Sym::lit(2),
                        accesses: vec![exclusive(
                            "y",
                            Sym::lit(64),
                            Pattern::Table(vec![(0, 0, 40), (1, 32, 64)]),
                        )],
                        ..LaunchSummary::new("main")
                    },
                )
            },
            run: |gpu| {
                gpu.try_launch(&ChunkOverlap { bufs: zeros(64) })
                    .map(|_| ())
            },
        },
        SeededBug {
            name: "oob-store",
            expect_check: "bounds",
            expect_dynamic: DynamicCatch::Finding(CheckKind::GlobalOutOfBounds),
            summary: || {
                bug_summary(
                    "oob-store",
                    LaunchSummary {
                        grid_warps: Sym::lit(1),
                        accesses: vec![exclusive(
                            "buf",
                            Sym::lit(64),
                            Pattern::Affine {
                                start: Sym::lit(60),
                                len: Sym::lit(32),
                            },
                        )],
                        ..LaunchSummary::new("main")
                    },
                )
            },
            run: |gpu| gpu.try_launch(&OobStore { bufs: zeros(64) }).map(|_| ()),
        },
        SeededBug {
            name: "oob-load",
            expect_check: "bounds",
            expect_dynamic: DynamicCatch::Finding(CheckKind::GlobalOutOfBounds),
            summary: || {
                bug_summary(
                    "oob-load",
                    LaunchSummary {
                        grid_warps: Sym::lit(1),
                        accesses: vec![BufferAccess {
                            buffer: "buf",
                            extent: Sym::lit(64),
                            pattern: Pattern::Bounded {
                                lo: Sym::lit(60),
                                hi: Sym::lit(92),
                            },
                            mode: Mode::Read,
                        }],
                        ..LaunchSummary::new("main")
                    },
                )
            },
            run: |gpu| gpu.try_launch(&OobLoad { bufs: zeros(64) }).map(|_| ()),
        },
        SeededBug {
            name: "oob-last-warp",
            expect_check: "bounds",
            expect_dynamic: DynamicCatch::Finding(CheckKind::GlobalOutOfBounds),
            summary: || {
                // Unclamped `min(cache, nnz - base)`: the canonical stage-1
                // tail bug at nnz = 100, cache = 32.
                bug_summary(
                    "oob-last-warp",
                    LaunchSummary {
                        grid_warps: Sym::nnz().ceil_div(Sym::cache()),
                        accesses: vec![exclusive(
                            "w",
                            Sym::nnz(),
                            Pattern::Affine {
                                start: Sym::warp_id().mul(Sym::cache()),
                                len: Sym::cache(),
                            },
                        )],
                        ..LaunchSummary::new("main")
                    },
                )
            },
            run: |gpu| {
                gpu.try_launch(&OobLastWarp { bufs: zeros(100) })
                    .map(|_| ())
            },
        },
        SeededBug {
            name: "atomic-oob",
            expect_check: "bounds",
            expect_dynamic: DynamicCatch::Finding(CheckKind::GlobalOutOfBounds),
            summary: || {
                bug_summary(
                    "atomic-oob",
                    LaunchSummary {
                        grid_warps: Sym::lit(1),
                        accesses: vec![BufferAccess {
                            buffer: "y",
                            extent: Sym::lit(10),
                            pattern: Pattern::Bounded {
                                lo: Sym::lit(0),
                                hi: Sym::lit(11),
                            },
                            mode: Mode::Atomic,
                        }],
                        ..LaunchSummary::new("main")
                    },
                )
            },
            run: |gpu| gpu.try_launch(&AtomicOob { bufs: zeros(10) }).map(|_| ()),
        },
        SeededBug {
            name: "missing-barrier",
            expect_check: "shared-epoch",
            expect_dynamic: DynamicCatch::Finding(CheckKind::SharedReadInWriteEpoch),
            summary: || {
                bug_summary(
                    "missing-barrier",
                    LaunchSummary {
                        grid_warps: Sym::lit(1),
                        shared_words: Sym::lit(32),
                        shared_steps: vec![
                            SharedStep::Store {
                                lo: Sym::lit(0),
                                hi: Sym::lit(32),
                            },
                            SharedStep::Load {
                                lo: Sym::lit(0),
                                hi: Sym::lit(32),
                            },
                        ],
                        ..LaunchSummary::new("main")
                    },
                )
            },
            run: |gpu| {
                gpu.try_launch(&MissingBarrier { bufs: Vec::new() })
                    .map(|_| ())
            },
        },
        SeededBug {
            name: "uninit-shared-read",
            expect_check: "shared-uninit",
            expect_dynamic: DynamicCatch::Finding(CheckKind::SharedUninitialized),
            summary: || {
                bug_summary(
                    "uninit-shared-read",
                    LaunchSummary {
                        grid_warps: Sym::lit(1),
                        shared_words: Sym::lit(32),
                        shared_steps: vec![SharedStep::Load {
                            lo: Sym::lit(0),
                            hi: Sym::lit(32),
                        }],
                        ..LaunchSummary::new("main")
                    },
                )
            },
            run: |gpu| {
                gpu.try_launch(&UninitSharedRead { bufs: Vec::new() })
                    .map(|_| ())
            },
        },
        SeededBug {
            name: "shared-oob",
            expect_check: "shared-oob",
            expect_dynamic: DynamicCatch::Finding(CheckKind::SharedOutOfBounds),
            summary: || {
                bug_summary(
                    "shared-oob",
                    LaunchSummary {
                        grid_warps: Sym::lit(1),
                        shared_words: Sym::lit(32),
                        shared_steps: vec![SharedStep::Store {
                            lo: Sym::lit(32),
                            hi: Sym::lit(64),
                        }],
                        ..LaunchSummary::new("main")
                    },
                )
            },
            run: |gpu| gpu.try_launch(&SharedOob { bufs: Vec::new() }).map(|_| ()),
        },
        SeededBug {
            name: "partial-commit",
            expect_check: "shared-uninit",
            expect_dynamic: DynamicCatch::Finding(CheckKind::SharedUninitialized),
            summary: || {
                bug_summary(
                    "partial-commit",
                    LaunchSummary {
                        grid_warps: Sym::lit(1),
                        shared_words: Sym::lit(32),
                        shared_steps: vec![
                            SharedStep::Store {
                                lo: Sym::lit(0),
                                hi: Sym::lit(16),
                            },
                            SharedStep::Barrier,
                            SharedStep::Load {
                                lo: Sym::lit(0),
                                hi: Sym::lit(32),
                            },
                        ],
                        ..LaunchSummary::new("main")
                    },
                )
            },
            run: |gpu| {
                gpu.try_launch(&PartialCommit { bufs: Vec::new() })
                    .map(|_| ())
            },
        },
        SeededBug {
            name: "barrier-after-read",
            expect_check: "shared-uninit",
            expect_dynamic: DynamicCatch::Finding(CheckKind::SharedUninitialized),
            summary: || {
                bug_summary(
                    "barrier-after-read",
                    LaunchSummary {
                        grid_warps: Sym::lit(1),
                        shared_words: Sym::lit(32),
                        shared_steps: vec![
                            SharedStep::Load {
                                lo: Sym::lit(0),
                                hi: Sym::lit(32),
                            },
                            SharedStep::Barrier,
                            SharedStep::Store {
                                lo: Sym::lit(0),
                                hi: Sym::lit(32),
                            },
                        ],
                        ..LaunchSummary::new("main")
                    },
                )
            },
            run: |gpu| {
                gpu.try_launch(&BarrierAfterRead { bufs: Vec::new() })
                    .map(|_| ())
            },
        },
        SeededBug {
            name: "runaway-loop",
            expect_check: "budget",
            expect_dynamic: DynamicCatch::Watchdog,
            summary: || {
                bug_summary(
                    "runaway-loop",
                    LaunchSummary {
                        grid_warps: Sym::lit(1),
                        // No static bound exists; an honest summary says so
                        // with a bound above every reachable budget.
                        ops_per_warp: Sym::lit(u64::MAX / 2),
                        ..LaunchSummary::new("main")
                    },
                )
            },
            run: |gpu| {
                gpu.try_launch_with(
                    &RunawayLoop { bufs: Vec::new() },
                    &LaunchSpec::with_budget(10_000),
                )
                .map(|_| ())
            },
        },
        SeededBug {
            name: "budget-cliff",
            expect_check: "budget",
            expect_dynamic: DynamicCatch::Watchdog,
            summary: || {
                // Ops grow as nnz·f·64: fine on toys, over every derived
                // budget at scale. Summarized at the scaled point.
                let mut s = bug_summary(
                    "budget-cliff",
                    LaunchSummary {
                        grid_warps: Sym::nnz().ceil_div(Sym::cache()),
                        ops_per_warp: Sym::nnz().mul(Sym::f()).mul(Sym::lit(64)),
                        ..LaunchSummary::new("main")
                    },
                );
                s.base_env = base_env(1 << 20, 1 << 16, 256, 32, 64);
                s
            },
            run: |gpu| {
                gpu.try_launch_with(
                    &BudgetCliff { bufs: Vec::new() },
                    &LaunchSpec::with_budget(10_000),
                )
                .map(|_| ())
            },
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_fifteen_distinct_bugs() {
        let bugs = corpus();
        assert_eq!(bugs.len(), 15);
        let mut names: Vec<_> = bugs.iter().map(|b| b.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 15, "names must be unique");
    }
}
