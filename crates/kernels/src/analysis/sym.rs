//! Symbolic index expressions over launch parameters.
//!
//! Access summaries describe read/write sets as interval expressions over
//! the quantities a launch is parameterized by — NZE count, vertex count,
//! feature length, `CACHE_SIZE`, grid geometry — rather than concrete
//! numbers, so one summary covers every point of the config lattice. A
//! [`Sym`] is a tiny arithmetic expression tree over those [`Param`]s;
//! the checker instantiates it against a concrete [`Env`] (one graph ×
//! config × feature length × lattice point) with [`Sym::eval`].
//!
//! All arithmetic is saturating and unsigned: summaries describe index
//! spaces, which never go negative and must not wrap.

use std::fmt;

/// A launch parameter a summary expression may reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Param {
    /// Number of non-zero elements (edges) in the graph.
    Nnz,
    /// Number of vertices (square graphs: rows == cols).
    Rows,
    /// Dense feature length `f`.
    F,
    /// Stage-1 `CACHE_SIZE` (NZEs cached per warp).
    Cache,
    /// Number of warps (or native tasks) in the launch grid.
    GridWarps,
    /// The warp (or native task) index the expression is evaluated for.
    WarpId,
    /// Maximum row degree of the graph (the longest Stage-2 span a
    /// row-per-warp kernel can see).
    MaxDegree,
}

impl Param {
    /// Stable lowercase name used in rendered summaries.
    pub fn as_str(self) -> &'static str {
        match self {
            Param::Nnz => "nnz",
            Param::Rows => "rows",
            Param::F => "f",
            Param::Cache => "cache",
            Param::GridWarps => "grid_warps",
            Param::WarpId => "w",
            Param::MaxDegree => "max_degree",
        }
    }
}

/// Concrete values for every [`Param`] — one point of the config lattice
/// applied to one graph.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Env {
    /// Non-zero (edge) count.
    pub nnz: u64,
    /// Vertex count.
    pub rows: u64,
    /// Feature length.
    pub f: u64,
    /// Stage-1 cache size.
    pub cache: u64,
    /// Launch grid warp/task count (filled per launch by the checker).
    pub grid_warps: u64,
    /// Warp index under evaluation (filled per warp by the checker).
    pub warp_id: u64,
    /// Maximum row degree.
    pub max_degree: u64,
}

impl Env {
    /// The value of one parameter in this environment.
    pub fn get(&self, p: Param) -> u64 {
        match p {
            Param::Nnz => self.nnz,
            Param::Rows => self.rows,
            Param::F => self.f,
            Param::Cache => self.cache,
            Param::GridWarps => self.grid_warps,
            Param::WarpId => self.warp_id,
            Param::MaxDegree => self.max_degree,
        }
    }
}

/// A symbolic index expression: constants, parameters, and saturating
/// unsigned arithmetic over them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Sym {
    /// A literal value.
    Const(u64),
    /// A launch parameter.
    Param(Param),
    /// Saturating sum.
    Add(Box<Sym>, Box<Sym>),
    /// Saturating difference (clamps at zero).
    Sub(Box<Sym>, Box<Sym>),
    /// Saturating product.
    Mul(Box<Sym>, Box<Sym>),
    /// Integer (floor) division; division by zero evaluates to zero.
    Div(Box<Sym>, Box<Sym>),
    /// Ceiling division; division by zero evaluates to zero.
    CeilDiv(Box<Sym>, Box<Sym>),
    /// Minimum.
    Min(Box<Sym>, Box<Sym>),
    /// Maximum.
    Max(Box<Sym>, Box<Sym>),
}

impl Sym {
    /// Shorthand: the NZE count.
    pub fn nnz() -> Sym {
        Sym::Param(Param::Nnz)
    }
    /// Shorthand: the vertex count.
    pub fn rows() -> Sym {
        Sym::Param(Param::Rows)
    }
    /// Shorthand: the feature length.
    pub fn f() -> Sym {
        Sym::Param(Param::F)
    }
    /// Shorthand: the Stage-1 cache size.
    pub fn cache() -> Sym {
        Sym::Param(Param::Cache)
    }
    /// Shorthand: the grid warp count.
    pub fn grid_warps() -> Sym {
        Sym::Param(Param::GridWarps)
    }
    /// Shorthand: the warp index.
    pub fn warp_id() -> Sym {
        Sym::Param(Param::WarpId)
    }
    /// Shorthand: the maximum row degree.
    pub fn max_degree() -> Sym {
        Sym::Param(Param::MaxDegree)
    }
    /// Shorthand: a literal.
    pub fn lit(v: u64) -> Sym {
        Sym::Const(v)
    }

    /// `self + rhs` (saturating).
    // Not `std::ops`: these take `impl Into<Sym>` so literals compose
    // (`x.add(1)`), and the saturating semantics differ from `u64` math.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, rhs: impl Into<Sym>) -> Sym {
        Sym::Add(Box::new(self), Box::new(rhs.into()))
    }
    /// `self - rhs` (saturating at zero).
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, rhs: impl Into<Sym>) -> Sym {
        Sym::Sub(Box::new(self), Box::new(rhs.into()))
    }
    /// `self * rhs` (saturating).
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, rhs: impl Into<Sym>) -> Sym {
        Sym::Mul(Box::new(self), Box::new(rhs.into()))
    }
    /// `self / rhs` (floor; zero divisor yields zero).
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, rhs: impl Into<Sym>) -> Sym {
        Sym::Div(Box::new(self), Box::new(rhs.into()))
    }
    /// `ceil(self / rhs)` (zero divisor yields zero).
    pub fn ceil_div(self, rhs: impl Into<Sym>) -> Sym {
        Sym::CeilDiv(Box::new(self), Box::new(rhs.into()))
    }
    /// `min(self, rhs)`.
    pub fn min(self, rhs: impl Into<Sym>) -> Sym {
        Sym::Min(Box::new(self), Box::new(rhs.into()))
    }
    /// `max(self, rhs)`.
    pub fn max(self, rhs: impl Into<Sym>) -> Sym {
        Sym::Max(Box::new(self), Box::new(rhs.into()))
    }

    /// Evaluates the expression against a concrete environment.
    pub fn eval(&self, env: &Env) -> u64 {
        match self {
            Sym::Const(v) => *v,
            Sym::Param(p) => env.get(*p),
            Sym::Add(a, b) => a.eval(env).saturating_add(b.eval(env)),
            Sym::Sub(a, b) => a.eval(env).saturating_sub(b.eval(env)),
            Sym::Mul(a, b) => a.eval(env).saturating_mul(b.eval(env)),
            Sym::Div(a, b) => a.eval(env).checked_div(b.eval(env)).unwrap_or(0),
            Sym::CeilDiv(a, b) => {
                let d = b.eval(env);
                if d == 0 {
                    0
                } else {
                    a.eval(env).div_ceil(d)
                }
            }
            Sym::Min(a, b) => a.eval(env).min(b.eval(env)),
            Sym::Max(a, b) => a.eval(env).max(b.eval(env)),
        }
    }
}

impl From<u64> for Sym {
    fn from(v: u64) -> Sym {
        Sym::Const(v)
    }
}

impl From<Param> for Sym {
    fn from(p: Param) -> Sym {
        Sym::Param(p)
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sym::Const(v) => write!(out, "{v}"),
            Sym::Param(p) => out.write_str(p.as_str()),
            Sym::Add(a, b) => write!(out, "({a} + {b})"),
            Sym::Sub(a, b) => write!(out, "({a} - {b})"),
            Sym::Mul(a, b) => write!(out, "({a}*{b})"),
            Sym::Div(a, b) => write!(out, "({a}/{b})"),
            Sym::CeilDiv(a, b) => write!(out, "ceil({a}/{b})"),
            Sym::Min(a, b) => write!(out, "min({a}, {b})"),
            Sym::Max(a, b) => write!(out, "max({a}, {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> Env {
        Env {
            nnz: 100,
            rows: 10,
            f: 16,
            cache: 32,
            grid_warps: 4,
            warp_id: 3,
            max_degree: 7,
        }
    }

    #[test]
    fn arithmetic_evaluates() {
        let e = env();
        assert_eq!(Sym::warp_id().mul(Sym::cache()).eval(&e), 96);
        assert_eq!(
            Sym::cache()
                .min(Sym::nnz().sub(Sym::warp_id().mul(Sym::cache())))
                .eval(&e),
            4
        );
        assert_eq!(Sym::nnz().ceil_div(Sym::cache()).eval(&e), 4);
        assert_eq!(
            Sym::lit(3).sub(Sym::lit(5)).eval(&e),
            0,
            "saturates at zero"
        );
        assert_eq!(Sym::nnz().div(Sym::lit(0)).eval(&e), 0, "zero divisor");
    }

    #[test]
    fn display_is_readable() {
        let s = Sym::warp_id().mul(Sym::cache()).add(Sym::f());
        assert_eq!(s.to_string(), "((w*cache) + f)");
    }
}
