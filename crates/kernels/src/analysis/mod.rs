//! Static kernel verifier: symbolic access-summary analysis over the
//! registry.
//!
//! Every registry kernel exposes a [`AccessSummary`] — its Stage-1 /
//! Stage-2 read and write sets as interval expressions over the launch
//! parameters (`nnz`, `rows`, `f`, `CACHE_SIZE`, grid geometry) — via
//! the `access_summary` method on the kernel traits. The
//! abstract-interpretation pass in [`check`] instantiates a summary at a
//! concrete lattice point and decides four obligations:
//!
//! 1. cross-warp/cross-CTA write-set disjointness (race freedom),
//! 2. bounds safety for every declared buffer,
//! 3. barrier/epoch consistency of the shared-memory phase script,
//! 4. watchdog-budget feasibility against the derived
//!    [`gnnone_sim::LaunchSpec`] budget.
//!
//! Verdicts are three-valued ([`Verdict::Proved`] / [`Verdict::Refuted`]
//! with a concrete [`Witness`] / [`Verdict::Unknown`]) and
//! jsonio-serializable. The [`seeded`] corpus differentially validates
//! the pass: every deliberately broken kernel must be statically refuted
//! *and* dynamically caught by the sanitizer or watchdog.
//!
//! Because the schedule policy ([`crate::gnnone::Schedule`]) only
//! permutes NZEs *within* a warp's own cached window (Listing 2's
//! `e_local` is local to the span), the per-warp write windows are
//! schedule-invariant: one summary covers every point of the config
//! lattice.

pub mod check;
pub mod seeded;
pub mod summaries;
pub mod summary;
pub mod sym;

pub use check::{check_summary, Verdict, Witness};
pub use summary::{
    base_env, AccessSummary, BufferAccess, ExecModel, LaunchSummary, Mode, Pattern, SharedStep,
};
pub use sym::{Env, Param, Sym};

use std::sync::Arc;

use gnnone_sim::jsonio::Json;

use crate::gnnone::{GnnOneConfig, GnnOneSddmm, GnnOneSpmm, Schedule};
use crate::graph::GraphData;
use crate::registry;
use crate::traits::{SddmmKernel, SpmmKernel};

/// One kernel × model verdict, as produced by [`verify_graph`].
#[derive(Debug, Clone)]
pub struct KernelVerdict {
    /// Kernel display name (registry spelling).
    pub kernel: String,
    /// Operation family.
    pub op: &'static str,
    /// Execution model checked.
    pub model: ExecModel,
    /// The checker's decision.
    pub verdict: Verdict,
}

impl KernelVerdict {
    /// The verdict recorded for a kernel with no registered summary — a
    /// coverage gap, reported as [`Verdict::Unknown`] so the registry-wide
    /// gate (all-`Proved`) fails on it.
    pub fn missing(kernel: impl Into<String>, op: &'static str, model: ExecModel) -> Self {
        Self {
            kernel: kernel.into(),
            op,
            model,
            verdict: Verdict::Unknown {
                reason: "no access summary registered (coverage gap)".to_string(),
            },
        }
    }

    /// JSON form (jsonio).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("kernel", Json::Str(self.kernel.clone())),
            ("op", Json::Str(self.op.to_string())),
            ("model", Json::Str(self.model.as_str().to_string())),
            ("result", self.verdict.to_json()),
        ])
    }
}

/// The 24-point configuration lattice the verifier (and the sanitize
/// sweep) iterate: cache size × schedule × vectorize × data-reuse.
pub fn config_lattice() -> Vec<GnnOneConfig> {
    let mut points = Vec::with_capacity(24);
    for cache_size in [32, 64, 128] {
        for schedule in [Schedule::Consecutive, Schedule::RoundRobin] {
            for vectorize in [false, true] {
                for data_reuse in [false, true] {
                    points.push(GnnOneConfig {
                        cache_size,
                        schedule,
                        vectorize,
                        data_reuse,
                    });
                }
            }
        }
    }
    points
}

fn checked(
    kernel: &str,
    op: &'static str,
    model: ExecModel,
    summary: Option<AccessSummary>,
) -> KernelVerdict {
    match summary {
        Some(s) => KernelVerdict {
            kernel: kernel.to_string(),
            op,
            model,
            verdict: check_summary(&s),
        },
        None => KernelVerdict::missing(kernel, op, model),
    }
}

/// Verifies every registry kernel (all 21: 6 SDDMM + 6 SpMM + 3
/// discussion SpMM + 3 SpMV classes + 1 format study + 1 edge-apply +
/// 1 fused) against `graph` under one execution model. The edge-apply
/// and fused entries are the IR-lowered instances ([`crate::ir`]), so
/// this sweep also gates every IR-lowered launch. A kernel without a
/// summary yields an `Unknown` coverage-gap verdict, so "all proved"
/// doubles as the coverage gate.
pub fn verify_graph(graph: &Arc<GraphData>, f: usize, model: ExecModel) -> Vec<KernelVerdict> {
    let mut out = Vec::new();
    for k in registry::sddmm_kernels(graph) {
        out.push(checked(
            k.name(),
            "sddmm",
            model,
            k.access_summary(f, model),
        ));
    }
    for k in registry::spmm_kernels(graph) {
        out.push(checked(k.name(), "spmm", model, k.access_summary(f, model)));
    }
    for k in registry::spmm_discussion_kernels(graph) {
        out.push(checked(k.name(), "spmm", model, k.access_summary(f, model)));
    }
    for k in registry::spmv_class_kernels(graph) {
        out.push(checked(k.name(), "spmv", model, k.access_summary(model)));
    }
    for k in registry::spmm_format_kernels(graph) {
        out.push(checked(k.name(), "spmm", model, k.access_summary(f, model)));
    }
    for k in registry::edge_apply_kernels(graph) {
        out.push(checked(k.name(), "u-add-v", model, k.access_summary(model)));
    }
    for k in registry::fused_kernels(graph) {
        out.push(checked(
            k.name(),
            "fused",
            model,
            k.access_summary(f, model),
        ));
    }
    out
}

/// Verifies the configurable GNNOne kernels at every point of the
/// 24-point lattice (both execution models), returning one verdict per
/// kernel × config × model. The fixed-config kernels are covered by
/// [`verify_graph`]; this sweep proves the tuning knobs can never buy a
/// race, an OOB access, or a watchdog abort.
pub fn verify_lattice(graph: &Arc<GraphData>, f: usize) -> Vec<(GnnOneConfig, KernelVerdict)> {
    let mut out = Vec::new();
    for cfg in config_lattice() {
        for model in [ExecModel::Sim, ExecModel::Native] {
            let sddmm = GnnOneSddmm::new(Arc::clone(graph), cfg);
            out.push((
                cfg,
                checked(sddmm.name(), "sddmm", model, sddmm.access_summary(f, model)),
            ));
            let spmm = GnnOneSpmm::new(Arc::clone(graph), cfg);
            out.push((
                cfg,
                checked(spmm.name(), "spmm", model, spmm.access_summary(f, model)),
            ));
        }
    }
    out
}

/// Renders a verdict list as a jsonio array (one object per kernel).
pub fn verdicts_to_json(verdicts: &[KernelVerdict]) -> Json {
    Json::Arr(verdicts.iter().map(KernelVerdict::to_json).collect())
}
