//! Kernel object interfaces driven by the benchmark harness and the GNN
//! training stack.
//!
//! Implementations capture their graph (and any custom-format metadata
//! built by pre-processing) at construction; `run` then executes one kernel
//! launch for a given feature length. Pre-processing cost is therefore a
//! one-time cost outside the timed launch, matching how the paper treats
//! custom formats (§5.4.5).
//!
//! Every trait is **backend-portable**: `run` executes on the simulator,
//! `run_native` executes the same operands on the native CPU engine
//! ([`NativeEngine`]), and `graph` exposes the captured graph tensors so
//! a backend can schedule the launch itself. `run_native` has a provided
//! implementation that routes to the shared native routines in
//! [`crate::backend::native`] (picking the edge- or row-parallel path
//! from the kernel's declared format); kernels with their own schedule
//! knobs (the GNNOne family) override it to honour their config.

use gnnone_sim::{engine::LaunchError, DeviceBuffer, Gpu, KernelReport};

use crate::analysis::{summaries, AccessSummary, ExecModel};
use crate::backend::native::{self, NativeEngine, NativeReport};
use crate::graph::GraphData;

/// SpMM: `y ← A·x` with per-NZE edge values.
pub trait SpmmKernel: Send + Sync {
    /// System name as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// Storage format consumed ("COO", "CSR", "custom").
    fn format(&self) -> &'static str;

    /// Graph tensors the kernel was constructed over — what a backend
    /// schedules the launch against.
    fn graph(&self) -> &GraphData;

    /// Launches the kernel: reads `edge_vals` (`|E|`), `x`
    /// (`|V| × f` row-major), accumulates into `y` (`|V| × f`, must be
    /// zeroed by the caller).
    fn run(
        &self,
        gpu: &Gpu,
        edge_vals: &DeviceBuffer<f32>,
        x: &DeviceBuffer<f32>,
        f: usize,
        y: &DeviceBuffer<f32>,
    ) -> Result<KernelReport, LaunchError>;

    /// Executes the same launch on the native CPU backend: row-split
    /// over nnz-balanced row blocks, bit-identical across thread counts.
    fn run_native(
        &self,
        eng: &NativeEngine,
        edge_vals: &DeviceBuffer<f32>,
        x: &DeviceBuffer<f32>,
        f: usize,
        y: &DeviceBuffer<f32>,
    ) -> Result<NativeReport, LaunchError> {
        Ok(native::spmm_rows(
            eng,
            self.graph(),
            &crate::gnnone::GnnOneConfig::default(),
            edge_vals,
            x,
            f,
            y,
            self.name(),
        ))
    }

    /// Symbolic access summary under one execution model, or `None` when
    /// the kernel has none registered (the registry-wide verify gate turns
    /// that into a coverage failure). The provided implementation mirrors
    /// the provided `run_native` — the native row-split path under the
    /// default config — so kernels overriding `run_native` must override
    /// this too; the sim-model summary is always kernel-specific.
    fn access_summary(&self, f: usize, model: ExecModel) -> Option<AccessSummary> {
        match model {
            ExecModel::Sim => self.sim_access_summary(f),
            ExecModel::Native => Some(summaries::native_row_out(
                self.name(),
                "spmm",
                self.graph(),
                &crate::gnnone::GnnOneConfig::default(),
                f,
                summaries::spmm_reads(),
            )),
        }
    }

    /// Simulator-model hook for [`Self::access_summary`]: kernels whose
    /// simulator launch differs from the shared native partition override
    /// only this method and keep the provided native summary.
    fn sim_access_summary(&self, f: usize) -> Option<AccessSummary> {
        let _ = f;
        None
    }
}

/// SDDMM: `w ← A ⊙ (X·Yᵀ)`.
pub trait SddmmKernel: Send + Sync {
    /// System name as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// Storage format consumed.
    fn format(&self) -> &'static str;

    /// Graph tensors the kernel was constructed over.
    fn graph(&self) -> &GraphData;

    /// Launches the kernel: reads `x` and `y` (`|V| × f` row-major),
    /// writes `w` (`|E|`).
    fn run(
        &self,
        gpu: &Gpu,
        x: &DeviceBuffer<f32>,
        y: &DeviceBuffer<f32>,
        f: usize,
        w: &DeviceBuffer<f32>,
    ) -> Result<KernelReport, LaunchError>;

    /// Executes the same launch on the native CPU backend. COO kernels
    /// take the edge-parallel path; CSR/custom (vertex-parallel) kernels
    /// take the row-parallel path, matching their launch geometry.
    fn run_native(
        &self,
        eng: &NativeEngine,
        x: &DeviceBuffer<f32>,
        y: &DeviceBuffer<f32>,
        f: usize,
        w: &DeviceBuffer<f32>,
    ) -> Result<NativeReport, LaunchError> {
        Ok(if self.format() == "COO" {
            native::sddmm_edges(
                eng,
                self.graph(),
                &crate::gnnone::GnnOneConfig::default(),
                x,
                y,
                f,
                w,
                self.name(),
            )
        } else {
            native::sddmm_rows(eng, self.graph(), x, y, f, w, self.name())
        })
    }

    /// Symbolic access summary under one execution model, or `None` when
    /// the kernel has none registered. The provided implementation mirrors
    /// the provided `run_native` format branch under the default config.
    fn access_summary(&self, f: usize, model: ExecModel) -> Option<AccessSummary> {
        match model {
            ExecModel::Sim => self.sim_access_summary(f),
            ExecModel::Native => Some(if self.format() == "COO" {
                summaries::native_edge_out(
                    self.name(),
                    "sddmm",
                    self.graph(),
                    &crate::gnnone::GnnOneConfig::default(),
                    f,
                    summaries::sddmm_edge_reads(),
                )
            } else {
                summaries::native_sddmm_rows(
                    self.name(),
                    self.graph(),
                    &crate::gnnone::GnnOneConfig::default(),
                    f,
                )
            }),
        }
    }

    /// Simulator-model hook for [`Self::access_summary`]: kernels whose
    /// simulator launch differs from the shared native partition override
    /// only this method and keep the provided native summary.
    fn sim_access_summary(&self, f: usize) -> Option<AccessSummary> {
        let _ = f;
        None
    }
}

/// Edge-apply SDDMM variants (§4.3): per-NZE outputs computed from scalar
/// per-vertex operands, e.g. GAT's `u_add_v` attention logits.
pub trait EdgeApplyKernel: Send + Sync {
    /// System name as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// Storage format consumed.
    fn format(&self) -> &'static str;

    /// Graph tensors the kernel was constructed over.
    fn graph(&self) -> &GraphData;

    /// Launches the kernel: reads `el` and `er` (`|V|`), writes `w`
    /// (`|E|`).
    fn run(
        &self,
        gpu: &Gpu,
        el: &DeviceBuffer<f32>,
        er: &DeviceBuffer<f32>,
        w: &DeviceBuffer<f32>,
    ) -> Result<KernelReport, LaunchError>;

    /// Executes the same launch on the native CPU backend
    /// (edge-parallel over contiguous NZE blocks).
    fn run_native(
        &self,
        eng: &NativeEngine,
        el: &DeviceBuffer<f32>,
        er: &DeviceBuffer<f32>,
        w: &DeviceBuffer<f32>,
    ) -> Result<NativeReport, LaunchError> {
        Ok(native::u_add_v_edges(
            eng,
            self.graph(),
            el,
            er,
            w,
            self.name(),
        ))
    }

    /// Symbolic access summary under one execution model (scalar operands,
    /// so no feature-length argument), or `None` when the kernel has none
    /// registered. The provided implementation mirrors the provided
    /// `run_native` edge-parallel path.
    fn access_summary(&self, model: ExecModel) -> Option<AccessSummary> {
        match model {
            ExecModel::Sim => self.sim_access_summary(),
            ExecModel::Native => Some(summaries::native_edge_out(
                self.name(),
                "u-add-v",
                self.graph(),
                &crate::gnnone::GnnOneConfig::default(),
                1,
                summaries::uaddv_reads(),
            )),
        }
    }

    /// Simulator-model hook for [`Self::access_summary`].
    fn sim_access_summary(&self) -> Option<AccessSummary> {
        None
    }
}

/// Fused attention: logits + edge softmax + attended aggregation in one
/// launch (§5.3.2's future-work direction).
pub trait FusedAttentionKernel: Send + Sync {
    /// System name.
    fn name(&self) -> &'static str;

    /// Storage format consumed.
    fn format(&self) -> &'static str;

    /// Graph tensors the kernel was constructed over.
    fn graph(&self) -> &GraphData;

    /// Launches the kernel: reads `z` (`|V| × f`), `el`/`er` (`|V|`),
    /// writes `y` (`|V| × f`, zeroed by the caller) and optionally the
    /// attention coefficients `alpha_out` (`|E|`).
    #[allow(clippy::too_many_arguments)]
    fn run(
        &self,
        gpu: &Gpu,
        z: &DeviceBuffer<f32>,
        el: &DeviceBuffer<f32>,
        er: &DeviceBuffer<f32>,
        f: usize,
        y: &DeviceBuffer<f32>,
        alpha_out: Option<&DeviceBuffer<f32>>,
    ) -> Result<KernelReport, LaunchError>;

    /// Executes the same launch on the native CPU backend. No provided
    /// implementation: fused attention carries kernel-specific state
    /// (e.g. the LeakyReLU slope), so each implementation routes to the
    /// native routine itself.
    #[allow(clippy::too_many_arguments)]
    fn run_native(
        &self,
        eng: &NativeEngine,
        z: &DeviceBuffer<f32>,
        el: &DeviceBuffer<f32>,
        er: &DeviceBuffer<f32>,
        f: usize,
        y: &DeviceBuffer<f32>,
        alpha_out: Option<&DeviceBuffer<f32>>,
    ) -> Result<NativeReport, LaunchError>;

    /// Symbolic access summary under one execution model, or `None` when
    /// the kernel has none registered. No provided implementation is
    /// possible: like `run_native`, fused kernels carry kernel-specific
    /// scheduling state.
    fn access_summary(&self, f: usize, model: ExecModel) -> Option<AccessSummary> {
        let _ = (f, model);
        None
    }
}

/// SpMV: `y ← A·x` with scalar features.
pub trait SpmvKernel: Send + Sync {
    /// System name.
    fn name(&self) -> &'static str;

    /// Storage format consumed.
    fn format(&self) -> &'static str;

    /// Graph tensors the kernel was constructed over.
    fn graph(&self) -> &GraphData;

    /// Launches the kernel: reads `edge_vals` (`|E|`) and `x` (`|V|`),
    /// accumulates into `y` (`|V|`, zeroed by the caller).
    fn run(
        &self,
        gpu: &Gpu,
        edge_vals: &DeviceBuffer<f32>,
        x: &DeviceBuffer<f32>,
        y: &DeviceBuffer<f32>,
    ) -> Result<KernelReport, LaunchError>;

    /// Executes the same launch on the native CPU backend (row-split,
    /// scalar features).
    fn run_native(
        &self,
        eng: &NativeEngine,
        edge_vals: &DeviceBuffer<f32>,
        x: &DeviceBuffer<f32>,
        y: &DeviceBuffer<f32>,
    ) -> Result<NativeReport, LaunchError> {
        Ok(native::spmv_rows(
            eng,
            self.graph(),
            edge_vals,
            x,
            y,
            self.name(),
        ))
    }

    /// Symbolic access summary under one execution model (`f = 1`), or
    /// `None` when the kernel has none registered. The provided
    /// implementation mirrors the provided `run_native` row-split path.
    fn access_summary(&self, model: ExecModel) -> Option<AccessSummary> {
        match model {
            ExecModel::Sim => self.sim_access_summary(),
            ExecModel::Native => Some(summaries::native_row_out(
                self.name(),
                "spmv",
                self.graph(),
                &crate::gnnone::GnnOneConfig::default(),
                1,
                summaries::spmm_reads(),
            )),
        }
    }

    /// Simulator-model hook for [`Self::access_summary`].
    fn sim_access_summary(&self) -> Option<AccessSummary> {
        None
    }
}
