//! Kernel object interfaces driven by the benchmark harness and the GNN
//! training stack.
//!
//! Implementations capture their graph (and any custom-format metadata
//! built by pre-processing) at construction; `run` then executes one kernel
//! launch for a given feature length. Pre-processing cost is therefore a
//! one-time cost outside the timed launch, matching how the paper treats
//! custom formats (§5.4.5).

use gnnone_sim::{engine::LaunchError, DeviceBuffer, Gpu, KernelReport};

/// SpMM: `y ← A·x` with per-NZE edge values.
pub trait SpmmKernel: Send + Sync {
    /// System name as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// Storage format consumed ("COO", "CSR", "custom").
    fn format(&self) -> &'static str;

    /// Launches the kernel: reads `edge_vals` (`|E|`), `x`
    /// (`|V| × f` row-major), accumulates into `y` (`|V| × f`, must be
    /// zeroed by the caller).
    fn run(
        &self,
        gpu: &Gpu,
        edge_vals: &DeviceBuffer<f32>,
        x: &DeviceBuffer<f32>,
        f: usize,
        y: &DeviceBuffer<f32>,
    ) -> Result<KernelReport, LaunchError>;
}

/// SDDMM: `w ← A ⊙ (X·Yᵀ)`.
pub trait SddmmKernel: Send + Sync {
    /// System name as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// Storage format consumed.
    fn format(&self) -> &'static str;

    /// Launches the kernel: reads `x` and `y` (`|V| × f` row-major),
    /// writes `w` (`|E|`).
    fn run(
        &self,
        gpu: &Gpu,
        x: &DeviceBuffer<f32>,
        y: &DeviceBuffer<f32>,
        f: usize,
        w: &DeviceBuffer<f32>,
    ) -> Result<KernelReport, LaunchError>;
}

/// Edge-apply SDDMM variants (§4.3): per-NZE outputs computed from scalar
/// per-vertex operands, e.g. GAT's `u_add_v` attention logits.
pub trait EdgeApplyKernel: Send + Sync {
    /// System name as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// Storage format consumed.
    fn format(&self) -> &'static str;

    /// Launches the kernel: reads `el` and `er` (`|V|`), writes `w`
    /// (`|E|`).
    fn run(
        &self,
        gpu: &Gpu,
        el: &DeviceBuffer<f32>,
        er: &DeviceBuffer<f32>,
        w: &DeviceBuffer<f32>,
    ) -> Result<KernelReport, LaunchError>;
}

/// Fused attention: logits + edge softmax + attended aggregation in one
/// launch (§5.3.2's future-work direction).
pub trait FusedAttentionKernel: Send + Sync {
    /// System name.
    fn name(&self) -> &'static str;

    /// Storage format consumed.
    fn format(&self) -> &'static str;

    /// Launches the kernel: reads `z` (`|V| × f`), `el`/`er` (`|V|`),
    /// writes `y` (`|V| × f`, zeroed by the caller) and optionally the
    /// attention coefficients `alpha_out` (`|E|`).
    #[allow(clippy::too_many_arguments)]
    fn run(
        &self,
        gpu: &Gpu,
        z: &DeviceBuffer<f32>,
        el: &DeviceBuffer<f32>,
        er: &DeviceBuffer<f32>,
        f: usize,
        y: &DeviceBuffer<f32>,
        alpha_out: Option<&DeviceBuffer<f32>>,
    ) -> Result<KernelReport, LaunchError>;
}

/// SpMV: `y ← A·x` with scalar features.
pub trait SpmvKernel: Send + Sync {
    /// System name.
    fn name(&self) -> &'static str;

    /// Storage format consumed.
    fn format(&self) -> &'static str;

    /// Launches the kernel: reads `edge_vals` (`|E|`) and `x` (`|V|`),
    /// accumulates into `y` (`|V|`, zeroed by the caller).
    fn run(
        &self,
        gpu: &Gpu,
        edge_vals: &DeviceBuffer<f32>,
        x: &DeviceBuffer<f32>,
        y: &DeviceBuffer<f32>,
    ) -> Result<KernelReport, LaunchError>;
}
