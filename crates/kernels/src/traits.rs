//! Kernel object interfaces driven by the benchmark harness and the GNN
//! training stack.
//!
//! Implementations capture their graph (and any custom-format metadata
//! built by pre-processing) at construction; `run` then executes one kernel
//! launch for a given feature length. Pre-processing cost is therefore a
//! one-time cost outside the timed launch, matching how the paper treats
//! custom formats (§5.4.5).

use gnnone_sim::{engine::LaunchError, DeviceBuffer, Gpu, KernelReport};

/// SpMM: `y ← A·x` with per-NZE edge values.
pub trait SpmmKernel: Send + Sync {
    /// System name as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// Storage format consumed ("COO", "CSR", "custom").
    fn format(&self) -> &'static str;

    /// Launches the kernel: reads `edge_vals` (`|E|`), `x`
    /// (`|V| × f` row-major), accumulates into `y` (`|V| × f`, must be
    /// zeroed by the caller).
    fn run(
        &self,
        gpu: &Gpu,
        edge_vals: &DeviceBuffer<f32>,
        x: &DeviceBuffer<f32>,
        f: usize,
        y: &DeviceBuffer<f32>,
    ) -> Result<KernelReport, LaunchError>;
}

/// SDDMM: `w ← A ⊙ (X·Yᵀ)`.
pub trait SddmmKernel: Send + Sync {
    /// System name as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// Storage format consumed.
    fn format(&self) -> &'static str;

    /// Launches the kernel: reads `x` and `y` (`|V| × f` row-major),
    /// writes `w` (`|E|`).
    fn run(
        &self,
        gpu: &Gpu,
        x: &DeviceBuffer<f32>,
        y: &DeviceBuffer<f32>,
        f: usize,
        w: &DeviceBuffer<f32>,
    ) -> Result<KernelReport, LaunchError>;
}

/// SpMV: `y ← A·x` with scalar features.
pub trait SpmvKernel: Send + Sync {
    /// System name.
    fn name(&self) -> &'static str;

    /// Storage format consumed.
    fn format(&self) -> &'static str;

    /// Launches the kernel: reads `edge_vals` (`|E|`) and `x` (`|V|`),
    /// accumulates into `y` (`|V|`, zeroed by the caller).
    fn run(
        &self,
        gpu: &Gpu,
        edge_vals: &DeviceBuffer<f32>,
        x: &DeviceBuffer<f32>,
        y: &DeviceBuffer<f32>,
    ) -> Result<KernelReport, LaunchError>;
}
