//! Thread-group geometry (paper §4.2).
//!
//! The symbiotic scheduler divides each 32-lane warp into *thread groups*;
//! one group processes one NZE at a time, each lane loading `vec_width`
//! consecutive vertex features with a single vector instruction. This module
//! computes the geometry for a feature length and is shared by GNNOne and
//! by the vanilla feature-parallel baselines (which use `vec_width = 1` and
//! a single group — leaving lanes idle when `f < 32`, exactly the
//! inefficiency the paper exploits).

/// How lanes of a warp are arranged for a given feature length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupGeometry {
    /// Feature length covered.
    pub feature_len: usize,
    /// Features loaded per lane per vector instruction (CUDA float/float2/
    /// float3/float4 → 1..=4).
    pub vec_width: usize,
    /// Lanes per thread group (power of two; lanes beyond
    /// `ceil(f / vec_width)` idle within the group).
    pub group_size: usize,
    /// Thread groups per warp (`32 / group_size`).
    pub groups_per_warp: usize,
    /// Feature chunks each lane iterates when `f` exceeds one pass
    /// (`group_size × vec_width`).
    pub passes: usize,
}

impl GroupGeometry {
    /// GNNOne geometry: the widest vector type that divides `f` (float4
    /// preferred; float3 for the odd last-layer lengths like 6 — §4.4),
    /// then the smallest power-of-two group covering `f`.
    pub fn gnnone(f: usize) -> Self {
        assert!(f >= 1);
        let vec_width = if f.is_multiple_of(4) {
            4
        } else if f.is_multiple_of(3) {
            3
        } else if f.is_multiple_of(2) {
            2
        } else {
            1
        };
        Self::with_vec_width(f, vec_width)
    }

    /// Vanilla feature-parallel geometry (prior works): one feature per
    /// lane, one group per warp — lanes beyond `f` idle, and `f > 32`
    /// iterates passes.
    pub fn feature_parallel(f: usize) -> Self {
        assert!(f >= 1);
        Self {
            feature_len: f,
            vec_width: 1,
            group_size: 32,
            groups_per_warp: 1,
            passes: f.div_ceil(32),
        }
    }

    /// Scalar edge-parallel geometry: 32 single-lane groups, one NZE per
    /// lane. This is the shape of SDDMM *variants* whose per-edge work is
    /// a scalar op (`u_add_v` and friends, §4.3) — every lane busy, no
    /// reduction dimension at all.
    pub fn scalar() -> Self {
        Self::with_vec_width(1, 1)
    }

    /// Geometry with an explicit vector width (for ablations).
    pub fn with_vec_width(f: usize, vec_width: usize) -> Self {
        assert!((1..=4).contains(&vec_width));
        let lanes_needed = f.div_ceil(vec_width);
        let group_size = lanes_needed.next_power_of_two().min(32);
        let per_pass = group_size * vec_width;
        Self {
            feature_len: f,
            vec_width,
            group_size,
            groups_per_warp: 32 / group_size,
            passes: f.div_ceil(per_pass),
        }
    }

    /// Number of active lanes in a group during a feature pass starting at
    /// feature `pass_base` (the tail pass may be ragged).
    pub fn active_lanes(&self, pass: usize) -> usize {
        let base = pass * self.group_size * self.vec_width;
        let remaining = self.feature_len.saturating_sub(base);
        remaining.div_ceil(self.vec_width).min(self.group_size)
    }

    /// Shuffle rounds of a tree reduction across the group.
    pub fn reduction_rounds(&self) -> u32 {
        self.group_size.trailing_zeros()
    }

    /// Decomposes lane index into (group, lane-in-group).
    #[inline]
    pub fn split_lane(&self, lane: usize) -> (usize, usize) {
        (lane / self.group_size, lane % self.group_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_f32() {
        // §4.2: f = 32 → float4, 8-lane groups, 4 groups, 3 rounds.
        let g = GroupGeometry::gnnone(32);
        assert_eq!(g.vec_width, 4);
        assert_eq!(g.group_size, 8);
        assert_eq!(g.groups_per_warp, 4);
        assert_eq!(g.reduction_rounds(), 3);
        assert_eq!(g.passes, 1);
    }

    #[test]
    fn paper_example_f16() {
        // §4.2: f = 16 → 4-lane groups, 8 groups.
        let g = GroupGeometry::gnnone(16);
        assert_eq!(g.vec_width, 4);
        assert_eq!(g.group_size, 4);
        assert_eq!(g.groups_per_warp, 8);
    }

    #[test]
    fn odd_length_6_uses_float3() {
        // §4.4: f = 6 → float3 (float4 misaligns), 2-lane groups.
        let g = GroupGeometry::gnnone(6);
        assert_eq!(g.vec_width, 3);
        assert_eq!(g.group_size, 2);
        assert_eq!(g.groups_per_warp, 16);
        assert_eq!(g.reduction_rounds(), 1);
    }

    #[test]
    fn f64_two_groups() {
        let g = GroupGeometry::gnnone(64);
        assert_eq!(g.vec_width, 4);
        assert_eq!(g.group_size, 16);
        assert_eq!(g.groups_per_warp, 2);
        assert_eq!(g.passes, 1);
    }

    #[test]
    fn feature_parallel_keeps_lanes_idle() {
        let g = GroupGeometry::feature_parallel(16);
        assert_eq!(g.groups_per_warp, 1);
        assert_eq!(g.active_lanes(0), 16); // 16 of 32 lanes busy
        let g = GroupGeometry::feature_parallel(64);
        assert_eq!(g.passes, 2);
        assert_eq!(g.active_lanes(0), 32);
        assert_eq!(g.active_lanes(1), 32);
    }

    #[test]
    fn ragged_group_tail() {
        // f = 5, vec 1 → group 8, 5 active lanes, 3 idle.
        let g = GroupGeometry::with_vec_width(5, 1);
        assert_eq!(g.group_size, 8);
        assert_eq!(g.active_lanes(0), 5);
    }

    #[test]
    fn scalar_is_one_lane_per_nze() {
        let g = GroupGeometry::scalar();
        assert_eq!(g.group_size, 1);
        assert_eq!(g.groups_per_warp, 32);
        assert_eq!(g.vec_width, 1);
        assert_eq!(g.passes, 1);
        assert_eq!(g.reduction_rounds(), 0);
        // Lane l is its own group.
        for l in 0..32 {
            assert_eq!(g.split_lane(l), (l, 0));
        }
    }

    #[test]
    fn split_lane() {
        let g = GroupGeometry::gnnone(32);
        assert_eq!(g.split_lane(0), (0, 0));
        assert_eq!(g.split_lane(9), (1, 1));
        assert_eq!(g.split_lane(31), (3, 7));
    }

    #[test]
    fn group_size_is_always_power_of_two() {
        for f in 1..=128 {
            let g = GroupGeometry::gnnone(f);
            assert!(g.group_size.is_power_of_two(), "f={f}");
            assert_eq!(g.groups_per_warp * g.group_size, 32, "f={f}");
            // Every feature is covered.
            assert!(g.passes * g.group_size * g.vec_width >= f, "f={f}: {g:?}");
        }
    }
}
