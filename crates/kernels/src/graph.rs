//! Device-resident graph tensors shared by all kernel implementations.

use gnnone_sim::DeviceBuffer;
use gnnone_sparse::formats::{Coo, Csr};

/// A graph uploaded to (simulated) device memory in both standard formats.
///
/// Keeping both alive mirrors what DGL does (CSR for SpMM, COO for SDDMM) —
/// the memory cost the paper's single-format design avoids. Kernels read
/// only the arrays of the format they declare; the memory model in
/// `gnnone-gnn` charges each *system* for exactly the formats its kernels
/// require.
pub struct GraphData {
    /// Host COO (CSR-ordered).
    pub coo: Coo,
    /// Host CSR.
    pub csr: Csr,
    /// COO row IDs on device.
    pub d_coo_rows: DeviceBuffer<u32>,
    /// COO column IDs on device.
    pub d_coo_cols: DeviceBuffer<u32>,
    /// CSR row offsets on device.
    pub d_csr_offsets: DeviceBuffer<u32>,
    /// CSR column IDs on device.
    pub d_csr_cols: DeviceBuffer<u32>,
}

impl GraphData {
    /// Uploads a COO graph (and its CSR conversion) to device buffers.
    pub fn new(coo: Coo) -> Self {
        let csr = Csr::from_coo(&coo);
        let d_coo_rows = DeviceBuffer::from_slice(coo.rows());
        let d_coo_cols = DeviceBuffer::from_slice(coo.cols());
        let d_csr_offsets = DeviceBuffer::from_slice(csr.offsets());
        let d_csr_cols = DeviceBuffer::from_slice(csr.cols());
        Self {
            coo,
            csr,
            d_coo_rows,
            d_coo_cols,
            d_csr_offsets,
            d_csr_cols,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.coo.num_rows()
    }

    /// Number of NZEs (directed edges).
    pub fn nnz(&self) -> usize {
        self.coo.nnz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnone_sparse::formats::EdgeList;

    #[test]
    fn upload_roundtrip() {
        let coo = Coo::from_edge_list(&EdgeList::new(3, vec![(0, 1), (1, 2)]));
        let g = GraphData::new(coo);
        assert_eq!(g.d_coo_rows.to_vec(), vec![0, 1]);
        assert_eq!(g.d_coo_cols.to_vec(), vec![1, 2]);
        assert_eq!(g.d_csr_offsets.to_vec(), vec![0, 1, 2, 2]);
        assert_eq!(g.nnz(), 2);
        assert_eq!(g.num_vertices(), 3);
    }
}
