//! Constructs every kernel implementation for a graph — the entry point the
//! figure-reproduction harness iterates over.

use std::sync::Arc;

use crate::baselines::{
    CusparseSddmm, CusparseSpmm, DaltonSpmv, DgSparseSddmm, DglSddmm, FeatGraphSddmm,
    FeatGraphSpmm, GeSpmm, GnnAdvisorSpmm, HuangSpmm, MergeSpmv, RowBinningSpmm, SputnikSddmm,
    SputnikSpmm, YangSpmm,
};
use crate::gnnone::{GnnOneConfig, GnnOneSddmm, GnnOneSpmm, GnnOneSpmv};
use crate::graph::GraphData;
use crate::traits::{SddmmKernel, SpmmKernel, SpmvKernel};

/// All SDDMM systems of Fig. 3, GNNOne first.
pub fn sddmm_kernels(graph: &Arc<GraphData>) -> Vec<Box<dyn SddmmKernel>> {
    vec![
        Box::new(GnnOneSddmm::new(Arc::clone(graph), GnnOneConfig::default())),
        Box::new(DgSparseSddmm::new(Arc::clone(graph))),
        Box::new(CusparseSddmm::new(Arc::clone(graph))),
        Box::new(SputnikSddmm::new(Arc::clone(graph))),
        Box::new(FeatGraphSddmm::new(Arc::clone(graph))),
        Box::new(DglSddmm::new(Arc::clone(graph))),
    ]
}

/// All SpMM systems of Fig. 4, GNNOne first.
pub fn spmm_kernels(graph: &Arc<GraphData>) -> Vec<Box<dyn SpmmKernel>> {
    vec![
        Box::new(GnnOneSpmm::new(Arc::clone(graph), GnnOneConfig::default())),
        Box::new(GeSpmm::new(Arc::clone(graph))),
        Box::new(CusparseSpmm::new(Arc::clone(graph))),
        Box::new(HuangSpmm::new(Arc::clone(graph))),
        Box::new(FeatGraphSpmm::new(Arc::clone(graph))),
        Box::new(GnnAdvisorSpmm::new(Arc::clone(graph))),
    ]
}

/// Extra SpMM systems discussed but not plotted in Fig. 4: Yang et al.'s
/// nonzero-split (§3.2/§4.4), Sputnik's row-swizzled SpMM (§6) and the
/// row-binning lineage (§6).
pub fn spmm_discussion_kernels(graph: &Arc<GraphData>) -> Vec<Box<dyn SpmmKernel>> {
    vec![
        Box::new(YangSpmm::new(Arc::clone(graph))),
        Box::new(SputnikSpmm::new(Arc::clone(graph))),
        Box::new(RowBinningSpmm::new(Arc::clone(graph))),
    ]
}

/// All three SpMV designs of the §4.4 trade-off discussion: GNNOne's COO
/// nonzero-split plus the two prior classes it generalizes.
pub fn spmv_class_kernels(graph: &Arc<GraphData>) -> Vec<Box<dyn SpmvKernel>> {
    vec![
        Box::new(GnnOneSpmv::new(Arc::clone(graph))),
        Box::new(MergeSpmv::new(Arc::clone(graph))),
        Box::new(DaltonSpmv::new(Arc::clone(graph))),
    ]
}

/// Both SpMV systems of Fig. 12, GNNOne first.
pub fn spmv_kernels(graph: &Arc<GraphData>) -> Vec<Box<dyn SpmvKernel>> {
    vec![
        Box::new(GnnOneSpmv::new(Arc::clone(graph))),
        Box::new(MergeSpmv::new(Arc::clone(graph))),
    ]
}

/// Looks up one SDDMM system by its figure label.
pub fn sddmm_by_name(graph: &Arc<GraphData>, name: &str) -> Option<Box<dyn SddmmKernel>> {
    sddmm_kernels(graph)
        .into_iter()
        .find(|k| k.name().eq_ignore_ascii_case(name))
}

/// Looks up one SpMM system by its figure label.
pub fn spmm_by_name(graph: &Arc<GraphData>, name: &str) -> Option<Box<dyn SpmmKernel>> {
    spmm_kernels(graph)
        .into_iter()
        .chain(spmm_discussion_kernels(graph))
        .find(|k| k.name().eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnone_sparse::formats::Coo;
    use gnnone_sparse::gen;

    fn graph() -> Arc<GraphData> {
        let el = gen::erdos_renyi(64, 256, 1).symmetrize();
        Arc::new(GraphData::new(Coo::from_edge_list(&el)))
    }

    #[test]
    fn registries_match_paper_figures() {
        let g = graph();
        let sddmm: Vec<_> = sddmm_kernels(&g).iter().map(|k| k.name()).collect();
        assert_eq!(
            sddmm,
            vec![
                "GnnOne",
                "dgSparse",
                "CuSparse",
                "Sputnik",
                "FeatGraph",
                "DGL"
            ]
        );
        let spmm: Vec<_> = spmm_kernels(&g).iter().map(|k| k.name()).collect();
        assert_eq!(
            spmm,
            vec![
                "GnnOne",
                "GE-SpMM",
                "CuSparse",
                "Huang et al.",
                "FeatGraph",
                "GNNAdvisor"
            ]
        );
        let spmv: Vec<_> = spmv_kernels(&g).iter().map(|k| k.name()).collect();
        assert_eq!(spmv, vec!["GnnOne", "Merge-SpMV"]);
    }

    #[test]
    fn lookup_by_name() {
        let g = graph();
        assert!(sddmm_by_name(&g, "sputnik").is_some());
        assert!(spmm_by_name(&g, "Yang et al.").is_some());
        assert!(spmm_by_name(&g, "nope").is_none());
    }
}
