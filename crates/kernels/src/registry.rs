//! Constructs every kernel implementation for a graph — the entry point the
//! figure-reproduction harness iterates over.

use std::sync::Arc;

use crate::baselines::{
    CusparseSddmm, CusparseSpmm, DaltonSpmv, DgSparseSddmm, DglSddmm, FeatGraphSddmm,
    FeatGraphSpmm, GeSpmm, GnnAdvisorSpmm, HuangSpmm, MergeSpmv, RowBinningSpmm, SputnikSddmm,
    SputnikSpmm, YangSpmm,
};
use crate::gnnone::{GnnOneConfig, GnnOneCsrSpmm, GnnOneSddmm, GnnOneSpmm, GnnOneSpmv};
use crate::graph::GraphData;
use crate::ir::{IrFusedGat, IrUAddV};
use crate::traits::{EdgeApplyKernel, FusedAttentionKernel, SddmmKernel, SpmmKernel, SpmvKernel};

/// All SDDMM systems of Fig. 3, GNNOne first.
pub fn sddmm_kernels(graph: &Arc<GraphData>) -> Vec<Box<dyn SddmmKernel>> {
    vec![
        Box::new(GnnOneSddmm::new(Arc::clone(graph), GnnOneConfig::default())),
        Box::new(DgSparseSddmm::new(Arc::clone(graph))),
        Box::new(CusparseSddmm::new(Arc::clone(graph))),
        Box::new(SputnikSddmm::new(Arc::clone(graph))),
        Box::new(FeatGraphSddmm::new(Arc::clone(graph))),
        Box::new(DglSddmm::new(Arc::clone(graph))),
    ]
}

/// All SpMM systems of Fig. 4, GNNOne first.
pub fn spmm_kernels(graph: &Arc<GraphData>) -> Vec<Box<dyn SpmmKernel>> {
    vec![
        Box::new(GnnOneSpmm::new(Arc::clone(graph), GnnOneConfig::default())),
        Box::new(GeSpmm::new(Arc::clone(graph))),
        Box::new(CusparseSpmm::new(Arc::clone(graph))),
        Box::new(HuangSpmm::new(Arc::clone(graph))),
        Box::new(FeatGraphSpmm::new(Arc::clone(graph))),
        Box::new(GnnAdvisorSpmm::new(Arc::clone(graph))),
    ]
}

/// Extra SpMM systems discussed but not plotted in Fig. 4: Yang et al.'s
/// nonzero-split (§3.2/§4.4), Sputnik's row-swizzled SpMM (§6) and the
/// row-binning lineage (§6).
pub fn spmm_discussion_kernels(graph: &Arc<GraphData>) -> Vec<Box<dyn SpmmKernel>> {
    vec![
        Box::new(YangSpmm::new(Arc::clone(graph))),
        Box::new(SputnikSpmm::new(Arc::clone(graph))),
        Box::new(RowBinningSpmm::new(Arc::clone(graph))),
    ]
}

/// All three SpMV designs of the §4.4 trade-off discussion: GNNOne's COO
/// nonzero-split plus the two prior classes it generalizes.
pub fn spmv_class_kernels(graph: &Arc<GraphData>) -> Vec<Box<dyn SpmvKernel>> {
    vec![
        Box::new(GnnOneSpmv::new(Arc::clone(graph))),
        Box::new(MergeSpmv::new(Arc::clone(graph))),
        Box::new(DaltonSpmv::new(Arc::clone(graph))),
    ]
}

/// Both SpMV systems of Fig. 12, GNNOne first.
pub fn spmv_kernels(graph: &Arc<GraphData>) -> Vec<Box<dyn SpmvKernel>> {
    vec![
        Box::new(GnnOneSpmv::new(Arc::clone(graph))),
        Box::new(MergeSpmv::new(Arc::clone(graph))),
    ]
}

/// SpMM kernels of the §5.4.5 format study: the GNNOne structure re-hosted
/// on formats other than COO.
pub fn spmm_format_kernels(graph: &Arc<GraphData>) -> Vec<Box<dyn SpmmKernel>> {
    vec![Box::new(GnnOneCsrSpmm::new(Arc::clone(graph)))]
}

/// Edge-apply SDDMM variants (§4.3), e.g. GAT's `u_add_v` logits.
///
/// The entry is the IR-lowered [`IrUAddV`] (same name, format and launch
/// as the hand-built `GnnOneUAddV`), so every sanitizer/chaos/verify/bench
/// sweep over this registry exercises an IR-lowered launch.
pub fn edge_apply_kernels(graph: &Arc<GraphData>) -> Vec<Box<dyn EdgeApplyKernel>> {
    vec![Box::new(IrUAddV::new(Arc::clone(graph)))]
}

/// Fused-attention kernels (§5.3.2's future-work direction).
///
/// The entry is the IR-lowered [`IrFusedGat`] — the `u_add_v → leaky_relu
/// → edge_softmax → aggregate` chain pattern-matched into the single
/// `RowSoftmaxGat` launch — byte-identical to the hand-built
/// `FusedGatAttention` (pinned by `tests/fusion_ir.rs`).
pub fn fused_kernels(graph: &Arc<GraphData>) -> Vec<Box<dyn FusedAttentionKernel>> {
    vec![Box::new(IrFusedGat::new(Arc::clone(graph), 0.2))]
}

/// Fig. 8's SDDMM ablation ladder as `(column label, kernel)` pairs, full
/// design first. All three kernels keep the `"GnnOne"` system name — the
/// ladder is one system under different config toggles, and the metrics
/// registry aggregates their launches under that one name.
pub fn sddmm_ablation_kernels(graph: &Arc<GraphData>) -> Vec<(&'static str, GnnOneSddmm)> {
    vec![
        (
            "+Float4",
            GnnOneSddmm::new(Arc::clone(graph), GnnOneConfig::default()),
        ),
        (
            "+Data-reuse",
            GnnOneSddmm::new(Arc::clone(graph), GnnOneConfig::ablation_data_reuse()),
        ),
        (
            "Baseline",
            GnnOneSddmm::new(Arc::clone(graph), GnnOneConfig::ablation_baseline()),
        ),
    ]
}

/// Looks up one SDDMM system by its figure label.
pub fn sddmm_by_name(graph: &Arc<GraphData>, name: &str) -> Option<Box<dyn SddmmKernel>> {
    sddmm_kernels(graph)
        .into_iter()
        .find(|k| k.name().eq_ignore_ascii_case(name))
}

/// Looks up one SpMM system by its figure label.
pub fn spmm_by_name(graph: &Arc<GraphData>, name: &str) -> Option<Box<dyn SpmmKernel>> {
    spmm_kernels(graph)
        .into_iter()
        .chain(spmm_discussion_kernels(graph))
        .chain(spmm_format_kernels(graph))
        .find(|k| k.name().eq_ignore_ascii_case(name))
}

/// Looks up one SpMV-class system by its figure label.
pub fn spmv_by_name(graph: &Arc<GraphData>, name: &str) -> Option<Box<dyn SpmvKernel>> {
    spmv_class_kernels(graph)
        .into_iter()
        .find(|k| k.name().eq_ignore_ascii_case(name))
}

/// Looks up one edge-apply variant by its registry name.
pub fn edge_apply_by_name(graph: &Arc<GraphData>, name: &str) -> Option<Box<dyn EdgeApplyKernel>> {
    edge_apply_kernels(graph)
        .into_iter()
        .find(|k| k.name().eq_ignore_ascii_case(name))
}

/// Looks up one fused-attention kernel by its registry name.
pub fn fused_by_name(graph: &Arc<GraphData>, name: &str) -> Option<Box<dyn FusedAttentionKernel>> {
    fused_kernels(graph)
        .into_iter()
        .find(|k| k.name().eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnone_sparse::formats::Coo;
    use gnnone_sparse::gen;

    fn graph() -> Arc<GraphData> {
        let el = gen::erdos_renyi(64, 256, 1).symmetrize();
        Arc::new(GraphData::new(Coo::from_edge_list(&el)))
    }

    #[test]
    fn registries_match_paper_figures() {
        let g = graph();
        let sddmm: Vec<_> = sddmm_kernels(&g).iter().map(|k| k.name()).collect();
        assert_eq!(
            sddmm,
            vec![
                "GnnOne",
                "dgSparse",
                "CuSparse",
                "Sputnik",
                "FeatGraph",
                "DGL"
            ]
        );
        let spmm: Vec<_> = spmm_kernels(&g).iter().map(|k| k.name()).collect();
        assert_eq!(
            spmm,
            vec![
                "GnnOne",
                "GE-SpMM",
                "CuSparse",
                "Huang et al.",
                "FeatGraph",
                "GNNAdvisor"
            ]
        );
        let spmv: Vec<_> = spmv_kernels(&g).iter().map(|k| k.name()).collect();
        assert_eq!(spmv, vec!["GnnOne", "Merge-SpMV"]);
    }

    #[test]
    fn auxiliary_registries_cover_the_remaining_kernels() {
        let g = graph();
        let fmt: Vec<_> = spmm_format_kernels(&g)
            .iter()
            .map(|k| (k.name(), k.format()))
            .collect();
        assert_eq!(fmt, vec![("GnnOne-CSR", "CSR")]);
        let edge: Vec<_> = edge_apply_kernels(&g)
            .iter()
            .map(|k| (k.name(), k.format()))
            .collect();
        assert_eq!(edge, vec![("GnnOne-UAddV", "COO")]);
        let fused: Vec<_> = fused_kernels(&g)
            .iter()
            .map(|k| (k.name(), k.format()))
            .collect();
        assert_eq!(fused, vec![("FusedGAT", "CSR")]);
        // Fig. 8's columns, full design first — and one shared system name,
        // which the metrics registry's aggregation depends on.
        let ablation = sddmm_ablation_kernels(&g);
        let labels: Vec<_> = ablation.iter().map(|(l, _)| *l).collect();
        assert_eq!(labels, vec!["+Float4", "+Data-reuse", "Baseline"]);
        assert!(ablation.iter().all(|(_, k)| k.name() == "GnnOne"));
    }

    #[test]
    fn lookup_by_name() {
        let g = graph();
        assert!(sddmm_by_name(&g, "sputnik").is_some());
        assert!(spmm_by_name(&g, "Yang et al.").is_some());
        assert!(spmm_by_name(&g, "gnnone-csr").is_some());
        assert!(spmm_by_name(&g, "nope").is_none());
        assert!(edge_apply_by_name(&g, "gnnone-uaddv").is_some());
        assert!(edge_apply_by_name(&g, "nope").is_none());
        assert!(fused_by_name(&g, "fusedgat").is_some());
        assert!(fused_by_name(&g, "nope").is_none());
    }
}
