//! The supervised sharded executor: shard-by-shard launch with halo
//! exchange, per-shard watchdog deadlines, bounded deterministic retry,
//! output checkpoints, and typed degraded-mode declines.
//!
//! # Execution model
//!
//! One run walks the partition in shard order. For each nonempty shard the
//! supervision loop:
//!
//! 1. consults the armed shard fault (if any) — a
//!    [`ShardFaultKind::TransientShardLaunch`] fires here as a one-shot
//!    structured preflight decline;
//! 2. gathers the shard's halo (remote vertex rows its edges read) from
//!    the owning shards, moving it over the topology's modeled
//!    interconnect and verifying a content checksum on arrival — a fired
//!    [`ShardFaultKind::HaloDrop`] corrupts the received payload, the
//!    checksum mismatches, and the gather is retried from the owners;
//! 3. rebuilds every vertex-indexed operand in shard-local form (zeros
//!    outside owned ∪ halo — the kernel reads nothing else);
//! 4. launches the registry kernel for this shard on its device (simulated
//!    GPU or per-shard rayon pool). A fired [`ShardFaultKind::ShardKill`]
//!    discards the result as a [`gnnone_sim::AbortReason::ChaosKill`]; a
//!    fired [`ShardFaultKind::ShardStall`] inflates the reported time past
//!    the per-shard deadline so the watchdog check trips;
//! 5. checks the per-shard watchdog deadline on every launch;
//! 6. on success, merges the shard's output into its disjoint global
//!    interval (proved sound at construction by [`super::verify`]) — the
//!    merged prefix is the checkpoint: a later shard's failure never
//!    re-executes earlier shards.
//!
//! On failure the loop backs off deterministically
//! (`backoff_base_ms << (attempt-1)`, the same schedule as
//! `SweepGuard::with_policy`, plus an optional seeded splitmix64 jitter
//! that is itself reproducible) and retries **only the failed shard**, up to
//! [`RetryPolicy::max_attempts`]. Exhausted retries surface as
//! [`GnnOneError::ShardAbort`] carrying the shard, attempt count,
//! checkpointed-shard count, and armed fault — a typed partial-result
//! decline; the executor never returns a silently zero-filled output.

use std::sync::Arc;
use std::time::Duration;

use gnnone_sim::chaos::ShardFaultKind;
use gnnone_sim::engine::LaunchError;
use gnnone_sim::jsonio::Json;
use gnnone_sim::topology::MultiGpu;
use gnnone_sim::{
    AbortReason, DeviceBuffer, GnnOneError, GpuSpec, KernelAbort, ShardAbort, ValidationError,
};
use gnnone_sparse::RowPartition;

use crate::backend::{BackendKind, NativeEngine};
use crate::graph::GraphData;
use crate::shard::verify::{verify_merge, MergeTarget};
use crate::shard::{halo_vertices, partition_graph, shard_graphs};
use crate::traits::{EdgeApplyKernel, FusedAttentionKernel, SddmmKernel, SpmmKernel, SpmvKernel};

/// Where shards execute: K simulated devices joined by a modeled
/// interconnect, or per-shard rayon pools on the native CPU backend.
#[allow(clippy::large_enum_variant)]
pub enum ShardTopology {
    /// Simulated multi-GPU topology; shard `s` runs on device
    /// `s % num_devices` and halo exchange is charged to the interconnect.
    Sim(MultiGpu),
    /// Native CPU backend; shard `s` runs on pool `s % pools`. Halo
    /// exchange stays in host memory (zero modeled cost) but follows the
    /// same checksummed gather path.
    Native(Vec<NativeEngine>),
}

impl ShardTopology {
    /// A simulated topology of `devices` identical GPUs built from `spec`.
    pub fn sim(spec: GpuSpec, devices: usize) -> Self {
        ShardTopology::Sim(MultiGpu::new(spec, devices.max(1)))
    }

    /// A native topology of `pools` rayon pools splitting `total_threads`
    /// between them (each pool gets at least one thread).
    pub fn native(total_threads: usize, pools: usize) -> Result<Self, GnnOneError> {
        let pools = pools.max(1);
        let per = (total_threads / pools).max(1);
        let engines = (0..pools)
            .map(|_| {
                NativeEngine::with_threads(per).map_err(|detail| GnnOneError::Config { detail })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ShardTopology::Native(engines))
    }

    /// Which backend family this topology drives.
    pub fn kind(&self) -> BackendKind {
        match self {
            ShardTopology::Sim(_) => BackendKind::Sim,
            ShardTopology::Native(_) => BackendKind::Native,
        }
    }

    /// Number of devices / pools available.
    pub fn num_workers(&self) -> usize {
        match self {
            ShardTopology::Sim(m) => m.num_devices(),
            ShardTopology::Native(e) => e.len(),
        }
    }

    /// The simulated topology, when this is one (for transfer accounting).
    pub fn as_multi_gpu(&self) -> Option<&MultiGpu> {
        match self {
            ShardTopology::Sim(m) => Some(m),
            ShardTopology::Native(_) => None,
        }
    }
}

/// Bounded deterministic retry: up to `max_attempts` tries per shard with
/// backoff `backoff_base_ms << (attempt - 1)` between them — the same
/// schedule `SweepGuard::with_policy` applies to whole sweep cells,
/// generalized to individual shards. An optional seeded jitter term
/// (splitmix64, the same expander the chaos engine uses for targeting)
/// decorrelates concurrent retries while keeping the full schedule
/// reproducible: identical `(seed, attempt)` pairs always yield the same
/// wait, so quarantine records and tests can assert exact ladders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Attempts per shard, including the first (minimum 1).
    pub max_attempts: u32,
    /// Base backoff in milliseconds; 0 disables sleeping (tests, sweeps).
    pub backoff_base_ms: u64,
    /// Upper bound on the additive jitter in milliseconds; 0 disables
    /// jitter and reproduces the plain exponential ladder.
    pub jitter_ms: u64,
    /// Seed for the deterministic jitter draw.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            backoff_base_ms: 0,
            jitter_ms: 0,
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// Backoff applied after failed attempt `attempt` (1-based): the
    /// exponential ladder `backoff_base_ms << (attempt - 1)` plus a
    /// deterministic jitter in `0..=jitter_ms` drawn from
    /// `splitmix64(seed ^ attempt)`.
    pub fn backoff_ms(&self, attempt: u32) -> u64 {
        let base = if self.backoff_base_ms == 0 {
            0
        } else {
            self.backoff_base_ms << (attempt - 1).min(16)
        };
        base + self.jitter(attempt)
    }

    /// The jitter component alone for failed attempt `attempt` (1-based).
    fn jitter(&self, attempt: u32) -> u64 {
        if self.jitter_ms == 0 {
            0
        } else {
            gnnone_sim::splitmix64(self.seed ^ u64::from(attempt)) % (self.jitter_ms + 1)
        }
    }
}

/// What one supervised sharded run did: timing split into compute and
/// interconnect, per-shard launch/attempt counters (the recovery tests
/// assert a retried shard re-launches alone), applied backoff schedule,
/// and descriptions of every detected-and-recovered fault.
#[derive(Debug, Clone)]
pub struct ShardedReport {
    /// Kernel name.
    pub kernel: String,
    /// Shard count K.
    pub shards: usize,
    /// End-to-end modeled time: compute plus interconnect.
    pub time_ms: f64,
    /// Sum of per-shard kernel times (successful attempts only).
    pub compute_ms: f64,
    /// Modeled interconnect time for halo exchange.
    pub transfer_ms: f64,
    /// Bytes moved over the interconnect for halo exchange.
    pub transfer_bytes: u64,
    /// Actual kernel launches per shard (empty shards launch zero times).
    pub launches: Vec<u32>,
    /// Supervision attempts per shard (launch declines count, skips do not).
    pub attempts: Vec<u32>,
    /// Total retries across all shards.
    pub retries: u32,
    /// Backoff waits applied, in order.
    pub backoff_ms: Vec<u64>,
    /// Human-readable description of each detected-and-recovered failure.
    pub recovered: Vec<String>,
}

impl ShardedReport {
    fn new(kernel: &str, shards: usize) -> Self {
        Self {
            kernel: kernel.to_string(),
            shards,
            time_ms: 0.0,
            compute_ms: 0.0,
            transfer_ms: 0.0,
            transfer_bytes: 0,
            launches: vec![0; shards],
            attempts: vec![0; shards],
            retries: 0,
            backoff_ms: Vec::new(),
            recovered: Vec::new(),
        }
    }

    /// Serializes through the dependency-free jsonio path.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("kernel", Json::Str(self.kernel.clone())),
            ("shards", Json::U64(self.shards as u64)),
            ("time_ms", Json::F64(self.time_ms)),
            ("compute_ms", Json::F64(self.compute_ms)),
            ("transfer_ms", Json::F64(self.transfer_ms)),
            ("transfer_bytes", Json::U64(self.transfer_bytes)),
            (
                "launches",
                Json::Arr(
                    self.launches
                        .iter()
                        .map(|&l| Json::U64(u64::from(l)))
                        .collect(),
                ),
            ),
            (
                "attempts",
                Json::Arr(
                    self.attempts
                        .iter()
                        .map(|&a| Json::U64(u64::from(a)))
                        .collect(),
                ),
            ),
            ("retries", Json::U64(u64::from(self.retries))),
            (
                "backoff_ms",
                Json::Arr(self.backoff_ms.iter().map(|&b| Json::U64(b)).collect()),
            ),
            (
                "recovered",
                Json::Arr(self.recovered.iter().cloned().map(Json::Str).collect()),
            ),
        ])
    }
}

/// The armed shard fault, resolved to its seeded firing point for one run.
struct FirePlan {
    kind: ShardFaultKind,
    target: usize,
    fired: bool,
}

/// One shard launch's raw outputs before merging.
struct ShardOutputs {
    /// Full-length (`num_rows · width`) row output; only owned rows merge.
    rows: Option<Vec<f32>>,
    /// Shard-local (`shard nnz`) edge output; merges into the owned range.
    edges: Option<Vec<f32>>,
}

type ShardLaunch<'a> = dyn Fn(usize, &[Vec<f32>]) -> Result<(ShardOutputs, f64), LaunchError> + 'a;

/// A supervised run's merged row output, merged edge output, and report.
type ShardedRun = (Option<Vec<f32>>, Option<Vec<f32>>, ShardedReport);

/// Runs any registry kernel shard-by-shard over a validated row-aligned
/// partition with supervised fault recovery. See the module docs for the
/// execution model and `docs/ROBUSTNESS.md` §7 for the fault contract.
pub struct ShardedExecutor {
    graph: Arc<GraphData>,
    partition: RowPartition,
    shard_graphs: Vec<Arc<GraphData>>,
    halos: Vec<Vec<u32>>,
    topology: ShardTopology,
    policy: RetryPolicy,
    fault: Option<(ShardFaultKind, u64)>,
    deadline_ms: f64,
}

impl ShardedExecutor {
    /// Partitions `graph` into `shards` nnz-balanced row-aligned shards
    /// and prepares the executor. Fails with a structured error when the
    /// partition is invalid or its merge plan cannot be proved disjoint
    /// and covering.
    pub fn new(
        graph: Arc<GraphData>,
        shards: usize,
        topology: ShardTopology,
    ) -> Result<Self, GnnOneError> {
        let partition = partition_graph(&graph, shards)?;
        Self::with_partition(graph, partition, topology)
    }

    /// Builds the executor over an explicit partition (already validated
    /// by [`RowPartition`]'s constructors; re-checked against the graph
    /// and the static merge proof here).
    pub fn with_partition(
        graph: Arc<GraphData>,
        partition: RowPartition,
        topology: ShardTopology,
    ) -> Result<Self, GnnOneError> {
        if graph.coo.num_rows() != graph.coo.num_cols() {
            return Err(ValidationError::new(
                "RowPartition",
                "num_cols",
                None,
                format!(
                    "sharded execution needs a square adjacency: {} rows vs {} cols",
                    graph.coo.num_rows(),
                    graph.coo.num_cols()
                ),
            )
            .into());
        }
        if partition.num_rows() != graph.num_vertices() || partition.nnz() != graph.nnz() {
            return Err(ValidationError::new(
                "RowPartition",
                "row_ranges",
                None,
                format!(
                    "partition shape ({} rows, {} nnz) does not match the graph \
                     ({} rows, {} nnz)",
                    partition.num_rows(),
                    partition.nnz(),
                    graph.num_vertices(),
                    graph.nnz()
                ),
            )
            .into());
        }
        // Static merge preflight: both obligation families must be proved
        // before anything launches.
        for target in [MergeTarget::Rows, MergeTarget::Edges] {
            let verdict = verify_merge(&partition, 1, target);
            if !verdict.is_proved() {
                return Err(ValidationError::new(
                    "RowPartition",
                    "merge",
                    None,
                    format!(
                        "shard-merge {} plan not proved sound: {verdict:?}",
                        target.as_str()
                    ),
                )
                .into());
            }
        }
        let shard_graphs = shard_graphs(&graph, &partition)?;
        let halos = partition
            .shards()
            .iter()
            .map(|s| halo_vertices(&graph, s))
            .collect();
        Ok(Self {
            graph,
            partition,
            shard_graphs,
            halos,
            topology,
            policy: RetryPolicy::default(),
            fault: None,
            deadline_ms: 30_000.0,
        })
    }

    /// The validated partition this executor runs over.
    pub fn partition(&self) -> &RowPartition {
        &self.partition
    }

    /// The topology shards execute on.
    pub fn topology(&self) -> &ShardTopology {
        &self.topology
    }

    /// Per-shard halo sizes (vertices shipped before each shard launches).
    pub fn halo_sizes(&self) -> Vec<usize> {
        self.halos.iter().map(Vec::len).collect()
    }

    /// Replaces the retry policy (defaults to 3 attempts, no backoff).
    pub fn set_policy(&mut self, policy: RetryPolicy) {
        self.policy = policy;
    }

    /// Arms one shard fault: it fires once per run at the shard seeded by
    /// [`ShardFaultKind::target`] over the eligible shards.
    pub fn arm_fault(&mut self, kind: ShardFaultKind, seed: u64) {
        self.fault = Some((kind, seed));
    }

    /// Disarms any armed fault.
    pub fn clear_fault(&mut self) {
        self.fault = None;
    }

    /// Sets the per-shard watchdog deadline in milliseconds (default
    /// 30 000 — generous for every healthy tiny-scale launch, and checked
    /// on *every* shard launch, not just injected stalls).
    pub fn set_deadline_ms(&mut self, ms: f64) {
        self.deadline_ms = ms;
    }

    fn num_rows(&self) -> usize {
        self.partition.num_rows()
    }

    /// Resolves the armed fault to its firing point for one run. Kill,
    /// stall, and transient faults target nonempty shards (empty shards
    /// never launch); halo drops target shards with halo traffic. `None`
    /// when nothing is armed or no shard is eligible (recorded by sweeps
    /// as a not-injected cell).
    fn fire_plan(&self) -> Option<FirePlan> {
        let (kind, seed) = self.fault?;
        let eligible: Vec<usize> = match kind {
            ShardFaultKind::HaloDrop => (0..self.halos.len())
                .filter(|&s| !self.halos[s].is_empty() && self.partition.shards()[s].nnz() > 0)
                .collect(),
            _ => (0..self.partition.num_shards())
                .filter(|&s| self.partition.shards()[s].nnz() > 0)
                .collect(),
        };
        let idx = kind.target(seed, eligible.len())?;
        Some(FirePlan {
            kind,
            target: eligible[idx],
            fired: false,
        })
    }

    /// Gathers shard `s`'s halo rows of one vertex operand (`width`
    /// elements per row) from their owners, moving each owner's batch over
    /// the interconnect and verifying a content checksum on arrival.
    /// Returns the received halo (concatenated in halo order) or a
    /// structured decline when a transfer arrives corrupted.
    #[allow(clippy::too_many_arguments)]
    fn gather_halo(
        &self,
        s: usize,
        data: &[f32],
        width: usize,
        plan: &mut Option<FirePlan>,
        transfer_ms: &mut f64,
        transfer_bytes: &mut u64,
    ) -> Result<Vec<f32>, GnnOneError> {
        let halo = &self.halos[s];
        let mut received = Vec::with_capacity(halo.len() * width);
        if halo.is_empty() {
            return Ok(received);
        }
        // Group contiguous runs of halo vertices by owning shard: one
        // interconnect message per (owner → s) run.
        let mut i = 0usize;
        while i < halo.len() {
            let owner = self.partition.owner_of_row(halo[i] as usize);
            let mut j = i + 1;
            while j < halo.len() && self.partition.owner_of_row(halo[j] as usize) == owner {
                j += 1;
            }
            let mut sent = Vec::with_capacity((j - i) * width);
            for &v in &halo[i..j] {
                let base = v as usize * width;
                sent.extend_from_slice(&data[base..base + width]);
            }
            let expect = checksum(&sent);
            let bytes = (sent.len() * 4) as u64;
            if let ShardTopology::Sim(multi) = &self.topology {
                let workers = multi.num_devices();
                let ms = multi.transfer(owner % workers, s % workers, bytes);
                *transfer_ms += ms;
                if owner % workers != s % workers {
                    *transfer_bytes += bytes;
                }
            }
            let mut payload = sent;
            if let Some(p) = plan.as_mut() {
                if p.kind == ShardFaultKind::HaloDrop && p.target == s && !p.fired {
                    p.fired = true;
                    // The message is dropped on the wire: the receiver sees
                    // a corrupted payload, not the sender's bytes.
                    for v in payload.iter_mut() {
                        *v = f32::from_bits(v.to_bits() ^ 0x0040_0000);
                    }
                }
            }
            if checksum(&payload) != expect {
                return Err(GnnOneError::Launch(LaunchError::Unlaunchable {
                    reason: format!(
                        "halo checksum mismatch on transfer shard {owner} -> shard {s}: \
                         dropped or corrupted interconnect message"
                    ),
                }));
            }
            received.extend_from_slice(&payload);
            i = j;
        }
        Ok(received)
    }

    /// Rebuilds one vertex-indexed operand in shard-local form: zeros
    /// everywhere except the owned row span (copied locally) and the halo
    /// rows (scattered from the *received* transfer payload — the real
    /// data path a dropped halo would corrupt).
    fn rebuild_operand(&self, s: usize, data: &[f32], width: usize, halo_data: &[f32]) -> Vec<f32> {
        let spec = &self.partition.shards()[s];
        let mut out = vec![0.0f32; self.num_rows() * width];
        out[spec.row_start * width..spec.row_end * width]
            .copy_from_slice(&data[spec.row_start * width..spec.row_end * width]);
        for (k, &v) in self.halos[s].iter().enumerate() {
            let base = v as usize * width;
            out[base..base + width].copy_from_slice(&halo_data[k * width..(k + 1) * width]);
        }
        out
    }

    /// The supervision loop shared by every kernel family. `vertex_ops`
    /// are the vertex-indexed operands (data, per-row width) to halo-
    /// exchange and rebuild per shard; `out_rows_width` requests a merged
    /// row output of that width; `out_edges` requests a merged edge
    /// output. `launch` runs one shard given its rebuilt operands.
    fn run_sharded(
        &self,
        kernel: &str,
        vertex_ops: &[(&[f32], usize)],
        out_rows_width: Option<usize>,
        out_edges: bool,
        launch: &ShardLaunch,
    ) -> Result<ShardedRun, GnnOneError> {
        let k = self.partition.num_shards();
        let mut report = ShardedReport::new(kernel, k);
        let mut rows_out = out_rows_width.map(|w| vec![0.0f32; self.num_rows() * w]);
        let mut edges_out = if out_edges {
            Some(vec![0.0f32; self.partition.nnz()])
        } else {
            None
        };
        let mut plan = self.fire_plan();
        let mut completed = 0u64;
        for s in 0..k {
            let spec = self.partition.shards()[s];
            if spec.nnz() == 0 {
                // Nothing to launch: the shard's owned rows have no edges,
                // so its output contribution is exactly the zeros already
                // in place.
                completed += 1;
                continue;
            }
            let mut attempt = 0u32;
            loop {
                attempt += 1;
                report.attempts[s] += 1;
                let mut t_ms = 0.0f64;
                let mut t_bytes = 0u64;
                let outcome = self.attempt_shard(
                    kernel,
                    s,
                    attempt,
                    vertex_ops,
                    &mut plan,
                    &mut t_ms,
                    &mut t_bytes,
                    &mut report.launches[s],
                    launch,
                );
                match outcome {
                    Ok((outputs, ms)) => {
                        report.compute_ms += ms;
                        report.transfer_ms += t_ms;
                        report.transfer_bytes += t_bytes;
                        if let (Some(dst), Some(src), Some(w)) =
                            (rows_out.as_mut(), outputs.rows.as_ref(), out_rows_width)
                        {
                            dst[spec.row_start * w..spec.row_end * w]
                                .copy_from_slice(&src[spec.row_start * w..spec.row_end * w]);
                        }
                        if let (Some(dst), Some(src)) = (edges_out.as_mut(), outputs.edges.as_ref())
                        {
                            dst[spec.edge_start..spec.edge_end].copy_from_slice(src);
                        }
                        completed += 1;
                        break;
                    }
                    Err(err) => {
                        if attempt >= self.policy.max_attempts {
                            return Err(GnnOneError::ShardAbort(ShardAbort {
                                kernel: kernel.to_string(),
                                shard: s as u64,
                                shards: k as u64,
                                attempts: u64::from(attempt),
                                completed,
                                fault: plan
                                    .as_ref()
                                    .filter(|p| p.fired)
                                    .map(|p| p.kind.as_str().to_string()),
                                detail: err.to_string(),
                            }));
                        }
                        report
                            .recovered
                            .push(format!("shard {s} attempt {attempt}: {err}"));
                        let backoff = self.policy.backoff_ms(attempt);
                        report.backoff_ms.push(backoff);
                        if backoff > 0 {
                            std::thread::sleep(Duration::from_millis(backoff));
                        }
                        report.retries += 1;
                    }
                }
            }
        }
        report.time_ms = report.compute_ms + report.transfer_ms;
        Ok((rows_out, edges_out, report))
    }

    /// One supervised attempt at one shard: fault consult → halo gather →
    /// operand rebuild → launch → kill/stall injection → deadline check.
    #[allow(clippy::too_many_arguments)]
    fn attempt_shard(
        &self,
        kernel: &str,
        s: usize,
        attempt: u32,
        vertex_ops: &[(&[f32], usize)],
        plan: &mut Option<FirePlan>,
        transfer_ms: &mut f64,
        transfer_bytes: &mut u64,
        launches: &mut u32,
        launch: &ShardLaunch,
    ) -> Result<(ShardOutputs, f64), GnnOneError> {
        let _ = attempt;
        if let Some(p) = plan.as_mut() {
            if p.kind == ShardFaultKind::TransientShardLaunch && p.target == s && !p.fired {
                p.fired = true;
                return Err(GnnOneError::Launch(LaunchError::Unlaunchable {
                    reason: format!("chaos-injected transient launch decline for shard {s}"),
                }));
            }
        }
        let mut rebuilt = Vec::with_capacity(vertex_ops.len());
        for &(data, width) in vertex_ops {
            let halo_data = self.gather_halo(s, data, width, plan, transfer_ms, transfer_bytes)?;
            rebuilt.push(self.rebuild_operand(s, data, width, &halo_data));
        }
        *launches += 1;
        let (outputs, mut ms) = launch(s, &rebuilt).map_err(GnnOneError::from)?;
        if let Some(p) = plan.as_mut() {
            if p.target == s && !p.fired {
                match p.kind {
                    ShardFaultKind::ShardKill => {
                        p.fired = true;
                        // The device died mid-launch: work happened, output
                        // is lost, the supervisor sees a structured abort.
                        return Err(GnnOneError::Abort(KernelAbort {
                            kernel: kernel.to_string(),
                            warp_id: s as u64,
                            ops: 0,
                            budget: 0,
                            reason: AbortReason::ChaosKill,
                        }));
                    }
                    ShardFaultKind::ShardStall => {
                        p.fired = true;
                        // The device hangs: reported time blows through the
                        // per-shard deadline and the watchdog check below
                        // trips on the normal path.
                        ms += self.deadline_ms * 2.0;
                    }
                    _ => {}
                }
            }
        }
        if ms > self.deadline_ms {
            return Err(GnnOneError::Abort(KernelAbort {
                kernel: kernel.to_string(),
                warp_id: s as u64,
                ops: ms as u64,
                budget: self.deadline_ms as u64,
                reason: AbortReason::Watchdog,
            }));
        }
        Ok((outputs, ms))
    }

    /// Runs an SpMM kernel (`y ← A·X` with edge weights) sharded:
    /// `edge_vals` is `|E|`, `x` is `|V| × f` row-major. Returns the
    /// merged `|V| × f` output and the run report.
    pub fn run_spmm(
        &self,
        make: &dyn Fn(&Arc<GraphData>) -> Box<dyn SpmmKernel>,
        edge_vals: &[f32],
        x: &[f32],
        f: usize,
    ) -> Result<(Vec<f32>, ShardedReport), GnnOneError> {
        self.check_len("edge_vals", edge_vals.len(), self.graph.nnz())?;
        self.check_len("x", x.len(), self.num_rows() * f)?;
        let name = make(&self.shard_graphs[0]).name();
        let launch = move |s: usize, ops: &[Vec<f32>]| {
            let spec = self.partition.shards()[s];
            let kernel = make(&self.shard_graphs[s]);
            let dw = DeviceBuffer::from_slice(&edge_vals[spec.edge_start..spec.edge_end]);
            let dx = DeviceBuffer::from_slice(&ops[0]);
            let dy = DeviceBuffer::<f32>::zeros(self.num_rows() * f);
            let ms = match &self.topology {
                ShardTopology::Sim(multi) => {
                    let gpu = multi.device(s % multi.num_devices());
                    kernel.run(gpu, &dw, &dx, f, &dy)?.time_ms
                }
                ShardTopology::Native(engines) => {
                    kernel
                        .run_native(&engines[s % engines.len()], &dw, &dx, f, &dy)?
                        .time_ms
                }
            };
            Ok((
                ShardOutputs {
                    rows: Some(dy.to_vec()),
                    edges: None,
                },
                ms,
            ))
        };
        let (rows, _, report) = self.run_sharded(name, &[(x, f)], Some(f), false, &launch)?;
        Ok((rows.expect("row output requested"), report))
    }

    /// Runs an SDDMM kernel (`w ← A ⊙ (X·Yᵀ)`) sharded: `x` and `y` are
    /// `|V| × f` row-major. Returns the merged `|E|` edge scores.
    pub fn run_sddmm(
        &self,
        make: &dyn Fn(&Arc<GraphData>) -> Box<dyn SddmmKernel>,
        x: &[f32],
        y: &[f32],
        f: usize,
    ) -> Result<(Vec<f32>, ShardedReport), GnnOneError> {
        self.check_len("x", x.len(), self.num_rows() * f)?;
        self.check_len("y", y.len(), self.num_rows() * f)?;
        let name = make(&self.shard_graphs[0]).name();
        let launch = move |s: usize, ops: &[Vec<f32>]| {
            let spec = self.partition.shards()[s];
            let kernel = make(&self.shard_graphs[s]);
            let dx = DeviceBuffer::from_slice(&ops[0]);
            let dy = DeviceBuffer::from_slice(&ops[1]);
            let dw = DeviceBuffer::<f32>::zeros(spec.nnz());
            let ms = match &self.topology {
                ShardTopology::Sim(multi) => {
                    let gpu = multi.device(s % multi.num_devices());
                    kernel.run(gpu, &dx, &dy, f, &dw)?.time_ms
                }
                ShardTopology::Native(engines) => {
                    kernel
                        .run_native(&engines[s % engines.len()], &dx, &dy, f, &dw)?
                        .time_ms
                }
            };
            Ok((
                ShardOutputs {
                    rows: None,
                    edges: Some(dw.to_vec()),
                },
                ms,
            ))
        };
        let (_, edges, report) = self.run_sharded(name, &[(x, f), (y, f)], None, true, &launch)?;
        Ok((edges.expect("edge output requested"), report))
    }

    /// Runs an SpMV-class kernel (`y ← A·x`, scalar features) sharded.
    pub fn run_spmv(
        &self,
        make: &dyn Fn(&Arc<GraphData>) -> Box<dyn SpmvKernel>,
        edge_vals: &[f32],
        x: &[f32],
    ) -> Result<(Vec<f32>, ShardedReport), GnnOneError> {
        self.check_len("edge_vals", edge_vals.len(), self.graph.nnz())?;
        self.check_len("x", x.len(), self.num_rows())?;
        let name = make(&self.shard_graphs[0]).name();
        let launch = move |s: usize, ops: &[Vec<f32>]| {
            let spec = self.partition.shards()[s];
            let kernel = make(&self.shard_graphs[s]);
            let dw = DeviceBuffer::from_slice(&edge_vals[spec.edge_start..spec.edge_end]);
            let dx = DeviceBuffer::from_slice(&ops[0]);
            let dy = DeviceBuffer::<f32>::zeros(self.num_rows());
            let ms = match &self.topology {
                ShardTopology::Sim(multi) => {
                    let gpu = multi.device(s % multi.num_devices());
                    kernel.run(gpu, &dw, &dx, &dy)?.time_ms
                }
                ShardTopology::Native(engines) => {
                    kernel
                        .run_native(&engines[s % engines.len()], &dw, &dx, &dy)?
                        .time_ms
                }
            };
            Ok((
                ShardOutputs {
                    rows: Some(dy.to_vec()),
                    edges: None,
                },
                ms,
            ))
        };
        let (rows, _, report) = self.run_sharded(name, &[(x, 1)], Some(1), false, &launch)?;
        Ok((rows.expect("row output requested"), report))
    }

    /// Runs an edge-apply kernel (`w[e] ← el[row] + er[col]`) sharded.
    pub fn run_edge_apply(
        &self,
        make: &dyn Fn(&Arc<GraphData>) -> Box<dyn EdgeApplyKernel>,
        el: &[f32],
        er: &[f32],
    ) -> Result<(Vec<f32>, ShardedReport), GnnOneError> {
        self.check_len("el", el.len(), self.num_rows())?;
        self.check_len("er", er.len(), self.num_rows())?;
        let name = make(&self.shard_graphs[0]).name();
        let launch = move |s: usize, ops: &[Vec<f32>]| {
            let spec = self.partition.shards()[s];
            let kernel = make(&self.shard_graphs[s]);
            let del = DeviceBuffer::from_slice(&ops[0]);
            let der = DeviceBuffer::from_slice(&ops[1]);
            let dw = DeviceBuffer::<f32>::zeros(spec.nnz());
            let ms = match &self.topology {
                ShardTopology::Sim(multi) => {
                    let gpu = multi.device(s % multi.num_devices());
                    kernel.run(gpu, &del, &der, &dw)?.time_ms
                }
                ShardTopology::Native(engines) => {
                    kernel
                        .run_native(&engines[s % engines.len()], &del, &der, &dw)?
                        .time_ms
                }
            };
            Ok((
                ShardOutputs {
                    rows: None,
                    edges: Some(dw.to_vec()),
                },
                ms,
            ))
        };
        let (_, edges, report) =
            self.run_sharded(name, &[(el, 1), (er, 1)], None, true, &launch)?;
        Ok((edges.expect("edge output requested"), report))
    }

    /// Runs a fused attention kernel sharded: returns the merged
    /// `|V| × f` aggregation and the merged `|E|` attention coefficients.
    /// Row alignment keeps each row's softmax entirely inside one shard,
    /// so both outputs merge exactly.
    pub fn run_fused(
        &self,
        make: &dyn Fn(&Arc<GraphData>) -> Box<dyn FusedAttentionKernel>,
        z: &[f32],
        el: &[f32],
        er: &[f32],
        f: usize,
    ) -> Result<(Vec<f32>, Vec<f32>, ShardedReport), GnnOneError> {
        self.check_len("z", z.len(), self.num_rows() * f)?;
        self.check_len("el", el.len(), self.num_rows())?;
        self.check_len("er", er.len(), self.num_rows())?;
        let name = make(&self.shard_graphs[0]).name();
        let launch = move |s: usize, ops: &[Vec<f32>]| {
            let spec = self.partition.shards()[s];
            let kernel = make(&self.shard_graphs[s]);
            let dz = DeviceBuffer::from_slice(&ops[0]);
            let del = DeviceBuffer::from_slice(&ops[1]);
            let der = DeviceBuffer::from_slice(&ops[2]);
            let dy = DeviceBuffer::<f32>::zeros(self.num_rows() * f);
            let dalpha = DeviceBuffer::<f32>::zeros(spec.nnz());
            let ms = match &self.topology {
                ShardTopology::Sim(multi) => {
                    let gpu = multi.device(s % multi.num_devices());
                    kernel
                        .run(gpu, &dz, &del, &der, f, &dy, Some(&dalpha))?
                        .time_ms
                }
                ShardTopology::Native(engines) => {
                    kernel
                        .run_native(
                            &engines[s % engines.len()],
                            &dz,
                            &del,
                            &der,
                            f,
                            &dy,
                            Some(&dalpha),
                        )?
                        .time_ms
                }
            };
            Ok((
                ShardOutputs {
                    rows: Some(dy.to_vec()),
                    edges: Some(dalpha.to_vec()),
                },
                ms,
            ))
        };
        let (rows, edges, report) =
            self.run_sharded(name, &[(z, f), (el, 1), (er, 1)], Some(f), true, &launch)?;
        Ok((
            rows.expect("row output requested"),
            edges.expect("edge output requested"),
            report,
        ))
    }

    fn check_len(&self, what: &str, got: usize, want: usize) -> Result<(), GnnOneError> {
        if got != want {
            return Err(ValidationError::new(
                "ShardedExecutor",
                what,
                None,
                format!("operand `{what}` has {got} elements, expected {want}"),
            )
            .into());
        }
        Ok(())
    }
}

/// Order-independent content checksum over the f32 bit patterns: a
/// wrapping sum is enough to detect any dropped or bit-corrupted halo
/// message, and is deterministic across platforms.
fn checksum(data: &[f32]) -> u64 {
    data.iter()
        .fold(0u64, |acc, v| acc.wrapping_add(u64::from(v.to_bits())))
}
