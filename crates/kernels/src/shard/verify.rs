//! Static verification of the sharded merge: the access-summary extension
//! that lets the verifier prove shard outputs never race or leave holes.
//!
//! A sharded run merges shard `s`'s output by copying one contiguous
//! interval of the global output buffer — rows `[row_start·w, row_end·w)`
//! for row-reduction kernels, edges `[edge_start, edge_end)` for
//! edge-score kernels. The merge is sound iff those write intervals are
//! **pairwise disjoint** (no shard overwrites another's result — the
//! sharded analogue of the analysis pass's race-freedom obligation) and
//! **covering** (their union is the whole output — no silently zero-filled
//! gap, the sharded analogue of bounds/coverage). Both obligations are
//! discharged symbolically from the partition alone, before any launch,
//! and report through the same [`Verdict`] / [`Witness`] machinery as the
//! per-kernel static verifier. [`super::ShardedExecutor`] runs this proof
//! at construction and refuses partitions it cannot prove.

use gnnone_sparse::RowPartition;

use crate::analysis::{Verdict, Witness};

/// Which global output buffer a merge plan writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeTarget {
    /// Row-major row outputs (`SpMM` / `SpMV` y, fused GAT y): shard `s`
    /// writes `[row_start·width, row_end·width)`.
    Rows,
    /// Edge outputs (`SDDMM` / edge-apply w, fused GAT α): shard `s`
    /// writes `[edge_start, edge_end)`.
    Edges,
}

impl MergeTarget {
    /// Stable lowercase label used in witnesses and reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            MergeTarget::Rows => "rows",
            MergeTarget::Edges => "edges",
        }
    }
}

/// The symbolic write set of a sharded merge: one half-open element
/// interval per shard (empty shards contribute empty intervals), in shard
/// order. `width` is the per-row element count (`f` for feature outputs,
/// 1 for scalars); edge targets ignore it.
pub fn merge_write_intervals(
    partition: &RowPartition,
    width: usize,
    target: MergeTarget,
) -> Vec<(u64, u64)> {
    partition
        .shards()
        .iter()
        .map(|s| match target {
            MergeTarget::Rows => ((s.row_start * width) as u64, (s.row_end * width) as u64),
            MergeTarget::Edges => (s.edge_start as u64, s.edge_end as u64),
        })
        .collect()
}

/// Checks one merge write set against the two obligations: pairwise
/// disjointness and exact coverage of `[0, extent)`. Returns
/// [`Verdict::Proved`], or [`Verdict::Refuted`] with a witness naming the
/// first overlapping / uncovered element and the shards involved.
pub fn check_merge(intervals: &[(u64, u64)], extent: u64, label: &str) -> Verdict {
    // Intervals arrive in shard order; sort an index view by start so the
    // scan below finds the *first* violating element deterministically.
    let mut order: Vec<usize> = (0..intervals.len()).collect();
    order.sort_by_key(|&i| intervals[i].0);
    let mut cursor = 0u64;
    let mut prev_shard = None::<usize>;
    for &i in &order {
        let (start, end) = intervals[i];
        if end < start {
            return Verdict::Refuted(Witness {
                check: "merge-overlap",
                launch: label.to_string(),
                buffer: "out".to_string(),
                index: end,
                warp_a: i,
                warp_b: i,
                detail: format!("shard {i} write interval [{start}, {end}) is inverted"),
            });
        }
        if start < cursor {
            return Verdict::Refuted(Witness {
                check: "merge-overlap",
                launch: label.to_string(),
                buffer: "out".to_string(),
                index: start,
                warp_a: prev_shard.unwrap_or(i),
                warp_b: i,
                detail: format!(
                    "shards {} and {i} both write element {start}: merge is not race-free",
                    prev_shard.unwrap_or(i)
                ),
            });
        }
        if start > cursor {
            return Verdict::Refuted(Witness {
                check: "merge-gap",
                launch: label.to_string(),
                buffer: "out".to_string(),
                index: cursor,
                warp_a: prev_shard.unwrap_or(i),
                warp_b: i,
                detail: format!(
                    "elements [{cursor}, {start}) are written by no shard: \
                     merge would silently zero-fill them"
                ),
            });
        }
        if end > start {
            cursor = end;
            prev_shard = Some(i);
        }
    }
    if cursor != extent {
        return Verdict::Refuted(Witness {
            check: "merge-gap",
            launch: label.to_string(),
            buffer: "out".to_string(),
            index: cursor,
            warp_a: prev_shard.unwrap_or(0),
            warp_b: prev_shard.unwrap_or(0),
            detail: format!(
                "elements [{cursor}, {extent}) are written by no shard: \
                 merge would silently zero-fill them"
            ),
        });
    }
    Verdict::Proved
}

/// Proves one merge plan sound for `partition`: derives the write set with
/// [`merge_write_intervals`] and discharges both obligations with
/// [`check_merge`]. The output extent is implied by the partition
/// (`num_rows · width` or `nnz`).
pub fn verify_merge(partition: &RowPartition, width: usize, target: MergeTarget) -> Verdict {
    let intervals = merge_write_intervals(partition, width, target);
    let extent = match target {
        MergeTarget::Rows => (partition.num_rows() * width) as u64,
        MergeTarget::Edges => partition.nnz() as u64,
    };
    check_merge(
        &intervals,
        extent,
        &format!("shard-merge/{}", target.as_str()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn partition() -> RowPartition {
        // 6 rows, degrees [2, 0, 3, 1, 0, 2].
        let offsets = [0u32, 2, 2, 5, 6, 6, 8];
        RowPartition::try_from_row_splits(&offsets, &[(0, 2), (2, 4), (4, 6)]).unwrap()
    }

    #[test]
    fn valid_partition_proves_both_targets() {
        let p = partition();
        for width in [1, 8] {
            assert!(verify_merge(&p, width, MergeTarget::Rows).is_proved());
        }
        assert!(verify_merge(&p, 1, MergeTarget::Edges).is_proved());
        let rows = merge_write_intervals(&p, 4, MergeTarget::Rows);
        assert_eq!(rows, vec![(0, 8), (8, 16), (16, 24)]);
        let edges = merge_write_intervals(&p, 1, MergeTarget::Edges);
        assert_eq!(edges, vec![(0, 2), (2, 6), (6, 8)]);
    }

    #[test]
    fn overlap_is_refuted_with_both_shards_named() {
        let v = check_merge(&[(0, 4), (2, 8)], 8, "t");
        match v {
            Verdict::Refuted(w) => {
                assert_eq!(w.check, "merge-overlap");
                assert_eq!(w.index, 2);
                assert_eq!((w.warp_a, w.warp_b), (0, 1));
            }
            other => panic!("expected refuted, got {other:?}"),
        }
    }

    #[test]
    fn gap_and_truncation_are_refuted() {
        let gap = check_merge(&[(0, 2), (4, 8)], 8, "t");
        match gap {
            Verdict::Refuted(w) => {
                assert_eq!(w.check, "merge-gap");
                assert_eq!(w.index, 2);
            }
            other => panic!("expected refuted, got {other:?}"),
        }
        let short = check_merge(&[(0, 2), (2, 6)], 8, "t");
        assert!(short.is_refuted());
        let inverted = check_merge(&[(4, 2)], 0, "t");
        assert!(inverted.is_refuted());
    }

    #[test]
    fn empty_shards_do_not_break_the_proof() {
        let offsets = [0u32, 2, 2, 5, 6, 6, 8];
        let p = RowPartition::try_from_row_splits(&offsets, &[(0, 1), (1, 1), (1, 6)]).unwrap();
        assert!(verify_merge(&p, 2, MergeTarget::Rows).is_proved());
        assert!(verify_merge(&p, 1, MergeTarget::Edges).is_proved());
        // The degenerate single-element extent is covered too.
        assert!(check_merge(&[(0, 0)], 0, "t").is_proved());
    }
}
