//! Sharded multi-device execution: partition, halo exchange, supervised
//! shard-by-shard launch, deterministic merge.
//!
//! The paper's Table 1 graphs top out at 1.9 B edges — beyond any single
//! device — so this module runs every registry kernel family over a
//! row-aligned K-way partition ([`gnnone_sparse::RowPartition`]):
//!
//! * [`partition_graph`] — nnz-balanced, row-aligned splits that reuse the
//!   native backend's greedy block policy
//!   ([`crate::backend::native::row_blocks`]), so sharding and CPU row
//!   blocking share one load-balancing story.
//! * [`shard_graphs`] — each shard materialized as a full-vertex-space
//!   [`GraphData`] over its contiguous edge range; every registry kernel
//!   runs on it unchanged.
//! * [`ShardedExecutor`] — drives any SpMM / SDDMM / SpMV / edge-apply /
//!   fused kernel shard-by-shard across a [`ShardTopology`] (a simulated
//!   [`gnnone_sim::MultiGpu`] with modeled interconnect halo transfers, or
//!   per-shard rayon pools on the native backend), merging shard outputs
//!   into disjoint row/edge ranges. Because shards are row-aligned, each
//!   row's full adjacency lives in exactly one shard, so the merged result
//!   is **bitwise-identical** to the unsharded kernel whenever per-row
//!   reduction order is (as on the native backend, or with integer-valued
//!   features on either backend).
//! * The supervision loop in [`ShardedExecutor`] adds production fault
//!   tolerance: per-shard watchdog deadlines, bounded deterministic retry
//!   with backoff, checksummed halo transfers, shard-output checkpoints so
//!   a failed shard retries alone, and typed degraded-mode declines
//!   ([`gnnone_sim::ShardAbort`]) when retries are exhausted — never a
//!   silent zero-fill. Shard-scoped chaos
//!   ([`gnnone_sim::chaos::ShardFaultKind`]) injects device loss, hangs,
//!   dropped halos, and transient launch declines at seeded shards.
//! * [`verify`] — the static merge verifier: proves each run's merge plan
//!   writes pairwise-disjoint intervals covering the whole output, with
//!   the analysis pass's [`crate::analysis::Verdict`] / witness machinery.
//!
//! See `docs/ROBUSTNESS.md` §7 for the fault model and recovery contract,
//! and `docs/BACKENDS.md` for sharded dispatch on each backend.

pub mod exec;
pub mod verify;

pub use exec::{RetryPolicy, ShardTopology, ShardedExecutor, ShardedReport};
pub use verify::{check_merge, merge_write_intervals, verify_merge, MergeTarget};

use std::sync::Arc;

use gnnone_sim::ValidationError;
use gnnone_sparse::formats::Coo;
use gnnone_sparse::{RowPartition, ShardSpec};

use crate::backend::native::row_blocks;
use crate::graph::GraphData;

/// Builds an nnz-balanced, row-aligned K-way partition of `graph`, reusing
/// the native backend's greedy block policy: rows are accumulated into a
/// shard until it holds ~`nnz / k` edges. When the greedy pass produces
/// more than `k` blocks the tail blocks fold into the last shard; when the
/// graph has fewer nonempty rows than `k`, trailing shards come back empty
/// (legal, and visible in [`gnnone_sparse::PartitionStats`]).
pub fn partition_graph(graph: &GraphData, k: usize) -> Result<RowPartition, ValidationError> {
    if k == 0 {
        return Err(ValidationError::new(
            "RowPartition",
            "shards",
            None,
            "shard count K must be at least 1",
        ));
    }
    let offsets = graph.csr.offsets();
    let num_rows = graph.num_vertices();
    if k == 1 {
        return Ok(RowPartition::single(offsets));
    }
    let target = (graph.nnz().div_ceil(k)).max(1);
    let mut blocks = row_blocks(offsets, num_rows, target);
    if blocks.len() > k {
        // Fold the tail into shard k-1 so the partition is exactly K-way.
        blocks[k - 1].1 = num_rows;
        blocks.truncate(k);
    }
    while blocks.len() < k {
        blocks.push((num_rows, num_rows));
    }
    RowPartition::try_from_row_splits(offsets, &blocks)
}

/// Materializes each shard as a [`GraphData`] in the **full** vertex space:
/// shard `s` holds exactly the global edge range `[edge_start, edge_end)`
/// with unchanged row/column ids, so its CSR has empty rows outside the
/// owned range and every registry kernel runs on it without reindexing.
/// The K = 1 partition returns the original graph untouched — sharded
/// execution over it is byte-identical to the unsharded kernel.
pub fn shard_graphs(
    graph: &Arc<GraphData>,
    partition: &RowPartition,
) -> Result<Vec<Arc<GraphData>>, ValidationError> {
    if partition.num_shards() == 1 {
        return Ok(vec![Arc::clone(graph)]);
    }
    let rows = graph.coo.rows();
    let cols = graph.coo.cols();
    partition
        .shards()
        .iter()
        .map(|s| {
            let coo = Coo::try_from_sorted(
                graph.coo.num_rows(),
                graph.coo.num_cols(),
                rows[s.edge_start..s.edge_end].to_vec(),
                cols[s.edge_start..s.edge_end].to_vec(),
            )?;
            Ok(Arc::new(GraphData::new(coo)))
        })
        .collect()
}

/// The halo of one shard: the sorted, deduplicated vertices its edges read
/// (column endpoints) that lie **outside** its owned row range. These are
/// the features a remote shard owns and must ship over the interconnect
/// before this shard can launch.
pub fn halo_vertices(graph: &GraphData, spec: &ShardSpec) -> Vec<u32> {
    let cols = graph.coo.cols();
    let mut halo: Vec<u32> = cols[spec.edge_start..spec.edge_end]
        .iter()
        .copied()
        .filter(|&c| (c as usize) < spec.row_start || (c as usize) >= spec.row_end)
        .collect();
    halo.sort_unstable();
    halo.dedup();
    halo
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnone_sparse::formats::EdgeList;

    fn ring(n: usize) -> Arc<GraphData> {
        let edges: Vec<(u32, u32)> = (0..n as u32).map(|v| (v, (v + 1) % n as u32)).collect();
        Arc::new(GraphData::new(Coo::from_edge_list(&EdgeList::new(
            n, edges,
        ))))
    }

    #[test]
    fn partition_is_balanced_and_exactly_k() {
        let g = ring(64);
        for k in [1, 2, 4, 8] {
            let p = partition_graph(&g, k).unwrap();
            assert_eq!(p.num_shards(), k);
            assert_eq!(p.num_rows(), 64);
            assert_eq!(p.nnz(), 64);
            let stats = p.stats();
            assert!(stats.imbalance <= 2.0, "k={k}: {stats:?}");
        }
        assert!(partition_graph(&g, 0).is_err());
    }

    #[test]
    fn more_shards_than_rows_pads_with_empties() {
        let g = ring(3);
        let p = partition_graph(&g, 8).unwrap();
        assert_eq!(p.num_shards(), 8);
        assert!(p.stats().empty_shards >= 5);
        // Shard graphs still build, and coverage is exact.
        let graphs = shard_graphs(&g, &p).unwrap();
        let total: usize = graphs.iter().map(|g| g.nnz()).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn shard_graphs_keep_full_vertex_space() {
        let g = ring(16);
        let p = partition_graph(&g, 4).unwrap();
        let graphs = shard_graphs(&g, &p).unwrap();
        for (spec, sg) in p.shards().iter().zip(&graphs) {
            assert_eq!(sg.num_vertices(), 16);
            assert_eq!(sg.nnz(), spec.nnz());
            // Edge slice is preserved verbatim.
            assert_eq!(sg.coo.rows(), &g.coo.rows()[spec.edge_start..spec.edge_end]);
        }
        // K=1 reuses the original allocation.
        let p1 = partition_graph(&g, 1).unwrap();
        let g1 = shard_graphs(&g, &p1).unwrap();
        assert!(Arc::ptr_eq(&g1[0], &g));
    }

    #[test]
    fn halo_is_out_of_range_columns_only() {
        let g = ring(8);
        let p = partition_graph(&g, 4).unwrap();
        for spec in p.shards() {
            let halo = halo_vertices(&g, spec);
            // A ring shard reads exactly one remote vertex: the row after
            // its last owned row (wrapping).
            assert_eq!(halo.len(), 1, "{spec:?}");
            let v = halo[0] as usize;
            assert!(v < spec.row_start || v >= spec.row_end);
        }
        // K=1: no halo at all.
        let p1 = partition_graph(&g, 1).unwrap();
        assert!(halo_vertices(&g, &p1.shards()[0]).is_empty());
    }
}
