//! Property-based equivalence: every kernel implementation computes the
//! same function as the CPU reference, for random graphs, feature lengths
//! and configurations.

use std::sync::Arc;

use gnnone_kernels::gnnone::{GnnOneConfig, GnnOneSddmm, GnnOneSpmm, GnnOneSpmv, Schedule};
use gnnone_kernels::graph::GraphData;
use gnnone_kernels::registry;
use gnnone_kernels::traits::{SddmmKernel, SpmmKernel, SpmvKernel};
use gnnone_sim::{DeviceBuffer, Gpu, GpuSpec};
use gnnone_sparse::formats::{Coo, EdgeList, VertexId};
use gnnone_sparse::reference;
use proptest::prelude::*;

fn arb_coo() -> impl Strategy<Value = Coo> {
    (2usize..48).prop_flat_map(|n| {
        let edge = (0..n as VertexId, 0..n as VertexId);
        prop::collection::vec(edge, 1..200)
            .prop_map(move |edges| Coo::from_edge_list(&EdgeList::new(n, edges)))
    })
}

fn arb_config() -> impl Strategy<Value = GnnOneConfig> {
    (
        prop::sample::select(vec![32usize, 64, 128, 256]),
        prop::bool::ANY,
        prop::bool::ANY,
        prop::bool::ANY,
    )
        .prop_map(|(cache_size, rr, vectorize, data_reuse)| GnnOneConfig {
            cache_size,
            schedule: if rr {
                Schedule::RoundRobin
            } else {
                Schedule::Consecutive
            },
            vectorize,
            data_reuse,
        })
}

fn features(n: usize, f: usize, salt: usize) -> Vec<f32> {
    (0..n * f)
        .map(|i| (((i * 31 + salt * 17) % 23) as f32 - 11.0) * 0.1)
        .collect()
}

fn gpu() -> Gpu {
    Gpu::new(GpuSpec::a100_40gb())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// GNNOne SDDMM ≡ reference for every configuration point.
    #[test]
    fn gnnone_sddmm_equiv(coo in arb_coo(), f in 1usize..40, cfg in arb_config()) {
        let g = Arc::new(GraphData::new(coo));
        let x = features(g.num_vertices(), f, 1);
        let y = features(g.num_vertices(), f, 2);
        let dw = DeviceBuffer::<f32>::zeros(g.nnz());
        GnnOneSddmm::new(Arc::clone(&g), cfg)
            .run(&gpu(), &DeviceBuffer::from_slice(&x), &DeviceBuffer::from_slice(&y), f, &dw)
            .unwrap();
        let expected = reference::sddmm_coo(&g.coo, &x, &y, f);
        reference::assert_close(&dw.to_vec(), &expected, 1e-3);
    }

    /// GNNOne SpMM ≡ reference for every configuration point.
    #[test]
    fn gnnone_spmm_equiv(coo in arb_coo(), f in 1usize..40, cfg in arb_config()) {
        let g = Arc::new(GraphData::new(coo));
        let x = features(g.num_vertices(), f, 3);
        let w = features(g.nnz(), 1, 4);
        let dy = DeviceBuffer::<f32>::zeros(g.num_vertices() * f);
        GnnOneSpmm::new(Arc::clone(&g), cfg)
            .run(&gpu(), &DeviceBuffer::from_slice(&w), &DeviceBuffer::from_slice(&x), f, &dy)
            .unwrap();
        let expected = reference::spmm_csr(&g.csr, &w, &x, f);
        reference::assert_close(&dy.to_vec(), &expected, 1e-3);
    }

    /// Every registered SDDMM baseline ≡ reference (paper dims).
    #[test]
    fn all_sddmm_baselines_equiv(coo in arb_coo(), dim_idx in 0usize..4) {
        let f = [6, 16, 32, 64][dim_idx];
        let g = Arc::new(GraphData::new(coo));
        let x = features(g.num_vertices(), f, 5);
        let y = features(g.num_vertices(), f, 6);
        let expected = reference::sddmm_coo(&g.coo, &x, &y, f);
        for kernel in registry::sddmm_kernels(&g) {
            let dw = DeviceBuffer::<f32>::zeros(g.nnz());
            kernel
                .run(&gpu(), &DeviceBuffer::from_slice(&x), &DeviceBuffer::from_slice(&y), f, &dw)
                .unwrap();
            reference::assert_close(&dw.to_vec(), &expected, 1e-3);
        }
    }

    /// Every registered SpMM baseline (plus Yang) ≡ reference (paper dims).
    #[test]
    fn all_spmm_baselines_equiv(coo in arb_coo(), dim_idx in 0usize..4) {
        let f = [6, 16, 32, 64][dim_idx];
        let g = Arc::new(GraphData::new(coo));
        let x = features(g.num_vertices(), f, 7);
        let w = features(g.nnz(), 1, 8);
        let expected = reference::spmm_csr(&g.csr, &w, &x, f);
        let kernels = registry::spmm_kernels(&g)
            .into_iter()
            .chain(registry::spmm_discussion_kernels(&g));
        for kernel in kernels {
            let dy = DeviceBuffer::<f32>::zeros(g.num_vertices() * f);
            kernel
                .run(&gpu(), &DeviceBuffer::from_slice(&w), &DeviceBuffer::from_slice(&x), f, &dy)
                .unwrap();
            reference::assert_close(&dy.to_vec(), &expected, 1e-3);
        }
    }

    /// Both SpMV systems ≡ reference.
    #[test]
    fn all_spmv_equiv(coo in arb_coo()) {
        let g = Arc::new(GraphData::new(coo));
        let x = features(g.num_vertices(), 1, 9);
        let w = features(g.nnz(), 1, 10);
        let expected = reference::spmv_csr(&g.csr, &w, &x);
        for kernel in registry::spmv_kernels(&g) {
            let dy = DeviceBuffer::<f32>::zeros(g.num_vertices());
            kernel
                .run(&gpu(), &DeviceBuffer::from_slice(&w), &DeviceBuffer::from_slice(&x), &dy)
                .unwrap();
            reference::assert_close(&dy.to_vec(), &expected, 1e-3);
        }
        // And the standalone GnnOne SpMV type.
        let dy = DeviceBuffer::<f32>::zeros(g.num_vertices());
        GnnOneSpmv::new(Arc::clone(&g))
            .run(&gpu(), &DeviceBuffer::from_slice(&w), &DeviceBuffer::from_slice(&x), &dy)
            .unwrap();
        reference::assert_close(&dy.to_vec(), &expected, 1e-3);
    }

    /// Configuration knobs never change the *result*, only the cost — the
    /// unification claim in executable form.
    #[test]
    fn config_is_semantics_preserving(coo in arb_coo(), f in 1usize..24,
                                      cfg_a in arb_config(), cfg_b in arb_config()) {
        let g = Arc::new(GraphData::new(coo));
        let x = features(g.num_vertices(), f, 11);
        let w = features(g.nnz(), 1, 12);
        let run = |cfg: GnnOneConfig| {
            let dy = DeviceBuffer::<f32>::zeros(g.num_vertices() * f);
            GnnOneSpmm::new(Arc::clone(&g), cfg)
                .run(&gpu(), &DeviceBuffer::from_slice(&w), &DeviceBuffer::from_slice(&x), f, &dy)
                .unwrap();
            dy.to_vec()
        };
        reference::assert_close(&run(cfg_a), &run(cfg_b), 1e-3);
    }
}
