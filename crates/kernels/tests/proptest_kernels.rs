//! Property-based equivalence: every kernel implementation computes the
//! same function as the CPU reference, for random graphs, feature lengths
//! and configurations.

use std::sync::Arc;

use gnnone_kernels::gnnone::{GnnOneConfig, GnnOneSddmm, GnnOneSpmm, GnnOneSpmv, Schedule};
use gnnone_kernels::graph::GraphData;
use gnnone_kernels::registry;
use gnnone_kernels::traits::{SddmmKernel, SpmmKernel, SpmvKernel};
use gnnone_sim::{DeviceBuffer, Gpu, GpuSpec};
use gnnone_sparse::formats::{Coo, EdgeList, VertexId};
use gnnone_sparse::reference;
use proptest::prelude::*;

fn arb_coo() -> impl Strategy<Value = Coo> {
    (2usize..48).prop_flat_map(|n| {
        let edge = (0..n as VertexId, 0..n as VertexId);
        prop::collection::vec(edge, 1..200)
            .prop_map(move |edges| Coo::from_edge_list(&EdgeList::new(n, edges)))
    })
}

fn arb_config() -> impl Strategy<Value = GnnOneConfig> {
    (
        prop::sample::select(vec![32usize, 64, 128, 256]),
        prop::bool::ANY,
        prop::bool::ANY,
        prop::bool::ANY,
    )
        .prop_map(|(cache_size, rr, vectorize, data_reuse)| GnnOneConfig {
            cache_size,
            schedule: if rr {
                Schedule::RoundRobin
            } else {
                Schedule::Consecutive
            },
            vectorize,
            data_reuse,
        })
}

fn features(n: usize, f: usize, salt: usize) -> Vec<f32> {
    (0..n * f)
        .map(|i| (((i * 31 + salt * 17) % 23) as f32 - 11.0) * 0.1)
        .collect()
}

fn gpu() -> Gpu {
    Gpu::new(GpuSpec::a100_40gb())
}

/// The full configuration lattice of the unified pipeline: every cache
/// size of Fig. 9 × both Listing-2 schedules × vector loads on/off ×
/// data reuse on/off.
fn config_lattice() -> Vec<GnnOneConfig> {
    let mut out = Vec::new();
    for cache_size in [32usize, 64, 128] {
        for schedule in [Schedule::Consecutive, Schedule::RoundRobin] {
            for vectorize in [false, true] {
                for data_reuse in [false, true] {
                    out.push(GnnOneConfig {
                        cache_size,
                        schedule,
                        vectorize,
                        data_reuse,
                    });
                }
            }
        }
    }
    out
}

/// Exhaustive (not sampled): every pipeline instantiation at every lattice
/// point computes the reference answer. This is the refactor's semantic
/// contract — sources and reductions combine freely without changing the
/// function — checked over the whole 24-point grid so a regression in any
/// single source × reduction × config combination fails deterministically.
#[test]
fn pipeline_lattice_matches_reference() {
    use gnnone_kernels::gnnone::{GnnOneCsrSpmm, GnnOneUAddV};
    // A power-law graph and a ragged one (nnz far from a cache multiple,
    // plus an empty tail row) to exercise partial warps and row splits.
    let graphs = [
        Coo::from_edge_list(
            &gnnone_sparse::gen::rmat(6, 220, gnnone_sparse::gen::GRAPH500_PROBS, 77).symmetrize(),
        ),
        Coo::from_edge_list(&EdgeList::new(
            50,
            (0..137u32).map(|e| (e % 49, (e * 7 + 1) % 49)).collect(),
        )),
    ];
    let gp = gpu();
    for coo in graphs {
        let g = Arc::new(GraphData::new(coo));
        let nv = g.num_vertices();
        // f = 3 (float3 path), 16 (float4, multi-group), 33 (ragged pass).
        for f in [3usize, 16, 33] {
            let x = features(nv, f, 21);
            let y = features(nv, f, 22);
            let w = features(g.nnz(), 1, 23);
            let sddmm_ref = reference::sddmm_coo(&g.coo, &x, &y, f);
            let spmm_ref = reference::spmm_csr(&g.csr, &w, &x, f);
            let dx = DeviceBuffer::from_slice(&x);
            let dyv = DeviceBuffer::from_slice(&y);
            let dwv = DeviceBuffer::from_slice(&w);
            for cfg in config_lattice() {
                let dw = DeviceBuffer::<f32>::zeros(g.nnz());
                GnnOneSddmm::new(Arc::clone(&g), cfg)
                    .run(&gp, &dx, &dyv, f, &dw)
                    .unwrap();
                reference::assert_close(&dw.to_vec(), &sddmm_ref, 1e-3);
                let dy = DeviceBuffer::<f32>::zeros(nv * f);
                GnnOneSpmm::new(Arc::clone(&g), cfg)
                    .run(&gp, &dwv, &dx, f, &dy)
                    .unwrap();
                reference::assert_close(&dy.to_vec(), &spmm_ref, 1e-3);
            }
            // The fixed-config instantiations once per (graph, f).
            let dy = DeviceBuffer::<f32>::zeros(nv * f);
            GnnOneCsrSpmm::new(Arc::clone(&g))
                .run(&gp, &dwv, &dx, f, &dy)
                .unwrap();
            reference::assert_close(&dy.to_vec(), &spmm_ref, 1e-3);
        }
        let el = features(nv, 1, 24);
        let er = features(nv, 1, 25);
        let dw = DeviceBuffer::<f32>::zeros(g.nnz());
        GnnOneUAddV::new(Arc::clone(&g))
            .run(
                &gp,
                &DeviceBuffer::from_slice(&el),
                &DeviceBuffer::from_slice(&er),
                &dw,
            )
            .unwrap();
        let got = dw.to_vec();
        for e in 0..g.nnz() {
            let expect = el[g.coo.rows()[e] as usize] + er[g.coo.cols()[e] as usize];
            assert!((got[e] - expect).abs() < 1e-5, "u_add_v edge {e}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// GNNOne SDDMM ≡ reference for every configuration point.
    #[test]
    fn gnnone_sddmm_equiv(coo in arb_coo(), f in 1usize..40, cfg in arb_config()) {
        let g = Arc::new(GraphData::new(coo));
        let x = features(g.num_vertices(), f, 1);
        let y = features(g.num_vertices(), f, 2);
        let dw = DeviceBuffer::<f32>::zeros(g.nnz());
        GnnOneSddmm::new(Arc::clone(&g), cfg)
            .run(&gpu(), &DeviceBuffer::from_slice(&x), &DeviceBuffer::from_slice(&y), f, &dw)
            .unwrap();
        let expected = reference::sddmm_coo(&g.coo, &x, &y, f);
        reference::assert_close(&dw.to_vec(), &expected, 1e-3);
    }

    /// GNNOne SpMM ≡ reference for every configuration point.
    #[test]
    fn gnnone_spmm_equiv(coo in arb_coo(), f in 1usize..40, cfg in arb_config()) {
        let g = Arc::new(GraphData::new(coo));
        let x = features(g.num_vertices(), f, 3);
        let w = features(g.nnz(), 1, 4);
        let dy = DeviceBuffer::<f32>::zeros(g.num_vertices() * f);
        GnnOneSpmm::new(Arc::clone(&g), cfg)
            .run(&gpu(), &DeviceBuffer::from_slice(&w), &DeviceBuffer::from_slice(&x), f, &dy)
            .unwrap();
        let expected = reference::spmm_csr(&g.csr, &w, &x, f);
        reference::assert_close(&dy.to_vec(), &expected, 1e-3);
    }

    /// Every registered SDDMM baseline ≡ reference (paper dims).
    #[test]
    fn all_sddmm_baselines_equiv(coo in arb_coo(), dim_idx in 0usize..4) {
        let f = [6, 16, 32, 64][dim_idx];
        let g = Arc::new(GraphData::new(coo));
        let x = features(g.num_vertices(), f, 5);
        let y = features(g.num_vertices(), f, 6);
        let expected = reference::sddmm_coo(&g.coo, &x, &y, f);
        for kernel in registry::sddmm_kernels(&g) {
            let dw = DeviceBuffer::<f32>::zeros(g.nnz());
            kernel
                .run(&gpu(), &DeviceBuffer::from_slice(&x), &DeviceBuffer::from_slice(&y), f, &dw)
                .unwrap();
            reference::assert_close(&dw.to_vec(), &expected, 1e-3);
        }
    }

    /// Every registered SpMM baseline (plus Yang) ≡ reference (paper dims).
    #[test]
    fn all_spmm_baselines_equiv(coo in arb_coo(), dim_idx in 0usize..4) {
        let f = [6, 16, 32, 64][dim_idx];
        let g = Arc::new(GraphData::new(coo));
        let x = features(g.num_vertices(), f, 7);
        let w = features(g.nnz(), 1, 8);
        let expected = reference::spmm_csr(&g.csr, &w, &x, f);
        let kernels = registry::spmm_kernels(&g)
            .into_iter()
            .chain(registry::spmm_discussion_kernels(&g));
        for kernel in kernels {
            let dy = DeviceBuffer::<f32>::zeros(g.num_vertices() * f);
            kernel
                .run(&gpu(), &DeviceBuffer::from_slice(&w), &DeviceBuffer::from_slice(&x), f, &dy)
                .unwrap();
            reference::assert_close(&dy.to_vec(), &expected, 1e-3);
        }
    }

    /// Both SpMV systems ≡ reference.
    #[test]
    fn all_spmv_equiv(coo in arb_coo()) {
        let g = Arc::new(GraphData::new(coo));
        let x = features(g.num_vertices(), 1, 9);
        let w = features(g.nnz(), 1, 10);
        let expected = reference::spmv_csr(&g.csr, &w, &x);
        for kernel in registry::spmv_kernels(&g) {
            let dy = DeviceBuffer::<f32>::zeros(g.num_vertices());
            kernel
                .run(&gpu(), &DeviceBuffer::from_slice(&w), &DeviceBuffer::from_slice(&x), &dy)
                .unwrap();
            reference::assert_close(&dy.to_vec(), &expected, 1e-3);
        }
        // And the standalone GnnOne SpMV type.
        let dy = DeviceBuffer::<f32>::zeros(g.num_vertices());
        GnnOneSpmv::new(Arc::clone(&g))
            .run(&gpu(), &DeviceBuffer::from_slice(&w), &DeviceBuffer::from_slice(&x), &dy)
            .unwrap();
        reference::assert_close(&dy.to_vec(), &expected, 1e-3);
    }

    /// Configuration knobs never change the *result*, only the cost — the
    /// unification claim in executable form.
    #[test]
    fn config_is_semantics_preserving(coo in arb_coo(), f in 1usize..24,
                                      cfg_a in arb_config(), cfg_b in arb_config()) {
        let g = Arc::new(GraphData::new(coo));
        let x = features(g.num_vertices(), f, 11);
        let w = features(g.nnz(), 1, 12);
        let run = |cfg: GnnOneConfig| {
            let dy = DeviceBuffer::<f32>::zeros(g.num_vertices() * f);
            GnnOneSpmm::new(Arc::clone(&g), cfg)
                .run(&gpu(), &DeviceBuffer::from_slice(&w), &DeviceBuffer::from_slice(&x), f, &dy)
                .unwrap();
            dy.to_vec()
        };
        reference::assert_close(&run(cfg_a), &run(cfg_b), 1e-3);
    }
}
