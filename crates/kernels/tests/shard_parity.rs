//! Sharded-execution contract tests: the supervised sharded executor is
//! **invisible in the bits** — for every registry kernel family, on both
//! backends, at every shard count, with and without injected shard faults
//! — and every failure it cannot recover from surfaces as a typed decline.
//!
//! Bitwise methodology: with integer-valued f32 operands every partial
//! sum is an exact integer below 2^24, so any reduction association is
//! bit-identical — K-way sharding cannot hide behind float tolerance.
//! The fused-attention kernels (softmax → not integer-exact) rely on the
//! row-alignment invariant instead: a row's full adjacency lives in
//! exactly one shard, so its per-row arithmetic replays in the original
//! order and stays bitwise identical anyway.

use std::sync::Arc;

use gnnone_kernels::graph::GraphData;
use gnnone_kernels::registry;
use gnnone_kernels::shard::{partition_graph, RetryPolicy, ShardTopology, ShardedExecutor};
use gnnone_sim::chaos::ShardFaultKind;
use gnnone_sim::{DeviceBuffer, GnnOneError, Gpu, GpuSpec};
use gnnone_sparse::formats::{Coo, EdgeList};
use gnnone_sparse::gen::adversarial;
use gnnone_sparse::RowPartition;

/// The backend-parity graphs: a symmetric power-law R-MAT and a ragged
/// directed one with an empty tail row.
fn graphs() -> Vec<Arc<GraphData>> {
    vec![
        Arc::new(GraphData::new(Coo::from_edge_list(
            &gnnone_sparse::gen::rmat(6, 220, gnnone_sparse::gen::GRAPH500_PROBS, 77).symmetrize(),
        ))),
        Arc::new(GraphData::new(Coo::from_edge_list(&EdgeList::new(
            50,
            (0..137u32).map(|e| (e % 49, (e * 7 + 1) % 49)).collect(),
        )))),
    ]
}

fn ring(n: usize) -> Arc<GraphData> {
    let edges: Vec<(u32, u32)> = (0..n as u32).map(|v| (v, (v + 1) % n as u32)).collect();
    Arc::new(GraphData::new(Coo::from_edge_list(&EdgeList::new(
        n, edges,
    ))))
}

/// Integer-valued f32s in [-3, 3]: exact under any association order.
fn int_features(n: usize, salt: usize) -> Vec<f32> {
    (0..n)
        .map(|i| ((i * 31 + salt * 17) % 7) as f32 - 3.0)
        .collect()
}

/// Non-integer f32s, for the K = 1 byte-identity check.
fn float_features(n: usize, salt: usize) -> Vec<f32> {
    (0..n)
        .map(|i| (((i * 31 + salt * 17) % 23) as f32 - 11.0) * 0.1)
        .collect()
}

struct Operands {
    f: usize,
    x: Vec<f32>,
    y: Vec<f32>,
    w: Vec<f32>,
    xs: Vec<f32>,
    el: Vec<f32>,
    er: Vec<f32>,
}

fn operands(g: &GraphData, feats: fn(usize, usize) -> Vec<f32>) -> Operands {
    let nv = g.num_vertices();
    let f = 8usize;
    Operands {
        f,
        x: feats(nv * f, 21),
        y: feats(nv * f, 22),
        w: feats(g.nnz(), 23),
        xs: feats(nv, 9),
        el: feats(nv, 24),
        er: feats(nv, 25),
    }
}

/// Every registry kernel's unsharded output, concatenated per family in
/// registry order — the reference the sharded runs must reproduce exactly.
fn unsharded_all(g: &Arc<GraphData>, ops: &Operands, topo: &ShardTopology) -> Vec<Vec<f32>> {
    let nv = g.num_vertices();
    let nnz = g.nnz();
    let dx = DeviceBuffer::from_slice(&ops.x);
    let dyv = DeviceBuffer::from_slice(&ops.y);
    let dwv = DeviceBuffer::from_slice(&ops.w);
    let dxs = DeviceBuffer::from_slice(&ops.xs);
    let del = DeviceBuffer::from_slice(&ops.el);
    let der = DeviceBuffer::from_slice(&ops.er);
    let mut outs = Vec::new();
    let run = |run_sim: &dyn Fn(&Gpu), run_nat: &dyn Fn(&gnnone_kernels::NativeEngine)| match topo {
        ShardTopology::Sim(multi) => run_sim(multi.device(0)),
        ShardTopology::Native(engines) => run_nat(&engines[0]),
    };
    for k in registry::spmm_kernels(g)
        .into_iter()
        .chain(registry::spmm_discussion_kernels(g))
        .chain(registry::spmm_format_kernels(g))
    {
        let dy = DeviceBuffer::<f32>::zeros(nv * ops.f);
        run(
            &|gpu| {
                k.run(gpu, &dwv, &dx, ops.f, &dy).unwrap();
            },
            &|ng| {
                k.run_native(ng, &dwv, &dx, ops.f, &dy).unwrap();
            },
        );
        outs.push(dy.to_vec());
    }
    for k in registry::sddmm_kernels(g) {
        let dw = DeviceBuffer::<f32>::zeros(nnz);
        run(
            &|gpu| {
                k.run(gpu, &dx, &dyv, ops.f, &dw).unwrap();
            },
            &|ng| {
                k.run_native(ng, &dx, &dyv, ops.f, &dw).unwrap();
            },
        );
        outs.push(dw.to_vec());
    }
    for k in registry::spmv_class_kernels(g) {
        let dy = DeviceBuffer::<f32>::zeros(nv);
        run(
            &|gpu| {
                k.run(gpu, &dwv, &dxs, &dy).unwrap();
            },
            &|ng| {
                k.run_native(ng, &dwv, &dxs, &dy).unwrap();
            },
        );
        outs.push(dy.to_vec());
    }
    for k in registry::edge_apply_kernels(g) {
        let dw = DeviceBuffer::<f32>::zeros(nnz);
        run(
            &|gpu| {
                k.run(gpu, &del, &der, &dw).unwrap();
            },
            &|ng| {
                k.run_native(ng, &del, &der, &dw).unwrap();
            },
        );
        outs.push(dw.to_vec());
    }
    for k in registry::fused_kernels(g) {
        let dy = DeviceBuffer::<f32>::zeros(nv * ops.f);
        let dalpha = DeviceBuffer::<f32>::zeros(nnz);
        run(
            &|gpu| {
                k.run(gpu, &dx, &del, &der, ops.f, &dy, Some(&dalpha))
                    .unwrap();
            },
            &|ng| {
                k.run_native(ng, &dx, &del, &der, ops.f, &dy, Some(&dalpha))
                    .unwrap();
            },
        );
        outs.push(dy.to_vec());
        outs.push(dalpha.to_vec());
    }
    outs
}

/// Every registry kernel run through the sharded executor, same order.
fn sharded_all(exec: &ShardedExecutor, g: &Arc<GraphData>, ops: &Operands) -> Vec<Vec<f32>> {
    let mut outs = Vec::new();
    let spmm_names: Vec<&'static str> = registry::spmm_kernels(g)
        .iter()
        .map(|k| k.name())
        .chain(
            registry::spmm_discussion_kernels(g)
                .iter()
                .map(|k| k.name()),
        )
        .chain(registry::spmm_format_kernels(g).iter().map(|k| k.name()))
        .collect();
    for name in spmm_names {
        let (out, _) = exec
            .run_spmm(
                &|sg| registry::spmm_by_name(sg, name).unwrap(),
                &ops.w,
                &ops.x,
                ops.f,
            )
            .unwrap();
        outs.push(out);
    }
    let sddmm_names: Vec<&'static str> = registry::sddmm_kernels(g)
        .iter()
        .map(|k| k.name())
        .collect();
    for name in sddmm_names {
        let (out, _) = exec
            .run_sddmm(
                &|sg| registry::sddmm_by_name(sg, name).unwrap(),
                &ops.x,
                &ops.y,
                ops.f,
            )
            .unwrap();
        outs.push(out);
    }
    let spmv_names: Vec<&'static str> = registry::spmv_class_kernels(g)
        .iter()
        .map(|k| k.name())
        .collect();
    for name in spmv_names {
        let (out, _) = exec
            .run_spmv(
                &|sg| registry::spmv_by_name(sg, name).unwrap(),
                &ops.w,
                &ops.xs,
            )
            .unwrap();
        outs.push(out);
    }
    let edge_names: Vec<&'static str> = registry::edge_apply_kernels(g)
        .iter()
        .map(|k| k.name())
        .collect();
    for name in edge_names {
        let (out, _) = exec
            .run_edge_apply(
                &|sg| registry::edge_apply_by_name(sg, name).unwrap(),
                &ops.el,
                &ops.er,
            )
            .unwrap();
        outs.push(out);
    }
    let fused_names: Vec<&'static str> = registry::fused_kernels(g)
        .iter()
        .map(|k| k.name())
        .collect();
    for name in fused_names {
        let (y, alpha, _) = exec
            .run_fused(
                &|sg| registry::fused_by_name(sg, name).unwrap(),
                &ops.x,
                &ops.el,
                &ops.er,
                ops.f,
            )
            .unwrap();
        outs.push(y);
        outs.push(alpha);
    }
    outs
}

fn topologies(k: usize) -> Vec<ShardTopology> {
    vec![
        ShardTopology::sim(GpuSpec::a100_40gb(), k.min(2)),
        ShardTopology::native(4, k).unwrap(),
    ]
}

/// The tentpole proof: K-way sharded execution of **every** registry
/// kernel is bitwise identical to the unsharded launch on both backends.
#[test]
fn sharded_matches_unsharded_bitwise_for_every_registry_kernel() {
    for g in graphs() {
        let ops = operands(&g, int_features);
        for k in [2usize, 4] {
            for topo in topologies(k) {
                let reference = unsharded_all(&g, &ops, &topo);
                let exec = ShardedExecutor::new(Arc::clone(&g), k, topo).unwrap();
                let sharded = sharded_all(&exec, &g, &ops);
                assert_eq!(reference.len(), sharded.len());
                for (i, (a, b)) in reference.iter().zip(&sharded).enumerate() {
                    assert_eq!(a, b, "kernel #{i}, K={k}: sharded output diverged");
                }
            }
        }
    }
}

/// K = 1 is the identity: same graph object (no shard copies), no halo
/// traffic, byte-identical output even for non-integer float features.
#[test]
fn k1_is_byte_identical_even_with_float_features() {
    for g in graphs() {
        let ops = operands(&g, float_features);
        for topo in topologies(1) {
            let reference = unsharded_all(&g, &ops, &topo);
            let exec = ShardedExecutor::new(Arc::clone(&g), 1, topo).unwrap();
            let sharded = sharded_all(&exec, &g, &ops);
            for (i, (a, b)) in reference.iter().zip(&sharded).enumerate() {
                let ab: Vec<u32> = a.iter().map(|v| v.to_bits()).collect();
                let bb: Vec<u32> = b.iter().map(|v| v.to_bits()).collect();
                assert_eq!(ab, bb, "kernel #{i}: K=1 is not byte-identical");
            }
            let (_, report) = exec
                .run_spmm(
                    &|sg| registry::spmm_by_name(sg, "GnnOne").unwrap(),
                    &ops.w,
                    &ops.x,
                    ops.f,
                )
                .unwrap();
            assert_eq!(report.transfer_bytes, 0, "K=1 must move no halo bytes");
        }
    }
}

/// Every shard fault, across ≥ 8 seeds: the fault is detected, recovery
/// re-executes **only the failed shard** (asserted via launch counts), and
/// the recovered output is bitwise identical to the fault-free run.
#[test]
fn every_shard_fault_recovers_bitwise_identically_across_seeds() {
    let g = ring(64);
    let ops = operands(&g, int_features);
    let k = 4usize;
    let clean = {
        let exec =
            ShardedExecutor::new(Arc::clone(&g), k, ShardTopology::native(4, k).unwrap()).unwrap();
        exec.run_spmm(
            &|sg| registry::spmm_by_name(sg, "GnnOne").unwrap(),
            &ops.w,
            &ops.x,
            ops.f,
        )
        .unwrap()
        .0
    };
    for kind in ShardFaultKind::lattice() {
        for seed in 0..8u64 {
            let mut exec =
                ShardedExecutor::new(Arc::clone(&g), k, ShardTopology::native(4, k).unwrap())
                    .unwrap();
            exec.arm_fault(kind, seed);
            let (out, report) = exec
                .run_spmm(
                    &|sg| registry::spmm_by_name(sg, "GnnOne").unwrap(),
                    &ops.w,
                    &ops.x,
                    ops.f,
                )
                .unwrap();
            assert_eq!(out, clean, "{kind} seed {seed}: recovered output diverged");
            assert_eq!(
                report.retries, 1,
                "{kind} seed {seed}: fault must fire once"
            );
            assert_eq!(report.recovered.len(), 1, "{kind} seed {seed}");
            let total_attempts: u32 = report.attempts.iter().sum();
            assert_eq!(total_attempts, k as u32 + 1, "{kind} seed {seed}");
            assert_eq!(
                report.attempts.iter().filter(|&&a| a == 2).count(),
                1,
                "{kind} seed {seed}: exactly one shard retried"
            );
            let total_launches: u32 = report.launches.iter().sum();
            match kind {
                // The launch happened, its result was lost: the retry is a
                // second launch of that shard only.
                ShardFaultKind::ShardKill | ShardFaultKind::ShardStall => {
                    assert_eq!(total_launches, k as u32 + 1, "{kind} seed {seed}");
                    assert_eq!(
                        report.launches.iter().filter(|&&l| l == 2).count(),
                        1,
                        "{kind} seed {seed}: only the failed shard re-launches"
                    );
                }
                // Detected before the kernel ran: no extra launch at all.
                ShardFaultKind::HaloDrop | ShardFaultKind::TransientShardLaunch => {
                    assert_eq!(total_launches, k as u32, "{kind} seed {seed}");
                    assert!(report.launches.iter().all(|&l| l == 1));
                }
            }
        }
    }
}

/// Faults also recover on the simulated multi-GPU topology, where halo
/// exchange rides the modeled interconnect.
#[test]
fn faults_recover_on_the_sim_topology_too() {
    let g = ring(32);
    let ops = operands(&g, int_features);
    let k = 4usize;
    let clean = {
        let exec = ShardedExecutor::new(
            Arc::clone(&g),
            k,
            ShardTopology::sim(GpuSpec::a100_40gb(), 2),
        )
        .unwrap();
        let (out, report) = exec
            .run_sddmm(
                &|sg| registry::sddmm_by_name(sg, "GnnOne").unwrap(),
                &ops.x,
                &ops.y,
                ops.f,
            )
            .unwrap();
        assert!(
            report.transfer_bytes > 0,
            "K=4 ring sharding must ship halo bytes across devices"
        );
        assert!(report.transfer_ms > 0.0);
        out
    };
    for kind in ShardFaultKind::lattice() {
        let mut exec = ShardedExecutor::new(
            Arc::clone(&g),
            k,
            ShardTopology::sim(GpuSpec::a100_40gb(), 2),
        )
        .unwrap();
        exec.arm_fault(kind, 5);
        let (out, report) = exec
            .run_sddmm(
                &|sg| registry::sddmm_by_name(sg, "GnnOne").unwrap(),
                &ops.x,
                &ops.y,
                ops.f,
            )
            .unwrap();
        assert_eq!(out, clean, "{kind}: sim recovery diverged");
        assert_eq!(report.retries, 1, "{kind}");
    }
}

/// Exhausted retries are a **typed decline** — a structured `ShardAbort`
/// naming the shard, attempts, checkpointed prefix and injected fault —
/// never a silently partial output.
#[test]
fn exhausted_retries_decline_with_a_structured_shard_abort() {
    let g = ring(64);
    let ops = operands(&g, int_features);
    let k = 4usize;
    let mut exec =
        ShardedExecutor::new(Arc::clone(&g), k, ShardTopology::native(2, k).unwrap()).unwrap();
    exec.set_policy(RetryPolicy {
        max_attempts: 1,
        ..RetryPolicy::default()
    });
    exec.arm_fault(ShardFaultKind::ShardKill, 3);
    let err = exec
        .run_spmm(
            &|sg| registry::spmm_by_name(sg, "GnnOne").unwrap(),
            &ops.w,
            &ops.x,
            ops.f,
        )
        .unwrap_err();
    assert_eq!(err.kind(), "shard-abort");
    match err {
        GnnOneError::ShardAbort(sa) => {
            assert_eq!(sa.shards, k as u64);
            assert!(sa.shard < k as u64);
            assert_eq!(sa.attempts, 1);
            assert!(sa.completed < k as u64);
            assert_eq!(sa.fault.as_deref(), Some("shard-kill"));
            // The decline round-trips through the JSON error taxonomy.
            let json = GnnOneError::ShardAbort(sa).to_json();
            let back = GnnOneError::from_json(&json).unwrap();
            assert_eq!(back.kind(), "shard-abort");
        }
        other => panic!("expected ShardAbort, got {other}"),
    }
}

/// The deterministic backoff schedule (`base << attempt-1`, SweepGuard's)
/// is recorded in the report.
#[test]
fn retry_backoff_follows_the_sweep_guard_schedule() {
    let g = ring(16);
    let ops = operands(&g, int_features);
    let mut exec =
        ShardedExecutor::new(Arc::clone(&g), 2, ShardTopology::native(2, 2).unwrap()).unwrap();
    exec.set_policy(RetryPolicy {
        max_attempts: 3,
        backoff_base_ms: 1,
        ..RetryPolicy::default()
    });
    exec.arm_fault(ShardFaultKind::TransientShardLaunch, 0);
    let (_, report) = exec
        .run_spmv(
            &|sg| registry::spmv_by_name(sg, "GnnOne").unwrap(),
            &ops.w,
            &ops.xs,
        )
        .unwrap();
    assert_eq!(report.backoff_ms, vec![1], "one retry at base backoff");
    let policy = RetryPolicy {
        max_attempts: 4,
        backoff_base_ms: 2,
        ..RetryPolicy::default()
    };
    assert_eq!(
        (1..=3).map(|a| policy.backoff_ms(a)).collect::<Vec<_>>(),
        vec![2, 4, 8]
    );
}

/// Seeded jitter is reproducible: identical `(seed, attempt)` pairs give
/// identical waits, the jittered schedule stays within `jitter_ms` of the
/// plain exponential ladder, and distinct seeds decorrelate.
#[test]
fn retry_jitter_is_seeded_and_deterministic() {
    let plain = RetryPolicy {
        max_attempts: 4,
        backoff_base_ms: 4,
        ..RetryPolicy::default()
    };
    let jittered = RetryPolicy {
        jitter_ms: 3,
        seed: 0xfeed_beef,
        ..plain
    };
    let ladder: Vec<u64> = (1..=3).map(|a| jittered.backoff_ms(a)).collect();
    let again: Vec<u64> = (1..=3).map(|a| jittered.backoff_ms(a)).collect();
    assert_eq!(ladder, again, "same seed must reproduce the schedule");
    for (a, &ms) in (1u32..=3).zip(&ladder) {
        let base = plain.backoff_ms(a);
        assert!(
            (base..=base + 3).contains(&ms),
            "attempt {a}: {ms} outside [{base}, {}]",
            base + 3
        );
    }
    let reseeded = RetryPolicy {
        seed: 0xdead_cafe,
        ..jittered
    };
    let other: Vec<u64> = (1..=3).map(|a| reseeded.backoff_ms(a)).collect();
    assert_ne!(ladder, other, "distinct seeds should decorrelate");
    // jitter_ms == 0 is exactly the historical ladder.
    assert_eq!(
        (1..=3).map(|a| plain.backoff_ms(a)).collect::<Vec<_>>(),
        vec![4, 8, 16]
    );
}

/// Partition edge cases: more shards than nonempty rows (empty shards),
/// all edges in one shard, a single-vertex graph, and a graph whose last
/// rows are empty — all shard cleanly and bitwise-match unsharded.
#[test]
fn degenerate_graphs_shard_cleanly() {
    // Single vertex with a self-loop.
    let single = Arc::new(GraphData::new(Coo::from_edge_list(&EdgeList::new(
        1,
        vec![(0, 0)],
    ))));
    // A 6-vertex star: every edge lands in row 0, so K = 3 leaves two
    // shards with zero edges.
    let star = Arc::new(GraphData::new(Coo::from_edge_list(&EdgeList::new(
        6,
        (1..6u32).map(|v| (0, v)).collect(),
    ))));
    for (g, k) in [
        (Arc::clone(&single), 4usize),
        (Arc::clone(&star), 3),
        (ring(3), 8),
    ] {
        let ops = operands(&g, int_features);
        let topo = ShardTopology::native(2, k).unwrap();
        let reference = unsharded_all(&g, &ops, &topo);
        let exec = ShardedExecutor::new(Arc::clone(&g), k, topo).unwrap();
        let sharded = sharded_all(&exec, &g, &ops);
        for (i, (a, b)) in reference.iter().zip(&sharded).enumerate() {
            assert_eq!(a, b, "kernel #{i}, K={k}: degenerate graph diverged");
        }
    }
    // Empty shards never launch: a fault armed over them still recovers.
    let mut exec =
        ShardedExecutor::new(Arc::clone(&star), 3, ShardTopology::native(2, 3).unwrap()).unwrap();
    exec.arm_fault(ShardFaultKind::ShardKill, 1);
    let ops = operands(&star, int_features);
    let (_, report) = exec
        .run_spmm(
            &|sg| registry::spmm_by_name(sg, "GnnOne").unwrap(),
            &ops.w,
            &ops.x,
            ops.f,
        )
        .unwrap();
    assert_eq!(report.launches, vec![1 + 1, 0, 0], "only shard 0 launches");
}

/// Malformed partition specs from the adversarial corpus are rejected as
/// structured `ValidationError`s — overlaps, ownership gaps, truncation,
/// inverted ranges — and valid controls pass.
#[test]
fn adversarial_partition_corpus_is_rejected_structurally() {
    let corpus = adversarial::partition_corpus();
    assert!(corpus.len() >= 9, "corpus must cover every failure mode");
    let mut invalid = 0;
    for case in &corpus {
        let got = RowPartition::try_from_row_splits(&case.offsets, &case.splits);
        assert_eq!(
            got.is_ok(),
            case.expect_valid,
            "corpus case `{}`: got {got:?}",
            case.name
        );
        if let Err(e) = got {
            invalid += 1;
            // Structured, not a panic: the error names the partition field.
            assert_eq!(e.structure, "RowPartition", "case `{}`", case.name);
        }
    }
    assert!(invalid >= 7, "most corpus cases are malformed by design");
    // A partition built for a different graph is rejected at executor
    // construction, as is a foreign offsets array.
    let g = ring(16);
    let other = ring(8);
    let p8 = partition_graph(&other, 2).unwrap();
    let err = match ShardedExecutor::with_partition(
        Arc::clone(&g),
        p8,
        ShardTopology::native(2, 2).unwrap(),
    ) {
        Err(e) => e,
        Ok(_) => panic!("foreign partition must be rejected"),
    };
    assert_eq!(err.kind(), "validation");
}
