//! Fusion IR contract tests: the IR-lowered kernels are byte-identical
//! to the hand-built ones on both backends at every thread count, the
//! plan executor matches the CPU references, and the IR-derived access
//! summaries are statically Proved under both execution models.

use std::sync::Arc;

use gnnone_kernels::analysis::{check_summary, ExecModel, Verdict};
use gnnone_kernels::backend::{Backend, NativeEngine};
use gnnone_kernels::gnnone::fused::fused_gat_reference;
use gnnone_kernels::gnnone::{FusedGatAttention, GnnOneUAddV};
use gnnone_kernels::graph::GraphData;
use gnnone_kernels::ir::{self, execute, lower, IrFusedGat, IrUAddV, LowerOptions};
use gnnone_kernels::traits::{EdgeApplyKernel, FusedAttentionKernel};
use gnnone_sim::{DeviceBuffer, Gpu, GpuSpec};
use gnnone_sparse::datasets::{Dataset, Scale};
use gnnone_sparse::formats::{Coo, EdgeList};
use gnnone_sparse::gen;
use gnnone_sparse::reference;

fn graphs() -> Vec<Arc<GraphData>> {
    // Power-law, ragged, and a hub row longer than the 512-logit cache
    // (forces the fused kernel's recompute path).
    let mut hub: Vec<(u32, u32)> = (1..700u32).map(|c| (0, c)).collect();
    hub.push((1, 2));
    vec![
        Arc::new(GraphData::new(Coo::from_edge_list(
            &gen::rmat(6, 220, gen::GRAPH500_PROBS, 77).symmetrize(),
        ))),
        Arc::new(GraphData::new(Coo::from_edge_list(&EdgeList::new(
            50,
            (0..137u32).map(|e| (e % 49, (e * 7 + 1) % 49)).collect(),
        )))),
        Arc::new(GraphData::new(Coo::from_edge_list(&EdgeList::new(
            700, hub,
        )))),
    ]
}

fn features(n: usize, f: usize, salt: usize) -> Vec<f32> {
    (0..n * f)
        .map(|i| (((i * 31 + salt * 17) % 23) as f32 - 11.0) * 0.1)
        .collect()
}

/// IR-lowered fused GAT ≡ hand-built `FusedGatAttention`, byte for byte,
/// on sim and on native at 1/2/4 threads.
#[test]
fn lowered_gat_is_byte_identical_to_handwritten() {
    let gpu = Gpu::new(GpuSpec::a100_40gb());
    let f = 16usize;
    for g in graphs() {
        let nv = g.num_vertices();
        let nnz = g.nnz();
        let dz = DeviceBuffer::from_slice(&features(nv, f, 41));
        let del = DeviceBuffer::from_slice(&features(nv, 1, 43));
        let der = DeviceBuffer::from_slice(&features(nv, 1, 47));
        let hand = FusedGatAttention::new(Arc::clone(&g), 0.2);
        let lowered = IrFusedGat::new(Arc::clone(&g), 0.2);

        let run_sim = |k: &dyn FusedAttentionKernel| {
            let dy = DeviceBuffer::<f32>::zeros(nv * f);
            let da = DeviceBuffer::<f32>::zeros(nnz);
            k.run(&gpu, &dz, &del, &der, f, &dy, Some(&da)).unwrap();
            (dy.to_vec(), da.to_vec())
        };
        let (y_hand, a_hand) = run_sim(&hand);
        let (y_low, a_low) = run_sim(&lowered);
        assert_eq!(y_hand, y_low, "sim y mismatch");
        assert_eq!(a_hand, a_low, "sim alpha mismatch");

        for threads in [1usize, 2, 4] {
            let ng = NativeEngine::with_threads(threads).unwrap();
            let run_nat = |k: &dyn FusedAttentionKernel| {
                let dy = DeviceBuffer::<f32>::zeros(nv * f);
                let da = DeviceBuffer::<f32>::zeros(nnz);
                k.run_native(&ng, &dz, &del, &der, f, &dy, Some(&da))
                    .unwrap();
                (dy.to_vec(), da.to_vec())
            };
            let (y_hand_n, a_hand_n) = run_nat(&hand);
            let (y_low_n, a_low_n) = run_nat(&lowered);
            assert_eq!(y_hand_n, y_low_n, "native y mismatch at {threads} threads");
            assert_eq!(
                a_hand_n, a_low_n,
                "native alpha mismatch at {threads} threads"
            );
        }
    }
}

/// IR-lowered `u_add_v` ≡ hand-built `GnnOneUAddV`, byte for byte, on
/// both backends.
#[test]
fn lowered_u_add_v_is_byte_identical_to_handwritten() {
    let gpu = Gpu::new(GpuSpec::a100_40gb());
    for g in graphs() {
        let nv = g.num_vertices();
        let nnz = g.nnz();
        let del = DeviceBuffer::from_slice(&features(nv, 1, 43));
        let der = DeviceBuffer::from_slice(&features(nv, 1, 47));
        let hand = GnnOneUAddV::new(Arc::clone(&g));
        let lowered = IrUAddV::new(Arc::clone(&g));

        let run_sim = |k: &dyn EdgeApplyKernel| {
            let dw = DeviceBuffer::<f32>::zeros(nnz);
            k.run(&gpu, &del, &der, &dw).unwrap();
            dw.to_vec()
        };
        assert_eq!(run_sim(&hand), run_sim(&lowered), "sim w mismatch");

        for threads in [1usize, 2, 4] {
            let ng = NativeEngine::with_threads(threads).unwrap();
            let run_nat = |k: &dyn EdgeApplyKernel| {
                let dw = DeviceBuffer::<f32>::zeros(nnz);
                k.run_native(&ng, &del, &der, &dw).unwrap();
                dw.to_vec()
            };
            assert_eq!(
                run_nat(&hand),
                run_nat(&lowered),
                "native w mismatch at {threads} threads"
            );
        }
    }
}

/// The plan executor computes the CPU-reference answer for every
/// prebuilt chain, fused and unfused, on both backends — and the fused
/// and unfused GAT plans agree with each other.
#[test]
fn executor_matches_references_on_both_backends() {
    let f = 8usize;
    let backends = [
        Backend::Sim(Gpu::new(GpuSpec::a100_40gb())),
        Backend::Native(NativeEngine::with_threads(2).unwrap()),
    ];
    for g in graphs() {
        let nv = g.num_vertices();
        let nnz = g.nnz();
        let z = features(nv, f, 41);
        let el = features(nv, 1, 43);
        let er = features(nv, 1, 47);
        let w = features(nnz, 1, 19);
        let x = features(nv, f, 17);

        for backend in &backends {
            // GAT chain, fused and unfused, vs the fused CPU oracle.
            let ir_gat = ir::gat_attention_graph(0.2);
            let y_id = ir_gat.outputs()[0];
            let alpha_id = ir_gat.outputs()[1];
            let att_src = ir_gat.find_input("att_src").unwrap();
            let att_dst = ir_gat.find_input("att_dst").unwrap();
            let z_id = ir_gat.find_input("z").unwrap();
            // The fused kernel computes logit(r,c) = el[r] + er[c]:
            // destination term el binds att_dst, source term er att_src.
            let binds: Vec<(ir::ValueId, &[f32])> =
                vec![(att_src, &er), (att_dst, &el), (z_id, &z)];
            let (y_ref, alpha_ref) = fused_gat_reference(&g, &z, &el, &er, f, 0.2);

            let fused_plan = lower(&ir_gat, LowerOptions::default()).unwrap();
            assert!(fused_plan.fused());
            let res = execute(backend, &g, &ir_gat, &fused_plan, f, &binds).unwrap();
            reference::assert_close(res.value(y_id), &y_ref, 1e-3);
            reference::assert_close(res.value(alpha_id), &alpha_ref, 1e-3);

            let unfused_plan = lower(&ir_gat, LowerOptions { fuse: false }).unwrap();
            assert_eq!(unfused_plan.launches(), 2);
            let res_u = execute(backend, &g, &ir_gat, &unfused_plan, f, &binds).unwrap();
            reference::assert_close(res_u.value(y_id), &y_ref, 1e-3);
            reference::assert_close(res_u.value(alpha_id), &alpha_ref, 1e-3);

            // spmm chain vs reference::spmm_csr.
            let ir_spmm = ir::spmm_graph();
            let plan = lower(&ir_spmm, LowerOptions::default()).unwrap();
            let res = execute(
                backend,
                &g,
                &ir_spmm,
                &plan,
                f,
                &[
                    (ir_spmm.find_input("w").unwrap(), &w),
                    (ir_spmm.find_input("x").unwrap(), &x),
                ],
            )
            .unwrap();
            let spmm_ref = reference::spmm_csr(&g.csr, &w, &x, f);
            reference::assert_close(res.value(ir_spmm.outputs()[0]), &spmm_ref, 1e-3);

            // copy_u → aggregate_sum ≡ SpMM with unit weights.
            let ir_ones = ir::copy_u_sum_graph();
            let plan = lower(&ir_ones, LowerOptions::default()).unwrap();
            let res = execute(
                backend,
                &g,
                &ir_ones,
                &plan,
                f,
                &[(ir_ones.find_input("x").unwrap(), &x)],
            )
            .unwrap();
            let ones = vec![1.0f32; nnz];
            let ones_ref = reference::spmm_csr(&g.csr, &ones, &x, f);
            reference::assert_close(res.value(ir_ones.outputs()[0]), &ones_ref, 1e-3);

            // u_dot_v vs reference::sddmm_coo. The IR's x operand is the
            // source side (COO cols), y the destination side (rows) —
            // the reference indexes x by rows, y by cols.
            let ir_dot = ir::sddmm_graph();
            let xs = features(nv, f, 11);
            let ys = features(nv, f, 13);
            let plan = lower(&ir_dot, LowerOptions::default()).unwrap();
            let res = execute(
                backend,
                &g,
                &ir_dot,
                &plan,
                f,
                &[
                    (ir_dot.find_input("x").unwrap(), &ys),
                    (ir_dot.find_input("y").unwrap(), &xs),
                ],
            )
            .unwrap();
            let dot_ref = reference::sddmm_coo(&g.coo, &xs, &ys, f);
            reference::assert_close(res.value(ir_dot.outputs()[0]), &dot_ref, 1e-3);
        }
    }
}

/// The dot-product-attention chain (no fused pipeline match) runs
/// end-to-end through the fallback plan and its α rows sum to one.
#[test]
fn dot_attention_fallback_runs_end_to_end() {
    let f = 8usize;
    let backend = Backend::Native(NativeEngine::with_threads(2).unwrap());
    for g in graphs() {
        let nv = g.num_vertices();
        let q = features(nv, f, 3);
        let k = features(nv, f, 5);
        let v = features(nv, f, 7);
        let ir_g = ir::dot_attention_graph();
        let plan = lower(&ir_g, LowerOptions::default()).unwrap();
        assert!(!plan.fused());
        let res = execute(
            &backend,
            &g,
            &ir_g,
            &plan,
            f,
            &[
                (ir_g.find_input("q").unwrap(), &q),
                (ir_g.find_input("k").unwrap(), &k),
                (ir_g.find_input("v").unwrap(), &v),
            ],
        )
        .unwrap();
        let alpha = res.value(ir_g.outputs()[1]);
        for r in 0..g.csr.num_rows() {
            let range = g.csr.row_range(r);
            if range.is_empty() {
                continue;
            }
            let s: f32 = range.map(|e| alpha[e]).sum();
            assert!((s - 1.0).abs() < 1e-4, "row {r}: α sums to {s}");
        }
        // y is a convex combination per row: every lane bounded by the
        // min/max of v.
        let y = res.value(ir_g.outputs()[0]);
        let (vmin, vmax) = v
            .iter()
            .fold((f32::INFINITY, f32::NEG_INFINITY), |(lo, hi), &x| {
                (lo.min(x), hi.max(x))
            });
        for (i, &val) in y.iter().enumerate() {
            assert!(
                (vmin - 1e-4..=vmax + 1e-4).contains(&val) || val == 0.0,
                "y[{i}] = {val} outside [{vmin}, {vmax}]"
            );
        }
    }
}

/// Every IR-derived access summary is statically Proved under both
/// execution models, for every launch step of every prebuilt chain, on
/// the G0 and G5 Table-1 datasets.
#[test]
fn ir_derived_summaries_are_all_proved() {
    for id in ["G0", "G5"] {
        let ds = Dataset::by_id(id, Scale::Tiny).expect("Table 1 id");
        let g = Arc::new(GraphData::new(ds.coo.clone()));
        for (graph_name, ir_g) in [
            ("gat_attention", ir::gat_attention_graph(0.2)),
            ("spmm", ir::spmm_graph()),
            ("copy_u_sum", ir::copy_u_sum_graph()),
            ("sddmm", ir::sddmm_graph()),
            ("u_add_v", ir::u_add_v_graph()),
            ("dot_attention", ir::dot_attention_graph()),
        ] {
            for fuse in [true, false] {
                let plan = lower(&ir_g, LowerOptions { fuse }).unwrap();
                for model in [ExecModel::Sim, ExecModel::Native] {
                    let summaries = ir::summary::plan_summaries(&plan, &g, 16, model);
                    assert!(
                        plan.launches() == summaries.len(),
                        "{graph_name}: every launch step must derive a summary"
                    );
                    for s in &summaries {
                        let verdict = check_summary(s);
                        assert!(
                            matches!(verdict, Verdict::Proved),
                            "{id}/{graph_name} fuse={fuse} {model:?}: {verdict:?}"
                        );
                    }
                }
            }
        }
    }
}
