//! Registry-wide static-verification gate plus differential validation
//! of the symbolic checker against the dynamic layer.
//!
//! Three obligations, mirroring `docs/STATIC_ANALYSIS.md`:
//!
//! 1. every shipped registry kernel is `Proved` under both execution
//!    models, on Table 1 graphs and across the 24-point config lattice —
//!    a kernel without a summary surfaces as `Unknown` and fails here
//!    (coverage gate);
//! 2. every seeded-bug kernel is statically `Refuted` with the expected
//!    witness *and* dynamically caught by the sanitizer / watchdog —
//!    disagreement between the layers is a soundness hole;
//! 3. the static per-warp instruction bound dominates the watermark the
//!    simulator actually observes, launch for launch.

use std::sync::Arc;

use gnnone_kernels::analysis::seeded;
use gnnone_kernels::analysis::{self, check_summary, AccessSummary, ExecModel, Verdict};
use gnnone_kernels::graph::GraphData;
use gnnone_kernels::registry;
use gnnone_sim::{DeviceBuffer, Gpu, GpuSpec};
use gnnone_sparse::datasets::{Dataset, Scale};
use gnnone_sparse::formats::Coo;
use gnnone_sparse::gen::{self, adversarial};

fn table1_graph(id: &str) -> Arc<GraphData> {
    let ds = Dataset::by_id(id, Scale::Tiny).expect("Table 1 id");
    Arc::new(GraphData::new(ds.coo))
}

#[test]
fn registry_is_proved_on_table1_graphs_under_both_models() {
    for id in ["G0", "G1"] {
        let g = table1_graph(id);
        for f in [6, 16] {
            for model in [ExecModel::Sim, ExecModel::Native] {
                let verdicts = analysis::verify_graph(&g, f, model);
                assert_eq!(verdicts.len(), 21, "{id} f={f}: registry size drifted");
                for v in &verdicts {
                    assert!(
                        v.verdict.is_proved(),
                        "{id} f={f} {model:?} {} ({}): {:?}",
                        v.kernel,
                        v.op,
                        v.verdict
                    );
                }
            }
        }
    }
}

#[test]
fn config_lattice_is_fully_proved() {
    let g = table1_graph("G0");
    let verdicts = analysis::verify_lattice(&g, 8);
    // 24 lattice points × 2 models × 2 tunable kernels.
    assert_eq!(verdicts.len(), 96);
    for (cfg, v) in &verdicts {
        assert!(
            v.verdict.is_proved(),
            "{} ({}) {:?} at {cfg:?}: {:?}",
            v.kernel,
            v.op,
            v.model,
            v.verdict
        );
    }
}

#[test]
fn seeded_bugs_are_statically_refuted_with_the_expected_witness() {
    let bugs = seeded::corpus();
    assert_eq!(bugs.len(), 15);
    for bug in &bugs {
        match check_summary(&bug.summary()) {
            Verdict::Refuted(w) => assert_eq!(
                w.check, bug.expect_check,
                "{}: refuted by the wrong obligation ({})",
                bug.name, w.detail
            ),
            other => panic!("{}: expected Refuted, got {other:?}", bug.name),
        }
    }
}

#[test]
fn seeded_bugs_are_dynamically_caught() {
    for bug in seeded::corpus() {
        assert!(
            bug.dynamically_caught(),
            "{}: the dynamic layer missed a bug the static pass refutes",
            bug.name
        );
    }
}

#[test]
fn adversarial_corpus_never_yields_unknown() {
    let mut resolved_cases = 0;
    for case in adversarial::corpus(0xC0FFEE) {
        let Ok(resolved) = case.resolve() else {
            continue; // malformed cases are the fuzz harness's business
        };
        assert!(case.expect_valid, "{}: malformed case resolved", case.name);
        resolved_cases += 1;
        let g = Arc::new(GraphData::new(resolved.coo));
        for model in [ExecModel::Sim, ExecModel::Native] {
            for v in analysis::verify_graph(&g, resolved.f, model) {
                assert!(
                    v.verdict.is_proved(),
                    "{} {model:?} {} ({}): {:?}",
                    case.name,
                    v.kernel,
                    v.op,
                    v.verdict
                );
            }
        }
    }
    assert!(resolved_cases >= 5, "corpus lost its valid-extreme cases");
}

/// Max over launches and warps of the summary's per-warp instruction
/// bound, instantiated at the summary's own base environment.
fn static_ops_bound(s: &AccessSummary) -> u64 {
    let mut bound = 0;
    for launch in &s.launches {
        let mut env = s.base_env;
        env.warp_id = 0;
        env.grid_warps = launch.grid_warps.eval(&env);
        for w in 0..env.grid_warps {
            env.warp_id = w;
            bound = bound.max(launch.ops_per_warp.eval(&env));
        }
    }
    bound
}

fn salted(n: usize, salt: usize) -> Vec<f32> {
    (0..n)
        .map(|i| (((i * 37 + salt * 101) % 29) as f32 - 14.0) * 0.11)
        .collect()
}

#[test]
fn static_ops_bound_dominates_the_observed_watermark() {
    let el = gen::erdos_renyi(64, 256, 7).symmetrize();
    let g = Arc::new(GraphData::new(Coo::from_edge_list(&el)));
    let f = 8;
    let nv = g.num_vertices();
    let nnz = g.nnz();
    let gpu = Gpu::new(GpuSpec::tiny());
    let dx = DeviceBuffer::from_slice(&salted(nv * f, 1));
    let dz = DeviceBuffer::from_slice(&salted(nv * f, 2));
    let dw = DeviceBuffer::from_slice(&salted(nnz, 3));
    let del = DeviceBuffer::from_slice(&salted(nv, 4));
    let der = DeviceBuffer::from_slice(&salted(nv, 5));
    let dy = DeviceBuffer::<f32>::zeros(nv * f);
    let dwe = DeviceBuffer::<f32>::zeros(nnz);
    let dyv = DeviceBuffer::<f32>::zeros(nv);
    let dalpha = DeviceBuffer::<f32>::zeros(nnz);

    let mut checked = 0;
    let mut dominates = |name: &str, summary: Option<AccessSummary>| {
        let s = summary.unwrap_or_else(|| panic!("{name}: no sim summary"));
        let bound = static_ops_bound(&s);
        let observed = gpu.last_max_warp_ops();
        assert!(
            bound >= observed,
            "{name}: static bound {bound} < observed max warp ops {observed}"
        );
        checked += 1;
    };

    for k in registry::sddmm_kernels(&g) {
        k.run(&gpu, &dx, &dz, f, &dwe).unwrap();
        dominates(k.name(), k.access_summary(f, ExecModel::Sim));
    }
    for k in registry::spmm_kernels(&g)
        .into_iter()
        .chain(registry::spmm_discussion_kernels(&g))
        .chain(registry::spmm_format_kernels(&g))
    {
        dy.fill_default();
        k.run(&gpu, &dw, &dx, f, &dy).unwrap();
        dominates(k.name(), k.access_summary(f, ExecModel::Sim));
    }
    for k in registry::spmv_class_kernels(&g) {
        dyv.fill_default();
        k.run(&gpu, &dw, &del, &dyv).unwrap();
        dominates(k.name(), k.access_summary(ExecModel::Sim));
    }
    for k in registry::edge_apply_kernels(&g) {
        k.run(&gpu, &del, &der, &dwe).unwrap();
        dominates(k.name(), k.access_summary(ExecModel::Sim));
    }
    for k in registry::fused_kernels(&g) {
        dy.fill_default();
        k.run(&gpu, &dz, &del, &der, f, &dy, Some(&dalpha)).unwrap();
        dominates(k.name(), k.access_summary(f, ExecModel::Sim));
    }
    assert_eq!(checked, 21, "registry size drifted");
}
