//! Watchdog budget edge cases: degenerate launches — zero-edge graphs,
//! `f = 1` features, single-warp grids — must still receive a nonzero
//! instruction budget, and the default (armed) watchdog must never abort a
//! healthy kernel on them.
//!
//! The derived budget formula clamps to [`LaunchSpec::MIN_DERIVED_OPS`]
//! from below precisely so that tiny grids keep room for skewed work; these
//! tests pin that behaviour at the kernel-registry level, where a
//! regression would surface as a spurious `AbortReason::Watchdog` on a
//! legitimate launch.

use std::sync::Arc;

use gnnone_kernels::graph::GraphData;
use gnnone_kernels::sanitize::sweep_graph;
use gnnone_sim::{Gpu, GpuSpec, LaunchSpec};
use gnnone_sparse::formats::{Coo, EdgeList};
use gnnone_sparse::gen;

/// Sweeps the whole registry over `coo` at feature length `f` with the
/// default launch policy (watchdog armed, derived budget) and asserts no
/// kernel was stopped by the watchdog. Kernels may still *decline* a
/// degenerate shape with a structured error — that is a skip, not an abort.
fn assert_no_spurious_aborts(coo: Coo, f: usize) {
    let g = Arc::new(GraphData::new(coo));
    let gpu = Gpu::new(GpuSpec::tiny());
    let sweeps = sweep_graph(&gpu, &g, f);
    assert!(sweeps.len() >= 12, "only {} kernels swept", sweeps.len());
    for s in &sweeps {
        if let Some(reason) = &s.skipped {
            assert!(
                !reason.to_lowercase().contains("watchdog"),
                "{} ({}) spuriously aborted by the watchdog: {reason}",
                s.name,
                s.op
            );
        }
    }
}

#[test]
fn degenerate_grids_still_get_a_nonzero_budget() {
    let spec = LaunchSpec::default();
    // A zero-warp grid (e.g. a zero-edge launch rounded down) and a
    // single-warp grid both land on the floor, never zero.
    assert_eq!(spec.budget(0), LaunchSpec::MIN_DERIVED_OPS);
    assert_eq!(spec.budget(1), LaunchSpec::MIN_DERIVED_OPS);
    assert!(spec.budget(1) > 0);
    // The floor is generous enough for every shipped kernel's per-warp
    // share plus full-grid skew (see LaunchSpec docs).
    const { assert!(LaunchSpec::MIN_DERIVED_OPS >= LaunchSpec::OPS_PER_GRID_WARP) };
}

#[test]
fn zero_edge_graph_does_not_trip_the_watchdog() {
    // |V| = 16, |E| = 0: edge-parallel kernels get an empty grid,
    // vertex-parallel ones get all-empty rows.
    assert_no_spurious_aborts(Coo::from_edge_list(&EdgeList::new(16, vec![])), 8);
}

#[test]
fn single_vertex_graph_does_not_trip_the_watchdog() {
    // The smallest possible launch: one vertex, no edges — at most a
    // single warp of real work anywhere in the registry.
    assert_no_spurious_aborts(Coo::from_edge_list(&EdgeList::new(1, vec![])), 8);
}

#[test]
fn f1_features_do_not_trip_the_watchdog() {
    // f = 1 defeats every vectorized (float2/float4) path and minimizes
    // per-warp work; budgets derived from warp counts must still cover it.
    let el = gen::erdos_renyi(64, 256, 11).symmetrize();
    assert_no_spurious_aborts(Coo::from_edge_list(&el), 1);
}

#[test]
fn healthy_kernels_complete_under_the_default_watchdog() {
    // A skewed graph (star: one mega-row) routes most of the grid's work
    // through few warps — the case the whole-grid allowance exists for.
    let hub: Vec<(u32, u32)> = (1..128u32).map(|v| (0, v)).collect();
    let el = EdgeList::new(128, hub).symmetrize();
    let g = Arc::new(GraphData::new(Coo::from_edge_list(&el)));
    let gpu = Gpu::new(GpuSpec::tiny());
    let sweeps = sweep_graph(&gpu, &g, 8);
    let launched = sweeps.iter().filter(|s| s.skipped.is_none()).count();
    assert!(launched >= 12, "only {launched} kernels launched");
    for s in &sweeps {
        if let Some(reason) = &s.skipped {
            assert!(
                !reason.to_lowercase().contains("watchdog"),
                "{} aborted on the star graph: {reason}",
                s.name
            );
        }
    }
}
