//! Backend parity: the native CPU backend computes the same function as
//! the CPU references and the simulator, for every kernel in the registry,
//! across the full GNNOne configuration lattice — and its output is
//! bitwise identical at every worker-thread count.
//!
//! This is the portability contract of `docs/BACKENDS.md` in executable
//! form: a kernel object describes *what* to compute; switching the
//! backend must never change it.

use std::sync::Arc;

use gnnone_kernels::backend::NativeEngine;
use gnnone_kernels::gnnone::{GnnOneConfig, GnnOneSddmm, GnnOneSpmm, Schedule};
use gnnone_kernels::graph::GraphData;
use gnnone_kernels::registry;
use gnnone_kernels::traits::{SddmmKernel, SpmmKernel};
use gnnone_sim::{DeviceBuffer, Gpu, GpuSpec};
use gnnone_sparse::formats::{Coo, EdgeList};
use gnnone_sparse::reference;

/// A power-law graph and a ragged one (empty tail row, nnz far from any
/// block multiple) — the same shapes the sim-parity lattice test uses.
fn graphs() -> Vec<Arc<GraphData>> {
    vec![
        Arc::new(GraphData::new(Coo::from_edge_list(
            &gnnone_sparse::gen::rmat(6, 220, gnnone_sparse::gen::GRAPH500_PROBS, 77).symmetrize(),
        ))),
        Arc::new(GraphData::new(Coo::from_edge_list(&EdgeList::new(
            50,
            (0..137u32).map(|e| (e % 49, (e * 7 + 1) % 49)).collect(),
        )))),
    ]
}

fn features(n: usize, f: usize, salt: usize) -> Vec<f32> {
    (0..n * f)
        .map(|i| (((i * 31 + salt * 17) % 23) as f32 - 11.0) * 0.1)
        .collect()
}

fn gpu() -> Gpu {
    Gpu::new(GpuSpec::a100_40gb())
}

fn eng(threads: usize) -> NativeEngine {
    NativeEngine::with_threads(threads).unwrap()
}

/// The 24-point lattice: Fig. 9 cache sizes × both Listing-2 schedules ×
/// vector loads on/off × data reuse on/off.
fn config_lattice() -> Vec<GnnOneConfig> {
    let mut out = Vec::new();
    for cache_size in [32usize, 64, 128] {
        for schedule in [Schedule::Consecutive, Schedule::RoundRobin] {
            for vectorize in [false, true] {
                for data_reuse in [false, true] {
                    out.push(GnnOneConfig {
                        cache_size,
                        schedule,
                        vectorize,
                        data_reuse,
                    });
                }
            }
        }
    }
    out
}

/// Every registry kernel, every family: native ≡ CPU reference ≡ sim.
#[test]
fn native_matches_reference_and_sim_for_every_registry_kernel() {
    let gp = gpu();
    let ng = eng(4);
    for g in graphs() {
        let nv = g.num_vertices();
        let nnz = g.nnz();
        for f in [3usize, 16, 33] {
            let x = features(nv, f, 21);
            let y = features(nv, f, 22);
            let w = features(nnz, 1, 23);
            let dx = DeviceBuffer::from_slice(&x);
            let dyv = DeviceBuffer::from_slice(&y);
            let dwv = DeviceBuffer::from_slice(&w);

            let sddmm_ref = reference::sddmm_coo(&g.coo, &x, &y, f);
            for k in registry::sddmm_kernels(&g) {
                let w_nat = DeviceBuffer::<f32>::zeros(nnz);
                k.run_native(&ng, &dx, &dyv, f, &w_nat).unwrap();
                reference::assert_close(&w_nat.to_vec(), &sddmm_ref, 1e-3);
                let w_sim = DeviceBuffer::<f32>::zeros(nnz);
                k.run(&gp, &dx, &dyv, f, &w_sim).unwrap();
                reference::assert_close(&w_nat.to_vec(), &w_sim.to_vec(), 1e-3);
            }

            let spmm_ref = reference::spmm_csr(&g.csr, &w, &x, f);
            let spmm_all = registry::spmm_kernels(&g)
                .into_iter()
                .chain(registry::spmm_discussion_kernels(&g))
                .chain(registry::spmm_format_kernels(&g));
            for k in spmm_all {
                let y_nat = DeviceBuffer::<f32>::zeros(nv * f);
                k.run_native(&ng, &dwv, &dx, f, &y_nat).unwrap();
                reference::assert_close(&y_nat.to_vec(), &spmm_ref, 1e-3);
                let y_sim = DeviceBuffer::<f32>::zeros(nv * f);
                k.run(&gp, &dwv, &dx, f, &y_sim).unwrap();
                reference::assert_close(&y_nat.to_vec(), &y_sim.to_vec(), 1e-3);
            }
        }

        let xs = features(nv, 1, 9);
        let ws = features(nnz, 1, 10);
        let dxs = DeviceBuffer::from_slice(&xs);
        let dws = DeviceBuffer::from_slice(&ws);
        let spmv_ref = reference::spmv_csr(&g.csr, &ws, &xs);
        for k in registry::spmv_class_kernels(&g) {
            let y_nat = DeviceBuffer::<f32>::zeros(nv);
            k.run_native(&ng, &dws, &dxs, &y_nat).unwrap();
            reference::assert_close(&y_nat.to_vec(), &spmv_ref, 1e-3);
            let y_sim = DeviceBuffer::<f32>::zeros(nv);
            k.run(&gp, &dws, &dxs, &y_sim).unwrap();
            reference::assert_close(&y_nat.to_vec(), &y_sim.to_vec(), 1e-3);
        }

        let el = features(nv, 1, 24);
        let er = features(nv, 1, 25);
        let del = DeviceBuffer::from_slice(&el);
        let der = DeviceBuffer::from_slice(&er);
        for k in registry::edge_apply_kernels(&g) {
            let w_nat = DeviceBuffer::<f32>::zeros(nnz);
            k.run_native(&ng, &del, &der, &w_nat).unwrap();
            let got = w_nat.to_vec();
            for e in 0..nnz {
                let expect = el[g.coo.rows()[e] as usize] + er[g.coo.cols()[e] as usize];
                assert!((got[e] - expect).abs() < 1e-5, "u_add_v edge {e}");
            }
            let w_sim = DeviceBuffer::<f32>::zeros(nnz);
            k.run(&gp, &del, &der, &w_sim).unwrap();
            reference::assert_close(&got, &w_sim.to_vec(), 1e-5);
        }

        let f = 16usize;
        let z = features(nv, f, 41);
        let dz = DeviceBuffer::from_slice(&z);
        for k in registry::fused_kernels(&g) {
            let alpha_nat = DeviceBuffer::<f32>::zeros(nnz);
            let y_nat = DeviceBuffer::<f32>::zeros(nv * f);
            k.run_native(&ng, &dz, &del, &der, f, &y_nat, Some(&alpha_nat))
                .unwrap();
            let alpha_sim = DeviceBuffer::<f32>::zeros(nnz);
            let y_sim = DeviceBuffer::<f32>::zeros(nv * f);
            k.run(&gp, &dz, &del, &der, f, &y_sim, Some(&alpha_sim))
                .unwrap();
            reference::assert_close(&y_nat.to_vec(), &y_sim.to_vec(), 1e-3);
            reference::assert_close(&alpha_nat.to_vec(), &alpha_sim.to_vec(), 1e-3);
        }
    }
}

/// The GNNOne kernels honour their config on native too: every point of
/// the 24-point lattice computes the reference answer.
#[test]
fn native_lattice_matches_reference() {
    let ng = eng(3);
    for g in graphs() {
        let nv = g.num_vertices();
        for f in [3usize, 16, 33] {
            let x = features(nv, f, 21);
            let y = features(nv, f, 22);
            let w = features(g.nnz(), 1, 23);
            let sddmm_ref = reference::sddmm_coo(&g.coo, &x, &y, f);
            let spmm_ref = reference::spmm_csr(&g.csr, &w, &x, f);
            let dx = DeviceBuffer::from_slice(&x);
            let dyv = DeviceBuffer::from_slice(&y);
            let dwv = DeviceBuffer::from_slice(&w);
            for cfg in config_lattice() {
                let dw = DeviceBuffer::<f32>::zeros(g.nnz());
                GnnOneSddmm::new(Arc::clone(&g), cfg)
                    .run_native(&ng, &dx, &dyv, f, &dw)
                    .unwrap();
                reference::assert_close(&dw.to_vec(), &sddmm_ref, 1e-3);
                let dy = DeviceBuffer::<f32>::zeros(nv * f);
                GnnOneSpmm::new(Arc::clone(&g), cfg)
                    .run_native(&ng, &dwv, &dx, f, &dy)
                    .unwrap();
                reference::assert_close(&dy.to_vec(), &spmm_ref, 1e-3);
            }
        }
    }
}

/// Worker-thread count is invisible in the bits: every registry kernel
/// produces byte-identical output at 1, 2 and 4 threads. No atomics, no
/// reduction-order dependence on the split.
#[test]
fn native_output_is_bitwise_deterministic_across_thread_counts() {
    let engines = [eng(1), eng(2), eng(4)];
    for g in graphs() {
        let nv = g.num_vertices();
        let nnz = g.nnz();
        let f = 16usize;
        let x = features(nv, f, 21);
        let y = features(nv, f, 22);
        let w = features(nnz, 1, 23);
        let dx = DeviceBuffer::from_slice(&x);
        let dyv = DeviceBuffer::from_slice(&y);
        let dwv = DeviceBuffer::from_slice(&w);
        let el = DeviceBuffer::from_slice(&features(nv, 1, 24));
        let er = DeviceBuffer::from_slice(&features(nv, 1, 25));
        let z = DeviceBuffer::from_slice(&features(nv, f, 41));

        let sddmm_outs: Vec<Vec<Vec<f32>>> = engines
            .iter()
            .map(|ng| {
                registry::sddmm_kernels(&g)
                    .iter()
                    .map(|k| {
                        let dw = DeviceBuffer::<f32>::zeros(nnz);
                        k.run_native(ng, &dx, &dyv, f, &dw).unwrap();
                        dw.to_vec()
                    })
                    .collect()
            })
            .collect();
        assert_eq!(sddmm_outs[0], sddmm_outs[1], "sddmm: 1 vs 2 threads");
        assert_eq!(sddmm_outs[0], sddmm_outs[2], "sddmm: 1 vs 4 threads");

        let spmm_outs: Vec<Vec<Vec<f32>>> = engines
            .iter()
            .map(|ng| {
                registry::spmm_kernels(&g)
                    .into_iter()
                    .chain(registry::spmm_discussion_kernels(&g))
                    .chain(registry::spmm_format_kernels(&g))
                    .map(|k| {
                        let dy = DeviceBuffer::<f32>::zeros(nv * f);
                        k.run_native(ng, &dwv, &dx, f, &dy).unwrap();
                        dy.to_vec()
                    })
                    .collect()
            })
            .collect();
        assert_eq!(spmm_outs[0], spmm_outs[1], "spmm: 1 vs 2 threads");
        assert_eq!(spmm_outs[0], spmm_outs[2], "spmm: 1 vs 4 threads");

        let rest_outs: Vec<Vec<Vec<f32>>> = engines
            .iter()
            .map(|ng| {
                let mut outs = Vec::new();
                for k in registry::spmv_class_kernels(&g) {
                    let dy = DeviceBuffer::<f32>::zeros(nv);
                    k.run_native(ng, &dwv, &dx, &dy).unwrap();
                    outs.push(dy.to_vec());
                }
                for k in registry::edge_apply_kernels(&g) {
                    let dw = DeviceBuffer::<f32>::zeros(nnz);
                    k.run_native(ng, &el, &er, &dw).unwrap();
                    outs.push(dw.to_vec());
                }
                for k in registry::fused_kernels(&g) {
                    let alpha = DeviceBuffer::<f32>::zeros(nnz);
                    let dy = DeviceBuffer::<f32>::zeros(nv * f);
                    k.run_native(ng, &z, &el, &er, f, &dy, Some(&alpha))
                        .unwrap();
                    outs.push(dy.to_vec());
                    outs.push(alpha.to_vec());
                }
                outs
            })
            .collect();
        assert_eq!(rest_outs[0], rest_outs[1], "spmv/edge/fused: 1 vs 2");
        assert_eq!(rest_outs[0], rest_outs[2], "spmv/edge/fused: 1 vs 4");
    }
}

/// The registry exposes exactly the 21 kernels `BENCH_NATIVE.json` and
/// the CI `native-smoke` job assert coverage of. Growing the registry
/// must grow this count (and the committed baseline) deliberately.
#[test]
fn registry_exposes_twenty_one_kernels() {
    let g = &graphs()[0];
    let count = registry::sddmm_kernels(g).len()
        + registry::spmm_kernels(g).len()
        + registry::spmm_discussion_kernels(g).len()
        + registry::spmm_format_kernels(g).len()
        + registry::spmv_class_kernels(g).len()
        + registry::edge_apply_kernels(g).len()
        + registry::fused_kernels(g).len();
    assert_eq!(count, 21);
}
