//! Registry-wide sanitizer sweep: every shipped kernel must come up clean
//! on Table 1 synthetic graphs — the acceptance gate behind
//! `gnnone-prof sanitize`.

use std::sync::Arc;

use gnnone_kernels::graph::GraphData;
use gnnone_kernels::sanitize::{sweep_graph, total_findings};
use gnnone_sim::{Gpu, GpuSpec, SanitizeConfig};
use gnnone_sparse::datasets::{Dataset, Scale};

fn sweep_dataset(id: &str, f: usize) {
    let ds = Dataset::by_id(id, Scale::Tiny).expect("Table 1 id");
    let g = Arc::new(GraphData::new(ds.coo));
    let gpu = Gpu::new(GpuSpec::tiny());
    let san = gpu.enable_sanitizer(SanitizeConfig::on());
    let sweeps = sweep_graph(&gpu, &g, f);
    assert!(
        sweeps.len() >= 12,
        "{id}: only {} kernels swept",
        sweeps.len()
    );
    let dirty: Vec<_> = sweeps.iter().filter(|s| !s.clean()).collect();
    let launched = sweeps.iter().filter(|s| s.skipped.is_none()).count();
    assert!(
        launched >= 12,
        "{id}: only {launched} kernels actually launched"
    );
    assert!(
        dirty.iter().all(|s| s.findings == 0),
        "{id} f={f}: shipped kernels flagged: {:#?}\nreport: {}",
        dirty,
        san.report_json().to_string_pretty()
    );
    assert_eq!(total_findings(&sweeps), 0);
    assert!(san.is_clean());
}

#[test]
fn registry_is_clean_on_g0() {
    // G0 at the paper's smallest feature length (float3 path) and a
    // float4-friendly one.
    sweep_dataset("G0", 6);
    sweep_dataset("G0", 16);
}

#[test]
fn registry_is_clean_on_g1() {
    sweep_dataset("G1", 16);
}
