//! Criterion benchmarks of format construction and the custom-format
//! pre-processing steps the paper treats as one-time costs (§5.4.5) —
//! quantifying what "one-time" actually costs.

use criterion::{criterion_group, criterion_main, Criterion};
use gnnone_sparse::custom::{MergePath, NeighborGroups, RowSwizzle};
use gnnone_sparse::formats::{Coo, Csr};
use gnnone_sparse::gen;
use std::time::Duration;

fn fixture() -> Coo {
    let el = gen::rmat(13, 64_000, gen::GRAPH500_PROBS, 5).symmetrize();
    Coo::from_edge_list(&el)
}

fn bench_formats(c: &mut Criterion) {
    let coo = fixture();
    let csr = Csr::from_coo(&coo);
    let mut group = c.benchmark_group("formats");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));

    group.bench_function("coo_to_csr", |b| b.iter(|| Csr::from_coo(&coo)));
    group.bench_function("csr_to_coo", |b| b.iter(|| csr.to_coo()));
    group.bench_function("transpose", |b| b.iter(|| coo.transpose()));
    group.finish();
}

fn bench_preprocessing(c: &mut Criterion) {
    let coo = fixture();
    let csr = Csr::from_coo(&coo);
    let mut group = c.benchmark_group("custom_format_preprocessing");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));

    group.bench_function("neighbor_groups(32)", |b| {
        b.iter(|| NeighborGroups::build(&csr, 32))
    });
    group.bench_function("row_swizzle", |b| b.iter(|| RowSwizzle::build(&csr)));
    group.bench_function("merge_path(1024)", |b| {
        b.iter(|| MergePath::build(&csr, 1024))
    });
    group.finish();
}

criterion_group!(benches, bench_formats, bench_preprocessing);
criterion_main!(benches);
