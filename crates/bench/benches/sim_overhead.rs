//! Criterion benchmark of the simulator itself: host nanoseconds per
//! simulated NZE for the flagship kernels — the number that determines how
//! large a dataset sweep is practical on a workstation.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gnnone_bench::figure_gpu_spec;
use gnnone_kernels::gnnone::{GnnOneConfig, GnnOneSddmm, GnnOneSpmm};
use gnnone_kernels::graph::GraphData;
use gnnone_kernels::traits::{SddmmKernel, SpmmKernel};
use gnnone_sim::{DeviceBuffer, Gpu};
use gnnone_sparse::formats::Coo;
use gnnone_sparse::gen;
use std::time::Duration;

fn bench_sim_throughput(c: &mut Criterion) {
    let el = gen::rmat(12, 32_000, gen::GRAPH500_PROBS, 7).symmetrize();
    let g = Arc::new(GraphData::new(Coo::from_edge_list(&el)));
    let gpu = Gpu::new(figure_gpu_spec());
    let dim = 32;
    let n = g.num_vertices();
    let nnz = g.nnz();

    let mut group = c.benchmark_group("sim_throughput");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    group.throughput(Throughput::Elements(nnz as u64));

    let x = DeviceBuffer::from_slice(&vec![0.5f32; n * dim]);
    let y = DeviceBuffer::from_slice(&vec![0.25f32; n * dim]);
    let wv = DeviceBuffer::from_slice(&vec![1.0f32; nnz]);
    let w_out = DeviceBuffer::<f32>::zeros(nnz);
    let y_out = DeviceBuffer::<f32>::zeros(n * dim);

    let sddmm = GnnOneSddmm::new(Arc::clone(&g), GnnOneConfig::default());
    group.bench_function("gnnone_sddmm_nze_per_sec", |b| {
        b.iter(|| sddmm.run(&gpu, &x, &y, dim, &w_out).unwrap());
    });
    let spmm = GnnOneSpmm::new(Arc::clone(&g), GnnOneConfig::default());
    group.bench_function("gnnone_spmm_nze_per_sec", |b| {
        b.iter(|| spmm.run(&gpu, &wv, &x, dim, &y_out).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_sim_throughput);
criterion_main!(benches);
