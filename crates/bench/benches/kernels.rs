//! Criterion micro-benchmarks of the kernel implementations (host-side
//! simulation throughput and relative simulated cost). These complement
//! the figure binaries: Criterion measures how fast the *simulator*
//! executes each kernel, which bounds how large a sweep is practical.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gnnone_bench::figure_gpu_spec;
use gnnone_kernels::graph::GraphData;
use gnnone_kernels::registry;
use gnnone_sim::{DeviceBuffer, Gpu};
use gnnone_sparse::formats::Coo;
use gnnone_sparse::gen;
use std::time::Duration;

fn bench_graph() -> Arc<GraphData> {
    let el = gen::rmat(12, 16_000, gen::GRAPH500_PROBS, 99).symmetrize();
    Arc::new(GraphData::new(Coo::from_edge_list(&el)))
}

fn bench_sddmm(c: &mut Criterion) {
    let g = bench_graph();
    let gpu = Gpu::new(figure_gpu_spec());
    let mut group = c.benchmark_group("sddmm_sim");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    for dim in [16usize, 32] {
        let n = g.num_vertices();
        let x = DeviceBuffer::from_slice(&vec![0.5f32; n * dim]);
        let y = DeviceBuffer::from_slice(&vec![0.25f32; n * dim]);
        let w = DeviceBuffer::<f32>::zeros(g.nnz());
        for kernel in registry::sddmm_kernels(&g) {
            // Skip the deliberately pathological baseline at bench sizes.
            if kernel.name() == "CuSparse" {
                continue;
            }
            group.bench_with_input(BenchmarkId::new(kernel.name(), dim), &dim, |b, &dim| {
                b.iter(|| kernel.run(&gpu, &x, &y, dim, &w).unwrap());
            });
        }
    }
    group.finish();
}

fn bench_spmm(c: &mut Criterion) {
    let g = bench_graph();
    let gpu = Gpu::new(figure_gpu_spec());
    let mut group = c.benchmark_group("spmm_sim");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    for dim in [16usize, 32] {
        let n = g.num_vertices();
        let x = DeviceBuffer::from_slice(&vec![0.5f32; n * dim]);
        let w = DeviceBuffer::from_slice(&vec![1.0f32; g.nnz()]);
        let y = DeviceBuffer::<f32>::zeros(n * dim);
        for kernel in registry::spmm_kernels(&g) {
            if kernel.name() == "FeatGraph" {
                continue; // tuning sweep too slow for micro-benching
            }
            group.bench_with_input(BenchmarkId::new(kernel.name(), dim), &dim, |b, &dim| {
                b.iter(|| kernel.run(&gpu, &w, &x, dim, &y).unwrap());
            });
        }
    }
    group.finish();
}

fn bench_spmv(c: &mut Criterion) {
    let g = bench_graph();
    let gpu = Gpu::new(figure_gpu_spec());
    let mut group = c.benchmark_group("spmv_sim");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    let n = g.num_vertices();
    let x = DeviceBuffer::from_slice(&vec![0.5f32; n]);
    let w = DeviceBuffer::from_slice(&vec![1.0f32; g.nnz()]);
    let y = DeviceBuffer::<f32>::zeros(n);
    for kernel in registry::spmv_kernels(&g) {
        group.bench_function(kernel.name(), |b| {
            b.iter(|| kernel.run(&gpu, &w, &x, &y).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sddmm, bench_spmm, bench_spmv);
criterion_main!(benches);
