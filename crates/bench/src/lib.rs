//! # gnnone-bench — the figure/table reproduction harness
//!
//! One binary per table/figure of the paper's evaluation (§5); each prints
//! the same rows/series the paper reports and writes a JSON record under
//! `results/`. Shared plumbing lives here:
//!
//! * [`cli`] — tiny flag parser (`--scale`, `--dims`, `--datasets`,
//!   `--epochs`, `--out`);
//! * [`runner`] — dataset loading, deterministic feature generation,
//!   kernel sweeps, speedup aggregation;
//! * [`report`] — fixed-width table printing and JSON output;
//! * [`profiling`] — `--trace` / `--metrics` wiring (see
//!   `docs/PROFILING.md`); results are inspected with the `gnnone-prof`
//!   binary.
//!
//! ## Device scaling
//!
//! Figures run on [`gnnone_sim::GpuSpec::a100_scaled`]`(4)` — an A100 with
//! a quarter of the SMs and bandwidth but identical per-SM behaviour —
//! because the synthetic datasets are themselves scaled down ~64–1000×
//! from the paper's. This keeps the device in the saturated regime the
//! paper's 100M-edge graphs put the real A100 in. See DESIGN.md.

pub mod cli;
pub mod profiling;
pub mod report;
pub mod runner;

use gnnone_sim::GpuSpec;

/// Device spec used by all figure binaries.
pub fn figure_gpu_spec() -> GpuSpec {
    GpuSpec::a100_scaled(4)
}

/// Paper-scale vertex threshold past which Sputnik and cuSPARSE SDDMM
/// error out (§5.1: "encountered errors when |V| exceeds … around 2
/// Million").
pub const SDDMM_VERTEX_ERROR_THRESHOLD: u64 = 2_000_000;
