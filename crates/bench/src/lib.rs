//! # gnnone-bench — the figure/table reproduction harness
//!
//! One binary per table/figure of the paper's evaluation (§5); each prints
//! the same rows/series the paper reports and writes a JSON record under
//! `results/`. Shared plumbing lives here:
//!
//! * [`cli`] — tiny flag parser (`--scale`, `--dims`, `--datasets`,
//!   `--epochs`, `--out`);
//! * [`runner`] — dataset loading, deterministic feature generation,
//!   kernel sweeps, speedup aggregation;
//! * [`report`] — fixed-width table printing and JSON output;
//! * [`profiling`] — `--trace` / `--metrics` wiring (see
//!   `docs/PROFILING.md`); results are inspected with the `gnnone-prof`
//!   binary;
//! * [`verify`] — `--verify` static pre-launch verification wiring (see
//!   `docs/STATIC_ANALYSIS.md`);
//! * [`shard`] — the shard-fault sweep behind `gnnone-prof shard`:
//!   every registry kernel × shard count × shard fault × seed, with
//!   bitwise recovery acceptance against the fault-free unsharded run
//!   (see `docs/ROBUSTNESS.md` §7).
//!
//! ## Device scaling
//!
//! Figures run on [`gnnone_sim::GpuSpec::a100_scaled`]`(4)` — an A100 with
//! a quarter of the SMs and bandwidth but identical per-SM behaviour —
//! because the synthetic datasets are themselves scaled down ~64–1000×
//! from the paper's. This keeps the device in the saturated regime the
//! paper's 100M-edge graphs put the real A100 in. See DESIGN.md.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chaos;
pub mod cli;
pub mod fuse;
pub mod fuzz;
pub mod native;
pub mod profiling;
pub mod report;
pub mod runner;
pub mod serve_bench;
pub mod shard;
pub mod verify;

use gnnone_sim::{GnnOneError, GpuSpec};

/// Device spec used by all figure binaries.
pub fn figure_gpu_spec() -> GpuSpec {
    GpuSpec::a100_scaled(4)
}

/// Wraps a figure binary's fallible body into a process exit code.
///
/// On failure — a structured [`GnnOneError`] *or* an uncaught panic — the
/// binary prints one machine-parseable line
/// (`<name>: error: {"kind": ...}`) to stderr and exits non-zero instead
/// of dying mid-table with a backtrace as its only output.
pub fn figure_main(
    name: &str,
    run: impl FnOnce() -> Result<(), GnnOneError>,
) -> std::process::ExitCode {
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(run));
    let error = match outcome {
        Ok(Ok(())) => return std::process::ExitCode::SUCCESS,
        Ok(Err(e)) => e,
        Err(payload) => {
            let detail = if let Some(s) = payload.downcast_ref::<&'static str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            };
            GnnOneError::Panic {
                context: name.to_string(),
                detail,
            }
        }
    };
    eprintln!("{name}: error: {}", error.to_json().to_string_compact());
    std::process::ExitCode::FAILURE
}

/// Maps an I/O failure to a [`GnnOneError::Io`] with the path attached.
pub fn io_error(path: &str, e: std::io::Error) -> GnnOneError {
    GnnOneError::Io {
        path: path.to_string(),
        detail: e.to_string(),
    }
}

/// Paper-scale vertex threshold past which Sputnik and cuSPARSE SDDMM
/// error out (§5.1: "encountered errors when |V| exceeds … around 2
/// Million").
pub const SDDMM_VERTEX_ERROR_THRESHOLD: u64 = 2_000_000;
