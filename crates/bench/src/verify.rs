//! Static-verification wiring: the bridge between the figure binaries'
//! flags and [`gnnone_kernels::analysis`].
//!
//! Two entry points:
//!
//! * [`static_preflight`] — the `--verify` / native-`--sanitize` hook the
//!   shared runner calls before building a backend. It re-generates the
//!   selected datasets (generation is deterministic, so the verified graph
//!   *is* the swept graph), runs the symbolic verifier over every registry
//!   kernel under the execution model the sweep will use, and refuses the
//!   run unless every obligation is `Proved`. All reporting goes to
//!   stderr, so tables and `--out` files stay byte-identical with the
//!   flag on.
//! * [`verify_datasets`] — the full sweep behind `gnnone-prof verify`:
//!   both execution models per registry kernel plus the 24-point config
//!   lattice for the tunable GNNOne kernels.

use gnnone_kernels::analysis::{self, verdicts_to_json, ExecModel, KernelVerdict, Verdict};
use gnnone_kernels::backend::BackendKind;
use gnnone_sim::jsonio::Json;
use gnnone_sim::GnnOneError;

use crate::cli::Options;
use crate::runner;

/// Verdicts for one (dataset, f) cell of a verification sweep.
pub struct DatasetVerdicts {
    /// Table 1 dataset id.
    pub dataset: String,
    /// Feature length verified at.
    pub f: usize,
    /// One verdict per registry kernel × model.
    pub verdicts: Vec<KernelVerdict>,
    /// Lattice verdicts (config label, verdict) — only populated by the
    /// full `gnnone-prof verify` sweep, empty in preflight mode.
    pub lattice: Vec<(String, KernelVerdict)>,
}

impl DatasetVerdicts {
    /// Every obligation proved (registry and lattice).
    pub fn all_proved(&self) -> bool {
        self.verdicts.iter().all(|v| v.verdict.is_proved())
            && self.lattice.iter().all(|(_, v)| v.verdict.is_proved())
    }

    /// Obligations that failed (registry and lattice), with a display
    /// label for each.
    pub fn failures(&self) -> Vec<(String, &KernelVerdict)> {
        let mut out = Vec::new();
        for v in &self.verdicts {
            if !v.verdict.is_proved() {
                out.push((format!("{} ({})", v.kernel, v.op), v));
            }
        }
        for (cfg, v) in &self.lattice {
            if !v.verdict.is_proved() {
                out.push((format!("{} ({}) @ {cfg}", v.kernel, v.op), v));
            }
        }
        out
    }

    /// JSON form (jsonio): dataset, f, and the verdict arrays.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("dataset", Json::Str(self.dataset.clone())),
            ("f", Json::U64(self.f as u64)),
            ("kernels", verdicts_to_json(&self.verdicts)),
            (
                "lattice",
                Json::Arr(
                    self.lattice
                        .iter()
                        .map(|(cfg, v)| {
                            let Json::Obj(mut fields) = v.to_json() else {
                                unreachable!("KernelVerdict::to_json is an object")
                            };
                            fields.insert(0, ("config".into(), Json::Str(cfg.clone())));
                            Json::Obj(fields)
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Serializes a whole verification sweep (jsonio, stable key order).
pub fn sweep_to_json(cells: &[DatasetVerdicts]) -> Json {
    let total: usize = cells
        .iter()
        .map(|c| c.verdicts.len() + c.lattice.len())
        .sum();
    let failed: usize = cells.iter().map(|c| c.failures().len()).sum();
    Json::obj(vec![
        ("obligations", Json::U64(total as u64)),
        ("failed", Json::U64(failed as u64)),
        ("all_proved", Json::Bool(failed == 0)),
        (
            "datasets",
            Json::Arr(cells.iter().map(DatasetVerdicts::to_json).collect()),
        ),
    ])
}

fn lattice_label(cfg: &gnnone_kernels::gnnone::GnnOneConfig) -> String {
    format!(
        "cache={} sched={:?} vec={} reuse={}",
        cfg.cache_size, cfg.schedule, cfg.vectorize, cfg.data_reuse
    )
}

/// Runs the verifier over every selected dataset × feature length.
/// `models` picks the execution model(s); `with_lattice` adds the
/// 24-point config sweep for the tunable GNNOne kernels.
pub fn verify_datasets(
    opts: &Options,
    models: &[ExecModel],
    with_lattice: bool,
) -> Result<Vec<DatasetVerdicts>, GnnOneError> {
    let specs =
        runner::try_selected_specs(opts).map_err(|detail| GnnOneError::Config { detail })?;
    let mut cells = Vec::new();
    for spec in &specs {
        let ld = runner::load(spec, opts.scale);
        for &f in &opts.dims {
            let mut verdicts = Vec::new();
            for &model in models {
                verdicts.extend(analysis::verify_graph(&ld.graph, f, model));
            }
            verdicts.retain(|v| crate::chaos::kernel_selected(&opts.kernels, &v.kernel));
            let mut lattice: Vec<(String, KernelVerdict)> = if with_lattice {
                analysis::verify_lattice(&ld.graph, f)
                    .into_iter()
                    .map(|(cfg, v)| (lattice_label(&cfg), v))
                    .collect()
            } else {
                Vec::new()
            };
            lattice.retain(|(_, v)| crate::chaos::kernel_selected(&opts.kernels, &v.kernel));
            cells.push(DatasetVerdicts {
                dataset: spec.id.to_string(),
                f,
                verdicts,
                lattice,
            });
        }
    }
    Ok(cells)
}

fn describe(v: &Verdict) -> String {
    match v {
        Verdict::Proved => "proved".to_string(),
        Verdict::Refuted(w) => format!("REFUTED: {}", w.detail),
        Verdict::Unknown { reason } => format!("UNKNOWN: {reason}"),
    }
}

/// The `--verify` / native-`--sanitize` preflight the shared runner calls
/// before a sweep. A no-op unless one of those flags is set. On failure
/// the sweep never starts: the error carries the first failed obligation.
///
/// With `--backend native --sanitize <path>` the full verdict list is
/// written to `<path>` (the static analogue of the dynamic sanitizer
/// report) whether or not verification passes.
pub fn static_preflight(opts: &Options) -> Result<(), GnnOneError> {
    let native = opts.backend == BackendKind::Native;
    let static_report = native.then(|| opts.sanitize.clone()).flatten();
    if !opts.verify && static_report.is_none() {
        return Ok(());
    }
    let model = if native {
        ExecModel::Native
    } else {
        ExecModel::Sim
    };
    let cells = verify_datasets(opts, &[model], false)?;
    let total: usize = cells.iter().map(|c| c.verdicts.len()).sum();
    let failures: Vec<(String, String, usize, String)> = cells
        .iter()
        .flat_map(|c| {
            c.failures()
                .into_iter()
                .map(move |(label, v)| (c.dataset.clone(), label, c.f, describe(&v.verdict)))
        })
        .collect();
    eprintln!(
        "verify[{}]: {} obligation(s) over {} dataset×f cell(s): {}",
        model.as_str(),
        total,
        cells.len(),
        if failures.is_empty() {
            "all proved".to_string()
        } else {
            format!("{} FAILED", failures.len())
        }
    );
    for (dataset, label, f, what) in &failures {
        eprintln!("  {dataset} f={f} {label}: {what}");
    }
    if let Some(path) = &static_report {
        std::fs::write(path, sweep_to_json(&cells).to_string_pretty())
            .map_err(|e| crate::io_error(path, e))?;
        eprintln!("verify: static verdict report written to {path}");
    }
    match failures.into_iter().next() {
        None => Ok(()),
        Some((dataset, label, f, what)) => Err(GnnOneError::Config {
            detail: format!(
                "static verification failed — {label} on {dataset} at f={f}: {what} \
                 (launch refused; see stderr for the full list)"
            ),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> Options {
        Options {
            scale: gnnone_sparse::datasets::Scale::Tiny,
            dims: vec![8],
            datasets: vec!["G0".into()],
            ..Default::default()
        }
    }

    #[test]
    fn preflight_is_inert_without_flags() {
        assert!(static_preflight(&tiny_opts()).is_ok());
    }

    #[test]
    fn preflight_proves_the_registry_on_both_backends() {
        let mut opts = tiny_opts();
        opts.verify = true;
        static_preflight(&opts).unwrap();
        opts.backend = BackendKind::Native;
        static_preflight(&opts).unwrap();
    }

    #[test]
    fn native_sanitize_writes_a_static_verdict_report() {
        let dir = std::env::temp_dir().join("gnnone_verify_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("static_sanitize.json");
        let opts = Options {
            backend: BackendKind::Native,
            sanitize: Some(path.to_string_lossy().into_owned()),
            ..tiny_opts()
        };
        static_preflight(&opts).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let doc = gnnone_sim::jsonio::parse(&text).unwrap();
        assert_eq!(doc.get("all_proved"), Some(&Json::Bool(true)));
        assert!(doc.get("datasets").is_some());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn kernels_filter_restricts_the_verification_sweep() {
        let mut opts = tiny_opts();
        opts.kernels = vec!["gnnone".into()];
        let cells = verify_datasets(&opts, &[ExecModel::Sim, ExecModel::Native], true).unwrap();
        let c = &cells[0];
        assert!(!c.verdicts.is_empty());
        assert!(c.verdicts.len() < 42);
        assert!(c
            .verdicts
            .iter()
            .all(|v| v.kernel.eq_ignore_ascii_case("GnnOne")));
        assert!(c
            .lattice
            .iter()
            .all(|(_, v)| v.kernel.eq_ignore_ascii_case("GnnOne")));
    }

    #[test]
    fn full_sweep_covers_lattice_and_both_models() {
        let cells =
            verify_datasets(&tiny_opts(), &[ExecModel::Sim, ExecModel::Native], true).unwrap();
        assert_eq!(cells.len(), 1);
        let c = &cells[0];
        // 21 registry kernels × 2 models.
        assert_eq!(c.verdicts.len(), 42);
        // 24 lattice points × 2 models × 2 tunable kernels.
        assert_eq!(c.lattice.len(), 96);
        assert!(c.all_proved(), "{:?}", c.failures());
        let json = sweep_to_json(&cells).to_string_compact();
        assert!(json.contains("\"all_proved\":true"), "{json}");
    }
}
