//! Table printing and JSON result records.
//!
//! All serialization goes through the dependency-free
//! [`gnnone_sim::jsonio`] path: [`write_json`] accepts anything
//! implementing [`ToJson`] (tables, or a figure binary's own row records),
//! and [`Table::to_json`] / [`Table::from_json`] round-trip result sets so
//! tooling and tests never need an external JSON crate. The serde derives
//! on [`Table`] / [`Cell`] remain as compatibility markers only.

use gnnone_sim::jsonio::Json;
use serde::Serialize;
use std::io::Write;

/// Types that serialize through the dependency-free [`jsonio`] path —
/// the bound [`write_json`] writes through.
///
/// [`jsonio`]: gnnone_sim::jsonio
pub trait ToJson {
    /// The JSON form of `self`.
    fn to_json(&self) -> Json;
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        self.as_slice().to_json()
    }
}

/// One measurement cell: simulated milliseconds or a failure tag.
#[derive(Debug, Clone, Serialize, PartialEq)]
pub enum Cell {
    /// Simulated time in milliseconds.
    Ms(f64),
    /// The system failed as the paper reports (OOM, grid overflow, crash).
    Err(String),
}

impl Cell {
    /// Milliseconds if the run succeeded.
    pub fn ms(&self) -> Option<f64> {
        match self {
            Cell::Ms(v) => Some(*v),
            Cell::Err(_) => None,
        }
    }

    /// Serializes through the dependency-free JSON path.
    pub fn to_json(&self) -> Json {
        match self {
            Cell::Ms(v) => Json::obj(vec![("ms", Json::F64(*v))]),
            Cell::Err(tag) => Json::obj(vec![("err", Json::Str(tag.clone()))]),
        }
    }

    /// Inverse of [`Cell::to_json`].
    pub fn from_json(j: &Json) -> Result<Cell, String> {
        if let Some(ms) = j.get("ms").and_then(Json::as_f64) {
            Ok(Cell::Ms(ms))
        } else if let Some(tag) = j.get("err").and_then(Json::as_str) {
            Ok(Cell::Err(tag.to_string()))
        } else {
            Err("cell must carry \"ms\" or \"err\"".to_string())
        }
    }
}

impl std::fmt::Display for Cell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Cell::Ms(v) => write!(f, "{v:.3}"),
            Cell::Err(tag) => write!(f, "{tag}"),
        }
    }
}

/// A figure's result set: rows = datasets, cols = systems.
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct Table {
    /// Figure/table identifier ("fig3-dim32").
    pub title: String,
    /// Column headers (system names), first column is the reference.
    pub systems: Vec<String>,
    /// Row labels (dataset IDs).
    pub rows: Vec<String>,
    /// `cells[row][col]`.
    pub cells: Vec<Vec<Cell>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: &str, systems: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            systems: systems.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            cells: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push_row(&mut self, label: &str, cells: Vec<Cell>) {
        assert_eq!(cells.len(), self.systems.len());
        self.rows.push(label.to_string());
        self.cells.push(cells);
    }

    /// Speedup of column 0 (the reference system) over column `col` for
    /// each row where both succeeded.
    pub fn speedups_vs(&self, col: usize) -> Vec<(String, f64)> {
        let mut out = Vec::new();
        for (r, row) in self.cells.iter().enumerate() {
            if let (Some(base), Some(other)) = (row[0].ms(), row[col].ms()) {
                if base > 0.0 {
                    out.push((self.rows[r].clone(), other / base));
                }
            }
        }
        out
    }

    /// Geometric mean of the speedups of column 0 over column `col`.
    pub fn geomean_speedup_vs(&self, col: usize) -> Option<f64> {
        let sp = self.speedups_vs(col);
        if sp.is_empty() {
            return None;
        }
        let log_sum: f64 = sp.iter().map(|(_, s)| s.ln()).sum();
        Some((log_sum / sp.len() as f64).exp())
    }

    /// Arithmetic mean of the speedups (what the paper's averages use).
    pub fn mean_speedup_vs(&self, col: usize) -> Option<f64> {
        let sp = self.speedups_vs(col);
        if sp.is_empty() {
            return None;
        }
        Some(sp.iter().map(|(_, s)| s).sum::<f64>() / sp.len() as f64)
    }

    /// Prints as a fixed-width text table with a speedup summary.
    pub fn print(&self) {
        println!("\n=== {} (simulated ms; lower is better) ===", self.title);
        print!("{:<10}", "dataset");
        for s in &self.systems {
            print!("{s:>14}");
        }
        println!();
        for (r, row) in self.cells.iter().enumerate() {
            print!("{:<10}", self.rows[r]);
            for c in row {
                print!("{:>14}", c.to_string());
            }
            println!();
        }
        for col in 1..self.systems.len() {
            if let (Some(mean), Some(geo)) =
                (self.mean_speedup_vs(col), self.geomean_speedup_vs(col))
            {
                let sp = self.speedups_vs(col);
                let min = sp.iter().map(|(_, s)| *s).fold(f64::INFINITY, f64::min);
                let max = sp.iter().map(|(_, s)| *s).fold(0.0, f64::max);
                println!(
                    "  {} vs {}: mean {:.2}x  geomean {:.2}x  min {:.2}x  max {:.2}x",
                    self.systems[0], self.systems[col], mean, geo, min, max
                );
            }
        }
    }

    /// Serializes through the dependency-free JSON path (the shape
    /// [`write_json`] and [`write_plain`] emit).
    pub fn to_json(&self) -> Json {
        let strs = |v: &[String]| Json::Arr(v.iter().map(|s| Json::Str(s.clone())).collect());
        Json::obj(vec![
            ("title", Json::Str(self.title.clone())),
            ("systems", strs(&self.systems)),
            ("rows", strs(&self.rows)),
            (
                "cells",
                Json::Arr(
                    self.cells
                        .iter()
                        .map(|row| Json::Arr(row.iter().map(Cell::to_json).collect()))
                        .collect(),
                ),
            ),
        ])
    }

    /// Inverse of [`Table::to_json`].
    pub fn from_json(j: &Json) -> Result<Table, String> {
        let str_arr = |key: &str| -> Result<Vec<String>, String> {
            j.get(key)
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("missing array field {key}"))?
                .iter()
                .map(|s| {
                    s.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| format!("non-string entry in {key}"))
                })
                .collect()
        };
        let title = j
            .get("title")
            .and_then(Json::as_str)
            .ok_or("missing string field title")?
            .to_string();
        let systems = str_arr("systems")?;
        let rows = str_arr("rows")?;
        let cells = j
            .get("cells")
            .and_then(Json::as_arr)
            .ok_or("missing array field cells")?
            .iter()
            .map(|row| {
                row.as_arr()
                    .ok_or("cells rows must be arrays".to_string())?
                    .iter()
                    .map(Cell::from_json)
                    .collect()
            })
            .collect::<Result<Vec<Vec<Cell>>, String>>()?;
        Ok(Table {
            title,
            systems,
            rows,
            cells,
        })
    }
}

impl ToJson for Cell {
    fn to_json(&self) -> Json {
        Cell::to_json(self)
    }
}

impl ToJson for Table {
    fn to_json(&self) -> Json {
        Table::to_json(self)
    }
}

/// Writes any [`ToJson`] record as pretty JSON, creating parent dirs.
pub fn write_json<T: ToJson + ?Sized>(path: &str, value: &T) -> std::io::Result<()> {
    if let Some(parent) = std::path::Path::new(path).parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut file = std::fs::File::create(path)?;
    file.write_all(value.to_json().to_string_pretty().as_bytes())?;
    file.write_all(b"\n")
}

/// Writes a table set through the dependency-free [`Table::to_json`] path,
/// creating parent dirs. The output is byte-stable across platforms and
/// toolchains (no float-formatting library in the loop beyond our own),
/// which is what CI's golden-parity job diffs against.
pub fn write_plain(path: &str, tables: &[Table]) -> std::io::Result<()> {
    if let Some(parent) = std::path::Path::new(path).parent() {
        std::fs::create_dir_all(parent)?;
    }
    let json = Json::Arr(tables.iter().map(Table::to_json).collect());
    let mut file = std::fs::File::create(path)?;
    file.write_all(json.to_string_pretty().as_bytes())?;
    file.write_all(b"\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let mut t = Table::new("test", &["GnnOne", "Slowpoke"]);
        t.push_row("G0", vec![Cell::Ms(1.0), Cell::Ms(4.0)]);
        t.push_row("G1", vec![Cell::Ms(2.0), Cell::Ms(2.0)]);
        t.push_row("G2", vec![Cell::Ms(1.0), Cell::Err("OOM".into())]);
        t
    }

    #[test]
    fn speedups_skip_failures() {
        let t = table();
        let sp = t.speedups_vs(1);
        assert_eq!(sp.len(), 2);
        assert_eq!(sp[0].1, 4.0);
        assert_eq!(sp[1].1, 1.0);
    }

    #[test]
    fn means() {
        let t = table();
        assert_eq!(t.mean_speedup_vs(1).unwrap(), 2.5);
        assert!((t.geomean_speedup_vs(1).unwrap() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn cell_display() {
        assert_eq!(Cell::Ms(1.5).to_string(), "1.500");
        assert_eq!(Cell::Err("OOM".into()).to_string(), "OOM");
        assert_eq!(Cell::Err("OOM".into()).ms(), None);
    }

    #[test]
    fn json_roundtrip() {
        let t = table();
        let text = t.to_json().to_string_pretty();
        assert!(text.contains("Slowpoke"));
        assert!(text.contains("OOM"));
        let parsed = gnnone_sim::jsonio::parse(&text).unwrap();
        let back = Table::from_json(&parsed).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn from_json_reports_missing_fields() {
        let j = gnnone_sim::jsonio::parse(r#"{"title": "x"}"#).unwrap();
        let err = Table::from_json(&j).unwrap_err();
        assert!(err.contains("systems"), "{err}");
        assert_eq!(
            Cell::from_json(&gnnone_sim::jsonio::parse("{}").unwrap()).unwrap_err(),
            "cell must carry \"ms\" or \"err\""
        );
    }
}
