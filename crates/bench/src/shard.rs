//! Shard-fault sweep — the engine behind `gnnone-prof shard`.
//!
//! Where the chaos sweep ([`crate::chaos`]) attacks single launches with a
//! misbehaving device, this sweep attacks the *distributed* layer: every
//! registry kernel is run shard-by-shard through the supervised
//! [`ShardedExecutor`] over a multi-pool native topology while one
//! [`ShardFaultKind`] per run is armed at a seeded shard. Each recovered
//! run's final merged output is compared **bitwise** against the same
//! kernel's fault-free *unsharded* launch (inputs are integer-valued
//! `f32`s, so every reduction is exact and order-invariant) and classified
//! into a [`ShardVerdict`]:
//!
//! * `recovered-identical` — the fault fired, the supervision loop retried
//!   the failed shard from its checkpoint, and the merged output is
//!   bit-identical to the fault-free unsharded run;
//! * `clean-not-injected` — the fault never found a target (e.g. a halo
//!   fault on a partition with no halos) and the run was bit-identical
//!   anyway;
//! * `degraded-declined` — retries exhausted and the executor returned the
//!   typed [`ShardAbort`] decline instead of a partial result. Honest, but
//!   a sweep failure: the default policy must absorb one-shot faults;
//! * `unexpected-error` — any other structured failure;
//! * `silent-corruption` — the run "succeeded" but the bits diverged.
//!   **The contract of this sweep is that this verdict never appears.**
//!
//! The sweep also checks fault-free sharded/unsharded bit-parity per
//! (kernel, K) and reports nnz-balance stats for every partition it built.
//! Every verdict reproduces from its `(kernel, dataset, K, fault, seed)`
//! tuple alone — the report prints the exact `gnnone-prof shard` command.
//!
//! [`ShardAbort`]: gnnone_sim::error::ShardAbort

use std::sync::Arc;

use gnnone_kernels::graph::GraphData;
use gnnone_kernels::registry;
use gnnone_kernels::shard::{RetryPolicy, ShardTopology, ShardedExecutor, ShardedReport};
use gnnone_sim::jsonio::Json;
use gnnone_sim::{DeviceBuffer, GnnOneError, ShardFaultKind};
use gnnone_sparse::datasets::{Dataset, Scale};
use gnnone_sparse::PartitionStats;

use crate::chaos::kernel_selected;

/// Shard-fault sweep configuration.
#[derive(Debug, Clone)]
pub struct ShardOpts {
    /// Base fault seed; cell `s` of a fault's seed sweep arms `seed + s`.
    pub seed: u64,
    /// Table 1 ids to sweep at tiny scale (default: G0).
    pub dataset_ids: Vec<String>,
    /// Feature width for the dense operands.
    pub f: usize,
    /// Shard counts K to sweep.
    pub shards: Vec<usize>,
    /// Seeds per (kernel, K, fault) cell.
    pub seeds: u32,
    /// Case-insensitive registry kernel names to sweep (`--kernels`);
    /// empty means every registry kernel.
    pub kernels: Vec<String>,
    /// Total native worker threads split across the K pools
    /// (default: one thread per shard).
    pub threads: Option<usize>,
}

impl Default for ShardOpts {
    fn default() -> Self {
        Self {
            seed: 0xC0FFEE,
            dataset_ids: vec!["G0".to_string()],
            f: 8,
            shards: vec![2, 4, 8],
            seeds: 8,
            kernels: Vec::new(),
            threads: None,
        }
    }
}

/// Classification of one sharded fault-injection run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardVerdict {
    /// Fault fired, failed shard retried from its checkpoint, merged
    /// output bit-identical to the fault-free unsharded run.
    RecoveredIdentical,
    /// Fault found no target; output bit-identical anyway.
    CleanNotInjected,
    /// Retries exhausted — the executor declined with a typed
    /// `ShardAbort` instead of returning a partial result.
    DegradedDeclined,
    /// A structured failure outside the shard-abort taxonomy.
    UnexpectedError,
    /// The run reported success but the merged bits diverged — the
    /// verdict this sweep exists to rule out.
    SilentCorruption,
}

impl ShardVerdict {
    /// Every verdict, for report aggregation.
    pub const ALL: [ShardVerdict; 5] = [
        ShardVerdict::RecoveredIdentical,
        ShardVerdict::CleanNotInjected,
        ShardVerdict::DegradedDeclined,
        ShardVerdict::UnexpectedError,
        ShardVerdict::SilentCorruption,
    ];

    /// Stable lowercase slug.
    pub fn as_str(&self) -> &'static str {
        match self {
            ShardVerdict::RecoveredIdentical => "recovered-identical",
            ShardVerdict::CleanNotInjected => "clean-not-injected",
            ShardVerdict::DegradedDeclined => "degraded-declined",
            ShardVerdict::UnexpectedError => "unexpected-error",
            ShardVerdict::SilentCorruption => "silent-corruption",
        }
    }
}

impl std::fmt::Display for ShardVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One classified (kernel, dataset, K, fault, seed) run.
#[derive(Debug, Clone)]
pub struct ShardCell {
    /// Registry kernel name.
    pub kernel: String,
    /// Kernel family (`sddmm`, `spmm`, `spmv`, `edge-apply`, `fused`).
    pub family: &'static str,
    /// Table 1 dataset id.
    pub dataset: String,
    /// Shard count K.
    pub shards: usize,
    /// The armed shard fault.
    pub fault: ShardFaultKind,
    /// The exact seed armed for this cell.
    pub seed: u64,
    /// Classification.
    pub verdict: ShardVerdict,
    /// Supervision retries spent (0 when the fault never fired).
    pub retries: u32,
    /// Total shard launches, proving checkpointed recovery re-executed
    /// only the failed shard (K + retries for kill/stall, K for
    /// preflight/halo faults).
    pub launches: u32,
    /// Human-readable evidence (recovery note, abort, divergence…).
    pub detail: String,
}

impl ShardCell {
    /// The exact command line that reproduces this cell.
    pub fn reproduce(&self) -> String {
        format!(
            "gnnone-prof shard --datasets {} --shards {} --kernels \"{}\" --seed {:#x} --seeds 1",
            self.dataset, self.shards, self.kernel, self.seed
        )
    }

    /// Serializes for the `--out` report.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("kernel", Json::Str(self.kernel.clone())),
            ("family", Json::Str(self.family.to_string())),
            ("dataset", Json::Str(self.dataset.clone())),
            ("shards", Json::U64(self.shards as u64)),
            ("fault", Json::Str(self.fault.as_str().to_string())),
            ("seed", Json::U64(self.seed)),
            ("verdict", Json::Str(self.verdict.as_str().to_string())),
            ("retries", Json::U64(self.retries as u64)),
            ("launches", Json::U64(self.launches as u64)),
            ("detail", Json::Str(self.detail.clone())),
            ("reproduce", Json::Str(self.reproduce())),
        ])
    }
}

impl std::fmt::Display for ShardCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ({}) / {} / K={} / {} (seed {:#x}): {} — {}",
            self.kernel,
            self.family,
            self.dataset,
            self.shards,
            self.fault,
            self.seed,
            self.verdict,
            self.detail
        )
    }
}

/// One fault-free sharded/unsharded bit-parity check.
#[derive(Debug, Clone)]
pub struct ParityCheck {
    /// Registry kernel name.
    pub kernel: String,
    /// Kernel family.
    pub family: &'static str,
    /// Table 1 dataset id.
    pub dataset: String,
    /// Shard count K.
    pub shards: usize,
    /// `true` when the sharded merge reproduced the unsharded bits.
    pub identical: bool,
    /// First divergence, when any.
    pub detail: String,
}

impl ParityCheck {
    /// Serializes for the `--out` report.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("kernel", Json::Str(self.kernel.clone())),
            ("family", Json::Str(self.family.to_string())),
            ("dataset", Json::Str(self.dataset.clone())),
            ("shards", Json::U64(self.shards as u64)),
            ("identical", Json::Bool(self.identical)),
            ("detail", Json::Str(self.detail.clone())),
        ])
    }
}

/// Partition balance stats for one (dataset, K).
#[derive(Debug, Clone)]
pub struct PartitionSummary {
    /// Table 1 dataset id.
    pub dataset: String,
    /// Balance stats from [`gnnone_sparse::RowPartition::stats`].
    pub stats: PartitionStats,
}

impl PartitionSummary {
    /// Serializes for the `--out` report.
    pub fn to_json(&self) -> Json {
        let Json::Obj(mut fields) = self.stats.to_json() else {
            unreachable!("PartitionStats::to_json is an object")
        };
        fields.insert(0, ("dataset".into(), Json::Str(self.dataset.clone())));
        Json::Obj(fields)
    }
}

/// Outcome of a full shard-fault sweep.
#[derive(Debug)]
pub struct ShardReport {
    /// Base fault seed.
    pub seed: u64,
    /// Feature width used.
    pub f: usize,
    /// Datasets swept.
    pub datasets: Vec<String>,
    /// Shard counts swept.
    pub shards: Vec<usize>,
    /// Every classified (kernel × K × fault × seed) run.
    pub cells: Vec<ShardCell>,
    /// Fault-free sharded/unsharded parity checks, one per (kernel, K).
    pub parity: Vec<ParityCheck>,
    /// Partition balance stats, one per (dataset, K).
    pub partitions: Vec<PartitionSummary>,
}

impl ShardReport {
    /// Number of cells carrying `verdict`.
    pub fn verdict_count(&self, verdict: ShardVerdict) -> usize {
        self.cells.iter().filter(|c| c.verdict == verdict).count()
    }

    /// Cells that violate the sweep contract: silent corruption,
    /// unexpected errors, and degraded declines under the default policy.
    pub fn violations(&self) -> Vec<&ShardCell> {
        self.cells
            .iter()
            .filter(|c| {
                matches!(
                    c.verdict,
                    ShardVerdict::SilentCorruption
                        | ShardVerdict::UnexpectedError
                        | ShardVerdict::DegradedDeclined
                )
            })
            .collect()
    }

    /// `true` when no cell violated the contract and every fault-free
    /// parity check was bit-identical.
    pub fn clean(&self) -> bool {
        self.violations().is_empty() && self.parity.iter().all(|p| p.identical)
    }

    /// Serializes the full report.
    pub fn to_json(&self) -> Json {
        let verdicts = Json::obj(
            ShardVerdict::ALL
                .iter()
                .map(|&v| (v.as_str(), Json::U64(self.verdict_count(v) as u64)))
                .collect(),
        );
        Json::obj(vec![
            ("seed", Json::U64(self.seed)),
            ("f", Json::U64(self.f as u64)),
            (
                "datasets",
                Json::Arr(self.datasets.iter().map(|d| Json::Str(d.clone())).collect()),
            ),
            (
                "shards",
                Json::Arr(self.shards.iter().map(|&k| Json::U64(k as u64)).collect()),
            ),
            ("verdicts", verdicts),
            (
                "partitions",
                Json::Arr(
                    self.partitions
                        .iter()
                        .map(PartitionSummary::to_json)
                        .collect(),
                ),
            ),
            (
                "parity",
                Json::Arr(self.parity.iter().map(ParityCheck::to_json).collect()),
            ),
            (
                "cells",
                Json::Arr(self.cells.iter().map(ShardCell::to_json).collect()),
            ),
            ("clean", Json::Bool(self.clean())),
        ])
    }

    /// Renders the recovery matrix: one row per (kernel, K), one column
    /// per shard fault, one letter per worst verdict over the seed sweep
    /// (`R`ecovered, `·` not injected, `D`eclined, `E`rror, `!` silent
    /// corruption).
    pub fn recovery_matrix(&self) -> String {
        fn letter(v: ShardVerdict) -> char {
            match v {
                ShardVerdict::RecoveredIdentical => 'R',
                ShardVerdict::CleanNotInjected => '·',
                ShardVerdict::DegradedDeclined => 'D',
                ShardVerdict::UnexpectedError => 'E',
                ShardVerdict::SilentCorruption => '!',
            }
        }
        // Worst-first severity order for folding a seed sweep to a letter.
        fn severity(v: ShardVerdict) -> u8 {
            match v {
                ShardVerdict::SilentCorruption => 4,
                ShardVerdict::UnexpectedError => 3,
                ShardVerdict::DegradedDeclined => 2,
                ShardVerdict::RecoveredIdentical => 1,
                ShardVerdict::CleanNotInjected => 0,
            }
        }
        let lattice = ShardFaultKind::lattice();
        let mut out = String::new();
        for ds in &self.datasets {
            for &k in &self.shards {
                out.push_str(&format!(
                    "dataset {ds}, K={k} (base seed {:#x}, {} seed(s)/cell):\n",
                    self.seed,
                    self.cells
                        .iter()
                        .filter(|c| &c.dataset == ds && c.shards == k)
                        .map(|c| c.seed)
                        .collect::<std::collections::BTreeSet<_>>()
                        .len()
                        .max(1)
                ));
                let kernels: Vec<(String, &'static str)> = {
                    let mut seen: Vec<(String, &'static str)> = Vec::new();
                    for c in self
                        .cells
                        .iter()
                        .filter(|c| &c.dataset == ds && c.shards == k)
                    {
                        if !seen.iter().any(|(n, f)| *n == c.kernel && *f == c.family) {
                            seen.push((c.kernel.clone(), c.family));
                        }
                    }
                    seen
                };
                let width = kernels
                    .iter()
                    .map(|(n, f)| n.len() + f.len() + 3)
                    .max()
                    .unwrap_or(6)
                    .max(6);
                out.push_str(&format!("  {:width$}", "kernel"));
                for fk in &lattice {
                    out.push_str(&format!(" {:>5}", column_tag(*fk)));
                }
                out.push('\n');
                for (name, family) in kernels {
                    let label = format!("{name} ({family})");
                    out.push_str(&format!("  {label:width$}"));
                    for fk in &lattice {
                        let worst = self
                            .cells
                            .iter()
                            .filter(|c| {
                                &c.dataset == ds
                                    && c.shards == k
                                    && c.kernel == name
                                    && c.family == family
                                    && c.fault == *fk
                            })
                            .map(|c| c.verdict)
                            .max_by_key(|&v| severity(v));
                        let ch = worst.map(letter).unwrap_or('?');
                        out.push_str(&format!(" {ch:>5}"));
                    }
                    out.push('\n');
                }
            }
        }
        out.push_str(
            "  R=recovered-identical ·=not-injected D=degraded-declined \
             E=unexpected-error !=silent-corruption\n",
        );
        out
    }
}

/// Short column header per shard fault.
fn column_tag(fault: ShardFaultKind) -> &'static str {
    match fault {
        ShardFaultKind::ShardKill => "kill",
        ShardFaultKind::ShardStall => "stall",
        ShardFaultKind::HaloDrop => "halo",
        ShardFaultKind::TransientShardLaunch => "trns",
    }
}

/// Integer-valued pseudo-features (see [`crate::chaos`]): exact `f32`
/// arithmetic makes bitwise sharded/unsharded comparison meaningful.
fn int_features(n: usize, modulus: usize, offset: f32) -> Vec<f32> {
    (0..n).map(|i| (i % modulus) as f32 - offset).collect()
}

/// A boxed sharded launch: run the kernel through the executor, returning
/// the merged output (fused: `y` then `alpha`, concatenated) and the
/// supervision report.
type ShardRun<'a> =
    Box<dyn Fn(&ShardedExecutor) -> Result<(Vec<f32>, ShardedReport), GnnOneError> + 'a>;

/// One kernel under test: its sharded launch plus the bit-exact output of
/// the same kernel's fault-free unsharded native run.
struct ShardProbe<'a> {
    name: String,
    family: &'static str,
    reference: Vec<f32>,
    run: ShardRun<'a>,
}

/// Runs the full shard-fault sweep: every selected registry kernel ×
/// shard count × shard fault × seed, plus fault-free parity and
/// partition stats.
pub fn run_shard_sweep(opts: &ShardOpts) -> Result<ShardReport, GnnOneError> {
    let mut report = ShardReport {
        seed: opts.seed,
        f: opts.f,
        datasets: Vec::new(),
        shards: opts.shards.clone(),
        cells: Vec::new(),
        parity: Vec::new(),
        partitions: Vec::new(),
    };
    if opts.shards.is_empty() {
        return Err(GnnOneError::Config {
            detail: "shard sweep needs at least one shard count".to_string(),
        });
    }
    for id in &opts.dataset_ids {
        let ds = Dataset::try_by_id(id, Scale::Tiny)?;
        report.datasets.push(ds.spec.id.to_string());
        sweep_dataset(&ds, opts, &mut report)?;
    }
    Ok(report)
}

fn sweep_dataset(
    ds: &Dataset,
    opts: &ShardOpts,
    report: &mut ShardReport,
) -> Result<(), GnnOneError> {
    let graph = Arc::new(GraphData::new(ds.coo.clone()));
    let nv = graph.num_vertices();
    let nnz = graph.nnz();
    let f = opts.f;

    let x = Arc::new(int_features(nv * f, 7, 3.0));
    let z = Arc::new(int_features(nv * f, 5, 2.0));
    let w: Arc<Vec<f32>> = Arc::new((0..nnz).map(|e| ((e % 4) + 1) as f32).collect());
    let el = Arc::new(int_features(nv, 3, 1.0));
    let er = Arc::new(int_features(nv, 9, 4.0));

    // Reference device: one unsharded native engine.
    let eng = gnnone_kernels::backend::NativeEngine::with_threads(opts.threads.unwrap_or(2))
        .map_err(|detail| GnnOneError::Config { detail })?;
    let dx = DeviceBuffer::from_slice(&x);
    let dz = DeviceBuffer::from_slice(&z);
    let dw = DeviceBuffer::from_slice(&w);
    let del = DeviceBuffer::from_slice(&el);
    let der = DeviceBuffer::from_slice(&er);

    let mut probes: Vec<ShardProbe> = Vec::new();
    for k in registry::sddmm_kernels(&graph) {
        let out = DeviceBuffer::<f32>::zeros(nnz);
        k.run_native(&eng, &dx, &dz, f, &out)
            .map_err(GnnOneError::from)?;
        let name = k.name().to_string();
        let (by_name, x, z) = (name.clone(), Arc::clone(&x), Arc::clone(&z));
        probes.push(ShardProbe {
            name,
            family: "sddmm",
            reference: out.to_vec(),
            run: Box::new(move |exec| {
                exec.run_sddmm(
                    &|g| registry::sddmm_by_name(g, &by_name).expect("registry kernel"),
                    &x,
                    &z,
                    f,
                )
            }),
        });
    }
    for k in registry::spmm_kernels(&graph)
        .into_iter()
        .chain(registry::spmm_discussion_kernels(&graph))
        .chain(registry::spmm_format_kernels(&graph))
    {
        let out = DeviceBuffer::<f32>::zeros(nv * f);
        k.run_native(&eng, &dw, &dx, f, &out)
            .map_err(GnnOneError::from)?;
        let name = k.name().to_string();
        let (by_name, w, x) = (name.clone(), Arc::clone(&w), Arc::clone(&x));
        probes.push(ShardProbe {
            name,
            family: "spmm",
            reference: out.to_vec(),
            run: Box::new(move |exec| {
                exec.run_spmm(
                    &|g| registry::spmm_by_name(g, &by_name).expect("registry kernel"),
                    &w,
                    &x,
                    f,
                )
            }),
        });
    }
    for k in registry::spmv_class_kernels(&graph) {
        let out = DeviceBuffer::<f32>::zeros(nv);
        k.run_native(&eng, &dw, &del, &out)
            .map_err(GnnOneError::from)?;
        let name = k.name().to_string();
        let (by_name, w, el) = (name.clone(), Arc::clone(&w), Arc::clone(&el));
        probes.push(ShardProbe {
            name,
            family: "spmv",
            reference: out.to_vec(),
            run: Box::new(move |exec| {
                exec.run_spmv(
                    &|g| registry::spmv_by_name(g, &by_name).expect("registry kernel"),
                    &w,
                    &el,
                )
            }),
        });
    }
    for k in registry::edge_apply_kernels(&graph) {
        let out = DeviceBuffer::<f32>::zeros(nnz);
        k.run_native(&eng, &del, &der, &out)
            .map_err(GnnOneError::from)?;
        let name = k.name().to_string();
        let (by_name, el, er) = (name.clone(), Arc::clone(&el), Arc::clone(&er));
        probes.push(ShardProbe {
            name,
            family: "edge-apply",
            reference: out.to_vec(),
            run: Box::new(move |exec| {
                exec.run_edge_apply(
                    &|g| registry::edge_apply_by_name(g, &by_name).expect("registry kernel"),
                    &el,
                    &er,
                )
            }),
        });
    }
    for k in registry::fused_kernels(&graph) {
        let out = DeviceBuffer::<f32>::zeros(nv * f);
        let alpha = DeviceBuffer::<f32>::zeros(nnz);
        k.run_native(&eng, &dz, &del, &der, f, &out, Some(&alpha))
            .map_err(GnnOneError::from)?;
        let mut reference = out.to_vec();
        reference.extend(alpha.to_vec());
        let name = k.name().to_string();
        let (by_name, z, el, er) = (
            name.clone(),
            Arc::clone(&z),
            Arc::clone(&el),
            Arc::clone(&er),
        );
        probes.push(ShardProbe {
            name,
            family: "fused",
            reference,
            run: Box::new(move |exec| {
                exec.run_fused(
                    &|g| registry::fused_by_name(g, &by_name).expect("registry kernel"),
                    &z,
                    &el,
                    &er,
                    f,
                )
                .map(|(mut y, alpha, rep)| {
                    y.extend(alpha);
                    (y, rep)
                })
            }),
        });
    }
    probes.retain(|p| kernel_selected(&opts.kernels, &p.name));

    let dataset = ds.spec.id.to_string();
    for &k in &opts.shards {
        let topo = ShardTopology::native(opts.threads.unwrap_or(k), k)?;
        let mut exec = ShardedExecutor::new(Arc::clone(&graph), k, topo)?;
        exec.set_policy(RetryPolicy::default());
        report.partitions.push(PartitionSummary {
            dataset: dataset.clone(),
            stats: exec.partition().stats(),
        });

        for probe in &probes {
            // Fault-free parity first: the baseline the fault cells rest on.
            exec.clear_fault();
            let (identical, detail) = match (probe.run)(&exec) {
                Ok((out, _)) => {
                    if bits(&out) == bits(&probe.reference) {
                        (true, String::new())
                    } else {
                        (false, first_divergence(&out, &probe.reference))
                    }
                }
                Err(e) => (false, format!("fault-free sharded run failed: {e}")),
            };
            report.parity.push(ParityCheck {
                kernel: probe.name.clone(),
                family: probe.family,
                dataset: dataset.clone(),
                shards: k,
                identical,
                detail,
            });

            for fault in ShardFaultKind::lattice() {
                for s in 0..u64::from(opts.seeds) {
                    let seed = opts.seed.wrapping_add(s);
                    exec.arm_fault(fault, seed);
                    let (verdict, retries, launches, detail) = match (probe.run)(&exec) {
                        Ok((out, rep)) => {
                            let launches: u32 = rep.launches.iter().sum();
                            if bits(&out) != bits(&probe.reference) {
                                (
                                    ShardVerdict::SilentCorruption,
                                    rep.retries,
                                    launches,
                                    first_divergence(&out, &probe.reference),
                                )
                            } else if rep.retries > 0 {
                                (
                                    ShardVerdict::RecoveredIdentical,
                                    rep.retries,
                                    launches,
                                    rep.recovered.join("; "),
                                )
                            } else {
                                (
                                    ShardVerdict::CleanNotInjected,
                                    0,
                                    launches,
                                    "fault never fired".to_string(),
                                )
                            }
                        }
                        Err(GnnOneError::ShardAbort(a)) => (
                            ShardVerdict::DegradedDeclined,
                            a.attempts.saturating_sub(1) as u32,
                            0,
                            a.to_string(),
                        ),
                        Err(e) => (ShardVerdict::UnexpectedError, 0, 0, e.to_string()),
                    };
                    report.cells.push(ShardCell {
                        kernel: probe.name.clone(),
                        family: probe.family,
                        dataset: dataset.clone(),
                        shards: k,
                        fault,
                        seed,
                        verdict,
                        retries,
                        launches,
                        detail,
                    });
                }
            }
        }
        exec.clear_fault();
    }
    Ok(())
}

/// Bit view for exact output comparison.
fn bits(data: &[f32]) -> Vec<u32> {
    data.iter().map(|v| v.to_bits()).collect()
}

fn first_divergence(got: &[f32], want: &[f32]) -> String {
    if got.len() != want.len() {
        return format!("length diverged: {} vs {}", got.len(), want.len());
    }
    match got
        .iter()
        .zip(want)
        .position(|(a, b)| a.to_bits() != b.to_bits())
    {
        Some(i) => format!(
            "bits diverged from the unsharded run at index {i}: {} vs {}",
            got[i], want[i]
        ),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts() -> ShardOpts {
        ShardOpts {
            shards: vec![2, 4],
            seeds: 2,
            kernels: vec!["GnnOne".into(), "FusedGAT".into(), "GnnOne-UAddV".into()],
            threads: Some(2),
            ..Default::default()
        }
    }

    #[test]
    fn shard_sweep_on_g0_is_clean_and_recovers_every_fault() {
        let report = run_shard_sweep(&quick_opts()).unwrap();
        for v in report.violations() {
            eprintln!("violation: {v}");
        }
        for p in report.parity.iter().filter(|p| !p.identical) {
            eprintln!(
                "parity divergence: {} K={} — {}",
                p.kernel, p.shards, p.detail
            );
        }
        assert!(report.clean(), "shard sweep not clean");
        // GnnOne names one kernel in each of sddmm/spmm/spmv, plus the
        // fused and edge-apply singletons: 5 probes × 2 K × 4 faults × 2
        // seeds.
        assert_eq!(report.cells.len(), 5 * 2 * 4 * 2);
        assert_eq!(report.parity.len(), 5 * 2);
        assert_eq!(report.partitions.len(), 2);
        // Coverage: most faults must actually fire and be recovered.
        let recovered = report.verdict_count(ShardVerdict::RecoveredIdentical);
        assert!(
            recovered >= report.cells.len() / 2,
            "only {recovered} recovered of {}",
            report.cells.len()
        );
        // Checkpointed recovery: a recovered kill/stall re-executes only
        // the failed shard (K + 1 launches), never the whole sweep.
        for c in report.cells.iter().filter(|c| {
            c.verdict == ShardVerdict::RecoveredIdentical
                && matches!(
                    c.fault,
                    ShardFaultKind::ShardKill | ShardFaultKind::ShardStall
                )
        }) {
            assert!(
                c.launches <= c.shards as u32 + c.retries,
                "{c}: {} launches for K={} with {} retries",
                c.launches,
                c.shards,
                c.retries
            );
        }
    }

    #[test]
    fn shard_verdicts_reproduce_from_the_seed() {
        let mut opts = quick_opts();
        opts.shards = vec![2];
        opts.kernels = vec!["GnnOne-UAddV".into()];
        let a = run_shard_sweep(&opts).unwrap();
        let b = run_shard_sweep(&opts).unwrap();
        assert_eq!(a.cells.len(), b.cells.len());
        for (x, y) in a.cells.iter().zip(&b.cells) {
            assert_eq!(x.kernel, y.kernel);
            assert_eq!(x.fault, y.fault);
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.verdict, y.verdict, "{x} not reproducible");
            assert_eq!(x.launches, y.launches);
        }
    }

    #[test]
    fn report_serializes_and_renders() {
        let mut opts = quick_opts();
        opts.shards = vec![2];
        opts.seeds = 1;
        opts.kernels = vec!["GnnOne-UAddV".into()];
        let report = run_shard_sweep(&opts).unwrap();
        let j = report.to_json().to_string_compact();
        assert!(j.contains("\"clean\":true"), "{j}");
        assert!(j.contains("\"recovered-identical\""), "{j}");
        assert!(j.contains("\"reproduce\""), "{j}");
        assert!(j.contains("gnnone-prof shard --datasets G0"), "{j}");
        let m = report.recovery_matrix();
        assert!(m.contains("kill"), "{m}");
        assert!(m.contains("GnnOne-UAddV"), "{m}");
        let cell = &report.cells[0];
        assert!(
            cell.reproduce().contains("--seeds 1"),
            "{}",
            cell.reproduce()
        );
    }
}
