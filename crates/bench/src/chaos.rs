//! Registry-wide deterministic fault-injection sweep — the engine behind
//! `gnnone-prof chaos`.
//!
//! Where the fuzz sweep ([`crate::fuzz`]) attacks the kernels with hostile
//! *inputs*, the chaos sweep attacks them with a misbehaving *device*:
//! every registry kernel is launched once per [`FaultKind`] in the lattice
//! with a seeded [`gnnone_sim::ChaosEngine`] attached, alongside the sanitizer and the
//! (always-armed) watchdog. Each injected run is cross-checked against the
//! CPU references in [`gnnone_sparse::reference`] (and
//! [`fused_gat_reference`]) and classified into a resilience [`Verdict`]:
//!
//! * `detected-by-sanitizer` — the shadow oracle flagged the fault;
//! * `aborted-by-watchdog` — a structured abort terminated the launch
//!   (instruction-budget trip, bounds trap, or the chaos kill itself);
//! * `structured-decline` — the launch was refused with a typed error;
//! * `masked` — the fault fired but the output still matches the CPU
//!   reference (e.g. the corrupted value was never consumed);
//! * `silent-data-corruption` — the fault fired, nothing complained, and
//!   the output is wrong. **The contract of this sweep is that this verdict
//!   never appears.**
//!
//! The sweep also proves the engine's determinism contract: for the Fig. 4
//! / Fig. 8 kernel families (and every other non-fused family), outputs
//! and cycle counts must be bit-identical across ≥ 8 schedule-chaos seeds.
//! Inputs are integer-valued `f32`s, so every reduction is exact and
//! therefore order-invariant — any bitwise divergence is a real
//! scheduling-dependence bug, not float noise. Every verdict reproduces
//! from its `(kernel, dataset, fault, seed)` tuple alone.

use std::sync::Arc;

use gnnone_kernels::gnnone::fused::fused_gat_reference;
use gnnone_kernels::graph::GraphData;
use gnnone_kernels::registry;
use gnnone_sim::engine::LaunchError;
use gnnone_sim::jsonio::Json;
use gnnone_sim::{ChaosConfig, DeviceBuffer, FaultKind, Gpu, SanitizeConfig, Verdict};
use gnnone_sparse::datasets::{Dataset, Scale};
use gnnone_sparse::reference;

/// Relative-error ceiling for the CPU cross-check: at or below this the
/// fault is `masked`, above it is `silent-data-corruption`. Loose enough
/// for association-order noise in the fused (exp) path, tight enough that
/// a consumed bit flip or dropped update cannot hide.
pub const MASKED_REL_TOL: f32 = 1e-3;

/// Chaos sweep configuration.
#[derive(Debug, Clone)]
pub struct ChaosOpts {
    /// Fault seed: targeting (warp, firing point, flipped bits) and the
    /// schedule permutations all derive from it.
    pub seed: u64,
    /// Table 1 ids to sweep at tiny scale (default: G0).
    pub dataset_ids: Vec<String>,
    /// Feature width for the dense operands.
    pub f: usize,
    /// Number of schedule-chaos seeds to assert bit-identity across.
    pub schedule_seeds: u32,
    /// Case-insensitive registry kernel names to sweep (`--kernels`);
    /// empty means every registry kernel.
    pub kernels: Vec<String>,
}

impl Default for ChaosOpts {
    fn default() -> Self {
        Self {
            seed: 0xC0FFEE,
            dataset_ids: vec!["G0".to_string()],
            f: 8,
            schedule_seeds: 8,
            kernels: Vec::new(),
        }
    }
}

/// `true` when the `--kernels` filter (empty = everything) selects `name`.
pub(crate) fn kernel_selected(filter: &[String], name: &str) -> bool {
    filter.is_empty() || filter.iter().any(|want| want.eq_ignore_ascii_case(name))
}

/// One classified fault-injection run. Rerunning the same
/// `(kernel, dataset, fault, seed)` tuple reproduces the verdict exactly.
#[derive(Debug, Clone)]
pub struct ChaosCell {
    /// Registry kernel name.
    pub kernel: String,
    /// Table 1 dataset id.
    pub dataset: String,
    /// The injected fault.
    pub fault: FaultKind,
    /// The fault seed.
    pub seed: u64,
    /// Resilience classification.
    pub verdict: Verdict,
    /// Human-readable evidence (finding count, abort, error distance…).
    pub detail: String,
}

impl ChaosCell {
    /// Serializes for the `--out` report.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("kernel", Json::Str(self.kernel.clone())),
            ("dataset", Json::Str(self.dataset.clone())),
            ("fault", self.fault.to_json()),
            ("seed", Json::U64(self.seed)),
            ("verdict", Json::Str(self.verdict.as_str().to_string())),
            ("detail", Json::Str(self.detail.clone())),
        ])
    }
}

impl std::fmt::Display for ChaosCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} / {} / {} (seed {}): {} — {}",
            self.kernel, self.dataset, self.fault, self.seed, self.verdict, self.detail
        )
    }
}

/// One kernel's schedule-determinism check: bit-identical output and cycle
/// count across every tested schedule seed.
#[derive(Debug, Clone)]
pub struct ScheduleCheck {
    /// Registry kernel name.
    pub kernel: String,
    /// Table 1 dataset id.
    pub dataset: String,
    /// How many permuted schedules were compared against the canonical run.
    pub seeds_checked: u32,
    /// `true` when every seed reproduced the canonical bits and cycles.
    pub identical: bool,
    /// First divergence, when any.
    pub detail: String,
}

impl ScheduleCheck {
    /// Serializes for the `--out` report.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("kernel", Json::Str(self.kernel.clone())),
            ("dataset", Json::Str(self.dataset.clone())),
            ("seeds_checked", Json::U64(self.seeds_checked as u64)),
            ("identical", Json::Bool(self.identical)),
            ("detail", Json::Str(self.detail.clone())),
        ])
    }
}

/// Outcome of a full chaos sweep.
#[derive(Debug)]
pub struct ChaosReport {
    /// The fault seed everything derives from.
    pub seed: u64,
    /// Feature width used.
    pub f: usize,
    /// Datasets swept.
    pub datasets: Vec<String>,
    /// Every classified (kernel × fault) run.
    pub cells: Vec<ChaosCell>,
    /// Schedule-determinism results.
    pub schedule: Vec<ScheduleCheck>,
}

impl ChaosReport {
    /// Number of cells carrying `verdict`.
    pub fn verdict_count(&self, verdict: Verdict) -> usize {
        self.cells.iter().filter(|c| c.verdict == verdict).count()
    }

    /// Cells where a fault fired and nothing caught it — the verdict the
    /// sweep exists to rule out.
    pub fn silent_corruptions(&self) -> Vec<&ChaosCell> {
        self.cells
            .iter()
            .filter(|c| c.verdict == Verdict::SilentDataCorruption)
            .collect()
    }

    /// `true` when no silent corruption occurred and every schedule check
    /// was bit-identical.
    pub fn clean(&self) -> bool {
        self.silent_corruptions().is_empty() && self.schedule.iter().all(|s| s.identical)
    }

    /// Serializes the full report.
    pub fn to_json(&self) -> Json {
        let verdicts = Json::obj(
            Verdict::ALL
                .iter()
                .map(|&v| (v.as_str(), Json::U64(self.verdict_count(v) as u64)))
                .collect(),
        );
        Json::obj(vec![
            ("seed", Json::U64(self.seed)),
            ("f", Json::U64(self.f as u64)),
            (
                "datasets",
                Json::Arr(self.datasets.iter().map(|d| Json::Str(d.clone())).collect()),
            ),
            ("verdicts", verdicts),
            (
                "cells",
                Json::Arr(self.cells.iter().map(ChaosCell::to_json).collect()),
            ),
            (
                "schedule",
                Json::Arr(self.schedule.iter().map(ScheduleCheck::to_json).collect()),
            ),
            ("clean", Json::Bool(self.clean())),
        ])
    }

    /// Renders the resilience matrix: one row per kernel, one column per
    /// lattice fault, one letter per verdict (`S`anitizer, `W`atchdog
    /// abort, structured `D`ecline, `M`asked, `!` silent corruption, `·`
    /// not injected).
    pub fn resilience_matrix(&self) -> String {
        fn letter(v: Verdict) -> char {
            match v {
                Verdict::DetectedBySanitizer => 'S',
                Verdict::AbortedByWatchdog => 'W',
                Verdict::StructuredDecline => 'D',
                Verdict::Masked => 'M',
                Verdict::SilentDataCorruption => '!',
                Verdict::NotInjected => '·',
            }
        }
        let lattice = FaultKind::lattice();
        let mut out = String::new();
        for ds in &self.datasets {
            out.push_str(&format!("dataset {ds} (fault seed {}):\n", self.seed));
            let kernels: Vec<&str> = {
                let mut seen = Vec::new();
                for c in self.cells.iter().filter(|c| &c.dataset == ds) {
                    if !seen.contains(&c.kernel.as_str()) {
                        seen.push(c.kernel.as_str());
                    }
                }
                seen
            };
            let width = kernels.iter().map(|k| k.len()).max().unwrap_or(6).max(6);
            out.push_str(&format!("  {:width$}", "kernel"));
            for fk in &lattice {
                out.push_str(&format!(" {:>4}", column_tag(*fk)));
            }
            out.push('\n');
            for k in kernels {
                out.push_str(&format!("  {k:width$}"));
                for fk in &lattice {
                    let v = self
                        .cells
                        .iter()
                        .find(|c| &c.dataset == ds && c.kernel == k && c.fault == *fk)
                        .map(|c| letter(c.verdict))
                        .unwrap_or('?');
                    out.push_str(&format!(" {v:>4}"));
                }
                out.push('\n');
            }
        }
        out.push_str(
            "  S=detected-by-sanitizer W=aborted-by-watchdog D=structured-decline \
             M=masked !=silent-data-corruption ·=not-injected\n",
        );
        out
    }
}

/// Short column header per lattice fault.
fn column_tag(fault: FaultKind) -> &'static str {
    match fault {
        FaultKind::GlobalBitFlip { flips } => {
            if flips > 1 {
                "gbf2"
            } else {
                "gbf"
            }
        }
        FaultKind::SharedBitFlip { .. } => "sbf",
        FaultKind::AtomicDrop => "drop",
        FaultKind::BarrierElide => "sync",
        FaultKind::WarpKill => "kill",
        FaultKind::WarpStall => "stal",
        FaultKind::LaunchTransient => "trns",
    }
}

/// Integer-valued pseudo-features: every value is a small integer, so all
/// products and partial sums stay exact in `f32` (far below 2^24) and any
/// reduction order yields bit-identical results — the property the
/// schedule-determinism check rests on.
fn int_features(n: usize, modulus: usize, offset: f32) -> Vec<f32> {
    (0..n).map(|i| (i % modulus) as f32 - offset).collect()
}

/// A boxed launch closure: run the kernel on the given device, returning
/// its cycle count or a structured decline.
type LaunchFn<'a> = Box<dyn Fn(&Gpu) -> Result<u64, LaunchError> + 'a>;

/// One kernel under test: how to run it, where its output lands, and what
/// the CPU reference says that output must be.
struct Probe<'a> {
    name: String,
    out: &'a DeviceBuffer<f32>,
    expected: Arc<Vec<f32>>,
    /// In the schedule-determinism pass? (Everything but the fused kernel,
    /// whose exponentials are not exact arithmetic.)
    schedule_checked: bool,
    run: LaunchFn<'a>,
}

/// Runs the full chaos sweep: every registry kernel × the full fault
/// lattice, plus the schedule-determinism pass. Never panics — every
/// launch is individually isolated.
pub fn run_chaos(opts: &ChaosOpts) -> Result<ChaosReport, String> {
    let mut report = ChaosReport {
        seed: opts.seed,
        f: opts.f,
        datasets: Vec::new(),
        cells: Vec::new(),
        schedule: Vec::new(),
    };
    for id in &opts.dataset_ids {
        let ds = Dataset::try_by_id(id, Scale::Tiny).map_err(|e| e.to_string())?;
        report.datasets.push(ds.spec.id.to_string());
        sweep_dataset(&ds, opts, &mut report);
    }
    Ok(report)
}

fn sweep_dataset(ds: &Dataset, opts: &ChaosOpts, report: &mut ChaosReport) {
    let graph = Arc::new(GraphData::new(ds.coo.clone()));
    let nv = graph.num_vertices();
    let nnz = graph.nnz();
    let f = opts.f;

    let xh = int_features(nv * f, 7, 3.0);
    let zh = int_features(nv * f, 5, 2.0);
    let wh: Vec<f32> = (0..nnz).map(|e| ((e % 4) + 1) as f32).collect();
    let elh = int_features(nv, 3, 1.0);
    let erh = int_features(nv, 9, 4.0);

    let dx = &DeviceBuffer::from_slice(&xh);
    let dz = &DeviceBuffer::from_slice(&zh);
    let dw = &DeviceBuffer::from_slice(&wh);
    let del = &DeviceBuffer::from_slice(&elh);
    let der = &DeviceBuffer::from_slice(&erh);
    let dy = &DeviceBuffer::<f32>::zeros(nv * f);
    let dwe = &DeviceBuffer::<f32>::zeros(nnz);
    let dyv = &DeviceBuffer::<f32>::zeros(nv);
    let dalpha = &DeviceBuffer::<f32>::zeros(nnz);
    let outputs = [dy, dwe, dyv, dalpha];

    let sddmm_ref = Arc::new(reference::sddmm_coo(&ds.coo, &xh, &zh, f));
    let spmm_ref = Arc::new(reference::spmm_csr(&ds.csr, &wh, &xh, f));
    let spmv_ref = Arc::new(reference::spmv_csr(&ds.csr, &wh, &elh));
    let fused_ref = Arc::new(fused_gat_reference(&graph, &zh, &elh, &erh, f, 0.2).0);
    let uaddv_ref = Arc::new(reference::u_add_v_coo(&ds.coo, &elh, &erh));

    let mut probes: Vec<Probe> = Vec::new();
    for k in registry::sddmm_kernels(&graph) {
        probes.push(Probe {
            name: k.name().to_string(),
            out: dwe,
            expected: Arc::clone(&sddmm_ref),
            schedule_checked: true,
            run: Box::new(move |gpu| k.run(gpu, dx, dz, f, dwe).map(|r| r.cycles)),
        });
    }
    for k in registry::spmm_kernels(&graph)
        .into_iter()
        .chain(registry::spmm_discussion_kernels(&graph))
        .chain(registry::spmm_format_kernels(&graph))
    {
        probes.push(Probe {
            name: k.name().to_string(),
            out: dy,
            expected: Arc::clone(&spmm_ref),
            schedule_checked: true,
            run: Box::new(move |gpu| k.run(gpu, dw, dx, f, dy).map(|r| r.cycles)),
        });
    }
    for k in registry::spmv_class_kernels(&graph) {
        probes.push(Probe {
            name: k.name().to_string(),
            out: dyv,
            expected: Arc::clone(&spmv_ref),
            schedule_checked: true,
            run: Box::new(move |gpu| k.run(gpu, dw, del, dyv).map(|r| r.cycles)),
        });
    }
    for k in registry::fused_kernels(&graph) {
        probes.push(Probe {
            name: k.name().to_string(),
            out: dy,
            expected: Arc::clone(&fused_ref),
            schedule_checked: false,
            run: Box::new(move |gpu| {
                k.run(gpu, dz, del, der, f, dy, Some(dalpha))
                    .map(|r| r.cycles)
            }),
        });
    }
    for k in registry::edge_apply_kernels(&graph) {
        probes.push(Probe {
            name: k.name().to_string(),
            out: dwe,
            expected: Arc::clone(&uaddv_ref),
            schedule_checked: true,
            run: Box::new(move |gpu| k.run(gpu, del, der, dwe).map(|r| r.cycles)),
        });
    }

    probes.retain(|p| kernel_selected(&opts.kernels, &p.name));

    let dataset = ds.spec.id.to_string();

    // --- fault lattice ---------------------------------------------------
    for probe in &probes {
        for fault in FaultKind::lattice() {
            for b in &outputs {
                b.fill_default();
            }
            let gpu = Gpu::new(crate::figure_gpu_spec());
            let san = gpu.enable_sanitizer(SanitizeConfig::on());
            let chaos = gpu.enable_chaos(ChaosConfig::fault(fault, opts.seed));
            let outcome =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| (probe.run)(&gpu)));
            let injected = chaos.injections() > 0;
            let findings = san.finding_count();
            let (verdict, detail) = if findings > 0 {
                (
                    Verdict::DetectedBySanitizer,
                    format!("{findings} sanitizer finding(s)"),
                )
            } else {
                match outcome {
                    Ok(Err(LaunchError::Aborted(a))) => (Verdict::AbortedByWatchdog, a.to_string()),
                    Ok(Err(e)) => (Verdict::StructuredDecline, e.to_string()),
                    Err(payload) => (
                        // A raw panic escaping the engine is the one thing
                        // worse than silent corruption — classify it as SDC
                        // so the sweep fails loudly.
                        Verdict::SilentDataCorruption,
                        format!("panic escaped the engine: {}", panic_message(payload)),
                    ),
                    Ok(Ok(_)) if !injected => {
                        (Verdict::NotInjected, "fault never fired".to_string())
                    }
                    Ok(Ok(_)) => {
                        let err = reference::max_rel_error(&probe.out.to_vec(), &probe.expected);
                        if err <= MASKED_REL_TOL {
                            (Verdict::Masked, format!("max rel err {err:.3e}"))
                        } else {
                            (
                                Verdict::SilentDataCorruption,
                                format!(
                                    "output diverged from cpu reference: max rel err {err:.3e}"
                                ),
                            )
                        }
                    }
                }
            };
            report.cells.push(ChaosCell {
                kernel: probe.name.clone(),
                dataset: dataset.clone(),
                fault,
                seed: opts.seed,
                verdict,
                detail,
            });
        }
    }

    // --- schedule determinism --------------------------------------------
    for probe in probes.iter().filter(|p| p.schedule_checked) {
        for b in &outputs {
            b.fill_default();
        }
        let gpu = Gpu::new(crate::figure_gpu_spec());
        let canonical = (probe.run)(&gpu);
        let canonical_bits: Vec<u32> = probe.out.to_vec().iter().map(|v| v.to_bits()).collect();
        let mut identical = true;
        let mut detail = String::new();
        let canonical_cycles = match canonical {
            Ok(c) => c,
            Err(e) => {
                identical = false;
                detail = format!("canonical launch failed: {e}");
                0
            }
        };
        if identical {
            for s in 1..=opts.schedule_seeds as u64 {
                let seed = opts.seed.wrapping_add(s);
                for b in &outputs {
                    b.fill_default();
                }
                let gpu = Gpu::new(crate::figure_gpu_spec());
                gpu.enable_chaos(ChaosConfig::schedule(seed));
                match (probe.run)(&gpu) {
                    Ok(cycles) => {
                        let bits: Vec<u32> =
                            probe.out.to_vec().iter().map(|v| v.to_bits()).collect();
                        if bits != canonical_bits {
                            identical = false;
                            detail = format!("output bits diverged under schedule seed {seed}");
                            break;
                        }
                        if cycles != canonical_cycles {
                            identical = false;
                            detail = format!(
                                "cycle count diverged under schedule seed {seed}: \
                                 {cycles} vs {canonical_cycles}"
                            );
                            break;
                        }
                    }
                    Err(e) => {
                        identical = false;
                        detail = format!("launch failed under schedule seed {seed}: {e}");
                        break;
                    }
                }
            }
        }
        report.schedule.push(ScheduleCheck {
            kernel: probe.name.clone(),
            dataset: dataset.clone(),
            seeds_checked: opts.schedule_seeds,
            identical,
            detail,
        });
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_sweep_on_g0_is_clean_and_covers_the_lattice() {
        let opts = ChaosOpts {
            dataset_ids: vec!["G0".to_string()],
            ..Default::default()
        };
        let report = run_chaos(&opts).unwrap();
        for c in report.silent_corruptions() {
            eprintln!("SDC: {c}");
        }
        for s in report.schedule.iter().filter(|s| !s.identical) {
            eprintln!("schedule divergence: {} — {}", s.kernel, s.detail);
        }
        assert!(report.clean(), "chaos sweep not clean");
        // 21 registry kernels × 8 lattice faults.
        assert_eq!(report.cells.len(), 21 * FaultKind::lattice().len());
        // Coverage: a sweep where most faults never fire proves nothing.
        let injected = report.cells.len() - report.verdict_count(Verdict::NotInjected);
        assert!(
            injected >= report.cells.len() / 2,
            "only {injected} injected"
        );
        // The determinism contract: ≥ 8 seeds, all bit-identical.
        assert!(report.schedule.len() >= 12);
        assert!(report.schedule.iter().all(|s| s.seeds_checked >= 8));
    }

    #[test]
    fn kernels_filter_restricts_the_sweep() {
        let opts = ChaosOpts {
            kernels: vec!["gnnone".to_string()],
            schedule_seeds: 1,
            ..Default::default()
        };
        let report = run_chaos(&opts).unwrap();
        assert!(!report.cells.is_empty());
        assert!(report.cells.len() < 21 * FaultKind::lattice().len());
        assert!(report
            .cells
            .iter()
            .all(|c| c.kernel.eq_ignore_ascii_case("GnnOne")));
        assert!(report
            .schedule
            .iter()
            .all(|s| s.kernel.eq_ignore_ascii_case("GnnOne")));
    }

    #[test]
    fn chaos_verdicts_reproduce_from_the_seed() {
        let opts = ChaosOpts {
            dataset_ids: vec!["G0".to_string()],
            schedule_seeds: 1,
            ..Default::default()
        };
        let a = run_chaos(&opts).unwrap();
        let b = run_chaos(&opts).unwrap();
        assert_eq!(a.cells.len(), b.cells.len());
        for (x, y) in a.cells.iter().zip(&b.cells) {
            assert_eq!(x.kernel, y.kernel);
            assert_eq!(x.fault, y.fault);
            assert_eq!(
                x.verdict, y.verdict,
                "{} / {} not reproducible",
                x.kernel, x.fault
            );
        }
    }

    #[test]
    fn report_serializes_and_renders() {
        let report = ChaosReport {
            seed: 7,
            f: 8,
            datasets: vec!["G0".to_string()],
            cells: vec![ChaosCell {
                kernel: "K".into(),
                dataset: "G0".into(),
                fault: FaultKind::AtomicDrop,
                seed: 7,
                verdict: Verdict::DetectedBySanitizer,
                detail: "1 sanitizer finding(s)".into(),
            }],
            schedule: vec![ScheduleCheck {
                kernel: "K".into(),
                dataset: "G0".into(),
                seeds_checked: 8,
                identical: true,
                detail: String::new(),
            }],
        };
        assert!(report.clean());
        let j = report.to_json().to_string_compact();
        assert!(j.contains("\"detected-by-sanitizer\""), "{j}");
        assert!(j.contains("\"atomic-drop\""), "{j}");
        assert!(j.contains("\"clean\":true"), "{j}");
        let m = report.resilience_matrix();
        assert!(m.contains('S'), "{m}");
        assert!(m.contains("drop"), "{m}");
    }
}
