//! Reproduces **Fig. 7**: GCN and GIN end-to-end training speedup of
//! GNNOne over DGL (200 epochs), including the out-of-memory pattern —
//! GNNOne trains GCN on G17 (uk-2002) where DGL OOMs; both OOM on G16 and
//! G18.

use std::rc::Rc;

use gnnone_bench::report::{Cell, Table};
use gnnone_bench::{cli, figure_gpu_spec, profiling, report, runner};
use gnnone_gnn::memory::{estimate_training_bytes, ModelKind};
use gnnone_gnn::models::{Gcn, Gin, GnnModel};
use gnnone_gnn::{train_model, GnnContext, SystemKind, TrainConfig};
use gnnone_tensor::Tensor;

const MEASURED_EPOCHS: usize = 2;

fn main() -> std::process::ExitCode {
    gnnone_bench::figure_main("fig7_gcn_gin_training", run)
}

fn run() -> Result<(), gnnone_sim::GnnOneError> {
    let mut opts = cli::from_env()?;
    runner::require_sim_backend(&opts, "fig7_gcn_gin_training")?;
    if opts.datasets.is_empty() {
        opts.datasets = [
            "G3", "G7", "G9", "G10", "G11", "G12", "G13", "G14", "G15", "G16", "G17", "G18",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }
    let spec_gpu = figure_gpu_spec();
    let device_bytes = 40u64 * 1024 * 1024 * 1024;
    let prof = profiling::Profiler::from_opts(&opts);
    let mut tables = Vec::new();

    for (model_name, model_kind, hidden, layers) in [
        ("GCN", ModelKind::Gcn, 16usize, 2usize),
        ("GIN", ModelKind::Gin, 64, 5),
    ] {
        let mut table = Table::new(
            &format!("Fig 7: {model_name} training, {} epochs", opts.epochs),
            &["GnnOne", "DGL"],
        );
        for dspec in runner::selected_specs(&opts) {
            let ld = runner::load(&dspec, opts.scale);
            let n = ld.graph.num_vertices();
            let features = Tensor::from_vec(
                n,
                dspec.feature_len,
                runner::vertex_features(n, dspec.feature_len, 37),
            );
            let labels: Vec<u32> = (0..n as u32).map(|v| v % dspec.classes as u32).collect();

            let mut cells = Vec::new();
            for system in [SystemKind::GnnOne, SystemKind::Dgl] {
                let est = estimate_training_bytes(system, model_kind, &dspec);
                if !est.fits(device_bytes) {
                    cells.push(Cell::Err("OOM".into()));
                    continue;
                }
                let ctx = Rc::new(GnnContext::new(
                    system,
                    ld.dataset.coo.clone(),
                    spec_gpu.clone(),
                ));
                prof.attach_ctx(&ctx);
                let mut model: Box<dyn GnnModel> = match model_kind {
                    ModelKind::Gcn => {
                        Box::new(Gcn::new(dspec.feature_len, hidden, dspec.classes, 7))
                    }
                    ModelKind::Gin => Box::new(Gin::new(
                        dspec.feature_len,
                        hidden,
                        dspec.classes,
                        layers,
                        7,
                    )),
                    ModelKind::Gat => unreachable!(),
                };
                let cfg = TrainConfig {
                    epochs: MEASURED_EPOCHS,
                    ..Default::default()
                };
                let r = train_model(model.as_mut(), &ctx, &features, &labels, &cfg);
                let per_epoch_ms = r.simulated_ms / (MEASURED_EPOCHS as f64 + 1.0);
                cells.push(Cell::Ms(per_epoch_ms * opts.epochs as f64));
            }
            table.push_row(dspec.id, cells);
        }
        table.print();
        tables.push(table);
    }
    println!("(paper: 1.89x avg for GCN, 1.27x avg for GIN; GnnOne trains GCN on G17 while DGL OOMs; both OOM on G16/G18)");

    let out = opts
        .out
        .unwrap_or_else(|| "results/fig7_gcn_gin_training.json".into());
    report::write_json(&out, &tables).map_err(|e| gnnone_bench::io_error(&out, e))?;
    println!("wrote {out}");
    prof.write();
    Ok(())
}
