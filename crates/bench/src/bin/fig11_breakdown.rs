//! Reproduces **Fig. 11**: the data-load vs total breakdown proving the
//! paper's basic premise — *data load ≫ actual compute* (§3.1 Obs. #2,
//! §5.4.4).
//!
//! The paper measured a load-only partial prototype; this binary reports
//! the split both ways. The simulator exposes it directly: per-warp cycles
//! divide into memory-stall cycles, load-issue cycles, and everything else
//! (compute, shuffles, barriers, stores), so the load fraction is
//! (stall + load issue) / total. And the paper's methodology runs as-is:
//! `GnnOneLoadOnly` is the SDDMM pipeline with the reduction deleted
//! (`NoReduce`), and its measured time over the full kernel's is the
//! prototype ratio the paper's Fig. 11 bars plot.

use std::sync::Arc;

use gnnone_bench::{cli, figure_gpu_spec, profiling, report, runner};
use gnnone_kernels::gnnone::{GnnOneConfig, GnnOneLoadOnly, GnnOneSddmm, GnnOneSpmm};
use gnnone_kernels::traits::{SddmmKernel, SpmmKernel};
use gnnone_sim::{DeviceBuffer, Gpu, KernelReport};
use serde::Serialize;

#[derive(Serialize)]
struct BreakdownRow {
    dataset: String,
    kernel: &'static str,
    total_ms: f64,
    load_ms: f64,
    load_fraction: f64,
}

impl report::ToJson for BreakdownRow {
    fn to_json(&self) -> gnnone_sim::jsonio::Json {
        use gnnone_sim::jsonio::Json;
        Json::obj(vec![
            ("dataset", Json::Str(self.dataset.clone())),
            ("kernel", Json::Str(self.kernel.to_string())),
            ("total_ms", Json::F64(self.total_ms)),
            ("load_ms", Json::F64(self.load_ms)),
            ("load_fraction", Json::F64(self.load_fraction)),
        ])
    }
}

fn load_fraction(report: &KernelReport) -> f64 {
    let stats = &report.stats;
    if stats.total_solo_cycles == 0 {
        return 0.0;
    }
    let load_issue = stats.loads; // 1 issue cycle per load instruction
    (stats.total_mem_stall_cycles + load_issue) as f64 / stats.total_solo_cycles as f64
}

fn main() -> std::process::ExitCode {
    gnnone_bench::figure_main("fig11_breakdown", run)
}

fn run() -> Result<(), gnnone_sim::GnnOneError> {
    let mut opts = cli::from_env()?;
    runner::require_sim_backend(&opts, "fig11_breakdown")?;
    if opts.dims == vec![6, 16, 32, 64] {
        opts.dims = vec![32];
    }
    let dim = opts.dims[0];
    let gpu = Gpu::new(figure_gpu_spec());
    let prof = profiling::Profiler::from_opts(&opts);
    prof.attach(&gpu);
    let mut rows = Vec::new();

    println!(
        "{:<6} {:<7} {:>12} {:>12} {:>8}",
        "graph", "kernel", "total ms", "load ms", "load %"
    );
    for spec in runner::selected_specs(&opts) {
        let ld = runner::load(&spec, opts.scale);
        let n = ld.graph.num_vertices();
        let x = DeviceBuffer::from_slice(&runner::vertex_features(n, dim, 3));
        let y = DeviceBuffer::from_slice(&runner::vertex_features(n, dim, 5));

        // SpMM breakdown.
        let w = DeviceBuffer::from_slice(&runner::edge_values(ld.graph.nnz(), 7));
        let out = DeviceBuffer::<f32>::zeros(n * dim);
        let spmm = GnnOneSpmm::new(Arc::clone(&ld.graph), GnnOneConfig::default());
        let r = spmm.run(&gpu, &w, &x, dim, &out)?;
        for (kernel, r) in [("SpMM", r)].into_iter().chain({
            let wout = DeviceBuffer::<f32>::zeros(ld.graph.nnz());
            let sddmm = GnnOneSddmm::new(Arc::clone(&ld.graph), GnnOneConfig::default());
            let r2 = sddmm.run(&gpu, &x, &y, dim, &wout)?;
            [("SDDMM", r2)]
        }) {
            let frac = load_fraction(&r);
            let row = BreakdownRow {
                dataset: spec.id.to_string(),
                kernel,
                total_ms: r.time_ms,
                load_ms: r.time_ms * frac,
                load_fraction: frac,
            };
            println!(
                "{:<6} {:<7} {:>12.3} {:>12.3} {:>7.1}%",
                row.dataset,
                row.kernel,
                row.total_ms,
                row.load_ms,
                100.0 * row.load_fraction
            );
            rows.push(row);
        }

        // The paper's own methodology: a load-only prototype of the SDDMM
        // (same config, reduction deleted), measured like any kernel.
        let full = GnnOneSddmm::new(Arc::clone(&ld.graph), GnnOneConfig::default());
        let wout = DeviceBuffer::<f32>::zeros(ld.graph.nnz());
        let full_r = full.run(&gpu, &x, &y, dim, &wout)?;
        let load_only = GnnOneLoadOnly::new(Arc::clone(&ld.graph), GnnOneConfig::default());
        let lo_r = load_only.run(&gpu, &x, &y, dim)?;
        let frac = lo_r.time_ms / full_r.time_ms.max(f64::MIN_POSITIVE);
        let row = BreakdownRow {
            dataset: spec.id.to_string(),
            kernel: "SDDMM-proto",
            total_ms: full_r.time_ms,
            load_ms: lo_r.time_ms,
            load_fraction: frac,
        };
        println!(
            "{:<6} {:<7} {:>12.3} {:>12.3} {:>7.1}%  (measured load-only prototype)",
            row.dataset,
            row.kernel,
            row.total_ms,
            row.load_ms,
            100.0 * row.load_fraction
        );
        rows.push(row);
    }
    let avg: f64 = rows.iter().map(|r| r.load_fraction).sum::<f64>() / rows.len().max(1) as f64;
    println!(
        "\naverage load fraction: {:.1}% (paper: data load dominates even after optimization)",
        100.0 * avg
    );

    let out = opts
        .out
        .unwrap_or_else(|| "results/fig11_breakdown.json".into());
    report::write_json(&out, &rows).map_err(|e| gnnone_bench::io_error(&out, e))?;
    println!("wrote {out}");
    prof.write();
    Ok(())
}
