//! Reproduces **Fig. 3**: SDDMM speedup of GNNOne over dgSparse, CuSparse,
//! Sputnik, FeatGraph and DGL for feature lengths {6, 16, 32, 64}.
//!
//! Expected shape (paper §5.1): GNNOne wins everywhere; averages around
//! 6× against the main baselines, higher at small dims where prior works
//! idle warp lanes; CuSparse and Sputnik are one to two orders slower and
//! error out on datasets whose paper-scale |V| exceeds ~2M.

use std::process::ExitCode;

use gnnone_bench::report::{Cell, Table};
use gnnone_bench::{cli, io_error, profiling, report, runner, SDDMM_VERTEX_ERROR_THRESHOLD};
use gnnone_kernels::registry;
use gnnone_sim::GnnOneError;

fn main() -> ExitCode {
    gnnone_bench::figure_main("fig3_sddmm", run)
}

fn run() -> Result<(), GnnOneError> {
    let opts = cli::from_env()?;
    let backend = runner::backend_from_options(&opts)?;
    let prof = profiling::Profiler::from_opts(&opts);
    prof.attach_backend(&backend);
    let specs = runner::selected_specs(&opts);
    let mut tables = Vec::new();
    let mut guard = runner::SweepGuard::new();

    for &dim in &opts.dims {
        let mut table = Table::new(
            &format!("Fig 3: SDDMM, dim={dim}"),
            &[
                "GnnOne",
                "dgSparse",
                "CuSparse",
                "Sputnik",
                "FeatGraph",
                "DGL",
            ],
        );
        for spec in &specs {
            let ld = runner::load(spec, opts.scale);
            let sharded = match opts.shards {
                Some(k) => Some(runner::sharded_executor(&opts, &ld, k)?),
                None => None,
            };
            let mut cells = Vec::new();
            for kernel in registry::sddmm_kernels(&ld.graph) {
                // Sputnik's |V|²-shaped grid and cuSPARSE's workspace
                // indexing overflow at the *paper's* vertex counts (§5.1);
                // the analogue may be small enough to slip under the same
                // mechanism, so the check is applied at paper scale.
                let fails_at_paper_scale = matches!(kernel.name(), "Sputnik" | "CuSparse")
                    && spec.paper_vertices > SDDMM_VERTEX_ERROR_THRESHOLD;
                let cell = if fails_at_paper_scale {
                    Cell::Err("ERR".into())
                } else if let Some(exec) = &sharded {
                    runner::run_sddmm_sharded(&mut guard, exec, kernel.name(), &ld, dim)
                } else {
                    runner::run_sddmm_guarded(&backend, kernel.as_ref(), &ld, dim, &mut guard)
                };
                cells.push(cell);
            }
            table.push_row(spec.id, cells);
        }
        table.print();
        tables.push(table);
    }

    // Overall average across dims, excluding Sputnik/CuSparse as the paper
    // does for its 6.02× headline.
    let mut per_system: Vec<(usize, Vec<f64>)> = vec![(1, vec![]), (4, vec![]), (5, vec![])];
    for t in &tables {
        for (col, acc) in per_system.iter_mut() {
            acc.extend(t.speedups_vs(*col).into_iter().map(|(_, s)| s));
        }
    }
    let all: Vec<f64> = per_system
        .iter()
        .flat_map(|(_, v)| v.iter().copied())
        .collect();
    println!(
        "\nOverall GnnOne SDDMM speedup vs {{dgSparse, FeatGraph, DGL}}: mean {:.2}x over {} cells (paper: 6.02x avg)",
        all.iter().sum::<f64>() / all.len().max(1) as f64,
        all.len()
    );

    let out = opts
        .out
        .clone()
        .unwrap_or_else(|| "results/fig3_sddmm.json".into());
    report::write_json(&out, &tables).map_err(|e| io_error(&out, e))?;
    println!("wrote {out}");
    prof.write();
    guard.finish()
}
