//! Reproduces **Fig. 10**: Consecutive vs Round-robin NZE assignment in
//! SpMM Stage 2.
//!
//! Expected shape (paper §5.4.3): Consecutive wins — slightly above 10% on
//! data-load alone in the paper; our measurement includes the reduction,
//! which the paper notes favours Consecutive even further (fewer atomics
//! at row splits).

use std::sync::Arc;

use gnnone_bench::report::Table;
use gnnone_bench::{cli, profiling, report, runner};
use gnnone_kernels::gnnone::{GnnOneConfig, GnnOneSpmm, Schedule};

fn main() -> std::process::ExitCode {
    gnnone_bench::figure_main("fig10_schedule", run)
}

fn run() -> Result<(), gnnone_sim::GnnOneError> {
    let mut opts = cli::from_env()?;
    if opts.dims == vec![6, 16, 32, 64] {
        opts.dims = vec![32];
    }
    runner::require_unsharded(&opts, "fig10_schedule")?;
    let backend = runner::backend_from_options(&opts)?;
    let prof = profiling::Profiler::from_opts(&opts);
    prof.attach_backend(&backend);
    let mut tables = Vec::new();
    let mut guard = runner::SweepGuard::new();

    for &dim in &opts.dims {
        let mut table = Table::new(
            &format!("Fig 10: SpMM NZE scheduling, dim={dim}"),
            &["Consecutive", "Round-robin"],
        );
        for spec in runner::selected_specs(&opts) {
            let ld = runner::load(&spec, opts.scale);
            let cells = [Schedule::Consecutive, Schedule::RoundRobin]
                .iter()
                .map(|&schedule| {
                    let k = GnnOneSpmm::new(
                        Arc::clone(&ld.graph),
                        GnnOneConfig {
                            schedule,
                            ..Default::default()
                        },
                    );
                    runner::run_spmm_guarded(&backend, &k, &ld, dim, &mut guard)
                })
                .collect();
            table.push_row(spec.id, cells);
        }
        table.print();
        println!("(paper: Consecutive ≈ 10%+ faster on data load alone)");
        tables.push(table);
    }

    let out = opts
        .out
        .unwrap_or_else(|| "results/fig10_schedule.json".into());
    report::write_json(&out, &tables).map_err(|e| gnnone_bench::io_error(&out, e))?;
    println!("wrote {out}");
    prof.write();
    guard.finish()
}
