//! **Extension experiment** (§6): SpMM systems the paper discusses but does
//! not plot — Yang et al.'s nonzero-split (the register-materialization
//! cautionary tale of §3.2), Sputnik's row-swizzled SpMM, and the
//! row-binning lineage — against GNNOne.

use std::sync::Arc;

use gnnone_bench::report::Table;
use gnnone_bench::{cli, profiling, report, runner};
use gnnone_kernels::gnnone::{GnnOneConfig, GnnOneSpmm};
use gnnone_kernels::registry;
use gnnone_kernels::traits::SpmmKernel;

fn main() -> std::process::ExitCode {
    gnnone_bench::figure_main("ext_spmm_extras", run)
}

fn run() -> Result<(), gnnone_sim::GnnOneError> {
    let mut opts = cli::from_env()?;
    if opts.dims == vec![6, 16, 32, 64] {
        opts.dims = vec![32];
    }
    runner::require_unsharded(&opts, "ext_spmm_extras")?;
    let backend = runner::backend_from_options(&opts)?;
    let prof = profiling::Profiler::from_opts(&opts);
    prof.attach_backend(&backend);
    let mut tables = Vec::new();
    let mut guard = runner::SweepGuard::new();
    for &dim in &opts.dims {
        let mut table = Table::new(
            &format!("Extension: discussed-but-unplotted SpMM systems, dim={dim}"),
            &["GnnOne", "Yang et al.", "Sputnik", "Row-binning"],
        );
        for spec in runner::selected_specs(&opts) {
            let ld = runner::load(&spec, opts.scale);
            let gnnone: Box<dyn SpmmKernel> = Box::new(GnnOneSpmm::new(
                Arc::clone(&ld.graph),
                GnnOneConfig::default(),
            ));
            let cells = std::iter::once(gnnone)
                .chain(registry::spmm_discussion_kernels(&ld.graph))
                .map(|k| runner::run_spmm_guarded(&backend, k.as_ref(), &ld, dim, &mut guard))
                .collect();
            table.push_row(spec.id, cells);
        }
        table.print();
        tables.push(table);
    }
    println!("(Yang et al.: balanced but occupancy-collapsed — §3.2's 'discarded right approach')");

    let out = opts
        .out
        .unwrap_or_else(|| "results/ext_spmm_extras.json".into());
    report::write_json(&out, &tables).map_err(|e| gnnone_bench::io_error(&out, e))?;
    println!("wrote {out}");
    prof.write();
    guard.finish()
}
