//! Reproduces **Fig. 4**: SpMM speedup of GNNOne over GE-SpMM, CuSparse,
//! Huang et al., FeatGraph and GNNAdvisor for feature lengths {6, 16, 32,
//! 64}.
//!
//! Expected shape (paper §5.2): GNNOne wins across the board (6.25× avg);
//! Huang et al. is the closest baseline (~1.3–1.7×); GE-SpMM degrades
//! sharply below f = 32 where it drops caching; FeatGraph is the worst.

use std::process::ExitCode;

use gnnone_bench::report::Table;
use gnnone_bench::{cli, io_error, profiling, report, runner};
use gnnone_kernels::registry;
use gnnone_sim::GnnOneError;

fn main() -> ExitCode {
    gnnone_bench::figure_main("fig4_spmm", run)
}

fn run() -> Result<(), GnnOneError> {
    let opts = cli::from_env()?;
    let backend = runner::backend_from_options(&opts)?;
    let prof = profiling::Profiler::from_opts(&opts);
    prof.attach_backend(&backend);
    let specs = runner::selected_specs(&opts);
    let mut tables = Vec::new();
    let mut guard = runner::SweepGuard::new();

    for &dim in &opts.dims {
        let mut table = Table::new(
            &format!("Fig 4: SpMM, dim={dim}"),
            &[
                "GnnOne",
                "GE-SpMM",
                "CuSparse",
                "Huang et al.",
                "FeatGraph",
                "GNNAdvisor",
            ],
        );
        for spec in &specs {
            let ld = runner::load(spec, opts.scale);
            let sharded = match opts.shards {
                Some(k) => Some(runner::sharded_executor(&opts, &ld, k)?),
                None => None,
            };
            let cells = registry::spmm_kernels(&ld.graph)
                .iter()
                .map(|k| match &sharded {
                    Some(exec) => runner::run_spmm_sharded(&mut guard, exec, k.name(), &ld, dim),
                    None => runner::run_spmm_guarded(&backend, k.as_ref(), &ld, dim, &mut guard),
                })
                .collect();
            table.push_row(spec.id, cells);
        }
        table.print();
        tables.push(table);
    }

    let mut all = Vec::new();
    for t in &tables {
        for col in 1..t.systems.len() {
            all.extend(t.speedups_vs(col).into_iter().map(|(_, s)| s));
        }
    }
    println!(
        "\nOverall GnnOne SpMM speedup vs all baselines: mean {:.2}x over {} cells (paper: 6.25x avg)",
        all.iter().sum::<f64>() / all.len().max(1) as f64,
        all.len()
    );

    let out = opts
        .out
        .clone()
        .unwrap_or_else(|| "results/fig4_spmm.json".into());
    report::write_json(&out, &tables).map_err(|e| io_error(&out, e))?;
    println!("wrote {out}");
    if let Some(p) = &opts.plain_out {
        report::write_plain(p, &tables).map_err(|e| io_error(p, e))?;
        println!("wrote {p}");
    }
    prof.write();
    guard.finish()
}
