//! Reproduces **Table 1**: the dataset roster — paper-scale sizes alongside
//! the generated synthetic analogues actually used by the figures.

use gnnone_bench::{cli, profiling, report};
use gnnone_sparse::datasets::Dataset;
use gnnone_sparse::stats::DegreeStats;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    id: &'static str,
    name: &'static str,
    paper_vertices: u64,
    paper_edges: u64,
    feature_len: usize,
    classes: usize,
    labeled: bool,
    analogue_vertices: usize,
    analogue_edges: usize,
    analogue_max_degree: usize,
    analogue_degree_gini: f64,
}

impl report::ToJson for Row {
    fn to_json(&self) -> gnnone_sim::jsonio::Json {
        use gnnone_sim::jsonio::Json;
        Json::obj(vec![
            ("id", Json::Str(self.id.to_string())),
            ("name", Json::Str(self.name.to_string())),
            ("paper_vertices", Json::U64(self.paper_vertices)),
            ("paper_edges", Json::U64(self.paper_edges)),
            ("feature_len", Json::U64(self.feature_len as u64)),
            ("classes", Json::U64(self.classes as u64)),
            ("labeled", Json::Bool(self.labeled)),
            (
                "analogue_vertices",
                Json::U64(self.analogue_vertices as u64),
            ),
            ("analogue_edges", Json::U64(self.analogue_edges as u64)),
            (
                "analogue_max_degree",
                Json::U64(self.analogue_max_degree as u64),
            ),
            ("analogue_degree_gini", Json::F64(self.analogue_degree_gini)),
        ])
    }
}

fn main() -> std::process::ExitCode {
    gnnone_bench::figure_main("table1", run)
}

fn run() -> Result<(), gnnone_sim::GnnOneError> {
    let opts = cli::from_env()?;
    gnnone_bench::runner::require_sim_backend(&opts, "table1")?;
    let prof = profiling::Profiler::from_opts(&opts);
    println!(
        "Table 1: datasets (paper scale → generated analogue at {:?})",
        opts.scale
    );
    println!(
        "{:<5} {:<17} {:>12} {:>14} {:>5} {:>3} {:>3} | {:>10} {:>10} {:>8} {:>6}",
        "id",
        "name",
        "paper |V|",
        "paper |E|",
        "F",
        "C",
        "lab",
        "gen |V|",
        "gen |E|",
        "max deg",
        "gini"
    );
    let mut rows = Vec::new();
    for spec in gnnone_bench::runner::selected_specs(&opts) {
        let d = Dataset::generate(&spec, opts.scale);
        let stats = DegreeStats::compute(&d.csr);
        let row = Row {
            id: spec.id,
            name: spec.name,
            paper_vertices: spec.paper_vertices,
            paper_edges: spec.paper_edges,
            feature_len: spec.feature_len,
            classes: spec.classes,
            labeled: spec.labeled,
            analogue_vertices: d.coo.num_rows(),
            analogue_edges: d.coo.nnz(),
            analogue_max_degree: d.csr.max_degree(),
            analogue_degree_gini: stats.gini,
        };
        println!(
            "{:<5} {:<17} {:>12} {:>14} {:>5} {:>3} {:>3} | {:>10} {:>10} {:>8} {:>6.2}",
            row.id,
            row.name,
            row.paper_vertices,
            row.paper_edges,
            row.feature_len,
            row.classes,
            if row.labeled { "*" } else { "" },
            row.analogue_vertices,
            row.analogue_edges,
            row.analogue_max_degree,
            row.analogue_degree_gini
        );
        rows.push(row);
    }
    let out = opts.out.unwrap_or_else(|| "results/table1.json".into());
    report::write_json(&out, &rows).map_err(|e| gnnone_bench::io_error(&out, e))?;
    println!("\nwrote {out}");
    prof.write();
    Ok(())
}
