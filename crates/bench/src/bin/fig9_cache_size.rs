//! Reproduces **Fig. 9**: SpMM Stage-1 cache size — 128 NZEs per warp vs
//! 32 — at feature length 16.
//!
//! Expected shape (paper §5.4.2): caching 128 gives ≈1.31× over 32 because
//! more independent loads issue before each memory barrier.
//!
//! This binary is the worked profiling example of `docs/PROFILING.md`:
//! with `--metrics m.json` it writes per-variant snapshots
//! (`m.cache128.json`, `m.cache32.json`) suitable for
//! `gnnone-prof diff`, plus the combined `m.json`; with `--trace t.json`
//! both variants share one Chrome-trace timeline.

use std::sync::Arc;

use gnnone_bench::report::Table;
use gnnone_bench::{cli, figure_gpu_spec, report, runner};
use gnnone_kernels::gnnone::{GnnOneConfig, GnnOneSpmm};
use gnnone_sim::{MetricsRegistry, MetricsSnapshot, TraceConfig, TraceSession};

/// `results/m.json` → `results/m.cache128.json`.
fn variant_path(path: &str, variant: &str) -> String {
    match path.rsplit_once('.') {
        Some((stem, ext)) => format!("{stem}.{variant}.{ext}"),
        None => format!("{path}.{variant}"),
    }
}

fn main() -> std::process::ExitCode {
    gnnone_bench::figure_main("fig9_cache_size", run)
}

fn run() -> Result<(), gnnone_sim::GnnOneError> {
    let mut opts = cli::from_env()?;
    if opts.dims == vec![6, 16, 32, 64] {
        opts.dims = vec![16]; // the figure's dimension
    }
    let spec_gpu = figure_gpu_spec();

    // One backend per cache variant so kernel metrics roll up separately
    // (the A and B of a `gnnone-prof diff`); one shared trace timeline.
    // The observability flags are sim-only (CLI validation rejects them
    // with `--backend native`), so the attach sites can assume a device.
    runner::require_unsharded(&opts, "fig9_cache_size")?;
    let backend128 = runner::backend_from_options(&opts)?;
    let backend32 = runner::backend_from_options(&opts)?;
    let session = opts.trace.as_ref().map(|_| {
        Arc::new(TraceSession::new(
            TraceConfig::on(),
            &spec_gpu.name,
            spec_gpu.clock_ghz,
        ))
    });
    if let Some(session) = &session {
        for backend in [&backend128, &backend32] {
            if let Some(gpu) = backend.as_gpu() {
                gpu.attach_trace(Arc::clone(session));
            }
        }
    }
    let registries = opts.metrics.as_ref().map(|_| {
        let mk = |backend: &gnnone_kernels::backend::Backend| {
            let r = MetricsRegistry::new();
            r.set_device(&spec_gpu.name, spec_gpu.clock_ghz);
            let r = Arc::new(r);
            if let Some(gpu) = backend.as_gpu() {
                gpu.attach_metrics(Arc::clone(&r));
            }
            r
        };
        (mk(&backend128), mk(&backend32))
    });

    let mut tables = Vec::new();
    let mut guard = runner::SweepGuard::new();
    for &dim in &opts.dims {
        let mut table = Table::new(
            &format!("Fig 9: SpMM cache size, dim={dim}"),
            &["cache=128", "cache=32"],
        );
        for spec in runner::selected_specs(&opts) {
            let ld = runner::load(&spec, opts.scale);
            let cells = [(128usize, &backend128), (32, &backend32)]
                .iter()
                .map(|&(cache, backend)| {
                    let k = GnnOneSpmm::new(
                        Arc::clone(&ld.graph),
                        GnnOneConfig {
                            cache_size: cache,
                            ..Default::default()
                        },
                    );
                    runner::run_spmm_guarded(backend, &k, &ld, dim, &mut guard)
                })
                .collect();
            table.push_row(spec.id, cells);
        }
        table.print();
        println!("(paper: 1.31x average for 128 over 32)");
        tables.push(table);
    }

    let out = opts
        .out
        .unwrap_or_else(|| "results/fig9_cache_size.json".into());
    report::write_json(&out, &tables).map_err(|e| gnnone_bench::io_error(&out, e))?;
    println!("wrote {out}");

    if let (Some(path), Some(session)) = (&opts.trace, &session) {
        session
            .write_chrome_trace(path)
            .map_err(|e| gnnone_bench::io_error(path, e))?;
        println!(
            "trace: {path} ({} events; load in chrome://tracing or ui.perfetto.dev)",
            session.event_count()
        );
    }
    if let (Some(path), Some((reg128, reg32))) = (&opts.metrics, &registries) {
        let (snap128, snap32) = (reg128.snapshot(), reg32.snapshot());
        let (p128, p32) = (
            variant_path(path, "cache128"),
            variant_path(path, "cache32"),
        );
        snap128
            .write(&p128)
            .map_err(|e| gnnone_bench::io_error(&p128, e))?;
        snap32
            .write(&p32)
            .map_err(|e| gnnone_bench::io_error(&p32, e))?;
        // Combined snapshot: variant-prefixed kernel names keep both
        // rollups distinguishable in one file.
        let mut combined = MetricsSnapshot {
            device: snap128.device.clone(),
            clock_ghz: snap128.clock_ghz,
            kernels: Vec::new(),
        };
        for (prefix, snap) in [("cache128/", &snap128), ("cache32/", &snap32)] {
            for k in &snap.kernels {
                let mut k = k.clone();
                k.name = format!("{prefix}{}", k.name);
                combined.kernels.push(k);
            }
        }
        combined
            .write(path)
            .map_err(|e| gnnone_bench::io_error(path, e))?;
        println!("metrics: {path} (+ per-variant {p128}, {p32})");
        println!("compare: gnnone-prof diff {p128} {p32}");
    }
    guard.finish()
}
