//! Reproduces **Fig. 9**: SpMM Stage-1 cache size — 128 NZEs per warp vs
//! 32 — at feature length 16.
//!
//! Expected shape (paper §5.4.2): caching 128 gives ≈1.31× over 32 because
//! more independent loads issue before each memory barrier.

use std::sync::Arc;

use gnnone_bench::report::Table;
use gnnone_bench::{cli, figure_gpu_spec, report, runner};
use gnnone_kernels::gnnone::{GnnOneConfig, GnnOneSpmm};
use gnnone_sim::Gpu;

fn main() {
    let mut opts = cli::from_env();
    if opts.dims == vec![6, 16, 32, 64] {
        opts.dims = vec![16]; // the figure's dimension
    }
    let gpu = Gpu::new(figure_gpu_spec());
    let mut tables = Vec::new();

    for &dim in &opts.dims {
        let mut table = Table::new(
            &format!("Fig 9: SpMM cache size, dim={dim}"),
            &["cache=128", "cache=32"],
        );
        for spec in runner::selected_specs(&opts) {
            let ld = runner::load(&spec, opts.scale);
            let cells = [128usize, 32]
                .iter()
                .map(|&cache| {
                    let k = GnnOneSpmm::new(
                        Arc::clone(&ld.graph),
                        GnnOneConfig {
                            cache_size: cache,
                            ..Default::default()
                        },
                    );
                    runner::run_spmm(&gpu, &k, &ld, dim)
                })
                .collect();
            table.push_row(spec.id, cells);
        }
        table.print();
        println!("(paper: 1.31x average for 128 over 32)");
        tables.push(table);
    }

    let out = opts
        .out
        .unwrap_or_else(|| "results/fig9_cache_size.json".into());
    report::write_json(&out, &tables).expect("write results");
    println!("wrote {out}");
}
