//! Reproduces **Fig. 6**: end-to-end GAT training time (200 epochs) —
//! GNNOne vs DGL vs dgNN on the large datasets.
//!
//! Expected shape (paper §5.3.2): GNNOne ~3.7× over DGL and ~2× over dgNN
//! — beating the fused dgNN with unfused but optimized kernels. Timing is
//! simulated: two epochs are executed through the kernel simulator and the
//! per-epoch cost is extrapolated to the requested epoch count (epochs are
//! deterministic replicas under the timing model).

use std::rc::Rc;

use gnnone_bench::report::{Cell, Table};
use gnnone_bench::{cli, figure_gpu_spec, profiling, report, runner};
use gnnone_gnn::memory::{estimate_training_bytes, ModelKind};
use gnnone_gnn::models::Gat;
use gnnone_gnn::{train_model, GnnContext, SystemKind, TrainConfig};
use gnnone_tensor::Tensor;

/// Epochs actually simulated before extrapolation.
const MEASURED_EPOCHS: usize = 2;

fn main() -> std::process::ExitCode {
    gnnone_bench::figure_main("fig6_gat_training", run)
}

fn run() -> Result<(), gnnone_sim::GnnOneError> {
    let mut opts = cli::from_env()?;
    runner::require_sim_backend(&opts, "fig6_gat_training")?;
    if opts.datasets.is_empty() {
        opts.datasets = ["G3", "G7", "G9", "G10", "G11", "G12", "G13", "G14", "G15"]
            .iter()
            .map(|s| s.to_string())
            .collect();
    }
    let spec_gpu = figure_gpu_spec();
    let device_bytes = 40u64 * 1024 * 1024 * 1024;
    let prof = profiling::Profiler::from_opts(&opts);

    let mut table = Table::new(
        &format!("Fig 6: GAT training, {} epochs", opts.epochs),
        &["GnnOne", "DGL", "dgNN"],
    );
    for dspec in runner::selected_specs(&opts) {
        let ld = runner::load(&dspec, opts.scale);
        let n = ld.graph.num_vertices();
        // GNNBench-style generated features/labels (Table 1 dims).
        let features = Tensor::from_vec(
            n,
            dspec.feature_len,
            runner::vertex_features(n, dspec.feature_len, 31),
        );
        let labels: Vec<u32> = (0..n as u32).map(|v| v % dspec.classes as u32).collect();

        let mut cells = Vec::new();
        for system in [SystemKind::GnnOne, SystemKind::Dgl, SystemKind::DgNn] {
            // OOM check at paper scale.
            let est = estimate_training_bytes(system, ModelKind::Gat, &dspec);
            if !est.fits(device_bytes) {
                cells.push(Cell::Err("OOM".into()));
                continue;
            }
            let ctx = Rc::new(GnnContext::new(
                system,
                ld.dataset.coo.clone(),
                spec_gpu.clone(),
            ));
            prof.attach_ctx(&ctx);
            let mut model = Gat::new(dspec.feature_len, 16, dspec.classes, 5, 7);
            let cfg = TrainConfig {
                epochs: MEASURED_EPOCHS,
                ..Default::default()
            };
            let r = train_model(&mut model, &ctx, &features, &labels, &cfg);
            // Measured window = MEASURED_EPOCHS train epochs + 1 eval
            // forward (≈ one more epoch under the ×3 dense charging).
            let per_epoch_ms = r.simulated_ms / (MEASURED_EPOCHS as f64 + 1.0);
            cells.push(Cell::Ms(per_epoch_ms * opts.epochs as f64));
        }
        table.push_row(dspec.id, cells);
    }
    table.print();
    println!("(paper: GnnOne 3.68x over DGL, 2.01x over dgNN; dgNN errored on G10 in the paper's run — our reimplementation completes it, see EXPERIMENTS.md)");

    let out = opts
        .out
        .unwrap_or_else(|| "results/fig6_gat_training.json".into());
    report::write_json(&out, &table).map_err(|e| gnnone_bench::io_error(&out, e))?;
    println!("wrote {out}");
    prof.write();
    Ok(())
}
