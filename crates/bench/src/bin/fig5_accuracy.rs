//! Reproduces **Fig. 5**: training accuracy of GCN, GIN and GAT under
//! GNNOne vs DGL on the labelled datasets — demonstrating the kernels
//! "can be applied to GNN training correctly" (accuracy parity).
//!
//! The labelled analogues are planted-partition graphs with
//! class-informative features, so the models genuinely learn. Defaults:
//! 60 epochs at Tiny scale (override with `--epochs` / `--scale`).

use std::rc::Rc;

use gnnone_bench::{cli, figure_gpu_spec, profiling, report, runner};
use gnnone_gnn::models::{Gat, Gcn, Gin, GnnModel};
use gnnone_gnn::{train_model, GnnContext, SystemKind, TrainConfig};
use gnnone_sparse::datasets::Scale;
use gnnone_tensor::Tensor;
use serde::Serialize;

#[derive(Serialize)]
struct AccuracyRow {
    dataset: &'static str,
    model: &'static str,
    system: &'static str,
    test_accuracy: f64,
    train_accuracy: f64,
}

impl report::ToJson for AccuracyRow {
    fn to_json(&self) -> gnnone_sim::jsonio::Json {
        use gnnone_sim::jsonio::Json;
        Json::obj(vec![
            ("dataset", Json::Str(self.dataset.to_string())),
            ("model", Json::Str(self.model.to_string())),
            ("system", Json::Str(self.system.to_string())),
            ("test_accuracy", Json::F64(self.test_accuracy)),
            ("train_accuracy", Json::F64(self.train_accuracy)),
        ])
    }
}

fn main() -> std::process::ExitCode {
    gnnone_bench::figure_main("fig5_accuracy", run)
}

fn run() -> Result<(), gnnone_sim::GnnOneError> {
    let mut opts = cli::from_env()?;
    runner::require_sim_backend(&opts, "fig5_accuracy")?;
    if opts.datasets.is_empty() {
        opts.datasets = ["G0", "G1", "G2", "G12", "G14"]
            .iter()
            .map(|s| s.to_string())
            .collect();
    }
    // Fig. 5 is about correctness, not scale: tiny graphs, fewer epochs.
    if opts.epochs == 200 {
        opts.epochs = 60;
    }
    let scale = if opts.scale == Scale::Small {
        Scale::Tiny
    } else {
        opts.scale
    };
    let prof = profiling::Profiler::from_opts(&opts);

    let mut rows: Vec<AccuracyRow> = Vec::new();
    println!(
        "{:<6} {:<5} {:<8} {:>10} {:>10}",
        "graph", "model", "system", "test acc", "train acc"
    );
    for spec in runner::selected_specs(&opts) {
        if !spec.labeled {
            continue;
        }
        let ld = runner::load(&spec, scale);
        let labels = ld
            .dataset
            .labels
            .clone()
            .ok_or_else(|| gnnone_sim::GnnOneError::Config {
                detail: format!("dataset {} is marked labeled but has no labels", spec.id),
            })?;
        let fdim = ld.dataset.feature_dim;
        let features = Tensor::from_vec(
            ld.graph.num_vertices(),
            fdim,
            ld.dataset
                .features
                .clone()
                .ok_or_else(|| gnnone_sim::GnnOneError::Config {
                    detail: format!("dataset {} has no generated features", spec.id),
                })?,
        );
        for system in [SystemKind::GnnOne, SystemKind::Dgl] {
            let ctx = Rc::new(GnnContext::new(
                system,
                ld.dataset.coo.clone(),
                figure_gpu_spec(),
            ));
            prof.attach_ctx(&ctx);
            let models: Vec<(&'static str, Box<dyn GnnModel>)> = vec![
                ("GCN", Box::new(Gcn::new(fdim, 16, spec.classes, 42))),
                ("GIN", Box::new(Gin::new(fdim, 16, spec.classes, 2, 43))),
                ("GAT", Box::new(Gat::new(fdim, 16, spec.classes, 2, 44))),
            ];
            for (name, mut model) in models {
                let cfg = TrainConfig {
                    epochs: opts.epochs,
                    lr: 0.01,
                    ..Default::default()
                };
                let r = train_model(model.as_mut(), &ctx, &features, &labels, &cfg);
                println!(
                    "{:<6} {:<5} {:<8} {:>10.3} {:>10.3}",
                    spec.id,
                    name,
                    system.name(),
                    r.test_accuracy,
                    r.train_accuracy
                );
                rows.push(AccuracyRow {
                    dataset: spec.id,
                    model: name,
                    system: system.name(),
                    test_accuracy: r.test_accuracy,
                    train_accuracy: r.train_accuracy,
                });
            }
        }
    }

    // Parity check: max |GnnOne − DGL| per (dataset, model).
    let mut worst: f64 = 0.0;
    for r in &rows {
        if r.system == "GnnOne" {
            if let Some(d) = rows
                .iter()
                .find(|o| o.system == "DGL" && o.dataset == r.dataset && o.model == r.model)
            {
                worst = worst.max((r.test_accuracy - d.test_accuracy).abs());
            }
        }
    }
    println!("\nmax |GnnOne − DGL| test-accuracy gap: {worst:.3} (paper: parity)");

    let out = opts
        .out
        .unwrap_or_else(|| "results/fig5_accuracy.json".into());
    report::write_json(&out, &rows).map_err(|e| gnnone_bench::io_error(&out, e))?;
    println!("wrote {out}");
    prof.write();
    Ok(())
}
