//! Reproduces **Fig. 8**: the SDDMM design-choice ladder at feature length
//! 32 — Baseline (balanced COO, no reuse, no float4, ≈ DGL's design ideas)
//! → +Data-reuse (Stage-1 NZE caching + row-feature reuse) → +Float4
//! (vector loads / thread groups).
//!
//! Expected shape (paper §5.4.1): +Data-reuse ≈ 2.78× over Baseline;
//! +Float4 ≈ 1.80× more (≈ 4.59× total).

use gnnone_bench::report::Table;
use gnnone_bench::{cli, profiling, report, runner};
use gnnone_kernels::registry;

fn main() -> std::process::ExitCode {
    gnnone_bench::figure_main("fig8_sddmm_ablation", run)
}

fn run() -> Result<(), gnnone_sim::GnnOneError> {
    let mut opts = cli::from_env()?;
    if opts.dims == vec![6, 16, 32, 64] {
        opts.dims = vec![32]; // the figure's dimension
    }
    runner::require_unsharded(&opts, "fig8_sddmm_ablation")?;
    let backend = runner::backend_from_options(&opts)?;
    let prof = profiling::Profiler::from_opts(&opts);
    prof.attach_backend(&backend);
    let mut tables = Vec::new();
    let mut guard = runner::SweepGuard::new();

    for &dim in &opts.dims {
        let mut table = Table::new(
            &format!("Fig 8: SDDMM ablation, dim={dim} (column 0 = full design)"),
            &["+Float4", "+Data-reuse", "Baseline"],
        );
        for spec in runner::selected_specs(&opts) {
            let ld = runner::load(&spec, opts.scale);
            let cells = registry::sddmm_ablation_kernels(&ld.graph)
                .iter()
                .map(|(_, k)| runner::run_sddmm_guarded(&backend, k, &ld, dim, &mut guard))
                .collect();
            table.push_row(spec.id, cells);
        }
        table.print();
        println!(
            "(read: col0/col1 gap = float4 contribution, col0/col2 = total; paper: 1.80x and 4.59x)"
        );
        tables.push(table);
    }

    let out = opts
        .out
        .unwrap_or_else(|| "results/fig8_sddmm_ablation.json".into());
    report::write_json(&out, &tables).map_err(|e| gnnone_bench::io_error(&out, e))?;
    println!("wrote {out}");
    if let Some(p) = &opts.plain_out {
        report::write_plain(p, &tables).map_err(|e| gnnone_bench::io_error(p, e))?;
        println!("wrote {p}");
    }
    prof.write();
    guard.finish()
}
