//! Reproduces **Fig. 12**: COO nonzero-split SpMV (GNNOne) vs Merge-SpMV
//! (custom merge-path format) — the §4.4/§5.4.5 trade-off: 4 extra bytes
//! of coalesced row-ID load per NZE vs narrow metadata + broadcast +
//! online search.
//!
//! Expected shape: comparable or better everywhere, with the largest wins
//! (~1.7–2.1×) on the dense datasets (Reddit, Ogb-product analogues).
//! Note: the paper reports Merge-SpMV *crashing* on Kron-21 (G10); our
//! reimplementation completes it — recorded as a known deviation in
//! EXPERIMENTS.md.

use std::process::ExitCode;

use gnnone_bench::report::Table;
use gnnone_bench::{cli, io_error, profiling, report, runner};
use gnnone_kernels::registry;
use gnnone_sim::GnnOneError;

fn main() -> ExitCode {
    gnnone_bench::figure_main("fig12_spmv", run)
}

fn run() -> Result<(), GnnOneError> {
    let opts = cli::from_env()?;
    let backend = runner::backend_from_options(&opts)?;
    let prof = profiling::Profiler::from_opts(&opts);
    prof.attach_backend(&backend);
    let mut guard = runner::SweepGuard::new();
    let mut table = Table::new("Fig 12: SpMV", &["GnnOne", "Merge-SpMV"]);
    for spec in runner::selected_specs(&opts) {
        let ld = runner::load(&spec, opts.scale);
        let sharded = match opts.shards {
            Some(k) => Some(runner::sharded_executor(&opts, &ld, k)?),
            None => None,
        };
        let cells = registry::spmv_kernels(&ld.graph)
            .iter()
            .map(|k| match &sharded {
                Some(exec) => runner::run_spmv_sharded(&mut guard, exec, k.name(), &ld),
                None => runner::run_spmv_guarded(&backend, k.as_ref(), &ld, &mut guard),
            })
            .collect();
        table.push_row(spec.id, cells);
    }
    table.print();
    println!(
        "(paper: comparable or better on all datasets; 1.74x on Reddit, 2.09x on Ogb-product)"
    );

    let out = opts.out.unwrap_or_else(|| "results/fig12_spmv.json".into());
    report::write_json(&out, &table).map_err(|e| io_error(&out, e))?;
    println!("wrote {out}");
    prof.write();
    guard.finish()
}
