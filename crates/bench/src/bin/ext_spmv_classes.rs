//! **Extension experiment** (§4.4): the two classes of nonzero-split SpMV
//! the paper proves are special cases of GNNOne's SpMM design —
//! Dalton et al. (coalesced fetch, shared-memory inter-thread reduction)
//! and Merrill et al. / Merge-SpMV (uncoalesced fetch, thread-local
//! reduction) — against GNNOne's COO nonzero-split.

use gnnone_bench::report::Table;
use gnnone_bench::{cli, profiling, report, runner};
use gnnone_kernels::registry;

fn main() -> std::process::ExitCode {
    gnnone_bench::figure_main("ext_spmv_classes", run)
}

fn run() -> Result<(), gnnone_sim::GnnOneError> {
    let opts = cli::from_env()?;
    runner::require_unsharded(&opts, "ext_spmv_classes")?;
    let backend = runner::backend_from_options(&opts)?;
    let prof = profiling::Profiler::from_opts(&opts);
    prof.attach_backend(&backend);
    let mut guard = runner::SweepGuard::new();
    let mut table = Table::new(
        "Extension: nonzero-split SpMV classes (§4.4)",
        &["GnnOne", "Merge-SpMV", "Dalton et al."],
    );
    for spec in runner::selected_specs(&opts) {
        let ld = runner::load(&spec, opts.scale);
        let cells = registry::spmv_class_kernels(&ld.graph)
            .iter()
            .map(|k| runner::run_spmv_guarded(&backend, k.as_ref(), &ld, &mut guard))
            .collect();
        table.push_row(spec.id, cells);
    }
    table.print();
    println!("(the trade-off of §4.4: coalescing vs thread-local reduction; GNNOne's design subsumes both)");

    let out = opts
        .out
        .unwrap_or_else(|| "results/ext_spmv_classes.json".into());
    report::write_json(&out, &table).map_err(|e| gnnone_bench::io_error(&out, e))?;
    println!("wrote {out}");
    prof.write();
    guard.finish()
}
