//! **Extension experiment** (§4.3 *Format Selection*, §5.4.5): the same
//! GNNOne SpMM design on COO vs plain CSR.
//!
//! COO pays 4 extra bytes per NZE to read the row ID directly; plain CSR
//! avoids that read but must *derive* rows — per-warp binary searches over
//! the offsets array (serial dependent loads) plus per-NZE resolution.
//! The paper argues the COO side of this trade wins, which is why a
//! standard format suffices; this bench measures the gap per dataset.

use std::sync::Arc;

use gnnone_bench::report::Table;
use gnnone_bench::{cli, profiling, report, runner};
use gnnone_kernels::gnnone::{GnnOneConfig, GnnOneCsrSpmm, GnnOneSpmm};
use gnnone_kernels::traits::SpmmKernel;

fn main() -> std::process::ExitCode {
    gnnone_bench::figure_main("ext_format_tradeoff", run)
}

fn run() -> Result<(), gnnone_sim::GnnOneError> {
    let mut opts = cli::from_env()?;
    if opts.dims == vec![6, 16, 32, 64] {
        opts.dims = vec![32];
    }
    runner::require_unsharded(&opts, "ext_format_tradeoff")?;
    let backend = runner::backend_from_options(&opts)?;
    let prof = profiling::Profiler::from_opts(&opts);
    prof.attach_backend(&backend);
    let mut tables = Vec::new();
    let mut guard = runner::SweepGuard::new();
    for &dim in &opts.dims {
        let mut table = Table::new(
            &format!("Extension: GNNOne SpMM format trade-off, dim={dim}"),
            &["COO (4B row IDs)", "plain CSR (row search)"],
        );
        for spec in runner::selected_specs(&opts) {
            let ld = runner::load(&spec, opts.scale);
            let coo: Box<dyn SpmmKernel> = Box::new(GnnOneSpmm::new(
                Arc::clone(&ld.graph),
                GnnOneConfig::default(),
            ));
            let csr: Box<dyn SpmmKernel> = Box::new(GnnOneCsrSpmm::new(Arc::clone(&ld.graph)));
            let cells = [coo, csr]
                .iter()
                .map(|k| runner::run_spmm_guarded(&backend, k.as_ref(), &ld, dim, &mut guard))
                .collect();
            table.push_row(spec.id, cells);
        }
        table.print();
        tables.push(table);
    }
    println!("(§5.4.5: the 4-byte coalesced row-ID load beats deriving rows on most datasets)");

    let out = opts
        .out
        .unwrap_or_else(|| "results/ext_format_tradeoff.json".into());
    report::write_json(&out, &tables).map_err(|e| gnnone_bench::io_error(&out, e))?;
    println!("wrote {out}");
    prof.write();
    guard.finish()
}
